// End-to-end streaming-pipeline suite (src/stream/, docs/streaming.md):
// continual-observation epsilon composition, drift/staleness retrain
// triggers, kill-and-resume bit-identity, and the graph+model serving
// hot swap.

#include "stream/stream_pipeline.h"

#include <filesystem>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/binary_io.h"
#include "ckpt/stream_state.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "serve/server.h"

namespace privim {
namespace {

Graph MakeInitialGraph() {
  Rng rng(0x11);
  Graph g = std::move(WattsStrogatz(80, 3, 0.2, rng)).ValueOrDie();
  EXPECT_TRUE(g.EnsureInCsr().ok());
  return g;
}

/// Small-but-real config: full DP training per round, shrunk to test size.
StreamOptions MakeOptions(Method method = Method::kPrivImStar) {
  StreamOptions o;
  o.method = MakeDefaultConfig(method, 2.0, 80);
  o.method.train.iterations = 8;
  o.method.train.batch_size = 8;
  o.method.seed_count = 5;
  o.method.freq.subgraph_size = 12;
  o.method.rwr.subgraph_size = 12;
  o.retrain.drift_fraction = 0.0;
  o.retrain.staleness_batches = 2;  // retrain every 2 batches
  o.gen.events_per_batch = 20;
  o.rr_sketch_sets = 48;
  o.seed = 0x5151;
  return o;
}

std::string ScenarioDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("privim_stream_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// The seconds field is wall time — restored rows keep it, fresh rows
/// remeasure — so bit-identity comparisons zero it out first.
std::vector<StreamStepRecord> WithoutTiming(
    std::vector<StreamStepRecord> rows) {
  for (StreamStepRecord& r : rows) r.seconds = 0.0;
  return rows;
}

void ExpectIdenticalStates(const StreamState& got, const StreamState& want) {
  EXPECT_EQ(got.fingerprint, want.fingerprint);
  EXPECT_EQ(got.batches_applied, want.batches_applied);
  EXPECT_EQ(got.event_log, want.event_log);
  EXPECT_EQ(got.accountant.delta, want.accountant.delta);
  EXPECT_EQ(got.accountant.gamma_totals, want.accountant.gamma_totals);
  ASSERT_EQ(got.accountant.rounds.size(), want.accountant.rounds.size());
  for (size_t i = 0; i < got.accountant.rounds.size(); ++i) {
    EXPECT_EQ(got.accountant.rounds[i].sigma, want.accountant.rounds[i].sigma);
    EXPECT_EQ(got.accountant.rounds[i].cumulative_epsilon,
              want.accountant.rounds[i].cumulative_epsilon);
  }
  EXPECT_EQ(got.arcs_at_train, want.arcs_at_train);
  EXPECT_EQ(got.changed_since_train, want.changed_since_train);
  EXPECT_EQ(got.batches_since_train, want.batches_since_train);
  EXPECT_EQ(got.seeds, want.seeds);
  EXPECT_EQ(got.seed_scores, want.seed_scores);
  EXPECT_EQ(got.has_model, want.has_model);
  EXPECT_EQ(got.model_params, want.model_params);
  EXPECT_EQ(got.sketch_stream_base, want.sketch_stream_base);
  EXPECT_EQ(got.sketch_sets, want.sketch_sets);
  EXPECT_EQ(WithoutTiming(got.history), WithoutTiming(want.history));
}

TEST(StreamPipelineTest, EpsilonComposesMonotonicallyAcrossRounds) {
  std::unique_ptr<StreamPipeline> pipeline =
      std::move(StreamPipeline::Build(MakeInitialGraph(), MakeOptions()))
          .ValueOrDie();
  // Round 0 trains at Build: the ledger already has one round.
  ASSERT_EQ(pipeline->accountant().num_rounds(), 1u);
  const double round0 = pipeline->CumulativeEpsilon();
  EXPECT_GT(round0, 0.0);

  double last = round0;
  size_t retrains_seen = 0;
  for (int b = 0; b < 6; ++b) {
    StreamStepRecord row = std::move(pipeline->Step()).ValueOrDie();
    // Never resets, never decreases — continual observation composes.
    EXPECT_GE(row.cumulative_epsilon, last);
    if (row.retrained) {
      ++retrains_seen;
      EXPECT_GT(row.cumulative_epsilon, last)
          << "a retraining round must spend privacy";
    } else {
      EXPECT_EQ(row.cumulative_epsilon, last)
          << "a batch without retraining must not spend privacy";
    }
    last = row.cumulative_epsilon;
  }
  // staleness_batches = 2 over 6 batches -> 3 stream retrains + round 0.
  EXPECT_EQ(retrains_seen, 3u);
  EXPECT_EQ(pipeline->num_retrains(), 4u);
  EXPECT_EQ(pipeline->accountant().num_rounds(), 4u);
  EXPECT_EQ(pipeline->CumulativeEpsilon(), last);
  EXPECT_EQ(pipeline->seeds().size(), 5u);

  // The per-round ledger itself is nondecreasing.
  double cum = 0.0;
  for (const ContinualAccountant::Round& r : pipeline->accountant().rounds()) {
    EXPECT_GT(r.round_epsilon, 0.0);
    EXPECT_GE(r.cumulative_epsilon, cum);
    cum = r.cumulative_epsilon;
  }
}

TEST(StreamPipelineTest, DriftTriggerFires) {
  StreamOptions o = MakeOptions();
  o.retrain.staleness_batches = 0;
  o.retrain.drift_fraction = 0.05;  // 20-event batches on ~240 arcs
  std::unique_ptr<StreamPipeline> pipeline =
      std::move(StreamPipeline::Build(MakeInitialGraph(), std::move(o)))
          .ValueOrDie();
  bool retrained = false;
  for (int b = 0; b < 4 && !retrained; ++b) {
    StreamStepRecord row = std::move(pipeline->Step()).ValueOrDie();
    retrained = row.retrained != 0;
  }
  EXPECT_TRUE(retrained);
}

TEST(StreamPipelineTest, DisabledTriggersNeverRetrain) {
  StreamOptions o = MakeOptions();
  o.retrain.staleness_batches = 0;
  o.retrain.drift_fraction = 0.0;
  std::unique_ptr<StreamPipeline> pipeline =
      std::move(StreamPipeline::Build(MakeInitialGraph(), std::move(o)))
          .ValueOrDie();
  const double eps = pipeline->CumulativeEpsilon();
  for (int b = 0; b < 3; ++b) {
    StreamStepRecord row = std::move(pipeline->Step()).ValueOrDie();
    EXPECT_EQ(row.retrained, 0);
    EXPECT_EQ(row.cumulative_epsilon, eps);
  }
  EXPECT_EQ(pipeline->num_retrains(), 1u);
}

TEST(StreamPipelineTest, NonPrivateSpendsNoEpsilon) {
  std::unique_ptr<StreamPipeline> pipeline =
      std::move(StreamPipeline::Build(MakeInitialGraph(),
                                      MakeOptions(Method::kNonPrivate)))
          .ValueOrDie();
  for (int b = 0; b < 3; ++b) {
    ASSERT_TRUE(pipeline->Step().ok());
  }
  EXPECT_EQ(pipeline->accountant().num_rounds(), 0u);
  EXPECT_EQ(pipeline->CumulativeEpsilon(), 0.0);
}

TEST(StreamPipelineTest, KillAndResumeIsBitIdentical) {
  constexpr int kTotal = 5;
  constexpr int kKillAfter = 2;

  // Uninterrupted reference (checkpointing on — it must not perturb).
  const std::string ref_dir = ScenarioDir("ref");
  StreamOptions ref_opts = MakeOptions();
  ref_opts.checkpoint_dir = ref_dir;
  std::unique_ptr<StreamPipeline> ref =
      std::move(StreamPipeline::Build(MakeInitialGraph(),
                                      std::move(ref_opts)))
          .ValueOrDie();
  for (int b = 0; b < kTotal; ++b) ASSERT_TRUE(ref->Step().ok());

  // Interrupted run: apply kKillAfter batches, drop the pipeline (the
  // "kill" — batch boundaries are the only commit points), rebuild with
  // resume from the same initial graph, and finish the stream.
  const std::string dir = ScenarioDir("killed");
  StreamOptions opts = MakeOptions();
  opts.checkpoint_dir = dir;
  {
    std::unique_ptr<StreamPipeline> first =
        std::move(StreamPipeline::Build(MakeInitialGraph(), opts))
            .ValueOrDie();
    for (int b = 0; b < kKillAfter; ++b) ASSERT_TRUE(first->Step().ok());
  }
  ASSERT_TRUE(FileExists(StreamCheckpointPath(dir)));

  opts.resume = true;
  std::unique_ptr<StreamPipeline> resumed =
      std::move(StreamPipeline::Build(MakeInitialGraph(), std::move(opts)))
          .ValueOrDie();
  EXPECT_EQ(resumed->batches_applied(),
            static_cast<uint64_t>(kKillAfter));
  for (int b = kKillAfter; b < kTotal; ++b) {
    ASSERT_TRUE(resumed->Step().ok());
  }

  ExpectIdenticalStates(resumed->ExportState(), ref->ExportState());
  EXPECT_EQ(resumed->sketch().sets(), ref->sketch().sets());
  EXPECT_EQ(resumed->CumulativeEpsilon(), ref->CumulativeEpsilon());
  EXPECT_EQ(resumed->num_retrains(), ref->num_retrains());

  std::filesystem::remove_all(ref_dir);
  std::filesystem::remove_all(dir);
}

TEST(StreamPipelineTest, ResumeRejectsDifferentInitialGraph) {
  const std::string dir = ScenarioDir("mismatch");
  StreamOptions opts = MakeOptions();
  opts.checkpoint_dir = dir;
  {
    std::unique_ptr<StreamPipeline> first =
        std::move(StreamPipeline::Build(MakeInitialGraph(), opts))
            .ValueOrDie();
    ASSERT_TRUE(first->Step().ok());
  }
  opts.resume = true;
  Rng rng(0x99);
  Graph other = std::move(WattsStrogatz(80, 3, 0.5, rng)).ValueOrDie();
  ASSERT_TRUE(other.EnsureInCsr().ok());
  Result<std::unique_ptr<StreamPipeline>> resumed =
      StreamPipeline::Build(std::move(other), std::move(opts));
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  std::filesystem::remove_all(dir);
}

TEST(StreamPipelineTest, PublishSwapsGraphAndModelTogether) {
  std::unique_ptr<StreamPipeline> pipeline =
      std::move(StreamPipeline::Build(MakeInitialGraph(), MakeOptions()))
          .ValueOrDie();
  for (int b = 0; b < 2; ++b) ASSERT_TRUE(pipeline->Step().ok());

  Graph serve_graph = MakeInitialGraph();
  ServeConfig cfg;
  cfg.num_threads = 1;
  cfg.rr_sketch_sets = 16;
  Server server(serve_graph, cfg);

  ASSERT_TRUE(pipeline->PublishTo(server).ok());

  // The server now answers from the pipeline's *current* graph (base +
  // overlay, compacted), not the graph it was constructed over, and from
  // a snapshot that owns that same graph.
  std::shared_ptr<const Graph> current = server.CurrentGraph();
  ASSERT_NE(current, nullptr);
  EXPECT_NE(current.get(), &serve_graph);
  EXPECT_EQ(current->num_nodes(), pipeline->View().num_nodes());
  EXPECT_EQ(current->num_edges(), pipeline->View().num_edges());

  std::shared_ptr<const ModelSnapshot> snap = server.CurrentSnapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->owned_graph().get(), current.get());

  // The resident sketch was regenerated on the new graph before publish.
  std::shared_ptr<const RrSketch> sketch = server.CurrentSketch();
  ASSERT_NE(sketch, nullptr);
  EXPECT_EQ(sketch->num_nodes(), current->num_nodes());
}

TEST(StreamStateTest, CheckpointRoundTripsExactly) {
  std::unique_ptr<StreamPipeline> pipeline =
      std::move(StreamPipeline::Build(MakeInitialGraph(), MakeOptions()))
          .ValueOrDie();
  for (int b = 0; b < 3; ++b) ASSERT_TRUE(pipeline->Step().ok());

  const std::string dir = ScenarioDir("roundtrip");
  std::filesystem::create_directories(dir);
  const std::string path = StreamCheckpointPath(dir);
  StreamState state = pipeline->ExportState();
  ASSERT_TRUE(SaveStreamState(state, path).ok());
  StreamState loaded = std::move(LoadStreamState(path)).ValueOrDie();
  // Serialization is exact: the loaded state compares equal field by
  // field, timing included.
  ExpectIdenticalStates(loaded, state);
  EXPECT_EQ(loaded.history, state.history);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace privim
