// GraphDelta / GraphView / update-stream unit tests (docs/streaming.md):
// overlay mutation semantics, the view-vs-compacted equivalence the whole
// incremental machinery rests on, and the batch-apply effect reporting
// that drives the invalidation pass.

#include "graph/graph_delta.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/update_stream.h"

namespace privim {
namespace {

struct Arc {
  NodeId u;
  NodeId v;
  float w;
  bool operator==(const Arc&) const = default;
  bool operator<(const Arc& o) const {
    return std::tie(u, v) < std::tie(o.u, o.v);
  }
};

std::vector<Arc> ArcsOf(const GraphView& view) {
  std::vector<Arc> arcs;
  EXPECT_TRUE(view.ForEachEdge([&arcs](NodeId u, NodeId v, float w) {
                    arcs.push_back({u, v, w});
                  }).ok());
  return arcs;
}

std::vector<Arc> ArcsOf(const Graph& g) { return ArcsOf(GraphView(g)); }

Graph MakeBase() {
  GraphBuilder b(5);
  EXPECT_TRUE(b.AddEdge(0, 1, 0.5f).ok());
  EXPECT_TRUE(b.AddEdge(0, 3, 0.25f).ok());
  EXPECT_TRUE(b.AddEdge(1, 2, 1.0f).ok());
  EXPECT_TRUE(b.AddEdge(2, 0, 0.75f).ok());
  EXPECT_TRUE(b.AddEdge(3, 4, 0.1f).ok());
  return std::move(b.Build()).ValueOrDie();
}

TEST(GraphDeltaTest, AddAndRemoveEdges) {
  Graph base = MakeBase();
  GraphDelta delta(base);
  EXPECT_TRUE(delta.empty());

  ASSERT_TRUE(delta.AddEdge(4, 0, 0.9f).ok());
  EXPECT_TRUE(delta.HasEdge(4, 0));
  EXPECT_EQ(delta.num_edges(), base.num_edges() + 1);
  // Re-adding a visible arc (base or overlay) is AlreadyExists.
  EXPECT_EQ(delta.AddEdge(4, 0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(delta.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);

  ASSERT_TRUE(delta.RemoveEdge(0, 1).ok());
  EXPECT_FALSE(delta.HasEdge(0, 1));
  EXPECT_EQ(delta.num_edges(), base.num_edges());
  EXPECT_EQ(delta.RemoveEdge(0, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(delta.RemoveEdge(1, 4).code(), StatusCode::kNotFound);

  // Same endpoint validation as GraphBuilder.
  EXPECT_EQ(delta.AddEdge(0, 99).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(delta.AddEdge(2, 2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(delta.AddEdge(1, 0, 1.5f).code(), StatusCode::kInvalidArgument);
}

TEST(GraphDeltaTest, ReAddRemovedBaseArcCarriesNewWeight) {
  Graph base = MakeBase();
  GraphDelta delta(base);
  ASSERT_TRUE(delta.RemoveEdge(0, 1).ok());
  ASSERT_TRUE(delta.AddEdge(0, 1, 0.125f).ok());
  EXPECT_TRUE(delta.HasEdge(0, 1));
  EXPECT_EQ(delta.num_edges(), base.num_edges());

  float seen = -1.0f;
  GraphView view(base, &delta);
  ASSERT_TRUE(view.ForEachOutEdge(0, [&seen](NodeId v, float w) {
                    if (v == 1) seen = w;
                  }).ok());
  EXPECT_FLOAT_EQ(seen, 0.125f);
}

TEST(GraphDeltaTest, NodeOperations) {
  Graph base = MakeBase();
  GraphDelta delta(base);
  Result<NodeId> added = delta.AddNode();
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, base.num_nodes());
  EXPECT_EQ(delta.num_nodes(), base.num_nodes() + 1);
  ASSERT_TRUE(delta.AddEdge(*added, 0, 0.5f).ok());
  ASSERT_TRUE(delta.AddEdge(1, *added, 0.5f).ok());

  // RemoveNode isolates: every incident arc (both directions) disappears,
  // the id stays valid.
  ASSERT_TRUE(delta.RemoveNode(0).ok());
  GraphView view(base, &delta);
  EXPECT_EQ(view.OutDegree(0), 0u);
  EXPECT_EQ(view.InDegree(0), 0u);
  EXPECT_FALSE(view.HasEdge(2, 0));
  EXPECT_FALSE(view.HasEdge(0, 1));
  EXPECT_EQ(view.num_nodes(), base.num_nodes() + 1);
}

TEST(GraphDeltaTest, VersionBumpsOnEveryMutation) {
  Graph base = MakeBase();
  GraphDelta delta(base);
  uint64_t last = delta.version();
  ASSERT_TRUE(delta.AddEdge(4, 0).ok());
  EXPECT_GT(delta.version(), last);
  last = delta.version();
  ASSERT_TRUE(delta.RemoveEdge(4, 0).ok());
  EXPECT_GT(delta.version(), last);
  last = delta.version();
  // Failed mutations do not bump.
  EXPECT_FALSE(delta.RemoveEdge(4, 0).ok());
  EXPECT_EQ(delta.version(), last);

  GraphView view(base, &delta);
  const uint64_t fp = view.IdentityFingerprint();
  ASSERT_TRUE(delta.AddNode().ok());
  EXPECT_NE(view.IdentityFingerprint(), fp);
}

TEST(GraphDeltaTest, ViewMatchesCompactedGraph) {
  // The central equivalence: after an arbitrary mutation mix, the view's
  // edge enumeration (order AND weights) equals the compacted CSR's.
  Rng rng(0xD31);
  Graph base =
      std::move(WattsStrogatz(60, 4, 0.2, rng)).ValueOrDie();
  ASSERT_TRUE(base.EnsureInCsr().ok());
  GraphDelta delta(base);

  Rng mut(0xD32);
  for (int i = 0; i < 200; ++i) {
    NodeId u = static_cast<NodeId>(mut.UniformInt(delta.num_nodes()));
    NodeId v = static_cast<NodeId>(mut.UniformInt(delta.num_nodes()));
    if (u == v) continue;
    if (mut.Bernoulli(0.6)) {
      (void)delta.AddEdge(u, v, static_cast<float>(mut.Uniform()));
    } else {
      (void)delta.RemoveEdge(u, v);
    }
  }
  ASSERT_TRUE(delta.AddNode().ok());
  ASSERT_TRUE(delta.AddEdge(60, 3, 0.5f).ok());
  ASSERT_TRUE(delta.RemoveNode(7).ok());

  Graph compacted = std::move(delta.Compact()).ValueOrDie();
  GraphView view(base, &delta);
  EXPECT_EQ(view.num_nodes(), compacted.num_nodes());
  EXPECT_EQ(view.num_edges(), compacted.num_edges());
  EXPECT_EQ(ArcsOf(view), ArcsOf(compacted));

  // Per-row order + degrees and HasEdge agree everywhere.
  for (NodeId n = 0; n < view.num_nodes(); ++n) {
    EXPECT_EQ(view.OutDegree(n), compacted.OutDegree(n)) << "out " << n;
    EXPECT_EQ(view.InDegree(n), compacted.InDegree(n)) << "in " << n;
    std::vector<NodeId> vi, ci;
    ASSERT_TRUE(
        view.ForEachInEdge(n, [&vi](NodeId u, float) { vi.push_back(u); })
            .ok());
    for (NodeId u : compacted.InNeighbors(n)) ci.push_back(u);
    EXPECT_EQ(vi, ci) << "in-row " << n;
  }

  // Compact() leaves the overlay intact; ResetBase clears it.
  EXPECT_FALSE(delta.empty());
  ASSERT_TRUE(delta.ResetBase(compacted).ok());
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.num_edges(), compacted.num_edges());
  GraphView rebased(compacted, &delta);
  EXPECT_EQ(ArcsOf(rebased), ArcsOf(compacted));
}

TEST(GraphDeltaTest, ResetBaseRejectsShrunkBase) {
  Graph base = MakeBase();
  GraphDelta delta(base);
  ASSERT_TRUE(delta.AddNode().ok());
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph small = std::move(b.Build()).ValueOrDie();
  EXPECT_FALSE(delta.ResetBase(small).ok());
}

TEST(UpdateStreamTest, ApplyReportsExactEffects) {
  Graph base = MakeBase();
  GraphDelta delta(base);
  UpdateBatch batch;
  batch.events.push_back({UpdateKind::kAddEdge, 4, 0, 0.5f, 0});
  batch.events.push_back({UpdateKind::kAddEdge, 4, 0, 0.5f, 1});  // dup
  batch.events.push_back({UpdateKind::kRemoveEdge, 0, 1, 1.0f, 2});
  batch.events.push_back({UpdateKind::kRemoveEdge, 1, 4, 1.0f, 3});  // miss
  batch.events.push_back({UpdateKind::kAddEdge, 2, 4, 0.25f, 4});

  Result<ApplyEffects> fx = ApplyUpdateBatch(delta, batch);
  ASSERT_TRUE(fx.ok());
  EXPECT_EQ(fx->applied_events, 3u);
  EXPECT_EQ(fx->skipped_events, 2u);
  EXPECT_EQ(fx->changed_arcs, 3u);
  EXPECT_FALSE(fx->node_count_changed);
  EXPECT_EQ(fx->changed_out_rows, (std::vector<NodeId>{0, 2, 4}));
  EXPECT_EQ(fx->changed_in_rows, (std::vector<NodeId>{0, 1, 4}));
  EXPECT_TRUE(std::is_sorted(fx->changed_out_rows.begin(),
                             fx->changed_out_rows.end()));

  // Malformed events fail the whole batch.
  UpdateBatch bad;
  bad.events.push_back({UpdateKind::kAddEdge, 0, 99, 1.0f, 0});
  EXPECT_FALSE(ApplyUpdateBatch(delta, bad).ok());
}

TEST(UpdateStreamTest, SyntheticBatchIsPureFunctionOfInputs) {
  Graph base = MakeBase();
  GraphDelta delta(base);
  GraphView view(base, &delta);
  StreamGenConfig cfg;
  cfg.events_per_batch = 32;

  UpdateBatch a = MakeSyntheticBatch(view, 7, 0x5eed, cfg);
  UpdateBatch b = MakeSyntheticBatch(view, 7, 0x5eed, cfg);
  EXPECT_EQ(a.index, 7u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.events.size(), 32u);

  UpdateBatch c = MakeSyntheticBatch(view, 8, 0x5eed, cfg);
  EXPECT_NE(a.events, c.events);
}

}  // namespace
}  // namespace privim
