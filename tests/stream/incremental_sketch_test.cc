// Incremental-vs-full equivalence suite (docs/streaming.md): repaired RR
// sketches must be *bit-identical* to a from-scratch rebuild at the same
// RNG stream, at every thread count; hop-ball invalidation must drop
// exactly the affected balls and serve identical contents afterwards.

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "graph/graph_view.h"
#include "graph/update_stream.h"
#include "im/rr_sets.h"
#include "runtime/scratch.h"

namespace privim {
namespace {

Graph MakeTestGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  Graph g = std::move(WattsStrogatz(n, 3, 0.15, rng)).ValueOrDie();
  EXPECT_TRUE(g.EnsureInCsr().ok());
  return g;
}

/// Applies `batches` synthetic batches and returns the union of changed
/// in-rows (sorted, deduped) — what the pipeline would feed Repair.
std::vector<NodeId> ApplyBatches(GraphDelta& delta, int batches,
                                 uint64_t seed) {
  std::vector<NodeId> changed;
  StreamGenConfig cfg;
  cfg.events_per_batch = 24;
  for (int b = 0; b < batches; ++b) {
    GraphView view(delta.base(), &delta);
    UpdateBatch batch =
        MakeSyntheticBatch(view, static_cast<uint64_t>(b), seed, cfg);
    Result<ApplyEffects> fx = ApplyUpdateBatch(delta, batch);
    EXPECT_TRUE(fx.ok());
    changed.insert(changed.end(), fx->changed_in_rows.begin(),
                   fx->changed_in_rows.end());
  }
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  return changed;
}

class RepairEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RepairEquivalenceTest, RepairedSketchIsBitIdenticalToRebuild) {
  const size_t threads = GetParam();
  Graph base = MakeTestGraph(120, 0xA11CE);
  GraphDelta delta(base);
  GraphView view(base, &delta);

  Rng rng(0xFACE);
  RrSketch sketch =
      std::move(RrSketch::Generate(view, 96, rng, threads)).ValueOrDie();
  const uint64_t stream_base = sketch.stream_base();

  std::vector<NodeId> changed = ApplyBatches(delta, 4, 0x5eed);
  ASSERT_FALSE(changed.empty());

  Result<size_t> repaired = sketch.Repair(view, changed, threads);
  ASSERT_TRUE(repaired.ok());
  EXPECT_GT(*repaired, 0u);

  RrSketch rebuilt =
      std::move(RrSketch::Regenerate(view, 96, stream_base, threads))
          .ValueOrDie();
  EXPECT_EQ(sketch.sets(), rebuilt.sets());
  EXPECT_EQ(sketch.stream_base(), rebuilt.stream_base());

  // And the repaired sketch equals generation on the compacted CSR: the
  // GraphView ordering contract (ascending merge == compacted row order)
  // is what makes the draw sequences line up.
  Graph compacted = std::move(delta.Compact()).ValueOrDie();
  RrSketch on_compacted =
      std::move(RrSketch::Regenerate(GraphView(compacted), 96, stream_base,
                                     threads))
          .ValueOrDie();
  EXPECT_EQ(sketch.sets(), on_compacted.sets());
}

TEST_P(RepairEquivalenceTest, RepairAfterEveryBatchMatchesOneShotRebuild) {
  // Repair applied incrementally after each batch must converge to the
  // same sketch as one rebuild at the end — repairs compose.
  const size_t threads = GetParam();
  Graph base = MakeTestGraph(100, 0xB0B);
  GraphDelta delta(base);
  GraphView view(base, &delta);

  Rng rng(0xCAB);
  RrSketch sketch =
      std::move(RrSketch::Generate(view, 64, rng, threads)).ValueOrDie();
  StreamGenConfig cfg;
  cfg.events_per_batch = 16;
  for (int b = 0; b < 5; ++b) {
    UpdateBatch batch =
        MakeSyntheticBatch(view, static_cast<uint64_t>(b), 0x77, cfg);
    Result<ApplyEffects> fx = ApplyUpdateBatch(delta, batch);
    ASSERT_TRUE(fx.ok());
    ASSERT_TRUE(sketch.Repair(view, fx->changed_in_rows, threads).ok());
  }
  RrSketch rebuilt = std::move(RrSketch::Regenerate(
                                   view, 64, sketch.stream_base(), threads))
                         .ValueOrDie();
  EXPECT_EQ(sketch.sets(), rebuilt.sets());
}

INSTANTIATE_TEST_SUITE_P(Threads, RepairEquivalenceTest,
                         ::testing::Values(1, 8));

TEST(RepairTest, SmallUpdateRepairsFewSets) {
  // The O(ball) locality contract: one edge into one node of a large
  // weakly-coupled graph must not regenerate the whole sketch. Weights are
  // low so RR sets stay small — with unit weights every full-length IC
  // cascade spans the component and every set is legitimately stale.
  GraphBuilder b(4000);
  for (NodeId u = 0; u < 4000; ++u) {
    EXPECT_TRUE(b.AddUndirectedEdge(u, (u + 1) % 4000, 0.05f).ok());
    EXPECT_TRUE(b.AddUndirectedEdge(u, (u + 7) % 4000, 0.05f).ok());
  }
  Graph base = std::move(b.Build()).ValueOrDie();
  GraphDelta delta(base);
  GraphView view(base, &delta);
  Rng rng(0x42);
  RrSketch sketch =
      std::move(RrSketch::Generate(view, 256, rng, 1)).ValueOrDie();

  ASSERT_TRUE(delta.AddEdge(10, 20, 0.5f).ok());
  Result<size_t> repaired =
      sketch.Repair(view, std::vector<NodeId>{20}, 1);
  ASSERT_TRUE(repaired.ok());
  EXPECT_LT(*repaired, sketch.num_sets() / 4)
      << "single-arc repair regenerated " << *repaired << " of "
      << sketch.num_sets() << " sets — locality is broken";
}

TEST(RepairTest, NodeCountChangeForcesFullRebuild) {
  Graph base = MakeTestGraph(60, 0xF00);
  GraphDelta delta(base);
  GraphView view(base, &delta);
  Rng rng(0x43);
  RrSketch sketch =
      std::move(RrSketch::Generate(view, 32, rng, 1)).ValueOrDie();

  ASSERT_TRUE(delta.AddNode().ok());
  Result<size_t> repaired = sketch.Repair(view, std::vector<NodeId>{}, 1);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, sketch.num_sets());
  RrSketch rebuilt = std::move(RrSketch::Regenerate(
                                   view, 32, sketch.stream_base(), 1))
                         .ValueOrDie();
  EXPECT_EQ(sketch.sets(), rebuilt.sets());
  EXPECT_EQ(sketch.num_nodes(), view.num_nodes());
}

TEST(HopBallCacheTest, InvalidateDropsExactlyAffectedBalls) {
  // Two disjoint 1-hop balls; changing a node inside one drops that ball
  // and only that ball, and Retarget serves the survivor unchanged.
  GraphBuilder b(6);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(3, 4).ok());
  ASSERT_TRUE(b.AddEdge(4, 5).ok());
  Graph g = std::move(b.Build()).ValueOrDie();

  HopBallCache cache(8);
  cache.Bind(g.IdentityFingerprint(), 1);
  HopBall& ball0 = cache.InsertSlot(0);
  ball0.nodes = {{0, 0}, {1, 1}};
  HopBall& ball3 = cache.InsertSlot(3);
  ball3.nodes = {{3, 0}, {4, 1}};
  ASSERT_EQ(cache.size(), 2u);

  // Out-row of node 4 changed (arc 4 -> 5 mutated): only ball3 holds 4.
  const size_t dropped =
      cache.Invalidate([](uint32_t n) { return n == 4; });
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(cache.size(), 1u);

  cache.Retarget(g.IdentityFingerprint() ^ 0x1234);
  const HopBall* kept = cache.Lookup(0);
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->nodes,
            (std::vector<std::pair<uint32_t, int32_t>>{{0, 0}, {1, 1}}));
  EXPECT_EQ(cache.Lookup(3), nullptr);
}

}  // namespace
}  // namespace privim
