#include "sampling/rwr_sampler.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace privim {
namespace {

Graph DenseGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  return std::move(ErdosRenyi(n, 0.1, /*directed=*/false, rng)).ValueOrDie();
}

TEST(RwrSamplerTest, SubgraphsHaveExactSize) {
  Graph g = DenseGraph(200, 1);
  RwrConfig cfg;
  cfg.subgraph_size = 15;
  cfg.sampling_rate = 0.5;
  RwrSampler sampler(cfg);
  Rng rng(2);
  SubgraphContainer c = std::move(sampler.Extract(g, rng)).ValueOrDie();
  ASSERT_GT(c.size(), 0u);
  for (const Subgraph& sub : c.subgraphs()) {
    EXPECT_EQ(sub.size(), 15u);
    // Distinct nodes.
    std::unordered_set<NodeId> uniq(sub.nodes.begin(), sub.nodes.end());
    EXPECT_EQ(uniq.size(), sub.size());
  }
}

TEST(RwrSamplerTest, NodesStayWithinRHopBall) {
  Graph g = DenseGraph(300, 3);
  RwrConfig cfg;
  cfg.subgraph_size = 10;
  cfg.sampling_rate = 0.3;
  cfg.hop_bound = 2;
  RwrSampler sampler(cfg);
  Rng rng(4);
  SubgraphContainer c = std::move(sampler.Extract(g, rng)).ValueOrDie();
  ASSERT_GT(c.size(), 0u);
  for (const Subgraph& sub : c.subgraphs()) {
    // The first node in the list is the start v0.
    const std::vector<int> dist = BfsDistances(g, sub.nodes[0]);
    for (NodeId u : sub.nodes) {
      ASSERT_GE(dist[u], 0);
      EXPECT_LE(dist[u], cfg.hop_bound);
    }
  }
}

TEST(RwrSamplerTest, SamplingRateControlsContainerSize) {
  Graph g = DenseGraph(400, 5);
  RwrConfig low_cfg;
  low_cfg.subgraph_size = 8;
  low_cfg.sampling_rate = 0.05;
  RwrConfig high_cfg = low_cfg;
  high_cfg.sampling_rate = 0.8;
  Rng rng_low(6), rng_high(6);
  auto low = std::move(RwrSampler(low_cfg).Extract(g, rng_low)).ValueOrDie();
  auto high =
      std::move(RwrSampler(high_cfg).Extract(g, rng_high)).ValueOrDie();
  EXPECT_GT(high.size(), 4 * low.size());
}

TEST(RwrSamplerTest, RestrictToLimitsNodes) {
  Graph g = DenseGraph(100, 7);
  std::vector<NodeId> allowed;
  for (NodeId v = 0; v < 50; ++v) allowed.push_back(v);
  RwrConfig cfg;
  cfg.subgraph_size = 5;
  cfg.sampling_rate = 1.0;
  RwrSampler sampler(cfg);
  Rng rng(8);
  SubgraphContainer c =
      std::move(sampler.Extract(g, rng, &allowed)).ValueOrDie();
  ASSERT_GT(c.size(), 0u);
  for (const Subgraph& sub : c.subgraphs()) {
    for (NodeId u : sub.nodes) EXPECT_LT(u, 50u);
  }
}

TEST(RwrSamplerTest, DisconnectedStartProducesNothing) {
  // Two isolated nodes cannot grow a subgraph of size 3.
  GraphBuilder b(2);
  Graph g = std::move(b.Build()).ValueOrDie();
  RwrConfig cfg;
  cfg.subgraph_size = 3;
  cfg.sampling_rate = 1.0;
  RwrSampler sampler(cfg);
  Rng rng(9);
  SubgraphContainer c = std::move(sampler.Extract(g, rng)).ValueOrDie();
  EXPECT_EQ(c.size(), 0u);
}

TEST(RwrSamplerTest, RejectsInvalidConfig) {
  Graph g = DenseGraph(50, 10);
  Rng rng(11);
  RwrConfig bad_size;
  bad_size.subgraph_size = 1;
  EXPECT_FALSE(RwrSampler(bad_size).Extract(g, rng).ok());
  RwrConfig bad_rate;
  bad_rate.sampling_rate = 0.0;
  EXPECT_FALSE(RwrSampler(bad_rate).Extract(g, rng).ok());
  bad_rate.sampling_rate = 1.5;
  EXPECT_FALSE(RwrSampler(bad_rate).Extract(g, rng).ok());
}

// Regression: RwrSampler had the same unvalidated-`restrict_to` hole as
// FreqSampler — an out-of-range id indexed the hop-distance scratch vector
// out of bounds. Must be a clean InvalidArgument, not a heap overwrite.
TEST(RwrSamplerTest, RejectsOutOfRangeRestrictTo) {
  Graph g = DenseGraph(60, 40);
  RwrConfig cfg;
  cfg.subgraph_size = 10;
  cfg.sampling_rate = 0.5;
  RwrSampler sampler(cfg);
  Rng rng(41);
  const std::vector<NodeId> bad = {2, 60};  // 60 == num_nodes.
  const Result<SubgraphContainer> result = sampler.Extract(g, rng, &bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RwrSamplerTest, InRangeRestrictToConfinesSubgraphs) {
  Graph g = DenseGraph(200, 42);
  RwrConfig cfg;
  cfg.subgraph_size = 10;
  cfg.sampling_rate = 1.0;
  RwrSampler sampler(cfg);
  Rng rng(43);
  std::vector<NodeId> subset;
  for (NodeId v = 0; v < 120; ++v) subset.push_back(v);
  SubgraphContainer c =
      std::move(sampler.Extract(g, rng, &subset)).ValueOrDie();
  for (const Subgraph& sub : c.subgraphs()) {
    for (NodeId v : sub.nodes) EXPECT_LT(v, 120u);
  }
}

TEST(RwrSamplerTest, RecordsWalkCountersAtCommitTime) {
  Graph g = DenseGraph(200, 44);
  RwrConfig cfg;
  cfg.subgraph_size = 12;
  cfg.sampling_rate = 0.7;
  MetricsRegistry serial_metrics, parallel_metrics;

  cfg.metrics = &serial_metrics;
  cfg.num_threads = 1;
  Rng rng1(45);
  SubgraphContainer serial =
      std::move(RwrSampler(cfg).Extract(g, rng1)).ValueOrDie();

  cfg.metrics = &parallel_metrics;
  cfg.num_threads = 8;
  Rng rng8(45);
  SubgraphContainer parallel =
      std::move(RwrSampler(cfg).Extract(g, rng8)).ValueOrDie();
  ASSERT_EQ(serial.size(), parallel.size());

  const MetricsSnapshot a = serial_metrics.Snapshot();
  const MetricsSnapshot b = parallel_metrics.Snapshot();
  EXPECT_EQ(a.counters.at("sampler.rwr.walks_accepted"), serial.size());
  for (const char* name :
       {"sampler.rwr.walks_accepted", "sampler.rwr.walks_rejected",
        "sampler.rwr.dead_end_restarts"}) {
    EXPECT_EQ(a.counters.at(name), b.counters.at(name)) << name;
  }
}

TEST(RwrSamplerTest, OnThetaBoundedGraphOccurrencesRespectLemma1) {
  // End-to-end naive pipeline audit: occurrences across subgraphs from a
  // theta-bounded graph never exceed min(N_g, container size). Lemma 1's
  // bound is loose; this asserts the audit interface works with it.
  Rng gen_rng(12);
  Graph g = DenseGraph(300, 13);
  Graph bounded = std::move(ThetaBoundedProjection(g, 5, gen_rng)).ValueOrDie();
  RwrConfig cfg;
  cfg.subgraph_size = 10;
  cfg.sampling_rate = 0.5;
  cfg.hop_bound = 2;
  RwrSampler sampler(cfg);
  Rng rng(14);
  SubgraphContainer c = std::move(sampler.Extract(bounded, rng)).ValueOrDie();
  const size_t observed =
      c.MaxOccurrence(bounded.num_nodes()).ValueOrDie();
  const size_t lemma1 = 1 + 5 + 25;  // theta=5, r=2.
  EXPECT_LE(observed, std::min(lemma1, c.size()));
}

}  // namespace
}  // namespace privim
