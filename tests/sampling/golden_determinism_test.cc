// Golden-output regression tests for the sampling / influence hot paths.
//
// The constants in sampler_goldens.inc pin the exact bit-level outputs
// (node ids and order, edge sets, weights, frequency vectors, spread
// doubles) that the samplers produced BEFORE the scratch-workspace rewrite,
// for fixed seeds. Every case here recomputes the same output with the
// current code at thread counts {1, 2, 8} and asserts bit-equality, so
// they enforce two contracts at once:
//
//  * performance work is observationally invisible — reusing epoch-stamped
//    scratch, pooled buffers, or the r-hop-ball cache must not change one
//    byte of output;
//  * the thread count is a throughput knob only (docs/runtime.md) — all
//    counts produce the serial answer.
//
// If a case fails after an INTENTIONAL semantic change, regenerate the
// goldens with tools/golden_gen.cc (see its header for the procedure) and
// say so in the PR description. Never regenerate to paper over an
// unintended diff. Graphs and configs here must stay in lockstep with
// tools/golden_gen.cc.

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "im/diffusion.h"
#include "im/rr_sets.h"
#include "sampling/freq_sampler.h"
#include "sampling/rwr_sampler.h"

#include "golden_hash.h"
#include "sampler_goldens.inc"

namespace privim {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

const Graph& GoldenGraph() {
  static const Graph* g = new Graph([] {
    Rng rng(7);
    return std::move(BarabasiAlbert(300, 4, rng)).ValueOrDie();
  }());
  return *g;
}

const Graph& GoldenWeightedGraph() {
  static const Graph* g = new Graph([] {
    Rng rng(8);
    return std::move(WeightedCascade(
                         std::move(BarabasiAlbert(400, 5, rng)).ValueOrDie()))
        .ValueOrDie();
  }());
  return *g;
}

std::vector<NodeId> GoldenSubset() {
  std::vector<NodeId> subset;
  for (NodeId v = 0; v < GoldenGraph().num_nodes(); v += 3) {
    subset.push_back(v);
  }
  return subset;
}

std::vector<NodeId> GoldenSeeds() {
  std::vector<NodeId> seeds;
  for (NodeId s = 0; s < 10; ++s) seeds.push_back(s * 7);
  return seeds;
}

TEST(GoldenDeterminismTest, RwrFullSweepMatchesPinnedOutput) {
  for (size_t threads : kThreadCounts) {
    RwrConfig cfg;
    cfg.subgraph_size = 12;
    cfg.sampling_rate = 0.5;
    cfg.hop_bound = 3;
    cfg.num_threads = threads;
    Rng rng(101);
    auto c =
        std::move(RwrSampler(cfg).Extract(GoldenGraph(), rng)).ValueOrDie();
    EXPECT_EQ(c.size(), goldens::kRwrFullCount) << "threads=" << threads;
    EXPECT_EQ(HashContainer(c), goldens::kRwrFullHash)
        << "threads=" << threads;
  }
}

TEST(GoldenDeterminismTest, RwrRestrictedMatchesPinnedOutput) {
  const std::vector<NodeId> subset = GoldenSubset();
  for (size_t threads : kThreadCounts) {
    RwrConfig cfg;
    cfg.subgraph_size = 12;
    cfg.sampling_rate = 0.5;
    cfg.hop_bound = 2;
    cfg.num_threads = threads;
    Rng rng(102);
    auto c = std::move(RwrSampler(cfg).Extract(GoldenGraph(), rng, &subset))
                 .ValueOrDie();
    EXPECT_EQ(c.size(), goldens::kRwrRestrictCount) << "threads=" << threads;
    EXPECT_EQ(HashContainer(c), goldens::kRwrRestrictHash)
        << "threads=" << threads;
  }
}

TEST(GoldenDeterminismTest, FreqDualStageMatchesPinnedOutput) {
  for (size_t threads : kThreadCounts) {
    FreqSamplingConfig cfg;
    cfg.subgraph_size = 12;
    cfg.sampling_rate = 0.5;
    cfg.frequency_threshold = 5;
    cfg.num_threads = threads;
    Rng rng(103);
    auto r =
        std::move(FreqSampler(cfg).Extract(GoldenGraph(), rng)).ValueOrDie();
    EXPECT_EQ(r.stage1_count, goldens::kFreqDualStage1)
        << "threads=" << threads;
    EXPECT_EQ(r.stage2_count, goldens::kFreqDualStage2)
        << "threads=" << threads;
    EXPECT_EQ(HashDualStage(r), goldens::kFreqDualHash)
        << "threads=" << threads;
  }
}

TEST(GoldenDeterminismTest, FreqRestrictedScsOnlyMatchesPinnedOutput) {
  const std::vector<NodeId> subset = GoldenSubset();
  for (size_t threads : kThreadCounts) {
    FreqSamplingConfig cfg;
    cfg.subgraph_size = 10;
    cfg.sampling_rate = 0.8;
    cfg.frequency_threshold = 4;
    cfg.decay = 2.0;
    cfg.boundary_stage = false;
    cfg.num_threads = threads;
    Rng rng(104);
    auto r = std::move(FreqSampler(cfg).Extract(GoldenGraph(), rng, &subset))
                 .ValueOrDie();
    EXPECT_EQ(r.stage1_count, goldens::kFreqRestrictStage1)
        << "threads=" << threads;
    EXPECT_EQ(HashDualStage(r), goldens::kFreqRestrictHash)
        << "threads=" << threads;
  }
}

TEST(GoldenDeterminismTest, IcSpreadMatchesPinnedOutputBitForBit) {
  const std::vector<NodeId> seeds = GoldenSeeds();
  for (size_t threads : kThreadCounts) {
    Rng rng(105);
    const double full = EstimateIcSpread(GoldenWeightedGraph(), seeds,
                                         /*trials=*/200, rng,
                                         /*max_steps=*/-1, threads);
    EXPECT_EQ(std::bit_cast<uint64_t>(full),
              std::bit_cast<uint64_t>(goldens::kIcSpreadFull))
        << "threads=" << threads << " value=" << full;

    Rng rng2(106);
    const double one_step = EstimateIcSpread(GoldenWeightedGraph(), seeds,
                                             /*trials=*/64, rng2,
                                             /*max_steps=*/1, threads);
    EXPECT_EQ(std::bit_cast<uint64_t>(one_step),
              std::bit_cast<uint64_t>(goldens::kIcSpreadOneStep))
        << "threads=" << threads << " value=" << one_step;
  }
}

TEST(GoldenDeterminismTest, IcSpreadCallerPoolIsObservationallyInvisible) {
  // A caller-owned workspace pool reused across calls (the Monte-Carlo
  // oracle pattern) must produce the same bits as call-local scratch.
  const std::vector<NodeId> seeds = GoldenSeeds();
  WorkspacePool pool;
  for (int repeat = 0; repeat < 3; ++repeat) {
    Rng rng(105);
    const double full =
        EstimateIcSpread(GoldenWeightedGraph(), seeds, /*trials=*/200, rng,
                         /*max_steps=*/-1, /*num_threads=*/1, &pool);
    EXPECT_EQ(std::bit_cast<uint64_t>(full),
              std::bit_cast<uint64_t>(goldens::kIcSpreadFull))
        << "repeat=" << repeat;
  }
}

TEST(GoldenDeterminismTest, RrSketchMatchesPinnedOutput) {
  for (size_t threads : kThreadCounts) {
    Rng rng(107);
    auto sketch = std::move(RrSketch::Generate(GoldenWeightedGraph(),
                                               /*count=*/500, rng, threads))
                      .ValueOrDie();
    EXPECT_EQ(HashRrSets(sketch.sets()), goldens::kRrSketchHash)
        << "threads=" << threads;
    auto seeds = std::move(sketch.SelectSeeds(5)).ValueOrDie();
    EXPECT_EQ(HashNodeVector(seeds), goldens::kRrSeedsHash)
        << "threads=" << threads;
  }
}

TEST(GoldenDeterminismTest, CascadeSimulatorsMatchPinnedOutput) {
  const std::vector<NodeId> seeds = GoldenSeeds();
  Rng lt(108);
  EXPECT_EQ(SimulateLtCascade(GoldenWeightedGraph(), seeds, lt),
            goldens::kLtCascadeSize);
  Rng ic(109);
  EXPECT_EQ(SimulateIcCascade(GoldenWeightedGraph(), seeds, ic),
            goldens::kIcCascadeSize);
}

TEST(GoldenDeterminismTest, WorkspaceOverloadsMatchAllocatingForms) {
  // The Workspace overloads must replay the identical RNG draw sequence,
  // including on REUSED (dirty) scratch.
  const std::vector<NodeId> seeds = GoldenSeeds();
  Workspace ws;
  for (int repeat = 0; repeat < 3; ++repeat) {
    Rng lt(108);
    EXPECT_EQ(SimulateLtCascade(GoldenWeightedGraph(), seeds, lt,
                                /*max_steps=*/-1, ws),
              goldens::kLtCascadeSize)
        << "repeat=" << repeat;
    Rng ic(109);
    EXPECT_EQ(SimulateIcCascade(GoldenWeightedGraph(), seeds, ic,
                                /*max_steps=*/-1, ws),
              goldens::kIcCascadeSize)
        << "repeat=" << repeat;
  }
}

}  // namespace
}  // namespace privim
