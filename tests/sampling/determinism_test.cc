// Determinism and distributional tests for the samplers: the whole
// experiment pipeline must be reproducible from a single master seed, and
// the samplers' outputs must have the documented distributional behavior.

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sampling/baseline_samplers.h"
#include "sampling/freq_sampler.h"
#include "sampling/rwr_sampler.h"

namespace privim {
namespace {

Graph TestGraph(uint64_t seed) {
  Rng rng(seed);
  return std::move(BarabasiAlbert(250, 4, rng)).ValueOrDie();
}

bool SameContainers(const SubgraphContainer& a, const SubgraphContainer& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].nodes != b[i].nodes) return false;
    if (a[i].local.Edges() != b[i].local.Edges()) return false;
  }
  return true;
}

TEST(SamplerDeterminismTest, RwrIdenticalGivenSeed) {
  Graph g = TestGraph(1);
  RwrConfig cfg;
  cfg.subgraph_size = 12;
  cfg.sampling_rate = 0.5;
  Rng ra(42), rb(42);
  auto a = std::move(RwrSampler(cfg).Extract(g, ra)).ValueOrDie();
  auto b = std::move(RwrSampler(cfg).Extract(g, rb)).ValueOrDie();
  EXPECT_TRUE(SameContainers(a, b));
}

TEST(SamplerDeterminismTest, DualStageIdenticalGivenSeed) {
  Graph g = TestGraph(2);
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 12;
  cfg.sampling_rate = 0.5;
  cfg.frequency_threshold = 5;
  Rng ra(43), rb(43);
  auto a = std::move(FreqSampler(cfg).Extract(g, ra)).ValueOrDie();
  auto b = std::move(FreqSampler(cfg).Extract(g, rb)).ValueOrDie();
  EXPECT_TRUE(SameContainers(a.container, b.container));
  EXPECT_EQ(a.frequency, b.frequency);
  EXPECT_EQ(a.stage1_count, b.stage1_count);
  EXPECT_EQ(a.stage2_count, b.stage2_count);
}

TEST(SamplerDeterminismTest, DifferentSeedsDiffer) {
  Graph g = TestGraph(3);
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 12;
  cfg.sampling_rate = 0.5;
  cfg.frequency_threshold = 5;
  Rng ra(1), rb(2);
  auto a = std::move(FreqSampler(cfg).Extract(g, ra)).ValueOrDie();
  auto b = std::move(FreqSampler(cfg).Extract(g, rb)).ValueOrDie();
  EXPECT_FALSE(SameContainers(a.container, b.container));
}

TEST(SamplerDeterminismTest, EgoAndEgnIdenticalGivenSeed) {
  Graph g = TestGraph(4);
  EgoSamplingConfig ego;
  ego.sampling_rate = 0.5;
  Rng ra(44), rb(44);
  auto ego_a = std::move(EgoSample(g, ego, ra)).ValueOrDie();
  auto ego_b = std::move(EgoSample(g, ego, rb)).ValueOrDie();
  EXPECT_TRUE(SameContainers(ego_a, ego_b));

  Rng rc(45), rd(45);
  auto egn_a = std::move(EgnRandomSample(g, 20, 10, rc)).ValueOrDie();
  auto egn_b = std::move(EgnRandomSample(g, 20, 10, rd)).ValueOrDie();
  EXPECT_TRUE(SameContainers(egn_a, egn_b));
}

TEST(SamplerDistributionTest, SamplingRateScalesContainerLinearly) {
  Graph g = TestGraph(5);
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 10;
  cfg.frequency_threshold = 50;  // Effectively uncapped.
  double prev = 0.0;
  for (double q : {0.1, 0.2, 0.4, 0.8}) {
    cfg.sampling_rate = q;
    Rng rng(46);
    auto result = std::move(FreqSampler(cfg).Extract(g, rng)).ValueOrDie();
    const double count = static_cast<double>(result.container.size());
    EXPECT_GT(count, prev);
    prev = count;
  }
}

TEST(SamplerDistributionTest, StageTwoOnlyTouchesUnsaturatedNodes) {
  Graph g = TestGraph(6);
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 10;
  cfg.sampling_rate = 1.0;
  cfg.frequency_threshold = 3;
  Rng rng(47);
  auto result = std::move(FreqSampler(cfg).Extract(g, rng)).ValueOrDie();
  // Replay stage 1 alone to find the saturated set, then confirm no
  // stage-2 subgraph contains a node saturated *before* stage 2.
  FreqSamplingConfig stage1_only = cfg;
  stage1_only.boundary_stage = false;
  Rng rng2(47);
  auto stage1 =
      std::move(FreqSampler(stage1_only).Extract(g, rng2)).ValueOrDie();
  ASSERT_EQ(stage1.container.size(), result.stage1_count);
  for (size_t i = result.stage1_count; i < result.container.size(); ++i) {
    for (NodeId u : result.container[i].nodes) {
      EXPECT_LT(stage1.frequency[u], cfg.frequency_threshold)
          << "saturated node " << u << " entered a BES subgraph";
    }
  }
}

TEST(SamplerDistributionTest, WalkLengthBoundsFailuresNotSizes) {
  // Shorter walks produce fewer subgraphs but never wrong-sized ones.
  Graph g = TestGraph(7);
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 25;
  cfg.sampling_rate = 1.0;
  cfg.frequency_threshold = 20;
  cfg.boundary_stage = false;
  size_t prev = 0;
  for (size_t len : {30u, 60u, 200u}) {
    cfg.walk_length = len;
    Rng rng(48);
    auto result = std::move(FreqSampler(cfg).Extract(g, rng)).ValueOrDie();
    for (const Subgraph& sub : result.container.subgraphs()) {
      EXPECT_EQ(sub.size(), 25u);
    }
    EXPECT_GE(result.container.size(), prev);
    prev = result.container.size();
  }
}

}  // namespace
}  // namespace privim
