// Randomized property tests for the dual-stage frequency sampler
// (Algorithm 3) plus a statistical test of the Eq. 9 neighbor-selection
// distribution. The property cases sweep decay mu, cap M, shrink factor s,
// subgraph size n, restriction sets, and thread counts, and check the
// invariants the privacy analysis rests on:
//
//  * the global occurrence bound f_v <= M holds EXACTLY (it is N_g* in the
//    sensitivity analysis, so "approximately" is not good enough);
//  * stage-1 subgraphs have exactly n nodes, stage-2 (BES) subgraphs
//    exactly max(2, n/s);
//  * nodes saturated after stage 1 (f_v = M) never appear in BES output;
//  * the reported frequency vector equals the recount over all subgraphs;
//  * with restrict_to, no subgraph contains an outside node.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sampling/freq_sampler.h"

namespace privim {
namespace {

struct CaseParams {
  double decay;
  size_t cap;
  size_t shrink;
  size_t subgraph_size;
  double sampling_rate;
  size_t threads;
  int restrict_mode;  // 0 = none, 1 = every 2nd node, 2 = random subset.
};

CaseParams DrawParams(Rng& rng) {
  static constexpr double kDecays[] = {0.5, 1.0, 2.0};
  static constexpr size_t kThreads[] = {1, 2, 8};
  CaseParams p;
  p.decay = kDecays[rng.UniformInt(3)];
  p.cap = 2 + rng.UniformInt(7);            // M in [2, 8].
  p.shrink = 1 + rng.UniformInt(4);         // s in [1, 4].
  p.subgraph_size = 6 + rng.UniformInt(9);  // n in [6, 14].
  p.sampling_rate = rng.Bernoulli(0.5) ? 1.0 : 0.5;
  p.threads = kThreads[rng.UniformInt(3)];
  p.restrict_mode = static_cast<int>(rng.UniformInt(3));
  return p;
}

TEST(FreqPropertiesTest, InvariantsHoldAcrossRandomizedConfigs) {
  Rng meta(2024);
  for (int trial = 0; trial < 24; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    const CaseParams p = DrawParams(meta);

    // Alternate graph families so hubs and flat degree profiles both run.
    Rng graph_rng(300 + trial);
    Graph g = trial % 2 == 0
                  ? std::move(BarabasiAlbert(150, 4, graph_rng)).ValueOrDie()
                  : std::move(WattsStrogatz(160, 3, 0.2, graph_rng))
                        .ValueOrDie();

    std::vector<NodeId> restrict_to;
    const std::vector<NodeId>* restrict_ptr = nullptr;
    if (p.restrict_mode == 1) {
      for (NodeId v = 0; v < g.num_nodes(); v += 2) restrict_to.push_back(v);
      restrict_ptr = &restrict_to;
    } else if (p.restrict_mode == 2) {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (graph_rng.Bernoulli(0.6)) restrict_to.push_back(v);
      }
      if (restrict_to.size() < 2) restrict_to = {0, 1};
      restrict_ptr = &restrict_to;
    }

    FreqSamplingConfig cfg;
    cfg.decay = p.decay;
    cfg.frequency_threshold = p.cap;
    cfg.shrink_factor = p.shrink;
    cfg.subgraph_size = p.subgraph_size;
    cfg.sampling_rate = p.sampling_rate;
    cfg.num_threads = p.threads;
    Rng rng(700 + trial);
    DualStageResult r =
        std::move(FreqSampler(cfg).Extract(g, rng, restrict_ptr))
            .ValueOrDie();

    const auto& subs = r.container.subgraphs();
    ASSERT_EQ(subs.size(), r.stage1_count + r.stage2_count);

    // Exact occurrence cap: f_v <= M for every node, and the reported
    // vector must equal a recount over the emitted subgraphs.
    std::vector<size_t> recount(g.num_nodes(), 0);
    for (const Subgraph& sub : subs) {
      std::unordered_set<NodeId> unique(sub.nodes.begin(), sub.nodes.end());
      ASSERT_EQ(unique.size(), sub.nodes.size()) << "duplicate node in sub";
      for (NodeId v : sub.nodes) ++recount[v];
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE(r.frequency[v], p.cap) << "node " << v;
      EXPECT_EQ(r.frequency[v], recount[v]) << "node " << v;
    }

    // Stage sizes: exactly n, then exactly max(2, n/s).
    const size_t n2 = std::max<size_t>(2, p.subgraph_size / p.shrink);
    for (size_t i = 0; i < subs.size(); ++i) {
      const size_t expected = i < r.stage1_count ? p.subgraph_size : n2;
      EXPECT_EQ(subs[i].nodes.size(), expected) << "subgraph " << i;
    }

    // Saturated-after-stage-1 nodes are excluded from every BES subgraph.
    std::vector<size_t> stage1_freq(g.num_nodes(), 0);
    for (size_t i = 0; i < r.stage1_count; ++i) {
      for (NodeId v : subs[i].nodes) ++stage1_freq[v];
    }
    for (size_t i = r.stage1_count; i < subs.size(); ++i) {
      for (NodeId v : subs[i].nodes) {
        EXPECT_LT(stage1_freq[v], p.cap)
            << "saturated node " << v << " in BES subgraph " << i;
      }
    }

    // Restriction containment.
    if (restrict_ptr != nullptr) {
      std::unordered_set<NodeId> allowed(restrict_to.begin(),
                                         restrict_to.end());
      for (const Subgraph& sub : subs) {
        for (NodeId v : sub.nodes) {
          EXPECT_TRUE(allowed.contains(v)) << "outside node " << v;
        }
      }
    }
  }
}

// ---- Eq. 9 distribution test -------------------------------------------
//
// Star graph: center 0 with directed edges to leaves 1..L. The start list
// holds the center twice, then every leaf (leaves must be in restrict_to to
// be visitable; their own walks dead-end immediately since leaves have no
// out-edges, so each Extract emits exactly two subgraphs, both {0, leaf}).
//
//  * Walk 1 sees f = 0 everywhere, so Eq. 9's 1/(f_v+1)^mu weights are
//    uniform over the L leaves.
//  * Walk 2 sees f[first pick] = 1, so that leaf's weight drops to 1/2^mu
//    and P(second pick == first pick) = (1/2^mu) / (L - 1 + 1/2^mu).
//
// With L = 10, mu = 2: p_same = 0.25 / 9.25 ≈ 0.02703 (vs 0.1 if the decay
// were ignored). Both hypotheses are tested by chi-square with fixed seeds:
// the acceptance thresholds are the p ≈ 0.001 critical values (27.88 at
// 9 df for uniformity, 10.83 at 1 df for the repeat rate), i.e. a correct
// implementation fails spuriously with probability ~1e-3 per fresh seed —
// and deterministically never, since the seeds here are pinned. The same
// 1-df statistic against the no-decay rate 1/L must REJECT, which is what
// gives the test its power.

TEST(FreqPropertiesTest, ScsNeighborChoiceFollowsEq9Distribution) {
  constexpr size_t kLeaves = 10;
  constexpr double kMu = 2.0;
  constexpr int kTrials = 600;

  GraphBuilder builder(kLeaves + 1);
  for (NodeId leaf = 1; leaf <= kLeaves; ++leaf) {
    ASSERT_TRUE(builder.AddEdge(0, leaf).ok());
  }
  Graph g = std::move(builder.Build()).ValueOrDie();

  std::vector<NodeId> starts{0, 0};
  for (NodeId leaf = 1; leaf <= kLeaves; ++leaf) starts.push_back(leaf);

  FreqSamplingConfig cfg;
  cfg.subgraph_size = 2;
  cfg.sampling_rate = 1.0;
  cfg.decay = kMu;
  cfg.frequency_threshold = 10;
  cfg.boundary_stage = false;
  cfg.walk_length = 5;
  FreqSampler sampler(cfg);

  std::vector<int> first_pick_counts(kLeaves + 1, 0);
  int same_pick = 0;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(9000 + t);
    DualStageResult r =
        std::move(sampler.Extract(g, rng, &starts)).ValueOrDie();
    ASSERT_EQ(r.stage1_count, 2u) << "trial " << t;
    const auto& subs = r.container.subgraphs();
    ASSERT_EQ(subs[0].nodes.size(), 2u);
    ASSERT_EQ(subs[0].nodes[0], 0u);  // Walk order: start first.
    ASSERT_EQ(subs[1].nodes[0], 0u);
    const NodeId first = subs[0].nodes[1];
    const NodeId second = subs[1].nodes[1];
    ++first_pick_counts[first];
    if (second == first) ++same_pick;
  }

  // First pick: uniform over the leaves (all frequencies zero).
  const double expect_each = static_cast<double>(kTrials) / kLeaves;
  double chi2_uniform = 0.0;
  for (NodeId leaf = 1; leaf <= kLeaves; ++leaf) {
    const double d = first_pick_counts[leaf] - expect_each;
    chi2_uniform += d * d / expect_each;
  }
  EXPECT_LT(chi2_uniform, 27.88)  // chi2(9 df) at p = 0.001.
      << "first pick deviates from uniform";

  // Second pick: repeat probability follows Eq. 9.
  auto chi2_repeat = [&](double p_same) {
    const double e_same = kTrials * p_same;
    const double e_diff = kTrials - e_same;
    const double d_same = same_pick - e_same;
    const double d_diff = (kTrials - same_pick) - e_diff;
    return d_same * d_same / e_same + d_diff * d_diff / e_diff;
  };
  const double w = 1.0 / std::pow(2.0, kMu);  // Decayed weight 1/2^mu.
  const double p_eq9 = w / (kLeaves - 1 + w);
  EXPECT_LT(chi2_repeat(p_eq9), 10.83)  // chi2(1 df) at p = 0.001.
      << "repeat rate " << same_pick << "/" << kTrials
      << " inconsistent with Eq. 9 p = " << p_eq9;
  // Power check: the no-decay hypothesis (uniform re-pick, p = 1/L) must
  // be rejected at the same threshold — otherwise this test could not
  // distinguish Eq. 9 from a sampler that ignores mu.
  EXPECT_GT(chi2_repeat(1.0 / kLeaves), 10.83)
      << "test lost its power to detect a missing decay";
}

}  // namespace
}  // namespace privim
