// r-hop ball correctness tests for the RWR sampler (Algorithm 1).
//
// The sampler restricts every walk to the r-hop out-ball of its start node
// and caches those balls in a per-workspace LRU (runtime/scratch.h). These
// tests check the constraint against an independent brute-force BFS —
// including the hop_bound = 0 and disconnected-start edge cases — and that
// serving a ball from a warm cache is observationally identical to
// computing it fresh.

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sampling/rwr_sampler.h"

#include "golden_hash.h"

namespace privim {
namespace {

constexpr int32_t kUnreached = std::numeric_limits<int32_t>::max();

// Brute-force BFS hop distances from `start` over out-edges — the
// reference implementation the sampler's stamped-map BFS must agree with.
std::vector<int32_t> BfsDistances(const Graph& g, NodeId start) {
  std::vector<int32_t> dist(g.num_nodes(), kUnreached);
  dist[start] = 0;
  std::vector<NodeId> frontier{start};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId v : g.OutNeighbors(u)) {
        if (dist[v] == kUnreached) {
          dist[v] = dist[u] + 1;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

TEST(RwrBallTest, EverySubgraphStaysInsideTheHopBall) {
  Rng graph_rng(31);
  const Graph g = std::move(BarabasiAlbert(200, 3, graph_rng)).ValueOrDie();

  for (int hop_bound : {1, 2, 3}) {
    SCOPED_TRACE(testing::Message() << "hop_bound " << hop_bound);
    RwrConfig cfg;
    cfg.subgraph_size = 8;
    cfg.sampling_rate = 1.0;
    cfg.hop_bound = hop_bound;
    Rng rng(32);
    auto c = std::move(RwrSampler(cfg).Extract(g, rng)).ValueOrDie();
    ASSERT_GT(c.size(), 0u);
    for (const Subgraph& sub : c.subgraphs()) {
      ASSERT_EQ(sub.nodes.size(), cfg.subgraph_size);
      // The walk records its start first (InduceSubgraph keeps visit order).
      const std::vector<int32_t> dist = BfsDistances(g, sub.nodes[0]);
      for (NodeId v : sub.nodes) {
        ASSERT_NE(dist[v], kUnreached) << "node " << v << " unreachable";
        EXPECT_LE(dist[v], hop_bound) << "node " << v << " outside ball";
      }
    }
  }
}

TEST(RwrBallTest, HopBoundZeroYieldsNoSubgraphs) {
  // The 0-hop ball is {start} alone, so no walk can ever reach the minimum
  // subgraph size of 2 — the container must come back empty, not crash.
  Rng graph_rng(33);
  const Graph g = std::move(BarabasiAlbert(50, 3, graph_rng)).ValueOrDie();
  RwrConfig cfg;
  cfg.subgraph_size = 2;
  cfg.sampling_rate = 1.0;
  cfg.hop_bound = 0;
  Rng rng(34);
  auto c = std::move(RwrSampler(cfg).Extract(g, rng)).ValueOrDie();
  EXPECT_EQ(c.size(), 0u);
}

TEST(RwrBallTest, DisconnectedStartsCannotCrossComponents) {
  // Nodes 0..4 form a directed cycle; 5..8 are fully isolated. Walks from
  // the cycle must stay inside it, walks from isolated nodes produce
  // nothing (their ball is just themselves).
  GraphBuilder builder(9);
  for (NodeId v = 0; v < 5; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, (v + 1) % 5).ok());
  }
  const Graph g = std::move(builder.Build()).ValueOrDie();

  RwrConfig cfg;
  cfg.subgraph_size = 3;
  cfg.sampling_rate = 1.0;
  cfg.hop_bound = 4;
  Rng rng(35);
  auto c = std::move(RwrSampler(cfg).Extract(g, rng)).ValueOrDie();
  ASSERT_GT(c.size(), 0u);
  for (const Subgraph& sub : c.subgraphs()) {
    for (NodeId v : sub.nodes) {
      EXPECT_LT(v, 5u) << "isolated node " << v << " appeared in a subgraph";
    }
  }
}

TEST(RwrBallTest, WarmBallCacheIsObservationallyInvisible) {
  // One sampler instance keeps its r-hop-ball cache across Extract calls.
  // Re-running the same (graph, seed) on the warm instance must reproduce
  // the cold run byte for byte, and match a fresh instance — the cache can
  // change timings, never results.
  Rng graph_rng(36);
  const Graph g = std::move(BarabasiAlbert(150, 3, graph_rng)).ValueOrDie();
  RwrConfig cfg;
  cfg.subgraph_size = 10;
  cfg.sampling_rate = 1.0;
  cfg.hop_bound = 2;

  RwrSampler warm(cfg);
  Rng cold_rng(37);
  auto cold = std::move(warm.Extract(g, cold_rng)).ValueOrDie();
  const uint64_t cold_hash = HashContainer(cold);
  ASSERT_GT(cold.size(), 0u);

  for (int repeat = 0; repeat < 3; ++repeat) {
    Rng rng(37);
    auto again = std::move(warm.Extract(g, rng)).ValueOrDie();
    EXPECT_EQ(HashContainer(again), cold_hash) << "repeat " << repeat;
  }

  RwrSampler fresh(cfg);
  Rng rng(37);
  auto fresh_run = std::move(fresh.Extract(g, rng)).ValueOrDie();
  EXPECT_EQ(HashContainer(fresh_run), cold_hash);
}

}  // namespace
}  // namespace privim
