#include "sampling/freq_sampler.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace privim {
namespace {

Graph DenseGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  return std::move(ErdosRenyi(n, 0.08, /*directed=*/false, rng))
      .ValueOrDie();
}

FreqSamplingConfig BasicConfig() {
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 12;
  cfg.sampling_rate = 0.6;
  cfg.frequency_threshold = 4;
  cfg.walk_length = 200;
  cfg.shrink_factor = 2;
  return cfg;
}

TEST(FreqSamplerTest, FrequencyCapNeverExceeded) {
  // The privacy-critical invariant: no node occurs in more than M
  // subgraphs across BOTH stages.
  Graph g = DenseGraph(300, 1);
  FreqSampler sampler(BasicConfig());
  Rng rng(2);
  DualStageResult result = std::move(sampler.Extract(g, rng)).ValueOrDie();
  ASSERT_GT(result.container.size(), 0u);
  const std::vector<size_t> hist =
      result.container.OccurrenceHistogram(g.num_nodes()).ValueOrDie();
  for (size_t h : hist) EXPECT_LE(h, 4u);
  EXPECT_LE(result.container.MaxOccurrence(g.num_nodes()).ValueOrDie(),
            4u);
}

TEST(FreqSamplerTest, FrequencyVectorMatchesContainer) {
  Graph g = DenseGraph(200, 3);
  FreqSampler sampler(BasicConfig());
  Rng rng(4);
  DualStageResult result = std::move(sampler.Extract(g, rng)).ValueOrDie();
  const std::vector<size_t> hist =
      result.container.OccurrenceHistogram(g.num_nodes()).ValueOrDie();
  ASSERT_EQ(result.frequency.size(), hist.size());
  for (size_t v = 0; v < hist.size(); ++v) {
    EXPECT_EQ(result.frequency[v], hist[v]) << "node " << v;
  }
}

TEST(FreqSamplerTest, StageOneSubgraphsHaveSizeN) {
  Graph g = DenseGraph(300, 5);
  FreqSamplingConfig cfg = BasicConfig();
  cfg.boundary_stage = false;
  FreqSampler sampler(cfg);
  Rng rng(6);
  DualStageResult result = std::move(sampler.Extract(g, rng)).ValueOrDie();
  EXPECT_EQ(result.stage2_count, 0u);
  for (const Subgraph& sub : result.container.subgraphs()) {
    EXPECT_EQ(sub.size(), cfg.subgraph_size);
    std::unordered_set<NodeId> uniq(sub.nodes.begin(), sub.nodes.end());
    EXPECT_EQ(uniq.size(), sub.size());
  }
}

TEST(FreqSamplerTest, BoundaryStageUsesShrunkSize) {
  Graph g = DenseGraph(300, 7);
  FreqSamplingConfig cfg = BasicConfig();
  FreqSampler sampler(cfg);
  Rng rng(8);
  DualStageResult result = std::move(sampler.Extract(g, rng)).ValueOrDie();
  // Stage-2 subgraphs sit at the tail of the container.
  for (size_t i = result.stage1_count; i < result.container.size(); ++i) {
    EXPECT_EQ(result.container[i].size(),
              cfg.subgraph_size / cfg.shrink_factor);
  }
}

TEST(FreqSamplerTest, BoundaryStageAddsSubgraphsOnDenseGraphs) {
  Graph g = DenseGraph(400, 9);
  FreqSamplingConfig with_bes = BasicConfig();
  FreqSamplingConfig without_bes = BasicConfig();
  without_bes.boundary_stage = false;
  Rng rng_a(10), rng_b(10);
  auto with_result =
      std::move(FreqSampler(with_bes).Extract(g, rng_a)).ValueOrDie();
  auto without_result =
      std::move(FreqSampler(without_bes).Extract(g, rng_b)).ValueOrDie();
  // Same stage-1 output (same seed), plus extra boundary subgraphs.
  EXPECT_EQ(with_result.stage1_count, without_result.stage1_count);
  EXPECT_GT(with_result.container.size(), without_result.container.size());
}

TEST(FreqSamplerTest, BoundaryStageExcludesSaturatedNodes) {
  Graph g = DenseGraph(300, 11);
  FreqSamplingConfig cfg = BasicConfig();
  cfg.frequency_threshold = 2;  // Saturate quickly.
  cfg.sampling_rate = 1.0;
  FreqSampler sampler(cfg);
  Rng rng(12);
  DualStageResult result = std::move(sampler.Extract(g, rng)).ValueOrDie();
  // Find nodes saturated after stage 1 by replaying: any node at the cap in
  // the final frequency vector that appears in a stage-2 subgraph must have
  // been below the cap when stage 2 sampled it. Weaker but sufficient
  // check: overall cap still holds (primary invariant) and stage-2
  // subgraphs never contain a node more than once.
  EXPECT_LE(result.container.MaxOccurrence(g.num_nodes()).ValueOrDie(),
            cfg.frequency_threshold);
}

TEST(FreqSamplerTest, DecayReducesRepeatSampling) {
  // With strong decay, hub nodes should occur less often than with no
  // decay. Compare total occurrences of the top-degree node.
  Rng gen(13);
  Graph g = std::move(BarabasiAlbert(300, 4, gen)).ValueOrDie();
  NodeId hub = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(hub)) hub = v;
  }
  FreqSamplingConfig no_decay = BasicConfig();
  no_decay.decay = 0.0;
  no_decay.frequency_threshold = 50;  // Cap off so decay drives behavior.
  FreqSamplingConfig strong_decay = no_decay;
  strong_decay.decay = 3.0;
  Rng rng_a(14), rng_b(14);
  auto r_none =
      std::move(FreqSampler(no_decay).Extract(g, rng_a)).ValueOrDie();
  auto r_decay =
      std::move(FreqSampler(strong_decay).Extract(g, rng_b)).ValueOrDie();
  ASSERT_GT(r_none.container.size(), 0u);
  ASSERT_GT(r_decay.container.size(), 0u);
  const double rate_none =
      static_cast<double>(r_none.frequency[hub]) /
      static_cast<double>(r_none.container.size());
  const double rate_decay =
      static_cast<double>(r_decay.frequency[hub]) /
      static_cast<double>(r_decay.container.size());
  EXPECT_LT(rate_decay, rate_none);
}

TEST(FreqSamplerTest, RestrictToLimitsNodes) {
  Graph g = DenseGraph(200, 15);
  std::vector<NodeId> allowed;
  for (NodeId v = 0; v < 100; ++v) allowed.push_back(v);
  FreqSamplingConfig cfg = BasicConfig();
  cfg.sampling_rate = 1.0;
  FreqSampler sampler(cfg);
  Rng rng(16);
  DualStageResult result =
      std::move(sampler.Extract(g, rng, &allowed)).ValueOrDie();
  for (const Subgraph& sub : result.container.subgraphs()) {
    for (NodeId u : sub.nodes) EXPECT_LT(u, 100u);
  }
}

TEST(FreqSamplerTest, RejectsInvalidConfig) {
  Graph g = DenseGraph(50, 17);
  Rng rng(18);
  FreqSamplingConfig cfg = BasicConfig();
  cfg.subgraph_size = 1;
  EXPECT_FALSE(FreqSampler(cfg).Extract(g, rng).ok());
  cfg = BasicConfig();
  cfg.frequency_threshold = 0;
  EXPECT_FALSE(FreqSampler(cfg).Extract(g, rng).ok());
  cfg = BasicConfig();
  cfg.shrink_factor = 0;
  EXPECT_FALSE(FreqSampler(cfg).Extract(g, rng).ok());
  cfg = BasicConfig();
  cfg.sampling_rate = 0.0;
  EXPECT_FALSE(FreqSampler(cfg).Extract(g, rng).ok());
}

class FreqCapSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FreqCapSweepTest, CapHoldsForAllThresholds) {
  Graph g = DenseGraph(250, 19);
  FreqSamplingConfig cfg = BasicConfig();
  cfg.frequency_threshold = GetParam();
  cfg.sampling_rate = 1.0;
  FreqSampler sampler(cfg);
  Rng rng(20 + GetParam());
  DualStageResult result = std::move(sampler.Extract(g, rng)).ValueOrDie();
  EXPECT_LE(result.container.MaxOccurrence(g.num_nodes()).ValueOrDie(),
            GetParam());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FreqCapSweepTest,
                         ::testing::Values(1u, 2u, 4u, 6u, 8u, 10u, 12u));

// Regression: an out-of-range id in `restrict_to` used to index the
// eligibility and frequency vectors out of bounds (a heap overwrite under
// ASan). It must be rejected up front as InvalidArgument.
TEST(FreqSamplerTest, RejectsOutOfRangeRestrictTo) {
  Graph g = DenseGraph(50, 30);
  FreqSampler sampler(BasicConfig());
  Rng rng(31);
  const std::vector<NodeId> bad = {0, 3, 50};  // 50 == num_nodes.
  const Result<DualStageResult> result = sampler.Extract(g, rng, &bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  const std::vector<NodeId> worse = {1000000};
  EXPECT_EQ(sampler.Extract(g, rng, &worse).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FreqSamplerTest, InRangeRestrictToStillWorks) {
  Graph g = DenseGraph(200, 32);
  FreqSampler sampler(BasicConfig());
  Rng rng(33);
  std::vector<NodeId> subset;
  for (NodeId v = 0; v < 150; ++v) subset.push_back(v);
  DualStageResult result =
      std::move(sampler.Extract(g, rng, &subset)).ValueOrDie();
  for (const Subgraph& sub : result.container.subgraphs()) {
    for (NodeId v : sub.nodes) EXPECT_LT(v, 150u);
  }
}

TEST(FreqSamplerTest, RecordsDeterministicWalkCounters) {
  Graph g = DenseGraph(200, 34);
  MetricsRegistry serial_metrics, parallel_metrics;

  FreqSamplingConfig cfg = BasicConfig();
  cfg.metrics = &serial_metrics;
  cfg.num_threads = 1;
  Rng rng1(35);
  DualStageResult serial =
      std::move(FreqSampler(cfg).Extract(g, rng1)).ValueOrDie();

  cfg.metrics = &parallel_metrics;
  cfg.num_threads = 8;
  Rng rng8(35);
  DualStageResult parallel =
      std::move(FreqSampler(cfg).Extract(g, rng8)).ValueOrDie();
  ASSERT_EQ(serial.container.size(), parallel.container.size());

  const MetricsSnapshot a = serial_metrics.Snapshot();
  const MetricsSnapshot b = parallel_metrics.Snapshot();
  // Accepted walks == committed subgraphs, and every walk counter matches
  // the serial semantics regardless of the thread count. stale_replays is
  // the one thread-dependent diagnostic and is excluded by contract.
  EXPECT_EQ(a.counters.at("sampler.freq.walks_accepted"),
            serial.container.size());
  for (const char* name :
       {"sampler.freq.walks_accepted", "sampler.freq.walks_rejected",
        "sampler.freq.dead_end_restarts"}) {
    EXPECT_EQ(a.counters.at(name), b.counters.at(name)) << name;
  }
  // The frequency histogram observes every start node's final occurrence
  // count, so its total is the start count and its sum the frequency mass.
  const auto& hist = a.histograms.at("sampler.freq.frequency");
  EXPECT_EQ(hist.total, g.num_nodes());
  double mass = 0.0;
  for (size_t freq : serial.frequency) mass += static_cast<double>(freq);
  EXPECT_DOUBLE_EQ(hist.sum, mass);
}

}  // namespace
}  // namespace privim
