#include "sampling/baseline_samplers.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace privim {
namespace {

Graph DenseGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  return std::move(ErdosRenyi(n, 0.08, false, rng)).ValueOrDie();
}

TEST(EgnRandomSampleTest, ProducesRequestedCountAndSize) {
  Graph g = DenseGraph(100, 1);
  Rng rng(2);
  SubgraphContainer c =
      std::move(EgnRandomSample(g, 20, 10, rng)).ValueOrDie();
  EXPECT_EQ(c.size(), 20u);
  for (const Subgraph& sub : c.subgraphs()) {
    EXPECT_EQ(sub.size(), 10u);
    std::unordered_set<NodeId> uniq(sub.nodes.begin(), sub.nodes.end());
    EXPECT_EQ(uniq.size(), 10u);
  }
}

TEST(EgnRandomSampleTest, NoFrequencyControl) {
  // With enough subgraphs relative to nodes, some node must repeat —
  // demonstrating EGN's unbounded occurrences.
  Graph g = DenseGraph(20, 3);
  Rng rng(4);
  SubgraphContainer c =
      std::move(EgnRandomSample(g, 30, 10, rng)).ValueOrDie();
  EXPECT_GT(c.MaxOccurrence(20).ValueOrDie(), 10u);
}

TEST(EgnRandomSampleTest, RejectsBadSize) {
  Graph g = DenseGraph(10, 5);
  Rng rng(6);
  EXPECT_FALSE(EgnRandomSample(g, 5, 1, rng).ok());
  EXPECT_FALSE(EgnRandomSample(g, 5, 11, rng).ok());
}

TEST(EgoSampleTest, RootsAreFirstNode) {
  Graph g = DenseGraph(200, 7);
  EgoSamplingConfig cfg;
  cfg.sampling_rate = 0.5;
  Rng rng(8);
  SubgraphContainer c = std::move(EgoSample(g, cfg, rng)).ValueOrDie();
  ASSERT_GT(c.size(), 0u);
  for (const Subgraph& sub : c.subgraphs()) {
    // All nodes lie within `hops` of the root.
    const std::vector<int> dist = BfsDistances(g, sub.nodes[0]);
    for (NodeId u : sub.nodes) {
      ASSERT_GE(dist[u], 0);
      EXPECT_LE(dist[u], cfg.hops);
    }
  }
}

TEST(EgoSampleTest, RespectsMaxNodes) {
  Graph g = DenseGraph(300, 9);
  EgoSamplingConfig cfg;
  cfg.sampling_rate = 0.5;
  cfg.max_nodes = 12;
  Rng rng(10);
  SubgraphContainer c = std::move(EgoSample(g, cfg, rng)).ValueOrDie();
  for (const Subgraph& sub : c.subgraphs()) {
    EXPECT_LE(sub.size(), 12u);
    EXPECT_GE(sub.size(), 2u);
  }
}

TEST(EgoSampleTest, FanoutBoundsChildren) {
  // Star graph with a huge hub: each ego tree from the hub keeps at most
  // `fanout` leaves.
  GraphBuilder b(101);
  for (NodeId v = 1; v <= 100; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  EgoSamplingConfig cfg;
  cfg.sampling_rate = 1.0;
  cfg.fanout = 7;
  cfg.max_nodes = 100;
  Rng rng(11);
  SubgraphContainer c = std::move(EgoSample(g, cfg, rng)).ValueOrDie();
  for (const Subgraph& sub : c.subgraphs()) {
    if (sub.nodes[0] == 0) {
      EXPECT_LE(sub.size(), 1u + 7u);
    }
  }
}

TEST(EgoSampleTest, SkipsIsolatedRoots) {
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  EgoSamplingConfig cfg;
  cfg.sampling_rate = 1.0;
  Rng rng(12);
  SubgraphContainer c = std::move(EgoSample(g, cfg, rng)).ValueOrDie();
  for (const Subgraph& sub : c.subgraphs()) {
    EXPECT_GE(sub.size(), 2u);
  }
}

TEST(EgoSampleTest, RejectsBadConfig) {
  Graph g = DenseGraph(20, 13);
  Rng rng(14);
  EgoSamplingConfig cfg;
  cfg.sampling_rate = 0.0;
  EXPECT_FALSE(EgoSample(g, cfg, rng).ok());
  cfg = EgoSamplingConfig();
  cfg.fanout = 0;
  EXPECT_FALSE(EgoSample(g, cfg, rng).ok());
  cfg = EgoSamplingConfig();
  cfg.max_nodes = 1;
  EXPECT_FALSE(EgoSample(g, cfg, rng).ok());
}

TEST(EgoOccurrenceBoundTest, GeometricClampedByContainer) {
  EgoSamplingConfig cfg;
  cfg.fanout = 10;
  cfg.hops = 2;
  // Lemma-1 style bound: 1 + 10 + 100 = 111.
  EXPECT_EQ(EgoOccurrenceBound(cfg, 1000), 111u);
  EXPECT_EQ(EgoOccurrenceBound(cfg, 50), 50u);
}

TEST(EgoSampleTest, ObservedOccurrencesRespectBound) {
  Graph g = DenseGraph(300, 15);
  EgoSamplingConfig cfg;
  cfg.sampling_rate = 0.8;
  Rng rng(16);
  SubgraphContainer c = std::move(EgoSample(g, cfg, rng)).ValueOrDie();
  EXPECT_LE(c.MaxOccurrence(g.num_nodes()).ValueOrDie(),
            EgoOccurrenceBound(cfg, c.size()));
}

}  // namespace
}  // namespace privim
