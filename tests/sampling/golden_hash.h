#ifndef PRIVIM_TESTS_SAMPLING_GOLDEN_HASH_H_
#define PRIVIM_TESTS_SAMPLING_GOLDEN_HASH_H_

// Canonical FNV-1a serialization of sampler/influence outputs, shared by
// tools/golden_gen.cc (which pins the constants) and the golden
// determinism tests (which recompute and compare). A hash mismatch means
// some byte of the output — node ids, their order, edge sets, weights,
// frequency vectors — changed.

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sampling/container.h"
#include "sampling/freq_sampler.h"

namespace privim {

class GoldenHasher {
 public:
  void Mix(uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (x >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  void Mix(double d) { Mix(std::bit_cast<uint64_t>(d)); }
  void Mix(float f) { Mix(static_cast<uint64_t>(std::bit_cast<uint32_t>(f))); }

  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
};

inline uint64_t HashNodeVector(const std::vector<NodeId>& nodes) {
  GoldenHasher h;
  h.Mix(static_cast<uint64_t>(nodes.size()));
  for (NodeId v : nodes) h.Mix(static_cast<uint64_t>(v));
  return h.value();
}

inline uint64_t HashContainer(const SubgraphContainer& c) {
  GoldenHasher h;
  h.Mix(static_cast<uint64_t>(c.size()));
  for (const Subgraph& sub : c.subgraphs()) {
    h.Mix(static_cast<uint64_t>(sub.nodes.size()));
    for (NodeId v : sub.nodes) h.Mix(static_cast<uint64_t>(v));
    for (const Edge& e : sub.local.Edges()) {
      h.Mix(static_cast<uint64_t>(e.src));
      h.Mix(static_cast<uint64_t>(e.dst));
      h.Mix(e.weight);
    }
  }
  return h.value();
}

inline uint64_t HashDualStage(const DualStageResult& r) {
  GoldenHasher h;
  h.Mix(HashContainer(r.container));
  h.Mix(static_cast<uint64_t>(r.stage1_count));
  h.Mix(static_cast<uint64_t>(r.stage2_count));
  h.Mix(static_cast<uint64_t>(r.frequency.size()));
  for (size_t f : r.frequency) h.Mix(static_cast<uint64_t>(f));
  return h.value();
}

inline uint64_t HashRrSets(const std::vector<std::vector<NodeId>>& sets) {
  GoldenHasher h;
  h.Mix(static_cast<uint64_t>(sets.size()));
  for (const auto& rr : sets) h.Mix(HashNodeVector(rr));
  return h.value();
}

}  // namespace privim

#endif  // PRIVIM_TESTS_SAMPLING_GOLDEN_HASH_H_
