#include "sampling/container.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/subgraph.h"

namespace privim {
namespace {

Subgraph MakeSub(const Graph& g, std::vector<NodeId> nodes) {
  return std::move(InduceSubgraph(g, std::move(nodes))).ValueOrDie();
}

TEST(SubgraphContainerTest, AddAndAccess) {
  Rng rng(1);
  Graph g = std::move(ErdosRenyi(10, 0.3, true, rng)).ValueOrDie();
  SubgraphContainer c;
  EXPECT_TRUE(c.empty());
  c.Add(MakeSub(g, {0, 1, 2}));
  c.Add(MakeSub(g, {3, 4}));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].size(), 3u);
  EXPECT_EQ(c[1].nodes[0], 3u);
}

TEST(SubgraphContainerTest, OccurrenceHistogramCounts) {
  Rng rng(2);
  Graph g = std::move(ErdosRenyi(6, 0.5, true, rng)).ValueOrDie();
  SubgraphContainer c;
  c.Add(MakeSub(g, {0, 1}));
  c.Add(MakeSub(g, {0, 2}));
  c.Add(MakeSub(g, {0, 1, 3}));
  const std::vector<size_t> hist =
      c.OccurrenceHistogram(6).ValueOrDie();
  EXPECT_EQ(hist[0], 3u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_EQ(hist[4], 0u);
  EXPECT_EQ(c.MaxOccurrence(6).ValueOrDie(), 3u);
}

TEST(SubgraphContainerTest, MergeMovesAll) {
  Rng rng(3);
  Graph g = std::move(ErdosRenyi(6, 0.5, true, rng)).ValueOrDie();
  SubgraphContainer a, b;
  a.Add(MakeSub(g, {0, 1}));
  b.Add(MakeSub(g, {2, 3}));
  b.Add(MakeSub(g, {4, 5}));
  a.Merge(std::move(b));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 0u);  // NOLINT(bugprone-use-after-move): documented.
  EXPECT_EQ(a[2].nodes[0], 4u);
}

TEST(SubgraphContainerTest, EmptyHistogram) {
  SubgraphContainer c;
  EXPECT_EQ(c.MaxOccurrence(5).ValueOrDie(), 0u);
  EXPECT_EQ(c.OccurrenceHistogram(5).ValueOrDie(),
            std::vector<size_t>(5, 0));
}

}  // namespace
}  // namespace privim
