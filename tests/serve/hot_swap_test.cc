// Snapshot hot-swap torture: many client threads query while a swapper
// thread flips the published snapshot as fast as it can. The invariants —
// checked for every single response — are the serving layer's correctness
// contract under swap:
//
//   1. Attribution: every response carries the id of exactly one of the
//      published snapshots (no torn or mixed answers).
//   2. Determinism: a response is a pure function of (snapshot, request
//      seed) — it equals the answer a standalone warm QueryEngine computes
//      for that same snapshot, bit for bit.
//
// Runs at 2 and 8 worker threads; tools/run_tsan.sh puts this binary on
// the TSan rung, where the swap path's synchronization is the subject
// under test.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "nn/features.h"
#include "serve/query_engine.h"
#include "serve/server.h"

namespace privim {
namespace {

GnnConfig SmallConfig() {
  GnnConfig cfg;
  cfg.type = GnnType::kGrat;
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  return cfg;
}

std::shared_ptr<const ModelSnapshot> MakeSnapshot(const Graph& g,
                                                  uint64_t seed) {
  Rng rng(seed);
  auto model = std::make_unique<GnnModel>(SmallConfig(), rng);
  return std::move(ModelSnapshot::FromModel(std::move(model), g))
      .ValueOrDie();
}

/// The request variants clients cycle through; a mix of estimators keeps
/// both the inference and the diffusion caches hot across swaps.
std::vector<QueryRequest> Variants() {
  std::vector<QueryRequest> variants;
  for (uint64_t s = 0; s < 4; ++s) {
    QueryRequest req;
    req.type = QueryType::kTopK;
    req.k = 6;
    req.estimator =
        (s % 2 == 0) ? SpreadEstimator::kExact
                     : SpreadEstimator::kMonteCarloIc;
    req.trials = 4;
    req.max_steps = 1;
    req.seed = s;
    variants.push_back(std::move(req));
  }
  return variants;
}

struct Expected {
  std::vector<NodeId> seeds;
  std::vector<double> values;
  double spread = 0.0;
};

void TortureAt(size_t num_threads) {
  Rng graph_rng(77);
  Graph g = std::move(ErdosRenyi(60, 0.1, true, graph_rng)).ValueOrDie();
  const auto snap_a = MakeSnapshot(g, 101);
  const auto snap_b = MakeSnapshot(g, 202);
  ASSERT_NE(snap_a->id(), snap_b->id());

  // Ground truth per (snapshot, variant), computed on a standalone engine
  // before any concurrency exists.
  const std::vector<QueryRequest> variants = Variants();
  std::map<uint64_t, std::vector<Expected>> expected;
  {
    QueryEngine engine;
    for (const auto& snap : {snap_a, snap_b}) {
      std::vector<Expected>& per_variant = expected[snap->id()];
      for (const QueryRequest& req : variants) {
        QueryResponse resp;
        ASSERT_TRUE(
            engine.Execute(g, snap.get(), nullptr, req, resp).ok());
        per_variant.push_back(
            Expected{resp.seeds, resp.values, resp.spread});
      }
    }
  }

  ServeConfig cfg;
  cfg.num_threads = num_threads;
  cfg.queue_capacity = 256;
  Server server(g, cfg);
  ASSERT_TRUE(server.SwapSnapshot(snap_a).ok());
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop_swapping{false};
  std::atomic<size_t> swaps{0};
  std::thread swapper([&] {
    bool use_a = false;
    while (!stop_swapping.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(server.SwapSnapshot(use_a ? snap_a : snap_b).ok());
      swaps.fetch_add(1, std::memory_order_relaxed);
      use_a = !use_a;
    }
  });

  constexpr size_t kClients = 4;
  constexpr size_t kQueriesPerClient = 50;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      QueryResponse resp;
      for (size_t i = 0; i < kQueriesPerClient; ++i) {
        const size_t v = (c + i) % variants.size();
        const Status s = server.Query(variants[v], resp);
        if (!s.ok()) {
          failures[c] = "query failed: " + s.ToString();
          return;
        }
        const auto it = expected.find(resp.snapshot_id);
        if (it == expected.end()) {
          failures[c] = "response from unknown snapshot id " +
                        std::to_string(resp.snapshot_id);
          return;
        }
        const Expected& want = it->second[v];
        if (resp.seeds != want.seeds || resp.values != want.values ||
            resp.spread != want.spread) {
          failures[c] = "response diverged from snapshot " +
                        std::to_string(resp.snapshot_id) +
                        "'s deterministic answer (variant " +
                        std::to_string(v) + ")";
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop_swapping.store(true);
  swapper.join();
  server.Stop();

  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": "
                                     << failures[c];
  }
  EXPECT_GT(swaps.load(), 0u);
}

TEST(HotSwapTortureTest, TwoWorkers) { TortureAt(2); }

TEST(HotSwapTortureTest, EightWorkers) { TortureAt(8); }

TEST(HotSwapTortureTest, InFlightQueriesKeepOldSnapshotAlive) {
  // Structural variant of the refcount contract: after a swap, the old
  // snapshot object survives as long as someone holds it (here: the test,
  // standing in for an in-flight query) and its answers stay valid.
  Rng graph_rng(5);
  Graph g = std::move(ErdosRenyi(30, 0.15, true, graph_rng)).ValueOrDie();
  auto snap_a = MakeSnapshot(g, 1);
  const uint64_t id_a = snap_a->id();
  std::weak_ptr<const ModelSnapshot> weak_a = snap_a;

  ServeConfig cfg;
  cfg.num_threads = 1;
  Server server(g, cfg);
  ASSERT_TRUE(server.SwapSnapshot(snap_a).ok());

  // A reader takes a reference (as a worker batch would)...
  std::shared_ptr<const ModelSnapshot> in_flight = server.CurrentSnapshot();
  // ...then the snapshot is replaced and the builder's handle dropped.
  ASSERT_TRUE(server.SwapSnapshot(MakeSnapshot(g, 2)).ok());
  snap_a.reset();

  EXPECT_FALSE(weak_a.expired());  // The in-flight reference keeps it.
  EXPECT_EQ(in_flight->id(), id_a);
  EXPECT_NE(server.CurrentSnapshot()->id(), id_a);

  in_flight.reset();
  EXPECT_TRUE(weak_a.expired());  // Last reference released it.
}

}  // namespace
}  // namespace privim
