#include "serve/request_queue.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace privim {
namespace {

QueryTicket MakeTicket(const QueryRequest* req, QueryResponse* resp,
                       QueryCompletion* done) {
  QueryTicket t;
  t.request = req;
  t.response = resp;
  t.completion = done;
  return t;
}

TEST(RequestQueueTest, PushPopRoundTrip) {
  RequestQueue q(4);
  QueryRequest req;
  QueryResponse resp;
  QueryCompletion done;
  ASSERT_TRUE(q.Push(MakeTicket(&req, &resp, &done)).ok());
  EXPECT_EQ(q.size(), 1u);

  std::vector<QueryTicket> out;
  EXPECT_EQ(q.PopBatch(out, 8), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].request, &req);
  EXPECT_EQ(out[0].response, &resp);
  EXPECT_EQ(out[0].completion, &done);
  EXPECT_EQ(q.size(), 0u);
}

TEST(RequestQueueTest, FullQueueRejectsWithResourceExhausted) {
  RequestQueue q(2);
  QueryRequest req;
  QueryResponse resp;
  QueryCompletion done;
  ASSERT_TRUE(q.Push(MakeTicket(&req, &resp, &done)).ok());
  ASSERT_TRUE(q.Push(MakeTicket(&req, &resp, &done)).ok());

  const Status rejected = q.Push(MakeTicket(&req, &resp, &done));
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  // The message tells the client this is transient backpressure.
  EXPECT_NE(rejected.message().find("full"), std::string::npos);

  // Draining one slot makes admission succeed again: the rejection is
  // about capacity, not a terminal queue state.
  std::vector<QueryTicket> out;
  ASSERT_EQ(q.PopBatch(out, 1), 1u);
  EXPECT_TRUE(q.Push(MakeTicket(&req, &resp, &done)).ok());
}

TEST(RequestQueueTest, ClosedQueueRejectsWithFailedPrecondition) {
  RequestQueue q(2);
  q.Close();
  QueryRequest req;
  QueryResponse resp;
  QueryCompletion done;
  EXPECT_EQ(q.Push(MakeTicket(&req, &resp, &done)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RequestQueueTest, CloseDrainsQueuedTicketsBeforeSignalingExit) {
  RequestQueue q(8);
  QueryRequest req;
  QueryResponse resp;
  QueryCompletion done;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Push(MakeTicket(&req, &resp, &done)).ok());
  }
  q.Close();

  // Every admitted ticket is still delivered after Close...
  std::vector<QueryTicket> out;
  size_t delivered = 0;
  while (true) {
    out.clear();
    const size_t n = q.PopBatch(out, 2);
    if (n == 0) break;
    delivered += n;
  }
  EXPECT_EQ(delivered, 5u);
  // ...and once drained, PopBatch keeps returning 0 (terminal).
  out.clear();
  EXPECT_EQ(q.PopBatch(out, 2), 0u);
}

TEST(RequestQueueTest, CloseIsIdempotent) {
  RequestQueue q(2);
  q.Close();
  q.Close();
  EXPECT_TRUE(q.closed());
}

TEST(RequestQueueTest, CloseWakesBlockedConsumers) {
  RequestQueue q(2);
  std::vector<std::thread> consumers;
  std::atomic<int> exited{0};
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&q, &exited] {
      std::vector<QueryTicket> out;
      while (q.PopBatch(out, 4) != 0) out.clear();
      exited.fetch_add(1);
    });
  }
  q.Close();  // Must wake all three, or join hangs (test timeout).
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(exited.load(), 3);
}

TEST(RequestQueueTest, PreservesFifoOrderAcrossWraparound) {
  RequestQueue q(3);
  QueryResponse resp;
  QueryCompletion done;
  std::vector<QueryRequest> reqs(7);
  std::vector<QueryTicket> out;
  size_t next_push = 0;
  size_t next_pop = 0;
  // Interleave pushes and pops so head wraps the 3-slot ring twice.
  while (next_pop < reqs.size()) {
    while (next_push < reqs.size() &&
           q.Push(MakeTicket(&reqs[next_push], &resp, &done)).ok()) {
      ++next_push;
    }
    out.clear();
    const size_t n = q.PopBatch(out, 2);
    ASSERT_GT(n, 0u);
    for (const QueryTicket& t : out) {
      EXPECT_EQ(t.request, &reqs[next_pop]) << "at pop " << next_pop;
      ++next_pop;
    }
  }
}

TEST(RequestQueueTest, ConcurrentProducersConsumersDeliverEverything) {
  RequestQueue q(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  QueryRequest req;
  QueryResponse resp;
  QueryCompletion done;

  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      std::vector<QueryTicket> out;
      while (true) {
        out.clear();
        const size_t n = q.PopBatch(out, 8);
        if (n == 0) break;
        consumed.fetch_add(static_cast<int>(n));
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Spin on backpressure: total delivery is the invariant here.
        while (q.Push(MakeTicket(&req, &resp, &done)).code() ==
               StatusCode::kResourceExhausted) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.Close();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

TEST(QueryCompletionTest, WaitReturnsSignaledStatus) {
  QueryCompletion done;
  std::thread signaler(
      [&done] { done.Signal(Status::InvalidArgument("boom")); });
  const Status s = done.Wait();
  signaler.join();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "boom");
}

}  // namespace
}  // namespace privim
