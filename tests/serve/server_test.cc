#include "serve/server.h"

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "nn/features.h"
#include "nn/serialization.h"
#include "obs/metrics.h"
#include "serve/harness.h"

namespace privim {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

GnnConfig SmallConfig() {
  GnnConfig cfg;
  cfg.type = GnnType::kGrat;
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  return cfg;
}

Graph TestGraph(uint64_t seed = 7) {
  Rng rng(seed);
  return std::move(ErdosRenyi(40, 0.15, true, rng)).ValueOrDie();
}

std::shared_ptr<const ModelSnapshot> TestSnapshot(const Graph& g,
                                                  uint64_t seed) {
  Rng rng(seed);
  auto model = std::make_unique<GnnModel>(SmallConfig(), rng);
  return std::move(ModelSnapshot::FromModel(std::move(model), g))
      .ValueOrDie();
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : graph_(TestGraph()) {}

  Graph graph_;
};

TEST_F(ServerTest, AnswersEachQueryType) {
  ServeConfig cfg;
  cfg.num_threads = 2;
  cfg.rr_sketch_sets = 64;
  Server server(graph_, cfg);
  ASSERT_TRUE(server.SwapSnapshot(TestSnapshot(graph_, 1)).ok());
  ASSERT_TRUE(server.Start().ok());

  QueryResponse resp;
  {
    QueryRequest req;
    req.type = QueryType::kTopK;
    req.k = 5;
    ASSERT_TRUE(server.Query(req, resp).ok());
    EXPECT_EQ(resp.seeds.size(), 5u);
    EXPECT_EQ(resp.values.size(), 5u);
    EXPECT_GT(resp.snapshot_id, 0u);
    EXPECT_GE(resp.spread, 5.0);  // Seeds themselves are activated.
  }
  {
    QueryRequest req;
    req.type = QueryType::kSpread;
    req.seeds = {0, 1, 2};
    req.estimator = SpreadEstimator::kMonteCarloIc;
    req.trials = 8;
    ASSERT_TRUE(server.Query(req, resp).ok());
    EXPECT_GE(resp.spread, 3.0);
  }
  {
    QueryRequest req;
    req.type = QueryType::kMarginalGain;
    req.seeds = {0, 1};
    req.candidates = {2, 3, 4};
    req.estimator = SpreadEstimator::kRrSketch;
    ASSERT_TRUE(server.Query(req, resp).ok());
    EXPECT_EQ(resp.values.size(), 3u);
    for (double gain : resp.values) EXPECT_GE(gain, 0.0);
  }
  server.Stop();
}

TEST_F(ServerTest, ResponsesAreDeterministicPerSnapshotAndSeed) {
  QueryRequest req;
  req.type = QueryType::kTopK;
  req.k = 8;
  req.estimator = SpreadEstimator::kMonteCarloIc;
  req.trials = 16;
  req.seed = 123;

  QueryResponse a;
  QueryResponse b;
  // Same snapshot contents (same model seed), different servers and
  // thread counts: responses must be identical.
  for (size_t threads : {1u, 4u}) {
    ServeConfig cfg;
    cfg.num_threads = threads;
    Server server(graph_, cfg);
    ASSERT_TRUE(server.SwapSnapshot(TestSnapshot(graph_, 9)).ok());
    ASSERT_TRUE(server.Start().ok());
    QueryResponse& out = (threads == 1u) ? a : b;
    ASSERT_TRUE(server.Query(req, out).ok());
    // Ask twice on the same server too: caches must not leak into
    // answers.
    QueryResponse again;
    ASSERT_TRUE(server.Query(req, again).ok());
    EXPECT_EQ(out.seeds, again.seeds);
    EXPECT_EQ(out.values, again.values);
    EXPECT_EQ(out.spread, again.spread);
    server.Stop();
  }
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.spread, b.spread);
}

TEST_F(ServerTest, TopKWithoutSnapshotFailsWithHint) {
  ServeConfig cfg;
  cfg.num_threads = 1;
  Server server(graph_, cfg);
  ASSERT_TRUE(server.Start().ok());
  QueryRequest req;
  req.type = QueryType::kTopK;
  QueryResponse resp;
  const Status s = server.Query(req, resp);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("LoadSnapshot"), std::string::npos);
}

TEST_F(ServerTest, SketchEstimatorWithoutSketchFailsWithHint) {
  ServeConfig cfg;
  cfg.num_threads = 1;  // rr_sketch_sets left 0: no resident sketch.
  Server server(graph_, cfg);
  ASSERT_TRUE(server.Start().ok());
  QueryRequest req;
  req.type = QueryType::kSpread;
  req.seeds = {0};
  req.estimator = SpreadEstimator::kRrSketch;
  QueryResponse resp;
  const Status s = server.Query(req, resp);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("rr_sketch_sets"), std::string::npos);
}

TEST_F(ServerTest, InvalidRequestsAreRejectedNotExecuted) {
  ServeConfig cfg;
  cfg.num_threads = 1;
  Server server(graph_, cfg);
  ASSERT_TRUE(server.Start().ok());
  QueryResponse resp;
  {
    QueryRequest req;
    req.type = QueryType::kSpread;
    req.seeds = {static_cast<NodeId>(graph_.num_nodes())};  // Out of range.
    EXPECT_EQ(server.Query(req, resp).code(),
              StatusCode::kInvalidArgument);
  }
  {
    QueryRequest req;
    req.type = QueryType::kSpread;
    req.seeds = {0};
    req.estimator = SpreadEstimator::kMonteCarloIc;
    req.trials = 0;
    EXPECT_EQ(server.Query(req, resp).code(),
              StatusCode::kInvalidArgument);
  }
}

TEST_F(ServerTest, BackpressureRejectsWhenQueueFull) {
  ServeConfig cfg;
  cfg.num_threads = 1;
  cfg.queue_capacity = 2;
  Server server(graph_, cfg);  // Not started: admissions queue up.

  QueryRequest req;
  req.type = QueryType::kSpread;
  req.seeds = {0};
  std::vector<QueryResponse> resps(3);
  std::vector<QueryCompletion> dones(3);
  ASSERT_TRUE(server.SubmitAsync(&req, &resps[0], &dones[0]).ok());
  ASSERT_TRUE(server.SubmitAsync(&req, &resps[1], &dones[1]).ok());
  const Status rejected = server.SubmitAsync(&req, &resps[2], &dones[2]);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);

  // Starting the server answers the two admitted queries.
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(dones[0].Wait().ok());
  EXPECT_TRUE(dones[1].Wait().ok());
  server.Stop();
}

TEST_F(ServerTest, StopDrainsAdmittedQueriesAndRejectsNewOnes) {
  ServeConfig cfg;
  cfg.num_threads = 2;
  cfg.queue_capacity = 64;
  Server server(graph_, cfg);  // Not started yet.

  QueryRequest req;
  req.type = QueryType::kSpread;
  req.seeds = {0, 1};
  constexpr size_t kQueries = 16;
  std::vector<QueryResponse> resps(kQueries);
  std::vector<QueryCompletion> dones(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(server.SubmitAsync(&req, &resps[i], &dones[i]).ok());
  }
  ASSERT_TRUE(server.Start().ok());
  server.Stop();  // Must answer all 16 before returning.
  for (size_t i = 0; i < kQueries; ++i) {
    EXPECT_TRUE(dones[i].Wait().ok()) << "query " << i;
    EXPECT_GE(resps[i].spread, 2.0) << "query " << i;
  }

  // After Stop, admission is terminally closed.
  QueryResponse resp;
  EXPECT_EQ(server.Query(req, resp).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(server.Start().ok());  // Not restartable.
}

TEST_F(ServerTest, StopWithoutStartAnswersAdmittedQueries) {
  ServeConfig cfg;
  cfg.num_threads = 1;
  Server server(graph_, cfg);
  QueryRequest req;
  req.type = QueryType::kSpread;
  req.seeds = {3};
  QueryResponse resp;
  QueryCompletion done;
  ASSERT_TRUE(server.SubmitAsync(&req, &resp, &done).ok());
  server.Stop();  // Never started: drains on the stopping thread.
  EXPECT_TRUE(done.Wait().ok());
  EXPECT_GE(resp.spread, 1.0);
}

TEST_F(ServerTest, LoadSnapshotErrorsNameThePath) {
  ServeConfig cfg;
  cfg.num_threads = 1;
  Server server(graph_, cfg);
  const std::string missing = TempPath("privim_serve_no_such.ckpt");
  const Result<uint64_t> r = server.LoadSnapshot(missing);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(missing), std::string::npos)
      << r.status().ToString();
}

TEST_F(ServerTest, LoadSnapshotServesTheCheckpointedModel) {
  Rng rng(21);
  GnnModel model(SmallConfig(), rng);
  const std::string path = TempPath("privim_serve_load.ckpt");
  ASSERT_TRUE(SaveModel(model, path).ok());

  ServeConfig cfg;
  cfg.num_threads = 1;
  Server server(graph_, cfg);
  const Result<uint64_t> id = server.LoadSnapshot(path);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_NE(server.CurrentSnapshot(), nullptr);
  EXPECT_EQ(server.CurrentSnapshot()->id(), id.ValueOrDie());
  ASSERT_TRUE(server.Start().ok());

  QueryRequest req;
  req.type = QueryType::kTopK;
  req.k = 4;
  QueryResponse resp;
  ASSERT_TRUE(server.Query(req, resp).ok());
  EXPECT_EQ(resp.snapshot_id, id.ValueOrDie());
  server.Stop();
  std::remove(path.c_str());
}

TEST_F(ServerTest, SwapSnapshotRejectsWrongGraph) {
  ServeConfig cfg;
  cfg.num_threads = 1;
  Server server(graph_, cfg);
  Rng rng(31);
  Graph other = std::move(ErdosRenyi(10, 0.3, true, rng)).ValueOrDie();
  const Status s = server.SwapSnapshot(TestSnapshot(other, 1));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.SwapSnapshot(nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, MetricsRecordAcceptsRejectsAndLatency) {
  MetricsRegistry metrics;
  ServeConfig cfg;
  cfg.num_threads = 1;
  cfg.queue_capacity = 1;
  cfg.metrics = &metrics;
  Server server(graph_, cfg);  // Not started: deterministic rejection.

  QueryRequest req;
  req.type = QueryType::kSpread;
  req.seeds = {0};
  QueryResponse r1, r2;
  QueryCompletion d1, d2;
  ASSERT_TRUE(server.SubmitAsync(&req, &r1, &d1).ok());
  EXPECT_EQ(server.SubmitAsync(&req, &r2, &d2).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(d1.Wait().ok());
  server.Stop();

  EXPECT_EQ(metrics.GetCounter("serve.requests.accepted")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("serve.requests.rejected")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("serve.requests.completed")->value(), 1u);
  EXPECT_EQ(metrics
                .GetHistogram("serve.latency.spread",
                              ExponentialBuckets(1e-6, 2.0, 24))
                ->total_count(),
            1u);
}

TEST_F(ServerTest, ClosedLoopHarnessReportsThroughputAndQuantiles) {
  ServeConfig cfg;
  cfg.num_threads = 2;
  cfg.rr_sketch_sets = 32;
  Server server(graph_, cfg);
  ASSERT_TRUE(server.SwapSnapshot(TestSnapshot(graph_, 5)).ok());
  ASSERT_TRUE(server.Start().ok());

  const std::vector<RequestMix> mixes =
      StandardMixes(graph_.num_nodes(), /*seed=*/11);
  ASSERT_EQ(mixes.size(), 3u);
  LoadConfig load;
  load.num_clients = 2;
  load.requests_per_client = 10;
  load.warmup_per_client = 2;
  for (const RequestMix& mix : mixes) {
    const Result<LoadReport> r = RunClosedLoopLoad(server, mix, load);
    ASSERT_TRUE(r.ok()) << mix.name << ": " << r.status().ToString();
    const LoadReport& report = r.ValueOrDie();
    EXPECT_EQ(report.failed, 0u) << mix.name;
    EXPECT_GT(report.qps, 0.0) << mix.name;
    EXPECT_LE(report.latency_p50, report.latency_p95) << mix.name;
    EXPECT_LE(report.latency_p95, report.latency_p99) << mix.name;
  }
  server.Stop();
}

}  // namespace
}  // namespace privim
