// O(ball) complexity properties at million-node scale (ISSUE 7).
//
// The PrivIM regime is subgraph size n ≪ |V|: every per-walk / per-probe
// loop must do work proportional to the hop ball it actually explores,
// never to the graph. These tests pin that down with the epoch-stamped
// scratch instrumentation (VisitedMap/VisitedSet write counters surfaced
// through WorkspacePool::Stats and the "runtime.scratch.*" metrics): on a
// 10^6-node graph, a warm sampling round must (a) never re-run an O(|V|)
// map initialization and (b) stamp far fewer entries in total than a
// single full-graph scan would.
//
// Runtime is tens of seconds, so the whole binary is opt-in: every test
// skips unless PRIVIM_SCALE_TESTS=1 is set (the ctest label `scale` and
// the scale-smoke rung in tools/run_checks.sh set it; a plain `ctest`
// reports them as skipped). docs/scale.md describes the methodology.

#include <algorithm>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "im/diffusion.h"
#include "obs/metrics.h"
#include "runtime/scratch.h"
#include "sampling/rwr_sampler.h"

namespace privim {
namespace {

constexpr size_t kNodes = 1000000;

bool ScaleTestsEnabled() {
  const char* v = std::getenv("PRIVIM_SCALE_TESTS");
  return v != nullptr && v[0] == '1';
}

#define SKIP_UNLESS_SCALE()                                              \
  if (!ScaleTestsEnabled()) {                                            \
    GTEST_SKIP() << "set PRIVIM_SCALE_TESTS=1 to run million-node scale " \
                    "properties (ctest -L scale does)";                  \
  }

/// The shared 10^6-node substrate: directed G(n, p) with average
/// out-degree 10, built once for the whole binary through the streaming
/// two-pass path. ER keeps hop balls analyzable (a 2-hop out-ball is
/// ~1 + 10 + 100 nodes in expectation), which is what lets the tests put
/// hard numbers on "O(ball)".
const Graph& MillionNodeGraph() {
  static const Graph* g = [] {
    Rng rng(20260809);
    const double p = 10.0 / static_cast<double>(kNodes - 1);
    Result<Graph> r = ErdosRenyi(kNodes, p, /*directed=*/true, rng);
    if (!r.ok()) {
      ADD_FAILURE() << "million-node build failed: " << r.status().ToString();
      std::abort();
    }
    return new Graph(std::move(r).ValueOrDie());
  }();
  return *g;
}

uint64_t CounterDelta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after, const char* name) {
  const auto b = before.counters.find(name);
  const auto a = after.counters.find(name);
  const uint64_t bv = b == before.counters.end() ? 0 : b->second;
  const uint64_t av = a == after.counters.end() ? 0 : a->second;
  return av - bv;
}

TEST(ScaleProperties, MillionNodeDegreeLawStreamingBuild) {
  SKIP_UNLESS_SCALE();
  // The degree-law generator streams through the two-pass build at scale:
  // 10^6 preferential-attachment nodes, no materialized edge list.
  Rng rng(97);
  Result<Graph> r = BarabasiAlbert(kNodes, /*m=*/4, rng);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Graph& g = r.ValueOrDie();
  EXPECT_EQ(g.num_nodes(), kNodes);
  // Each arriving node contributes m undirected edges (2 arcs), minus the
  // seed clique and any collapsed duplicate attachments.
  EXPECT_GT(g.num_edges(), 2 * 4 * (kNodes - 8) * 9 / 10);
  EXPECT_LT(g.num_edges(), 2 * 4 * kNodes + 1);
  // Preferential attachment produces hubs far above the mean degree —
  // the property that makes degree-law graphs the interesting scale case.
  size_t max_out = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_out = std::max(max_out, g.OutDegree(u));
  }
  EXPECT_GT(max_out, 100u);
  EXPECT_TRUE(g.has_in_csr());
}

TEST(ScaleProperties, RwrWalksTouchOBallNotGraph) {
  SKIP_UNLESS_SCALE();
  const Graph& g = MillionNodeGraph();

  MetricsRegistry metrics;
  RwrConfig cfg;
  cfg.subgraph_size = 30;
  cfg.restart_prob = 0.3;
  // ~200 expected walks out of 10^6 candidate starts: plenty of signal
  // while keeping the round seconds-long on one core.
  cfg.sampling_rate = 2e-4;
  cfg.walk_length = 200;
  cfg.hop_bound = 2;
  cfg.num_threads = 1;
  cfg.metrics = &metrics;
  RwrSampler sampler(cfg);
  Rng rng(7);

  // Warm-up round: the first Reset of each epoch-stamped map is the one
  // allowed O(|V|) initialization (it sizes the stamp arrays).
  ASSERT_TRUE(sampler.Extract(g, rng).ok());
  const MetricsSnapshot warm = metrics.Snapshot();

  ASSERT_TRUE(sampler.Extract(g, rng).ok());
  const MetricsSnapshot after = metrics.Snapshot();

  const uint64_t walks =
      CounterDelta(warm, after, "sampler.rwr.walks_accepted") +
      CounterDelta(warm, after, "sampler.rwr.walks_rejected");
  const uint64_t inits =
      CounterDelta(warm, after, "runtime.scratch.rwr.workspace_inits");
  const uint64_t touched =
      CounterDelta(warm, after, "runtime.scratch.rwr.touched_nodes");

  ASSERT_GT(walks, 20u) << "sampling_rate produced too few walks to assert";
  // A warm round never re-initializes an O(|V|) map...
  EXPECT_EQ(inits, 0u);
  // ...and the whole round — every walk together — stamps fewer entries
  // than ONE full-graph map clear, let alone walks * |V|.
  ASSERT_GT(touched, 0u);
  EXPECT_LT(touched, kNodes);
  // Per-walk O(ball): a 2-hop ball here is ~111 nodes in expectation and
  // the walk itself visits <= walk_length; 4096 is a generous ceiling at
  // 0.4% of |V|.
  EXPECT_LT(touched, walks * 4096);
}

TEST(ScaleProperties, IcProbesTouchOBallNotGraph) {
  SKIP_UNLESS_SCALE();
  const Graph& g = MillionNodeGraph();

  WorkspacePool pool;
  Rng rng(11);
  const std::vector<NodeId> seeds = {1, 99, 12345, 500000, 999999};
  constexpr size_t kTrials = 64;
  constexpr int kMaxSteps = 2;

  // Warm-up probes size the per-slot maps; flush those stats away.
  EstimateIcSpread(g, seeds, /*trials=*/4, rng, kMaxSteps,
                   /*num_threads=*/1, &pool);
  pool.TakeStats();

  const double spread = EstimateIcSpread(g, seeds, kTrials, rng, kMaxSteps,
                                         /*num_threads=*/1, &pool);
  const WorkspacePool::Stats stats = pool.TakeStats();

  EXPECT_GT(spread, static_cast<double>(seeds.size()));
  // Warm probes reset in O(1) (epoch bumps), never O(|V|).
  EXPECT_EQ(stats.map_full_resets, 0u);
  EXPECT_GT(stats.map_fast_resets, 0u);
  // All 64 cascades together stamp fewer entries than one full-graph
  // clear: with unit weights and max_steps=2 each cascade activates the
  // 2-hop out-closure of the seeds (~5 * 111 nodes).
  ASSERT_GT(stats.map_writes, 0u);
  EXPECT_LT(stats.map_writes, kNodes);
  EXPECT_LT(stats.map_writes, kTrials * 8192);
}

}  // namespace
}  // namespace privim
