// Finite-difference gradient checks for every differentiable op. This is
// the load-bearing test for the autograd substrate: if these pass, the GNN
// layers and the DP trainer are differentiating correctly.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace privim {
namespace {

// Builds a scalar loss from the input leaf and compares autograd gradients
// against central finite differences.
void CheckGradient(Tensor& x,
                   const std::function<Tensor(const Tensor&)>& fn,
                   double tol = 2e-2, double eps = 1e-3) {
  Tensor loss = fn(x);
  ASSERT_EQ(loss.rows(), 1u);
  ASSERT_EQ(loss.cols(), 1u);
  x.ZeroGrad();
  loss.Backward();
  Matrix analytic = x.grad();

  Matrix& value = x.mutable_value();
  for (size_t i = 0; i < value.size(); ++i) {
    const float orig = value.data()[i];
    value.data()[i] = orig + static_cast<float>(eps);
    const double up = fn(x).value()(0, 0);
    value.data()[i] = orig - static_cast<float>(eps);
    const double down = fn(x).value()(0, 0);
    value.data()[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric,
                tol * std::max(1.0, std::abs(numeric)))
        << "coordinate " << i;
  }
}

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng, double lo = -1.0,
                    double hi = 1.0) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return m;
}

TEST(GradCheck, MatMulLeft) {
  Rng rng(1);
  Tensor x(RandomMatrix(3, 4, rng), true);
  Tensor w(RandomMatrix(4, 2, rng));
  CheckGradient(x, [&](const Tensor& t) { return Sum(MatMul(t, w)); });
}

TEST(GradCheck, MatMulRight) {
  Rng rng(2);
  Tensor a(RandomMatrix(3, 4, rng));
  Tensor w(RandomMatrix(4, 2, rng), true);
  CheckGradient(w, [&](const Tensor& t) { return Sum(MatMul(a, t)); });
}

TEST(GradCheck, AddSubMul) {
  Rng rng(3);
  Tensor other(RandomMatrix(2, 3, rng));
  Tensor x(RandomMatrix(2, 3, rng), true);
  CheckGradient(x, [&](const Tensor& t) { return Sum(Add(t, other)); });
  CheckGradient(x, [&](const Tensor& t) { return Sum(Sub(other, t)); });
  CheckGradient(x, [&](const Tensor& t) { return Sum(Mul(t, other)); });
  CheckGradient(x, [&](const Tensor& t) { return Sum(Mul(t, t)); });
}

TEST(GradCheck, AddRowBroadcastBias) {
  Rng rng(4);
  Tensor x(RandomMatrix(3, 2, rng));
  Tensor bias(RandomMatrix(1, 2, rng), true);
  CheckGradient(bias, [&](const Tensor& t) {
    return Sum(AddRowBroadcast(x, t));
  });
}

TEST(GradCheck, ScaleAndAddScalar) {
  Rng rng(5);
  Tensor x(RandomMatrix(2, 2, rng), true);
  CheckGradient(x, [&](const Tensor& t) { return Sum(Scale(t, -2.5f)); });
  CheckGradient(x, [&](const Tensor& t) { return Sum(AddScalar(t, 3.0f)); });
}

TEST(GradCheck, ScaleByScalarBothInputs) {
  Rng rng(6);
  Tensor x(RandomMatrix(2, 3, rng), true);
  Tensor s(Matrix::FromRows({{0.7f}}), true);
  CheckGradient(x, [&](const Tensor& t) {
    return Sum(ScaleByScalar(t, s));
  });
  CheckGradient(s, [&](const Tensor& t) {
    return Sum(ScaleByScalar(x, t));
  });
}

TEST(GradCheck, ConcatCols) {
  Rng rng(7);
  Tensor a(RandomMatrix(3, 2, rng), true);
  Tensor b(RandomMatrix(3, 3, rng), true);
  CheckGradient(a, [&](const Tensor& t) { return Sum(ConcatCols(t, b)); });
  CheckGradient(b, [&](const Tensor& t) {
    // Weighted sum so columns get distinct gradients.
    Tensor cat = ConcatCols(a, t);
    return Sum(Mul(cat, cat));
  });
}

TEST(GradCheck, SmoothActivations) {
  Rng rng(8);
  Tensor x(RandomMatrix(2, 3, rng, 0.3, 2.0), true);
  CheckGradient(x, [&](const Tensor& t) { return Sum(SigmoidOp(t)); });
  CheckGradient(x, [&](const Tensor& t) { return Sum(TanhOp(t)); });
  CheckGradient(x, [&](const Tensor& t) { return Sum(ExpOp(t)); });
  CheckGradient(x, [&](const Tensor& t) { return Sum(LogOp(t)); });
  CheckGradient(x, [&](const Tensor& t) { return Sum(InfluenceProb(t)); });
}

TEST(GradCheck, PiecewiseActivationsAwayFromKink) {
  Rng rng(9);
  // Keep values away from 0 so finite differences are valid.
  Matrix m = RandomMatrix(2, 3, rng);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] += (m.data()[i] >= 0 ? 0.5f : -0.5f);
  }
  Tensor x(m, true);
  CheckGradient(x, [&](const Tensor& t) { return Sum(Relu(t)); });
  CheckGradient(x,
                [&](const Tensor& t) { return Sum(LeakyRelu(t, 0.2f)); });
}

TEST(GradCheck, Reductions) {
  Rng rng(10);
  Tensor x(RandomMatrix(3, 3, rng), true);
  CheckGradient(x, [&](const Tensor& t) { return MeanAll(t); });
  CheckGradient(x, [&](const Tensor& t) {
    Tensor rs = RowSum(t);
    return Sum(Mul(rs, rs));  // Nonuniform downstream gradient.
  });
}

TEST(GradCheck, GatherRows) {
  Rng rng(11);
  Tensor x(RandomMatrix(4, 2, rng), true);
  const std::vector<uint32_t> idx{3, 0, 0, 2};
  CheckGradient(x, [&](const Tensor& t) {
    Tensor gathered = GatherRows(t, idx);
    return Sum(Mul(gathered, gathered));
  });
}

TEST(GradCheck, ScatterAddRows) {
  Rng rng(12);
  Tensor x(RandomMatrix(3, 2, rng), true);
  const std::vector<uint32_t> src{0, 1, 2, 0};
  const std::vector<uint32_t> dst{1, 0, 1, 2};
  const std::vector<float> coef{0.5f, 1.5f, -0.5f, 2.0f};
  CheckGradient(x, [&](const Tensor& t) {
    Tensor y = ScatterAddRows(t, src, dst, coef, 3);
    return Sum(Mul(y, y));
  });
}

TEST(GradCheck, WeightedScatterAddBothInputs) {
  Rng rng(13);
  const std::vector<uint32_t> src{0, 1, 2, 1};
  const std::vector<uint32_t> dst{1, 2, 0, 0};
  Tensor x(RandomMatrix(3, 2, rng), true);
  Tensor alpha(RandomMatrix(4, 1, rng, 0.1, 1.0), true);
  CheckGradient(x, [&](const Tensor& t) {
    Tensor y = WeightedScatterAddRows(alpha, t, src, dst, 3);
    return Sum(Mul(y, y));
  });
  CheckGradient(alpha, [&](const Tensor& t) {
    Tensor y = WeightedScatterAddRows(t, x, src, dst, 3);
    return Sum(Mul(y, y));
  });
}

TEST(GradCheck, SegmentSoftmax) {
  Rng rng(14);
  Tensor scores(RandomMatrix(5, 1, rng), true);
  const std::vector<uint32_t> group{0, 0, 1, 1, 1};
  CheckGradient(scores, [&](const Tensor& t) {
    Tensor alpha = SegmentSoftmax(t, group, 2);
    return Sum(Mul(alpha, alpha));  // Non-degenerate downstream grad.
  });
}

TEST(GradCheck, ComposedAttentionLikePipeline) {
  // End-to-end mini-GAT: scores -> softmax -> weighted scatter -> loss.
  Rng rng(15);
  const std::vector<uint32_t> src{0, 1, 2, 2};
  const std::vector<uint32_t> dst{1, 2, 0, 1};
  Tensor x(RandomMatrix(3, 2, rng), true);
  Tensor w(RandomMatrix(2, 2, rng), true);
  auto pipeline = [&](const Tensor& xin, const Tensor& win) {
    Tensor xw = MatMul(xin, win);
    Tensor scores = LeakyRelu(
        Add(GatherRows(RowSum(xw), src), GatherRows(RowSum(xw), dst)),
        0.2f);
    Tensor alpha = SegmentSoftmax(scores, dst, 3);
    Tensor out = WeightedScatterAddRows(alpha, xw, src, dst, 3);
    return Sum(Mul(out, out));
  };
  CheckGradient(x, [&](const Tensor& t) { return pipeline(t, w); });
  CheckGradient(w, [&](const Tensor& t) { return pipeline(x, t); });
}

}  // namespace
}  // namespace privim
