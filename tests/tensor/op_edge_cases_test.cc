// Edge-case and stress tests for the tensor op library beyond the
// gradcheck suite: degenerate shapes, reuse of nodes in larger graphs, and
// parameterized shape sweeps.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"

namespace privim {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  return m;
}

struct Shape {
  size_t m, k, n;
};

class MatMulShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(MatMulShapeTest, AssociativityWithScalar) {
  // (c * A) * B == c * (A * B) — a cheap algebraic invariant exercising
  // all shape paths.
  const Shape s = GetParam();
  Rng rng(s.m * 100 + s.k * 10 + s.n);
  Tensor a(RandomMatrix(s.m, s.k, rng));
  Tensor b(RandomMatrix(s.k, s.n, rng));
  Tensor lhs = MatMul(Scale(a, 2.5f), b);
  Tensor rhs = Scale(MatMul(a, b), 2.5f);
  for (size_t i = 0; i < lhs.value().size(); ++i) {
    EXPECT_NEAR(lhs.value().data()[i], rhs.value().data()[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeTest,
    ::testing::Values(Shape{1, 1, 1}, Shape{1, 8, 1}, Shape{5, 1, 7},
                      Shape{32, 8, 32}, Shape{64, 32, 1}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "k" +
             std::to_string(info.param.k) + "n" +
             std::to_string(info.param.n);
    });

TEST(OpEdgeCasesTest, SingleElementTensorThroughFullChain) {
  Tensor x(Matrix(1, 1, 0.5f), true);
  Tensor y = Sum(SigmoidOp(Scale(AddScalar(x, 1.0f), 2.0f)));
  x.ZeroGrad();
  y.Backward();
  // d/dx sigmoid(2(x+1)) = 2 s(1-s) at 2*1.5=3.
  const double s = 1.0 / (1.0 + std::exp(-3.0));
  EXPECT_NEAR(x.grad()(0, 0), 2.0 * s * (1.0 - s), 1e-5);
}

TEST(OpEdgeCasesTest, GatherWithRepeatedIndicesAccumulates) {
  Tensor x(Matrix::Ones(2, 3), true);
  // Gather row 0 five times; its gradient must be 5x row 1's.
  Tensor g = GatherRows(x, {0, 0, 0, 0, 0, 1});
  Sum(g).Backward();
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(x.grad()(1, 0), 1.0f);
}

TEST(OpEdgeCasesTest, ScatterWithNoEdgesYieldsZeros) {
  Tensor x(Matrix::Ones(3, 2));
  Tensor y = ScatterAddRows(x, {}, {}, {}, 4);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.value().Sum(), 0.0);
}

TEST(OpEdgeCasesTest, SegmentSoftmaxSingleEdgePerGroupIsOne) {
  Tensor scores(Matrix::FromRows({{-5.0f}, {100.0f}, {0.0f}}));
  Tensor alpha = SegmentSoftmax(scores, {0, 1, 2}, 3);
  for (size_t e = 0; e < 3; ++e) {
    EXPECT_NEAR(alpha.value()(e, 0), 1.0f, 1e-6);
  }
}

TEST(OpEdgeCasesTest, SharedSubexpressionGradientsAccumulateOnce) {
  // y = sum(h * h) where h = x*W used twice: backward must traverse h
  // once and accumulate both product paths.
  Rng rng(3);
  Tensor x(RandomMatrix(4, 3, rng), true);
  Tensor w(RandomMatrix(3, 2, rng));
  Tensor h = MatMul(x, w);
  Tensor y = Sum(Mul(h, h));
  x.ZeroGrad();
  y.Backward();
  // Numeric check on one coordinate.
  const double eps = 1e-3;
  Matrix& value = x.mutable_value();
  const float orig = value(1, 1);
  auto eval = [&]() {
    Tensor h2 = MatMul(x, w);
    return Sum(Mul(h2, h2)).value()(0, 0);
  };
  value(1, 1) = orig + static_cast<float>(eps);
  const double up = eval();
  value(1, 1) = orig - static_cast<float>(eps);
  const double down = eval();
  value(1, 1) = orig;
  EXPECT_NEAR(x.grad()(1, 1), (up - down) / (2 * eps), 5e-2);
}

TEST(OpEdgeCasesTest, LargeGraphBackwardCompletes) {
  // A 200-layer elementwise chain with branches exercises the iterative
  // (non-recursive) topological sort.
  Tensor x(Matrix::Ones(4, 4), true);
  Tensor h = x;
  for (int i = 0; i < 200; ++i) {
    h = Add(Scale(h, 0.999f), Scale(h, 0.001f));
  }
  Sum(h).Backward();
  EXPECT_NEAR(x.grad()(0, 0), 1.0f, 1e-3);
}

TEST(OpEdgeCasesTest, InfluenceProbFlatForNegativeInputs) {
  Tensor x(Matrix::FromRows({{-3.0f, -0.1f}}), true);
  Sum(InfluenceProb(x)).Backward();
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x.grad()(0, 1), 0.0f);
}

}  // namespace
}  // namespace privim
