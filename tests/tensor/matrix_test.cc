#include "tensor/matrix.h"

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(m(r, c), 1.5f);
  }
  m(1, 2) = -4.0f;
  EXPECT_FLOAT_EQ(m(1, 2), -4.0f);
  EXPECT_FLOAT_EQ(m.row(1)[2], -4.0f);
}

TEST(MatrixTest, ZerosOnesFromRows) {
  EXPECT_EQ(Matrix::Zeros(2, 2).Sum(), 0.0);
  EXPECT_EQ(Matrix::Ones(3, 4).Sum(), 12.0);
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 3.0f);
}

TEST(MatrixTest, InPlaceOps) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a(1, 1), 44.0f);
  a.AddScaledInPlace(b, -1.0f);
  EXPECT_FLOAT_EQ(a(0, 0), 1.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_FLOAT_EQ(a(1, 0), 6.0f);
  a.Fill(7.0f);
  EXPECT_EQ(a.Sum(), 28.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m = Matrix::FromRows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatMulValuesTest, KnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMulValues(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(MatMulValuesTest, NonSquareShapes) {
  Matrix a(2, 3, 1.0f);
  Matrix b(3, 4, 2.0f);
  Matrix c = MatMulValues(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_FLOAT_EQ(c(0, 0), 6.0f);
}

TEST(MatTransMulValuesTest, MatchesExplicitTranspose) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});  // [3,2]
  Matrix b = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});  // [3,2]
  Matrix c = MatTransMulValues(a, b);  // a^T b: [2,2]
  // a^T = [[1,3,5],[2,4,6]]; a^T b = [[1+5, 3+5],[2+6, 4+6]].
  EXPECT_FLOAT_EQ(c(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 8.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 10.0f);
}

TEST(MatMulTransValuesTest, MatchesExplicitTranspose) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});  // [2,2]
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});  // [2,2]
  Matrix c = MatMulTransValues(a, b);  // a b^T
  EXPECT_FLOAT_EQ(c(0, 0), 17.0f);  // 1*5+2*6
  EXPECT_FLOAT_EQ(c(0, 1), 23.0f);  // 1*7+2*8
  EXPECT_FLOAT_EQ(c(1, 0), 39.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 53.0f);
}

TEST(MatMulIdentityTest, IdentityIsNeutral) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix eye = Matrix::Zeros(2, 2);
  eye(0, 0) = eye(1, 1) = 1.0f;
  Matrix c = MatMulValues(a, eye);
  EXPECT_FLOAT_EQ(c(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 4.0f);
}

}  // namespace
}  // namespace privim
