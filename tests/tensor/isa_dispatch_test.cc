// Tests for the runtime ISA dispatch (tensor/kernels.cc): CPUID-derived
// MaxSupportedIsa, the PRIVIM_FORCE_ISA override (clamps down, never up;
// case-insensitive; unknown values ignored), which tier a Native-built
// plan actually selects, and cross-ISA agreement: the same training plan
// compiled at every available tier produces losses and gradients within
// the documented tolerance of the scalar reference.

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/loss.h"
#include "core/plan_cache.h"
#include "graph/generators.h"
#include "nn/features.h"
#include "nn/gnn.h"
#include "nn/graph_context.h"
#include "tensor/kernels.h"

namespace privim {
namespace {

using simd::GetKernels;
using simd::Isa;
using simd::IsaName;
using simd::MaxSupportedIsa;
using simd::ResolveIsa;

// Scoped PRIVIM_FORCE_ISA override; restores the prior state on exit so
// tests leave the process environment untouched. ResolveIsa re-reads the
// variable per call, so flipping it mid-process is supported.
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(const char* value) {
    const char* prev = std::getenv("PRIVIM_FORCE_ISA");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value != nullptr) {
      ::setenv("PRIVIM_FORCE_ISA", value, /*overwrite=*/1);
    } else {
      ::unsetenv("PRIVIM_FORCE_ISA");
    }
  }
  ~ScopedForceIsa() {
    if (had_prev_) {
      ::setenv("PRIVIM_FORCE_ISA", prev_.c_str(), 1);
    } else {
      ::unsetenv("PRIVIM_FORCE_ISA");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(IsaDispatchTest, MaxSupportedTierIsExecutable) {
  const Isa max = MaxSupportedIsa();
  // GetKernels at the max tier must return its own table, and every tier
  // at or below max must resolve to a non-null, safe-to-run table.
  EXPECT_EQ(GetKernels(max).isa, max);
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    const simd::Kernels& k = GetKernels(isa);
    EXPECT_LE(static_cast<int>(k.isa), static_cast<int>(max));
    EXPECT_NE(k.matmul, nullptr);
    EXPECT_NE(k.weighted_scatter_add_rows_grad, nullptr);
  }
}

TEST(IsaDispatchTest, ForceScalarAlwaysHonored) {
  ScopedForceIsa force("scalar");
  EXPECT_EQ(ResolveIsa(), Isa::kScalar);
  // A Native-built plan under the override selects scalar kernels.
  EXPECT_EQ(PlanOptions::Native().isa, Isa::kScalar);
}

TEST(IsaDispatchTest, ForceIsCaseInsensitive) {
  ScopedForceIsa force("ScAlAr");
  EXPECT_EQ(ResolveIsa(), Isa::kScalar);
}

TEST(IsaDispatchTest, ForceAvx2ClampsToHost) {
  ScopedForceIsa force("avx2");
  const Isa want =
      MaxSupportedIsa() >= Isa::kAvx2 ? Isa::kAvx2 : MaxSupportedIsa();
  EXPECT_EQ(ResolveIsa(), want);
}

TEST(IsaDispatchTest, ForceAvx512NeverExceedsHost) {
  ScopedForceIsa force("AVX512");
  const Isa got = ResolveIsa();
  EXPECT_LE(static_cast<int>(got), static_cast<int>(MaxSupportedIsa()));
  if (MaxSupportedIsa() == Isa::kAvx512) {
    EXPECT_EQ(got, Isa::kAvx512);
  }
}

TEST(IsaDispatchTest, UnknownValueIgnored) {
  ScopedForceIsa force("sse9-neon");
  EXPECT_EQ(ResolveIsa(), MaxSupportedIsa());
}

TEST(IsaDispatchTest, UnsetUsesHostMax) {
  ScopedForceIsa force(nullptr);
  EXPECT_EQ(ResolveIsa(), MaxSupportedIsa());
  EXPECT_EQ(PlanOptions::Native().isa, MaxSupportedIsa());
}

TEST(IsaDispatchTest, NativePlanReportsSelectedTier) {
  Rng grng(7000);
  Graph g = std::move(ErdosRenyi(17, 0.2, false, grng)).ValueOrDie();
  const GraphContext ctx = BuildGraphContext(g);
  GnnConfig mc;
  mc.type = GnnType::kGrat;
  mc.in_dim = kNodeFeatureDim;
  mc.hidden_dim = 8;
  mc.num_layers = 2;
  Rng mrng(7001);
  GnnModel model(mc, mrng);
  ImLossConfig loss_cfg;

  {
    ScopedForceIsa force("scalar");
    const GnnPlan plan =
        CompileTrainingPlan(model, ctx, loss_cfg, PlanOptions::Native());
    EXPECT_EQ(plan.isa(), Isa::kScalar);
    EXPECT_TRUE(plan.fused());
  }
  {
    ScopedForceIsa force(nullptr);
    const GnnPlan plan =
        CompileTrainingPlan(model, ctx, loss_cfg, PlanOptions::Native());
    EXPECT_EQ(plan.isa(), MaxSupportedIsa());
  }
  // Kernel tables are finalized at Build: flipping the env afterwards must
  // not change an existing plan's behaviour. (The plan keeps reporting the
  // tier it was compiled with.)
  const GnnPlan pinned =
      CompileTrainingPlan(model, ctx, loss_cfg, PlanOptions::Native());
  const Isa built_with = pinned.isa();
  ScopedForceIsa force("scalar");
  EXPECT_EQ(pinned.isa(), built_with);
}

// All available tiers agree on the same training plan within the
// documented tolerance: SIMD matmuls use FMA + reassociated reductions,
// so exact equality is not expected — but everything downstream of them
// (losses, gradients) must stay within a small relative band of the
// scalar reference.
TEST(IsaDispatchTest, AllAvailableTiersAgreeWithinTolerance) {
  for (GnnType type : {GnnType::kGrat, GnnType::kGin}) {
    SCOPED_TRACE(GnnTypeName(type));
    Rng grng(7100);
    Graph g = std::move(ErdosRenyi(33, 0.12, false, grng)).ValueOrDie();
    const GraphContext ctx = BuildGraphContext(g);
    const Matrix features = BuildNodeFeatures(g);
    GnnConfig mc;
    mc.type = type;
    mc.in_dim = kNodeFeatureDim;
    mc.hidden_dim = 8;
    mc.num_layers = 2;
    Rng mrng(7101);
    GnnModel model(mc, mrng);
    ImLossConfig loss_cfg;
    loss_cfg.diffusion_steps = 2;
    const size_t dim = model.params().num_scalars();
    std::vector<float> params(dim);
    model.params().FlattenParams(params);

    // Scalar reference (unfused — the tape-bit-identical baseline).
    const GnnPlan ref =
        CompileTrainingPlan(model, ctx, loss_cfg, PlanOptions::Reference());
    PlanArena ra;
    std::vector<float> ref_grad(dim);
    ref.Forward(params, features, ra);
    const float ref_loss = ref.OutputScalar(ra);
    ref.Backward(params, features, ra, ref_grad);
    double ref_norm = 0.0;
    for (float v : ref_grad) ref_norm += static_cast<double>(v) * v;
    ref_norm = std::sqrt(ref_norm);

    for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
      if (GetKernels(isa).isa != isa) continue;  // Tier unavailable here.
      SCOPED_TRACE(IsaName(isa));
      PlanOptions opts;
      opts.fuse_elementwise = true;
      opts.isa = isa;
      const GnnPlan plan = CompileTrainingPlan(model, ctx, loss_cfg, opts);
      ASSERT_EQ(plan.isa(), isa);

      PlanArena arena;
      std::vector<float> grad(dim);
      plan.Forward(params, features, arena);
      plan.Backward(params, features, arena, grad);

      EXPECT_NEAR(plan.OutputScalar(arena), ref_loss,
                  1e-4 * (1.0 + std::abs(ref_loss)));
      // Gradients: elementwise band scaled by the gradient's own norm so
      // near-zero entries don't demand absolute agreement they can't have.
      const double tol = 1e-4 * (ref_norm + 1.0);
      for (size_t i = 0; i < dim; ++i) {
        ASSERT_NEAR(grad[i], ref_grad[i], tol) << "grad scalar " << i;
      }
    }
  }
}

}  // namespace
}  // namespace privim
