// Differential kernel-test harness: every vectorized kernel in
// tensor/kernels.h against its scalar twin, on randomized shapes that
// cover full vectors plus remainder lanes (cols % 8 != 0 for AVX2,
// cols % 16 != 0 for AVX-512), denormal inputs, and ±0 coefficients.
//
// Tolerances are pinned per kernel, matching the contract documented in
// kernels.h:
//  - gather_rows / gather_rows_grad: 0 ULP (bit-identical).
//  - scatter_add_rows{,_grad}, weighted_scatter_add_rows and the dx half
//    of its grad: 0 ULP. The vector paths use explicit mul-then-add (no
//    FMA), so every accumulation step rounds exactly like the scalar
//    loop's — the baseline build has no FMA contraction to diverge from.
//  - matmul / matmul_da / matmul_db and the dalpha half of
//    weighted_scatter_add_rows_grad: reductions are reassociated and/or
//    FMA-contracted, so BOTH the scalar and vector results are checked
//    against a double-precision reference within a standard forward-error
//    bound: eps_f32 * (chain_length + 8) * sum(|terms|) + 1e-38.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/kernels.h"

namespace privim {
namespace {

using simd::GetKernels;
using simd::Isa;
using simd::IsaName;
using simd::Kernels;
using simd::ScalarKernels;

constexpr float kEps = 1.1920929e-07f;  // FLT_EPSILON.
constexpr double kTinyAbs = 1e-38;      // Absolute floor near denormals.

// Remainder-lane coverage: values straddling the 8-lane (AVX2) and
// 16-lane (AVX-512) boundaries, plus the degenerate width 1.
const size_t kCols[] = {1, 3, 7, 8, 9, 15, 16, 17, 31, 33};
const size_t kDepths[] = {1, 5, 8, 17, 33};

int64_t UlpDistance(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return INT64_MAX;
  int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map the sign-magnitude float encoding onto a monotone integer line so
  // ULP distance is a plain subtraction (treats +0 and -0 as 0 apart is
  // NOT wanted here: the scatter contract is bit-identity, so compare
  // encodings directly via the caller when max_ulp == 0).
  const auto key = [](int32_t i) {
    return i < 0 ? INT64_C(-2147483648) - i : static_cast<int64_t>(i);
  };
  return std::abs(key(ia) - key(ib));
}

void ExpectUlpClose(std::span<const float> got, std::span<const float> want,
                    int64_t max_ulp, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    if (max_ulp == 0) {
      // Bit-identity including the sign of zero.
      uint32_t bg, bw;
      std::memcpy(&bg, &got[i], sizeof(bg));
      std::memcpy(&bw, &want[i], sizeof(bw));
      ASSERT_EQ(bg, bw) << what << " diverges at scalar " << i << ": "
                        << got[i] << " vs " << want[i];
    } else {
      ASSERT_LE(UlpDistance(got[i], want[i]), max_ulp)
          << what << " at scalar " << i << ": " << got[i] << " vs "
          << want[i];
    }
  }
}

// Uniform(-1, 1) with structured poison every few entries: exact +0, exact
// -0, and denormals (|x| ~ 1e-41, far below FLT_MIN) in both signs.
std::vector<float> RandomData(size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> out(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 11 == 3) {
      out[i] = 0.0f;
    } else if (i % 11 == 7) {
      out[i] = -0.0f;
    } else if (i % 13 == 5) {
      out[i] = dist(rng) * 1e-41f;  // Denormal range.
    } else {
      out[i] = dist(rng);
    }
  }
  return out;
}

std::vector<uint32_t> RandomIndex(size_t n, size_t upper, std::mt19937& rng) {
  std::uniform_int_distribution<uint32_t> dist(
      0, static_cast<uint32_t>(upper - 1));
  std::vector<uint32_t> out(n);
  for (auto& v : out) v = dist(rng);  // Repeats exercise accumulation.
  return out;
}

// |impl - double_ref| <= eps * (chain + 8) * sum|terms| + floor, applied
// element-wise. `ref` and `abs_sum` are accumulated in double by the
// caller.
void ExpectWithinBound(std::span<const float> got,
                       const std::vector<double>& ref,
                       const std::vector<double>& abs_sum, size_t chain,
                       const std::string& what) {
  ASSERT_EQ(got.size(), ref.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    const double tol =
        static_cast<double>(kEps) * static_cast<double>(chain + 8) *
            abs_sum[i] +
        kTinyAbs;
    ASSERT_NEAR(static_cast<double>(got[i]), ref[i], tol)
        << what << " at scalar " << i;
  }
}

// The tiers worth differential-testing on this host: each AVX table that
// both compiled in AND is executable here. GetKernels clamps, so a tier is
// runnable exactly when the table it returns is its own.
std::vector<Isa> VectorTiers() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    if (GetKernels(isa).isa == isa) out.push_back(isa);
  }
  return out;
}

class KernelDiffTest : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override {
    if (GetKernels(GetParam()).isa != GetParam()) {
      GTEST_SKIP() << IsaName(GetParam())
                   << " not available on this host/build";
    }
  }
  const Kernels& kt() const { return GetKernels(GetParam()); }
  const Kernels& sc() const { return ScalarKernels(); }
};

TEST_P(KernelDiffTest, MatMulWithinForwardErrorBound) {
  std::mt19937 rng(100);
  for (size_t m : {size_t{1}, size_t{4}}) {
    for (size_t k : kDepths) {
      for (size_t n : kCols) {
        SCOPED_TRACE("m=" + std::to_string(m) + " k=" + std::to_string(k) +
                     " n=" + std::to_string(n));
        std::vector<float> a = RandomData(m * k, rng);
        std::vector<float> b = RandomData(k * n, rng);
        if (m * k > 2) a[1] = 0.0f;  // Exercise the scalar aik==0 skip.
        std::vector<double> ref(m * n, 0.0), abs(m * n, 0.0);
        for (size_t i = 0; i < m; ++i) {
          for (size_t kk = 0; kk < k; ++kk) {
            const double av = a[i * k + kk];
            for (size_t j = 0; j < n; ++j) {
              const double t = av * static_cast<double>(b[kk * n + j]);
              ref[i * n + j] += t;
              abs[i * n + j] += std::abs(t);
            }
          }
        }
        std::vector<float> out_s(m * n, 42.0f), out_v(m * n, -42.0f);
        sc().matmul(a.data(), b.data(), out_s.data(), m, k, n);
        kt().matmul(a.data(), b.data(), out_v.data(), m, k, n);
        ExpectWithinBound(out_s, ref, abs, k, "scalar matmul");
        ExpectWithinBound(out_v, ref, abs, k, "simd matmul");
      }
    }
  }
}

TEST_P(KernelDiffTest, MatMulDaWithinForwardErrorBound) {
  std::mt19937 rng(200);
  for (size_t m : {size_t{1}, size_t{4}}) {
    for (size_t k : kDepths) {
      for (size_t n : kCols) {
        SCOPED_TRACE("m=" + std::to_string(m) + " k=" + std::to_string(k) +
                     " n=" + std::to_string(n));
        std::vector<float> g = RandomData(m * n, rng);
        std::vector<float> b = RandomData(k * n, rng);
        std::vector<float> base = RandomData(m * k, rng);
        // ag accumulates: ag[i,kk] += dot(g[i,:], b[kk,:]).
        std::vector<double> ref(m * k), abs(m * k);
        for (size_t i = 0; i < m; ++i) {
          for (size_t kk = 0; kk < k; ++kk) {
            double dot = base[i * k + kk], asum = std::abs(dot);
            for (size_t j = 0; j < n; ++j) {
              const double t = static_cast<double>(g[i * n + j]) *
                               static_cast<double>(b[kk * n + j]);
              dot += t;
              asum += std::abs(t);
            }
            ref[i * k + kk] = dot;
            abs[i * k + kk] = asum;
          }
        }
        std::vector<float> ag_s = base, ag_v = base;
        sc().matmul_da(g.data(), b.data(), ag_s.data(), m, k, n);
        kt().matmul_da(g.data(), b.data(), ag_v.data(), m, k, n);
        ExpectWithinBound(ag_s, ref, abs, n, "scalar matmul_da");
        ExpectWithinBound(ag_v, ref, abs, n, "simd matmul_da");
      }
    }
  }
}

TEST_P(KernelDiffTest, MatMulDbWithinForwardErrorBound) {
  std::mt19937 rng(300);
  for (size_t m : {size_t{1}, size_t{5}}) {
    for (size_t k : kDepths) {
      for (size_t n : kCols) {
        SCOPED_TRACE("m=" + std::to_string(m) + " k=" + std::to_string(k) +
                     " n=" + std::to_string(n));
        std::vector<float> a = RandomData(m * k, rng);
        std::vector<float> g = RandomData(m * n, rng);
        if (m * k > 2) a[2 % (m * k)] = 0.0f;  // ari==0 skip path.
        // s[kk,j] = sum_i a[i,kk] * g[i,j] (zero-filled staging buffer).
        std::vector<double> ref(k * n, 0.0), abs(k * n, 0.0);
        for (size_t i = 0; i < m; ++i) {
          for (size_t kk = 0; kk < k; ++kk) {
            const double av = a[i * k + kk];
            for (size_t j = 0; j < n; ++j) {
              const double t = av * static_cast<double>(g[i * n + j]);
              ref[kk * n + j] += t;
              abs[kk * n + j] += std::abs(t);
            }
          }
        }
        std::vector<float> s_s(k * n, 42.0f), s_v(k * n, -42.0f);
        sc().matmul_db(a.data(), g.data(), s_s.data(), m, k, n);
        kt().matmul_db(a.data(), g.data(), s_v.data(), m, k, n);
        ExpectWithinBound(s_s, ref, abs, m, "scalar matmul_db");
        ExpectWithinBound(s_v, ref, abs, m, "simd matmul_db");
      }
    }
  }
}

TEST_P(KernelDiffTest, GatherRowsBitIdentical) {
  std::mt19937 rng(400);
  const size_t x_rows = 7, n_idx = 11;
  for (size_t cols : kCols) {
    SCOPED_TRACE("cols=" + std::to_string(cols));
    std::vector<float> x = RandomData(x_rows * cols, rng);
    std::vector<uint32_t> idx = RandomIndex(n_idx, x_rows, rng);
    std::vector<float> out_s(n_idx * cols, 1.0f), out_v(n_idx * cols, 2.0f);
    sc().gather_rows(x.data(), idx.data(), n_idx, cols, out_s.data());
    kt().gather_rows(x.data(), idx.data(), n_idx, cols, out_v.data());
    ExpectUlpClose(out_v, out_s, 0, "gather_rows");
  }
}

TEST_P(KernelDiffTest, GatherRowsGradBitIdentical) {
  std::mt19937 rng(500);
  const size_t x_rows = 7, n_idx = 11;  // Repeats accumulate in order.
  for (size_t cols : kCols) {
    SCOPED_TRACE("cols=" + std::to_string(cols));
    std::vector<float> g = RandomData(n_idx * cols, rng);
    std::vector<uint32_t> idx = RandomIndex(n_idx, x_rows, rng);
    std::vector<float> base = RandomData(x_rows * cols, rng);
    std::vector<float> ag_s = base, ag_v = base;
    sc().gather_rows_grad(g.data(), idx.data(), n_idx, cols, ag_s.data());
    kt().gather_rows_grad(g.data(), idx.data(), n_idx, cols, ag_v.data());
    ExpectUlpClose(ag_v, ag_s, 0, "gather_rows_grad");
  }
}

TEST_P(KernelDiffTest, ScatterAddRowsBitIdentical) {
  std::mt19937 rng(600);
  const size_t x_rows = 9, out_rows = 6, n_edges = 23;
  for (size_t cols : kCols) {
    SCOPED_TRACE("cols=" + std::to_string(cols));
    std::vector<float> x = RandomData(x_rows * cols, rng);
    std::vector<uint32_t> src = RandomIndex(n_edges, x_rows, rng);
    std::vector<uint32_t> dst = RandomIndex(n_edges, out_rows, rng);
    std::vector<float> coef = RandomData(n_edges, rng);
    coef[0] = 0.0f;   // ±0 weights must still round-trip bitwise.
    coef[1] = -0.0f;
    std::vector<float> out_s(out_rows * cols, 1.0f);
    std::vector<float> out_v(out_rows * cols, 2.0f);
    sc().scatter_add_rows(x.data(), src.data(), dst.data(), coef.data(),
                          n_edges, cols, out_s.data(), out_s.size());
    kt().scatter_add_rows(x.data(), src.data(), dst.data(), coef.data(),
                          n_edges, cols, out_v.data(), out_v.size());
    ExpectUlpClose(out_v, out_s, 0, "scatter_add_rows");
  }
}

TEST_P(KernelDiffTest, ScatterAddRowsGradBitIdentical) {
  std::mt19937 rng(700);
  const size_t x_rows = 9, out_rows = 6, n_edges = 23;
  for (size_t cols : kCols) {
    SCOPED_TRACE("cols=" + std::to_string(cols));
    std::vector<float> g = RandomData(out_rows * cols, rng);
    std::vector<uint32_t> src = RandomIndex(n_edges, x_rows, rng);
    std::vector<uint32_t> dst = RandomIndex(n_edges, out_rows, rng);
    std::vector<float> coef = RandomData(n_edges, rng);
    coef[2] = 0.0f;
    coef[3] = -0.0f;
    std::vector<float> base = RandomData(x_rows * cols, rng);
    std::vector<float> ag_s = base, ag_v = base;
    sc().scatter_add_rows_grad(g.data(), src.data(), dst.data(), coef.data(),
                               n_edges, cols, ag_s.data());
    kt().scatter_add_rows_grad(g.data(), src.data(), dst.data(), coef.data(),
                               n_edges, cols, ag_v.data());
    ExpectUlpClose(ag_v, ag_s, 0, "scatter_add_rows_grad");
  }
}

TEST_P(KernelDiffTest, WeightedScatterAddRowsBitIdentical) {
  std::mt19937 rng(800);
  const size_t x_rows = 9, out_rows = 6, n_edges = 23;
  for (size_t cols : kCols) {
    SCOPED_TRACE("cols=" + std::to_string(cols));
    std::vector<float> x = RandomData(x_rows * cols, rng);
    std::vector<float> alpha = RandomData(n_edges, rng);
    alpha[4] = 0.0f;
    alpha[5] = -0.0f;
    std::vector<uint32_t> src = RandomIndex(n_edges, x_rows, rng);
    std::vector<uint32_t> dst = RandomIndex(n_edges, out_rows, rng);
    std::vector<float> out_s(out_rows * cols, 1.0f);
    std::vector<float> out_v(out_rows * cols, 2.0f);
    sc().weighted_scatter_add_rows(alpha.data(), x.data(), src.data(),
                                   dst.data(), n_edges, cols, out_s.data(),
                                   out_s.size());
    kt().weighted_scatter_add_rows(alpha.data(), x.data(), src.data(),
                                   dst.data(), n_edges, cols, out_v.data(),
                                   out_v.size());
    ExpectUlpClose(out_v, out_s, 0, "weighted_scatter_add_rows");
  }
}

TEST_P(KernelDiffTest, WeightedScatterAddRowsGradDxBitIdenticalDalphaBounded) {
  std::mt19937 rng(900);
  const size_t x_rows = 9, out_rows = 6, n_edges = 23;
  for (size_t cols : kCols) {
    SCOPED_TRACE("cols=" + std::to_string(cols));
    std::vector<float> x = RandomData(x_rows * cols, rng);
    std::vector<float> g = RandomData(out_rows * cols, rng);
    std::vector<float> alpha = RandomData(n_edges, rng);
    alpha[6] = 0.0f;
    alpha[7] = -0.0f;
    std::vector<uint32_t> src = RandomIndex(n_edges, x_rows, rng);
    std::vector<uint32_t> dst = RandomIndex(n_edges, out_rows, rng);

    // dalpha[e] += dot(g[dst[e],:], x[src[e],:]) — double-ref bound.
    std::vector<float> da_base = RandomData(n_edges, rng);
    std::vector<double> da_ref(n_edges), da_abs(n_edges);
    for (size_t e = 0; e < n_edges; ++e) {
      double dot = da_base[e], asum = std::abs(dot);
      for (size_t c = 0; c < cols; ++c) {
        const double t = static_cast<double>(g[dst[e] * cols + c]) *
                         static_cast<double>(x[src[e] * cols + c]);
        dot += t;
        asum += std::abs(t);
      }
      da_ref[e] = dot;
      da_abs[e] = asum;
    }

    std::vector<float> dx_base = RandomData(x_rows * cols, rng);
    std::vector<float> da_s = da_base, da_v = da_base;
    std::vector<float> dx_s = dx_base, dx_v = dx_base;
    sc().weighted_scatter_add_rows_grad(alpha.data(), x.data(), g.data(),
                                        src.data(), dst.data(), n_edges,
                                        cols, da_s.data(), dx_s.data());
    kt().weighted_scatter_add_rows_grad(alpha.data(), x.data(), g.data(),
                                        src.data(), dst.data(), n_edges,
                                        cols, da_v.data(), dx_v.data());
    ExpectUlpClose(dx_v, dx_s, 0, "weighted grad dx");
    ExpectWithinBound(da_s, da_ref, da_abs, cols, "scalar weighted dalpha");
    ExpectWithinBound(da_v, da_ref, da_abs, cols, "simd weighted dalpha");

    // Null halves: each output is optional and the other must not be
    // touched.
    std::vector<float> only_da = da_base, only_dx = dx_base;
    kt().weighted_scatter_add_rows_grad(alpha.data(), x.data(), g.data(),
                                        src.data(), dst.data(), n_edges,
                                        cols, only_da.data(), nullptr);
    ExpectUlpClose(only_da, da_v, 0, "dalpha-only");
    kt().weighted_scatter_add_rows_grad(alpha.data(), x.data(), g.data(),
                                        src.data(), dst.data(), n_edges,
                                        cols, nullptr, only_dx.data());
    ExpectUlpClose(only_dx, dx_v, 0, "dx-only");
  }
}

INSTANTIATE_TEST_SUITE_P(Tiers, KernelDiffTest,
                         ::testing::Values(Isa::kAvx2, Isa::kAvx512),
                         [](const ::testing::TestParamInfo<Isa>& info) {
                           return std::string(IsaName(info.param));
                         });

// The harness above is vacuous on hosts without AVX; make that loud.
TEST(KernelDiffCoverage, ReportsAvailableTiers) {
  const Kernels& s = ScalarKernels();
  ASSERT_EQ(s.isa, Isa::kScalar);
  ASSERT_NE(s.matmul, nullptr);
  for (Isa isa : VectorTiers()) {
    const Kernels& k = GetKernels(isa);
    EXPECT_NE(k.matmul, s.matmul) << IsaName(isa);
  }
  // Informational, not an assertion: CI hosts may legitimately lack tiers.
  std::string tiers = "scalar";
  for (Isa isa : VectorTiers()) tiers += std::string(" ") + IsaName(isa);
  std::fprintf(stderr, "[kernel_diff] differential tiers: %s\n",
               tiers.c_str());
}

}  // namespace
}  // namespace privim
