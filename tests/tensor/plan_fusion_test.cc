// Unit tests for the elementwise-fusion compiler pass (PlanBuilder::Build
// with PlanOptions::fuse_elementwise):
//  - op-count reduction on the real training plans of every GnnType;
//  - fusion alone (scalar kernels) stays BIT-identical to the reference
//    plan — the fused sweep applies the same scalar arithmetic per
//    element, so this suite compares exact bit patterns, like
//    plan_equivalence_test.cc does for plan-vs-tape;
//  - group-formation guards: no fusion across non-elementwise ops
//    (MatMul and its scratch_db staging), no fusion past an in-group
//    operand (aliasing), kMaxFuseLen splitting;
//  - write elision: values observed by nothing outside their group are
//    skipped, values read by a backward pass are not;
//  - fused + SIMD plans re-executed on a warm arena are bit-identical to
//    their own first run (steady-state determinism).

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/loss.h"
#include "core/plan_cache.h"
#include "graph/generators.h"
#include "nn/features.h"
#include "nn/gnn.h"
#include "nn/graph_context.h"
#include "tensor/plan.h"

namespace privim {
namespace {

using Steps = std::vector<std::pair<int32_t, int32_t>>;

void ExpectBitEqual(std::span<const float> a, std::span<const float> b,
                    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    ASSERT_EQ(ba, bb) << what << " diverges at scalar " << i << ": " << a[i]
                      << " vs " << b[i];
  }
}

void ExpectBitEqualScalar(float a, float b, const std::string& what) {
  ExpectBitEqual(std::span<const float>(&a, 1),
                 std::span<const float>(&b, 1), what);
}

struct TrainingSetup {
  GraphContext ctx;
  Matrix features;
  ImLossConfig loss_cfg;
};

TrainingSetup MakeSetup(size_t n, uint64_t seed) {
  Rng grng(seed);
  Graph g =
      std::move(ErdosRenyi(n, n <= 2 ? 1.0 : 0.15, false, grng)).ValueOrDie();
  TrainingSetup s{BuildGraphContext(g), BuildNodeFeatures(g), ImLossConfig{}};
  s.loss_cfg.diffusion_steps = 2;  // Covers the InfluenceProb/Mul chain.
  return s;
}

GnnModel MakeModel(GnnType type, uint64_t seed) {
  GnnConfig mc;
  mc.type = type;
  mc.in_dim = kNodeFeatureDim;
  mc.hidden_dim = 8;
  mc.num_layers = 2;
  Rng mrng(seed);
  return GnnModel(mc, mrng);
}

std::vector<float> FlatParams(const GnnModel& model) {
  std::vector<float> out(model.params().num_scalars());
  model.params().FlattenParams(out);
  return out;
}

const GnnType kAllTypes[] = {GnnType::kGcn, GnnType::kSage, GnnType::kGin,
                             GnnType::kGat, GnnType::kGrat};

TEST(PlanFusionTest, ReducesForwardScheduleOnEveryGnnType) {
  for (GnnType type : kAllTypes) {
    SCOPED_TRACE(GnnTypeName(type));
    const TrainingSetup s = MakeSetup(17, 2000);
    const GnnModel model = MakeModel(type, 2001);

    const GnnPlan ref = CompileTrainingPlan(model, s.ctx, s.loss_cfg,
                                            PlanOptions::Reference());
    PlanOptions fuse_only;
    fuse_only.fuse_elementwise = true;  // isa stays kScalar.
    const GnnPlan fused =
        CompileTrainingPlan(model, s.ctx, s.loss_cfg, fuse_only);

    EXPECT_FALSE(ref.fused());
    EXPECT_EQ(ref.num_forward_steps(), ref.num_ops());
    ASSERT_TRUE(fused.fused());
    EXPECT_EQ(fused.num_ops(), ref.num_ops());
    // Every GnnType's plan carries at least: one LeakyRelu tail per layer
    // (2 layers), the head bias+Sigmoid pair, and the per-diffusion-step
    // InfluenceProb/Scale/AddScalar(/Mul) loss chain.
    EXPECT_LE(fused.num_forward_steps() + 4, fused.num_ops());

    // The fused schedule partitions the op list exactly.
    size_t covered = 0;
    for (const auto& [first, count] : fused.ForwardSteps()) {
      EXPECT_EQ(static_cast<size_t>(first), covered);
      ASSERT_GE(count, 1);
      ASSERT_LE(count, 8);
      covered += static_cast<size_t>(count);
    }
    EXPECT_EQ(covered, fused.num_ops());
  }
}

TEST(PlanFusionTest, FusedScalarPlanBitIdenticalToReference) {
  for (GnnType type : kAllTypes) {
    for (size_t n : {size_t{2}, size_t{17}}) {
      SCOPED_TRACE(GnnTypeName(type) + " n=" + std::to_string(n));
      const TrainingSetup s = MakeSetup(n, 3000 + n);
      const GnnModel model = MakeModel(type, 3100 + n);
      const std::vector<float> params = FlatParams(model);

      const GnnPlan ref = CompileTrainingPlan(model, s.ctx, s.loss_cfg,
                                              PlanOptions::Reference());
      PlanOptions fuse_only;
      fuse_only.fuse_elementwise = true;
      const GnnPlan fused =
          CompileTrainingPlan(model, s.ctx, s.loss_cfg, fuse_only);
      ASSERT_EQ(fused.isa(), simd::Isa::kScalar);

      const size_t dim = params.size();
      PlanArena ra, fa;
      std::vector<float> rg(dim, 42.0f), fg(dim, -42.0f);
      ref.Forward(params, s.features, ra);
      fused.Forward(params, s.features, fa);
      ExpectBitEqualScalar(fused.OutputScalar(fa), ref.OutputScalar(ra),
                           "loss");
      ref.Backward(params, s.features, ra, rg);
      fused.Backward(params, s.features, fa, fg);
      ExpectBitEqual(fg, rg, "gradients");
    }
  }
}

// x -> Relu -> Scale -> Mul(., Relu_out): the Mul's second operand is
// produced INSIDE the candidate group, so fusion must stop before it —
// otherwise the sweep would read a buffer that is elided or only
// partially written. Ops: 0=Relu 1=Scale 2=Mul 3=Sum.
TEST(PlanFusionTest, AliasingGuardStopsGroupAtInGroupOperand) {
  const auto build = [](const PlanOptions& opts) {
    PlanBuilder pb;
    const PlanValId x = pb.Input(4, 8);
    const PlanValId r = pb.Relu(x);
    const PlanValId sc = pb.Scale(r, 2.0f);
    const PlanValId m = pb.Mul(sc, r);
    return pb.Build(pb.Sum(m), opts);
  };
  PlanOptions fuse;
  fuse.fuse_elementwise = true;
  const ExecutionPlan fused = build(fuse);
  const ExecutionPlan ref = build(PlanOptions::Reference());

  const Steps want = {{0, 2}, {2, 1}, {3, 1}};
  EXPECT_EQ(fused.ForwardSteps(), want);
  // `r` is consumed by the Mul outside its group: never elided.
  EXPECT_EQ(fused.num_elided_values(), 0u);

  Matrix in(4, 8);
  for (size_t i = 0; i < in.size(); ++i) {
    in.data()[i] = (i % 3 == 0 ? -1.0f : 1.0f) * 0.37f * float(i + 1);
  }
  PlanArena ra, fa;
  ref.Forward({}, in, ra);
  fused.Forward({}, in, fa);
  ExpectBitEqualScalar(fused.OutputScalar(fa), ref.OutputScalar(ra),
                       "aliased output");
}

// Relu -> MatMul -> Sigmoid: nothing fuses across the MatMul (its kernel
// and scratch_db staging are not part of any elementwise sweep); every
// step stays a singleton.
TEST(PlanFusionTest, NoFusionAcrossMatMul) {
  PlanBuilder pb;
  const PlanValId x = pb.Input(4, 8);
  const PlanValId w = pb.Param(0, 8, 8);
  const PlanValId r = pb.Relu(x);
  const PlanValId y = pb.MatMul(r, w);
  const PlanValId sg = pb.Sigmoid(y);
  PlanOptions fuse;
  fuse.fuse_elementwise = true;
  const ExecutionPlan plan = pb.Build(pb.Sum(sg), fuse);

  const Steps want = {{0, 1}, {1, 1}, {2, 1}, {3, 1}};
  EXPECT_EQ(plan.ForwardSteps(), want);
  EXPECT_EQ(plan.num_elided_values(), 0u);
}

// MatMul -> Scale -> AddScalar -> Scale -> Sum. The two interior values of
// the [Scale, AddScalar, Scale] group are observed by nothing — their
// consumers are in-group and none of Scale/AddScalar's backwards read a
// forward value — so both writes are elided; the group's final value feeds
// the Sum and stays materialized. Gradients still flow through the group
// (grad buffers are independent of elision) and must match the reference
// bitwise.
TEST(PlanFusionTest, ElidesUnobservedInteriorWrites) {
  const auto build = [](const PlanOptions& opts) {
    PlanBuilder pb;
    const PlanValId x = pb.Input(3, 8);
    const PlanValId w = pb.Param(0, 8, 8);
    const PlanValId h = pb.MatMul(x, w);
    const PlanValId a = pb.Scale(h, 2.0f);
    const PlanValId b = pb.AddScalar(a, 1.0f);
    const PlanValId c = pb.Scale(b, 3.0f);
    return pb.Build(pb.Sum(c), opts);
  };
  PlanOptions fuse;
  fuse.fuse_elementwise = true;
  const ExecutionPlan fused = build(fuse);
  const ExecutionPlan ref = build(PlanOptions::Reference());

  const Steps want = {{0, 1}, {1, 3}, {4, 1}};
  EXPECT_EQ(fused.ForwardSteps(), want);
  EXPECT_EQ(fused.num_elided_values(), 2u);
  EXPECT_EQ(ref.num_elided_values(), 0u);

  Matrix in(3, 8);
  std::vector<float> params(64);
  for (size_t i = 0; i < in.size(); ++i) in.data()[i] = 0.11f * float(i) - 1.0f;
  for (size_t i = 0; i < params.size(); ++i) {
    params[i] = (i % 2 ? -1.0f : 1.0f) * 0.05f * float(i + 1);
  }
  PlanArena ra, fa;
  std::vector<float> rg(64, 42.0f), fg(64, -42.0f);
  ref.Forward(params, in, ra);
  fused.Forward(params, in, fa);
  ExpectBitEqualScalar(fused.OutputScalar(fa), ref.OutputScalar(ra), "loss");
  ref.Backward(params, in, ra, rg);
  fused.Backward(params, in, fa, fg);
  ExpectBitEqual(fg, rg, "gradients through elided group");
}

// A run longer than kMaxFuseLen splits: 10 chained AddScalars become one
// full group of 8 and one of 2.
TEST(PlanFusionTest, SplitsRunsLongerThanMaxFuseLen) {
  PlanBuilder pb;
  PlanValId v = pb.Input(2, 4);
  for (int i = 0; i < 10; ++i) v = pb.AddScalar(v, 0.125f);
  PlanOptions fuse;
  fuse.fuse_elementwise = true;
  const ExecutionPlan plan = pb.Build(pb.Sum(v), fuse);

  const Steps want = {{0, 8}, {8, 2}, {10, 1}};
  EXPECT_EQ(plan.ForwardSteps(), want);
  // Interior values of both groups are unobserved (AddScalar's backward
  // reads no forward value): 7 + 1 elisions.
  EXPECT_EQ(plan.num_elided_values(), 8u);
}

// Steady-state determinism of the OPTIMIZED path: a fused + SIMD plan
// re-executed on its warm arena reproduces its own first run bitwise —
// same guarantee the trainer and server rely on for reproducible runs,
// independent of the (tolerance-pinned) agreement with the reference.
TEST(PlanFusionTest, FusedSimdPlanWarmArenaBitStable) {
  for (GnnType type : {GnnType::kGrat, GnnType::kGcn}) {
    SCOPED_TRACE(GnnTypeName(type));
    const TrainingSetup s = MakeSetup(17, 4000);
    const GnnModel model = MakeModel(type, 4001);
    const std::vector<float> params = FlatParams(model);
    const GnnPlan plan = CompileTrainingPlan(model, s.ctx, s.loss_cfg,
                                             PlanOptions::Native());
    ASSERT_TRUE(plan.fused());

    const size_t dim = params.size();
    PlanArena arena;
    std::vector<float> g1(dim, 1.0f), g2(dim, 2.0f);
    plan.Forward(params, s.features, arena);
    const float loss1 = plan.OutputScalar(arena);
    plan.Backward(params, s.features, arena, g1);
    for (int rep = 0; rep < 3; ++rep) {
      plan.Forward(params, s.features, arena);
      ExpectBitEqualScalar(plan.OutputScalar(arena), loss1, "warm loss");
      plan.Backward(params, s.features, arena, g2);
      ExpectBitEqual(g2, g1, "warm gradients");
    }
  }
}

}  // namespace
}  // namespace privim
