#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace privim {
namespace {

TEST(TensorTest, LeafConstruction) {
  Tensor t(Matrix::Ones(2, 3));
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_FALSE(t.requires_grad());

  Tensor p(Matrix::Ones(1, 1), /*requires_grad=*/true);
  EXPECT_TRUE(p.requires_grad());
}

TEST(TensorTest, ScalarHelper) {
  Tensor s = Tensor::Scalar(2.5f);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_EQ(s.cols(), 1u);
  EXPECT_FLOAT_EQ(s.value()(0, 0), 2.5f);
}

TEST(TensorTest, CopyAliasesSameNode) {
  Tensor a(Matrix::Ones(1, 1), true);
  Tensor b = a;
  b.mutable_value()(0, 0) = 9.0f;
  EXPECT_FLOAT_EQ(a.value()(0, 0), 9.0f);
}

TEST(TensorTest, BackwardThroughSimpleChain) {
  // loss = sum(2 * x), d loss / d x = 2 everywhere.
  Tensor x(Matrix::Ones(2, 2), true);
  Tensor loss = Sum(Scale(x, 2.0f));
  loss.Backward();
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(x.grad()(r, c), 2.0f);
    }
  }
}

TEST(TensorTest, GradAccumulatesAcrossBackwardCalls) {
  Tensor x(Matrix::Ones(1, 1), true);
  Tensor loss1 = Sum(x);
  loss1.Backward();
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 1.0f);
  Tensor loss2 = Sum(x);
  loss2.Backward();
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 2.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 0.0f);
}

TEST(TensorTest, DiamondGraphAccumulatesBothPaths) {
  // loss = sum(x + x): gradient should be 2 per entry, not 1.
  Tensor x(Matrix::Ones(2, 1), true);
  Tensor loss = Sum(Add(x, x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(x.grad()(1, 0), 2.0f);
}

TEST(TensorTest, NoGradForConstants) {
  Tensor c(Matrix::Ones(2, 2));  // No requires_grad.
  Tensor p(Matrix::Ones(2, 2), true);
  Tensor loss = Sum(Mul(c, p));
  loss.Backward();
  EXPECT_FLOAT_EQ(p.grad()(0, 0), 1.0f);
  // Constant's grad stays zero (allocated lazily as zeros).
  EXPECT_FLOAT_EQ(c.grad()(0, 0), 0.0f);
}

TEST(TensorTest, DeepChainBackward) {
  // 60 chained scalings: gradient is 1.01^60.
  Tensor x(Matrix::Ones(1, 1), true);
  Tensor h = x;
  for (int i = 0; i < 60; ++i) h = Scale(h, 1.01f);
  Sum(h).Backward();
  EXPECT_NEAR(x.grad()(0, 0), std::pow(1.01, 60.0), 1e-3);
}

TEST(TensorDeathTest, BackwardRequiresScalar) {
  Tensor x(Matrix::Ones(2, 2), true);
  EXPECT_DEATH(x.Backward(), "");
}

}  // namespace
}  // namespace privim
