#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(OpsTest, MatMulForward) {
  Tensor a(Matrix::FromRows({{1, 2}, {3, 4}}));
  Tensor b(Matrix::FromRows({{5, 6}, {7, 8}}));
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.value()(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.value()(1, 1), 50.0f);
}

TEST(OpsTest, AddSubMulForward) {
  Tensor a(Matrix::FromRows({{1, 2}}));
  Tensor b(Matrix::FromRows({{10, 20}}));
  EXPECT_FLOAT_EQ(Add(a, b).value()(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(Sub(b, a).value()(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).value()(0, 1), 40.0f);
}

TEST(OpsTest, AddRowBroadcastForward) {
  Tensor x(Matrix::FromRows({{1, 2}, {3, 4}}));
  Tensor bias(Matrix::FromRows({{10, 20}}));
  Tensor y = AddRowBroadcast(x, bias);
  EXPECT_FLOAT_EQ(y.value()(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.value()(1, 1), 24.0f);
}

TEST(OpsTest, ScaleAndAddScalar) {
  Tensor x(Matrix::FromRows({{2, -2}}));
  EXPECT_FLOAT_EQ(Scale(x, -0.5f).value()(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(AddScalar(x, 3.0f).value()(0, 1), 1.0f);
}

TEST(OpsTest, ScaleByScalarForward) {
  Tensor x(Matrix::FromRows({{1, 2}}));
  Tensor s = Tensor::Scalar(3.0f);
  Tensor y = ScaleByScalar(x, s);
  EXPECT_FLOAT_EQ(y.value()(0, 1), 6.0f);
}

TEST(OpsTest, ConcatColsForward) {
  Tensor a(Matrix::FromRows({{1}, {2}}));
  Tensor b(Matrix::FromRows({{3, 4}, {5, 6}}));
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_FLOAT_EQ(c.value()(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.value()(1, 2), 6.0f);
}

TEST(OpsTest, ActivationsForward) {
  Tensor x(Matrix::FromRows({{-2, 0, 2}}));
  Tensor r = Relu(x);
  EXPECT_FLOAT_EQ(r.value()(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(r.value()(0, 2), 2.0f);
  Tensor l = LeakyRelu(x, 0.1f);
  EXPECT_FLOAT_EQ(l.value()(0, 0), -0.2f);
  EXPECT_FLOAT_EQ(l.value()(0, 2), 2.0f);
  Tensor s = SigmoidOp(x);
  EXPECT_NEAR(s.value()(0, 1), 0.5f, 1e-6);
  EXPECT_NEAR(s.value()(0, 0) + s.value()(0, 2), 1.0f, 1e-6);
  Tensor t = TanhOp(x);
  EXPECT_NEAR(t.value()(0, 2), std::tanh(2.0f), 1e-6);
  Tensor e = ExpOp(x);
  EXPECT_NEAR(e.value()(0, 2), std::exp(2.0f), 1e-4);
  Tensor lg = LogOp(e);
  EXPECT_NEAR(lg.value()(0, 2), 2.0f, 1e-4);
}

TEST(OpsTest, InfluenceProbRangeAndMonotonicity) {
  Tensor x(Matrix::FromRows({{-1, 0, 0.5, 1, 3, 10}}));
  Tensor p = InfluenceProb(x);
  // Range [0, 1).
  for (size_t c = 0; c < 6; ++c) {
    EXPECT_GE(p.value()(0, c), 0.0f);
    EXPECT_LT(p.value()(0, c), 1.0f);
  }
  EXPECT_FLOAT_EQ(p.value()(0, 0), 0.0f);  // Negative input clamps to 0.
  EXPECT_FLOAT_EQ(p.value()(0, 1), 0.0f);
  // Monotone increasing.
  for (size_t c = 2; c < 6; ++c) {
    EXPECT_GT(p.value()(0, c), p.value()(0, c - 1));
  }
  EXPECT_NEAR(p.value()(0, 3), 1.0f - std::exp(-1.0f), 1e-6);
}

TEST(OpsTest, ReductionsForward) {
  Tensor x(Matrix::FromRows({{1, 2}, {3, 4}}));
  EXPECT_FLOAT_EQ(Sum(x).value()(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(x).value()(0, 0), 2.5f);
  Tensor rs = RowSum(x);
  EXPECT_EQ(rs.rows(), 2u);
  EXPECT_FLOAT_EQ(rs.value()(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(rs.value()(1, 0), 7.0f);
}

TEST(OpsTest, GatherRowsForward) {
  Tensor x(Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}}));
  Tensor g = GatherRows(x, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_FLOAT_EQ(g.value()(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.value()(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g.value()(2, 1), 6.0f);
}

TEST(OpsTest, ScatterAddRowsForward) {
  // Edges: 0->1 (coef 2), 2->1 (coef 1), 1->0 (coef 0.5).
  Tensor x(Matrix::FromRows({{1, 0}, {0, 1}, {2, 2}}));
  Tensor y = ScatterAddRows(x, {0, 2, 1}, {1, 1, 0}, {2.0f, 1.0f, 0.5f}, 3);
  EXPECT_FLOAT_EQ(y.value()(1, 0), 2.0f * 1.0f + 1.0f * 2.0f);  // 4
  EXPECT_FLOAT_EQ(y.value()(1, 1), 2.0f * 0.0f + 1.0f * 2.0f);  // 2
  EXPECT_FLOAT_EQ(y.value()(0, 1), 0.5f);
  EXPECT_FLOAT_EQ(y.value()(2, 0), 0.0f);
}

TEST(OpsTest, WeightedScatterAddForwardMatchesConstantVersion) {
  Tensor x(Matrix::FromRows({{1, 2}, {3, 4}}));
  const std::vector<uint32_t> src{0, 1};
  const std::vector<uint32_t> dst{1, 0};
  Tensor alpha(Matrix::FromRows({{0.5f}, {2.0f}}));
  Tensor a = WeightedScatterAddRows(alpha, x, src, dst, 2);
  Tensor b = ScatterAddRows(x, src, dst, {0.5f, 2.0f}, 2);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(a.value()(r, c), b.value()(r, c));
    }
  }
}

TEST(OpsTest, SegmentSoftmaxNormalizesPerGroup) {
  // Groups: edges {0,1} in group 0, edges {2,3,4} in group 1.
  Tensor scores(Matrix::FromRows({{1}, {2}, {-1}, {0}, {1}}));
  Tensor alpha = SegmentSoftmax(scores, {0, 0, 1, 1, 1}, 2);
  EXPECT_NEAR(alpha.value()(0, 0) + alpha.value()(1, 0), 1.0f, 1e-6);
  EXPECT_NEAR(alpha.value()(2, 0) + alpha.value()(3, 0) +
                  alpha.value()(4, 0),
              1.0f, 1e-6);
  // Larger score gets larger weight within its group.
  EXPECT_GT(alpha.value()(1, 0), alpha.value()(0, 0));
  EXPECT_GT(alpha.value()(4, 0), alpha.value()(2, 0));
}

TEST(OpsTest, SegmentSoftmaxStableForLargeScores) {
  Tensor scores(Matrix::FromRows({{1000}, {1001}}));
  Tensor alpha = SegmentSoftmax(scores, {0, 0}, 1);
  EXPECT_TRUE(std::isfinite(alpha.value()(0, 0)));
  EXPECT_NEAR(alpha.value()(0, 0) + alpha.value()(1, 0), 1.0f, 1e-6);
}

TEST(OpsTest, SegmentSoftmaxEmptyGroupYieldsNoNan) {
  // Group 1 has no edges; group 0 gets everything.
  Tensor scores(Matrix::FromRows({{0}, {0}}));
  Tensor alpha = SegmentSoftmax(scores, {0, 0}, 2);
  EXPECT_NEAR(alpha.value()(0, 0), 0.5f, 1e-6);
}

}  // namespace
}  // namespace privim
