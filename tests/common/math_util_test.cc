#include "common/math_util.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(LogBinomialTest, SmallValuesExact) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomial(10, 5), std::log(252.0), 1e-12);
  EXPECT_DOUBLE_EQ(LogBinomial(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(7, 7), 0.0);
}

TEST(LogBinomialTest, SymmetryAndPascal) {
  for (int64_t n = 2; n <= 30; ++n) {
    for (int64_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(LogBinomial(n, k), LogBinomial(n, n - k), 1e-9);
    }
  }
  // C(n,k) = C(n-1,k-1) + C(n-1,k) spot check at n=20,k=7 in linear space.
  const double lhs = std::exp(LogBinomial(20, 7));
  const double rhs =
      std::exp(LogBinomial(19, 6)) + std::exp(LogBinomial(19, 7));
  EXPECT_NEAR(lhs, rhs, rhs * 1e-9);
}

TEST(LogBinomialTest, LargeValuesFinite) {
  const double v = LogBinomial(1000000, 500000);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
}

TEST(LogSumExpTest, MatchesDirectComputationWhenSafe) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const double direct =
      std::log(std::exp(0.0) + std::exp(1.0) + std::exp(2.0));
  EXPECT_NEAR(LogSumExp(xs), direct, 1e-12);
}

TEST(LogSumExpTest, StableForLargeInputs) {
  const std::vector<double> xs = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(xs), 1000.0 + std::log(2.0), 1e-9);
  const std::vector<double> neg = {-1000.0, -1001.0};
  EXPECT_TRUE(std::isfinite(LogSumExp(neg)));
}

TEST(LogSumExpTest, EmptyIsMinusInfinity) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(LogSumExpTest, SingleElementIdentity) {
  const std::vector<double> xs = {3.7};
  EXPECT_NEAR(LogSumExp(xs), 3.7, 1e-12);
}

TEST(GammaPdfTest, MatchesClosedFormExponential) {
  // Gamma(shape=1, scale=psi) is Exponential(1/psi).
  for (double x : {0.1, 1.0, 5.0}) {
    EXPECT_NEAR(GammaPdf(x, 1.0, 2.0), std::exp(-x / 2.0) / 2.0, 1e-12);
  }
}

TEST(GammaPdfTest, ZeroOutsideSupport) {
  EXPECT_EQ(GammaPdf(0.0, 2.0, 1.0), 0.0);
  EXPECT_EQ(GammaPdf(-1.0, 2.0, 1.0), 0.0);
}

TEST(GammaPdfTest, ModeAtShapeMinusOneTimesScale) {
  // For shape>1 the mode is (beta-1)*psi; pdf should peak there.
  const double beta = 3.0, psi = 2.0;
  const double mode = (beta - 1.0) * psi;
  const double at_mode = GammaPdf(mode, beta, psi);
  EXPECT_GT(at_mode, GammaPdf(mode - 0.5, beta, psi));
  EXPECT_GT(at_mode, GammaPdf(mode + 0.5, beta, psi));
}

TEST(GammaPdfTest, IntegratesToOne) {
  // Trapezoid over [0, 60] for shape 2.5, scale 3.
  double integral = 0.0;
  const double dx = 0.01;
  for (double x = dx; x < 60.0; x += dx) {
    integral += GammaPdf(x, 2.5, 3.0) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(SigmoidTest, ValuesAndSymmetry) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  for (double x : {0.5, 1.0, 3.0}) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0, 1e-12);
  }
}

TEST(L2NormTest, FloatAndDouble) {
  const std::vector<float> f = {3.0f, 4.0f};
  EXPECT_NEAR(L2Norm(std::span<const float>(f)), 5.0, 1e-6);
  const std::vector<double> d = {1.0, 2.0, 2.0};
  EXPECT_NEAR(L2Norm(std::span<const double>(d)), 3.0, 1e-12);
}

TEST(ClipL2Test, NoOpBelowBound) {
  std::vector<float> v = {0.3f, 0.4f};  // Norm 0.5.
  const double pre = ClipL2(v, 1.0);
  EXPECT_NEAR(pre, 0.5, 1e-6);
  EXPECT_FLOAT_EQ(v[0], 0.3f);
  EXPECT_FLOAT_EQ(v[1], 0.4f);
}

TEST(ClipL2Test, ScalesDownToBound) {
  std::vector<float> v = {3.0f, 4.0f};  // Norm 5.
  const double pre = ClipL2(v, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(L2Norm(std::span<const float>(v)), 1.0, 1e-6);
  // Direction preserved.
  EXPECT_NEAR(v[1] / v[0], 4.0 / 3.0, 1e-5);
}

TEST(MeanStdDevTest, KnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(Mean(xs), 5.0, 1e-12);
  // Sample stddev with n-1: sqrt(32/7).
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(Mean({}), 0.0);
  const std::vector<double> one = {5.0};
  EXPECT_EQ(StdDev(one), 0.0);
}

TEST(LeastSquaresTest, RecoversExactLine) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = LeastSquares(xs, ys);
  EXPECT_NEAR(fit.k, 2.5, 1e-12);
  EXPECT_NEAR(fit.b, -1.0, 1e-12);
}

TEST(LeastSquaresTest, MinimizesResidualForNoisyData) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys = {0.1, 0.9, 2.1, 2.9};
  const LinearFit fit = LeastSquares(xs, ys);
  EXPECT_NEAR(fit.k, 1.0, 0.05);
  EXPECT_NEAR(fit.b, 0.0, 0.1);
}

}  // namespace
}  // namespace privim
