#include "common/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a much longer name", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  // Header, separator, two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // All lines have equal width.
  std::istringstream is(out);
  std::string line;
  size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"A", "B", "C"});
  table.AddRow({"only one"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("only one"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TablePrinterTest, DoubleRowFormatsValues) {
  TablePrinter table({"method", "e1", "e2"});
  table.AddRow("PrivIM*", {93.756, 94.5}, 2);
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("93.76"), std::string::npos);
  EXPECT_NE(os.str().find("94.50"), std::string::npos);
}

TEST(TablePrinterTest, MarkdownCompatibleSeparator) {
  TablePrinter table({"x"});
  table.AddRow({"1"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("|---"), std::string::npos);
}

}  // namespace
}  // namespace privim
