#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace privim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::NotFound("c"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("f"), StatusCode::kInternal, "Internal"},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::IoError("h"), StatusCode::kIoError, "IoError"},
      {Status::ResourceExhausted("i"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeToString(c.code), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailsAtStep(int fail_at, int step) {
  if (step == fail_at) return Status::Internal("boom");
  return Status::OK();
}

Status Chain(int fail_at) {
  PRIVIM_RETURN_NOT_OK(FailsAtStep(fail_at, 0));
  PRIVIM_RETURN_NOT_OK(FailsAtStep(fail_at, 1));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(-1).ok());
  EXPECT_EQ(Chain(0).code(), StatusCode::kInternal);
  EXPECT_EQ(Chain(1).code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  PRIVIM_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, HoldsValueOrError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);

  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*DoublePositive(4), 8);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string moved = std::move(r).ValueOrDie();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> err = Status::Internal("boom");
  EXPECT_DEATH((void)err.ValueOrDie(), "boom");
}

}  // namespace
}  // namespace privim
