#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.1, 0.01);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianMeanStddevScaling) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(3.0, 2.0);
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, LaplaceSymmetricWithCorrectScale) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0, abs_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double l = rng.Laplace(1.5);
    sum += l;
    abs_sum += std::abs(l);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  // E|Laplace(b)| = b.
  EXPECT_NEAR(abs_sum / n, 1.5, 0.05);
}

TEST(RngTest, DiscreteProportionalToWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const size_t pick = rng.Discrete(weights);
    ASSERT_LT(pick, weights.size());
    ++counts[pick];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / trials, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / trials, 0.75, 0.01);
}

TEST(RngTest, DiscreteAllZeroReturnsSize) {
  Rng rng(37);
  const std::vector<double> weights = {0.0, 0.0, -1.0};
  EXPECT_EQ(rng.Discrete(weights), weights.size());
}

TEST(RngTest, DiscreteNegativeWeightsIgnored) {
  Rng rng(41);
  const std::vector<double> weights = {-5.0, 2.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Discrete(weights), 1u);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(47);
  for (uint32_t k : {1u, 5u, 20u}) {
    auto sample = rng.SampleWithoutReplacement(20, k);
    ASSERT_EQ(sample.size(), k);
    std::sort(sample.begin(), sample.end());
    EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
    for (uint32_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementUniform) {
  Rng rng(53);
  std::vector<int> counts(6, 0);
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    for (uint32_t s : rng.SampleWithoutReplacement(6, 2)) ++counts[s];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 2.0 / 6.0, 0.02);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(61);
  Rng child = a.Fork();
  // The child stream should not just replay the parent.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitConsumesExactlyOneParentDraw) {
  Rng a(71);
  Rng b(71);
  (void)b.NextUint64();  // Account for the single draw Split consumes.
  (void)a.Split(5);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, FromStreamKeyIsPureFunction) {
  Rng s1 = Rng::FromStreamKey(0xabcdef, 7);
  Rng s2 = Rng::FromStreamKey(0xabcdef, 7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(s1.NextUint64(), s2.NextUint64());
  }
  Rng other = Rng::FromStreamKey(0xabcdef, 8);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (Rng::FromStreamKey(0xabcdef, 7).NextUint64() ==
        other.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitStreamsHaveDistinctStates) {
  // The first SplitMix64 output is a bijection of its seed, so sibling
  // streams can only collide if the mixed seeds collide.
  Rng parent(79);
  const uint64_t base = parent.NextUint64();
  std::set<uint64_t> firsts;
  for (uint64_t id = 0; id < 4096; ++id) {
    firsts.insert(Rng::FromStreamKey(base, id).NextUint64());
  }
  EXPECT_EQ(firsts.size(), 4096u);
}

TEST(RngTest, SplitStreamsUniformSmoke) {
  // Mean of the first uniform across many sibling streams: an inter-stream
  // bias would show up here even though each stream is fine in isolation.
  Rng parent(83);
  const uint64_t base = parent.NextUint64();
  double sum = 0.0;
  const int streams = 4000;
  for (int id = 0; id < streams; ++id) {
    sum += Rng::FromStreamKey(base, static_cast<uint64_t>(id)).Uniform();
  }
  // Stddev of the mean is ~1/sqrt(12*4000) ~ 0.0046; 5 sigma.
  EXPECT_NEAR(sum / streams, 0.5, 0.023);
}

TEST(RngTest, AdjacentSplitStreamsUncorrelated) {
  Rng parent(89);
  const uint64_t base = parent.NextUint64();
  // Pearson correlation between the uniform sequences of adjacent sibling
  // streams (the worst case for counter-derived streams).
  const int n = 2000;
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (int id = 0; id < n; ++id) {
    Rng lhs = Rng::FromStreamKey(base, 2 * static_cast<uint64_t>(id));
    Rng rhs = Rng::FromStreamKey(base, 2 * static_cast<uint64_t>(id) + 1);
    const double x = lhs.Uniform();
    const double y = rhs.Uniform();
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  EXPECT_LT(std::abs(cov / std::sqrt(vx * vy)), 0.08);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.Next(), first);
  EXPECT_NE(sm.Next(), first);
}

}  // namespace
}  // namespace privim
