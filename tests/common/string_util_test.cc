#include "common/string_util.h"

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(SplitTest, BasicAndEmptyPieces) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Split("", ','), std::vector<std::string>{});
  EXPECT_EQ(Split(",,", ','), std::vector<std::string>{});
  EXPECT_EQ(Split("solo", ','), std::vector<std::string>{"solo"});
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(Join(pieces, "-"), "x-y-z");
  EXPECT_EQ(Split(Join(pieces, ","), ','), pieces);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", "abc"), "abc");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string big(500, 'x');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\na b\r\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("privim", "priv"));
  EXPECT_TRUE(StartsWith("privim", ""));
  EXPECT_FALSE(StartsWith("priv", "privim"));
  EXPECT_FALSE(StartsWith("privim", "rivi"));
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.005, 1), "-1.0");
}

}  // namespace
}  // namespace privim
