// Properties of the RDP -> (epsilon, delta) conversion (Theorem 1) in
// isolation: monotonicities, limits, and the alpha trade-off the grid
// search exploits.

#include <cmath>

#include <gtest/gtest.h>

#include "dp/rdp_accountant.h"

namespace privim {
namespace {

TEST(ConversionTest, MonotoneIncreasingInGamma) {
  for (double alpha : {2.0, 8.0, 64.0}) {
    double prev = RdpToEpsilon(alpha, 0.01, 1e-5);
    for (double gamma : {0.1, 1.0, 10.0}) {
      const double eps = RdpToEpsilon(alpha, gamma, 1e-5);
      EXPECT_GT(eps, prev);
      prev = eps;
    }
  }
}

TEST(ConversionTest, MonotoneDecreasingInDelta) {
  for (double alpha : {2.0, 16.0}) {
    EXPECT_GT(RdpToEpsilon(alpha, 1.0, 1e-9),
              RdpToEpsilon(alpha, 1.0, 1e-3));
  }
}

TEST(ConversionTest, DeltaPenaltyVanishesAtLargeAlpha) {
  // The delta-dependent term scales with 1/(alpha-1): at huge alpha the
  // conversion approaches gamma itself.
  const double eps = RdpToEpsilon(1e6, 2.0, 1e-5);
  EXPECT_NEAR(eps, 2.0, 1e-3);
}

TEST(ConversionTest, SmallAlphaPaysLargeDeltaPenalty) {
  // At alpha close to 1 the -log(delta)/(alpha-1) term dominates.
  EXPECT_GT(RdpToEpsilon(1.1, 0.01, 1e-5), 50.0);
}

TEST(ConversionTest, GridSearchBeatsAnyFixedAlpha) {
  // The accountant's Epsilon() minimizes over the alpha grid, so it can
  // never exceed the conversion at any single grid alpha.
  DpSgdSpec spec;
  spec.max_occurrences = 6;
  spec.container_size = 300;
  spec.batch_size = 16;
  spec.iterations = 60;
  spec.clip_bound = 1.0;
  RdpAccountant acc = std::move(RdpAccountant::Create(spec)).ValueOrDie();
  const double sigma = 2.0, delta = 1e-5;
  const double best = *acc.Epsilon(sigma, delta);
  for (double alpha : {2.0, 8.0, 32.0, 128.0}) {
    const double gamma = acc.GammaPerIteration(alpha, sigma);
    EXPECT_LE(best, RdpToEpsilon(alpha, gamma * 60.0, delta) + 1e-9);
  }
}

TEST(ConversionTest, OptimalAlphaShiftsWithBudget) {
  // Tight budgets (small epsilon targets) favor moderate alphas; verify
  // the minimizing alpha is interior to the grid for a typical spec,
  // i.e. neither endpoint wins — otherwise the grid would be too narrow.
  DpSgdSpec spec;
  spec.max_occurrences = 6;
  spec.container_size = 300;
  spec.batch_size = 16;
  spec.iterations = 60;
  spec.clip_bound = 1.0;
  RdpAccountant acc = std::move(RdpAccountant::Create(spec)).ValueOrDie();
  const double sigma = 2.0, delta = 1e-5;
  const auto& grid = RdpAccountant::AlphaGrid();
  double best = 1e300;
  size_t best_idx = 0;
  for (size_t i = 0; i < grid.size(); ++i) {
    const double eps = RdpToEpsilon(
        grid[i], acc.GammaPerIteration(grid[i], sigma) * 60.0, delta);
    if (eps < best) {
      best = eps;
      best_idx = i;
    }
  }
  EXPECT_GT(best_idx, 0u);
  EXPECT_LT(best_idx, grid.size() - 1);
}

}  // namespace
}  // namespace privim
