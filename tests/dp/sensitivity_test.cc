#include "dp/sensitivity.h"

#include <limits>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(OccurrenceBoundTest, MatchesLemma1ClosedForm) {
  // N_g = (theta^{r+1} - 1) / (theta - 1).
  EXPECT_EQ(OccurrenceBoundNaive(10, 3), 1111u);  // 1+10+100+1000.
  EXPECT_EQ(OccurrenceBoundNaive(10, 2), 111u);
  EXPECT_EQ(OccurrenceBoundNaive(2, 3), 15u);
  EXPECT_EQ(OccurrenceBoundNaive(5, 1), 6u);
}

TEST(OccurrenceBoundTest, RZeroIsOne) {
  EXPECT_EQ(OccurrenceBoundNaive(10, 0), 1u);
  EXPECT_EQ(OccurrenceBoundNaive(1, 0), 1u);
}

TEST(OccurrenceBoundTest, ThetaOneIsLinear) {
  // Geometric series degenerates to r+1.
  EXPECT_EQ(OccurrenceBoundNaive(1, 5), 6u);
}

TEST(OccurrenceBoundTest, GrowsExponentiallyInLayers) {
  size_t prev = OccurrenceBoundNaive(10, 1);
  for (size_t r = 2; r <= 5; ++r) {
    const size_t cur = OccurrenceBoundNaive(10, r);
    EXPECT_GT(cur, 9 * prev);  // Roughly * theta each layer.
    prev = cur;
  }
}

TEST(OccurrenceBoundTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(OccurrenceBoundNaive(1000, 100),
            std::numeric_limits<size_t>::max());
}

TEST(NodeSensitivityTest, Lemma2Product) {
  EXPECT_DOUBLE_EQ(NodeSensitivity(1.0, 1111), 1111.0);
  EXPECT_DOUBLE_EQ(NodeSensitivity(0.5, 6), 3.0);
  EXPECT_DOUBLE_EQ(NodeSensitivity(2.0, 1), 2.0);
}

}  // namespace
}  // namespace privim
