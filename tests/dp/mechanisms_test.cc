#include "dp/mechanisms.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace privim {
namespace {

TEST(GaussianMechanismTest, ZeroStddevIsNoOp) {
  std::vector<float> data = {1.0f, 2.0f, 3.0f};
  Rng rng(1);
  AddGaussianNoise(data, 0.0, rng);
  EXPECT_FLOAT_EQ(data[0], 1.0f);
  EXPECT_FLOAT_EQ(data[1], 2.0f);
  EXPECT_FLOAT_EQ(data[2], 3.0f);
}

TEST(GaussianMechanismTest, NoiseHasRequestedScale) {
  const size_t n = 100000;
  std::vector<float> data(n, 0.0f);
  Rng rng(2);
  AddGaussianNoise(data, 2.5, rng);
  double sum = 0.0, sumsq = 0.0;
  for (float x : data) {
    sum += x;
    sumsq += static_cast<double>(x) * x;
  }
  const double mean = sum / n;
  const double stddev = std::sqrt(sumsq / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(stddev, 2.5, 0.05);
}

TEST(GaussianMechanismTest, CoordinatesIndependent) {
  // Empirical correlation between adjacent coordinates should vanish.
  const size_t n = 50000;
  std::vector<float> data(2 * n, 0.0f);
  Rng rng(3);
  AddGaussianNoise(data, 1.0, rng);
  double corr = 0.0;
  for (size_t i = 0; i < n; ++i) {
    corr += static_cast<double>(data[2 * i]) * data[2 * i + 1];
  }
  EXPECT_NEAR(corr / n, 0.0, 0.03);
}

TEST(SmlMechanismTest, ZeroScaleIsNoOp) {
  std::vector<float> data = {5.0f};
  Rng rng(4);
  AddSymmetricMultivariateLaplaceNoise(data, 0.0, rng);
  EXPECT_FLOAT_EQ(data[0], 5.0f);
}

TEST(SmlMechanismTest, VarianceMatchesScaleSquared) {
  // X = sqrt(W) Z, W~Exp(1): Var = E[W] scale^2 = scale^2.
  const size_t trials = 40000;
  Rng rng(5);
  double sumsq = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    std::vector<float> data(1, 0.0f);
    AddSymmetricMultivariateLaplaceNoise(data, 1.5, rng);
    sumsq += static_cast<double>(data[0]) * data[0];
  }
  EXPECT_NEAR(sumsq / trials, 1.5 * 1.5, 0.12);
}

TEST(SmlMechanismTest, HeavierTailsThanGaussian) {
  // Excess kurtosis of SML is positive (it is a Laplace-type law), while
  // the Gaussian's is 0. Estimate fourth moments.
  const size_t trials = 60000;
  Rng rng(6);
  double sml_m4 = 0.0, sml_m2 = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    std::vector<float> d(1, 0.0f);
    AddSymmetricMultivariateLaplaceNoise(d, 1.0, rng);
    const double x = d[0];
    sml_m2 += x * x;
    sml_m4 += x * x * x * x;
  }
  sml_m2 /= trials;
  sml_m4 /= trials;
  const double kurtosis = sml_m4 / (sml_m2 * sml_m2);
  EXPECT_GT(kurtosis, 4.0);  // Gaussian would be ~3.
}

TEST(LaplaceMechanismTest, ScaleMatchesMeanAbsolute) {
  const size_t n = 80000;
  std::vector<float> data(n, 0.0f);
  Rng rng(7);
  AddLaplaceNoise(data, 2.0, rng);
  double abs_sum = 0.0;
  for (float x : data) abs_sum += std::abs(x);
  EXPECT_NEAR(abs_sum / n, 2.0, 0.05);
}

TEST(MechanismsTest, DeterministicGivenSeed) {
  std::vector<float> a(10, 0.0f), b(10, 0.0f);
  Rng ra(42), rb(42);
  AddGaussianNoise(a, 1.0, ra);
  AddGaussianNoise(b, 1.0, rb);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace privim
