// Property-style tests of the RDP accountant beyond the hand-computed
// cases: composition linearity, subsampling amplification, limits, and
// internal consistency of calibration across the whole (N_g, m, B, T)
// grid the benches exercise.

#include <cmath>

#include <gtest/gtest.h>

#include "dp/rdp_accountant.h"

namespace privim {
namespace {

struct GridCase {
  size_t ng;
  size_t m;
  size_t b;
  size_t t;
};

class AccountantGridTest : public ::testing::TestWithParam<GridCase> {
 protected:
  RdpAccountant Make() const {
    const GridCase& c = GetParam();
    DpSgdSpec spec;
    spec.max_occurrences = c.ng;
    spec.container_size = c.m;
    spec.batch_size = c.b;
    spec.iterations = c.t;
    spec.clip_bound = 1.0;
    return std::move(RdpAccountant::Create(spec)).ValueOrDie();
  }
};

TEST_P(AccountantGridTest, GammaPositiveAndFinite) {
  RdpAccountant acc = Make();
  for (double alpha : {1.5, 2.0, 8.0, 64.0}) {
    for (double sigma : {0.5, 1.0, 4.0}) {
      const double gamma = acc.GammaPerIteration(alpha, sigma);
      EXPECT_GT(gamma, 0.0);
      EXPECT_TRUE(std::isfinite(gamma));
    }
  }
}

TEST_P(AccountantGridTest, EpsilonStrictlyDecreasingInSigma) {
  RdpAccountant acc = Make();
  double prev = *acc.Epsilon(0.3, 1e-5);
  for (double sigma : {0.6, 1.2, 2.4, 4.8}) {
    const double cur = *acc.Epsilon(sigma, 1e-5);
    EXPECT_LT(cur, prev) << "sigma " << sigma;
    prev = cur;
  }
}

TEST_P(AccountantGridTest, EpsilonDecreasingInDelta) {
  RdpAccountant acc = Make();
  EXPECT_GT(*acc.Epsilon(2.0, 1e-8), *acc.Epsilon(2.0, 1e-4));
}

TEST_P(AccountantGridTest, CalibrationInvertsEpsilon) {
  RdpAccountant acc = Make();
  for (double target : {1.0, 3.0, 6.0}) {
    const double sigma =
        std::move(acc.CalibrateSigma({target, 1e-5})).ValueOrDie();
    EXPECT_LE(*acc.Epsilon(sigma, 1e-5), target + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AccountantGridTest,
    ::testing::Values(GridCase{1, 100, 8, 10},      // Minimal occurrences.
                      GridCase{6, 300, 16, 60},     // PrivIM* defaults.
                      GridCase{111, 250, 16, 60},   // HP regime.
                      GridCase{250, 250, 16, 60},   // Naive/EGN clamp.
                      GridCase{6, 300, 300, 60},    // Full batch.
                      GridCase{2, 1000, 4, 200}));  // Long, tiny batches.

TEST(AccountantCompositionTest, GammaComposesLinearlyInIterations) {
  // Definition 5: T iterations at gamma each compose to T*gamma; Epsilon
  // must therefore grow sublinearly-to-linearly with T but exactly match
  // an accountant whose gamma is pre-multiplied. Verify via the conversion
  // identity: eps(T) computed internally equals min over alpha of
  // RdpToEpsilon(alpha, T * gamma(alpha)).
  DpSgdSpec spec;
  spec.max_occurrences = 6;
  spec.container_size = 300;
  spec.batch_size = 16;
  spec.iterations = 40;
  spec.clip_bound = 1.0;
  RdpAccountant acc = std::move(RdpAccountant::Create(spec)).ValueOrDie();
  const double sigma = 2.0, delta = 1e-5;
  double manual = 1e300;
  for (double alpha : RdpAccountant::AlphaGrid()) {
    const double gamma = acc.GammaPerIteration(alpha, sigma);
    manual = std::min(manual, RdpToEpsilon(alpha, gamma * 40.0, delta));
  }
  EXPECT_NEAR(*acc.Epsilon(sigma, delta), manual, 1e-12);
}

TEST(AccountantAmplificationTest, SmallerSamplingFractionHelps) {
  // Subsampling amplification: with N_g fixed, a larger container (smaller
  // N_g/m) yields smaller epsilon at the same sigma.
  DpSgdSpec dense;
  dense.max_occurrences = 6;
  dense.container_size = 30;
  dense.batch_size = 8;
  dense.iterations = 50;
  dense.clip_bound = 1.0;
  DpSgdSpec sparse = dense;
  sparse.container_size = 3000;
  RdpAccountant acc_dense =
      std::move(RdpAccountant::Create(dense)).ValueOrDie();
  RdpAccountant acc_sparse =
      std::move(RdpAccountant::Create(sparse)).ValueOrDie();
  EXPECT_LT(*acc_sparse.Epsilon(1.0, 1e-5), *acc_dense.Epsilon(1.0, 1e-5));
}

TEST(AccountantLimitTest, HugeSigmaDrivesEpsilonTowardZero) {
  DpSgdSpec spec;
  spec.max_occurrences = 6;
  spec.container_size = 300;
  spec.batch_size = 16;
  spec.iterations = 60;
  spec.clip_bound = 1.0;
  RdpAccountant acc = std::move(RdpAccountant::Create(spec)).ValueOrDie();
  EXPECT_LT(*acc.Epsilon(1e4, 1e-5), 0.05);
}

TEST(AccountantLimitTest, TinySigmaExplodes) {
  DpSgdSpec spec;
  spec.max_occurrences = 6;
  spec.container_size = 300;
  spec.batch_size = 16;
  spec.iterations = 60;
  spec.clip_bound = 1.0;
  RdpAccountant acc = std::move(RdpAccountant::Create(spec)).ValueOrDie();
  EXPECT_GT(*acc.Epsilon(1e-3, 1e-5), 100.0);
}

TEST(AccountantScaleInvarianceTest, ClipBoundDoesNotEnterGamma) {
  // gamma depends on the *ratio* of shift to noise; C cancels because the
  // noise stddev is sigma * C * N_g. Two accountants differing only in C
  // must agree.
  DpSgdSpec a;
  a.max_occurrences = 6;
  a.container_size = 300;
  a.batch_size = 16;
  a.iterations = 60;
  a.clip_bound = 0.1;
  DpSgdSpec b = a;
  b.clip_bound = 10.0;
  RdpAccountant acc_a = std::move(RdpAccountant::Create(a)).ValueOrDie();
  RdpAccountant acc_b = std::move(RdpAccountant::Create(b)).ValueOrDie();
  EXPECT_DOUBLE_EQ(*acc_a.Epsilon(2.0, 1e-5), *acc_b.Epsilon(2.0, 1e-5));
}

}  // namespace
}  // namespace privim
