#include "dp/rdp_accountant.h"

#include <cmath>

#include <gtest/gtest.h>

namespace privim {
namespace {

DpSgdSpec BasicSpec() {
  DpSgdSpec spec;
  spec.max_occurrences = 6;
  spec.container_size = 300;
  spec.batch_size = 16;
  spec.iterations = 50;
  spec.clip_bound = 1.0;
  return spec;
}

TEST(RdpToEpsilonTest, MatchesTheorem1Formula) {
  const double alpha = 8.0, gamma = 0.5, delta = 1e-5;
  const double expected = gamma + std::log((alpha - 1.0) / alpha) -
                          (std::log(delta) + std::log(alpha)) /
                              (alpha - 1.0);
  EXPECT_DOUBLE_EQ(RdpToEpsilon(alpha, gamma, delta), expected);
}

TEST(RdpAccountantTest, CreateValidatesSpec) {
  DpSgdSpec spec = BasicSpec();
  EXPECT_TRUE(RdpAccountant::Create(spec).ok());

  spec = BasicSpec();
  spec.max_occurrences = 0;
  EXPECT_FALSE(RdpAccountant::Create(spec).ok());

  spec = BasicSpec();
  spec.max_occurrences = 500;  // > m.
  EXPECT_FALSE(RdpAccountant::Create(spec).ok());

  spec = BasicSpec();
  spec.batch_size = 400;  // > m.
  EXPECT_FALSE(RdpAccountant::Create(spec).ok());

  spec = BasicSpec();
  spec.clip_bound = 0.0;
  EXPECT_FALSE(RdpAccountant::Create(spec).ok());
}

TEST(RdpAccountantTest, GammaMatchesHandComputedMixture) {
  // Tiny case where the Theorem 3 sum can be evaluated by hand:
  // N_g = 1, m = 2, B = 1 => rho ~ Bernoulli(1/2);
  // gamma = log(1/2 + 1/2 exp(alpha(alpha-1)/(2 sigma^2))) / (alpha-1).
  DpSgdSpec spec;
  spec.max_occurrences = 1;
  spec.container_size = 2;
  spec.batch_size = 1;
  spec.iterations = 1;
  spec.clip_bound = 1.0;
  RdpAccountant acc = std::move(RdpAccountant::Create(spec)).ValueOrDie();
  const double alpha = 4.0, sigma = 2.0;
  const double expected =
      std::log(0.5 + 0.5 * std::exp(alpha * (alpha - 1.0) /
                                    (2.0 * sigma * sigma))) /
      (alpha - 1.0);
  EXPECT_NEAR(acc.GammaPerIteration(alpha, sigma), expected, 1e-12);
}

TEST(RdpAccountantTest, FullParticipationReducesToGaussianRdp) {
  // N_g = m and B = m: every batch contains all occurrences (i = B with
  // probability 1), so gamma = alpha * B^2 / (2 N_g^2 sigma^2).
  DpSgdSpec spec;
  spec.max_occurrences = 8;
  spec.container_size = 8;
  spec.batch_size = 8;
  spec.iterations = 1;
  spec.clip_bound = 1.0;
  RdpAccountant acc = std::move(RdpAccountant::Create(spec)).ValueOrDie();
  const double alpha = 6.0, sigma = 3.0;
  const double expected = alpha * 64.0 / (2.0 * 64.0 * sigma * sigma);
  EXPECT_NEAR(acc.GammaPerIteration(alpha, sigma), expected, 1e-9);
}

TEST(RdpAccountantTest, GammaDecreasesInSigma) {
  RdpAccountant acc =
      std::move(RdpAccountant::Create(BasicSpec())).ValueOrDie();
  double prev = acc.GammaPerIteration(8.0, 0.5);
  for (double sigma : {1.0, 2.0, 4.0, 8.0}) {
    const double cur = acc.GammaPerIteration(8.0, sigma);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(RdpAccountantTest, GammaIncreasesInAlpha) {
  RdpAccountant acc =
      std::move(RdpAccountant::Create(BasicSpec())).ValueOrDie();
  double prev = 0.0;
  for (double alpha : {1.5, 2.0, 4.0, 8.0, 16.0}) {
    const double cur = alpha * acc.GammaPerIteration(alpha, 2.0);
    // alpha*gamma is the Renyi-divergence scale; it should grow.
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(RdpAccountantTest, EpsilonMonotoneInSigmaAndIterations) {
  DpSgdSpec spec = BasicSpec();
  RdpAccountant acc = std::move(RdpAccountant::Create(spec)).ValueOrDie();
  const double delta = 1e-5;
  EXPECT_GT(*acc.Epsilon(1.0, delta), *acc.Epsilon(2.0, delta));
  EXPECT_GT(*acc.Epsilon(2.0, delta), *acc.Epsilon(8.0, delta));

  DpSgdSpec more_iters = spec;
  more_iters.iterations = 4 * spec.iterations;
  RdpAccountant acc4 =
      std::move(RdpAccountant::Create(more_iters)).ValueOrDie();
  EXPECT_GT(*acc4.Epsilon(2.0, delta), *acc.Epsilon(2.0, delta));
}

TEST(RdpAccountantTest, SmallerOccurrenceBoundNeedsLessAbsoluteNoise) {
  // The heart of PrivIM*: reducing N_g reduces the *absolute* noise
  // stddev sigma * Delta_g = sigma * C * N_g required for a target
  // epsilon. (At equal sigma-multiplier the epsilons are not comparable,
  // because the multiplier is relative to Delta_g = C*N_g.)
  DpSgdSpec small = BasicSpec();
  small.max_occurrences = 4;
  DpSgdSpec large = BasicSpec();
  large.max_occurrences = 40;
  RdpAccountant acc_small =
      std::move(RdpAccountant::Create(small)).ValueOrDie();
  RdpAccountant acc_large =
      std::move(RdpAccountant::Create(large)).ValueOrDie();
  const PrivacyBudget budget{2.0, 1e-5};
  const double noise_small =
      std::move(acc_small.CalibrateSigma(budget)).ValueOrDie() * 4.0;
  const double noise_large =
      std::move(acc_large.CalibrateSigma(budget)).ValueOrDie() * 40.0;
  EXPECT_LT(noise_small, noise_large);
}

class CalibrationTest : public ::testing::TestWithParam<double> {};

TEST_P(CalibrationTest, CalibratedSigmaMeetsTargetTightly) {
  const double target_eps = GetParam();
  RdpAccountant acc =
      std::move(RdpAccountant::Create(BasicSpec())).ValueOrDie();
  PrivacyBudget budget{target_eps, 1e-5};
  const double sigma = std::move(acc.CalibrateSigma(budget)).ValueOrDie();
  const double achieved = *acc.Epsilon(sigma, budget.delta);
  EXPECT_LE(achieved, target_eps + 1e-6);
  // Tight: 1% less noise would overshoot (unless we hit the minimum
  // bracket where even tiny noise suffices).
  if (sigma > 2e-3) {
    EXPECT_GT(*acc.Epsilon(sigma * 0.95, budget.delta), target_eps * 0.99);
  }
}

INSTANTIATE_TEST_SUITE_P(EpsilonSweep, CalibrationTest,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0, 5.0, 6.0));

TEST(CalibrationTest, RejectsInvalidBudgets) {
  RdpAccountant acc =
      std::move(RdpAccountant::Create(BasicSpec())).ValueOrDie();
  EXPECT_FALSE(acc.CalibrateSigma({0.0, 1e-5}).ok());
  EXPECT_FALSE(acc.CalibrateSigma({-1.0, 1e-5}).ok());
  EXPECT_FALSE(acc.CalibrateSigma({1.0, 0.0}).ok());
  EXPECT_FALSE(acc.CalibrateSigma({1.0, 1.0}).ok());
}

TEST(CalibrationTest, SmallerEpsilonNeedsMoreNoise) {
  RdpAccountant acc =
      std::move(RdpAccountant::Create(BasicSpec())).ValueOrDie();
  double prev_sigma = 0.0;
  for (double eps : {6.0, 4.0, 2.0, 1.0, 0.5}) {
    const double sigma =
        std::move(acc.CalibrateSigma({eps, 1e-5})).ValueOrDie();
    EXPECT_GT(sigma, prev_sigma);
    prev_sigma = sigma;
  }
}

TEST(CalibrationTest, EgnWorstCaseBoundIsMuchNoisier) {
  // EGN (N_g = m) must need a far larger sigma than PrivIM* (N_g = M) for
  // the same epsilon — the paper's core claim about why EGN fails.
  DpSgdSpec star = BasicSpec();  // N_g = 6.
  DpSgdSpec egn = BasicSpec();
  egn.max_occurrences = egn.container_size;  // N_g = m = 300.
  RdpAccountant acc_star =
      std::move(RdpAccountant::Create(star)).ValueOrDie();
  RdpAccountant acc_egn = std::move(RdpAccountant::Create(egn)).ValueOrDie();
  const double s_star =
      std::move(acc_star.CalibrateSigma({2.0, 1e-5})).ValueOrDie();
  const double s_egn =
      std::move(acc_egn.CalibrateSigma({2.0, 1e-5})).ValueOrDie();
  // Compare the actual noise scale sigma * N_g (Delta = C N_g).
  EXPECT_GT(s_egn * 300.0, 5.0 * s_star * 6.0);
}

TEST(AlphaGridTest, CoversLowAndHighOrders) {
  const auto& grid = RdpAccountant::AlphaGrid();
  EXPECT_GT(grid.size(), 20u);
  EXPECT_LT(grid.front(), 2.0);
  EXPECT_GE(grid.back(), 256.0);
  for (double a : grid) EXPECT_GT(a, 1.0);
}

// Regression: Epsilon used to return +inf silently when every alpha in the
// grid produced a non-finite gamma (degenerate noise multiplier), and the
// +inf then flowed into reports as if it were a real privacy guarantee. It
// must be a loud FailedPrecondition instead.
TEST(RdpAccountantTest, DegenerateSigmaFailsLoudly) {
  DpSgdSpec spec;
  spec.max_occurrences = 4;
  spec.container_size = 4;  // p = N_g/m = 1: every node in every batch.
  spec.batch_size = 4;
  spec.iterations = 10;
  spec.clip_bound = 1.0;
  RdpAccountant acc = std::move(RdpAccountant::Create(spec)).ValueOrDie();

  const Result<double> eps = acc.Epsilon(1e-160, 1e-5);
  ASSERT_FALSE(eps.ok());
  EXPECT_EQ(eps.status().code(), StatusCode::kFailedPrecondition);

  const Result<std::vector<double>> ledger = acc.EpsilonLedger(1e-160, 1e-5);
  ASSERT_FALSE(ledger.ok());
  EXPECT_EQ(ledger.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RdpAccountantTest, CalibrateSigmaFailsLoudlyOnUnreachableTarget) {
  // The Theorem 1 conversion has a floor of roughly
  // -(log delta + log alpha)/(alpha - 1) even as sigma -> inf, so a target
  // epsilon below that floor can never bracket. The old code would have
  // looped on +inf comparisons; now the bracket expansion gives up with an
  // explicit error.
  RdpAccountant acc =
      std::move(RdpAccountant::Create(BasicSpec())).ValueOrDie();
  const Result<double> sigma = acc.CalibrateSigma({1e-3, 1e-5});
  ASSERT_FALSE(sigma.ok());
  EXPECT_EQ(sigma.status().code(), StatusCode::kInternal);
}

TEST(RdpAccountantTest, EpsilonLedgerIsMonotoneAndEndsAtEpsilon) {
  RdpAccountant acc =
      std::move(RdpAccountant::Create(BasicSpec())).ValueOrDie();
  const double sigma = 2.0, delta = 1e-5;
  const std::vector<double> ledger =
      std::move(acc.EpsilonLedger(sigma, delta)).ValueOrDie();
  ASSERT_EQ(ledger.size(), BasicSpec().iterations);
  double prev = 0.0;
  for (double eps : ledger) {
    ASSERT_TRUE(std::isfinite(eps));
    EXPECT_GE(eps, prev);  // Spending only accumulates.
    prev = eps;
  }
  // Entry T-1 is the full-run epsilon, and the run costs strictly more
  // than its first iteration.
  EXPECT_DOUBLE_EQ(ledger.back(), *acc.Epsilon(sigma, delta));
  EXPECT_LT(ledger.front(), ledger.back());
}

}  // namespace
}  // namespace privim
