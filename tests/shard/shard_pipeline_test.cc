// The Pipeline facade: serial path bit-identical to RunMethod, sharded
// checkpoint/Resume with per-shard snapshot subdirectories, serving mode,
// eager in-CSR materialization at Build time, and the concurrent-reader
// proof that shard tasks never race on Graph::EnsureInCsr() (run under
// TSan via the sanitizer ctest label).

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/binary_io.h"
#include "ckpt/checkpoint.h"
#include "core/experiment.h"
#include "core/privim.h"
#include "shard/pipeline.h"
#include "shard/shard_plan.h"

namespace privim {
namespace {

constexpr uint64_t kSeed = 77;
constexpr size_t kSeedCount = 8;

class ShardPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    instance_ = new DatasetInstance(
        std::move(PrepareDataset(DatasetId::kEmail, /*seed=*/11,
                                 /*seed_count=*/kSeedCount,
                                 /*eval_steps=*/1, /*scale=*/0.5))
            .ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete instance_;
    instance_ = nullptr;
  }

  static PipelineConfig Config(size_t num_shards, size_t threads) {
    PipelineConfig config;
    config.method = MakeDefaultConfig(Method::kPrivImStar, 4.0,
                                      instance_->train_graph.num_nodes());
    config.method.train.iterations = 12;
    config.method.train.batch_size = 8;
    config.method.seed_count = kSeedCount;
    config.method.freq.subgraph_size = 15;
    config.method.rwr.subgraph_size = 15;
    config.method.runtime.num_threads = threads;
    config.seed = kSeed;
    config.shard.num_shards = num_shards;
    return config;
  }

  // Pipeline::Build takes graph ownership; tests hand it copies.
  static Result<Pipeline> BuildPipeline(PipelineConfig config) {
    return Pipeline::Build(Graph(instance_->train_graph),
                           Graph(instance_->eval_graph), std::move(config));
  }

  /// A copy of `g` rebuilt without its in-adjacency (the state an edge-list
  /// load with build_in_csr=false produces).
  static Graph WithoutInCsr(const Graph& g) {
    GraphBuilder builder(g.num_nodes());
    for (const Edge& e : g.Edges()) {
      PRIVIM_CHECK(builder.AddEdge(e.src, e.dst, e.weight).ok());
    }
    GraphBuildOptions options;
    options.build_in_csr = false;
    return std::move(builder.Build(options)).ValueOrDie();
  }

  static std::string ScenarioDir(const std::string& name) {
    const std::string dir =
        (std::filesystem::temp_directory_path() / ("privim_shard_" + name))
            .string();
    std::filesystem::remove_all(dir);
    return dir;
  }

  static DatasetInstance* instance_;
};

DatasetInstance* ShardPipelineTest::instance_ = nullptr;

TEST_F(ShardPipelineTest, SerialPathMatchesRunMethodBitForBit) {
  Pipeline pipeline =
      std::move(BuildPipeline(Config(/*num_shards=*/0, /*threads=*/2)))
          .ValueOrDie();
  PipelineRunResult via_facade = std::move(pipeline.Run()).ValueOrDie();
  EXPECT_FALSE(via_facade.sharded);
  ASSERT_NE(via_facade.model, nullptr);

  // The facade's contract: the serial path is RunMethod on the stream-0
  // Rng, nothing more.
  Rng rng = Rng::FromStreamKey(kSeed, 0);
  PrivImRunResult direct =
      std::move(RunMethod(instance_->train_graph, instance_->eval_graph,
                          Config(0, 2).method, rng))
          .ValueOrDie();
  EXPECT_EQ(via_facade.seeds, direct.seeds);
  EXPECT_EQ(via_facade.seed_scores, direct.seed_scores);
  EXPECT_EQ(via_facade.spread, direct.spread);
  EXPECT_EQ(via_facade.epsilon_spent, direct.epsilon_spent);
  EXPECT_EQ(via_facade.epsilon_ledger, direct.epsilon_ledger);
}

TEST_F(ShardPipelineTest, ShardedResumeReproducesRunWithPerShardSnapshots) {
  const std::string dir = ScenarioDir("resume");
  PipelineConfig config = Config(/*num_shards=*/2, /*threads=*/2);
  config.method.checkpoint.dir = dir;
  config.method.checkpoint.train_every = 5;

  Pipeline fresh = std::move(BuildPipeline(config)).ValueOrDie();
  PipelineRunResult first = std::move(fresh.Run()).ValueOrDie();
  EXPECT_TRUE(first.sharded);

  // Each shard checkpointed into its own independently-resumable subdir.
  for (const std::string shard : {"shard0", "shard1"}) {
    EXPECT_TRUE(FileExists(PipelineCheckpointPath(dir + "/" + shard)))
        << shard;
  }

  // Resume from the completed snapshots: bit-identical outcome.
  Pipeline resumed = std::move(BuildPipeline(config)).ValueOrDie();
  PipelineRunResult second = std::move(resumed.Resume()).ValueOrDie();
  EXPECT_EQ(second.seeds, first.seeds);
  EXPECT_EQ(second.seed_scores, first.seed_scores);
  EXPECT_EQ(second.spread, first.spread);
  EXPECT_EQ(second.epsilon_spent, first.epsilon_spent);
  EXPECT_EQ(second.epsilon_ledger, first.epsilon_ledger);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardPipelineTest, ResumeWithoutCheckpointDirIsRejected) {
  Pipeline pipeline =
      std::move(BuildPipeline(Config(/*num_shards=*/0, /*threads=*/1)))
          .ValueOrDie();
  auto result = pipeline.Resume();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("checkpoint.dir"),
            std::string::npos);
}

TEST_F(ShardPipelineTest, ServingPipelineOwnsInCsrGraphAndCannotRun) {
  Graph g = WithoutInCsr(instance_->eval_graph);
  ASSERT_FALSE(g.has_in_csr());
  Pipeline pipeline =
      std::move(Pipeline::BuildForServing(std::move(g))).ValueOrDie();
  // BuildForServing materialized the in-CSR before any worker threads can
  // exist — the serve driver never calls EnsureInCsr() itself.
  EXPECT_TRUE(pipeline.graph().has_in_csr());
  auto run = pipeline.Run();
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().ToString().find("serving"), std::string::npos);
}

TEST_F(ShardPipelineTest, BuildMaterializesInCsrEagerly) {
  Graph train = WithoutInCsr(instance_->train_graph);
  Graph eval = WithoutInCsr(instance_->eval_graph);
  ASSERT_FALSE(train.has_in_csr());
  Pipeline pipeline = std::move(Pipeline::Build(std::move(train),
                                                std::move(eval),
                                                Config(2, 1)))
                          .ValueOrDie();
  EXPECT_TRUE(pipeline.train_graph().has_in_csr());
  EXPECT_TRUE(pipeline.eval_graph().has_in_csr());
}

TEST_F(ShardPipelineTest, ShardGraphsSurviveConcurrentReaders) {
  // The satellite-3 invariant, proven under TSan: shard graphs come out of
  // the partitioner with their in-CSR already built, so per-shard tasks on
  // different threads only ever READ the graphs. Before the fix (lazy
  // EnsureInCsr inside the shard task) this test is a TSan data race.
  ShardPlanOptions options;
  options.num_shards = 4;
  ShardPlan plan =
      std::move(ShardPlan::Partition(instance_->train_graph, options))
          .ValueOrDie();
  std::vector<std::thread> readers;
  std::vector<uint64_t> sums(plan.num_shards(), 0);
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    readers.emplace_back([&plan, &sums, s] {
      const Graph& g = plan.graph(s);
      uint64_t sum = 0;
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        sum += g.InDegree(u) + g.OutDegree(u);
      }
      sums[s] = sum;
    });
  }
  for (std::thread& t : readers) t.join();
  uint64_t total = 0;
  for (const uint64_t s : sums) total += s;
  // Every intra arc contributes one out-degree and one in-degree.
  EXPECT_EQ(total, 2 * plan.intra_arcs());
}

TEST_F(ShardPipelineTest, BuildValidatesConfig) {
  PipelineConfig bad = Config(1, 1);
  bad.method.seed_count = 0;  // Invalid method config.
  EXPECT_FALSE(BuildPipeline(std::move(bad)).ok());

  PipelineConfig bad_flight = Config(2, 1);
  bad_flight.shard.overlap.max_in_flight = 0;
  auto result = BuildPipeline(std::move(bad_flight));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("max_in_flight"),
            std::string::npos);
}

TEST_F(ShardPipelineTest, TelemetryIsCollectedWhenRequested) {
  PipelineConfig config = Config(/*num_shards=*/2, /*threads=*/2);
  config.collect_telemetry = true;
  Pipeline pipeline = std::move(BuildPipeline(config)).ValueOrDie();
  ASSERT_TRUE(pipeline.Run().ok());
  // The sharded path publishes its shard.* instruments.
  const MetricsSnapshot snapshot = pipeline.Telemetry().metrics.Snapshot();
  ASSERT_EQ(snapshot.gauges.count("shard.count"), 1u);
  EXPECT_EQ(snapshot.gauges.at("shard.count"), 2.0);
  ASSERT_EQ(snapshot.timers.count("shard.extract"), 1u);
  EXPECT_EQ(snapshot.timers.at("shard.extract").calls, 2u);
}

}  // namespace
}  // namespace privim
