// ShardMerger unit contracts: single-shard identity (order preserved
// through ties), the (score desc, id asc) cross-shard ranking,
// disjointness enforcement, and parallel composition of RDP ledgers.

#include <vector>

#include <gtest/gtest.h>

#include "shard/shard_merger.h"

namespace privim {
namespace {

TEST(MergeSeedSetsTest, SingleShardIsIdentityEvenWithTies) {
  // All scores equal: a re-sort would reorder by id (7 < 9 < 42); the
  // identity merge must preserve the shard's own order verbatim.
  ShardSeedSet only;
  only.seeds = {42, 7, 9};
  only.scores = {1.0, 1.0, 1.0};
  MergedSeedSet merged =
      std::move(MergeSeedSets({only}, 2)).ValueOrDie();
  EXPECT_EQ(merged.seeds, (std::vector<NodeId>{42, 7}));
  EXPECT_EQ(merged.scores, (std::vector<double>{1.0, 1.0}));
}

TEST(MergeSeedSetsTest, RanksByScoreDescThenIdAsc) {
  ShardSeedSet a;
  a.seeds = {10, 30};
  a.scores = {0.5, 0.9};
  ShardSeedSet b;
  b.seeds = {20, 5};
  b.scores = {0.9, 0.1};
  // 0.9 ties between nodes 30 and 20 -> smaller id 20 first (the same
  // direction GreedySelect breaks equal gains).
  MergedSeedSet merged =
      std::move(MergeSeedSets({a, b}, 3)).ValueOrDie();
  EXPECT_EQ(merged.seeds, (std::vector<NodeId>{20, 30, 10}));
  EXPECT_EQ(merged.scores, (std::vector<double>{0.9, 0.9, 0.5}));
}

TEST(MergeSeedSetsTest, ResultIsIndependentOfShardOrder) {
  ShardSeedSet a;
  a.seeds = {1, 2};
  a.scores = {0.3, 0.8};
  ShardSeedSet b;
  b.seeds = {3, 4};
  b.scores = {0.6, 0.9};
  MergedSeedSet ab = std::move(MergeSeedSets({a, b}, 3)).ValueOrDie();
  MergedSeedSet ba = std::move(MergeSeedSets({b, a}, 3)).ValueOrDie();
  EXPECT_EQ(ab.seeds, ba.seeds);
  EXPECT_EQ(ab.scores, ba.scores);
}

TEST(MergeSeedSetsTest, RejectsDuplicatesAcrossShards) {
  ShardSeedSet a;
  a.seeds = {1, 2};
  a.scores = {0.3, 0.8};
  ShardSeedSet b;
  b.seeds = {2, 4};
  b.scores = {0.6, 0.9};
  auto merged = MergeSeedSets({a, b}, 2);
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().ToString().find("node-disjoint"),
            std::string::npos);
}

TEST(MergeSeedSetsTest, RejectsMalformedInput) {
  ShardSeedSet bad;
  bad.seeds = {1, 2};
  bad.scores = {0.3};
  EXPECT_FALSE(MergeSeedSets({bad}, 1).ok());

  ShardSeedSet small;
  small.seeds = {1};
  small.scores = {0.5};
  EXPECT_FALSE(MergeSeedSets({small}, 2).ok());  // Fewer than k total.
  EXPECT_FALSE(MergeSeedSets({small}, 0).ok());  // k = 0.
}

TEST(ComposeEpsilonLedgersTest, TakesMaxSpentAndEntrywiseMaxLedger) {
  MergedLedger merged = ComposeEpsilonLedgers(
      {1.5, 2.0}, {{0.5, 1.0, 1.5}, {0.8, 1.2, 2.0}});
  EXPECT_EQ(merged.epsilon_spent, 2.0);
  EXPECT_EQ(merged.ledger, (std::vector<double>{0.8, 1.2, 2.0}));
}

TEST(ComposeEpsilonLedgersTest, PadsShorterLedgersWithFinalValue) {
  // A shard that finished in fewer iterations holds its final cumulative
  // spend for the remaining entries.
  MergedLedger merged =
      ComposeEpsilonLedgers({1.0, 0.9}, {{1.0}, {0.3, 0.6, 0.9}});
  EXPECT_EQ(merged.ledger, (std::vector<double>{1.0, 1.0, 1.0}));
}

TEST(ComposeEpsilonLedgersTest, NonPrivateShardsContributeNothing) {
  MergedLedger merged =
      ComposeEpsilonLedgers({0.0, 1.0}, {{}, {0.5, 1.0}});
  EXPECT_EQ(merged.epsilon_spent, 1.0);
  EXPECT_EQ(merged.ledger, (std::vector<double>{0.5, 1.0}));

  MergedLedger empty = ComposeEpsilonLedgers({}, {});
  EXPECT_EQ(empty.epsilon_spent, 0.0);
  EXPECT_TRUE(empty.ledger.empty());
}

}  // namespace
}  // namespace privim
