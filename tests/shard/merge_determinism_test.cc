// The sharded pipeline's determinism contracts (ISSUE: merge-determinism
// suite): identical merged seeds + epsilon across repeats and thread
// counts at shards {1, 2, 4}, and seed-for-seed equality between
// shards=1 and the serial RunMethod path.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/privim.h"
#include "shard/shard_runner.h"

namespace privim {
namespace {

constexpr uint64_t kSeed = 202;
constexpr size_t kSeedCount = 8;

class MergeDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Full-size Email (1000 nodes, avg degree ~25): the 8-shard rung needs
    // per-shard graphs that are still samplable (~62 train nodes, ~1/8 of
    // the arcs each).
    instance_ = new DatasetInstance(
        std::move(PrepareDataset(DatasetId::kEmail, /*seed=*/11,
                                 /*seed_count=*/kSeedCount,
                                 /*eval_steps=*/1, /*scale=*/1.0))
            .ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete instance_;
    instance_ = nullptr;
  }

  static PrivImConfig Config(size_t threads) {
    PrivImConfig cfg = MakeDefaultConfig(
        Method::kPrivImStar, 4.0, instance_->train_graph.num_nodes());
    cfg.train.iterations = 12;
    cfg.train.batch_size = 8;
    cfg.seed_count = kSeedCount;
    // Shard-feasible subgraph size: an 8-shard node partition keeps ~1/8
    // of the arcs, and walks must still collect n distinct nodes inside
    // one shard (docs/sharding.md, "choosing n under sharding").
    cfg.freq.subgraph_size = 10;
    cfg.rwr.subgraph_size = 10;
    cfg.runtime.num_threads = threads;
    return cfg;
  }

  static Result<ShardedRunResult> RunSharded(size_t shards, size_t threads,
                                             bool overlap = true) {
    ShardRunOptions options;
    options.num_shards = shards;
    options.seed = kSeed;
    options.overlap.overlap = overlap;
    ShardRunner runner(instance_->train_graph, instance_->eval_graph,
                       Config(threads), options);
    return runner.Run();
  }

  static void ExpectIdentical(const ShardedRunResult& got,
                              const ShardedRunResult& want) {
    EXPECT_EQ(got.seeds, want.seeds);
    EXPECT_EQ(got.seed_scores, want.seed_scores);
    EXPECT_EQ(got.spread, want.spread);
    EXPECT_EQ(got.epsilon_spent, want.epsilon_spent);
    EXPECT_EQ(got.epsilon_ledger, want.epsilon_ledger);
    EXPECT_EQ(got.train_cut_arcs, want.train_cut_arcs);
    EXPECT_EQ(got.eval_cut_arcs, want.eval_cut_arcs);
  }

  static DatasetInstance* instance_;
};

DatasetInstance* MergeDeterminismTest::instance_ = nullptr;

TEST_F(MergeDeterminismTest, RepeatsAndThreadCountsAreBitIdentical) {
  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedRunResult baseline =
        std::move(RunSharded(shards, /*threads=*/1)).ValueOrDie();
    ASSERT_EQ(baseline.seeds.size(), kSeedCount);
    // Repeat at 1 thread, twice at 8 threads, and once with the overlap
    // scheduler disabled: scheduling must never leak into results.
    ShardedRunResult repeat =
        std::move(RunSharded(shards, /*threads=*/1)).ValueOrDie();
    ExpectIdentical(repeat, baseline);
    ShardedRunResult wide =
        std::move(RunSharded(shards, /*threads=*/8)).ValueOrDie();
    ExpectIdentical(wide, baseline);
    ShardedRunResult wide2 =
        std::move(RunSharded(shards, /*threads=*/8)).ValueOrDie();
    ExpectIdentical(wide2, baseline);
    ShardedRunResult serialized =
        std::move(RunSharded(shards, /*threads=*/8, /*overlap=*/false))
            .ValueOrDie();
    ExpectIdentical(serialized, baseline);
  }
}

TEST_F(MergeDeterminismTest, OneShardMatchesSerialRunMethodBitForBit) {
  // The shards=1 contract: partition -> run -> merge with one shard is
  // the identity transform over the serial pipeline, on the SAME Rng
  // stream (FromStreamKey(seed, 0)).
  ShardedRunResult sharded =
      std::move(RunSharded(/*shards=*/1, /*threads=*/4)).ValueOrDie();

  Rng rng = Rng::FromStreamKey(kSeed, 0);
  PrivImRunResult serial =
      std::move(RunMethod(instance_->train_graph, instance_->eval_graph,
                          Config(/*threads=*/4), rng))
          .ValueOrDie();
  EXPECT_EQ(sharded.seeds, serial.seeds);
  EXPECT_EQ(sharded.seed_scores, serial.seed_scores);
  EXPECT_EQ(sharded.spread, serial.spread);
  EXPECT_EQ(sharded.epsilon_spent, serial.epsilon_spent);
  EXPECT_EQ(sharded.epsilon_ledger, serial.epsilon_ledger);
  EXPECT_EQ(sharded.train_cut_arcs, 0u);
  EXPECT_EQ(sharded.eval_cut_arcs, 0u);
}

TEST_F(MergeDeterminismTest, EpsilonComposesAsMaxOverShards) {
  ShardedRunResult sharded =
      std::move(RunSharded(/*shards=*/4, /*threads=*/4)).ValueOrDie();
  ASSERT_EQ(sharded.shards.size(), 4u);
  double max_eps = 0.0;
  for (const ShardOutcome& shard : sharded.shards) {
    max_eps = std::max(max_eps, shard.run.epsilon_spent);
    EXPECT_GT(shard.run.epsilon_spent, 0.0);
  }
  EXPECT_EQ(sharded.epsilon_spent, max_eps);
  ASSERT_FALSE(sharded.epsilon_ledger.empty());
  // The composed ledger ends at the composed spend and never decreases.
  EXPECT_EQ(sharded.epsilon_ledger.back(), max_eps);
  for (size_t i = 1; i < sharded.epsilon_ledger.size(); ++i) {
    EXPECT_GE(sharded.epsilon_ledger[i], sharded.epsilon_ledger[i - 1]);
  }
}

TEST_F(MergeDeterminismTest, MergedSeedsAreShardSeedsRankedByScore) {
  ShardedRunResult sharded =
      std::move(RunSharded(/*shards=*/2, /*threads=*/2)).ValueOrDie();
  ASSERT_EQ(sharded.seeds.size(), kSeedCount);
  // Every merged seed came from exactly one shard's contribution, and the
  // merged scores are non-increasing.
  for (size_t i = 0; i < sharded.seeds.size(); ++i) {
    bool found = false;
    for (const ShardOutcome& shard : sharded.shards) {
      for (size_t j = 0; j < shard.seeds.size(); ++j) {
        if (shard.seeds[j] == sharded.seeds[i] &&
            shard.run.seed_scores[j] == sharded.seed_scores[i]) {
          found = true;
        }
      }
    }
    EXPECT_TRUE(found) << "seed " << sharded.seeds[i];
    if (i > 0) EXPECT_GE(sharded.seed_scores[i - 1], sharded.seed_scores[i]);
  }
}

TEST_F(MergeDeterminismTest, RejectsMoreSeedsThanShardEvalNodes) {
  // 64 shards of a ~150-node eval graph leaves some shard with fewer than
  // k nodes; the runner must fail fast with the field-path message.
  ShardRunOptions options;
  options.num_shards = 64;
  options.seed = kSeed;
  ShardRunner runner(instance_->train_graph, instance_->eval_graph,
                     Config(1), options);
  auto result = runner.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("seed_count"),
            std::string::npos);
}

}  // namespace
}  // namespace privim
