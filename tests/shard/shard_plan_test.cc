// ShardPlan: deterministic node assignment, disjoint cover, cut-edge
// accounting, local-graph fidelity, and the single-shard identity.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "shard/shard_plan.h"

namespace privim {
namespace {

Graph TestGraph(uint64_t seed = 7, size_t nodes = 120) {
  Rng rng(seed);
  return std::move(ErdosRenyi(nodes, 0.08, /*directed=*/true, rng))
      .ValueOrDie();
}

TEST(ShardPlanTest, AssignShardIsDeterministicAndInRange) {
  for (NodeId u = 0; u < 500; ++u) {
    const size_t s = ShardPlan::AssignShard(u, kDefaultShardSalt, 4);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, ShardPlan::AssignShard(u, kDefaultShardSalt, 4));
  }
  // Single shard short-circuits.
  EXPECT_EQ(ShardPlan::AssignShard(123, kDefaultShardSalt, 1), 0u);
  // The salt actually matters: at least one node of many moves.
  bool moved = false;
  for (NodeId u = 0; u < 100 && !moved; ++u) {
    moved = ShardPlan::AssignShard(u, 1, 4) !=
            ShardPlan::AssignShard(u, 2, 4);
  }
  EXPECT_TRUE(moved);
}

TEST(ShardPlanTest, PartitionCoversNodesDisjointly) {
  Graph g = TestGraph();
  ShardPlanOptions options;
  options.num_shards = 4;
  ShardPlan plan = std::move(ShardPlan::Partition(g, options)).ValueOrDie();
  ASSERT_EQ(plan.num_shards(), 4u);

  std::set<NodeId> seen;
  size_t total = 0;
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    const std::vector<NodeId>& nodes = plan.nodes(s);
    total += nodes.size();
    for (size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_TRUE(seen.insert(nodes[i]).second)
          << "node " << nodes[i] << " owned twice";
      EXPECT_EQ(plan.ShardOf(nodes[i]), s);
      EXPECT_EQ(plan.ToOriginal(s, static_cast<NodeId>(i)), nodes[i]);
      if (i > 0) EXPECT_LT(nodes[i - 1], nodes[i]) << "not ascending";
    }
    EXPECT_EQ(plan.graph(s).num_nodes(), nodes.size());
  }
  EXPECT_EQ(total, g.num_nodes());
}

TEST(ShardPlanTest, CutPlusIntraEqualsAllArcsAndShardsHoldIntraOnly) {
  Graph g = TestGraph();
  ShardPlanOptions options;
  options.num_shards = 3;
  ShardPlan plan = std::move(ShardPlan::Partition(g, options)).ValueOrDie();
  EXPECT_EQ(plan.cut_arcs() + plan.intra_arcs(), g.num_edges());
  EXPECT_GT(plan.cut_arcs(), 0u);  // An ER graph at 3 shards has cuts.

  // Every original intra arc appears in its shard graph with the same
  // weight, and the shard graphs hold nothing else.
  uint64_t found = 0;
  ASSERT_TRUE(g.ForEachEdge([&](NodeId u, NodeId v, float w) {
                 const size_t su = plan.ShardOf(u);
                 if (su != plan.ShardOf(v)) return;
                 const std::vector<NodeId>& nodes = plan.nodes(su);
                 const NodeId lu = static_cast<NodeId>(
                     std::lower_bound(nodes.begin(), nodes.end(), u) -
                     nodes.begin());
                 const NodeId lv = static_cast<NodeId>(
                     std::lower_bound(nodes.begin(), nodes.end(), v) -
                     nodes.begin());
                 EXPECT_TRUE(plan.graph(su).HasEdge(lu, lv));
                 (void)w;
                 ++found;
               }).ok());
  uint64_t shard_arcs = 0;
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    shard_arcs += plan.graph(s).num_edges();
  }
  EXPECT_EQ(found, plan.intra_arcs());
  EXPECT_EQ(shard_arcs, plan.intra_arcs());
}

TEST(ShardPlanTest, SingleShardIsIdentity) {
  Graph g = TestGraph();
  ShardPlanOptions options;
  options.num_shards = 1;
  ShardPlan plan = std::move(ShardPlan::Partition(g, options)).ValueOrDie();
  EXPECT_EQ(plan.cut_arcs(), 0u);
  EXPECT_EQ(plan.intra_arcs(), g.num_edges());
  ASSERT_EQ(plan.graph(0).num_nodes(), g.num_nodes());
  ASSERT_EQ(plan.graph(0).num_edges(), g.num_edges());
  EXPECT_EQ(plan.graph(0).Edges(), g.Edges());
}

TEST(ShardPlanTest, ShardGraphsAreBuiltInCsrEagerly) {
  // Shard graphs cross thread boundaries immediately; a lazy EnsureInCsr
  // there would be a data race (see shard_pipeline_test.cc for the
  // concurrent-readers proof).
  Graph g = TestGraph();
  ShardPlanOptions options;
  options.num_shards = 2;
  ShardPlan plan = std::move(ShardPlan::Partition(g, options)).ValueOrDie();
  EXPECT_TRUE(plan.graph(0).has_in_csr());
  EXPECT_TRUE(plan.graph(1).has_in_csr());
}

TEST(ShardPlanTest, PartitionIsDeterministic) {
  Graph g1 = TestGraph();
  Graph g2 = TestGraph();
  ShardPlanOptions options;
  options.num_shards = 4;
  ShardPlan a = std::move(ShardPlan::Partition(g1, options)).ValueOrDie();
  ShardPlan b = std::move(ShardPlan::Partition(g2, options)).ValueOrDie();
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(a.nodes(s), b.nodes(s));
    EXPECT_EQ(a.graph(s).Edges(), b.graph(s).Edges());
  }
}

TEST(ShardPlanTest, RejectsBadShardCounts) {
  Graph g = TestGraph();
  ShardPlanOptions options;
  options.num_shards = 0;
  EXPECT_FALSE(ShardPlan::Partition(g, options).ok());
  options.num_shards = g.num_nodes() + 1;
  auto too_many = ShardPlan::Partition(g, options);
  ASSERT_FALSE(too_many.ok());
  EXPECT_NE(too_many.status().ToString().find("exceeds"),
            std::string::npos);
}

}  // namespace
}  // namespace privim
