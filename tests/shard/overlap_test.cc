// RunStagePipeline: serial schedule ordering, a latch-based proof that the
// overlap scheduler really runs shard k+1's stage A concurrently with
// shard k's stage B (wall-clock-free, so it cannot flake on slow
// machines), the in-flight bound, and first-error-wins propagation.

#include <atomic>
#include <latch>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shard/overlap.h"

namespace privim {
namespace {

TEST(OverlapTest, SerialModeRunsStagesInOrder) {
  std::vector<std::string> trace;
  OverlapOptions options;
  options.overlap = false;
  ASSERT_TRUE(RunStagePipeline(
                  3, options,
                  [&](size_t s) {
                    trace.push_back("A" + std::to_string(s));
                    return Status::OK();
                  },
                  [&](size_t s) {
                    trace.push_back("B" + std::to_string(s));
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(trace,
            (std::vector<std::string>{"A0", "B0", "A1", "B1", "A2", "B2"}));
}

TEST(OverlapTest, MaxInFlightOneDegeneratesToSerial) {
  std::vector<std::string> trace;
  OverlapOptions options;
  options.overlap = true;
  options.max_in_flight = 1;
  ASSERT_TRUE(RunStagePipeline(
                  2, options,
                  [&](size_t s) {
                    trace.push_back("A" + std::to_string(s));
                    return Status::OK();
                  },
                  [&](size_t s) {
                    trace.push_back("B" + std::to_string(s));
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(trace, (std::vector<std::string>{"A0", "B0", "A1", "B1"}));
}

TEST(OverlapTest, OverlapRunsNextSampleDuringCurrentTrain) {
  // Deadlock-free only if A(1) and B(0) genuinely run concurrently:
  // B(0) blocks until A(1) has started, and A(1) blocks until B(0) has
  // started. A serialized scheduler would hang (and trip the test
  // timeout); the overlap scheduler passes instantly.
  std::latch a1_started(1);
  std::latch b0_started(1);
  OverlapOptions options;
  options.overlap = true;
  options.max_in_flight = 2;
  ASSERT_TRUE(RunStagePipeline(
                  2, options,
                  [&](size_t s) {
                    if (s == 1) {
                      a1_started.count_down();
                      b0_started.wait();
                    }
                    return Status::OK();
                  },
                  [&](size_t s) {
                    if (s == 0) {
                      b0_started.count_down();
                      a1_started.wait();
                    }
                    return Status::OK();
                  })
                  .ok());
}

TEST(OverlapTest, InFlightNeverExceedsBound) {
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  auto enter = [&](size_t) {
    const int now = in_flight.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    return Status::OK();
  };
  auto leave = [&](size_t) {
    in_flight.fetch_sub(1);
    return Status::OK();
  };
  OverlapOptions options;
  options.overlap = true;
  options.max_in_flight = 2;
  // Stage A enters a shard into flight, stage B retires it: the in-flight
  // count spans each shard's full A->B window.
  ASSERT_TRUE(RunStagePipeline(8, options, enter, leave).ok());
  EXPECT_EQ(in_flight.load(), 0);
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
}

TEST(OverlapTest, FirstErrorWinsAndUnstartedShardsAreSkipped) {
  std::mutex mu;
  std::vector<size_t> started;
  OverlapOptions options;
  options.overlap = true;
  options.max_in_flight = 2;
  const Status st = RunStagePipeline(
      100, options,
      [&](size_t s) -> Status {
        {
          std::lock_guard<std::mutex> lock(mu);
          started.push_back(s);
        }
        if (s == 0) return Status::Internal("shard 0 exploded");
        return Status::OK();
      },
      [&](size_t) { return Status::OK(); });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("shard 0 exploded"), std::string::npos);
  // Far fewer than 100 shards ever started: the failure stopped intake.
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_LT(started.size(), 100u);
}

TEST(OverlapTest, SerialModeStopsAtFirstError) {
  std::vector<std::string> trace;
  OverlapOptions options;
  options.overlap = false;
  const Status st = RunStagePipeline(
      3, options,
      [&](size_t s) {
        trace.push_back("A" + std::to_string(s));
        return Status::OK();
      },
      [&](size_t s) -> Status {
        trace.push_back("B" + std::to_string(s));
        if (s == 1) return Status::Internal("boom");
        return Status::OK();
      });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(trace, (std::vector<std::string>{"A0", "B0", "A1", "B1"}));
}

TEST(OverlapTest, RejectsBadArguments) {
  OverlapOptions options;
  options.max_in_flight = 0;
  auto ok = [](size_t) { return Status::OK(); };
  EXPECT_FALSE(RunStagePipeline(1, options, ok, ok).ok());
  options.max_in_flight = 2;
  EXPECT_FALSE(RunStagePipeline(1, options, nullptr, ok).ok());
  EXPECT_FALSE(RunStagePipeline(1, options, ok, nullptr).ok());
  // Zero shards is a no-op, not an error.
  EXPECT_TRUE(RunStagePipeline(0, options, ok, ok).ok());
}

}  // namespace
}  // namespace privim
