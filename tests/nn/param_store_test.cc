#include "nn/param_store.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace privim {
namespace {

TEST(ParamStoreTest, TracksScalarCount) {
  ParamStore store;
  Rng rng(1);
  store.NewGlorot("w1", 3, 4, rng);
  store.NewConstant("b1", 1, 4, 0.0f);
  EXPECT_EQ(store.num_tensors(), 2u);
  EXPECT_EQ(store.num_scalars(), 16u);
  EXPECT_EQ(store.names()[0], "w1");
}

TEST(ParamStoreTest, GlorotBoundsRespected) {
  ParamStore store;
  Rng rng(2);
  Tensor w = store.NewGlorot("w", 50, 50, rng);
  const double bound = std::sqrt(6.0 / 100.0);
  for (size_t i = 0; i < w.value().size(); ++i) {
    EXPECT_LE(std::abs(w.value().data()[i]), bound);
  }
  // Not all identical (sanity).
  EXPECT_NE(w.value()(0, 0), w.value()(1, 1));
}

TEST(ParamStoreTest, FlattenRoundTrip) {
  ParamStore store;
  Rng rng(3);
  store.NewGlorot("a", 2, 2, rng);
  store.NewGlorot("b", 1, 3, rng);
  std::vector<float> flat(store.num_scalars());
  store.FlattenParams(flat);
  std::vector<float> modified = flat;
  for (float& v : modified) v += 1.0f;
  store.LoadParams(modified);
  std::vector<float> readback(store.num_scalars());
  store.FlattenParams(readback);
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_FLOAT_EQ(readback[i], flat[i] + 1.0f);
  }
}

TEST(ParamStoreTest, FlattenGradsAfterBackward) {
  ParamStore store;
  Rng rng(4);
  Tensor w = store.NewConstant("w", 2, 2, 1.0f);
  Tensor loss = Sum(Scale(w, 3.0f));
  store.ZeroGrads();
  loss.Backward();
  std::vector<float> grads(store.num_scalars());
  store.FlattenGrads(grads);
  for (float g : grads) EXPECT_FLOAT_EQ(g, 3.0f);
}

TEST(ParamStoreTest, ZeroGradsClears) {
  ParamStore store;
  Rng rng(5);
  Tensor w = store.NewConstant("w", 1, 2, 1.0f);
  Sum(w).Backward();
  store.ZeroGrads();
  std::vector<float> grads(store.num_scalars());
  store.FlattenGrads(grads);
  for (float g : grads) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(ParamStoreTest, ApplyUpdateSubtractsScaledDelta) {
  ParamStore store;
  store.NewConstant("w", 1, 2, 10.0f);
  std::vector<float> delta = {2.0f, 4.0f};
  store.ApplyUpdate(delta, 0.5f);
  std::vector<float> flat(2);
  store.FlattenParams(flat);
  EXPECT_FLOAT_EQ(flat[0], 9.0f);
  EXPECT_FLOAT_EQ(flat[1], 8.0f);
}

TEST(ParamStoreTest, UpdateAffectsLiveTensor) {
  // The tensors handed to layers alias the store's parameters; an update
  // must be visible through the layer's handle.
  ParamStore store;
  Tensor w = store.NewConstant("w", 1, 1, 5.0f);
  std::vector<float> delta = {1.0f};
  store.ApplyUpdate(delta, 1.0f);
  EXPECT_FLOAT_EQ(w.value()(0, 0), 4.0f);
}

}  // namespace
}  // namespace privim
