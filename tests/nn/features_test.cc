#include "nn/features.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace privim {
namespace {

TEST(FeaturesTest, ShapeAndRange) {
  Rng rng(1);
  Graph g = std::move(BarabasiAlbert(100, 3, rng)).ValueOrDie();
  Matrix x = BuildNodeFeatures(g);
  ASSERT_EQ(x.rows(), 100u);
  ASSERT_EQ(x.cols(), kNodeFeatureDim);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x.data()[i], 0.0f);
    EXPECT_LE(x.data()[i], 1.0f);
  }
}

TEST(FeaturesTest, BiasChannelIsOne) {
  Rng rng(2);
  Graph g = std::move(BarabasiAlbert(50, 2, rng)).ValueOrDie();
  Matrix x = BuildNodeFeatures(g);
  for (size_t u = 0; u < 50; ++u) EXPECT_FLOAT_EQ(x(u, 0), 1.0f);
}

TEST(FeaturesTest, DegreeChannelsOrderNodesByDegree) {
  // Star: node 0 has out-degree 4, others 0. Features use *absolute*
  // scaling (deg / 32, log1p(deg)/log(1024)) so the same degree maps to
  // the same feature value on a training subgraph and the full graph.
  GraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Matrix x = BuildNodeFeatures(g);
  EXPECT_FLOAT_EQ(x(0, 1), 4.0f / 32.0f);
  for (NodeId v = 1; v < 5; ++v) EXPECT_FLOAT_EQ(x(v, 1), 0.0f);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_FLOAT_EQ(x(v, 2), 1.0f / 32.0f);
  }
  EXPECT_FLOAT_EQ(x(0, 2), 0.0f);
  // Log channels preserve the ordering.
  EXPECT_GT(x(0, 3), x(1, 3));
  EXPECT_GT(x(1, 4), x(0, 4));
}

TEST(FeaturesTest, AbsoluteScalingTransfersAcrossGraphSizes) {
  // A node with identical local structure must get identical features on
  // a small and a large graph (train-subgraph / full-graph consistency).
  GraphBuilder small(3);
  ASSERT_TRUE(small.AddEdge(0, 1).ok());
  ASSERT_TRUE(small.AddEdge(0, 2).ok());
  Graph gs = std::move(small.Build()).ValueOrDie();
  GraphBuilder large(100);
  ASSERT_TRUE(large.AddEdge(0, 1).ok());
  ASSERT_TRUE(large.AddEdge(0, 2).ok());
  for (NodeId v = 10; v < 90; ++v) {
    ASSERT_TRUE(large.AddEdge(5, v).ok());  // Unrelated hub elsewhere.
  }
  Graph gl = std::move(large.Build()).ValueOrDie();
  Matrix xs = BuildNodeFeatures(gs);
  Matrix xl = BuildNodeFeatures(gl);
  for (size_t c = 0; c < kNodeFeatureDim; ++c) {
    EXPECT_FLOAT_EQ(xs(0, c), xl(0, c)) << "feature " << c;
  }
}

TEST(FeaturesTest, ReciprocalFractionDetectsMutualEdges) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddUndirectedEdge(0, 1).ok());  // Mutual.
  ASSERT_TRUE(b.AddEdge(0, 2).ok());            // One-way.
  Graph g = std::move(b.Build()).ValueOrDie();
  Matrix x = BuildNodeFeatures(g);
  EXPECT_FLOAT_EQ(x(0, 6), 0.5f);  // 1 of 2 out-neighbors reciprocates.
  EXPECT_FLOAT_EQ(x(1, 6), 1.0f);
  EXPECT_FLOAT_EQ(x(2, 6), 0.0f);  // No out-edges.
}

TEST(FeaturesTest, EmptyGraphSafe) {
  GraphBuilder b(0);
  Graph g = std::move(b.Build()).ValueOrDie();
  Matrix x = BuildNodeFeatures(g);
  EXPECT_EQ(x.rows(), 0u);
}

TEST(FeaturesTest, IsolatedNodesGetFiniteFeatures) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = std::move(b.Build()).ValueOrDie();  // Node 2 isolated.
  Matrix x = BuildNodeFeatures(g);
  for (size_t c = 0; c < kNodeFeatureDim; ++c) {
    EXPECT_TRUE(std::isfinite(x(2, c)));
  }
  EXPECT_FLOAT_EQ(x(2, 7), 1.0f);  // 1/(1+0).
}

}  // namespace
}  // namespace privim
