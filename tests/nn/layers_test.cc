#include "nn/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace privim {
namespace {

Graph MakeLine() {
  // 0 -> 1 -> 2.
  GraphBuilder b(3);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  return std::move(b.Build()).ValueOrDie();
}

Matrix Eye(size_t n) {
  Matrix m = Matrix::Zeros(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

TEST(GcnConvTest, AggregatesWithSymmetricNorm) {
  Graph g = MakeLine();
  GraphContext ctx = BuildGraphContext(g);
  ParamStore store;
  Rng rng(1);
  GcnConv layer(3, 3, store, rng, "gcn");
  // Identity features isolate the aggregation matrix.
  Tensor x(Eye(3));
  Tensor out = layer.Forward(ctx, x);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 3u);
  // Node 0 has no in-edges: its aggregate is only its self-loop
  // 1/sqrt((d_out+1)(d_in+1)) = 1/sqrt(2*1) of its own features.
  // We only check the structural zero: node 0's aggregate has no
  // contribution from node 2's channel, i.e. out(0,·) is independent of
  // x row 2. Verified by differentiating through MatMul instead: check
  // the aggregation directly via a linear probe.
  // Simpler: aggregate with W=I is impossible (W is random), so check
  // shape and finiteness here; exact coefficients are covered in
  // graph_context_test.
  for (size_t i = 0; i < out.value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.value().data()[i]));
  }
}

TEST(SageConvTest, OutputShapeAndConcatSemantics) {
  Graph g = MakeLine();
  GraphContext ctx = BuildGraphContext(g);
  ParamStore store;
  Rng rng(2);
  SageConv layer(2, 5, store, rng, "sage");
  Tensor x(Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}}));
  Tensor out = layer.Forward(ctx, x);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 5u);
  // Parameter count: W [4,5] + bias [1,5].
  EXPECT_EQ(store.num_scalars(), 25u);
}

TEST(GinConvTest, OmegaZeroAtInit) {
  Graph g = MakeLine();
  GraphContext ctx = BuildGraphContext(g);
  ParamStore store;
  Rng rng(3);
  GinConv layer(2, 4, store, rng, "gin");
  // The omega parameter exists and starts at 0 (so (1+omega)=1).
  bool found = false;
  for (size_t i = 0; i < store.num_tensors(); ++i) {
    if (store.names()[i] == "gin.omega") {
      EXPECT_FLOAT_EQ(store.params()[i].value()(0, 0), 0.0f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  Tensor x(Matrix::Ones(3, 2));
  Tensor out = layer.Forward(ctx, x);
  EXPECT_EQ(out.cols(), 4u);
}

TEST(GinConvTest, OmegaReceivesGradient) {
  Graph g = MakeLine();
  GraphContext ctx = BuildGraphContext(g);
  ParamStore store;
  Rng rng(4);
  GinConv layer(2, 4, store, rng, "gin");
  Tensor x(Matrix::Ones(3, 2));
  Tensor loss = Sum(layer.Forward(ctx, x));
  store.ZeroGrads();
  loss.Backward();
  std::vector<float> grads(store.num_scalars());
  store.FlattenGrads(grads);
  double norm = 0.0;
  for (float gv : grads) norm += std::abs(gv);
  EXPECT_GT(norm, 0.0);
}

class AttentionConvTest
    : public ::testing::TestWithParam<AttentionNorm> {};

TEST_P(AttentionConvTest, AttentionWeightsNormalizeCorrectly) {
  // Star graph: 0 -> {1, 2, 3}.
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(0, 2).ok());
  ASSERT_TRUE(b.AddEdge(0, 3).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);

  ParamStore store;
  Rng rng(5);
  AttentionConv layer(2, 3, GetParam(), store, rng, "att");
  Tensor x(Matrix::FromRows({{1, 2}, {-1, 0}, {0, 1}, {2, 2}}));
  Tensor out = layer.Forward(ctx, x);
  EXPECT_EQ(out.rows(), 4u);
  EXPECT_EQ(out.cols(), 3u);
  for (size_t i = 0; i < out.value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.value().data()[i]));
  }
}

TEST_P(AttentionConvTest, GradientsFlowToAllParams) {
  Graph g = MakeLine();
  GraphContext ctx = BuildGraphContext(g);
  ParamStore store;
  Rng rng(6);
  AttentionConv layer(2, 3, GetParam(), store, rng, "att");
  Tensor x(Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}}));
  Tensor loss = Sum(Mul(layer.Forward(ctx, x), layer.Forward(ctx, x)));
  store.ZeroGrads();
  loss.Backward();
  // Every parameter tensor (W, a_src, a_dst) should receive some gradient.
  for (const Tensor& p : store.params()) {
    double norm = 0.0;
    for (size_t i = 0; i < p.grad().size(); ++i) {
      norm += std::abs(p.grad().data()[i]);
    }
    EXPECT_GT(norm, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(BothNorms, AttentionConvTest,
                         ::testing::Values(AttentionNorm::kTarget,
                                           AttentionNorm::kSource),
                         [](const auto& info) {
                           return info.param == AttentionNorm::kTarget
                                      ? "GAT"
                                      : "GRAT";
                         });

TEST(AttentionNormDirectionTest, GatAndGratDifferOnAsymmetricGraph) {
  // 0 -> 1, 0 -> 2, 3 -> 1: node 1 has two in-arcs, node 0 two out-arcs.
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(0, 2).ok());
  ASSERT_TRUE(b.AddEdge(3, 1).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);

  // Identical initialization for both layers.
  ParamStore store_gat, store_grat;
  Rng rng_a(7), rng_b(7);
  AttentionConv gat(2, 3, AttentionNorm::kTarget, store_gat, rng_a, "a");
  AttentionConv grat(2, 3, AttentionNorm::kSource, store_grat, rng_b, "a");
  Tensor x(Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}, {2, 1}}));
  Tensor out_gat = gat.Forward(ctx, x);
  Tensor out_grat = grat.Forward(ctx, x);
  double diff = 0.0;
  for (size_t i = 0; i < out_gat.value().size(); ++i) {
    diff += std::abs(out_gat.value().data()[i] -
                     out_grat.value().data()[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

}  // namespace
}  // namespace privim
