#include "nn/gnn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "nn/features.h"
#include "tensor/ops.h"

namespace privim {
namespace {

TEST(ParseGnnTypeTest, AllAliases) {
  EXPECT_EQ(*ParseGnnType("gcn"), GnnType::kGcn);
  EXPECT_EQ(*ParseGnnType("GCN"), GnnType::kGcn);
  EXPECT_EQ(*ParseGnnType("sage"), GnnType::kSage);
  EXPECT_EQ(*ParseGnnType("GraphSAGE"), GnnType::kSage);
  EXPECT_EQ(*ParseGnnType("gin"), GnnType::kGin);
  EXPECT_EQ(*ParseGnnType("gat"), GnnType::kGat);
  EXPECT_EQ(*ParseGnnType("grat"), GnnType::kGrat);
  EXPECT_FALSE(ParseGnnType("transformer").ok());
}

TEST(GnnTypeNameTest, RoundTrips) {
  for (GnnType t : {GnnType::kGcn, GnnType::kSage, GnnType::kGin,
                    GnnType::kGat, GnnType::kGrat}) {
    EXPECT_EQ(*ParseGnnType(GnnTypeName(t)), t);
  }
}

class GnnModelTest : public ::testing::TestWithParam<GnnType> {};

TEST_P(GnnModelTest, OutputsProbabilitiesPerNode) {
  Rng graph_rng(1);
  Graph g =
      std::move(ErdosRenyi(30, 0.15, /*directed=*/true, graph_rng))
          .ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix features = BuildNodeFeatures(g);

  GnnConfig cfg;
  cfg.type = GetParam();
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 16;
  cfg.num_layers = 3;
  Rng rng(2);
  GnnModel model(cfg, rng);

  Tensor out = model.Forward(ctx, Tensor(features));
  ASSERT_EQ(out.rows(), g.num_nodes());
  ASSERT_EQ(out.cols(), 1u);
  for (size_t u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GT(out.value()(u, 0), 0.0f);
    EXPECT_LT(out.value()(u, 0), 1.0f);
  }
}

TEST_P(GnnModelTest, BackwardReachesEveryParameter) {
  Rng graph_rng(3);
  Graph g =
      std::move(ErdosRenyi(20, 0.2, /*directed=*/true, graph_rng))
          .ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix features = BuildNodeFeatures(g);

  GnnConfig cfg;
  cfg.type = GetParam();
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  Rng rng(4);
  GnnModel model(cfg, rng);

  Tensor out = model.Forward(ctx, Tensor(features));
  Tensor loss = Sum(Mul(out, out));
  model.params().ZeroGrads();
  loss.Backward();

  size_t with_grad = 0;
  for (const Tensor& p : model.params().params()) {
    double norm = 0.0;
    for (size_t i = 0; i < p.grad().size(); ++i) {
      norm += std::abs(p.grad().data()[i]);
    }
    if (norm > 0.0) ++with_grad;
  }
  // ReLU dead units can zero individual tensors occasionally; require the
  // overwhelming majority to receive gradient.
  EXPECT_GE(with_grad + 1, model.params().num_tensors());
}

TEST_P(GnnModelTest, SameParamsSameGraphDeterministicForward) {
  Rng graph_rng(5);
  Graph g =
      std::move(ErdosRenyi(15, 0.2, true, graph_rng)).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix features = BuildNodeFeatures(g);
  GnnConfig cfg;
  cfg.type = GetParam();
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  Rng rng(6);
  GnnModel model(cfg, rng);
  Tensor a = model.Forward(ctx, Tensor(features));
  Tensor b = model.Forward(ctx, Tensor(features));
  for (size_t u = 0; u < g.num_nodes(); ++u) {
    EXPECT_FLOAT_EQ(a.value()(u, 0), b.value()(u, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackbones, GnnModelTest,
                         ::testing::Values(GnnType::kGcn, GnnType::kSage,
                                           GnnType::kGin, GnnType::kGat,
                                           GnnType::kGrat),
                         [](const auto& info) {
                           return GnnTypeName(info.param);
                         });

TEST(GnnModelTest, TransfersAcrossGraphSizes) {
  // Train-on-subgraph / infer-on-full-graph requires the same parameters
  // to run on differently sized graphs.
  GnnConfig cfg;
  cfg.type = GnnType::kGrat;
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  Rng rng(7);
  GnnModel model(cfg, rng);

  Rng graph_rng(8);
  for (size_t n : {10u, 50u, 200u}) {
    Graph g = std::move(ErdosRenyi(n, 0.1, true, graph_rng)).ValueOrDie();
    GraphContext ctx = BuildGraphContext(g);
    Tensor out = model.Forward(ctx, Tensor(BuildNodeFeatures(g)));
    EXPECT_EQ(out.rows(), n);
  }
}

}  // namespace
}  // namespace privim
