#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(SgdOptimizerTest, AppliesLearningRate) {
  ParamStore store;
  store.NewConstant("w", 1, 2, 1.0f);
  SgdOptimizer opt(0.1f);
  std::vector<float> grad = {1.0f, -2.0f};
  opt.Step(store, grad);
  std::vector<float> flat(2);
  store.FlattenParams(flat);
  EXPECT_FLOAT_EQ(flat[0], 0.9f);
  EXPECT_FLOAT_EQ(flat[1], 1.2f);
}

TEST(SgdOptimizerTest, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2 with exact gradient 2(w-3).
  ParamStore store;
  store.NewConstant("w", 1, 1, 0.0f);
  SgdOptimizer opt(0.1f);
  std::vector<float> flat(1), grad(1);
  for (int i = 0; i < 200; ++i) {
    store.FlattenParams(flat);
    grad[0] = 2.0f * (flat[0] - 3.0f);
    opt.Step(store, grad);
  }
  store.FlattenParams(flat);
  EXPECT_NEAR(flat[0], 3.0f, 1e-4);
}

TEST(AdamOptimizerTest, ConvergesOnQuadratic) {
  ParamStore store;
  store.NewConstant("w", 1, 1, 0.0f);
  AdamOptimizer opt(0.1f);
  std::vector<float> flat(1), grad(1);
  for (int i = 0; i < 500; ++i) {
    store.FlattenParams(flat);
    grad[0] = 2.0f * (flat[0] - 3.0f);
    opt.Step(store, grad);
  }
  store.FlattenParams(flat);
  EXPECT_NEAR(flat[0], 3.0f, 1e-2);
}

TEST(AdamOptimizerTest, FirstStepIsApproximatelyLearningRate) {
  // With bias correction, the first Adam step has magnitude ~lr regardless
  // of gradient scale.
  for (float scale : {0.01f, 1.0f, 100.0f}) {
    ParamStore store;
    store.NewConstant("w", 1, 1, 0.0f);
    AdamOptimizer opt(0.05f);
    std::vector<float> grad = {scale};
    opt.Step(store, grad);
    std::vector<float> flat(1);
    store.FlattenParams(flat);
    EXPECT_NEAR(flat[0], -0.05f, 0.005f) << "scale " << scale;
  }
}

TEST(AdamOptimizerTest, HandlesZeroGradient) {
  ParamStore store;
  store.NewConstant("w", 1, 1, 1.0f);
  AdamOptimizer opt(0.1f);
  std::vector<float> grad = {0.0f};
  opt.Step(store, grad);
  std::vector<float> flat(1);
  store.FlattenParams(flat);
  EXPECT_TRUE(std::isfinite(flat[0]));
  EXPECT_NEAR(flat[0], 1.0f, 1e-6);
}

}  // namespace
}  // namespace privim
