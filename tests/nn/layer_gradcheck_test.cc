// Finite-difference gradient checks through complete GNN layers: the
// op-level gradcheck suite validates primitives; this validates each
// layer's composition of them, for every backbone, end to end through the
// model head.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "nn/features.h"
#include "nn/gnn.h"
#include "tensor/ops.h"

namespace privim {
namespace {

// Perturbs every parameter scalar of `model` and compares the numeric
// directional derivative of `loss_fn` with the autograd gradient.
// The tolerance is loose relative to the op-level gradcheck suite: a
// two-layer model composes several piecewise-linear activations, and a
// finite-difference probe in float32 occasionally straddles a kink,
// biasing the numeric estimate by O(eps). Structure/sign errors still
// violate a 12% band by orders of magnitude.
void CheckModelGradient(GnnModel& model,
                        const std::function<double()>& loss_value,
                        const std::function<Tensor()>& loss_tensor,
                        double tol = 0.12) {
  Tensor loss = loss_tensor();
  model.params().ZeroGrads();
  loss.Backward();
  std::vector<float> analytic(model.params().num_scalars());
  model.params().FlattenGrads(analytic);

  std::vector<float> theta(model.params().num_scalars());
  model.params().FlattenParams(theta);
  const double eps = 1e-3;
  // Check a strided subset to keep runtime low; stride covers all tensors.
  const size_t stride = std::max<size_t>(1, theta.size() / 60);
  for (size_t i = 0; i < theta.size(); i += stride) {
    const float orig = theta[i];
    theta[i] = orig + static_cast<float>(eps);
    model.params().LoadParams(theta);
    const double up = loss_value();
    theta[i] = orig - static_cast<float>(eps);
    model.params().LoadParams(theta);
    const double down = loss_value();
    theta[i] = orig;
    model.params().LoadParams(theta);
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tol * std::max(0.02, std::abs(numeric)))
        << "parameter " << i;
  }
}

class LayerGradCheckTest : public ::testing::TestWithParam<GnnType> {};

TEST_P(LayerGradCheckTest, ModelGradientsMatchFiniteDifferences) {
  Rng gen(1);
  Graph g = std::move(ErdosRenyi(15, 0.25, true, gen)).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix features = BuildNodeFeatures(g);

  GnnConfig cfg;
  cfg.type = GetParam();
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 6;
  cfg.num_layers = 2;
  Rng rng(2);
  GnnModel model(cfg, rng);

  auto loss_tensor = [&]() {
    Tensor out = model.Forward(ctx, Tensor(features));
    return Sum(Mul(out, out));
  };
  auto loss_value = [&]() { return loss_tensor().value()(0, 0); };
  // GIN's inner ReLU and the piecewise LeakyReLUs sit away from kinks for
  // this seed; tolerance absorbs residual kink noise.
  CheckModelGradient(model, loss_value, loss_tensor);
}

INSTANTIATE_TEST_SUITE_P(AllBackbones, LayerGradCheckTest,
                         ::testing::Values(GnnType::kGcn, GnnType::kSage,
                                           GnnType::kGin, GnnType::kGat,
                                           GnnType::kGrat),
                         [](const auto& info) {
                           return GnnTypeName(info.param);
                         });

}  // namespace
}  // namespace privim
