#include "nn/graph_context.h"

#include <cmath>

#include <gtest/gtest.h>

namespace privim {
namespace {

Graph MakeTriangle() {
  GraphBuilder b(3);
  EXPECT_TRUE(b.AddEdge(0, 1, 0.5f).ok());
  EXPECT_TRUE(b.AddEdge(1, 2, 0.25f).ok());
  EXPECT_TRUE(b.AddEdge(2, 0, 1.0f).ok());
  return std::move(b.Build()).ValueOrDie();
}

TEST(GraphContextTest, IncludesSelfLoops) {
  Graph g = MakeTriangle();
  GraphContext ctx = BuildGraphContext(g);
  EXPECT_EQ(ctx.num_nodes, 3u);
  EXPECT_EQ(ctx.src.size(), g.num_edges() + g.num_nodes());
  size_t self_loops = 0;
  for (size_t e = 0; e < ctx.src.size(); ++e) {
    if (ctx.is_self_loop[e]) {
      EXPECT_EQ(ctx.src[e], ctx.dst[e]);
      ++self_loops;
    }
  }
  EXPECT_EQ(self_loops, 3u);
}

TEST(GraphContextTest, GcnCoefficientsSymmetricNormalized) {
  Graph g = MakeTriangle();
  GraphContext ctx = BuildGraphContext(g);
  for (size_t e = 0; e < ctx.src.size(); ++e) {
    const double d_src = static_cast<double>(g.OutDegree(ctx.src[e])) + 1.0;
    const double d_dst = static_cast<double>(g.InDegree(ctx.dst[e])) + 1.0;
    EXPECT_NEAR(ctx.gcn_coef[e], 1.0 / std::sqrt(d_src * d_dst), 1e-6);
  }
}

TEST(GraphContextTest, MeanCoefficientsSumToOnePerTarget) {
  Graph g = MakeTriangle();
  GraphContext ctx = BuildGraphContext(g);
  std::vector<double> sums(3, 0.0);
  for (size_t e = 0; e < ctx.src.size(); ++e) {
    sums[ctx.dst[e]] += ctx.mean_coef[e];
  }
  for (double s : sums) EXPECT_NEAR(s, 1.0, 1e-6);
}

TEST(GraphContextTest, SumCoefZeroOnSelfLoops) {
  Graph g = MakeTriangle();
  GraphContext ctx = BuildGraphContext(g);
  for (size_t e = 0; e < ctx.src.size(); ++e) {
    if (ctx.is_self_loop[e]) {
      EXPECT_EQ(ctx.sum_coef[e], 0.0f);
      EXPECT_EQ(ctx.ic_coef[e], 0.0f);
    } else {
      EXPECT_EQ(ctx.sum_coef[e], 1.0f);
      EXPECT_EQ(ctx.ic_coef[e], ctx.weight[e]);
    }
  }
}

TEST(GraphContextTest, IcCoefCarriesEdgeWeights) {
  Graph g = MakeTriangle();
  GraphContext ctx = BuildGraphContext(g);
  // Find arc 1->2 and check its IC weight 0.25.
  bool found = false;
  for (size_t e = 0; e < ctx.src.size(); ++e) {
    if (ctx.src[e] == 1 && ctx.dst[e] == 2 && !ctx.is_self_loop[e]) {
      EXPECT_FLOAT_EQ(ctx.ic_coef[e], 0.25f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GraphContextTest, EmptyGraphStillHasSelfLoops) {
  GraphBuilder b(4);
  Graph g = std::move(b.Build()).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  EXPECT_EQ(ctx.src.size(), 4u);
  for (size_t e = 0; e < 4; ++e) {
    EXPECT_TRUE(ctx.is_self_loop[e]);
    EXPECT_NEAR(ctx.gcn_coef[e], 1.0, 1e-6);  // Isolated: 1/sqrt(1*1).
  }
}

}  // namespace
}  // namespace privim
