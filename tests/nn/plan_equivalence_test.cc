// Differential test: compiled execution plans (tensor/plan.h) against the
// dynamic autograd tape, the reference implementation. The contract is
// BIT-identity, not approximate agreement — every comparison here is on
// exact float bit patterns, over all five GnnTypes, with and without
// self-loop arcs in the context, across subgraph sizes {1, 2, 17, 64}.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "core/loss.h"
#include "core/plan_cache.h"
#include "graph/generators.h"
#include "nn/features.h"
#include "nn/gnn.h"
#include "nn/graph_context.h"

namespace privim {
namespace {

void ExpectBitEqual(std::span<const float> a, std::span<const float> b,
                    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    ASSERT_EQ(ba, bb) << what << " diverges at scalar " << i << ": " << a[i]
                      << " vs " << b[i];
  }
}

void ExpectBitEqualScalar(float a, float b, const std::string& what) {
  ExpectBitEqual(std::span<const float>(&a, 1),
                 std::span<const float>(&b, 1), what);
}

/// Drops the self-loop entries BuildGraphContext appended, exercising
/// plans compiled against contexts with a different edge population.
GraphContext WithoutSelfLoops(const GraphContext& ctx) {
  GraphContext out;
  out.num_nodes = ctx.num_nodes;
  for (size_t e = 0; e < ctx.src.size(); ++e) {
    if (ctx.is_self_loop[e]) continue;
    out.src.push_back(ctx.src[e]);
    out.dst.push_back(ctx.dst[e]);
    out.weight.push_back(ctx.weight[e]);
    out.gcn_coef.push_back(ctx.gcn_coef[e]);
    out.mean_coef.push_back(ctx.mean_coef[e]);
    out.sum_coef.push_back(ctx.sum_coef[e]);
    out.ic_coef.push_back(ctx.ic_coef[e]);
    out.is_self_loop.push_back(0);
  }
  return out;
}

TEST(PlanEquivalenceTest, BitIdenticalToTapeAcrossTypesSizesAndContexts) {
  const GnnType kTypes[] = {GnnType::kGcn, GnnType::kSage, GnnType::kGin,
                            GnnType::kGat, GnnType::kGrat};
  const size_t kSizes[] = {1, 2, 17, 64};
  uint64_t seed = 1000;

  for (GnnType type : kTypes) {
    for (size_t n : kSizes) {
      for (bool keep_self_loops : {true, false}) {
        SCOPED_TRACE(GnnTypeName(type) + " n=" + std::to_string(n) +
                     (keep_self_loops ? " with" : " without") +
                     " self-loops");
        Rng grng(seed++);
        Graph g = std::move(ErdosRenyi(n, n <= 2 ? 1.0 : 0.15,
                                       /*directed=*/false, grng))
                      .ValueOrDie();
        const GraphContext full = BuildGraphContext(g);
        const GraphContext ctx =
            keep_self_loops ? full : WithoutSelfLoops(full);
        const Matrix features = BuildNodeFeatures(g);

        GnnConfig mc;
        mc.type = type;
        mc.in_dim = kNodeFeatureDim;
        mc.hidden_dim = 8;
        mc.num_layers = 2;
        Rng mrng(seed++);
        GnnModel model(mc, mrng);
        const size_t dim = model.params().num_scalars();

        ImLossConfig loss_cfg;
        loss_cfg.diffusion_steps = n == 17 ? 2 : 1;  // Cover the Mul chain.

        // Reference: one per-sample pass on the tape.
        Tensor x(features);
        Tensor probs = model.Forward(ctx, x);
        Tensor loss = ImPenaltyLoss(ctx, probs, loss_cfg);
        model.params().ZeroGrads();
        loss.Backward();
        std::vector<float> tape_grad(dim);
        model.params().FlattenGrads(tape_grad);

        // Same pass on the compiled plan. plan_grad starts poisoned:
        // Backward owns the zeroing.
        const GnnPlan plan = CompileTrainingPlan(model, ctx, loss_cfg);
        std::vector<float> params(dim);
        model.params().FlattenParams(params);
        PlanArena arena;
        std::vector<float> plan_grad(dim, 42.0f);
        plan.Forward(params, features, arena);
        ExpectBitEqualScalar(plan.OutputScalar(arena), loss.value()(0, 0),
                             "loss");
        plan.Backward(params, features, arena, plan_grad);
        ExpectBitEqual(plan_grad, tape_grad, "gradients");

        // Clipped-gradient L2 norms (Line 6 of Algorithm 2) agree exactly.
        std::vector<float> tape_clipped = tape_grad;
        std::vector<float> plan_clipped = plan_grad;
        const double tape_norm = ClipL2(tape_clipped, 1.0);
        const double plan_norm = ClipL2(plan_clipped, 1.0);
        EXPECT_EQ(tape_norm, plan_norm);
        ExpectBitEqual(plan_clipped, tape_clipped, "clipped gradients");

        // Re-execution on the warm arena is bit-stable (the steady state
        // the trainer lives in).
        plan.Forward(params, features, arena);
        ExpectBitEqualScalar(plan.OutputScalar(arena), loss.value()(0, 0),
                             "warm-arena loss");
        plan.Backward(params, features, arena, plan_grad);
        ExpectBitEqual(plan_grad, tape_grad, "warm-arena gradients");

        // The inference plan (GnnModel::Compile) reproduces Forward()'s
        // probabilities bitwise, sharing the same arena despite its
        // different layout.
        const GnnPlan inference = model.Compile(ctx);
        ASSERT_EQ(inference.output_rows(), ctx.num_nodes);
        ASSERT_EQ(inference.output_cols(), 1u);
        inference.Forward(params, features, arena);
        ExpectBitEqual(
            inference.Output(arena),
            std::span<const float>(probs.value().data(),
                                   probs.value().size()),
            "inference probabilities");
      }
    }
  }
}

}  // namespace
}  // namespace privim
