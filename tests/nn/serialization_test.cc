#include "nn/serialization.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "nn/features.h"
#include "nn/graph_context.h"

namespace privim {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

GnnConfig SmallConfig(GnnType type = GnnType::kGrat) {
  GnnConfig cfg;
  cfg.type = type;
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  return cfg;
}

TEST(SerializationTest, RoundTripPreservesScores) {
  Rng rng(1);
  GnnModel model(SmallConfig(), rng);
  const std::string path = TempPath("privim_model_roundtrip.ckpt");
  ASSERT_TRUE(SaveModel(model, path).ok());

  Rng rng2(999);  // Different init; must be overwritten by the load.
  GnnModel loaded(SmallConfig(), rng2);
  ASSERT_TRUE(LoadModelParams(path, loaded).ok());

  Rng graph_rng(3);
  Graph g = std::move(ErdosRenyi(25, 0.2, true, graph_rng)).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix x = BuildNodeFeatures(g);
  Tensor a = model.ForwardLogits(ctx, Tensor(x));
  Tensor b = loaded.ForwardLogits(ctx, Tensor(x));
  for (size_t u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(a.value()(u, 0), b.value()(u, 0), 1e-5) << "node " << u;
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, ConfigHeaderReadable) {
  Rng rng(4);
  GnnModel model(SmallConfig(GnnType::kGin), rng);
  const std::string path = TempPath("privim_model_header.ckpt");
  ASSERT_TRUE(SaveModel(model, path).ok());
  GnnConfig cfg = std::move(LoadModelConfig(path)).ValueOrDie();
  EXPECT_EQ(cfg.type, GnnType::kGin);
  EXPECT_EQ(cfg.in_dim, kNodeFeatureDim);
  EXPECT_EQ(cfg.hidden_dim, 8u);
  EXPECT_EQ(cfg.num_layers, 2u);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsMismatchedConfig) {
  Rng rng(5);
  GnnModel model(SmallConfig(GnnType::kGcn), rng);
  const std::string path = TempPath("privim_model_mismatch.ckpt");
  ASSERT_TRUE(SaveModel(model, path).ok());

  Rng rng2(6);
  GnnModel other(SmallConfig(GnnType::kGat), rng2);
  EXPECT_EQ(LoadModelParams(path, other).code(),
            StatusCode::kFailedPrecondition);

  GnnConfig bigger = SmallConfig(GnnType::kGcn);
  bigger.hidden_dim = 16;
  Rng rng3(7);
  GnnModel wide(bigger, rng3);
  EXPECT_EQ(LoadModelParams(path, wide).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsGarbageFile) {
  const std::string path = TempPath("privim_model_garbage.ckpt");
  {
    std::ofstream out(path);
    out << "definitely not a checkpoint\n";
  }
  EXPECT_FALSE(LoadModelConfig(path).ok());
  Rng rng(8);
  GnnModel model(SmallConfig(), rng);
  EXPECT_FALSE(LoadModelParams(path, model).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileFails) {
  EXPECT_EQ(LoadModelConfig("/no/such/file.ckpt").status().code(),
            StatusCode::kIoError);
}

TEST(SerializationTest, LoadModelRebuildsFromHeader) {
  Rng rng(12);
  GnnModel model(SmallConfig(GnnType::kSage), rng);
  const std::string path = TempPath("privim_model_loadmodel.ckpt");
  ASSERT_TRUE(SaveModel(model, path).ok());

  std::unique_ptr<GnnModel> loaded = std::move(LoadModel(path)).ValueOrDie();
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->config().type, GnnType::kSage);
  EXPECT_EQ(loaded->config().hidden_dim, 8u);
  EXPECT_EQ(loaded->config().num_layers, 2u);

  std::vector<float> want(model.params().num_scalars());
  std::vector<float> got(loaded->params().num_scalars());
  ASSERT_EQ(want.size(), got.size());
  model.params().FlattenParams(want);
  loaded->params().FlattenParams(got);
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(want[i], got[i], 1e-6) << "scalar " << i;
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadModelMissingFileFails) {
  EXPECT_EQ(LoadModel("/no/such/model.ckpt").status().code(),
            StatusCode::kIoError);
}

// Regression: load-path errors must name the offending file and, where
// the failure smells like a version/artifact mix-up, say so — "bad magic"
// alone sends users grepping the codebase instead of checking which file
// they passed (the serving layer surfaces these verbatim).
TEST(SerializationTest, ErrorsNameTheOffendingPath) {
  const std::string missing = TempPath("privim_model_gone.ckpt");
  const Status open_err = LoadModelConfig(missing).status();
  EXPECT_EQ(open_err.code(), StatusCode::kIoError);
  EXPECT_NE(open_err.message().find(missing), std::string::npos)
      << open_err.ToString();

  const std::string garbage = TempPath("privim_model_badmagic.ckpt");
  {
    std::ofstream out(garbage);
    out << "definitely not a checkpoint\n";
  }
  const Status magic_err = LoadModelConfig(garbage).status();
  EXPECT_FALSE(magic_err.ok());
  EXPECT_NE(magic_err.message().find(garbage), std::string::npos)
      << magic_err.ToString();
  // The snapshot-version hint: tells the user this may be an artifact
  // from an incompatible format version, not a corrupted disk.
  EXPECT_NE(magic_err.message().find("version"), std::string::npos)
      << magic_err.ToString();
  std::remove(garbage.c_str());
}

TEST(SerializationTest, ConfigMismatchEnumeratesBothConfigs) {
  Rng rng(41);
  GnnModel model(SmallConfig(GnnType::kGcn), rng);
  const std::string path = TempPath("privim_model_mismatch_msg.ckpt");
  ASSERT_TRUE(SaveModel(model, path).ok());

  GnnConfig bigger = SmallConfig(GnnType::kGcn);
  bigger.hidden_dim = 16;
  Rng rng2(42);
  GnnModel wide(bigger, rng2);
  const Status s = LoadModelParams(path, wide);
  ASSERT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find(path), std::string::npos) << s.ToString();
  // Both shapes spelled out, plus the provenance hint.
  EXPECT_NE(s.message().find("hidden=8"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("hidden=16"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("--gnn"), std::string::npos) << s.ToString();
  std::remove(path.c_str());
}

TEST(SerializationTest, AllBackbonesRoundTrip) {
  for (GnnType type : {GnnType::kGcn, GnnType::kSage, GnnType::kGin,
                       GnnType::kGat, GnnType::kGrat}) {
    Rng rng(10 + static_cast<uint64_t>(type));
    GnnModel model(SmallConfig(type), rng);
    const std::string path = TempPath("privim_model_bb.ckpt");
    ASSERT_TRUE(SaveModel(model, path).ok()) << GnnTypeName(type);
    Rng rng2(99);
    GnnModel loaded(SmallConfig(type), rng2);
    EXPECT_TRUE(LoadModelParams(path, loaded).ok()) << GnnTypeName(type);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace privim
