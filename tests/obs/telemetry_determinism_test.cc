// Telemetry must not weaken the runtime's determinism contract: with a
// fixed seed, every deterministic instrument (event counters, histograms,
// per-iteration train records, the privacy ledger) is identical for every
// thread count. Wall-clock timers, pool statistics, and the stale
// speculation replay counter are diagnostics of *how* the work ran and are
// explicitly outside the contract.

#include <cmath>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "core/privim.h"
#include "graph/generators.h"
#include "obs/telemetry.h"

namespace privim {
namespace {

bool IsDeterministicCounter(std::string_view name) {
  // Replay count depends on speculation timing; runtime.* counters depend
  // on loop chunking (tasks_executed grows with the thread count) or on
  // which scratch slot served which work item (runtime.scratch.* workspace
  // reuse / ball-cache hit rates).
  return name != "sampler.freq.stale_replays" &&
         name.substr(0, 8) != "runtime.";
}

struct RunOutput {
  PrivImRunResult result;
  MetricsSnapshot snapshot;
  std::vector<TrainIterationRecord> train;
  std::string json;
};

RunOutput RunWithThreads(size_t num_threads) {
  Rng gen(77);
  Graph train_g = std::move(BarabasiAlbert(400, 4, gen)).ValueOrDie();
  Graph eval_g = std::move(BarabasiAlbert(400, 4, gen)).ValueOrDie();

  PrivImConfig cfg =
      MakeDefaultConfig(Method::kPrivImStar, 3.0, train_g.num_nodes());
  cfg.train.iterations = 12;
  cfg.train.batch_size = 8;
  cfg.freq.subgraph_size = 16;
  cfg.seed_count = 8;
  cfg.runtime.num_threads = num_threads;

  RunOutput out;
  RunTelemetry telemetry;
  Rng rng(78);
  out.result = std::move(RunMethod(train_g, eval_g, cfg, rng,
                                   /*model_out=*/nullptr, &telemetry))
                   .ValueOrDie();
  out.snapshot = telemetry.metrics.Snapshot();
  out.train = telemetry.train;
  out.json = telemetry.ToJson();
  return out;
}

TEST(TelemetryDeterminismTest, CountersIdenticalAcrossThreadCounts) {
  const RunOutput serial = RunWithThreads(1);
  const RunOutput parallel = RunWithThreads(8);

  // Same seeds, same spread — telemetry must not perturb the run itself.
  EXPECT_EQ(serial.result.seeds, parallel.result.seeds);
  EXPECT_DOUBLE_EQ(serial.result.spread, parallel.result.spread);

  // Every deterministic counter agrees exactly.
  for (const auto& [name, value] : serial.snapshot.counters) {
    if (!IsDeterministicCounter(name)) continue;
    ASSERT_EQ(parallel.snapshot.counters.count(name), 1u) << name;
    EXPECT_EQ(parallel.snapshot.counters.at(name), value) << name;
  }
  // ... and no deterministic counter exists on one side only.
  for (const auto& [name, value] : parallel.snapshot.counters) {
    if (!IsDeterministicCounter(name)) continue;
    EXPECT_EQ(serial.snapshot.counters.count(name), 1u) << name;
  }
}

TEST(TelemetryDeterminismTest, HistogramsIdenticalAcrossThreadCounts) {
  const RunOutput serial = RunWithThreads(1);
  const RunOutput parallel = RunWithThreads(8);

  ASSERT_EQ(serial.snapshot.histograms.size(),
            parallel.snapshot.histograms.size());
  for (const auto& [name, hist] : serial.snapshot.histograms) {
    ASSERT_EQ(parallel.snapshot.histograms.count(name), 1u) << name;
    const auto& other = parallel.snapshot.histograms.at(name);
    EXPECT_EQ(other.bounds, hist.bounds) << name;
    // Observations are folded in at serial commit points, so both the
    // bucket counts and the (order-sensitive) double sum are bit-equal.
    EXPECT_EQ(other.counts, hist.counts) << name;
    EXPECT_EQ(other.total, hist.total) << name;
    EXPECT_DOUBLE_EQ(other.sum, hist.sum) << name;
  }
}

TEST(TelemetryDeterminismTest, TrainRecordsAndLedgerIdentical) {
  const RunOutput serial = RunWithThreads(1);
  const RunOutput parallel = RunWithThreads(8);

  ASSERT_EQ(serial.train.size(), parallel.train.size());
  ASSERT_GT(serial.train.size(), 0u);
  for (size_t i = 0; i < serial.train.size(); ++i) {
    const TrainIterationRecord& a = serial.train[i];
    const TrainIterationRecord& b = parallel.train[i];
    EXPECT_EQ(a.iteration, b.iteration);
    EXPECT_DOUBLE_EQ(a.loss, b.loss) << "iteration " << i;
    EXPECT_DOUBLE_EQ(a.clip_fraction, b.clip_fraction) << "iteration " << i;
    EXPECT_DOUBLE_EQ(a.mean_grad_norm, b.mean_grad_norm)
        << "iteration " << i;
    EXPECT_DOUBLE_EQ(a.noise_l2, b.noise_l2) << "iteration " << i;
    EXPECT_DOUBLE_EQ(a.epsilon, b.epsilon) << "iteration " << i;
  }

  // The privacy ledger is monotone non-decreasing and ends at the spent
  // budget reported for the whole run.
  double prev = 0.0;
  for (const TrainIterationRecord& rec : serial.train) {
    ASSERT_TRUE(std::isfinite(rec.epsilon));
    EXPECT_GE(rec.epsilon, prev);
    prev = rec.epsilon;
  }
  EXPECT_NEAR(serial.train.back().epsilon, serial.result.epsilon_spent,
              1e-9);
}

TEST(TelemetryDeterminismTest, JsonExportHasExpectedSections) {
  const RunOutput out = RunWithThreads(1);
  ASSERT_FALSE(out.json.empty());
  EXPECT_EQ(out.json.front(), '{');
  EXPECT_EQ(out.json.back(), '}');
  for (const char* key :
       {"\"train\"", "\"counters\"", "\"gauges\"", "\"histograms\"",
        "\"timers\"", "\"epsilon\"", "\"clip_fraction\"", "\"noise_l2\""}) {
    EXPECT_NE(out.json.find(key), std::string::npos) << key;
  }
  // NaN/inf are not valid JSON; the writer must emit null instead.
  EXPECT_EQ(out.json.find("nan"), std::string::npos);
  EXPECT_EQ(out.json.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace privim
