#include "obs/metrics.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(1.5);
  g.Set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(HistogramTest, BucketsByUpperBoundInclusive) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  Histogram h(bounds);
  h.Observe(0.5);  // bucket 0 (<= 1)
  h.Observe(1.0);  // bucket 0 (bounds are inclusive)
  h.Observe(1.5);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(9.0);  // overflow
  const std::vector<uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(HistogramTest, ConcurrentObservationsSumExactly) {
  const std::vector<double> bounds = {10.0, 20.0};
  Histogram h(bounds);
  constexpr size_t kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(1.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.total_count(), kThreads * kPerThread);
  // The CAS loop on the double sum must not drop updates either.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kPerThread));
}

// Merge is associative and commutative: (a+b)+c == a+(b+c) == (c+a)+b for
// every bucket. This is what makes merge-at-report safe regardless of how
// per-stage registries are combined.
TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  const std::vector<double> bounds = {1.0, 2.0, 3.0};
  auto fill = [&bounds](std::initializer_list<double> xs) {
    auto h = std::make_unique<Histogram>(bounds);
    for (double x : xs) h->Observe(x);
    return h;
  };
  auto a1 = fill({0.5, 2.5}), b1 = fill({1.5, 9.0}), c1 = fill({3.0});
  auto a2 = fill({0.5, 2.5}), b2 = fill({1.5, 9.0}), c2 = fill({3.0});

  // Left fold: ((a+b)+c).
  a1->Merge(*b1);
  a1->Merge(*c1);
  // Right-then-swap fold: (c+(b)) then into a? Use c2 as accumulator:
  // ((c+a)+b).
  c2->Merge(*a2);
  c2->Merge(*b2);

  EXPECT_EQ(a1->counts(), c2->counts());
  EXPECT_EQ(a1->total_count(), c2->total_count());
  EXPECT_DOUBLE_EQ(a1->sum(), c2->sum());
}

TEST(TimerStatTest, RecordAccumulatesCallsAndTime) {
  TimerStat t;
  t.Record(std::chrono::nanoseconds(1500));
  t.Record(std::chrono::nanoseconds(500));
  EXPECT_EQ(t.calls(), 2u);
  EXPECT_EQ(t.total_nanos(), 2000u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 2e-6);
}

TEST(ScopedTimerTest, NullTargetIsANoOp) {
  // Must not crash, and there is nothing to record into.
  ScopedTimer noop(nullptr);
}

TEST(ScopedTimerTest, RecordsOnDestruction) {
  TimerStat t;
  {
    ScopedTimer scope(&t);
  }
  EXPECT_EQ(t.calls(), 1u);
}

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("x");
  Counter* c2 = reg.GetCounter("x");
  EXPECT_EQ(c1, c2);
  const std::vector<double> bounds = {1.0};
  Histogram* h1 = reg.GetHistogram("h", bounds);
  // Re-registration ignores the (different) bounds and returns the original.
  const std::vector<double> other = {5.0, 6.0};
  Histogram* h2 = reg.GetHistogram("h", other);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds(), bounds);
}

TEST(MetricsRegistryTest, SnapshotReflectsAllInstruments) {
  MetricsRegistry reg;
  reg.GetCounter("events")->Add(7);
  reg.GetGauge("level")->Set(2.5);
  const std::vector<double> bounds = {1.0, 2.0};
  reg.GetHistogram("dist", bounds)->Observe(1.5);
  reg.GetTimer("work")->Add(3, 9000);

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.count("events"), 1u);
  EXPECT_EQ(snap.counters.at("events"), 7u);
  ASSERT_EQ(snap.gauges.count("level"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("level"), 2.5);
  ASSERT_EQ(snap.histograms.count("dist"), 1u);
  EXPECT_EQ(snap.histograms.at("dist").total, 1u);
  EXPECT_EQ(snap.histograms.at("dist").counts,
            (std::vector<uint64_t>{0, 1, 0}));
  ASSERT_EQ(snap.timers.count("work"), 1u);
  EXPECT_EQ(snap.timers.at("work").calls, 3u);
  EXPECT_EQ(snap.timers.at("work").nanos, 9000u);
}

TEST(MetricsRegistryTest, MergeFromSumsAndOverwrites) {
  MetricsRegistry a, b;
  a.GetCounter("n")->Add(2);
  b.GetCounter("n")->Add(3);
  b.GetCounter("only_b")->Add(1);
  a.GetGauge("g")->Set(1.0);
  b.GetGauge("g")->Set(9.0);
  const std::vector<double> bounds = {1.0};
  a.GetHistogram("h", bounds)->Observe(0.5);
  b.GetHistogram("h", bounds)->Observe(2.0);
  a.GetTimer("t")->Add(1, 100);
  b.GetTimer("t")->Add(2, 200);

  a.MergeFrom(b);
  const MetricsSnapshot snap = a.Snapshot();
  EXPECT_EQ(snap.counters.at("n"), 5u);
  EXPECT_EQ(snap.counters.at("only_b"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 9.0);  // Gauges: other wins.
  EXPECT_EQ(snap.histograms.at("h").total, 2u);
  EXPECT_EQ(snap.histograms.at("h").counts, (std::vector<uint64_t>{1, 1}));
  EXPECT_EQ(snap.timers.at("t").calls, 3u);
  EXPECT_EQ(snap.timers.at("t").nanos, 300u);
}

TEST(BucketHelpersTest, LinearBuckets) {
  const std::vector<double> b = LinearBuckets(2.0, 4);
  EXPECT_EQ(b, (std::vector<double>{2.0, 4.0, 6.0, 8.0}));
}

TEST(BucketHelpersTest, ExponentialBuckets) {
  const std::vector<double> b = ExponentialBuckets(1.0, 10.0, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 10.0);
  EXPECT_DOUBLE_EQ(b[2], 100.0);
}

}  // namespace
}  // namespace privim
