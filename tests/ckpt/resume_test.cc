// The resume determinism contract, end to end: a PrivIM* run killed at any
// commit point — via an in-process abort or a hard _exit in a forked child
// — and resumed from the surviving snapshots must reproduce the
// uninterrupted run bit for bit (seeds, spread, epsilon_spent, sigma), at
// any thread count and across thread counts.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "ckpt/binary_io.h"
#include "ckpt/checkpoint.h"
#include "ckpt/failpoint.h"
#include "core/experiment.h"
#include "core/privim.h"

namespace privim {
namespace {

constexpr uint64_t kSeed = 123;

class ResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    instance_ = new DatasetInstance(
        std::move(PrepareDataset(DatasetId::kEmail, /*seed=*/11,
                                 /*seed_count=*/15, /*eval_steps=*/1,
                                 /*scale=*/0.5))
            .ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete instance_;
    instance_ = nullptr;
  }

  void SetUp() override { ClearFailpoints(); }
  void TearDown() override { ClearFailpoints(); }

  static PrivImConfig Config(size_t threads, const std::string& ckpt_dir,
                             bool resume) {
    PrivImConfig cfg = MakeDefaultConfig(
        Method::kPrivImStar, 4.0, instance_->train_graph.num_nodes());
    cfg.train.iterations = 30;
    cfg.train.batch_size = 8;
    cfg.seed_count = 15;
    cfg.freq.subgraph_size = 20;
    cfg.rwr.subgraph_size = 20;
    cfg.runtime.num_threads = threads;
    cfg.checkpoint.dir = ckpt_dir;
    cfg.checkpoint.resume = resume;
    // Snapshots at iterations 7, 14, 21, 28 — several distinct mid-train
    // commit points within the 30-iteration run.
    cfg.checkpoint.train_every = 7;
    return cfg;
  }

  static Result<PrivImRunResult> Run(const PrivImConfig& cfg) {
    Rng rng(kSeed);
    return RunMethod(instance_->train_graph, instance_->eval_graph, cfg,
                     rng);
  }

  /// The reference run: no checkpointing, no interruption, serial.
  static const PrivImRunResult& Baseline() {
    static PrivImRunResult* baseline = new PrivImRunResult(
        std::move(Run(Config(/*threads=*/1, "", false))).ValueOrDie());
    return *baseline;
  }

  /// Bit-identity, not closeness: every EXPECT_EQ here is on purpose.
  static void ExpectIdentical(const PrivImRunResult& got,
                              const PrivImRunResult& want) {
    EXPECT_EQ(got.seeds, want.seeds);
    EXPECT_EQ(got.spread, want.spread);
    EXPECT_EQ(got.epsilon_spent, want.epsilon_spent);
    EXPECT_EQ(got.sigma, want.sigma);
    EXPECT_EQ(got.noise_stddev, want.noise_stddev);
    EXPECT_EQ(got.clip_bound_used, want.clip_bound_used);
    EXPECT_EQ(got.occurrence_bound, want.occurrence_bound);
    EXPECT_EQ(got.container_size, want.container_size);
    EXPECT_EQ(got.audited_max_occurrence, want.audited_max_occurrence);
    EXPECT_EQ(got.final_loss, want.final_loss);
  }

  static std::string ScenarioDir(const std::string& name) {
    const std::string dir =
        (std::filesystem::temp_directory_path() / ("privim_resume_" + name))
            .string();
    std::filesystem::remove_all(dir);
    return dir;
  }

  /// Aborts a checkpointed run at `failpoint` (after `skip` pass-throughs)
  /// with `kill_threads` workers, then resumes it with `resume_threads`
  /// workers and demands the uninterrupted baseline, bit for bit.
  void CheckKillAndResume(const std::string& name,
                          const std::string& failpoint, int skip,
                          size_t kill_threads, size_t resume_threads) {
    SCOPED_TRACE(name + " @ " + failpoint);
    const std::string dir = ScenarioDir(name);

    ArmFailpoint(failpoint, FailpointAction::kStatus, skip);
    Result<PrivImRunResult> interrupted =
        Run(Config(kill_threads, dir, /*resume=*/true));
    ClearFailpoints();
    ASSERT_FALSE(interrupted.ok());
    ASSERT_EQ(interrupted.status().code(), StatusCode::kAborted);
    // The snapshot the fail point guards must have committed before the
    // kill — that ordering is what makes the interruption survivable.
    ASSERT_TRUE(FileExists(PipelineCheckpointPath(dir)));

    PrivImRunResult resumed =
        std::move(Run(Config(resume_threads, dir, /*resume=*/true)))
            .ValueOrDie();
    ExpectIdentical(resumed, Baseline());
    std::filesystem::remove_all(dir);
  }

  static DatasetInstance* instance_;
};

DatasetInstance* ResumeTest::instance_ = nullptr;

TEST_F(ResumeTest, UninterruptedRunIsThreadCountInvariant) {
  PrivImRunResult parallel =
      std::move(Run(Config(/*threads=*/8, "", false))).ValueOrDie();
  ExpectIdentical(parallel, Baseline());
}

TEST_F(ResumeTest, CheckpointingItselfDoesNotChangeResults) {
  const std::string dir = ScenarioDir("passive");
  PrivImRunResult run =
      std::move(Run(Config(/*threads=*/1, dir, false))).ValueOrDie();
  ExpectIdentical(run, Baseline());
  EXPECT_TRUE(FileExists(PipelineCheckpointPath(dir)));
  std::filesystem::remove_all(dir);
}

// ---- The three required commit points, at one and eight threads. ----

TEST_F(ResumeTest, KillAfterExtractSerial) {
  CheckKillAndResume("extract1", "privim.ckpt.after_extract", 0, 1, 1);
}

TEST_F(ResumeTest, KillAfterCalibrateSerial) {
  CheckKillAndResume("calib1", "privim.ckpt.after_calibrate", 0, 1, 1);
}

TEST_F(ResumeTest, KillAfterCalibrateParallel) {
  CheckKillAndResume("calib8", "privim.ckpt.after_calibrate", 0, 8, 8);
}

TEST_F(ResumeTest, KillMidTrainingSerial) {
  // skip=1: die at the second trainer snapshot (iteration 14 of 30).
  CheckKillAndResume("train1", "privim.ckpt.train", 1, 1, 1);
}

TEST_F(ResumeTest, KillMidTrainingParallel) {
  CheckKillAndResume("train8", "privim.ckpt.train", 1, 8, 8);
}

TEST_F(ResumeTest, KillBeforeSelectionSerial) {
  CheckKillAndResume("select1", "privim.ckpt.after_train", 0, 1, 1);
}

TEST_F(ResumeTest, KillBeforeSelectionParallel) {
  CheckKillAndResume("select8", "privim.ckpt.after_train", 0, 8, 8);
}

// ---- Crossing thread counts between the kill and the resume. ----

TEST_F(ResumeTest, InterruptSerialResumeParallel) {
  CheckKillAndResume("cross18", "privim.ckpt.train", 1, 1, 8);
}

TEST_F(ResumeTest, InterruptParallelResumeSerial) {
  CheckKillAndResume("cross81", "privim.ckpt.after_calibrate", 0, 8, 1);
}

// ---- Compound interruption histories. ----

TEST_F(ResumeTest, ThreeSuccessiveKillsStillConverge) {
  const std::string dir = ScenarioDir("chain");
  const char* points[] = {"privim.ckpt.after_extract",
                          "privim.ckpt.after_calibrate",
                          "privim.ckpt.train"};
  for (const char* point : points) {
    ArmFailpoint(point, FailpointAction::kStatus);
    Result<PrivImRunResult> interrupted =
        Run(Config(/*threads=*/1, dir, /*resume=*/true));
    ClearFailpoints();
    ASSERT_EQ(interrupted.status().code(), StatusCode::kAborted) << point;
  }
  ASSERT_TRUE(FileExists(TrainerCheckpointPath(dir)));
  PrivImRunResult resumed =
      std::move(Run(Config(/*threads=*/1, dir, /*resume=*/true)))
          .ValueOrDie();
  ExpectIdentical(resumed, Baseline());
  std::filesystem::remove_all(dir);
}

TEST_F(ResumeTest, ResumingACompletedRunRedoesOnlySelection) {
  const std::string dir = ScenarioDir("completed");
  PrivImRunResult first =
      std::move(Run(Config(/*threads=*/1, dir, /*resume=*/true)))
          .ValueOrDie();
  ExpectIdentical(first, Baseline());
  PrivImRunResult again =
      std::move(Run(Config(/*threads=*/1, dir, /*resume=*/true)))
          .ValueOrDie();
  ExpectIdentical(again, Baseline());
  std::filesystem::remove_all(dir);
}

TEST_F(ResumeTest, ResumeWithNoSnapshotsIsAFreshRun) {
  const std::string dir = ScenarioDir("fresh");
  PrivImRunResult run =
      std::move(Run(Config(/*threads=*/1, dir, /*resume=*/true)))
          .ValueOrDie();
  ExpectIdentical(run, Baseline());
  std::filesystem::remove_all(dir);
}

TEST_F(ResumeTest, MismatchedConfigRefusesToResume) {
  const std::string dir = ScenarioDir("mismatch");
  ArmFailpoint("privim.ckpt.after_extract", FailpointAction::kStatus);
  Result<PrivImRunResult> interrupted =
      Run(Config(/*threads=*/1, dir, /*resume=*/true));
  ClearFailpoints();
  ASSERT_EQ(interrupted.status().code(), StatusCode::kAborted);

  PrivImConfig other = Config(/*threads=*/1, dir, /*resume=*/true);
  other.budget.epsilon = 2.0;  // Any fingerprinted field will do.
  Rng rng(kSeed);
  const Status status =
      RunMethod(instance_->train_graph, instance_->eval_graph, other, rng)
          .status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("refusing to resume"), std::string::npos);
  std::filesystem::remove_all(dir);
}

// ---- The hard-kill variant: _exit(42) in a forked child, no unwinding,
// no flushing — then an in-process resume from whatever hit the disk. ----

TEST_F(ResumeTest, HardKillAtTrainCommitThenResume) {
  const std::string dir = ScenarioDir("hardkill");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: serial run, killed dead at the second trainer snapshot.
    ArmFailpoint("privim.ckpt.train", FailpointAction::kExit, /*skip=*/1);
    Result<PrivImRunResult> r = Run(Config(/*threads=*/1, dir, true));
    (void)r;
    _exit(7);  // Reached only if the fail point never fired.
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), kFailpointExitCode);
  ASSERT_TRUE(FileExists(PipelineCheckpointPath(dir)));
  ASSERT_TRUE(FileExists(TrainerCheckpointPath(dir)));

  PrivImRunResult resumed =
      std::move(Run(Config(/*threads=*/1, dir, /*resume=*/true)))
          .ValueOrDie();
  ExpectIdentical(resumed, Baseline());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace privim
