// The snapshot-file substrate: envelope validation, bit-exact scalar round
// trips, and rejection of every corruption mode a crash can produce.

#include "ckpt/binary_io.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace privim {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

constexpr uint32_t kVersion = 3;
constexpr uint32_t kKind = 7;

TEST(BinaryIoTest, ScalarsRoundTripBitExactly) {
  const std::string path = TempPath("privim_binio_scalars.bin");
  const std::string text("clip=0.5; newline \n and nul \0 inside", 37);
  BinaryWriter w(kVersion, kKind);
  w.WriteU8(200);
  w.WriteU32(0xdeadbeefu);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteI64(-42);
  w.WriteFloat(-0.0f);
  w.WriteFloat(std::numeric_limits<float>::denorm_min());
  w.WriteDouble(0.1);  // Not exactly representable; must round trip anyway.
  w.WriteDouble(std::numeric_limits<double>::infinity());
  w.WriteString(text);
  ASSERT_TRUE(w.Commit(path).ok());

  BinaryReader r = std::move(BinaryReader::Open(path, kVersion, kKind))
                       .ValueOrDie();
  EXPECT_EQ(std::move(r.ReadU8()).ValueOrDie(), 200);
  EXPECT_EQ(std::move(r.ReadU32()).ValueOrDie(), 0xdeadbeefu);
  EXPECT_EQ(std::move(r.ReadU64()).ValueOrDie(), 0x0123456789abcdefULL);
  EXPECT_EQ(std::move(r.ReadI64()).ValueOrDie(), -42);
  const float neg_zero = std::move(r.ReadFloat()).ValueOrDie();
  EXPECT_EQ(neg_zero, 0.0f);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(std::move(r.ReadFloat()).ValueOrDie(),
            std::numeric_limits<float>::denorm_min());
  EXPECT_EQ(std::move(r.ReadDouble()).ValueOrDie(), 0.1);
  EXPECT_EQ(std::move(r.ReadDouble()).ValueOrDie(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(std::move(r.ReadString()).ValueOrDie(), text);
  EXPECT_TRUE(r.AtEnd());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, VectorsRoundTrip) {
  const std::string path = TempPath("privim_binio_vectors.bin");
  const std::vector<float> floats = {1.5f, -2.25f, 0.0f};
  const std::vector<double> doubles = {1e-300, 3.14159, -0.0};
  const std::vector<uint64_t> u64s = {0, 1, ~0ULL};
  const std::vector<size_t> sizes = {7, 0, 123456};
  const std::vector<uint32_t> u32s = {9u, 0xffffffffu};
  const std::vector<float> empty;
  BinaryWriter w(kVersion, kKind);
  w.WriteFloatVec(floats);
  w.WriteDoubleVec(doubles);
  w.WriteU64Vec(u64s);
  w.WriteSizeVec(sizes);
  w.WriteU32Vec(u32s);
  w.WriteFloatVec(empty);
  ASSERT_TRUE(w.Commit(path).ok());

  BinaryReader r = std::move(BinaryReader::Open(path, kVersion, kKind))
                       .ValueOrDie();
  EXPECT_EQ(std::move(r.ReadFloatVec()).ValueOrDie(), floats);
  EXPECT_EQ(std::move(r.ReadDoubleVec()).ValueOrDie(), doubles);
  EXPECT_EQ(std::move(r.ReadU64Vec()).ValueOrDie(), u64s);
  EXPECT_EQ(std::move(r.ReadSizeVec()).ValueOrDie(), sizes);
  EXPECT_EQ(std::move(r.ReadU32Vec()).ValueOrDie(), u32s);
  EXPECT_EQ(std::move(r.ReadFloatVec()).ValueOrDie(), empty);
  EXPECT_TRUE(r.AtEnd());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(BinaryReader::Open("/no/such/snapshot.bin", kVersion, kKind)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(FileExists("/no/such/snapshot.bin"));
}

TEST(BinaryIoTest, CommitLeavesNoTempFile) {
  const std::string path = TempPath("privim_binio_commit.bin");
  BinaryWriter w(kVersion, kKind);
  w.WriteU64(1);
  ASSERT_TRUE(w.Commit(path).ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(BinaryIoTest, CommitCreatesParentDirectories) {
  const std::string dir = TempPath("privim_binio_nested");
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/a/b/snapshot.bin";
  BinaryWriter w(kVersion, kKind);
  w.WriteU64(5);
  ASSERT_TRUE(w.Commit(path).ok());
  EXPECT_TRUE(FileExists(path));
  std::filesystem::remove_all(dir);
}

TEST(BinaryIoTest, WrongVersionIsRejectedNamingBoth) {
  const std::string path = TempPath("privim_binio_version.bin");
  BinaryWriter w(kVersion, kKind);
  w.WriteU64(1);
  ASSERT_TRUE(w.Commit(path).ok());
  const Status status =
      BinaryReader::Open(path, kVersion + 1, kKind).status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("3"), std::string::npos);
  EXPECT_NE(status.message().find("4"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, WrongKindIsRejected) {
  const std::string path = TempPath("privim_binio_kind.bin");
  BinaryWriter w(kVersion, kKind);
  w.WriteU64(1);
  ASSERT_TRUE(w.Commit(path).ok());
  EXPECT_FALSE(BinaryReader::Open(path, kVersion, kKind + 1).ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, WrongMagicIsRejected) {
  const std::string path = TempPath("privim_binio_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACKPTxxxxxxxxxxxxxxxxxxxxxxxxxxxx";
  }
  EXPECT_FALSE(BinaryReader::Open(path, kVersion, kKind).ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, PayloadCorruptionFailsChecksum) {
  const std::string path = TempPath("privim_binio_corrupt.bin");
  BinaryWriter w(kVersion, kKind);
  w.WriteU64(0x1122334455667788ULL);
  w.WriteDouble(2.5);
  ASSERT_TRUE(w.Commit(path).ok());

  // Flip one payload byte (header is 8 magic + 4 version + 4 kind + 8 len).
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(24 + 3);
  char byte = 0;
  f.seekg(24 + 3);
  f.read(&byte, 1);
  byte ^= 0x40;
  f.seekp(24 + 3);
  f.write(&byte, 1);
  f.close();

  EXPECT_FALSE(BinaryReader::Open(path, kVersion, kKind).ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, TruncatedFileIsRejected) {
  const std::string path = TempPath("privim_binio_trunc.bin");
  BinaryWriter w(kVersion, kKind);
  w.WriteU64(1);
  w.WriteU64(2);
  w.WriteU64(3);
  ASSERT_TRUE(w.Commit(path).ok());
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 6);
  EXPECT_FALSE(BinaryReader::Open(path, kVersion, kKind).ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ReadPastEndFailsInsteadOfFabricating) {
  const std::string path = TempPath("privim_binio_overread.bin");
  BinaryWriter w(kVersion, kKind);
  w.WriteU32(11);
  ASSERT_TRUE(w.Commit(path).ok());
  BinaryReader r = std::move(BinaryReader::Open(path, kVersion, kKind))
                       .ValueOrDie();
  EXPECT_EQ(std::move(r.ReadU32()).ValueOrDie(), 11u);
  EXPECT_FALSE(r.ReadU64().ok());
}

TEST(BinaryIoTest, Fnv1aIsStableAndSeedSensitive) {
  const std::vector<uint8_t> bytes = {1, 2, 3, 4};
  const uint64_t a = Fnv1a(bytes);
  EXPECT_EQ(a, Fnv1a(bytes));
  EXPECT_NE(a, Fnv1a(bytes, /*seed=*/123));
  EXPECT_NE(a, Fnv1a(std::vector<uint8_t>{1, 2, 3}));
}

}  // namespace
}  // namespace privim
