// Snapshot round trips for every piece of durable state: trainer state
// (params + optimizer moments + RNG + accumulators), pipeline state
// (container, accountant ledger, model), and the version/kind gatekeeping
// that stops a stale or foreign file from being misapplied.

#include "ckpt/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/binary_io.h"
#include "graph/generators.h"

namespace privim {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TrainerState MakeTrainerState() {
  TrainerState state;
  state.iteration = 37;
  state.params = {0.5f, -1.25f, 3.0f, 0.0f};
  state.optimizer.kind = "adam";
  state.optimizer.step = 37;
  state.optimizer.m = {0.1f, -0.2f, 0.3f, 0.4f};
  state.optimizer.v = {0.01f, 0.02f, 0.03f, 0.04f};
  Rng rng(123);
  rng.Gaussian();  // Leave a Box-Muller spare pending.
  state.rng = rng.SaveState();
  state.tail_sum = {1.0000000001, -2.5, 0.125, 9e99};
  state.tail_count = 7;
  state.losses = {0.9, 0.8, 0.7};
  state.grad_norms = {1.5, 1.4, 1.3};
  state.norm_accum = 4.2;
  state.norm_count = 3;
  return state;
}

TEST(SnapshotRoundTripTest, TrainerStateRoundTripsExactly) {
  const std::string path = TempPath("privim_snap_trainer.ckpt");
  const TrainerState want = MakeTrainerState();
  ASSERT_TRUE(SaveTrainerState(want, path).ok());
  const TrainerState got = std::move(LoadTrainerState(path)).ValueOrDie();
  EXPECT_EQ(got, want);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, RestoredRngContinuesTheExactDrawSequence) {
  const std::string path = TempPath("privim_snap_rng.ckpt");
  Rng original(0xabcdef);
  // Mixed draws, ending on an odd Gaussian count so the spare is pending —
  // the subtlest piece of RNG state a resume must not lose.
  for (int i = 0; i < 5; ++i) original.NextUint64();
  original.Gaussian();

  TrainerState state;
  state.rng = original.SaveState();
  ASSERT_TRUE(SaveTrainerState(state, path).ok());
  const TrainerState loaded = std::move(LoadTrainerState(path)).ValueOrDie();

  Rng resumed = Rng::FromState(loaded.rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(resumed.Gaussian(), original.Gaussian()) << "draw " << i;
    EXPECT_EQ(resumed.NextUint64(), original.NextUint64()) << "draw " << i;
  }
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, PipelineStateRoundTripsEveryStageField) {
  const std::string path = TempPath("privim_snap_pipeline.ckpt");
  Rng graph_rng(5);
  Graph g = std::move(ErdosRenyi(12, 0.3, true, graph_rng)).ValueOrDie();

  PipelineState want;
  want.stage = PipelineStage::kCalibrated;
  want.fingerprint = 0x1234567890abcdefULL;
  Rng rng(77);
  rng.Gaussian();
  want.rng = rng.SaveState();
  Subgraph sub;
  sub.nodes = {3, 1, 7};
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.5f).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 0.25f).ok());
  sub.local = std::move(b.Build()).ValueOrDie();
  want.container.Add(sub);
  Subgraph sub2;
  sub2.nodes = {2};
  GraphBuilder b2(1);
  sub2.local = std::move(b2.Build()).ValueOrDie();
  want.container.Add(sub2);
  want.occurrence_bound = 4;
  want.container_size = 2;
  want.stage1_count = 1;
  want.stage2_count = 1;
  want.audited_max_occurrence = 3;
  want.preprocessing_seconds = 1.5;
  want.accountant.spec.max_occurrences = 4;
  want.accountant.spec.container_size = 2;
  want.accountant.spec.batch_size = 8;
  want.accountant.spec.iterations = 30;
  want.accountant.spec.clip_bound = 0.75;
  want.accountant.sigma = 2.25;
  want.accountant.delta = 1e-5;
  want.accountant.epsilon_spent = 1.9999999999;
  want.accountant.ledger = {0.1, 0.30000000000000004, 0.7, 1.9999999999};
  want.clip_bound = 0.75;
  want.learning_rate = 0.01f;
  want.noise_stddev = 1.6875;
  want.noise_kind = 1;
  want.batch_size = 8;
  want.model_params = {1.0f, 2.0f, -3.5f};
  want.per_epoch_seconds = 0.25;
  want.final_loss = 0.4242;
  ASSERT_TRUE(SavePipelineState(want, path).ok());

  const PipelineState got = std::move(LoadPipelineState(path)).ValueOrDie();
  EXPECT_EQ(got.stage, want.stage);
  EXPECT_EQ(got.fingerprint, want.fingerprint);
  EXPECT_EQ(got.rng, want.rng);
  ASSERT_EQ(got.container.size(), want.container.size());
  for (size_t i = 0; i < want.container.size(); ++i) {
    EXPECT_EQ(got.container[i].nodes, want.container[i].nodes);
    EXPECT_EQ(got.container[i].local.Edges(),
              want.container[i].local.Edges());
    EXPECT_EQ(got.container[i].local.num_nodes(),
              want.container[i].local.num_nodes());
  }
  EXPECT_EQ(got.occurrence_bound, want.occurrence_bound);
  EXPECT_EQ(got.container_size, want.container_size);
  EXPECT_EQ(got.stage1_count, want.stage1_count);
  EXPECT_EQ(got.stage2_count, want.stage2_count);
  EXPECT_EQ(got.audited_max_occurrence, want.audited_max_occurrence);
  EXPECT_EQ(got.preprocessing_seconds, want.preprocessing_seconds);
  // The accountant — spec, sigma, and the ledger — must be bit-exact:
  // this is what makes resumed epsilon_spent identical, not just close.
  EXPECT_EQ(got.accountant, want.accountant);
  EXPECT_EQ(got.clip_bound, want.clip_bound);
  EXPECT_EQ(got.learning_rate, want.learning_rate);
  EXPECT_EQ(got.noise_stddev, want.noise_stddev);
  EXPECT_EQ(got.noise_kind, want.noise_kind);
  EXPECT_EQ(got.batch_size, want.batch_size);
  EXPECT_EQ(got.model_params, want.model_params);
  EXPECT_EQ(got.per_epoch_seconds, want.per_epoch_seconds);
  EXPECT_EQ(got.final_loss, want.final_loss);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, MissingCheckpointIsNotFound) {
  EXPECT_EQ(LoadTrainerState("/no/such/train.ckpt").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LoadPipelineState("/no/such/pipeline.ckpt").status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotRoundTripTest, FutureVersionIsRejected) {
  const std::string path = TempPath("privim_snap_future.ckpt");
  // Forge a structurally valid file with a version this build has never
  // heard of (kind 1 = trainer). The loader must refuse, not guess.
  BinaryWriter w(/*version=*/999, /*kind=*/1);
  w.WriteU64(0);
  ASSERT_TRUE(w.Commit(path).ok());
  const Status status = LoadTrainerState(path).status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("999"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, KindMismatchIsRejected) {
  const std::string path = TempPath("privim_snap_kind.ckpt");
  TrainerState state = MakeTrainerState();
  ASSERT_TRUE(SaveTrainerState(state, path).ok());
  // A trainer snapshot is not a pipeline snapshot, even at equal versions.
  EXPECT_FALSE(LoadPipelineState(path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, CheckpointPathsLiveInTheGivenDir) {
  EXPECT_EQ(PipelineCheckpointPath("/tmp/run"), "/tmp/run/pipeline.ckpt");
  EXPECT_EQ(TrainerCheckpointPath("/tmp/run"), "/tmp/run/train.ckpt");
}

TEST(SnapshotRoundTripTest, MetricsCountWritesAndRestores) {
  const std::string path = TempPath("privim_snap_metrics.ckpt");
  MetricsRegistry metrics;
  TrainerState state = MakeTrainerState();
  ASSERT_TRUE(SaveTrainerState(state, path, &metrics).ok());
  ASSERT_TRUE(LoadTrainerState(path, &metrics).ok());
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("ckpt.writes"), 1u);
  EXPECT_EQ(snap.counters.at("ckpt.restores"), 1u);
  EXPECT_GT(snap.counters.at("ckpt.write_bytes"), 0u);
  // Restored bytes must reflect the payload actually parsed, not zero.
  EXPECT_EQ(snap.counters.at("ckpt.restore_bytes"),
            snap.counters.at("ckpt.write_bytes"));
  EXPECT_EQ(snap.timers.at("ckpt.write").calls, 1u);
  EXPECT_EQ(snap.timers.at("ckpt.restore").calls, 1u);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, GraphFingerprintMatchesContentNotIdentity) {
  // Two independently built graphs with the same content must agree; any
  // content change (an edge weight here) must not.
  GraphBuilder b1(4);
  ASSERT_TRUE(b1.AddEdge(0, 1, 0.5f).ok());
  ASSERT_TRUE(b1.AddEdge(2, 3, 0.25f).ok());
  Graph g1 = std::move(b1.Build()).ValueOrDie();
  GraphBuilder b2(4);
  ASSERT_TRUE(b2.AddEdge(0, 1, 0.5f).ok());
  ASSERT_TRUE(b2.AddEdge(2, 3, 0.25f).ok());
  Graph g2 = std::move(b2.Build()).ValueOrDie();
  GraphBuilder b3(4);
  ASSERT_TRUE(b3.AddEdge(0, 1, 0.5f).ok());
  ASSERT_TRUE(b3.AddEdge(2, 3, 0.75f).ok());
  Graph g3 = std::move(b3.Build()).ValueOrDie();

  EXPECT_EQ(GraphContentFingerprint(g1), GraphContentFingerprint(g2));
  EXPECT_NE(GraphContentFingerprint(g1), GraphContentFingerprint(g3));
  EXPECT_NE(GraphContentFingerprint(g1),
            GraphContentFingerprint(g1, /*seed=*/17));
}

}  // namespace
}  // namespace privim
