// The fault-injection harness itself: arming semantics, skip counting,
// self-disarm of the kStatus action, and spec parsing. The kExit action is
// exercised end to end by resume_test.cc (it kills the process, so it can
// only be tested from a parent).

#include "ckpt/failpoint.h"

#include <gtest/gtest.h>

namespace privim {
namespace {

// Every test starts and ends disarmed so order (and a stale
// PRIVIM_FAILPOINT in the test environment) cannot leak between cases.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { ClearFailpoints(); }
  void TearDown() override { ClearFailpoints(); }
};

TEST_F(FailpointTest, UnarmedIsOk) {
  EXPECT_TRUE(Failpoint("privim.ckpt.train").ok());
  EXPECT_TRUE(Failpoint("anything.at.all").ok());
}

TEST_F(FailpointTest, StatusActionFiresOnceThenDisarms) {
  ArmFailpoint("privim.ckpt.train", FailpointAction::kStatus);
  const Status first = Failpoint("privim.ckpt.train");
  EXPECT_EQ(first.code(), StatusCode::kAborted);
  EXPECT_NE(first.message().find("privim.ckpt.train"), std::string::npos);
  // A kStatus fail point disarms itself: the resumed run passes through.
  EXPECT_TRUE(Failpoint("privim.ckpt.train").ok());
}

TEST_F(FailpointTest, SkipPassesThroughThatManyHits) {
  ArmFailpoint("privim.ckpt.train", FailpointAction::kStatus, /*skip=*/2);
  EXPECT_TRUE(Failpoint("privim.ckpt.train").ok());
  EXPECT_TRUE(Failpoint("privim.ckpt.train").ok());
  EXPECT_EQ(Failpoint("privim.ckpt.train").code(), StatusCode::kAborted);
}

TEST_F(FailpointTest, OtherNamesPassThrough) {
  ArmFailpoint("privim.ckpt.after_extract", FailpointAction::kStatus);
  EXPECT_TRUE(Failpoint("privim.ckpt.train").ok());
  EXPECT_TRUE(Failpoint("privim.ckpt.after_calibrate").ok());
  // The armed one still fires afterwards (mismatches consume nothing).
  EXPECT_EQ(Failpoint("privim.ckpt.after_extract").code(),
            StatusCode::kAborted);
}

TEST_F(FailpointTest, ReArmingReplacesThePreviousFailpoint) {
  ArmFailpoint("a", FailpointAction::kStatus);
  ArmFailpoint("b", FailpointAction::kStatus);
  EXPECT_TRUE(Failpoint("a").ok());
  EXPECT_EQ(Failpoint("b").code(), StatusCode::kAborted);
}

TEST_F(FailpointTest, ClearDisarms) {
  ArmFailpoint("privim.ckpt.train", FailpointAction::kStatus);
  ClearFailpoints();
  EXPECT_TRUE(Failpoint("privim.ckpt.train").ok());
}

TEST_F(FailpointTest, ParseBareNameDefaultsToExit) {
  FailpointSpec spec =
      std::move(ParseFailpointSpec("privim.ckpt.train")).ValueOrDie();
  EXPECT_EQ(spec.name, "privim.ckpt.train");
  EXPECT_EQ(spec.action, FailpointAction::kExit);
  EXPECT_EQ(spec.skip, 0);
}

TEST_F(FailpointTest, ParseActionAndSkipTokens) {
  FailpointSpec spec =
      std::move(ParseFailpointSpec("p:status:skip=3")).ValueOrDie();
  EXPECT_EQ(spec.name, "p");
  EXPECT_EQ(spec.action, FailpointAction::kStatus);
  EXPECT_EQ(spec.skip, 3);

  spec = std::move(ParseFailpointSpec("p:exit")).ValueOrDie();
  EXPECT_EQ(spec.action, FailpointAction::kExit);
  EXPECT_EQ(spec.skip, 0);
}

TEST_F(FailpointTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFailpointSpec("").ok());
  EXPECT_FALSE(ParseFailpointSpec(":status").ok());
  EXPECT_FALSE(ParseFailpointSpec("p:bogus").ok());
  EXPECT_FALSE(ParseFailpointSpec("p:skip=").ok());
  EXPECT_FALSE(ParseFailpointSpec("p:skip=abc").ok());
}

TEST_F(FailpointTest, ExitCodeIsDistinctive) {
  // The contract resume_test.cc's subprocess assertions rest on.
  EXPECT_EQ(kFailpointExitCode, 42);
}

}  // namespace
}  // namespace privim
