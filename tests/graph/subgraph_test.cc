#include "graph/subgraph.h"

#include <gtest/gtest.h>

namespace privim {
namespace {

Graph MakeSquareWithDiagonal() {
  GraphBuilder b(5);
  EXPECT_TRUE(b.AddEdge(0, 1, 0.1f).ok());
  EXPECT_TRUE(b.AddEdge(1, 2, 0.2f).ok());
  EXPECT_TRUE(b.AddEdge(2, 3, 0.3f).ok());
  EXPECT_TRUE(b.AddEdge(3, 0, 0.4f).ok());
  EXPECT_TRUE(b.AddEdge(0, 2, 0.5f).ok());
  EXPECT_TRUE(b.AddEdge(4, 0, 0.6f).ok());
  return std::move(b.Build()).ValueOrDie();
}

TEST(InduceSubgraphTest, KeepsOnlyInternalEdges) {
  Graph g = MakeSquareWithDiagonal();
  Subgraph sub = std::move(InduceSubgraph(g, {0, 1, 2})).ValueOrDie();
  EXPECT_EQ(sub.size(), 3u);
  // Local ids follow the node list order: 0->0, 1->1, 2->2.
  EXPECT_EQ(sub.local.num_edges(), 3u);  // 0->1, 1->2, 0->2.
  EXPECT_TRUE(sub.local.HasEdge(0, 1));
  EXPECT_TRUE(sub.local.HasEdge(1, 2));
  EXPECT_TRUE(sub.local.HasEdge(0, 2));
  EXPECT_FALSE(sub.local.HasEdge(2, 0));
}

TEST(InduceSubgraphTest, PreservesWeights) {
  Graph g = MakeSquareWithDiagonal();
  Subgraph sub = std::move(InduceSubgraph(g, {0, 2})).ValueOrDie();
  ASSERT_TRUE(sub.local.HasEdge(0, 1));  // Original 0 -> 2.
  EXPECT_FLOAT_EQ(sub.local.OutWeights(0)[0], 0.5f);
}

TEST(InduceSubgraphTest, NodeListOrderDefinesLocalIds) {
  Graph g = MakeSquareWithDiagonal();
  Subgraph sub = std::move(InduceSubgraph(g, {3, 0})).ValueOrDie();
  EXPECT_EQ(sub.nodes[0], 3u);
  EXPECT_EQ(sub.nodes[1], 0u);
  // Original 3 -> 0 becomes local 0 -> 1.
  EXPECT_TRUE(sub.local.HasEdge(0, 1));
  EXPECT_FALSE(sub.local.HasEdge(1, 0));
}

TEST(InduceSubgraphTest, SingletonHasNoEdges) {
  Graph g = MakeSquareWithDiagonal();
  Subgraph sub = std::move(InduceSubgraph(g, {4})).ValueOrDie();
  EXPECT_EQ(sub.local.num_edges(), 0u);
}

TEST(InduceSubgraphTest, RejectsDuplicates) {
  Graph g = MakeSquareWithDiagonal();
  EXPECT_FALSE(InduceSubgraph(g, {0, 0}).ok());
}

TEST(InduceSubgraphTest, RejectsOutOfRange) {
  Graph g = MakeSquareWithDiagonal();
  EXPECT_FALSE(InduceSubgraph(g, {0, 99}).ok());
}

TEST(InduceSubgraphTest, FullNodeSetReproducesGraph) {
  Graph g = MakeSquareWithDiagonal();
  Subgraph sub =
      std::move(InduceSubgraph(g, {0, 1, 2, 3, 4})).ValueOrDie();
  EXPECT_EQ(sub.local.num_edges(), g.num_edges());
  EXPECT_EQ(sub.local.Edges(), g.Edges());
}

}  // namespace
}  // namespace privim
