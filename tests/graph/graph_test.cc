#include "graph/graph.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace privim {
namespace {

Graph MakeTriangle() {
  GraphBuilder b(3);
  EXPECT_TRUE(b.AddEdge(0, 1, 0.5f).ok());
  EXPECT_TRUE(b.AddEdge(1, 2, 0.25f).ok());
  EXPECT_TRUE(b.AddEdge(2, 0, 1.0f).ok());
  return std::move(b.Build()).ValueOrDie();
}

TEST(GraphBuilderTest, BuildsCsrBothDirections) {
  Graph g = MakeTriangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  ASSERT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  EXPECT_FLOAT_EQ(g.OutWeights(0)[0], 0.5f);
  ASSERT_EQ(g.InNeighbors(0).size(), 1u);
  EXPECT_EQ(g.InNeighbors(0)[0], 2u);
  EXPECT_FLOAT_EQ(g.InWeights(0)[0], 1.0f);
}

TEST(GraphBuilderTest, RejectsOutOfRange) {
  GraphBuilder b(2);
  EXPECT_EQ(b.AddEdge(0, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.AddEdge(7, 0).code(), StatusCode::kOutOfRange);
}

TEST(GraphBuilderTest, RejectsSelfLoops) {
  GraphBuilder b(2);
  EXPECT_EQ(b.AddEdge(1, 1).code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsInvalidWeights) {
  GraphBuilder b(2);
  EXPECT_EQ(b.AddEdge(0, 1, -0.1f).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.AddEdge(0, 1, 1.5f).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(b.AddEdge(0, 1, 0.0f).ok());
  EXPECT_TRUE(b.AddEdge(1, 0, 1.0f).ok());
}

TEST(GraphBuilderTest, DeduplicatesParallelArcs) {
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.5f).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 0.9f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, UndirectedAddsBothArcs) {
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddUndirectedEdge(0, 1, 0.7f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphTest, DegreesAndAverage) {
  Graph g = MakeTriangle();
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(g.OutDegree(u), 1u);
    EXPECT_EQ(g.InDegree(u), 1u);
  }
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
  EXPECT_EQ(g.MaxInDegree(), 1u);
}

TEST(GraphTest, HasEdgeUsesBinarySearch) {
  GraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  for (NodeId v = 1; v < 5; ++v) EXPECT_TRUE(g.HasEdge(0, v));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(2, 3));
}

// HasEdge's binary search is only correct if Build() leaves every CSR row
// sorted and duplicate-free; pin both invariants and cross-check HasEdge
// against a brute-force scan on an irregular graph (edges inserted in
// descending order, some repeated).
TEST(GraphTest, HasEdgeMatchesBruteForceOnSortedDuplicateFreeRows) {
  constexpr NodeId kNodes = 23;
  GraphBuilder b(kNodes);
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (NodeId u = 0; u < kNodes; ++u) {
    for (NodeId v = kNodes; v-- > 0;) {
      if (v != u && (u * 7 + v * 13) % 5 == 0) arcs.emplace_back(u, v);
    }
  }
  for (const auto& [u, v] : arcs) {
    ASSERT_TRUE(b.AddEdge(u, v).ok());
    ASSERT_TRUE(b.AddEdge(u, v).ok());  // Duplicates must collapse.
  }
  Graph g = std::move(b.Build()).ValueOrDie();

  for (NodeId u = 0; u < kNodes; ++u) {
    const std::span<const NodeId> row = g.OutNeighbors(u);
    for (size_t i = 1; i < row.size(); ++i) {
      EXPECT_LT(row[i - 1], row[i]) << "row " << u << " not sorted/unique";
    }
    for (NodeId v = 0; v < kNodes; ++v) {
      bool brute = false;
      for (const NodeId w : row) brute = brute || w == v;
      EXPECT_EQ(g.HasEdge(u, v), brute) << u << " -> " << v;
    }
  }
}

TEST(GraphTest, EdgesEnumerationRoundTrips) {
  Graph g = MakeTriangle();
  const std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  GraphBuilder b(3);
  for (const Edge& e : edges) {
    ASSERT_TRUE(b.AddEdge(e.src, e.dst, e.weight).ok());
  }
  Graph g2 = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g2.Edges(), edges);
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder b(4);
  Graph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.AverageDegree(), 0.0);
  EXPECT_EQ(g.MaxInDegree(), 0u);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_TRUE(g.OutNeighbors(u).empty());
    EXPECT_TRUE(g.InNeighbors(u).empty());
  }
}

TEST(GraphTest, InOutConsistency) {
  // Every out-arc must appear exactly once as an in-arc.
  GraphBuilder b(6);
  ASSERT_TRUE(b.AddEdge(0, 3).ok());
  ASSERT_TRUE(b.AddEdge(1, 3).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  ASSERT_TRUE(b.AddEdge(3, 4).ok());
  ASSERT_TRUE(b.AddEdge(5, 0).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  size_t out_total = 0, in_total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out_total += g.OutDegree(u);
    in_total += g.InDegree(u);
  }
  EXPECT_EQ(out_total, in_total);
  EXPECT_EQ(out_total, g.num_edges());
  auto ins = g.InNeighbors(3);
  EXPECT_EQ(std::vector<NodeId>(ins.begin(), ins.end()),
            (std::vector<NodeId>{0, 1, 2}));
}

}  // namespace
}  // namespace privim
