#include "graph/graph.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace privim {
namespace {

Graph MakeTriangle() {
  GraphBuilder b(3);
  EXPECT_TRUE(b.AddEdge(0, 1, 0.5f).ok());
  EXPECT_TRUE(b.AddEdge(1, 2, 0.25f).ok());
  EXPECT_TRUE(b.AddEdge(2, 0, 1.0f).ok());
  return std::move(b.Build()).ValueOrDie();
}

TEST(GraphBuilderTest, BuildsCsrBothDirections) {
  Graph g = MakeTriangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  ASSERT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  EXPECT_FLOAT_EQ(g.OutWeights(0)[0], 0.5f);
  ASSERT_EQ(g.InNeighbors(0).size(), 1u);
  EXPECT_EQ(g.InNeighbors(0)[0], 2u);
  EXPECT_FLOAT_EQ(g.InWeights(0)[0], 1.0f);
}

TEST(GraphBuilderTest, RejectsOutOfRange) {
  GraphBuilder b(2);
  EXPECT_EQ(b.AddEdge(0, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.AddEdge(7, 0).code(), StatusCode::kOutOfRange);
}

TEST(GraphBuilderTest, RejectsSelfLoops) {
  GraphBuilder b(2);
  EXPECT_EQ(b.AddEdge(1, 1).code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsInvalidWeights) {
  GraphBuilder b(2);
  EXPECT_EQ(b.AddEdge(0, 1, -0.1f).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.AddEdge(0, 1, 1.5f).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(b.AddEdge(0, 1, 0.0f).ok());
  EXPECT_TRUE(b.AddEdge(1, 0, 1.0f).ok());
}

TEST(GraphBuilderTest, DeduplicatesParallelArcs) {
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.5f).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 0.9f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, UndirectedAddsBothArcs) {
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddUndirectedEdge(0, 1, 0.7f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphTest, DegreesAndAverage) {
  Graph g = MakeTriangle();
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(g.OutDegree(u), 1u);
    EXPECT_EQ(g.InDegree(u), 1u);
  }
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
  EXPECT_EQ(g.MaxInDegree(), 1u);
}

TEST(GraphTest, HasEdgeUsesBinarySearch) {
  GraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  for (NodeId v = 1; v < 5; ++v) EXPECT_TRUE(g.HasEdge(0, v));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(2, 3));
}

// HasEdge's binary search is only correct if Build() leaves every CSR row
// sorted and duplicate-free; pin both invariants and cross-check HasEdge
// against a brute-force scan on an irregular graph (edges inserted in
// descending order, some repeated).
TEST(GraphTest, HasEdgeMatchesBruteForceOnSortedDuplicateFreeRows) {
  constexpr NodeId kNodes = 23;
  GraphBuilder b(kNodes);
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (NodeId u = 0; u < kNodes; ++u) {
    for (NodeId v = kNodes; v-- > 0;) {
      if (v != u && (u * 7 + v * 13) % 5 == 0) arcs.emplace_back(u, v);
    }
  }
  for (const auto& [u, v] : arcs) {
    ASSERT_TRUE(b.AddEdge(u, v).ok());
    ASSERT_TRUE(b.AddEdge(u, v).ok());  // Duplicates must collapse.
  }
  Graph g = std::move(b.Build()).ValueOrDie();

  for (NodeId u = 0; u < kNodes; ++u) {
    const std::span<const NodeId> row = g.OutNeighbors(u);
    for (size_t i = 1; i < row.size(); ++i) {
      EXPECT_LT(row[i - 1], row[i]) << "row " << u << " not sorted/unique";
    }
    for (NodeId v = 0; v < kNodes; ++v) {
      bool brute = false;
      for (const NodeId w : row) brute = brute || w == v;
      EXPECT_EQ(g.HasEdge(u, v), brute) << u << " -> " << v;
    }
  }
}

TEST(GraphTest, EdgesEnumerationRoundTrips) {
  Graph g = MakeTriangle();
  const std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  GraphBuilder b(3);
  for (const Edge& e : edges) {
    ASSERT_TRUE(b.AddEdge(e.src, e.dst, e.weight).ok());
  }
  Graph g2 = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g2.Edges(), edges);
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder b(4);
  Graph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.AverageDegree(), 0.0);
  EXPECT_EQ(g.MaxInDegree(), 0u);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_TRUE(g.OutNeighbors(u).empty());
    EXPECT_TRUE(g.InNeighbors(u).empty());
  }
}

TEST(GraphTest, InOutConsistency) {
  // Every out-arc must appear exactly once as an in-arc.
  GraphBuilder b(6);
  ASSERT_TRUE(b.AddEdge(0, 3).ok());
  ASSERT_TRUE(b.AddEdge(1, 3).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  ASSERT_TRUE(b.AddEdge(3, 4).ok());
  ASSERT_TRUE(b.AddEdge(5, 0).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  size_t out_total = 0, in_total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out_total += g.OutDegree(u);
    in_total += g.InDegree(u);
  }
  EXPECT_EQ(out_total, in_total);
  EXPECT_EQ(out_total, g.num_edges());
  auto ins = g.InNeighbors(3);
  EXPECT_EQ(std::vector<NodeId>(ins.begin(), ins.end()),
            (std::vector<NodeId>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Streaming build (AddEdgeStream / two-pass counting sort)

TEST(GraphBuilderStreamTest, StreamedBuildMatchesBufferedBuild) {
  // Same irregular edge set (unsorted emission, duplicates) through both
  // input modes must produce identical CSR content.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 17; ++u) {
    for (NodeId v = 17; v-- > 0;) {
      if (v != u && (u * 5 + v * 11) % 3 == 0) {
        edges.push_back(Edge{u, v, static_cast<float>((u + v) % 7) / 7.0f});
      }
    }
  }
  GraphBuilder buffered(17);
  for (const Edge& e : edges) {
    ASSERT_TRUE(buffered.AddEdge(e.src, e.dst, e.weight).ok());
    ASSERT_TRUE(buffered.AddEdge(e.src, e.dst, e.weight).ok());  // Duplicate.
  }
  Graph a = std::move(buffered.Build()).ValueOrDie();

  GraphBuilder streamed(17);
  ASSERT_TRUE(streamed
                  .AddEdgeStream([&edges](EdgeSink& sink) -> Status {
                    for (const Edge& e : edges) {
                      PRIVIM_RETURN_NOT_OK(sink.Add(e.src, e.dst, e.weight));
                      PRIVIM_RETURN_NOT_OK(sink.Add(e.src, e.dst, e.weight));
                    }
                    return Status::OK();
                  })
                  .ok());
  Graph b = std::move(streamed.Build()).ValueOrDie();

  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(GraphBuilderStreamTest, StreamedEdgesAreValidated) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdgeStream([](EdgeSink& sink) { return sink.Add(0, 7); })
                  .ok());
  EXPECT_EQ(b.Build().status().code(), StatusCode::kOutOfRange);

  GraphBuilder c(3);
  ASSERT_TRUE(c.AddEdgeStream([](EdgeSink& sink) { return sink.Add(1, 1); })
                  .ok());
  EXPECT_EQ(c.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderStreamTest, NonReplayableStreamFailsWithInternal) {
  // A stream that emits different edges on the two passes must be detected,
  // not silently corrupt the CSR.
  GraphBuilder b(8);
  int call = 0;
  ASSERT_TRUE(b.AddEdgeStream([call](EdgeSink& sink) mutable -> Status {
                 ++call;
                 for (NodeId u = 0; u < 4; ++u) {
                   // Second pass shifts every source: per-row emission
                   // counts no longer match the counting pass.
                   const NodeId s = call == 1
                                        ? u
                                        : static_cast<NodeId>(u + 4);
                   PRIVIM_RETURN_NOT_OK(
                       sink.Add(s, static_cast<NodeId>((s + 1) % 8)));
                 }
                 return Status::OK();
               })
                  .ok());
  const Result<Graph> r = b.Build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(GraphBuilderStreamTest, MixedBufferedAndStreamedInput) {
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.25f).ok());
  ASSERT_TRUE(b.AddEdgeStream([](EdgeSink& sink) -> Status {
                 PRIVIM_RETURN_NOT_OK(sink.Add(1, 2, 0.5f));
                 return sink.AddUndirected(2, 3, 0.75f);
               })
                  .ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_TRUE(g.HasEdge(3, 2));
}

// ---------------------------------------------------------------------------
// Node-count boundary (size_t -> NodeId truncation seam)

TEST(GraphBuilderTest, RejectsNodeCountsBeyondNodeIdRange) {
  // One past 2^32: Build() must fail with InvalidArgument instead of
  // wrapping the count — and must fail before sizing any per-node array
  // from the bogus count (this test would OOM otherwise).
  GraphBuilder b(static_cast<size_t>(kMaxNodeCount) + 1);
  const Result<Graph> r = b.Build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Lazy in-CSR

TEST(GraphTest, OutOnlyBuildSkipsInCsr) {
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(2, 1).ok());
  GraphBuildOptions opts;
  opts.build_in_csr = false;
  Graph g = std::move(b.Build(opts)).ValueOrDie();
  EXPECT_FALSE(g.has_in_csr());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));

  GraphBuilder full(4);
  ASSERT_TRUE(full.AddEdge(0, 1).ok());
  ASSERT_TRUE(full.AddEdge(2, 1).ok());
  Graph eager = std::move(full.Build()).ValueOrDie();
  EXPECT_LT(g.MemoryFootprintBytes(), eager.MemoryFootprintBytes());
}

TEST(GraphTest, EnsureInCsrMatchesEagerConstruction) {
  // Build the same irregular graph eagerly and lazily; after EnsureInCsr
  // the in-adjacency must be identical (same rows, same order, same
  // weights).
  auto fill = [](GraphBuilder& b) {
    for (NodeId u = 0; u < 19; ++u) {
      for (NodeId v = 19; v-- > 0;) {
        if (v != u && (u * 3 + v * 7) % 4 == 0) {
          ASSERT_TRUE(
              b.AddEdge(u, v, static_cast<float>((u * v) % 5) / 5.0f).ok());
        }
      }
    }
  };
  GraphBuilder eager_b(19), lazy_b(19);
  fill(eager_b);
  fill(lazy_b);
  Graph eager = std::move(eager_b.Build()).ValueOrDie();
  GraphBuildOptions opts;
  opts.build_in_csr = false;
  Graph lazy = std::move(lazy_b.Build(opts)).ValueOrDie();
  ASSERT_FALSE(lazy.has_in_csr());
  ASSERT_TRUE(lazy.EnsureInCsr().ok());
  ASSERT_TRUE(lazy.has_in_csr());
  for (NodeId v = 0; v < 19; ++v) {
    auto ea = eager.InNeighbors(v);
    auto la = lazy.InNeighbors(v);
    ASSERT_EQ(std::vector<NodeId>(ea.begin(), ea.end()),
              std::vector<NodeId>(la.begin(), la.end()))
        << "in-row " << v;
    auto ew = eager.InWeights(v);
    auto lw = lazy.InWeights(v);
    ASSERT_EQ(std::vector<float>(ew.begin(), ew.end()),
              std::vector<float>(lw.begin(), lw.end()))
        << "in-weights " << v;
  }
  EXPECT_EQ(lazy.MaxInDegree(), eager.MaxInDegree());
}

TEST(GraphTest, EnsureInCsrIsIdempotent) {
  // Regression: EnsureInCsr on a graph that already carries its in-CSR
  // must be a no-op, not a rebuild. Sharded extraction and the streaming
  // pipeline call it defensively on every handoff; the in_csr_builds()
  // counter pins that only the first call (or an eager build) pays.
  GraphBuilder lazy_b(5);
  ASSERT_TRUE(lazy_b.AddEdge(0, 1).ok());
  ASSERT_TRUE(lazy_b.AddEdge(3, 1).ok());
  GraphBuildOptions opts;
  opts.build_in_csr = false;
  Graph lazy = std::move(lazy_b.Build(opts)).ValueOrDie();
  EXPECT_EQ(lazy.in_csr_builds(), 0u);
  ASSERT_TRUE(lazy.EnsureInCsr().ok());
  EXPECT_EQ(lazy.in_csr_builds(), 1u);
  const uint64_t fp = lazy.IdentityFingerprint();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(lazy.EnsureInCsr().ok());
  }
  EXPECT_EQ(lazy.in_csr_builds(), 1u);
  EXPECT_EQ(lazy.IdentityFingerprint(), fp);

  GraphBuilder eager_b(5);
  ASSERT_TRUE(eager_b.AddEdge(0, 1).ok());
  Graph eager = std::move(eager_b.Build()).ValueOrDie();
  EXPECT_EQ(eager.in_csr_builds(), 1u);
  ASSERT_TRUE(eager.EnsureInCsr().ok());
  EXPECT_EQ(eager.in_csr_builds(), 1u);
}

// ---------------------------------------------------------------------------
// Offset-width selection

TEST(GraphTest, ForcedWideOffsetsPreserveContent) {
  // narrow_offset_limit = 0 forces the 64-bit offset path that graphs with
  // more than 2^32 arcs take; content must be identical to the narrow path.
  GraphBuilder narrow_b(9), wide_b(9);
  for (NodeId u = 0; u < 9; ++u) {
    for (NodeId v = 0; v < 9; ++v) {
      if (u != v && (u + 2 * v) % 3 == 0) {
        ASSERT_TRUE(narrow_b.AddEdge(u, v).ok());
        ASSERT_TRUE(wide_b.AddEdge(u, v).ok());
      }
    }
  }
  Graph narrow = std::move(narrow_b.Build()).ValueOrDie();
  GraphBuildOptions opts;
  opts.narrow_offset_limit = 0;
  Graph wide = std::move(wide_b.Build(opts)).ValueOrDie();
  EXPECT_EQ(narrow.Edges(), wide.Edges());
  for (NodeId v = 0; v < 9; ++v) {
    auto a = narrow.InNeighbors(v);
    auto b = wide.InNeighbors(v);
    EXPECT_EQ(std::vector<NodeId>(a.begin(), a.end()),
              std::vector<NodeId>(b.begin(), b.end()));
  }
  // The wide graph spends 8 bytes per offset entry instead of 4.
  EXPECT_GT(wide.MemoryFootprintBytes(), narrow.MemoryFootprintBytes());
}

TEST(GraphTest, ForEachEdgeMatchesEdges) {
  Graph g = MakeTriangle();
  std::vector<Edge> streamed;
  g.ForEachEdge([&streamed](NodeId u, NodeId v, float w) {
    streamed.push_back(Edge{u, v, w});
  });
  EXPECT_EQ(streamed, g.Edges());
}

TEST(GraphTest, ForEachEdgeStopsOnError) {
  Graph g = MakeTriangle();
  size_t seen = 0;
  const Status s = g.ForEachEdge([&seen](NodeId, NodeId, float) -> Status {
    if (++seen == 2) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(seen, 2u);
}

TEST(GraphTest, CopiedGraphHasDistinctFingerprint) {
  // The identity fingerprint keys sampler hop-ball caches; a copy lives at
  // different addresses and must not alias the original's cache entries.
  Graph g = MakeTriangle();
  Graph copy = g;
  EXPECT_EQ(copy.Edges(), g.Edges());
  EXPECT_NE(copy.IdentityFingerprint(), g.IdentityFingerprint());
}

}  // namespace
}  // namespace privim
