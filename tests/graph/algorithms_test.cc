#include "graph/algorithms.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace privim {
namespace {

// Path 0 -> 1 -> 2 -> 3 plus a shortcut 0 -> 2.
Graph MakePathWithShortcut() {
  GraphBuilder b(4);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 3).ok());
  EXPECT_TRUE(b.AddEdge(0, 2).ok());
  return std::move(b.Build()).ValueOrDie();
}

TEST(RHopTest, RespectsRadius) {
  Graph g = MakePathWithShortcut();
  EXPECT_EQ(RHopNeighborhood(g, 0, 0), std::vector<NodeId>{0});
  auto r1 = RHopNeighborhood(g, 0, 1);
  std::sort(r1.begin(), r1.end());
  EXPECT_EQ(r1, (std::vector<NodeId>{0, 1, 2}));
  auto r2 = RHopNeighborhood(g, 0, 2);
  std::sort(r2.begin(), r2.end());
  EXPECT_EQ(r2, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(RHopTest, DirectednessMatters) {
  Graph g = MakePathWithShortcut();
  // Node 3 has no out-edges: its ball is itself.
  EXPECT_EQ(RHopNeighborhood(g, 3, 5), std::vector<NodeId>{3});
}

TEST(BfsDistancesTest, ShortestHopCounts) {
  Graph g = MakePathWithShortcut();
  const std::vector<int> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 1);  // Shortcut beats the 2-hop path.
  EXPECT_EQ(dist[3], 2);
}

TEST(BfsDistancesTest, UnreachableIsMinusOne) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  const std::vector<int> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[2], -1);
}

TEST(ComponentsTest, CountsWeakComponents) {
  GraphBuilder b(6);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(2, 1).ok());  // Weakly connects 2 to {0,1}.
  ASSERT_TRUE(b.AddEdge(3, 4).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  const ComponentLabels cl = WeaklyConnectedComponents(g);
  EXPECT_EQ(cl.num_components, 3u);  // {0,1,2}, {3,4}, {5}.
  EXPECT_EQ(cl.label[0], cl.label[1]);
  EXPECT_EQ(cl.label[1], cl.label[2]);
  EXPECT_EQ(cl.label[3], cl.label[4]);
  EXPECT_NE(cl.label[0], cl.label[3]);
  EXPECT_NE(cl.label[0], cl.label[5]);
}

TEST(ThetaProjectionTest, BoundsInDegree) {
  // Star: many sources into node 0.
  const size_t n = 30;
  GraphBuilder b(n);
  for (NodeId u = 1; u < n; ++u) ASSERT_TRUE(b.AddEdge(u, 0).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(5);
  Graph bounded = std::move(ThetaBoundedProjection(g, 10, rng)).ValueOrDie();
  EXPECT_EQ(bounded.InDegree(0), 10u);
  EXPECT_EQ(bounded.num_nodes(), n);
}

TEST(ThetaProjectionTest, LeavesLowDegreeNodesAlone) {
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.5f).ok());
  ASSERT_TRUE(b.AddEdge(2, 3, 0.25f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(5);
  Graph bounded = std::move(ThetaBoundedProjection(g, 10, rng)).ValueOrDie();
  EXPECT_EQ(bounded.num_edges(), 2u);
  // Weights preserved.
  EXPECT_FLOAT_EQ(bounded.OutWeights(0)[0], 0.5f);
}

TEST(ThetaProjectionTest, KeptEdgesAreSubsetOfOriginal) {
  Rng gen_rng(9);
  GraphBuilder b(40);
  for (int i = 0; i < 300; ++i) {
    const NodeId u = static_cast<NodeId>(gen_rng.UniformInt(40));
    const NodeId v = static_cast<NodeId>(gen_rng.UniformInt(40));
    if (u != v) ASSERT_TRUE(b.AddEdge(u, v).ok());
  }
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(11);
  Graph bounded = std::move(ThetaBoundedProjection(g, 3, rng)).ValueOrDie();
  for (const Edge& e : bounded.Edges()) {
    EXPECT_TRUE(g.HasEdge(e.src, e.dst));
  }
  for (NodeId v = 0; v < bounded.num_nodes(); ++v) {
    EXPECT_LE(bounded.InDegree(v), 3u);
  }
}

TEST(ThetaProjectionTest, RejectsZeroTheta) {
  GraphBuilder b(2);
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(1);
  EXPECT_FALSE(ThetaBoundedProjection(g, 0, rng).ok());
}

TEST(TransitivityTest, CompleteGraphIsOne) {
  GraphBuilder b(5);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 5; ++v) {
      if (u != v) ASSERT_TRUE(b.AddEdge(u, v).ok());
    }
  }
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(3);
  // All wedges u->v->w with u != w are closed in a complete digraph.
  EXPECT_NEAR(TransitivityEstimate(g, rng), 1.0, 1e-9);
}

TEST(TransitivityTest, PathHasNoTriangles) {
  Graph g = MakePathWithShortcut();
  Rng rng(3);
  // Wedge 0->1->2 is closed by shortcut 0->2; wedges via node 2 are open.
  const double t = TransitivityEstimate(g, rng);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1.0);
}

}  // namespace
}  // namespace privim
