// Robustness tests for the edge-list parser: the loader is the library's
// only untrusted-input surface, so hammer it with malformed, hostile, and
// borderline inputs.

#include <gtest/gtest.h>

#include "graph/io.h"

namespace privim {
namespace {

TEST(IoRobustnessTest, AcceptsMixedWhitespace) {
  Graph g = std::move(ParseEdgeList("0\t1\n2   3\n")).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoRobustnessTest, AcceptsTrailingWhitespaceAndCrLf) {
  Graph g = std::move(ParseEdgeList("0 1 \r\n1 2\r\n")).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoRobustnessTest, RejectsNegativeIds) {
  // Negative tokens fail uint64 extraction.
  EXPECT_FALSE(ParseEdgeList("-1 2\n").ok());
}

TEST(IoRobustnessTest, RejectsPartialLine) {
  EXPECT_FALSE(ParseEdgeList("0 1\n2\n").ok());
}

TEST(IoRobustnessTest, RejectsTextTokens) {
  EXPECT_FALSE(ParseEdgeList("alice bob\n").ok());
}

TEST(IoRobustnessTest, EmptyInputYieldsEmptyGraph) {
  Graph g = std::move(ParseEdgeList("")).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  Graph g2 = std::move(ParseEdgeList("# only comments\n\n")).ValueOrDie();
  EXPECT_EQ(g2.num_nodes(), 0u);
}

TEST(IoRobustnessTest, DuplicateEdgesDeduplicated) {
  Graph g = std::move(ParseEdgeList("0 1\n0 1\n0 1\n")).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(IoRobustnessTest, WeightOutOfRangeRejected) {
  // The graph builder enforces IC probabilities in [0,1].
  EXPECT_FALSE(ParseEdgeList("0 1 1.5\n").ok());
  EXPECT_FALSE(ParseEdgeList("0 1 -0.5\n").ok());
}

TEST(IoRobustnessTest, LargeSparseIdsDensify) {
  Graph g = std::move(ParseEdgeList("4000000000 4000000001\n"))
                .ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(IoRobustnessTest, ManyLinesParseLinearly) {
  std::string text;
  for (int i = 0; i < 5000; ++i) {
    text += std::to_string(i) + " " + std::to_string(i + 1) + "\n";
  }
  Graph g = std::move(ParseEdgeList(text)).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 5001u);
  EXPECT_EQ(g.num_edges(), 5000u);
}

TEST(IoRobustnessTest, UndirectedSelfLoopDropped) {
  Graph g =
      std::move(ParseEdgeList("5 5\n5 6\n", /*undirected=*/true))
          .ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);  // Only 5<->6.
}

}  // namespace
}  // namespace privim
