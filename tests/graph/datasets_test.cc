#include "graph/datasets.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(DatasetSpecsTest, TableIStatisticsPresent) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 7u);
  // Table I spot checks.
  const DatasetSpec& email = GetDatasetSpec(DatasetId::kEmail);
  EXPECT_EQ(email.name, "Email");
  EXPECT_EQ(email.paper_nodes, 1000u);
  EXPECT_TRUE(email.directed);
  const DatasetSpec& gowalla = GetDatasetSpec(DatasetId::kGowalla);
  EXPECT_EQ(gowalla.paper_nodes, 196000u);
  EXPECT_FALSE(gowalla.directed);
  const DatasetSpec& friendster = GetDatasetSpec(DatasetId::kFriendster);
  EXPECT_EQ(friendster.partitions, 4u);
}

TEST(DatasetSpecsTest, MainExcludesFriendster) {
  const auto main = MainDatasetSpecs();
  EXPECT_EQ(main.size(), 6u);
  for (const DatasetSpec& s : main) {
    EXPECT_NE(s.id, DatasetId::kFriendster);
  }
}

TEST(ParseDatasetIdTest, CaseInsensitive) {
  EXPECT_EQ(*ParseDatasetId("email"), DatasetId::kEmail);
  EXPECT_EQ(*ParseDatasetId("GOWALLA"), DatasetId::kGowalla);
  EXPECT_EQ(*ParseDatasetId("LastFM"), DatasetId::kLastFm);
  EXPECT_FALSE(ParseDatasetId("twitter").ok());
}

class MakeDatasetTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(MakeDatasetTest, ProducesNonTrivialConnectedishGraph) {
  Rng rng(99);
  Graph g = std::move(MakeDataset(GetParam(), rng)).ValueOrDie();
  const DatasetSpec& spec = GetDatasetSpec(GetParam());
  EXPECT_GE(g.num_nodes(), 64u);
  EXPECT_EQ(g.num_nodes(), spec.sim_nodes);
  EXPECT_GT(g.num_edges(), g.num_nodes());  // Denser than a tree.
  // Average degree within a factor ~4 of the paper's (scaled generators
  // cannot match exactly but must be the same order of magnitude).
  EXPECT_GT(g.AverageDegree(), spec.paper_avg_degree / 4.0);
}

TEST_P(MakeDatasetTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  Graph ga = std::move(MakeDataset(GetParam(), a)).ValueOrDie();
  Graph gb = std::move(MakeDataset(GetParam(), b)).ValueOrDie();
  EXPECT_EQ(ga.num_edges(), gb.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, MakeDatasetTest,
    ::testing::Values(DatasetId::kEmail, DatasetId::kBitcoin,
                      DatasetId::kLastFm, DatasetId::kHepPh,
                      DatasetId::kFacebook, DatasetId::kGowalla,
                      DatasetId::kFriendster),
    [](const ::testing::TestParamInfo<DatasetId>& info) {
      return GetDatasetSpec(info.param).name;
    });

TEST(MakeDatasetTest, ScaleShrinksGraph) {
  Rng a(3), b(3);
  Graph full =
      std::move(MakeDataset(DatasetId::kLastFm, a, 1.0)).ValueOrDie();
  Graph half =
      std::move(MakeDataset(DatasetId::kLastFm, b, 0.5)).ValueOrDie();
  EXPECT_NEAR(static_cast<double>(half.num_nodes()),
              static_cast<double>(full.num_nodes()) / 2.0,
              static_cast<double>(full.num_nodes()) * 0.05);
}

TEST(MakeDatasetTest, RejectsTinyScale) {
  Rng rng(3);
  EXPECT_FALSE(MakeDataset(DatasetId::kEmail, rng, 0.01).ok());
}

TEST(MakeDatasetTest, UndirectedDatasetsAreSymmetric) {
  Rng rng(4);
  Graph g = std::move(MakeDataset(DatasetId::kGowalla, rng)).ValueOrDie();
  for (const Edge& e : g.Edges()) {
    ASSERT_TRUE(g.HasEdge(e.dst, e.src));
  }
}

TEST(SplitNodesTest, PartitionsAllNodes) {
  Rng rng(5);
  const NodeSplit split = SplitNodes(101, rng).ValueOrDie();
  EXPECT_EQ(split.train.size() + split.test.size(), 101u);
  std::vector<NodeId> all;
  all.insert(all.end(), split.train.begin(), split.train.end());
  all.insert(all.end(), split.test.begin(), split.test.end());
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(SplitNodesTest, RespectsFraction) {
  Rng rng(6);
  const NodeSplit split = SplitNodes(1000, rng, 0.7).ValueOrDie();
  EXPECT_EQ(split.train.size(), 700u);
  EXPECT_EQ(split.test.size(), 300u);
}

TEST(SplitNodesTest, RejectsCountsBeyondNodeIdRange) {
  Rng rng(8);
  // One past the largest addressable node count: must fail loudly instead
  // of silently truncating to a tiny permutation (and must fail *before*
  // allocating the 2^32-entry permutation).
  Result<NodeSplit> r = SplitNodes(kMaxNodeCount + 1, rng);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SplitNodesTest, RejectsDegenerateFractions) {
  Rng rng(9);
  EXPECT_EQ(SplitNodes(10, rng, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SplitNodes(10, rng, 1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SplitNodesTest, OutputsSorted) {
  Rng rng(7);
  const NodeSplit split = SplitNodes(50, rng).ValueOrDie();
  EXPECT_TRUE(std::is_sorted(split.train.begin(), split.train.end()));
  EXPECT_TRUE(std::is_sorted(split.test.begin(), split.test.end()));
}

}  // namespace
}  // namespace privim
