// Distributional properties of the synthetic dataset stand-ins: the
// substitution argument in DESIGN.md rests on matching degree laws and
// directedness, so assert those properties here instead of trusting the
// generators by inspection.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/datasets.h"

namespace privim {
namespace {

// Tail heaviness proxy: ratio of the maximum degree to the mean degree.
// Power-law graphs have ratios far above Erdos-Renyi's (~2-3).
double HubRatio(const Graph& g, bool out_degree) {
  size_t max_deg = 0;
  double total = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const size_t d = out_degree ? g.OutDegree(u) : g.InDegree(u);
    max_deg = std::max(max_deg, d);
    total += static_cast<double>(d);
  }
  return static_cast<double>(max_deg) /
         std::max(1.0, total / static_cast<double>(g.num_nodes()));
}

TEST(DatasetPropertiesTest, SocialStandInsHaveHeavyTails) {
  // LastFM / Facebook / Gowalla / Friendster mimic social graphs:
  // preferential attachment must produce hubs (>= 8x the mean degree).
  for (DatasetId id : {DatasetId::kLastFm, DatasetId::kFacebook,
                       DatasetId::kGowalla, DatasetId::kFriendster}) {
    Rng rng(1);
    Graph g = std::move(MakeDataset(id, rng)).ValueOrDie();
    EXPECT_GE(HubRatio(g, true), 8.0) << GetDatasetSpec(id).name;
  }
}

TEST(DatasetPropertiesTest, BitcoinHasInDegreeHubs) {
  // Trust networks concentrate incoming trust on a few traders.
  Rng rng(2);
  Graph g = std::move(MakeDataset(DatasetId::kBitcoin, rng)).ValueOrDie();
  EXPECT_GE(HubRatio(g, false), 6.0);
}

TEST(DatasetPropertiesTest, DirectedStandInsAreAsymmetric) {
  for (DatasetId id : {DatasetId::kEmail, DatasetId::kBitcoin}) {
    Rng rng(3);
    Graph g = std::move(MakeDataset(id, rng)).ValueOrDie();
    size_t asymmetric = 0;
    size_t checked = 0;
    for (const Edge& e : g.Edges()) {
      if (++checked > 5000) break;
      if (!g.HasEdge(e.dst, e.src)) ++asymmetric;
    }
    // A genuinely directed graph has a sizeable one-way fraction.
    EXPECT_GT(static_cast<double>(asymmetric) /
                  static_cast<double>(std::min<size_t>(checked, 5000)),
              0.2)
        << GetDatasetSpec(id).name;
  }
}

TEST(DatasetPropertiesTest, CollaborationStandInIsClustered) {
  // HepPh (co-authorship) must be far more transitive than a degree-matched
  // random graph; planted partitions deliver that.
  Rng rng(4);
  Graph hepph = std::move(MakeDataset(DatasetId::kHepPh, rng)).ValueOrDie();
  Rng trng(5);
  const double t_hepph = TransitivityEstimate(hepph, trng);
  EXPECT_GT(t_hepph, 0.1);
  // LastFM's BA stand-in is much less clustered.
  Rng rng2(6);
  Graph lastfm =
      std::move(MakeDataset(DatasetId::kLastFm, rng2)).ValueOrDie();
  Rng trng2(7);
  EXPECT_GT(t_hepph, 3.0 * TransitivityEstimate(lastfm, trng2));
}

TEST(DatasetPropertiesTest, MostNodesInOneWeakComponent) {
  // Sampling-based training assumes walks can move; the stand-ins must be
  // dominated by a giant weakly connected component.
  for (const DatasetSpec& spec : MainDatasetSpecs()) {
    Rng rng(8);
    Graph g = std::move(MakeDataset(spec.id, rng)).ValueOrDie();
    const ComponentLabels cl = WeaklyConnectedComponents(g);
    std::vector<size_t> sizes(cl.num_components, 0);
    for (uint32_t label : cl.label) ++sizes[label];
    const size_t giant = *std::max_element(sizes.begin(), sizes.end());
    EXPECT_GT(static_cast<double>(giant) /
                  static_cast<double>(g.num_nodes()),
              0.9)
        << spec.name;
  }
}

TEST(DatasetPropertiesTest, SimulatedAverageDegreesTrackTableOne) {
  // Within a factor of 2 of the paper's average degree (Friendster is
  // deliberately thinned further; Email's community overlay trims dupes).
  for (const DatasetSpec& spec : MainDatasetSpecs()) {
    Rng rng(9);
    Graph g = std::move(MakeDataset(spec.id, rng)).ValueOrDie();
    EXPECT_GT(g.AverageDegree(), spec.paper_avg_degree / 2.0) << spec.name;
    EXPECT_LT(g.AverageDegree(), spec.paper_avg_degree * 2.0) << spec.name;
  }
}

}  // namespace
}  // namespace privim
