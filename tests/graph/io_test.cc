#include "graph/io.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(ParseEdgeListTest, BasicDirected) {
  Graph g = std::move(ParseEdgeList("0 1\n1 2\n2 0\n")).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(ParseEdgeListTest, CommentsAndBlankLinesSkipped) {
  Graph g = std::move(ParseEdgeList("# header\n\n% other\n0 1\n")).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(ParseEdgeListTest, WeightsParsed) {
  Graph g = std::move(ParseEdgeList("0 1 0.25\n")).ValueOrDie();
  EXPECT_FLOAT_EQ(g.OutWeights(0)[0], 0.25f);
}

TEST(ParseEdgeListTest, SparseIdsDensified) {
  Graph g = std::move(ParseEdgeList("100 200\n200 5000\n")).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(ParseEdgeListTest, SelfLoopsDropped) {
  Graph g = std::move(ParseEdgeList("0 0\n0 1\n")).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(ParseEdgeListTest, UndirectedDoublesArcs) {
  Graph g = std::move(ParseEdgeList("0 1\n", /*undirected=*/true))
                .ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(ParseEdgeListTest, MalformedLineFails) {
  EXPECT_FALSE(ParseEdgeList("0 1\nnot numbers\n").ok());
  EXPECT_FALSE(ParseEdgeList("0\n").ok());
}

TEST(EdgeListIoTest, SaveLoadRoundTrip) {
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.5f).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 1.0f).ok());
  ASSERT_TRUE(b.AddEdge(3, 0, 0.125f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();

  const std::string path =
      (std::filesystem::temp_directory_path() / "privim_io_test.txt")
          .string();
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  Graph loaded = std::move(LoadEdgeList(path)).ValueOrDie();
  EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  // Weights survive (first-appearance densification preserves ids here
  // because the save order is CSR order starting at node 0).
  EXPECT_FLOAT_EQ(loaded.OutWeights(0)[0], 0.5f);
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, LoadMissingFileFails) {
  const auto result = LoadEdgeList("/nonexistent/definitely/missing.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace privim
