// Peak-allocation regression test for the streaming graph build
// (ISSUE 7 satellite: GraphBuilder peak-memory blowup).
//
// The two-pass counting-sort build must construct a CSR graph while never
// holding much more memory than the finished graph itself: the contract is
// peak heap growth <= ~1.2x the final CSR footprint. The old build
// buffered every Edge (16 bytes/arc) next to the CSR it was building
// (~16 bytes/arc both directions) plus sort scratch — a ~1.7-3x peak that
// made 10^8-arc graphs need triple their resident size to build.
//
// Measurement: global operator new/delete replacements (the counting-
// allocator idiom from bench/bench_micro.cc, extended from counting
// allocations to tracking net live bytes via malloc_usable_size). Global
// replacement is binary-wide, so this lives in its own test binary rather
// than graph_test.

#include <malloc.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"

// ---- Byte-tracking allocator. ----

namespace {

std::atomic<bool> g_track{false};
std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

void NoteAlloc(void* p) {
  if (p == nullptr || !g_track.load(std::memory_order_relaxed)) return;
  const int64_t sz = static_cast<int64_t>(malloc_usable_size(p));
  const int64_t live =
      g_live_bytes.fetch_add(sz, std::memory_order_relaxed) + sz;
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void NoteFree(void* p) {
  if (p == nullptr || !g_track.load(std::memory_order_relaxed)) return;
  // Blocks allocated before arming push live below zero on free; that only
  // makes the measurement conservative (peak deltas shrink, never grow).
  g_live_bytes.fetch_sub(static_cast<int64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
}

void* TrackedAlloc(std::size_t size) {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  NoteAlloc(p);
  return p;
}

void* TrackedAllocAligned(std::size_t size, std::size_t align) {
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  NoteAlloc(p);
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return TrackedAlloc(size); }
void* operator new[](std::size_t size) { return TrackedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return TrackedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return TrackedAllocAligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept {
  NoteFree(p);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  NoteFree(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  NoteFree(p);
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  NoteFree(p);
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  NoteFree(p);
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  NoteFree(p);
  std::free(p);
}

namespace privim {
namespace {

struct PeakWindow {
  PeakWindow() {
    g_live_bytes.store(0, std::memory_order_relaxed);
    g_peak_bytes.store(0, std::memory_order_relaxed);
    g_track.store(true, std::memory_order_relaxed);
  }
  /// Peak heap growth inside the window so far, in bytes.
  int64_t PeakDelta() const {
    return g_peak_bytes.load(std::memory_order_relaxed);
  }
  ~PeakWindow() { g_track.store(false, std::memory_order_relaxed); }
};

constexpr size_t kNodes = 200000;
constexpr double kAvgOutDegree = 10.0;

TEST(BuilderMemoryTest, StreamingBuildPeaksWithinFinalFootprint) {
  Rng rng(1234);
  const double p = kAvgOutDegree / static_cast<double>(kNodes - 1);

  int64_t peak = 0;
  Graph g;
  {
    PeakWindow window;
    // The generator streams straight into the two-pass build — no edge
    // list exists at any point.
    Result<Graph> r = ErdosRenyi(kNodes, p, /*directed=*/true, rng);
    peak = window.PeakDelta();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    g = std::move(r).ValueOrDie();
  }

  const double footprint = static_cast<double>(g.MemoryFootprintBytes());
  ASSERT_GT(footprint, 1e6);  // Sanity: the graph is actually large.
  const double ratio = static_cast<double>(peak) / footprint;
  // The contract from ISSUE 7 / docs/scale.md: streaming build peaks
  // within ~1.2x of the final CSR. Transients are the two u64 bookkeeping
  // arrays (16 bytes/node) — on this 2e6-arc graph ~10% of the CSR.
  EXPECT_LE(ratio, 1.2) << "streaming build peaked at " << peak
                        << " bytes for a " << footprint << "-byte graph";
  // And the measurement itself is sane: the build cannot allocate less
  // than the graph it produced.
  EXPECT_GE(ratio, 0.99);
}

TEST(BuilderMemoryTest, StreamingBuildBeatsBufferedBuild) {
  // Same graph through the buffered AddEdge path: the builder's edge
  // vector (16 bytes/arc plus growth doubling) lives next to the CSR
  // during Build(), so its peak must come out strictly worse than the
  // streaming path's.
  Rng gen_rng(1234);
  const double p = kAvgOutDegree / static_cast<double>(kNodes - 1);
  Result<Graph> source = ErdosRenyi(kNodes, p, /*directed=*/true, gen_rng);
  ASSERT_TRUE(source.ok());
  const Graph& src = source.ValueOrDie();

  int64_t streaming_peak = 0;
  {
    PeakWindow window;
    GraphBuilder b(kNodes);
    ASSERT_TRUE(b.AddEdgeStream([&src](EdgeSink& sink) {
                   return src.ForEachEdge(
                       [&sink](NodeId u, NodeId v, float w) {
                         return sink.Add(u, v, w);
                       });
                 })
                    .ok());
    Result<Graph> r = b.Build();
    streaming_peak = window.PeakDelta();
    ASSERT_TRUE(r.ok());
  }

  int64_t buffered_peak = 0;
  {
    PeakWindow window;
    GraphBuilder b(kNodes);
    const Status st = src.ForEachEdge([&b](NodeId u, NodeId v, float w) {
      return b.AddEdge(u, v, w);
    });
    ASSERT_TRUE(st.ok());
    Result<Graph> r = b.Build();
    buffered_peak = window.PeakDelta();
    ASSERT_TRUE(r.ok());
  }

  EXPECT_LT(streaming_peak, buffered_peak)
      << "streaming=" << streaming_peak << " buffered=" << buffered_peak;
  // The contrast that motivates the streaming path: the buffered edge
  // vector (12 bytes/arc, power-of-two capacity) sits next to the CSR
  // during placement and pushes the buffered peak past the 1.2x-of-final
  // contract that the streaming path satisfies (asserted above). Both
  // builds produce the same graph, so src's footprint stands in for it.
  EXPECT_GT(static_cast<double>(buffered_peak),
            1.25 * static_cast<double>(src.MemoryFootprintBytes()));
}

}  // namespace
}  // namespace privim
