#include "graph/generators.h"

#include <cmath>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  Rng rng(1);
  const size_t n = 400;
  const double p = 0.02;
  Graph g = std::move(ErdosRenyi(n, p, /*directed=*/true, rng)).ValueOrDie();
  const double expected = p * static_cast<double>(n * (n - 1));
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4.0 * std::sqrt(expected));
}

TEST(ErdosRenyiTest, UndirectedIsSymmetric) {
  Rng rng(2);
  Graph g =
      std::move(ErdosRenyi(200, 0.03, /*directed=*/false, rng)).ValueOrDie();
  for (const Edge& e : g.Edges()) {
    EXPECT_TRUE(g.HasEdge(e.dst, e.src));
  }
  EXPECT_EQ(g.num_edges() % 2, 0u);
}

TEST(ErdosRenyiTest, ExtremeProbabilities) {
  Rng rng(3);
  Graph empty = std::move(ErdosRenyi(50, 0.0, true, rng)).ValueOrDie();
  EXPECT_EQ(empty.num_edges(), 0u);
  Graph full = std::move(ErdosRenyi(20, 1.0, true, rng)).ValueOrDie();
  EXPECT_EQ(full.num_edges(), 20u * 19u);
}

TEST(ErdosRenyiTest, RejectsBadArgs) {
  Rng rng(4);
  EXPECT_FALSE(ErdosRenyi(0, 0.5, true, rng).ok());
  EXPECT_FALSE(ErdosRenyi(10, -0.1, true, rng).ok());
  EXPECT_FALSE(ErdosRenyi(10, 1.1, true, rng).ok());
}

TEST(BarabasiAlbertTest, EdgeCountAndSymmetry) {
  Rng rng(5);
  const size_t n = 500, m = 4;
  Graph g = std::move(BarabasiAlbert(n, m, rng)).ValueOrDie();
  // Each of the n-m-1 later nodes adds m undirected edges, plus the seed
  // clique; average degree ~ 2m.
  EXPECT_NEAR(g.AverageDegree(), 2.0 * static_cast<double>(m),
              0.5 * static_cast<double>(m));
  for (const Edge& e : g.Edges()) {
    EXPECT_TRUE(g.HasEdge(e.dst, e.src));
  }
}

TEST(BarabasiAlbertTest, ProducesHubs) {
  Rng rng(6);
  Graph g = std::move(BarabasiAlbert(800, 3, rng)).ValueOrDie();
  size_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_deg = std::max(max_deg, g.OutDegree(u));
  }
  // Scale-free graphs have hubs far above the mean degree (6).
  EXPECT_GT(max_deg, 30u);
}

TEST(BarabasiAlbertTest, RejectsBadArgs) {
  Rng rng(7);
  EXPECT_FALSE(BarabasiAlbert(5, 0, rng).ok());
  EXPECT_FALSE(BarabasiAlbert(5, 5, rng).ok());
}

TEST(WattsStrogatzTest, DegreePreservedOnAverage) {
  Rng rng(8);
  const size_t n = 300, k = 3;
  Graph g = std::move(WattsStrogatz(n, k, 0.2, rng)).ValueOrDie();
  // Rewiring preserves edge count up to dense-node skips.
  EXPECT_NEAR(g.AverageDegree(), 2.0 * static_cast<double>(k), 0.5);
  for (const Edge& e : g.Edges()) {
    EXPECT_TRUE(g.HasEdge(e.dst, e.src));
  }
}

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  Rng rng(9);
  Graph g = std::move(WattsStrogatz(20, 2, 0.0, rng)).ValueOrDie();
  for (NodeId u = 0; u < 20; ++u) {
    EXPECT_EQ(g.OutDegree(u), 4u);
    EXPECT_TRUE(g.HasEdge(u, (u + 1) % 20));
    EXPECT_TRUE(g.HasEdge(u, (u + 2) % 20));
  }
}

TEST(WattsStrogatzTest, RejectsBadArgs) {
  Rng rng(10);
  EXPECT_FALSE(WattsStrogatz(10, 0, 0.1, rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 5, 0.1, rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 2, 1.5, rng).ok());
}

TEST(PlantedPartitionTest, IntraDensityExceedsInterDensity) {
  Rng rng(11);
  const size_t n = 200, c = 4;
  Graph g =
      std::move(PlantedPartition(n, c, 0.3, 0.01, rng)).ValueOrDie();
  size_t intra = 0, inter = 0;
  for (const Edge& e : g.Edges()) {
    if (e.src % c == e.dst % c) {
      ++intra;
    } else {
      ++inter;
    }
  }
  EXPECT_GT(intra, inter);
}

TEST(PlantedPartitionTest, RejectsBadArgs) {
  Rng rng(12);
  EXPECT_FALSE(PlantedPartition(10, 0, 0.5, 0.1, rng).ok());
  EXPECT_FALSE(PlantedPartition(10, 20, 0.5, 0.1, rng).ok());
  EXPECT_FALSE(PlantedPartition(10, 2, 1.5, 0.1, rng).ok());
}

TEST(DirectedScaleFreeTest, ProducesRequestedDensity) {
  Rng rng(13);
  Graph g = std::move(DirectedScaleFree(600, 3, 2, rng)).ValueOrDie();
  // ~5 arcs per non-seed node (minus dedup collisions).
  EXPECT_GT(g.AverageDegree(), 3.0);
  EXPECT_LT(g.AverageDegree(), 5.5);
}

TEST(DirectedScaleFreeTest, ProducesInDegreeHubs) {
  Rng rng(14);
  Graph g = std::move(DirectedScaleFree(800, 3, 1, rng)).ValueOrDie();
  EXPECT_GT(g.MaxInDegree(), 20u);
}

TEST(WeightedCascadeTest, WeightsAreInverseInDegree) {
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdge(0, 3).ok());
  ASSERT_TRUE(b.AddEdge(1, 3).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  ASSERT_TRUE(b.AddEdge(3, 0).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Graph wc = std::move(WeightedCascade(g)).ValueOrDie();
  // Node 3 has in-degree 3: incoming arcs get weight 1/3.
  for (size_t i = 0; i < wc.InNeighbors(3).size(); ++i) {
    EXPECT_FLOAT_EQ(wc.InWeights(3)[i], 1.0f / 3.0f);
  }
  EXPECT_FLOAT_EQ(wc.InWeights(0)[0], 1.0f);
}

TEST(WithUniformWeightsTest, OverridesAllWeights) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.3f).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 0.9f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Graph u = std::move(WithUniformWeights(g, 0.5f)).ValueOrDie();
  for (const Edge& e : u.Edges()) EXPECT_FLOAT_EQ(e.weight, 0.5f);
  EXPECT_FALSE(WithUniformWeights(g, 1.5f).ok());
}

class GeneratorDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorDeterminismTest, SameSeedSameGraph) {
  Rng a(GetParam()), b(GetParam());
  Graph ga = std::move(BarabasiAlbert(150, 3, a)).ValueOrDie();
  Graph gb = std::move(BarabasiAlbert(150, 3, b)).ValueOrDie();
  EXPECT_EQ(ga.Edges(), gb.Edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorDeterminismTest,
                         ::testing::Values(1u, 42u, 12345u));

}  // namespace
}  // namespace privim
