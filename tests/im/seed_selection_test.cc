#include "im/seed_selection.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "im/diffusion.h"

namespace privim {
namespace {

std::vector<NodeId> AllNodes(const Graph& g) {
  std::vector<NodeId> out(g.num_nodes());
  for (size_t u = 0; u < g.num_nodes(); ++u) out[u] = static_cast<NodeId>(u);
  return out;
}

TEST(CelfTest, MatchesPlainGreedyOnCoverage) {
  // The exact unit-weight 1-step spread is monotone submodular, so CELF and
  // plain greedy must return identical spreads (ties may reorder seeds).
  Rng gen(1);
  Graph g = std::move(ErdosRenyi(60, 0.06, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const auto candidates = AllNodes(g);
  SeedSelection celf =
      std::move(CelfSelect(candidates, 5, oracle)).ValueOrDie();
  SeedSelection greedy =
      std::move(GreedySelect(candidates, 5, oracle)).ValueOrDie();
  EXPECT_DOUBLE_EQ(celf.spread, greedy.spread);
}

TEST(CelfTest, LazyEvaluationSavesOracleCalls) {
  Rng gen(2);
  Graph g = std::move(BarabasiAlbert(150, 3, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const auto candidates = AllNodes(g);
  SeedSelection celf =
      std::move(CelfSelect(candidates, 10, oracle)).ValueOrDie();
  SeedSelection greedy =
      std::move(GreedySelect(candidates, 10, oracle)).ValueOrDie();
  EXPECT_LT(celf.oracle_calls, greedy.oracle_calls / 2);
  EXPECT_DOUBLE_EQ(celf.spread, greedy.spread);
}

TEST(CelfTest, PicksObviousHub) {
  // Star: the hub covers everything in one step.
  GraphBuilder b(20);
  for (NodeId v = 1; v < 20; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  SeedSelection sel =
      std::move(CelfSelect(AllNodes(g), 1, oracle)).ValueOrDie();
  EXPECT_EQ(sel.seeds[0], 0u);
  EXPECT_DOUBLE_EQ(sel.spread, 20.0);
}

TEST(CelfTest, SeedsAreDistinct) {
  Rng gen(3);
  Graph g = std::move(ErdosRenyi(40, 0.1, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  SeedSelection sel =
      std::move(CelfSelect(AllNodes(g), 8, oracle)).ValueOrDie();
  std::vector<NodeId> seeds = sel.seeds;
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(CelfTest, SpreadMonotoneInK) {
  Rng gen(4);
  Graph g = std::move(BarabasiAlbert(80, 3, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  double prev = 0.0;
  for (size_t k : {1u, 3u, 6u, 12u}) {
    SeedSelection sel =
        std::move(CelfSelect(AllNodes(g), k, oracle)).ValueOrDie();
    EXPECT_GE(sel.spread, prev);
    prev = sel.spread;
  }
}

TEST(CelfTest, RejectsBadArgs) {
  Rng gen(5);
  Graph g = std::move(ErdosRenyi(10, 0.2, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  EXPECT_FALSE(CelfSelect(AllNodes(g), 0, oracle).ok());
  EXPECT_FALSE(CelfSelect(AllNodes(g), 11, oracle).ok());
}

TEST(DegreeSelectTest, PicksTopOutDegrees) {
  GraphBuilder b(10);
  // Node 3: degree 4; node 7: degree 3; node 1: degree 2.
  for (NodeId v : {0u, 2u, 4u, 5u}) ASSERT_TRUE(b.AddEdge(3, v).ok());
  for (NodeId v : {0u, 2u, 4u}) ASSERT_TRUE(b.AddEdge(7, v).ok());
  for (NodeId v : {0u, 2u}) ASSERT_TRUE(b.AddEdge(1, v).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  SeedSelection sel =
      std::move(DegreeSelect(g, AllNodes(g), 2, oracle)).ValueOrDie();
  EXPECT_EQ(sel.seeds[0], 3u);
  EXPECT_EQ(sel.seeds[1], 7u);
}

TEST(RandomSelectTest, SelectsFromCandidatesOnly) {
  Rng gen(6);
  Graph g = std::move(ErdosRenyi(30, 0.1, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const std::vector<NodeId> candidates = {1, 3, 5, 7, 9, 11};
  Rng rng(7);
  SeedSelection sel =
      std::move(RandomSelect(candidates, 3, oracle, rng)).ValueOrDie();
  for (NodeId s : sel.seeds) {
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), s),
              candidates.end());
  }
}

TEST(TopKByScoreTest, OrdersByScore) {
  Rng gen(8);
  Graph g = std::move(ErdosRenyi(10, 0.2, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  std::vector<double> scores(10, 0.0);
  scores[4] = 0.9;
  scores[8] = 0.8;
  scores[2] = 0.7;
  SeedSelection sel =
      std::move(TopKByScore(AllNodes(g), 3, scores, oracle)).ValueOrDie();
  EXPECT_EQ(sel.seeds, (std::vector<NodeId>{4, 8, 2}));
}

TEST(TopKByScoreTest, RejectsMissingScores) {
  Rng gen(9);
  Graph g = std::move(ErdosRenyi(10, 0.2, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const std::vector<double> scores(5, 0.5);  // Too short.
  EXPECT_FALSE(TopKByScore(AllNodes(g), 3, scores, oracle).ok());
}

TEST(CelfTest, BeatsRandomAndAtLeastMatchesDegree) {
  Rng gen(10);
  Graph g = std::move(BarabasiAlbert(200, 3, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const auto candidates = AllNodes(g);
  SeedSelection celf =
      std::move(CelfSelect(candidates, 10, oracle)).ValueOrDie();
  SeedSelection degree =
      std::move(DegreeSelect(g, candidates, 10, oracle)).ValueOrDie();
  Rng rng(11);
  SeedSelection random =
      std::move(RandomSelect(candidates, 10, oracle, rng)).ValueOrDie();
  EXPECT_GE(celf.spread, degree.spread);
  EXPECT_GT(celf.spread, random.spread);
}

// Regression for the lazy-evaluation round-freshness off-by-one: the
// initial gains are computed against the empty seed set (round 0), so the
// freshest entries must be accepted in round 0 without recomputation. The
// bug (round counting starting at 1) produced identical seeds but burned
// at least one redundant oracle call per round; pinning the exact counts
// on a star graph catches any regression.
TEST(CelfTest, OracleCallCountIsExactOnStar) {
  // Star: hub 0 points at 19 leaves.
  GraphBuilder b(20);
  for (NodeId v = 1; v < 20; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const auto candidates = AllNodes(g);

  // k = 1: 20 initial gains + 0 recomputations (the hub's round-0 gain is
  // fresh) + 1 final spread evaluation.
  SeedSelection k1 =
      std::move(CelfSelect(candidates, 1, oracle)).ValueOrDie();
  EXPECT_EQ(k1.seeds, (std::vector<NodeId>{0}));
  EXPECT_EQ(k1.oracle_calls, 21u);

  // k = 2: after the hub every leaf's cached gain is stale, so all 19 are
  // recomputed once in round 1; 20 + 19 + 1 final evaluation.
  SeedSelection k2 =
      std::move(CelfSelect(candidates, 2, oracle)).ValueOrDie();
  ASSERT_EQ(k2.seeds.size(), 2u);
  EXPECT_EQ(k2.seeds[0], 0u);
  EXPECT_EQ(k2.seeds[1], 1u);  // All gains tie at 0; smallest id wins.
  EXPECT_EQ(k2.oracle_calls, 40u);
}

// Regression for the CELF/greedy tie-break divergence: GreedySelect used
// strict improvement only (first maximum in candidate order), so its output
// depended on the order of `candidates` while CelfSelect's heap broke ties
// toward the smaller node id. Both now tie-break on node id, which makes
// greedy order-invariant and the two selectors seed-for-seed identical on
// a submodular oracle.
TEST(GreedyTest, TieBreakIsCandidateOrderInvariant) {
  Rng gen(20);
  Graph g = std::move(ErdosRenyi(60, 0.06, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const auto sorted = AllNodes(g);

  std::vector<NodeId> shuffled = sorted;
  std::mt19937 shuffle_rng(21);
  std::shuffle(shuffled.begin(), shuffled.end(), shuffle_rng);
  std::vector<NodeId> reversed = sorted;
  std::reverse(reversed.begin(), reversed.end());

  SeedSelection base =
      std::move(GreedySelect(sorted, 6, oracle)).ValueOrDie();
  SeedSelection from_shuffled =
      std::move(GreedySelect(shuffled, 6, oracle)).ValueOrDie();
  SeedSelection from_reversed =
      std::move(GreedySelect(reversed, 6, oracle)).ValueOrDie();
  EXPECT_EQ(base.seeds, from_shuffled.seeds);
  EXPECT_EQ(base.seeds, from_reversed.seeds);
}

TEST(GreedyTest, MatchesCelfSeedForSeed) {
  Rng gen(22);
  Graph g = std::move(ErdosRenyi(60, 0.06, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const auto candidates = AllNodes(g);
  SeedSelection celf =
      std::move(CelfSelect(candidates, 6, oracle)).ValueOrDie();
  SeedSelection greedy =
      std::move(GreedySelect(candidates, 6, oracle)).ValueOrDie();
  // Identical tie-breaks: not just the same spread, the same seeds in the
  // same order.
  EXPECT_EQ(celf.seeds, greedy.seeds);
  EXPECT_DOUBLE_EQ(celf.spread, greedy.spread);
}

TEST(InstrumentedOracleTest, CountsAndTimesEveryCall) {
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  MetricsRegistry metrics;
  SpreadOracle oracle =
      InstrumentedOracle(MakeExactUnitOracle(g, 1), &metrics);
  const std::vector<NodeId> seeds = {0};
  oracle(seeds);
  oracle(seeds);
  EXPECT_EQ(metrics.GetCounter("im.oracle_calls")->value(), 2u);
  EXPECT_EQ(metrics.GetTimer("im.oracle_eval")->calls(), 2u);
}

TEST(InstrumentedOracleTest, NullRegistryReturnsOracleUnchanged) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  SpreadOracle oracle = InstrumentedOracle(MakeExactUnitOracle(g, 1),
                                           nullptr);
  EXPECT_DOUBLE_EQ(oracle({0}), 2.0);
}

TEST(MonteCarloOracleTest, ApproximatesExactOracleOnUnitWeights) {
  Rng gen(12);
  Graph g = std::move(ErdosRenyi(40, 0.08, true, gen)).ValueOrDie();
  Rng rng(13);
  SpreadOracle mc = MakeMonteCarloOracle(g, 10, rng, 1).ValueOrDie();
  SpreadOracle exact = MakeExactUnitOracle(g, 1);
  const std::vector<NodeId> seeds = {0, 1, 2};
  // Unit weights: MC is deterministic, must equal exact.
  EXPECT_DOUBLE_EQ(mc(seeds), exact(seeds));
}

}  // namespace
}  // namespace privim
