#include "im/seed_selection.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "im/diffusion.h"

namespace privim {
namespace {

std::vector<NodeId> AllNodes(const Graph& g) {
  std::vector<NodeId> out(g.num_nodes());
  for (size_t u = 0; u < g.num_nodes(); ++u) out[u] = static_cast<NodeId>(u);
  return out;
}

TEST(CelfTest, MatchesPlainGreedyOnCoverage) {
  // The exact unit-weight 1-step spread is monotone submodular, so CELF and
  // plain greedy must return identical spreads (ties may reorder seeds).
  Rng gen(1);
  Graph g = std::move(ErdosRenyi(60, 0.06, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const auto candidates = AllNodes(g);
  SeedSelection celf =
      std::move(CelfSelect(candidates, 5, oracle)).ValueOrDie();
  SeedSelection greedy =
      std::move(GreedySelect(candidates, 5, oracle)).ValueOrDie();
  EXPECT_DOUBLE_EQ(celf.spread, greedy.spread);
}

TEST(CelfTest, LazyEvaluationSavesOracleCalls) {
  Rng gen(2);
  Graph g = std::move(BarabasiAlbert(150, 3, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const auto candidates = AllNodes(g);
  SeedSelection celf =
      std::move(CelfSelect(candidates, 10, oracle)).ValueOrDie();
  SeedSelection greedy =
      std::move(GreedySelect(candidates, 10, oracle)).ValueOrDie();
  EXPECT_LT(celf.oracle_calls, greedy.oracle_calls / 2);
  EXPECT_DOUBLE_EQ(celf.spread, greedy.spread);
}

TEST(CelfTest, PicksObviousHub) {
  // Star: the hub covers everything in one step.
  GraphBuilder b(20);
  for (NodeId v = 1; v < 20; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  SeedSelection sel =
      std::move(CelfSelect(AllNodes(g), 1, oracle)).ValueOrDie();
  EXPECT_EQ(sel.seeds[0], 0u);
  EXPECT_DOUBLE_EQ(sel.spread, 20.0);
}

TEST(CelfTest, SeedsAreDistinct) {
  Rng gen(3);
  Graph g = std::move(ErdosRenyi(40, 0.1, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  SeedSelection sel =
      std::move(CelfSelect(AllNodes(g), 8, oracle)).ValueOrDie();
  std::vector<NodeId> seeds = sel.seeds;
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(CelfTest, SpreadMonotoneInK) {
  Rng gen(4);
  Graph g = std::move(BarabasiAlbert(80, 3, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  double prev = 0.0;
  for (size_t k : {1u, 3u, 6u, 12u}) {
    SeedSelection sel =
        std::move(CelfSelect(AllNodes(g), k, oracle)).ValueOrDie();
    EXPECT_GE(sel.spread, prev);
    prev = sel.spread;
  }
}

TEST(CelfTest, RejectsBadArgs) {
  Rng gen(5);
  Graph g = std::move(ErdosRenyi(10, 0.2, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  EXPECT_FALSE(CelfSelect(AllNodes(g), 0, oracle).ok());
  EXPECT_FALSE(CelfSelect(AllNodes(g), 11, oracle).ok());
}

TEST(DegreeSelectTest, PicksTopOutDegrees) {
  GraphBuilder b(10);
  // Node 3: degree 4; node 7: degree 3; node 1: degree 2.
  for (NodeId v : {0u, 2u, 4u, 5u}) ASSERT_TRUE(b.AddEdge(3, v).ok());
  for (NodeId v : {0u, 2u, 4u}) ASSERT_TRUE(b.AddEdge(7, v).ok());
  for (NodeId v : {0u, 2u}) ASSERT_TRUE(b.AddEdge(1, v).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  SeedSelection sel =
      std::move(DegreeSelect(g, AllNodes(g), 2, oracle)).ValueOrDie();
  EXPECT_EQ(sel.seeds[0], 3u);
  EXPECT_EQ(sel.seeds[1], 7u);
}

TEST(RandomSelectTest, SelectsFromCandidatesOnly) {
  Rng gen(6);
  Graph g = std::move(ErdosRenyi(30, 0.1, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const std::vector<NodeId> candidates = {1, 3, 5, 7, 9, 11};
  Rng rng(7);
  SeedSelection sel =
      std::move(RandomSelect(candidates, 3, oracle, rng)).ValueOrDie();
  for (NodeId s : sel.seeds) {
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), s),
              candidates.end());
  }
}

TEST(TopKByScoreTest, OrdersByScore) {
  Rng gen(8);
  Graph g = std::move(ErdosRenyi(10, 0.2, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  std::vector<double> scores(10, 0.0);
  scores[4] = 0.9;
  scores[8] = 0.8;
  scores[2] = 0.7;
  SeedSelection sel =
      std::move(TopKByScore(AllNodes(g), 3, scores, oracle)).ValueOrDie();
  EXPECT_EQ(sel.seeds, (std::vector<NodeId>{4, 8, 2}));
}

TEST(TopKByScoreTest, RejectsMissingScores) {
  Rng gen(9);
  Graph g = std::move(ErdosRenyi(10, 0.2, true, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const std::vector<double> scores(5, 0.5);  // Too short.
  EXPECT_FALSE(TopKByScore(AllNodes(g), 3, scores, oracle).ok());
}

TEST(CelfTest, BeatsRandomAndAtLeastMatchesDegree) {
  Rng gen(10);
  Graph g = std::move(BarabasiAlbert(200, 3, gen)).ValueOrDie();
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const auto candidates = AllNodes(g);
  SeedSelection celf =
      std::move(CelfSelect(candidates, 10, oracle)).ValueOrDie();
  SeedSelection degree =
      std::move(DegreeSelect(g, candidates, 10, oracle)).ValueOrDie();
  Rng rng(11);
  SeedSelection random =
      std::move(RandomSelect(candidates, 10, oracle, rng)).ValueOrDie();
  EXPECT_GE(celf.spread, degree.spread);
  EXPECT_GT(celf.spread, random.spread);
}

TEST(MonteCarloOracleTest, ApproximatesExactOracleOnUnitWeights) {
  Rng gen(12);
  Graph g = std::move(ErdosRenyi(40, 0.08, true, gen)).ValueOrDie();
  Rng rng(13);
  SpreadOracle mc = MakeMonteCarloOracle(g, 10, rng, 1);
  SpreadOracle exact = MakeExactUnitOracle(g, 1);
  const std::vector<NodeId> seeds = {0, 1, 2};
  // Unit weights: MC is deterministic, must equal exact.
  EXPECT_DOUBLE_EQ(mc(seeds), exact(seeds));
}

}  // namespace
}  // namespace privim
