#include "im/rr_sets.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "im/diffusion.h"
#include "im/seed_selection.h"

namespace privim {
namespace {

TEST(RrSketchTest, GenerateValidatesArgs) {
  GraphBuilder b(0);
  Graph empty = std::move(b.Build()).ValueOrDie();
  Rng rng(1);
  EXPECT_FALSE(RrSketch::Generate(empty, 10, rng).ok());

  Rng gen(2);
  Graph g = std::move(ErdosRenyi(10, 0.2, true, gen)).ValueOrDie();
  EXPECT_FALSE(RrSketch::Generate(g, 0, rng).ok());
}

TEST(RrSketchTest, SetsContainTheirTargets) {
  Rng gen(3);
  Graph g = std::move(ErdosRenyi(30, 0.1, true, gen)).ValueOrDie();
  Rng rng(4);
  RrSketch sketch = std::move(RrSketch::Generate(g, 50, rng)).ValueOrDie();
  ASSERT_EQ(sketch.num_sets(), 50u);
  for (const auto& rr : sketch.sets()) {
    ASSERT_FALSE(rr.empty());
    // Distinct members.
    std::vector<NodeId> sorted = rr;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(RrSketchTest, ZeroWeightGraphYieldsSingletonSets) {
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.0f).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 0.0f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(5);
  RrSketch sketch = std::move(RrSketch::Generate(g, 40, rng)).ValueOrDie();
  for (const auto& rr : sketch.sets()) EXPECT_EQ(rr.size(), 1u);
}

TEST(RrSketchTest, UnitWeightsReverseReachability) {
  // Path 0 -> 1 -> 2 with weight 1: the RR set of target t is {0..t}.
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0f).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 1.0f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(6);
  RrSketch sketch = std::move(RrSketch::Generate(g, 30, rng)).ValueOrDie();
  for (const auto& rr : sketch.sets()) {
    // Must contain node 0 (it reaches everything).
    EXPECT_NE(std::find(rr.begin(), rr.end(), 0u), rr.end());
  }
}

TEST(RrSketchTest, SpreadEstimateMatchesMonteCarlo) {
  Rng gen(7);
  Graph ba = std::move(BarabasiAlbert(100, 3, gen)).ValueOrDie();
  Graph g = std::move(WeightedCascade(ba)).ValueOrDie();
  Rng rng(8);
  RrSketch sketch =
      std::move(RrSketch::Generate(g, 4000, rng)).ValueOrDie();
  const std::vector<NodeId> seeds = {0, 1, 2};
  const double rr_estimate = sketch.EstimateSpread(seeds);
  Rng mc_rng(9);
  const double mc_estimate = EstimateIcSpread(g, seeds, 2000, mc_rng);
  EXPECT_NEAR(rr_estimate, mc_estimate, 0.15 * mc_estimate);
}

TEST(RrSketchTest, ScratchEstimateMatchesAllocatingForm) {
  Rng gen(17);
  Graph ba = std::move(BarabasiAlbert(80, 3, gen)).ValueOrDie();
  Graph g = std::move(WeightedCascade(ba)).ValueOrDie();
  Rng rng(18);
  RrSketch sketch =
      std::move(RrSketch::Generate(g, 500, rng)).ValueOrDie();
  VisitedSet covered;
  // One VisitedSet reused across estimates (the serving hot path): each
  // estimate must be bit-identical to a fresh allocating call.
  for (const std::vector<NodeId>& seeds :
       {std::vector<NodeId>{0}, std::vector<NodeId>{0, 1, 2},
        std::vector<NodeId>{7, 7, 40}, std::vector<NodeId>{}}) {
    EXPECT_EQ(sketch.EstimateSpread(seeds, covered),
              sketch.EstimateSpread(seeds))
        << "seed count " << seeds.size();
  }
}

TEST(RrSketchTest, EstimateMonotoneInSeeds) {
  Rng gen(10);
  Graph g = std::move(ErdosRenyi(50, 0.05, true, gen)).ValueOrDie();
  Rng rng(11);
  RrSketch sketch =
      std::move(RrSketch::Generate(g, 500, rng)).ValueOrDie();
  std::vector<NodeId> seeds;
  double prev = 0.0;
  for (NodeId s = 0; s < 10; ++s) {
    seeds.push_back(s);
    const double est = sketch.EstimateSpread(seeds);
    EXPECT_GE(est, prev);
    prev = est;
  }
}

TEST(RrSketchTest, SelectSeedsPicksTheHub) {
  // Star with unit weights: the hub is in every RR set, so greedy
  // max-coverage must pick it first.
  GraphBuilder b(20);
  for (NodeId v = 1; v < 20; ++v) ASSERT_TRUE(b.AddEdge(0, v, 1.0f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(12);
  RrSketch sketch =
      std::move(RrSketch::Generate(g, 200, rng)).ValueOrDie();
  std::vector<NodeId> seeds =
      std::move(sketch.SelectSeeds(1)).ValueOrDie();
  EXPECT_EQ(seeds[0], 0u);
}

TEST(RrSketchTest, SelectSeedsNearCelfOnUnitWeights) {
  Rng gen(13);
  Graph g = std::move(BarabasiAlbert(200, 3, gen)).ValueOrDie();
  Rng rng(14);
  RrSketch sketch =
      std::move(RrSketch::Generate(g, 3000, rng)).ValueOrDie();
  std::vector<NodeId> ris_seeds =
      std::move(sketch.SelectSeeds(10)).ValueOrDie();

  std::vector<NodeId> candidates(g.num_nodes());
  for (size_t u = 0; u < candidates.size(); ++u) {
    candidates[u] = static_cast<NodeId>(u);
  }
  // Unit weights, unlimited steps: exact closure spread for both.
  SpreadOracle oracle = MakeExactUnitOracle(g, 1000000);
  SeedSelection celf =
      std::move(CelfSelect(candidates, 10, oracle)).ValueOrDie();
  const double ris_spread = oracle(ris_seeds);
  EXPECT_GE(ris_spread, 0.9 * celf.spread);
}

TEST(RrSketchTest, SelectSeedsValidatesK) {
  Rng gen(15);
  Graph g = std::move(ErdosRenyi(10, 0.2, true, gen)).ValueOrDie();
  Rng rng(16);
  RrSketch sketch = std::move(RrSketch::Generate(g, 50, rng)).ValueOrDie();
  EXPECT_FALSE(sketch.SelectSeeds(0).ok());
  EXPECT_FALSE(sketch.SelectSeeds(11).ok());
  EXPECT_TRUE(sketch.SelectSeeds(10).ok());
}

}  // namespace
}  // namespace privim
