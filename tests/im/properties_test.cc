// Property-based tests on the IM substrate's mathematical invariants:
// monotonicity and submodularity of the coverage spread (the premises of
// CELF's (1 - 1/e) guarantee), and consistency across oracles.

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "im/diffusion.h"
#include "im/seed_selection.h"

namespace privim {
namespace {

class SpreadPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Graph MakeGraph() {
    Rng rng(GetParam());
    return std::move(ErdosRenyi(40, 0.08, /*directed=*/true, rng))
        .ValueOrDie();
  }
};

TEST_P(SpreadPropertyTest, UnitSpreadIsMonotone) {
  Graph g = MakeGraph();
  Rng rng(GetParam() + 1);
  for (int steps : {1, 2, 4}) {
    std::vector<NodeId> seeds;
    double prev = 0.0;
    for (int i = 0; i < 12; ++i) {
      seeds.push_back(static_cast<NodeId>(rng.UniformInt(g.num_nodes())));
      // Duplicates allowed: spread treats the seed set as a set.
      const double spread =
          static_cast<double>(ExactUnitWeightSpread(g, seeds, steps));
      EXPECT_GE(spread, prev) << "steps=" << steps;
      prev = spread;
    }
  }
}

TEST_P(SpreadPropertyTest, UnitSpreadIsSubmodular) {
  // f(A + v) - f(A) >= f(B + v) - f(B) for A subset of B: diminishing
  // returns, checked on random chains A ⊂ B and random v.
  Graph g = MakeGraph();
  Rng rng(GetParam() + 2);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<NodeId> a, b;
    const size_t size_a = 1 + rng.UniformInt(4);
    const size_t size_extra = 1 + rng.UniformInt(4);
    for (size_t i = 0; i < size_a; ++i) {
      a.push_back(static_cast<NodeId>(rng.UniformInt(g.num_nodes())));
    }
    b = a;
    for (size_t i = 0; i < size_extra; ++i) {
      b.push_back(static_cast<NodeId>(rng.UniformInt(g.num_nodes())));
    }
    const NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    auto f = [&](std::vector<NodeId> s) {
      return static_cast<double>(ExactUnitWeightSpread(g, s, 1));
    };
    std::vector<NodeId> av = a;
    av.push_back(v);
    std::vector<NodeId> bv = b;
    bv.push_back(v);
    EXPECT_GE(f(av) - f(a), f(bv) - f(b) - 1e-9) << "trial " << trial;
  }
}

TEST_P(SpreadPropertyTest, SpreadBoundedByGraphSize) {
  Graph g = MakeGraph();
  Rng rng(GetParam() + 3);
  std::vector<NodeId> all(g.num_nodes());
  for (size_t u = 0; u < all.size(); ++u) all[u] = static_cast<NodeId>(u);
  EXPECT_EQ(ExactUnitWeightSpread(g, all, 5), g.num_nodes());
  const std::vector<NodeId> one = {0};
  EXPECT_LE(SimulateIcCascade(g, one, rng), g.num_nodes());
  EXPECT_LE(SimulateLtCascade(g, one, rng), g.num_nodes());
}

TEST_P(SpreadPropertyTest, MonteCarloUnbiasedAgainstTruncation) {
  // Truncating at j steps can only lower the cascade size.
  Graph g = MakeGraph();
  Rng rng(GetParam() + 4);
  const std::vector<NodeId> seeds = {0, 3};
  const double truncated = EstimateIcSpread(g, seeds, 400, rng, 1);
  Rng rng2(GetParam() + 4);
  const double full = EstimateIcSpread(g, seeds, 400, rng2, -1);
  EXPECT_LE(truncated, full + 1e-9);
}

TEST_P(SpreadPropertyTest, CelfAchievesGreedyGuaranteeBound) {
  // CELF spread must be at least (1 - 1/e) of the best *singleton-union*
  // upper bound... we check the cheaper sanity: CELF(k) >= CELF(1) and
  // CELF(k) >= k (seeds count themselves).
  Graph g = MakeGraph();
  std::vector<NodeId> candidates(g.num_nodes());
  for (size_t u = 0; u < candidates.size(); ++u) {
    candidates[u] = static_cast<NodeId>(u);
  }
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  SeedSelection one =
      std::move(CelfSelect(candidates, 1, oracle)).ValueOrDie();
  SeedSelection five =
      std::move(CelfSelect(candidates, 5, oracle)).ValueOrDie();
  EXPECT_GE(five.spread, one.spread);
  EXPECT_GE(five.spread, 5.0);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SpreadPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace privim
