#include "im/diffusion.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace privim {
namespace {

Graph UnitPath() {
  // 0 -> 1 -> 2 -> 3 with weight 1.
  GraphBuilder b(4);
  EXPECT_TRUE(b.AddEdge(0, 1, 1.0f).ok());
  EXPECT_TRUE(b.AddEdge(1, 2, 1.0f).ok());
  EXPECT_TRUE(b.AddEdge(2, 3, 1.0f).ok());
  return std::move(b.Build()).ValueOrDie();
}

TEST(IcCascadeTest, UnitWeightsActivateEverythingReachable) {
  Graph g = UnitPath();
  Rng rng(1);
  const std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateIcCascade(g, seeds, rng), 4u);
}

TEST(IcCascadeTest, ZeroWeightsActivateOnlySeeds) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.0f).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 0.0f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(2);
  const std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateIcCascade(g, seeds, rng), 1u);
}

TEST(IcCascadeTest, StepTruncationLimitsReach) {
  Graph g = UnitPath();
  Rng rng(3);
  const std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateIcCascade(g, seeds, rng, 0), 1u);
  EXPECT_EQ(SimulateIcCascade(g, seeds, rng, 1), 2u);
  EXPECT_EQ(SimulateIcCascade(g, seeds, rng, 2), 3u);
}

TEST(IcCascadeTest, DuplicateSeedsCountOnce) {
  Graph g = UnitPath();
  Rng rng(4);
  const std::vector<NodeId> seeds = {0, 0, 1};
  EXPECT_EQ(SimulateIcCascade(g, seeds, rng, 0), 2u);
}

TEST(IcCascadeTest, EachEdgeTriedOnce) {
  // Two paths into node 2: if activation failed via one, the other still
  // gets its chance; with p=0.5 over many trials the mean is predictable.
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 2, 0.5f).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 0.5f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(5);
  const std::vector<NodeId> seeds = {0, 1};
  // P(2 active) = 1 - 0.25 = 0.75 => mean spread = 2.75.
  const double mean = EstimateIcSpread(g, seeds, 20000, rng);
  EXPECT_NEAR(mean, 2.75, 0.02);
}

TEST(EstimateIcSpreadTest, MatchesBernoulliExpectation) {
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.3f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(6);
  const std::vector<NodeId> seeds = {0};
  EXPECT_NEAR(EstimateIcSpread(g, seeds, 30000, rng), 1.3, 0.01);
}

TEST(ExactUnitWeightSpreadTest, MatchesClosureSizes) {
  Graph g = UnitPath();
  const std::vector<NodeId> seeds = {0};
  EXPECT_EQ(ExactUnitWeightSpread(g, seeds, 0), 1u);
  EXPECT_EQ(ExactUnitWeightSpread(g, seeds, 1), 2u);
  EXPECT_EQ(ExactUnitWeightSpread(g, seeds, 3), 4u);
  EXPECT_EQ(ExactUnitWeightSpread(g, seeds, 99), 4u);
}

TEST(ExactUnitWeightSpreadTest, OneStepIsSeedsPlusOutNeighbors) {
  GraphBuilder b(6);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(0, 2).ok());
  ASSERT_TRUE(b.AddEdge(3, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 4).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  const std::vector<NodeId> seeds = {0, 3};
  // S ∪ N_out(S) = {0,3} ∪ {1,2} = 4 nodes.
  EXPECT_EQ(ExactUnitWeightSpread(g, seeds, 1), 4u);
}

TEST(ExactUnitWeightSpreadTest, AgreesWithMonteCarloOnUnitWeights) {
  Rng gen(7);
  Graph g = std::move(ErdosRenyi(60, 0.05, true, gen)).ValueOrDie();
  Rng rng(8);
  const std::vector<NodeId> seeds = {0, 5, 10};
  const size_t exact = ExactUnitWeightSpread(g, seeds, 2);
  // Unit weights make every cascade deterministic.
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(SimulateIcCascade(g, seeds, rng, 2), exact);
  }
}

TEST(ExactUnitWeightSpreadTest, WorkspaceOverloadMatchesAllocatingForm) {
  Rng gen(13);
  Graph g = std::move(ErdosRenyi(80, 0.06, true, gen)).ValueOrDie();
  Workspace ws;
  // Same workspace across calls: the epoch-stamped scratch must not leak
  // state from one spread into the next (the serving layer reuses one
  // workspace across every query a worker handles).
  for (int round = 0; round < 3; ++round) {
    for (int steps : {0, 1, 2, 99}) {
      for (const std::vector<NodeId>& seeds :
           {std::vector<NodeId>{0}, std::vector<NodeId>{3, 7, 11},
            std::vector<NodeId>{5, 5, 60}}) {
        EXPECT_EQ(ExactUnitWeightSpread(g, seeds, steps, ws),
                  ExactUnitWeightSpread(g, seeds, steps))
            << "round " << round << " steps " << steps;
      }
    }
  }
}

TEST(LtCascadeTest, SeedsAlwaysActive) {
  Graph g = UnitPath();
  Rng rng(9);
  const std::vector<NodeId> seeds = {0, 2};
  EXPECT_GE(SimulateLtCascade(g, seeds, rng), 2u);
}

TEST(LtCascadeTest, FullWeightAlwaysPropagates) {
  // In LT, an in-weight sum of 1 meets any threshold in [0,1) a.s.;
  // with weight 1.0 every reachable node activates (threshold < 1 w.p. 1).
  Graph g = UnitPath();
  Rng rng(10);
  const std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateLtCascade(g, seeds, rng), 4u);
}

TEST(LtCascadeTest, WeakEdgesRarelyActivate) {
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.1f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(11);
  const std::vector<NodeId> seeds = {0};
  size_t total = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    total += SimulateLtCascade(g, seeds, rng);
  }
  // Node 1 activates iff threshold <= 0.1: mean spread ~= 1.1.
  EXPECT_NEAR(static_cast<double>(total) / trials, 1.1, 0.02);
}

TEST(SisCascadeTest, CountsEverInfected) {
  Graph g = UnitPath();
  Rng rng(12);
  const std::vector<NodeId> seeds = {0};
  // Unit infection probability, zero recovery: everything reachable gets
  // infected within 3 steps.
  EXPECT_EQ(SimulateSisCascade(g, seeds, 0.0, 3, rng), 4u);
}

TEST(SisCascadeTest, ZeroStepsOnlySeeds) {
  Graph g = UnitPath();
  Rng rng(13);
  const std::vector<NodeId> seeds = {0, 1};
  EXPECT_EQ(SimulateSisCascade(g, seeds, 0.5, 0, rng), 2u);
}

TEST(SisCascadeTest, RecoveryAllowsReinfection) {
  // With recovery 1.0, the seed recovers immediately but its neighbor may
  // reinfect it; "ever infected" is monotone so the count stays valid.
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddUndirectedEdge(0, 1, 1.0f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(14);
  const std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateSisCascade(g, seeds, 1.0, 5, rng), 2u);
}

}  // namespace
}  // namespace privim
