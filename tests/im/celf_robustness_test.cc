// CELF behavior under noisy (Monte-Carlo) oracles and adversarial
// structures: lazy evaluation assumes consistent oracle answers; these
// tests document and verify the implementation's behavior when that
// assumption is stressed.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "im/diffusion.h"
#include "im/seed_selection.h"

namespace privim {
namespace {

TEST(CelfRobustnessTest, WorksWithMonteCarloOracle) {
  // MC oracles return noisy values; CELF must still terminate with k
  // distinct seeds whose exact spread is competitive with degree.
  Rng gen(1);
  Graph ba = std::move(BarabasiAlbert(120, 3, gen)).ValueOrDie();
  Graph g = std::move(WeightedCascade(ba)).ValueOrDie();
  std::vector<NodeId> candidates(g.num_nodes());
  for (size_t u = 0; u < candidates.size(); ++u) {
    candidates[u] = static_cast<NodeId>(u);
  }
  Rng rng(2);
  SpreadOracle mc = MakeMonteCarloOracle(g, 64, rng).ValueOrDie();
  SeedSelection celf =
      std::move(CelfSelect(candidates, 8, mc)).ValueOrDie();
  ASSERT_EQ(celf.seeds.size(), 8u);

  // Evaluate both seed sets under an independent high-precision oracle.
  Rng eval_rng(3);
  const double celf_spread =
      EstimateIcSpread(g, celf.seeds, 2000, eval_rng);
  SeedSelection degree =
      std::move(DegreeSelect(g, candidates, 8, mc)).ValueOrDie();
  Rng eval_rng2(4);
  const double degree_spread =
      EstimateIcSpread(g, degree.seeds, 2000, eval_rng2);
  EXPECT_GE(celf_spread, 0.85 * degree_spread);
}

TEST(CelfRobustnessTest, DisconnectedGraphSpreadsAreAdditive) {
  // Two disjoint stars: greedy must pick both hubs first.
  GraphBuilder b(12);
  for (NodeId v = 1; v <= 5; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  for (NodeId v = 7; v <= 11; ++v) ASSERT_TRUE(b.AddEdge(6, v).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  std::vector<NodeId> candidates(g.num_nodes());
  for (size_t u = 0; u < candidates.size(); ++u) {
    candidates[u] = static_cast<NodeId>(u);
  }
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  SeedSelection sel =
      std::move(CelfSelect(candidates, 2, oracle)).ValueOrDie();
  std::vector<NodeId> seeds = sel.seeds;
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(seeds, (std::vector<NodeId>{0, 6}));
  EXPECT_DOUBLE_EQ(sel.spread, 12.0);
}

TEST(CelfRobustnessTest, OverlappingHubsRewardComplementarity) {
  // Hub A covers {1..6}; hub B covers {4..9}; node C covers {10,11}.
  // Greedy picks A (7 covered incl. self), then prefers C's complement
  // only if |new(B)| < |new(C)|: new(B) = {B,7,8,9} = 4 > new(C) = 3,
  // so the second pick is B. Third pick must be C.
  GraphBuilder b(13);
  const NodeId hub_a = 0, hub_b = 1, small_c = 2;
  for (NodeId v = 3; v <= 8; ++v) ASSERT_TRUE(b.AddEdge(hub_a, v).ok());
  for (NodeId v = 6; v <= 11; ++v) ASSERT_TRUE(b.AddEdge(hub_b, v).ok());
  ASSERT_TRUE(b.AddEdge(small_c, 12).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  std::vector<NodeId> candidates(g.num_nodes());
  for (size_t u = 0; u < candidates.size(); ++u) {
    candidates[u] = static_cast<NodeId>(u);
  }
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  SeedSelection sel =
      std::move(CelfSelect(candidates, 3, oracle)).ValueOrDie();
  EXPECT_EQ(sel.seeds[0], hub_a);
  EXPECT_EQ(sel.seeds[1], hub_b);
  EXPECT_EQ(sel.seeds[2], small_c);
}

TEST(CelfRobustnessTest, AllCandidatesEqualFallsBackToTieOrder) {
  // A perfect matching: every node covers exactly one other; gains tie at
  // every round, so the smallest-id candidates win (documented
  // tie-breaking).
  GraphBuilder b(8);
  for (NodeId u = 0; u < 8; u += 2) ASSERT_TRUE(b.AddEdge(u, u + 1).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  std::vector<NodeId> candidates(g.num_nodes());
  for (size_t u = 0; u < candidates.size(); ++u) {
    candidates[u] = static_cast<NodeId>(u);
  }
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  SeedSelection sel =
      std::move(CelfSelect(candidates, 2, oracle)).ValueOrDie();
  EXPECT_EQ(sel.seeds, (std::vector<NodeId>{0, 2}));
}

TEST(CelfRobustnessTest, KEqualsCandidateCount) {
  Rng gen(5);
  Graph g = std::move(ErdosRenyi(10, 0.3, true, gen)).ValueOrDie();
  std::vector<NodeId> candidates(g.num_nodes());
  for (size_t u = 0; u < candidates.size(); ++u) {
    candidates[u] = static_cast<NodeId>(u);
  }
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  SeedSelection sel =
      std::move(CelfSelect(candidates, 10, oracle)).ValueOrDie();
  EXPECT_EQ(sel.seeds.size(), 10u);
  EXPECT_DOUBLE_EQ(sel.spread, 10.0);
}

}  // namespace
}  // namespace privim
