#include "im/metrics.h"

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(CoverageRatioTest, Percentages) {
  EXPECT_DOUBLE_EQ(CoverageRatioPercent(50.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(CoverageRatioPercent(100.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(CoverageRatioPercent(0.0, 100.0), 0.0);
}

TEST(CoverageRatioTest, CanExceedHundredForApproximateReference) {
  // CELF is (1-1/e)-approximate; a method may beat it occasionally.
  EXPECT_DOUBLE_EQ(CoverageRatioPercent(110.0, 100.0), 110.0);
}

TEST(CoverageRatioTest, ZeroReferenceYieldsZero) {
  EXPECT_DOUBLE_EQ(CoverageRatioPercent(10.0, 0.0), 0.0);
}

}  // namespace
}  // namespace privim
