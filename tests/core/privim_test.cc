#include "core/privim.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace privim {
namespace {

// Shared fixture graphs: one dense-enough pair for end-to-end runs.
struct SplitGraphs {
  Graph train;
  Graph eval;
};

SplitGraphs MakeSplitGraphs(uint64_t seed, size_t n = 600) {
  Rng rng(seed);
  SplitGraphs out;
  out.train = std::move(BarabasiAlbert(n, 4, rng)).ValueOrDie();
  out.eval = std::move(BarabasiAlbert(n, 4, rng)).ValueOrDie();
  return out;
}

PrivImConfig FastConfig(Method method, double epsilon, size_t train_nodes) {
  PrivImConfig cfg = MakeDefaultConfig(method, epsilon, train_nodes);
  cfg.train.iterations = 15;
  cfg.train.batch_size = 8;
  cfg.freq.subgraph_size = 16;
  cfg.rwr.subgraph_size = 16;
  cfg.seed_count = 10;
  return cfg;
}

TEST(MethodNameTest, RoundTrips) {
  for (Method m :
       {Method::kPrivIm, Method::kPrivImScs, Method::kPrivImStar,
        Method::kEgn, Method::kHp, Method::kHpGrat, Method::kNonPrivate}) {
    EXPECT_EQ(*ParseMethod(MethodName(m)), m);
  }
  EXPECT_FALSE(ParseMethod("bogus").ok());
}

TEST(MakeDefaultConfigTest, PaperParameters) {
  PrivImConfig cfg = MakeDefaultConfig(Method::kPrivImStar, 2.0, 512);
  EXPECT_DOUBLE_EQ(cfg.budget.epsilon, 2.0);
  EXPECT_LT(cfg.budget.delta, 1.0 / 512.0);
  EXPECT_DOUBLE_EQ(cfg.rwr.sampling_rate, 0.5);  // 256/512.
  EXPECT_EQ(cfg.rwr.walk_length, 200u);
  EXPECT_EQ(cfg.theta, 10u);
  EXPECT_DOUBLE_EQ(cfg.rwr.restart_prob, 0.3);
  EXPECT_EQ(cfg.gnn.num_layers, 3u);
  EXPECT_EQ(cfg.gnn.hidden_dim, 32u);
  EXPECT_EQ(cfg.gnn.type, GnnType::kGrat);
  EXPECT_EQ(cfg.seed_count, 50u);
}

TEST(MakeDefaultConfigTest, BaselineBackbones) {
  EXPECT_EQ(MakeDefaultConfig(Method::kEgn, 2.0, 100).gnn.type,
            GnnType::kGcn);
  EXPECT_EQ(MakeDefaultConfig(Method::kHp, 2.0, 100).gnn.type,
            GnnType::kGcn);
  EXPECT_EQ(MakeDefaultConfig(Method::kHpGrat, 2.0, 100).gnn.type,
            GnnType::kGrat);
  EXPECT_GE(MakeDefaultConfig(Method::kNonPrivate, 2.0, 100).budget.epsilon,
            kNonPrivateEpsilon);
}

class RunMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(RunMethodTest, EndToEndProducesValidSeeds) {
  SplitGraphs graphs = MakeSplitGraphs(1);
  PrivImConfig cfg =
      FastConfig(GetParam(), 4.0, graphs.train.num_nodes());
  Rng rng(2);
  PrivImRunResult result =
      std::move(RunMethod(graphs.train, graphs.eval, cfg, rng))
          .ValueOrDie();
  EXPECT_EQ(result.seeds.size(), cfg.seed_count);
  std::vector<NodeId> sorted = result.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (NodeId s : result.seeds) EXPECT_LT(s, graphs.eval.num_nodes());
  EXPECT_GE(result.spread, static_cast<double>(cfg.seed_count));
  EXPECT_GT(result.container_size, 0u);
  EXPECT_LE(result.audited_max_occurrence, result.occurrence_bound);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, RunMethodTest,
    ::testing::Values(Method::kPrivIm, Method::kPrivImScs,
                      Method::kPrivImStar, Method::kEgn, Method::kHp,
                      Method::kHpGrat, Method::kNonPrivate),
    [](const auto& info) {
      std::string name = MethodName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RunMethodTest, PrivateRunsSpendWithinBudget) {
  SplitGraphs graphs = MakeSplitGraphs(3);
  PrivImConfig cfg =
      FastConfig(Method::kPrivImStar, 2.0, graphs.train.num_nodes());
  Rng rng(4);
  PrivImRunResult result =
      std::move(RunMethod(graphs.train, graphs.eval, cfg, rng))
          .ValueOrDie();
  EXPECT_LE(result.epsilon_spent, 2.0 + 1e-6);
  EXPECT_GT(result.sigma, 0.0);
  EXPECT_GT(result.noise_stddev, 0.0);
  // For the dual-stage scheme the occurrence bound is M.
  EXPECT_LE(result.occurrence_bound, cfg.freq.frequency_threshold);
}

TEST(RunMethodTest, NonPrivateHasNoNoise) {
  SplitGraphs graphs = MakeSplitGraphs(5);
  PrivImConfig cfg =
      FastConfig(Method::kNonPrivate, 1.0, graphs.train.num_nodes());
  Rng rng(6);
  PrivImRunResult result =
      std::move(RunMethod(graphs.train, graphs.eval, cfg, rng))
          .ValueOrDie();
  EXPECT_EQ(result.sigma, 0.0);
  EXPECT_EQ(result.noise_stddev, 0.0);
}

TEST(RunMethodTest, StarUsesBoundaryStageScsDoesNot) {
  SplitGraphs graphs = MakeSplitGraphs(7);
  PrivImConfig star_cfg =
      FastConfig(Method::kPrivImStar, 4.0, graphs.train.num_nodes());
  PrivImConfig scs_cfg =
      FastConfig(Method::kPrivImScs, 4.0, graphs.train.num_nodes());
  Rng ra(8), rb(8);
  PrivImRunResult star =
      std::move(RunMethod(graphs.train, graphs.eval, star_cfg, ra))
          .ValueOrDie();
  PrivImRunResult scs =
      std::move(RunMethod(graphs.train, graphs.eval, scs_cfg, rb))
          .ValueOrDie();
  EXPECT_GT(star.stage2_count, 0u);
  EXPECT_EQ(scs.stage2_count, 0u);
}

TEST(RunMethodTest, NaiveUsesLemma1Bound) {
  SplitGraphs graphs = MakeSplitGraphs(9);
  PrivImConfig cfg =
      FastConfig(Method::kPrivIm, 4.0, graphs.train.num_nodes());
  Rng rng(10);
  PrivImRunResult result =
      std::move(RunMethod(graphs.train, graphs.eval, cfg, rng))
          .ValueOrDie();
  // Lemma 1 with theta=10, r=3 is 1111, clamped to container size.
  EXPECT_EQ(result.occurrence_bound,
            std::min<size_t>(1111, result.container_size));
}

TEST(RunMethodTest, EgnUsesWorstCaseBound) {
  SplitGraphs graphs = MakeSplitGraphs(11);
  PrivImConfig cfg =
      FastConfig(Method::kEgn, 4.0, graphs.train.num_nodes());
  cfg.egn_subgraph_count = 64;
  Rng rng(12);
  PrivImRunResult result =
      std::move(RunMethod(graphs.train, graphs.eval, cfg, rng))
          .ValueOrDie();
  EXPECT_EQ(result.occurrence_bound, result.container_size);
}

TEST(RunMethodTest, RejectsTooSmallEvalGraph) {
  SplitGraphs graphs = MakeSplitGraphs(13);
  Rng gen(14);
  Graph tiny = std::move(ErdosRenyi(5, 0.5, true, gen)).ValueOrDie();
  PrivImConfig cfg =
      FastConfig(Method::kPrivImStar, 4.0, graphs.train.num_nodes());
  Rng rng(15);
  EXPECT_FALSE(RunMethod(graphs.train, tiny, cfg, rng).ok());
}

TEST(RunMethodTest, DeterministicGivenSeed) {
  SplitGraphs graphs = MakeSplitGraphs(16);
  PrivImConfig cfg =
      FastConfig(Method::kPrivImStar, 3.0, graphs.train.num_nodes());
  Rng ra(17), rb(17);
  PrivImRunResult a =
      std::move(RunMethod(graphs.train, graphs.eval, cfg, ra)).ValueOrDie();
  PrivImRunResult b =
      std::move(RunMethod(graphs.train, graphs.eval, cfg, rb)).ValueOrDie();
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_DOUBLE_EQ(a.spread, b.spread);
}

}  // namespace
}  // namespace privim
