// PrivImConfig::Validate: field-path error messages, the fail-fast wiring
// in RunMethod/EvaluateMethod, and the name round trips of the public
// enums (Method, EvalDiffusion).

#include <string>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/privim.h"

namespace privim {
namespace {

PrivImConfig ValidConfig() {
  return MakeDefaultConfig(Method::kPrivImStar, 2.0, /*train_nodes=*/500);
}

/// Runs Validate and demands InvalidArgument whose message names the
/// offending field by its config path.
void ExpectInvalid(const PrivImConfig& cfg, const std::string& field_path) {
  const Status status = cfg.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << field_path;
  EXPECT_NE(status.message().find(field_path), std::string::npos)
      << "message '" << status.message() << "' does not name '"
      << field_path << "'";
}

TEST(ConfigValidateTest, DefaultConfigsAreValidForEveryMethod) {
  for (Method method :
       {Method::kPrivIm, Method::kPrivImScs, Method::kPrivImStar,
        Method::kEgn, Method::kHp, Method::kHpGrat, Method::kNonPrivate}) {
    const PrivImConfig cfg = MakeDefaultConfig(method, 2.0, 500);
    EXPECT_TRUE(cfg.Validate().ok()) << MethodName(method);
  }
}

TEST(ConfigValidateTest, BudgetViolationsNameTheField) {
  PrivImConfig cfg = ValidConfig();
  cfg.budget.epsilon = 0.0;
  ExpectInvalid(cfg, "budget.epsilon");
  cfg = ValidConfig();
  cfg.budget.delta = 1.5;
  ExpectInvalid(cfg, "budget.delta");
}

TEST(ConfigValidateTest, NonPrivateSkipsBudgetChecks) {
  PrivImConfig cfg = MakeDefaultConfig(Method::kNonPrivate, 2.0, 500);
  cfg.budget.epsilon = -1.0;  // Ignored by the non-private reference.
  cfg.budget.delta = 7.0;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, SamplerViolationsNameTheField) {
  PrivImConfig cfg = ValidConfig();
  cfg.theta = 0;
  ExpectInvalid(cfg, "theta");
  cfg = ValidConfig();
  cfg.rwr.sampling_rate = 0.0;
  ExpectInvalid(cfg, "rwr.sampling_rate");
  cfg = ValidConfig();
  cfg.rwr.restart_prob = 1.5;
  ExpectInvalid(cfg, "rwr.restart_prob");
  cfg = ValidConfig();
  cfg.rwr.subgraph_size = 1;
  ExpectInvalid(cfg, "rwr.subgraph_size");
  cfg = ValidConfig();
  cfg.freq.frequency_threshold = 0;
  ExpectInvalid(cfg, "freq.frequency_threshold");
  cfg = ValidConfig();
  cfg.freq.decay = -0.1;
  ExpectInvalid(cfg, "freq.decay");
  cfg = ValidConfig();
  cfg.egn_subgraph_count = 0;
  ExpectInvalid(cfg, "egn_subgraph_count");
  cfg = ValidConfig();
  cfg.ego.max_nodes = 1;
  ExpectInvalid(cfg, "ego.max_nodes");
}

TEST(ConfigValidateTest, TrainingViolationsNameTheField) {
  PrivImConfig cfg = ValidConfig();
  cfg.gnn.hidden_dim = 0;
  ExpectInvalid(cfg, "gnn.hidden_dim");
  cfg = ValidConfig();
  cfg.gnn.num_layers = 0;
  ExpectInvalid(cfg, "gnn.num_layers");
  cfg = ValidConfig();
  cfg.train.batch_size = 0;
  ExpectInvalid(cfg, "train.batch_size");
  cfg = ValidConfig();
  cfg.train.iterations = 0;
  ExpectInvalid(cfg, "train.iterations");
  cfg = ValidConfig();
  cfg.train.learning_rate = 0.0f;
  ExpectInvalid(cfg, "train.learning_rate");
  cfg = ValidConfig();
  cfg.train.clip_bound = -1.0;
  ExpectInvalid(cfg, "train.clip_bound");
  cfg = ValidConfig();
  cfg.auto_clip_scale = 0.0;
  ExpectInvalid(cfg, "auto_clip_scale");
}

TEST(ConfigValidateTest, EvaluationViolationsNameTheField) {
  PrivImConfig cfg = ValidConfig();
  cfg.seed_count = 0;
  ExpectInvalid(cfg, "seed_count");
  cfg = ValidConfig();
  cfg.eval_steps = 0;
  ExpectInvalid(cfg, "eval_steps");
  cfg = ValidConfig();
  cfg.eval_trials = 0;
  ExpectInvalid(cfg, "eval_trials");
  cfg = ValidConfig();
  cfg.sis_recovery = -0.5;
  ExpectInvalid(cfg, "sis_recovery");
}

TEST(ConfigValidateTest, CheckpointViolationsNameTheField) {
  PrivImConfig cfg = ValidConfig();
  cfg.checkpoint.resume = true;  // ... without a directory.
  ExpectInvalid(cfg, "checkpoint.resume");
  cfg = ValidConfig();
  cfg.checkpoint.dir = "/tmp/ckpt";
  cfg.checkpoint.train_every = 0;
  ExpectInvalid(cfg, "checkpoint.train_every");
}

TEST(ConfigValidateTest, RunMethodFailsFastOnInvalidConfig) {
  // The invalid field must surface before any graph work happens — the
  // empty graphs here would explode inside a sampler otherwise.
  PrivImConfig cfg = ValidConfig();
  cfg.train.batch_size = 0;
  Graph empty;
  Rng rng(1);
  const Status status = RunMethod(empty, empty, cfg, rng).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("train.batch_size"), std::string::npos);
}

TEST(ConfigValidateTest, EvaluateMethodFailsFastOnInvalidConfig) {
  PrivImConfig cfg = ValidConfig();
  cfg.seed_count = 0;
  DatasetInstance instance;
  const Status status =
      EvaluateMethod(instance, cfg, /*repeats=*/1, /*seed=*/1).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("seed_count"), std::string::npos);
}

TEST(ConfigValidateTest, MethodNamesRoundTrip) {
  for (Method method :
       {Method::kPrivIm, Method::kPrivImScs, Method::kPrivImStar,
        Method::kEgn, Method::kHp, Method::kHpGrat, Method::kNonPrivate}) {
    const std::string name = MethodName(method);
    EXPECT_EQ(std::move(ParseMethod(name)).ValueOrDie(), method) << name;
  }
  EXPECT_FALSE(ParseMethod("NoSuchMethod").ok());
}

TEST(ConfigValidateTest, EvalDiffusionNamesRoundTrip) {
  for (PrivImConfig::EvalDiffusion diffusion :
       {PrivImConfig::EvalDiffusion::kExactIc,
        PrivImConfig::EvalDiffusion::kMonteCarloIc,
        PrivImConfig::EvalDiffusion::kLt,
        PrivImConfig::EvalDiffusion::kSis}) {
    const std::string name = EvalDiffusionName(diffusion);
    EXPECT_EQ(std::move(ParseEvalDiffusion(name)).ValueOrDie(), diffusion)
        << name;
  }
  EXPECT_EQ(std::move(ParseEvalDiffusion("exact")).ValueOrDie(),
            PrivImConfig::EvalDiffusion::kExactIc);
  EXPECT_EQ(ParseEvalDiffusion("poisson").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace privim
