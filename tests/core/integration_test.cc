// End-to-end integration: the full PrivIM* pipeline on a small dataset,
// asserting the paper's qualitative claims at miniature scale.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/privim.h"
#include "im/metrics.h"

namespace privim {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    instance_ = new DatasetInstance(
        std::move(PrepareDataset(DatasetId::kEmail, /*seed=*/11,
                                 /*seed_count=*/15, /*eval_steps=*/1,
                                 /*scale=*/0.5))
            .ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete instance_;
    instance_ = nullptr;
  }

  static PrivImConfig Config(Method method, double epsilon) {
    PrivImConfig cfg = MakeDefaultConfig(
        method, epsilon, instance_->train_graph.num_nodes());
    cfg.train.iterations = 30;
    cfg.train.batch_size = 8;
    cfg.seed_count = 15;
    cfg.freq.subgraph_size = 20;
    cfg.rwr.subgraph_size = 20;
    return cfg;
  }

  static double Coverage(Method method, double epsilon, uint64_t seed) {
    Rng rng(seed);
    PrivImRunResult run =
        std::move(RunMethod(instance_->train_graph, instance_->eval_graph,
                            Config(method, epsilon), rng))
            .ValueOrDie();
    return CoverageRatioPercent(run.spread, instance_->celf_spread);
  }

  static DatasetInstance* instance_;
};

DatasetInstance* PipelineTest::instance_ = nullptr;

TEST_F(PipelineTest, NonPrivateApproachesCelf) {
  // The paper's non-private GNN reaches ~97-99% of CELF. At miniature
  // scale and training budget we require a solid majority.
  const double coverage = Coverage(Method::kNonPrivate, 1.0, 1);
  EXPECT_GT(coverage, 60.0);
  EXPECT_LE(coverage, 130.0);
}

TEST_F(PipelineTest, PrivateStarIsUsableAtModerateBudget) {
  const double coverage = Coverage(Method::kPrivImStar, 4.0, 2);
  EXPECT_GT(coverage, 30.0);
}

TEST_F(PipelineTest, StarBeatsNaiveOnAverage) {
  // The central claim (Table II): the dual-stage scheme beats the naive
  // pipeline at equal epsilon. The miniature Email instance is too small
  // to differentiate the samplers, so this check runs on a LastFM-scale
  // graph with the most noise-stable backbone (GCN), averaged over seeds.
  DatasetInstance instance =
      std::move(PrepareDataset(DatasetId::kLastFm, /*seed=*/21,
                               /*seed_count=*/30, /*eval_steps=*/1,
                               /*scale=*/0.5))
          .ValueOrDie();
  double star_total = 0.0, naive_total = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (Method method : {Method::kPrivImStar, Method::kPrivIm}) {
      PrivImConfig cfg = MakeDefaultConfig(
          method, 2.0, instance.train_graph.num_nodes());
      cfg.gnn.type = GnnType::kGcn;
      cfg.seed_count = 30;
      Rng rng(seed * 17);
      PrivImRunResult run =
          std::move(RunMethod(instance.train_graph, instance.eval_graph,
                              cfg, rng))
              .ValueOrDie();
      (method == Method::kPrivImStar ? star_total : naive_total) +=
          run.spread;
    }
  }
  EXPECT_GT(star_total, naive_total);
}

TEST_F(PipelineTest, OccurrenceAuditHoldsAcrossMethods) {
  for (Method method : {Method::kPrivIm, Method::kPrivImScs,
                        Method::kPrivImStar, Method::kHpGrat}) {
    Rng rng(77);
    PrivImRunResult run =
        std::move(RunMethod(instance_->train_graph, instance_->eval_graph,
                            Config(method, 4.0), rng))
            .ValueOrDie();
    EXPECT_LE(run.audited_max_occurrence, run.occurrence_bound)
        << MethodName(method);
  }
}

TEST_F(PipelineTest, EpsilonSpentNeverExceedsBudget) {
  for (double eps : {1.0, 3.0, 6.0}) {
    Rng rng(88);
    PrivImRunResult run =
        std::move(RunMethod(instance_->train_graph, instance_->eval_graph,
                            Config(Method::kPrivImStar, eps), rng))
            .ValueOrDie();
    EXPECT_LE(run.epsilon_spent, eps + 1e-6) << "epsilon " << eps;
  }
}

TEST_F(PipelineTest, LargerBudgetGetsLessNoise) {
  Rng ra(99), rb(99);
  PrivImRunResult tight =
      std::move(RunMethod(instance_->train_graph, instance_->eval_graph,
                          Config(Method::kPrivImStar, 1.0), ra))
          .ValueOrDie();
  PrivImRunResult loose =
      std::move(RunMethod(instance_->train_graph, instance_->eval_graph,
                          Config(Method::kPrivImStar, 6.0), rb))
          .ValueOrDie();
  EXPECT_GT(tight.noise_stddev, loose.noise_stddev);
}

}  // namespace
}  // namespace privim
