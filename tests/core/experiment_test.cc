#include "core/experiment.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(PrepareDatasetTest, SplitsAndComputesCelfReference) {
  DatasetInstance instance =
      std::move(PrepareDataset(DatasetId::kEmail, /*seed=*/1,
                               /*seed_count=*/20, /*eval_steps=*/1,
                               /*scale=*/0.3))
          .ValueOrDie();
  EXPECT_EQ(instance.spec.id, DatasetId::kEmail);
  EXPECT_EQ(instance.train_graph.num_nodes() +
                instance.eval_graph.num_nodes(),
            instance.full.num_nodes());
  EXPECT_GT(instance.celf_spread, 20.0);  // Beyond the seeds themselves.
  EXPECT_EQ(instance.celf_seeds.size(), 20u);
}

TEST(PrepareDatasetTest, DeterministicGivenSeed) {
  DatasetInstance a =
      std::move(PrepareDataset(DatasetId::kBitcoin, 7, 10, 1, 0.2))
          .ValueOrDie();
  DatasetInstance b =
      std::move(PrepareDataset(DatasetId::kBitcoin, 7, 10, 1, 0.2))
          .ValueOrDie();
  EXPECT_DOUBLE_EQ(a.celf_spread, b.celf_spread);
  EXPECT_EQ(a.celf_seeds, b.celf_seeds);
}

TEST(EvaluateMethodTest, AggregatesRepeats) {
  DatasetInstance instance =
      std::move(PrepareDataset(DatasetId::kEmail, 2, 10, 1, 0.3))
          .ValueOrDie();
  PrivImConfig cfg = MakeDefaultConfig(
      Method::kNonPrivate, 1.0, instance.train_graph.num_nodes());
  cfg.train.iterations = 8;
  cfg.train.batch_size = 4;
  cfg.seed_count = 10;
  cfg.freq.subgraph_size = 16;
  MethodEval eval =
      std::move(EvaluateMethod(instance, cfg, /*repeats=*/2, 3))
          .ValueOrDie();
  EXPECT_GT(eval.mean_spread, 0.0);
  EXPECT_GT(eval.mean_coverage, 0.0);
  EXPECT_LE(eval.mean_coverage, 130.0);
  EXPECT_GE(eval.std_coverage, 0.0);
}

TEST(EvaluateMethodTest, RejectsZeroRepeats) {
  DatasetInstance instance =
      std::move(PrepareDataset(DatasetId::kEmail, 4, 10, 1, 0.3))
          .ValueOrDie();
  PrivImConfig cfg = MakeDefaultConfig(
      Method::kNonPrivate, 1.0, instance.train_graph.num_nodes());
  EXPECT_FALSE(EvaluateMethod(instance, cfg, 0, 5).ok());
}

TEST(EnvHelpersTest, DefaultsAndOverrides) {
  unsetenv("PRIVIM_REPEATS");
  unsetenv("PRIVIM_SCALE");
  EXPECT_EQ(RepeatsFromEnv(3), 3u);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  setenv("PRIVIM_REPEATS", "5", 1);
  setenv("PRIVIM_SCALE", "0.5", 1);
  EXPECT_EQ(RepeatsFromEnv(3), 5u);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 0.5);
  setenv("PRIVIM_REPEATS", "-2", 1);
  setenv("PRIVIM_SCALE", "0.001", 1);
  EXPECT_EQ(RepeatsFromEnv(3), 3u);  // Invalid -> fallback.
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  unsetenv("PRIVIM_REPEATS");
  unsetenv("PRIVIM_SCALE");
}

}  // namespace
}  // namespace privim
