// Tests for the trainer's optimizer selection and Polyak tail averaging.

#include <cmath>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "graph/generators.h"
#include "nn/features.h"
#include "sampling/freq_sampler.h"

namespace privim {
namespace {

SubgraphContainer MakeContainer(uint64_t seed) {
  Rng rng(seed);
  Graph g = std::move(ErdosRenyi(300, 0.05, false, rng)).ValueOrDie();
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 12;
  cfg.sampling_rate = 0.8;
  cfg.frequency_threshold = 20;
  FreqSampler sampler(cfg);
  return std::move(std::move(sampler.Extract(g, rng)).ValueOrDie()
                       .container);
}

GnnModel MakeModel(uint64_t seed) {
  GnnConfig cfg;
  cfg.type = GnnType::kGcn;
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  Rng rng(seed);
  return GnnModel(cfg, rng);
}

std::vector<float> TrainAndFlatten(const TrainConfig& cfg, uint64_t seed) {
  SubgraphContainer container = MakeContainer(1);
  GnnModel model = MakeModel(2);
  Rng rng(seed);
  EXPECT_TRUE(TrainDpGnn(model, container, cfg, rng).ok());
  std::vector<float> flat(model.params().num_scalars());
  model.params().FlattenParams(flat);
  return flat;
}

TEST(TailAveragingTest, ChangesFinalParametersUnderNoise) {
  TrainConfig base;
  base.batch_size = 4;
  base.iterations = 20;
  base.noise_kind = NoiseKind::kGaussian;
  base.noise_stddev = 0.5;
  base.clip_bound = 0.1;
  TrainConfig averaged = base;
  averaged.tail_averaging = true;
  TrainConfig last_iterate = base;
  last_iterate.tail_averaging = false;
  const auto a = TrainAndFlatten(averaged, 7);
  const auto b = TrainAndFlatten(last_iterate, 7);
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(TailAveragingTest, AveragedIterateHasLessNoiseThanLast) {
  // Train a model whose gradient signal is ~zero (huge noise): the final
  // parameters are a random walk. The tail average over the last quarter
  // must be closer to the walk's recent mean than the last iterate —
  // proxy: across seeds, averaged runs have smaller parameter variance.
  TrainConfig cfg;
  cfg.batch_size = 2;
  cfg.iterations = 40;
  cfg.noise_kind = NoiseKind::kGaussian;
  cfg.noise_stddev = 50.0;
  cfg.clip_bound = 0.1;
  cfg.learning_rate = 0.05f;

  double var_last = 0.0, var_avg = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.tail_averaging = false;
    const auto last = TrainAndFlatten(cfg, seed);
    cfg.tail_averaging = true;
    const auto avg = TrainAndFlatten(cfg, seed);
    for (float v : last) var_last += static_cast<double>(v) * v;
    for (float v : avg) var_avg += static_cast<double>(v) * v;
  }
  EXPECT_LT(var_avg, var_last);
}

TEST(OptimizerKindTest, AdamAndSgdDiverge) {
  TrainConfig sgd;
  sgd.batch_size = 4;
  sgd.iterations = 15;
  sgd.noise_kind = NoiseKind::kNone;
  sgd.optimizer = OptimizerKind::kSgd;
  TrainConfig adam = sgd;
  adam.optimizer = OptimizerKind::kAdam;
  const auto a = TrainAndFlatten(sgd, 11);
  const auto b = TrainAndFlatten(adam, 11);
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-3);
}

TEST(OptimizerKindTest, AdamReducesLossOnHardConditioning) {
  SubgraphContainer container = MakeContainer(3);
  GnnModel model = MakeModel(4);
  TrainConfig cfg;
  cfg.batch_size = 8;
  cfg.iterations = 60;
  cfg.noise_kind = NoiseKind::kNone;
  cfg.optimizer = OptimizerKind::kAdam;
  cfg.learning_rate = 0.02f;
  Rng rng(5);
  TrainStats stats =
      std::move(TrainDpGnn(model, container, cfg, rng)).ValueOrDie();
  EXPECT_LT(stats.losses.back(), stats.losses.front());
}

TEST(ClipDisabledTest, RequiresNoiselessTraining) {
  SubgraphContainer container = MakeContainer(6);
  GnnModel model = MakeModel(7);
  TrainConfig cfg;
  cfg.batch_size = 4;
  cfg.iterations = 5;
  cfg.clip_bound = 0.0;
  cfg.noise_kind = NoiseKind::kGaussian;
  cfg.noise_stddev = 1.0;
  Rng rng(8);
  EXPECT_FALSE(TrainDpGnn(model, container, cfg, rng).ok());
  cfg.noise_kind = NoiseKind::kNone;
  cfg.noise_stddev = 0.0;
  EXPECT_TRUE(TrainDpGnn(model, container, cfg, rng).ok());
}

TEST(GradNormTrackingTest, PerIterationNormsRecorded) {
  SubgraphContainer container = MakeContainer(9);
  GnnModel model = MakeModel(10);
  TrainConfig cfg;
  cfg.batch_size = 4;
  cfg.iterations = 12;
  cfg.noise_kind = NoiseKind::kNone;
  Rng rng(11);
  TrainStats stats =
      std::move(TrainDpGnn(model, container, cfg, rng)).ValueOrDie();
  ASSERT_EQ(stats.grad_norms.size(), 12u);
  double mean_from_iters = 0.0;
  for (double g : stats.grad_norms) {
    EXPECT_GE(g, 0.0);
    mean_from_iters += g;
  }
  mean_from_iters /= 12.0;
  EXPECT_NEAR(mean_from_iters, stats.mean_grad_norm, 1e-9);
}

}  // namespace
}  // namespace privim
