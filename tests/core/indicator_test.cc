#include "core/indicator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace privim {
namespace {

TEST(IndicatorShapeTest, Eq12FunctionalForms) {
  IndicatorParams p;  // Paper defaults.
  const size_t v = 7600;  // LastFM.
  EXPECT_NEAR(BetaN(v, p), 0.47 * std::log(7600.0) - 1.03, 1e-9);
  EXPECT_NEAR(BetaM(v, p), 4.02 / std::log(7600.0) + 1.22, 1e-9);
}

TEST(IndicatorShapeTest, BetaNGrowsWithDatasetSize) {
  IndicatorParams p;
  EXPECT_LT(BetaN(1000, p), BetaN(196000, p));
  // beta_M shrinks with |V| (larger datasets -> smaller optimal M).
  EXPECT_GT(BetaM(1000, p), BetaM(196000, p));
}

TEST(IndicatorSurfaceTest, NormalizedToUnitMax) {
  IndicatorParams p;
  const std::vector<double> n_grid = {10, 20, 40, 60, 80};
  const std::vector<double> m_grid = {2, 4, 6, 8, 10};
  const auto surface = IndicatorSurface(n_grid, m_grid, 7600, p);
  double max_val = 0.0;
  for (const auto& row : surface) {
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
      max_val = std::max(max_val, v);
    }
  }
  EXPECT_NEAR(max_val, 1.0, 1e-12);
}

TEST(IndicatorSurfaceTest, UnimodalAlongEachAxis) {
  // The Gamma pdf is unimodal; on a fine grid the indicator should rise to
  // a peak then fall along each axis (with the other fixed).
  IndicatorParams p;
  std::vector<double> n_grid, m_grid;
  for (double n = 5; n <= 120; n += 5) n_grid.push_back(n);
  for (double m = 1; m <= 14; m += 1) m_grid.push_back(m);
  const auto surface = IndicatorSurface(n_grid, m_grid, 22500, p);
  // Check the middle column.
  const size_t j = m_grid.size() / 2;
  int direction_changes = 0;
  for (size_t i = 2; i < n_grid.size(); ++i) {
    const double d_prev = surface[i - 1][j] - surface[i - 2][j];
    const double d_cur = surface[i][j] - surface[i - 1][j];
    if (d_prev > 0 && d_cur < 0) ++direction_changes;
    if (d_prev < 0 && d_cur > 0) {
      ADD_FAILURE() << "indicator rose after falling at n=" << n_grid[i];
    }
  }
  EXPECT_LE(direction_changes, 1);
}

TEST(IndicatorPeakTest, LargerDatasetsPreferLargerNSmallerM) {
  IndicatorParams p;
  std::vector<double> n_grid, m_grid;
  for (double n = 5; n <= 120; n += 1) n_grid.push_back(n);
  for (double m = 1; m <= 14; m += 0.5) m_grid.push_back(m);
  const IndicatorPeak small = FindIndicatorPeak(n_grid, m_grid, 1000, p);
  const IndicatorPeak large =
      FindIndicatorPeak(n_grid, m_grid, 196000, p);
  EXPECT_GT(large.n, small.n);
  EXPECT_LE(large.m, small.m);
}

TEST(IndicatorPeakTest, PeakMatchesGammaMode) {
  // Peak of the n-component is at (beta_n - 1) psi_n when that lies inside
  // the grid.
  IndicatorParams p;
  std::vector<double> n_grid;
  for (double n = 1; n <= 200; n += 0.5) n_grid.push_back(n);
  const std::vector<double> m_grid = {4.0};
  const size_t v = 196000;
  const IndicatorPeak peak = FindIndicatorPeak(n_grid, m_grid, v, p);
  const double expected_mode = (BetaN(v, p) - 1.0) * p.psi_n;
  EXPECT_NEAR(peak.n, expected_mode, 1.0);
}

TEST(IndicatorFitTest, RecoversPlantedLineForN) {
  // Plant k_n = 0.5, b_n = -1.2 and generate exact optimal n values from
  // the Gamma-mode identity; the fit must recover the parameters.
  const double psi_n = 25.0, k_true = 0.5, b_true = -1.2;
  std::vector<IndicatorObservation> obs;
  for (size_t v : {1000u, 5900u, 7600u, 22500u, 196000u}) {
    const double beta = k_true * std::log(static_cast<double>(v)) + b_true;
    obs.push_back({v, (beta - 1.0) * psi_n});
  }
  IndicatorParams fitted =
      std::move(FitIndicatorN(obs, psi_n)).ValueOrDie();
  EXPECT_NEAR(fitted.k_n, k_true, 1e-9);
  EXPECT_NEAR(fitted.b_n, b_true, 1e-9);
}

TEST(IndicatorFitTest, RecoversPlantedLineForM) {
  const double psi_m = 5.0, k_true = 4.0, b_true = 1.3;
  std::vector<IndicatorObservation> obs;
  for (size_t v : {1000u, 7600u, 22500u, 196000u}) {
    const double beta =
        k_true / std::log(static_cast<double>(v)) + b_true;
    obs.push_back({v, (beta - 1.0) * psi_m});
  }
  IndicatorParams fitted =
      std::move(FitIndicatorM(obs, psi_m)).ValueOrDie();
  EXPECT_NEAR(fitted.k_m, k_true, 1e-9);
  EXPECT_NEAR(fitted.b_m, b_true, 1e-9);
}

TEST(IndicatorFitTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitIndicatorN({{1000, 30.0}}, 25.0).ok());
  EXPECT_FALSE(
      FitIndicatorN({{1000, 30.0}, {2000, 35.0}}, 0.0).ok());
  EXPECT_FALSE(FitIndicatorM({{2, 5.0}, {1000, 4.0}}, 5.0).ok());
}

TEST(IndicatorRawTest, HandlesTinyShapeGracefully) {
  // For pathological params beta could go non-positive; the implementation
  // clamps and must not crash or return NaN.
  IndicatorParams p;
  p.k_n = -10.0;
  p.b_n = 0.0;
  const double v = IndicatorRaw(20.0, 4.0, 1000, p);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GE(v, 0.0);
}

}  // namespace
}  // namespace privim
