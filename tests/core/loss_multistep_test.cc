// Additional loss tests: finite-difference gradient checks of the full
// Eq.-5 loss (single and multi-step), scale invariance properties, and
// behavior with fractional IC weights.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "core/loss.h"
#include "graph/generators.h"
#include "nn/graph_context.h"
#include "tensor/ops.h"

namespace privim {
namespace {

Matrix RandomProbs(size_t n, Rng& rng) {
  Matrix m(n, 1);
  for (size_t i = 0; i < n; ++i) {
    m(i, 0) = static_cast<float>(rng.Uniform(0.05, 0.95));
  }
  return m;
}

void CheckLossGradient(const GraphContext& ctx, Matrix probs,
                       const ImLossConfig& cfg, double tol = 3e-2) {
  Tensor x(std::move(probs), /*requires_grad=*/true);
  Tensor loss = ImPenaltyLoss(ctx, x, cfg);
  x.ZeroGrad();
  loss.Backward();
  const Matrix analytic = x.grad();

  const double eps = 1e-3;
  Matrix& value = x.mutable_value();
  for (size_t i = 0; i < value.size(); ++i) {
    const float orig = value.data()[i];
    value.data()[i] = orig + static_cast<float>(eps);
    const double up = ImPenaltyLoss(ctx, x, cfg).value()(0, 0);
    value.data()[i] = orig - static_cast<float>(eps);
    const double down = ImPenaltyLoss(ctx, x, cfg).value()(0, 0);
    value.data()[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric,
                tol * std::max(0.05, std::abs(numeric)))
        << "node " << i;
  }
}

class LossGradientTest : public ::testing::TestWithParam<int> {};

TEST_P(LossGradientTest, MatchesFiniteDifferences) {
  Rng gen(100 + GetParam());
  Graph g = std::move(ErdosRenyi(12, 0.25, true, gen)).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Rng rng(7);
  ImLossConfig cfg;
  cfg.diffusion_steps = GetParam();
  cfg.lambda = 0.3f;
  CheckLossGradient(ctx, RandomProbs(g.num_nodes(), rng), cfg);
}

INSTANTIATE_TEST_SUITE_P(Steps, LossGradientTest, ::testing::Values(1, 2, 3),
                         [](const auto& info) {
                           return "j" + std::to_string(info.param);
                         });

TEST(LossMultiStepTest, FractionalWeightsRespected) {
  // Two parallel chains into node 2 with different weights: the stronger
  // edge's source gets the stronger gradient.
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 2, 0.9f).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 0.1f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix x(3, 1, 0.5f);
  Tensor xt(x, true);
  ImLossConfig cfg;
  cfg.lambda = 0.0f;
  ImPenaltyLoss(ctx, xt, cfg).Backward();
  // More negative gradient = stronger pull toward seeding.
  EXPECT_LT(xt.grad()(0, 0), xt.grad()(1, 0));
}

TEST(LossMultiStepTest, LossIsBounded) {
  // survival in [0,1] and seed mass in [0,1] bound the loss in
  // [0, 1 + lambda].
  Rng gen(5);
  Graph g = std::move(BarabasiAlbert(60, 3, gen)).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Rng rng(6);
  ImLossConfig cfg;
  cfg.diffusion_steps = 3;
  cfg.lambda = 0.25f;
  for (int trial = 0; trial < 10; ++trial) {
    Tensor x(RandomProbs(g.num_nodes(), rng));
    const double loss = ImPenaltyLoss(ctx, x, cfg).value()(0, 0);
    EXPECT_GE(loss, 0.0);
    EXPECT_LE(loss, 1.0 + 0.25 + 1e-6);
  }
}

TEST(LossMultiStepTest, MoreStepsNeverIncreaseSurvival) {
  // Adding diffusion steps multiplies survival by factors <= 1, so the
  // coverage part of the loss is non-increasing in j for fixed x.
  Rng gen(8);
  Graph g = std::move(ErdosRenyi(40, 0.1, true, gen)).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Rng rng(9);
  Matrix probs = RandomProbs(g.num_nodes(), rng);
  ImLossConfig cfg;
  cfg.lambda = 0.0f;
  double prev = 1e9;
  for (int j = 1; j <= 4; ++j) {
    cfg.diffusion_steps = j;
    const double loss = ImPenaltyLoss(ctx, Tensor(probs), cfg).value()(0, 0);
    EXPECT_LE(loss, prev + 1e-6) << "j=" << j;
    prev = loss;
  }
}

TEST(LossMultiStepTest, SubgraphSizeInvariantScale) {
  // Mean normalization: duplicating a graph as two disconnected copies
  // with the same per-node seed probabilities leaves the loss unchanged.
  GraphBuilder small(3);
  ASSERT_TRUE(small.AddEdge(0, 1, 1.0f).ok());
  ASSERT_TRUE(small.AddEdge(1, 2, 1.0f).ok());
  Graph gs = std::move(small.Build()).ValueOrDie();
  GraphBuilder doubled(6);
  ASSERT_TRUE(doubled.AddEdge(0, 1, 1.0f).ok());
  ASSERT_TRUE(doubled.AddEdge(1, 2, 1.0f).ok());
  ASSERT_TRUE(doubled.AddEdge(3, 4, 1.0f).ok());
  ASSERT_TRUE(doubled.AddEdge(4, 5, 1.0f).ok());
  Graph gd = std::move(doubled.Build()).ValueOrDie();

  Matrix xs(3, 1);
  xs(0, 0) = 0.8f;
  xs(1, 0) = 0.3f;
  xs(2, 0) = 0.1f;
  Matrix xd(6, 1);
  for (int copy = 0; copy < 2; ++copy) {
    for (int i = 0; i < 3; ++i) xd(3 * copy + i, 0) = xs(i, 0);
  }
  ImLossConfig cfg;
  cfg.diffusion_steps = 2;
  const double ls =
      ImPenaltyLoss(BuildGraphContext(gs), Tensor(xs), cfg).value()(0, 0);
  const double ld =
      ImPenaltyLoss(BuildGraphContext(gd), Tensor(xd), cfg).value()(0, 0);
  EXPECT_NEAR(ls, ld, 1e-6);
}

}  // namespace
}  // namespace privim
