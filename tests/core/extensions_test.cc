// Tests for the paper's extension points: alternative diffusion models at
// evaluation (LT / SIS / Monte-Carlo IC), indicator-driven auto-tuning,
// and exporting the trained model.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/privim.h"
#include "graph/generators.h"
#include "im/seed_selection.h"
#include "nn/features.h"
#include "nn/graph_context.h"

namespace privim {
namespace {

struct SplitGraphs {
  Graph train;
  Graph eval;
};

SplitGraphs MakeSplitGraphs(uint64_t seed) {
  Rng rng(seed);
  SplitGraphs out;
  out.train = std::move(BarabasiAlbert(500, 4, rng)).ValueOrDie();
  out.eval = std::move(BarabasiAlbert(500, 4, rng)).ValueOrDie();
  return out;
}

PrivImConfig FastConfig(const SplitGraphs& graphs) {
  PrivImConfig cfg = MakeDefaultConfig(Method::kPrivImStar, 4.0,
                                       graphs.train.num_nodes());
  cfg.train.iterations = 12;
  cfg.train.batch_size = 8;
  cfg.seed_count = 10;
  cfg.freq.subgraph_size = 16;
  return cfg;
}

class DiffusionModeTest
    : public ::testing::TestWithParam<PrivImConfig::EvalDiffusion> {};

TEST_P(DiffusionModeTest, RunMethodSupportsAllEvalModels) {
  SplitGraphs graphs = MakeSplitGraphs(1);
  PrivImConfig cfg = FastConfig(graphs);
  cfg.eval_diffusion = GetParam();
  cfg.eval_trials = 16;
  if (GetParam() == PrivImConfig::EvalDiffusion::kSis) cfg.eval_steps = 5;
  Rng rng(2);
  PrivImRunResult run =
      std::move(RunMethod(graphs.train, graphs.eval, cfg, rng))
          .ValueOrDie();
  EXPECT_EQ(run.seeds.size(), cfg.seed_count);
  // Every diffusion model activates at least the seeds themselves.
  EXPECT_GE(run.spread, static_cast<double>(cfg.seed_count));
  EXPECT_LE(run.spread, static_cast<double>(graphs.eval.num_nodes()));
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, DiffusionModeTest,
    ::testing::Values(PrivImConfig::EvalDiffusion::kExactIc,
                      PrivImConfig::EvalDiffusion::kMonteCarloIc,
                      PrivImConfig::EvalDiffusion::kLt,
                      PrivImConfig::EvalDiffusion::kSis),
    [](const auto& info) {
      switch (info.param) {
        case PrivImConfig::EvalDiffusion::kExactIc:
          return "ExactIc";
        case PrivImConfig::EvalDiffusion::kMonteCarloIc:
          return "MonteCarloIc";
        case PrivImConfig::EvalDiffusion::kLt:
          return "LT";
        case PrivImConfig::EvalDiffusion::kSis:
          return "SIS";
      }
      return "Unknown";
    });

TEST(DiffusionOracleTest, MonteCarloIcMatchesExactOnUnitWeights) {
  Rng gen(3);
  Graph g = std::move(ErdosRenyi(60, 0.08, true, gen)).ValueOrDie();
  Rng rng(4);
  SpreadOracle mc = MakeMonteCarloOracle(g, 8, rng, 1).ValueOrDie();
  SpreadOracle exact = MakeExactUnitOracle(g, 1);
  const std::vector<NodeId> seeds = {1, 5, 9};
  EXPECT_DOUBLE_EQ(mc(seeds), exact(seeds));
}

TEST(DiffusionOracleTest, LtOracleUnitWeightsFullPropagation) {
  // With weight 1 every reachable node activates under LT a.s.
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0f).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 1.0f).ok());
  ASSERT_TRUE(b.AddEdge(2, 3, 1.0f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  Rng rng(5);
  SpreadOracle lt = MakeLtOracle(g, 10, rng).ValueOrDie();
  EXPECT_DOUBLE_EQ(lt({0}), 4.0);
}

TEST(DiffusionOracleTest, SisOracleMonotoneInSteps) {
  Rng gen(6);
  Graph g = std::move(BarabasiAlbert(80, 3, gen)).ValueOrDie();
  Rng rng(7);
  const std::vector<NodeId> seeds = {0, 1};
  SpreadOracle short_run =
      MakeSisOracle(g, 32, 0.3, 1, rng).ValueOrDie();
  SpreadOracle long_run =
      MakeSisOracle(g, 32, 0.3, 6, rng).ValueOrDie();
  EXPECT_LE(short_run(seeds), long_run(seeds));
}

TEST(AutoTuneTest, SetsParametersFromIndicatorPeak) {
  PrivImConfig cfg = MakeDefaultConfig(Method::kPrivImStar, 3.0, 1000);
  AutoTuneSamplingParams(7600, cfg);  // LastFM paper size.
  EXPECT_GE(cfg.freq.subgraph_size, 10u);
  EXPECT_LE(cfg.freq.subgraph_size, 80u);
  EXPECT_GE(cfg.freq.frequency_threshold, 2u);
  EXPECT_LE(cfg.freq.frequency_threshold, 12u);
  EXPECT_EQ(cfg.rwr.subgraph_size, cfg.freq.subgraph_size);
}

TEST(AutoTuneTest, LargerDatasetsGetLargerNSmallerM) {
  PrivImConfig small_cfg = MakeDefaultConfig(Method::kPrivImStar, 3.0, 500);
  PrivImConfig large_cfg = MakeDefaultConfig(Method::kPrivImStar, 3.0, 500);
  AutoTuneSamplingParams(1000, small_cfg);
  AutoTuneSamplingParams(196000, large_cfg);
  EXPECT_GE(large_cfg.freq.subgraph_size, small_cfg.freq.subgraph_size);
  EXPECT_LE(large_cfg.freq.frequency_threshold,
            small_cfg.freq.frequency_threshold);
}

TEST(ModelExportTest, RunMethodHandsOutTrainedModel) {
  SplitGraphs graphs = MakeSplitGraphs(8);
  PrivImConfig cfg = FastConfig(graphs);
  Rng rng(9);
  std::unique_ptr<GnnModel> model;
  PrivImRunResult run =
      std::move(RunMethod(graphs.train, graphs.eval, cfg, rng, &model))
          .ValueOrDie();
  ASSERT_NE(model, nullptr);
  // The exported model reproduces the run's ranking: scoring the eval
  // graph again yields the same top seeds (modulo the run's random
  // tie-break order, so compare as sets).
  GraphContext ctx = BuildGraphContext(graphs.eval);
  Tensor logits =
      model->ForwardLogits(ctx, Tensor(BuildNodeFeatures(graphs.eval)));
  EXPECT_EQ(logits.rows(), graphs.eval.num_nodes());
  EXPECT_EQ(run.seeds.size(), cfg.seed_count);
}

}  // namespace
}  // namespace privim
