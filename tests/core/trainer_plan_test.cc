// End-to-end differential test: TrainDpGnn on compiled plans
// (use_compiled_plan, the default) against the dynamic-tape reference, at
// thread counts {1, 8}, with the full DP pipeline active (clipping +
// Gaussian noise). Everything the loop releases must match bitwise: the
// loss curve, the per-iteration gradient norms, and the final parameters —
// which is what keeps goldens, checkpoints, and the epsilon ledger valid
// under the plan runtime.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "graph/generators.h"
#include "nn/features.h"
#include "sampling/freq_sampler.h"

namespace privim {
namespace {

SubgraphContainer MakeContainer(size_t num_subgraphs, uint64_t seed) {
  Rng rng(seed);
  Graph g = std::move(ErdosRenyi(400, 0.04, false, rng)).ValueOrDie();
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 12;
  cfg.sampling_rate = 1.0;
  cfg.frequency_threshold = 20;
  FreqSampler sampler(cfg);
  DualStageResult result = std::move(sampler.Extract(g, rng)).ValueOrDie();
  SubgraphContainer out;
  for (size_t i = 0; i < result.container.size() && i < num_subgraphs;
       ++i) {
    out.Add(result.container[i]);
  }
  return out;
}

GnnModel MakeModel(GnnType type, uint64_t seed) {
  GnnConfig cfg;
  cfg.type = type;
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  Rng rng(seed);
  return GnnModel(cfg, rng);
}

std::vector<float> FlatParams(const GnnModel& model) {
  std::vector<float> out(model.params().num_scalars());
  model.params().FlattenParams(out);
  return out;
}

void ExpectBitEqual(const std::vector<float>& a, const std::vector<float>& b,
                    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what;
}

TrainConfig DpTrainConfig(size_t threads, bool use_plan) {
  TrainConfig cfg;
  cfg.batch_size = 6;
  cfg.iterations = 12;
  cfg.learning_rate = 0.05f;
  cfg.clip_bound = 1.0;
  cfg.noise_kind = NoiseKind::kGaussian;
  cfg.noise_stddev = 0.3;
  cfg.num_threads = threads;
  cfg.use_compiled_plan = use_plan;
  // This suite pins BIT-identity between plan and tape, so it compiles
  // the scalar reference plans; the optimized (fused + SIMD) path is
  // tolerance-pinned separately in trainer_simd_diff_test.cc.
  cfg.plan_optimize = false;
  return cfg;
}

class TrainerPlanTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TrainerPlanTest, PlanTrainingMatchesTapeBitwise) {
  const size_t threads = GetParam();
  SubgraphContainer container = MakeContainer(40, 11);
  ASSERT_GE(container.size(), 8u);

  for (GnnType type : {GnnType::kGrat, GnnType::kGin}) {
    SCOPED_TRACE(GnnTypeName(type));
    GnnModel tape_model = MakeModel(type, 21);
    Rng tape_rng(31);
    TrainStats tape_stats =
        std::move(TrainDpGnn(tape_model, container,
                             DpTrainConfig(threads, /*use_plan=*/false),
                             tape_rng))
            .ValueOrDie();

    GnnModel plan_model = MakeModel(type, 21);
    Rng plan_rng(31);
    TrainStats plan_stats =
        std::move(TrainDpGnn(plan_model, container,
                             DpTrainConfig(threads, /*use_plan=*/true),
                             plan_rng))
            .ValueOrDie();

    ASSERT_EQ(tape_stats.losses.size(), plan_stats.losses.size());
    for (size_t t = 0; t < tape_stats.losses.size(); ++t) {
      EXPECT_EQ(tape_stats.losses[t], plan_stats.losses[t]) << "iter " << t;
      EXPECT_EQ(tape_stats.grad_norms[t], plan_stats.grad_norms[t])
          << "iter " << t;
    }
    EXPECT_EQ(tape_stats.mean_grad_norm, plan_stats.mean_grad_norm);
    ExpectBitEqual(FlatParams(tape_model), FlatParams(plan_model),
                   "final parameters");
    // Both runs consumed the caller's RNG identically (batch draws + one
    // noise draw per iteration), so the streams end in the same state.
    EXPECT_EQ(tape_rng.SaveState(), plan_rng.SaveState());
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, TrainerPlanTest,
                         ::testing::Values<size_t>(1, 8));

}  // namespace
}  // namespace privim
