// End-to-end differential test for the OPTIMIZED plan path: the full DP
// training loop (clipping active, noise off so runs are comparable) on
// fused + SIMD plans (plan_optimize, the default) against the scalar
// reference plans, at thread counts {1, 8}. SIMD matmuls use FMA and
// reassociated reductions, so bit-identity is not the contract here —
// instead the loss curve, the per-iteration gradient norms, and the final
// parameters must stay within a pinned tolerance band, and the seed sets
// the two trained models select must coincide. (The bit-identity
// counterpart with plan_optimize=false lives in trainer_plan_test.cc.)

#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "graph/generators.h"
#include "im/seed_selection.h"
#include "nn/features.h"
#include "nn/graph_context.h"
#include "sampling/freq_sampler.h"

namespace privim {
namespace {

// Accumulated over 12 SGD iterations, per-pass kernel differences of a few
// float ULPs compound; 2e-3 relative holds with a wide margin in practice.
constexpr double kRelTol = 2e-3;

Graph MakeBaseGraph() {
  Rng rng(11);
  return std::move(ErdosRenyi(400, 0.04, false, rng)).ValueOrDie();
}

SubgraphContainer MakeContainer(const Graph& g, size_t num_subgraphs) {
  Rng rng(12);
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 12;
  cfg.sampling_rate = 1.0;
  cfg.frequency_threshold = 20;
  FreqSampler sampler(cfg);
  DualStageResult result = std::move(sampler.Extract(g, rng)).ValueOrDie();
  SubgraphContainer out;
  for (size_t i = 0; i < result.container.size() && i < num_subgraphs; ++i) {
    out.Add(result.container[i]);
  }
  return out;
}

GnnModel MakeModel(GnnType type, uint64_t seed) {
  GnnConfig cfg;
  cfg.type = type;
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  Rng rng(seed);
  return GnnModel(cfg, rng);
}

TrainConfig DiffTrainConfig(size_t threads, bool optimize) {
  TrainConfig cfg;
  cfg.batch_size = 6;
  cfg.iterations = 12;
  cfg.learning_rate = 0.05f;
  cfg.clip_bound = 1.0;           // Clipping stays in the loop...
  cfg.noise_kind = NoiseKind::kGaussian;
  cfg.noise_stddev = 0.0;         // ...noise off, so runs are comparable.
  cfg.num_threads = threads;
  cfg.use_compiled_plan = true;
  cfg.plan_optimize = optimize;
  return cfg;
}

std::vector<float> FlatParams(const GnnModel& model) {
  std::vector<float> out(model.params().num_scalars());
  model.params().FlattenParams(out);
  return out;
}

// Seeds the trained model would release: full-graph inference
// probabilities ranked by TopKByScore under the exact 1-step oracle. Uses
// the scalar reference inference plan for BOTH models so the comparison
// isolates what training produced, not how inference was executed.
std::vector<NodeId> SelectedSeeds(const GnnModel& model, const Graph& g,
                                  const GraphContext& ctx,
                                  const Matrix& features, size_t k) {
  const GnnPlan plan = model.Compile(ctx);
  std::vector<float> params = FlatParams(model);
  PlanArena arena;
  plan.Forward(params, features, arena);
  std::span<const float> probs = plan.Output(arena);
  std::vector<double> scores(probs.begin(), probs.end());
  std::vector<NodeId> candidates(g.num_nodes());
  std::iota(candidates.begin(), candidates.end(), NodeId{0});
  SeedSelection sel =
      std::move(
          TopKByScore(candidates, k, scores, MakeExactUnitOracle(g)))
          .ValueOrDie();
  return sel.seeds;
}

class TrainerSimdDiffTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TrainerSimdDiffTest, OptimizedPlansMatchReferenceWithinTolerance) {
  const size_t threads = GetParam();
  const Graph g = MakeBaseGraph();
  SubgraphContainer container = MakeContainer(g, 40);
  ASSERT_GE(container.size(), 8u);
  const GraphContext full_ctx = BuildGraphContext(g);
  const Matrix full_features = BuildNodeFeatures(g);

  for (GnnType type : {GnnType::kGrat, GnnType::kGin}) {
    SCOPED_TRACE(GnnTypeName(type));
    GnnModel ref_model = MakeModel(type, 21);
    Rng ref_rng(31);
    TrainStats ref_stats =
        std::move(TrainDpGnn(ref_model, container,
                             DiffTrainConfig(threads, /*optimize=*/false),
                             ref_rng))
            .ValueOrDie();

    GnnModel opt_model = MakeModel(type, 21);
    Rng opt_rng(31);
    TrainStats opt_stats =
        std::move(TrainDpGnn(opt_model, container,
                             DiffTrainConfig(threads, /*optimize=*/true),
                             opt_rng))
            .ValueOrDie();

    // Loss curve and clipped-gradient norms, iteration by iteration.
    ASSERT_EQ(ref_stats.losses.size(), opt_stats.losses.size());
    for (size_t t = 0; t < ref_stats.losses.size(); ++t) {
      EXPECT_NEAR(ref_stats.losses[t], opt_stats.losses[t],
                  kRelTol * (1.0 + std::abs(ref_stats.losses[t])))
          << "loss at iter " << t;
      EXPECT_NEAR(ref_stats.grad_norms[t], opt_stats.grad_norms[t],
                  kRelTol * (1.0 + ref_stats.grad_norms[t]))
          << "grad norm at iter " << t;
    }
    EXPECT_NEAR(ref_stats.mean_grad_norm, opt_stats.mean_grad_norm,
                kRelTol * (1.0 + ref_stats.mean_grad_norm));

    // Final parameters, element-wise.
    const std::vector<float> ref_p = FlatParams(ref_model);
    const std::vector<float> opt_p = FlatParams(opt_model);
    ASSERT_EQ(ref_p.size(), opt_p.size());
    for (size_t i = 0; i < ref_p.size(); ++i) {
      ASSERT_NEAR(ref_p[i], opt_p[i],
                  kRelTol * (1.0 + std::abs(ref_p[i])))
          << "param scalar " << i;
    }

    // Both loops consumed the caller's RNG identically (same batch draws;
    // the zero-stddev noise path draws nothing extra).
    EXPECT_EQ(ref_rng.SaveState(), opt_rng.SaveState());

    // The released artifact — the selected seed set — is identical.
    EXPECT_EQ(SelectedSeeds(ref_model, g, full_ctx, full_features, 5),
              SelectedSeeds(opt_model, g, full_ctx, full_features, 5));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, TrainerSimdDiffTest,
                         ::testing::Values<size_t>(1, 8));

}  // namespace
}  // namespace privim
