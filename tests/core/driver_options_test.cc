// The shared driver flag parser (core/driver_options.h): one
// implementation behind privim_cli, privim_serve, and privim_shard, so
// spellings and validation cannot drift. Includes the ToArgs -> TryParse
// round-trip parity the ISSUE asks for.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/driver_options.h"

namespace privim {
namespace {

/// Runs the shared parser over a full synthetic argv the way the drivers
/// do; unrecognized flags are collected instead of rejected.
struct ParseOutcome {
  DriverOptions options;
  std::vector<std::string> unclaimed;
  Status status = Status::OK();
};

ParseOutcome Parse(std::vector<std::string> args,
                   DriverOptions::Features features = {}) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("driver"));
  for (std::string& a : args) argv.push_back(a.data());
  ParseOutcome out;
  for (int i = 1; i < static_cast<int>(argv.size()); ++i) {
    Result<bool> shared = out.options.TryParse(
        static_cast<int>(argv.size()), argv.data(), i, features);
    if (!shared.ok()) {
      out.status = shared.status();
      return out;
    }
    if (!*shared) out.unclaimed.push_back(argv[i]);
  }
  return out;
}

TEST(DriverOptionsTest, ParsesEverySharedFlag) {
  ParseOutcome out =
      Parse({"--threads", "8", "--seed", "7", "--telemetry", "t.json",
             "--checkpoint-dir", "ck", "--resume"});
  ASSERT_TRUE(out.status.ok());
  EXPECT_TRUE(out.unclaimed.empty());
  EXPECT_EQ(out.options.threads, 8u);
  EXPECT_EQ(out.options.seed, 7u);
  EXPECT_EQ(out.options.telemetry_path, "t.json");
  EXPECT_EQ(out.options.checkpoint_dir, "ck");
  EXPECT_TRUE(out.options.resume);
  EXPECT_TRUE(out.options.Validate().ok());
}

TEST(DriverOptionsTest, AcceptsEqualsFormForTelemetry) {
  ParseOutcome out = Parse({"--telemetry=runs/t.json"});
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.options.telemetry_path, "runs/t.json");
}

TEST(DriverOptionsTest, LeavesDriverSpecificFlagsAlone) {
  ParseOutcome out =
      Parse({"--dataset", "Email", "--threads", "2", "--epsilon", "1.5"});
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.options.threads, 2u);
  // The non-shared flags come back untouched and in order; their value
  // arguments stay with them for the driver's own parser.
  EXPECT_EQ(out.unclaimed,
            (std::vector<std::string>{"--dataset", "Email", "--epsilon",
                                      "1.5"}));
}

TEST(DriverOptionsTest, RejectsMissingValues) {
  EXPECT_FALSE(Parse({"--threads"}).status.ok());
  EXPECT_FALSE(Parse({"--seed"}).status.ok());
  EXPECT_FALSE(Parse({"--telemetry"}).status.ok());
  EXPECT_FALSE(Parse({"--checkpoint-dir"}).status.ok());
}

TEST(DriverOptionsTest, CheckpointFlagsNeedTheFeature) {
  // privim_serve builds with checkpoint = false: the shared flags fail
  // loudly instead of being silently swallowed.
  DriverOptions::Features no_ckpt;
  no_ckpt.checkpoint = false;
  ParseOutcome dir = Parse({"--checkpoint-dir", "ck"}, no_ckpt);
  ASSERT_FALSE(dir.status.ok());
  EXPECT_NE(dir.status.ToString().find("not supported"), std::string::npos);
  EXPECT_FALSE(Parse({"--resume"}, no_ckpt).status.ok());
  // The rest of the shared flags still work without the feature.
  ParseOutcome ok = Parse({"--threads", "4"}, no_ckpt);
  EXPECT_TRUE(ok.status.ok());
  EXPECT_EQ(ok.options.threads, 4u);
}

TEST(DriverOptionsTest, ValidateRequiresCheckpointDirForResume) {
  ParseOutcome out = Parse({"--resume"});
  ASSERT_TRUE(out.status.ok());
  const Status st = out.options.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("--checkpoint-dir"), std::string::npos);
}

TEST(DriverOptionsTest, ToArgsRoundTripsThroughTryParse) {
  DriverOptions original;
  original.threads = 16;
  original.seed = 99;
  original.telemetry_path = "out/t.json";
  original.checkpoint_dir = "snap";
  original.resume = true;

  ParseOutcome out = Parse(original.ToArgs());
  ASSERT_TRUE(out.status.ok());
  EXPECT_TRUE(out.unclaimed.empty());
  EXPECT_EQ(out.options.threads, original.threads);
  EXPECT_EQ(out.options.seed, original.seed);
  EXPECT_EQ(out.options.telemetry_path, original.telemetry_path);
  EXPECT_EQ(out.options.checkpoint_dir, original.checkpoint_dir);
  EXPECT_EQ(out.options.resume, original.resume);
}

TEST(DriverOptionsTest, ToArgsOmitsDefaults) {
  EXPECT_TRUE(DriverOptions{}.ToArgs().empty());
  DriverOptions only_seed;
  only_seed.seed = 7;
  EXPECT_EQ(only_seed.ToArgs(),
            (std::vector<std::string>{"--seed", "7"}));
}

TEST(DriverOptionsTest, UsageTextTracksFeatures) {
  const std::string full = DriverOptions::UsageText();
  EXPECT_NE(full.find("--checkpoint-dir"), std::string::npos);
  EXPECT_NE(full.find("--threads"), std::string::npos);
  DriverOptions::Features no_ckpt;
  no_ckpt.checkpoint = false;
  const std::string bare = DriverOptions::UsageText(no_ckpt);
  EXPECT_EQ(bare.find("--checkpoint-dir"), std::string::npos);
  EXPECT_EQ(bare.find("--resume"), std::string::npos);
  EXPECT_NE(bare.find("--telemetry"), std::string::npos);
}

}  // namespace
}  // namespace privim
