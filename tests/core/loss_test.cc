#include "core/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "nn/graph_context.h"
#include "tensor/ops.h"

namespace privim {
namespace {

Graph UnitTriangle() {
  GraphBuilder b(3);
  EXPECT_TRUE(b.AddEdge(0, 1, 1.0f).ok());
  EXPECT_TRUE(b.AddEdge(1, 2, 1.0f).ok());
  EXPECT_TRUE(b.AddEdge(2, 0, 1.0f).ok());
  return std::move(b.Build()).ValueOrDie();
}

TEST(ImPenaltyLossTest, HandComputedSingleStep) {
  // Triangle with unit weights, x = (1, 0, 0):
  //   z = A^T x per node: z_1 = 1 (from node 0), z_0 = z_2 = 0.
  //   p = 1 - exp(-z): p_1 = 1 - e^{-1}, p_0 = p_2 = 0.
  //   survival = (1, e^{-1}, 1); mean = (2 + e^{-1}) / 3.
  //   loss = mean_survival + lambda * mean(x) = ... + lambda / 3.
  Graph g = UnitTriangle();
  GraphContext ctx = BuildGraphContext(g);
  Matrix x(3, 1);
  x(0, 0) = 1.0f;
  ImLossConfig cfg;
  cfg.diffusion_steps = 1;
  cfg.lambda = 0.3f;
  Tensor loss = ImPenaltyLoss(ctx, Tensor(x), cfg);
  const double expected =
      (2.0 + std::exp(-1.0)) / 3.0 + 0.3 / 3.0;
  EXPECT_NEAR(loss.value()(0, 0), expected, 1e-5);
}

TEST(ImPenaltyLossTest, ZeroSeedsGivesMaximalUninfluenceTerm) {
  Graph g = UnitTriangle();
  GraphContext ctx = BuildGraphContext(g);
  Matrix x(3, 1, 0.0f);
  ImLossConfig cfg;
  Tensor loss = ImPenaltyLoss(ctx, Tensor(x), cfg);
  // No influence mass: survival = 1 everywhere, seed mass 0.
  EXPECT_NEAR(loss.value()(0, 0), 1.0, 1e-6);
}

TEST(ImPenaltyLossTest, FullSeedingMinimizesUninfluenceTerm) {
  Graph g = UnitTriangle();
  GraphContext ctx = BuildGraphContext(g);
  Matrix zero(3, 1, 0.0f);
  Matrix full(3, 1, 1.0f);
  ImLossConfig cfg;
  cfg.lambda = 0.0f;  // Isolate the coverage term.
  const double uncovered =
      ImPenaltyLoss(ctx, Tensor(zero), cfg).value()(0, 0);
  const double covered =
      ImPenaltyLoss(ctx, Tensor(full), cfg).value()(0, 0);
  EXPECT_LT(covered, uncovered);
}

TEST(ImPenaltyLossTest, LambdaPenalizesSeedMass) {
  Graph g = UnitTriangle();
  GraphContext ctx = BuildGraphContext(g);
  Matrix x(3, 1, 0.5f);
  ImLossConfig low;
  low.lambda = 0.1f;
  ImLossConfig high;
  high.lambda = 1.0f;
  const double l_low = ImPenaltyLoss(ctx, Tensor(x), low).value()(0, 0);
  const double l_high = ImPenaltyLoss(ctx, Tensor(x), high).value()(0, 0);
  EXPECT_NEAR(l_high - l_low, 0.9 * 0.5, 1e-5);
}

TEST(ImPenaltyLossTest, MultiStepCoversMoreThanSingleStep) {
  // Path 0 -> 1 -> 2 with seed only at 0: one step leaves node 2
  // uninfluenced, two steps reach it.
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0f).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 1.0f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix x(3, 1);
  x(0, 0) = 1.0f;
  ImLossConfig one;
  one.diffusion_steps = 1;
  one.lambda = 0.0f;
  ImLossConfig two = one;
  two.diffusion_steps = 2;
  const double l1 = ImPenaltyLoss(ctx, Tensor(x), one).value()(0, 0);
  const double l2 = ImPenaltyLoss(ctx, Tensor(x), two).value()(0, 0);
  EXPECT_LT(l2, l1);
}

TEST(ImPenaltyLossTest, SurrogateUpperBoundsIcProbability) {
  // Theorem 2's bound direction: the aggregated surrogate p_hat must be >=
  // the true IC one-step activation probability 1 - prod(1 - w x) whenever
  // the linear mass sum(w x) >= ln(1/prod(1-wx))... For the smooth
  // phi(z) = 1 - exp(-z), phi(sum a_i) >= 1 - prod(1 - a_i) holds for
  // a_i in [0, 1) since exp(-a) <= 1 - a is false... verify numerically
  // over a grid that the bound 1 - exp(-sum) >= 1 - prod(1 - a) holds,
  // which reduces to prod(1-a_i) >= exp(-sum a_i) — true since
  // 1 - a >= e^{-a/(1-a)}... Checked empirically below on [0, 0.9].
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t deg = 1 + rng.UniformInt(5);
    double sum = 0.0, prod = 1.0;
    for (size_t i = 0; i < deg; ++i) {
      const double a = rng.Uniform(0.0, 0.9);
      sum += a;
      prod *= (1.0 - a);
    }
    const double smooth = 1.0 - std::exp(-sum);
    const double ic = 1.0 - prod;
    // The smooth surrogate is NOT always above the IC probability; it is
    // above the *linearized* probability's saturation. What Theorem 2
    // needs is that the *linear* aggregation upper-bounds IC:
    EXPECT_GE(sum, ic - 1e-12);
    // and the surrogate is sandwiched between IC's complement behaviors:
    EXPECT_LE(smooth, sum + 1e-12);
  }
}

TEST(ImPenaltyLossTest, GradientPullsSeedsTowardHighCoverage) {
  // On a star graph, increasing the hub's seed probability must lower the
  // loss more than increasing a leaf's.
  GraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) ASSERT_TRUE(b.AddEdge(0, v, 1.0f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix x(5, 1, 0.2f);
  Tensor xt(x, /*requires_grad=*/true);
  ImLossConfig cfg;
  cfg.lambda = 0.1f;
  Tensor loss = ImPenaltyLoss(ctx, xt, cfg);
  xt.ZeroGrad();
  loss.Backward();
  // d loss / d x_hub should be more negative than d loss / d x_leaf.
  EXPECT_LT(xt.grad()(0, 0), xt.grad()(1, 0));
  EXPECT_LT(xt.grad()(0, 0), 0.0f);
}

TEST(ImPenaltyLossTest, IgnoresSelfLoopChannel) {
  // The IC aggregation must not let a node influence itself through the
  // structural self-loops added for GNN layers.
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0f).ok());
  Graph g = std::move(b.Build()).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix x(2, 1);
  x(1, 0) = 1.0f;  // Seed the sink; it has no out-edges.
  ImLossConfig cfg;
  cfg.lambda = 0.0f;
  Tensor loss = ImPenaltyLoss(ctx, Tensor(x), cfg);
  // Nothing gets influenced: survival = 1 for both nodes.
  EXPECT_NEAR(loss.value()(0, 0), 1.0, 1e-6);
}

}  // namespace
}  // namespace privim
