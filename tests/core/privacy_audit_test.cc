// Privacy audit tests: the guarantees the accountant certifies must match
// what the pipeline actually does. These tests cross-check the wiring
// between sampler bounds, sensitivity, calibrated noise and the reported
// epsilon for every method configuration.

#include <gtest/gtest.h>

#include "core/privim.h"
#include "dp/rdp_accountant.h"
#include "dp/sensitivity.h"
#include "graph/generators.h"

namespace privim {
namespace {

struct SplitGraphs {
  Graph train;
  Graph eval;
};

SplitGraphs MakeSplitGraphs(uint64_t seed) {
  Rng rng(seed);
  SplitGraphs out;
  out.train = std::move(BarabasiAlbert(500, 4, rng)).ValueOrDie();
  out.eval = std::move(BarabasiAlbert(500, 4, rng)).ValueOrDie();
  return out;
}

PrivImConfig FastConfig(Method method, double epsilon,
                        const SplitGraphs& graphs) {
  PrivImConfig cfg =
      MakeDefaultConfig(method, epsilon, graphs.train.num_nodes());
  cfg.train.iterations = 10;
  cfg.train.batch_size = 8;
  cfg.seed_count = 10;
  cfg.freq.subgraph_size = 16;
  cfg.rwr.subgraph_size = 16;
  return cfg;
}

class PrivacyAuditTest : public ::testing::TestWithParam<Method> {};

TEST_P(PrivacyAuditTest, ReportedNoiseMatchesRecomputedAccounting) {
  SplitGraphs graphs = MakeSplitGraphs(1);
  PrivImConfig cfg = FastConfig(GetParam(), 3.0, graphs);
  Rng rng(2);
  PrivImRunResult run =
      std::move(RunMethod(graphs.train, graphs.eval, cfg, rng))
          .ValueOrDie();

  // Recompute: with the run's (N_g, m, B, T, C), the reported sigma must
  // achieve the reported epsilon under an independent accountant instance.
  DpSgdSpec spec;
  spec.max_occurrences = run.occurrence_bound;
  spec.container_size = run.container_size;
  spec.batch_size = std::min(cfg.train.batch_size, run.container_size);
  spec.iterations = cfg.train.iterations;
  spec.clip_bound = run.clip_bound_used;
  RdpAccountant acc = std::move(RdpAccountant::Create(spec)).ValueOrDie();
  EXPECT_NEAR(*acc.Epsilon(run.sigma, cfg.budget.delta), run.epsilon_spent,
              1e-9);
  EXPECT_LE(run.epsilon_spent, cfg.budget.epsilon + 1e-6);
  // Reported noise stddev = sigma * C * N_g.
  EXPECT_NEAR(run.noise_stddev,
              run.sigma * NodeSensitivity(run.clip_bound_used,
                                          run.occurrence_bound),
              1e-9);
}

TEST_P(PrivacyAuditTest, OccurrenceAuditUpheld) {
  SplitGraphs graphs = MakeSplitGraphs(3);
  PrivImConfig cfg = FastConfig(GetParam(), 2.0, graphs);
  Rng rng(4);
  PrivImRunResult run =
      std::move(RunMethod(graphs.train, graphs.eval, cfg, rng))
          .ValueOrDie();
  EXPECT_LE(run.audited_max_occurrence, run.occurrence_bound);
  EXPECT_GE(run.occurrence_bound, 1u);
  EXPECT_LE(run.occurrence_bound, run.container_size);
}

INSTANTIATE_TEST_SUITE_P(
    PrivateMethods, PrivacyAuditTest,
    ::testing::Values(Method::kPrivIm, Method::kPrivImScs,
                      Method::kPrivImStar, Method::kEgn, Method::kHp,
                      Method::kHpGrat),
    [](const auto& info) {
      std::string name = MethodName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(PrivacyAuditTest, TighterBudgetNeverGetsLessNoise) {
  SplitGraphs graphs = MakeSplitGraphs(5);
  double prev_noise = 1e300;
  for (double eps : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    PrivImConfig cfg = FastConfig(Method::kPrivImStar, eps, graphs);
    Rng rng(6);
    PrivImRunResult run =
        std::move(RunMethod(graphs.train, graphs.eval, cfg, rng))
            .ValueOrDie();
    EXPECT_LE(run.noise_stddev, prev_noise + 1e-9) << "eps " << eps;
    prev_noise = run.noise_stddev;
  }
}

TEST(PrivacyAuditTest, DeltaDefaultBelowInverseTrainSize) {
  PrivImConfig cfg = MakeDefaultConfig(Method::kPrivImStar, 2.0, 1234);
  EXPECT_LT(cfg.budget.delta, 1.0 / 1234.0);
  EXPECT_GT(cfg.budget.delta, 0.0);
}

}  // namespace
}  // namespace privim
