#include "core/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "graph/generators.h"
#include "nn/features.h"
#include "sampling/freq_sampler.h"

namespace privim {
namespace {

SubgraphContainer MakeContainer(size_t num_subgraphs, uint64_t seed) {
  Rng rng(seed);
  Graph g = std::move(ErdosRenyi(400, 0.04, false, rng)).ValueOrDie();
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 12;
  cfg.sampling_rate = 1.0;
  cfg.frequency_threshold = 20;
  FreqSampler sampler(cfg);
  DualStageResult result = std::move(sampler.Extract(g, rng)).ValueOrDie();
  SubgraphContainer out;
  for (size_t i = 0; i < result.container.size() && i < num_subgraphs;
       ++i) {
    out.Add(result.container[i]);
  }
  return out;
}

GnnModel MakeModel(uint64_t seed) {
  GnnConfig cfg;
  cfg.type = GnnType::kGrat;
  cfg.in_dim = kNodeFeatureDim;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  Rng rng(seed);
  return GnnModel(cfg, rng);
}

TrainConfig FastTrainConfig() {
  TrainConfig cfg;
  cfg.batch_size = 4;
  cfg.iterations = 10;
  cfg.learning_rate = 0.05f;
  cfg.clip_bound = 1.0;
  cfg.noise_kind = NoiseKind::kNone;
  return cfg;
}

TEST(TrainerTest, NoiselessTrainingReducesLoss) {
  SubgraphContainer container = MakeContainer(40, 1);
  ASSERT_GE(container.size(), 8u);
  GnnModel model = MakeModel(2);
  TrainConfig cfg = FastTrainConfig();
  cfg.iterations = 60;
  Rng rng(3);
  TrainStats stats =
      std::move(TrainDpGnn(model, container, cfg, rng)).ValueOrDie();
  ASSERT_EQ(stats.losses.size(), 60u);
  // Mean of the last 10 iterations below the first 10.
  const double head =
      Mean(std::span<const double>(stats.losses.data(), 10));
  const double tail =
      Mean(std::span<const double>(stats.losses.data() + 50, 10));
  EXPECT_LT(tail, head);
}

TEST(TrainerTest, ParametersActuallyChange) {
  SubgraphContainer container = MakeContainer(20, 4);
  GnnModel model = MakeModel(5);
  std::vector<float> before(model.params().num_scalars());
  model.params().FlattenParams(before);
  Rng rng(6);
  ASSERT_TRUE(TrainDpGnn(model, container, FastTrainConfig(), rng).ok());
  std::vector<float> after(model.params().num_scalars());
  model.params().FlattenParams(after);
  double diff = 0.0;
  for (size_t i = 0; i < before.size(); ++i) {
    diff += std::abs(before[i] - after[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(TrainerTest, DeterministicGivenSeed) {
  SubgraphContainer container = MakeContainer(20, 7);
  GnnModel a = MakeModel(8);
  GnnModel b = MakeModel(8);
  TrainConfig cfg = FastTrainConfig();
  cfg.noise_kind = NoiseKind::kGaussian;
  cfg.noise_stddev = 0.5;
  Rng ra(9), rb(9);
  ASSERT_TRUE(TrainDpGnn(a, container, cfg, ra).ok());
  ASSERT_TRUE(TrainDpGnn(b, container, cfg, rb).ok());
  std::vector<float> fa(a.params().num_scalars());
  std::vector<float> fb(b.params().num_scalars());
  a.params().FlattenParams(fa);
  b.params().FlattenParams(fb);
  EXPECT_EQ(fa, fb);
}

TEST(TrainerTest, HugeNoiseDestroysTraining) {
  // Sanity for the DP mechanism: with absurd noise the model drifts by the
  // noise scale, i.e. the update is noise-dominated.
  SubgraphContainer container = MakeContainer(20, 10);
  GnnModel noisy = MakeModel(11);
  GnnModel clean = MakeModel(11);
  TrainConfig noisy_cfg = FastTrainConfig();
  noisy_cfg.noise_kind = NoiseKind::kGaussian;
  noisy_cfg.noise_stddev = 1000.0;
  Rng rn(12), rc(13);
  ASSERT_TRUE(TrainDpGnn(noisy, container, noisy_cfg, rn).ok());
  ASSERT_TRUE(TrainDpGnn(clean, container, FastTrainConfig(), rc).ok());
  std::vector<float> fn(noisy.params().num_scalars());
  std::vector<float> fc(clean.params().num_scalars());
  noisy.params().FlattenParams(fn);
  clean.params().FlattenParams(fc);
  const double norm_noisy =
      L2Norm(std::span<const float>(fn.data(), fn.size()));
  const double norm_clean =
      L2Norm(std::span<const float>(fc.data(), fc.size()));
  EXPECT_GT(norm_noisy, 10.0 * norm_clean);
}

TEST(TrainerTest, MeanGradNormReported) {
  SubgraphContainer container = MakeContainer(20, 14);
  GnnModel model = MakeModel(15);
  Rng rng(16);
  TrainStats stats =
      std::move(TrainDpGnn(model, container, FastTrainConfig(), rng))
          .ValueOrDie();
  EXPECT_GT(stats.mean_grad_norm, 0.0);
  EXPECT_GE(stats.seconds_per_iteration, 0.0);
}

TEST(TrainerTest, RejectsEmptyContainer) {
  SubgraphContainer empty;
  GnnModel model = MakeModel(17);
  Rng rng(18);
  EXPECT_FALSE(TrainDpGnn(model, empty, FastTrainConfig(), rng).ok());
}

TEST(TrainerTest, RejectsBadHyperparameters) {
  SubgraphContainer container = MakeContainer(10, 19);
  GnnModel model = MakeModel(20);
  Rng rng(21);
  TrainConfig cfg = FastTrainConfig();
  cfg.batch_size = 0;
  EXPECT_FALSE(TrainDpGnn(model, container, cfg, rng).ok());
  cfg = FastTrainConfig();
  cfg.iterations = 0;
  EXPECT_FALSE(TrainDpGnn(model, container, cfg, rng).ok());
  cfg = FastTrainConfig();
  cfg.clip_bound = -1.0;
  EXPECT_FALSE(TrainDpGnn(model, container, cfg, rng).ok());
}

TEST(TrainerTest, SmlNoiseAlsoTrains) {
  SubgraphContainer container = MakeContainer(20, 22);
  GnnModel model = MakeModel(23);
  TrainConfig cfg = FastTrainConfig();
  cfg.noise_kind = NoiseKind::kSml;
  cfg.noise_stddev = 0.1;
  Rng rng(24);
  EXPECT_TRUE(TrainDpGnn(model, container, cfg, rng).ok());
}

}  // namespace
}  // namespace privim
