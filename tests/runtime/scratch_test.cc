// Unit tests for the epoch-stamped scratch workspaces (runtime/scratch.h):
// the VisitedMap/VisitedSet stamp invariant ("present iff stamp == epoch"),
// the size-change and epoch-wrap full-reset paths, the HopBallCache LRU /
// bind semantics and its storage recycling, and WorkspacePool slot identity
// plus delta statistics.

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/scratch.h"

namespace privim {
namespace {

TEST(VisitedMapTest, SetGetContains) {
  VisitedMap<int32_t> m;
  m.Reset(8);
  EXPECT_EQ(m.size(), 8u);
  EXPECT_FALSE(m.Contains(3));
  m.Set(3, 42);
  EXPECT_TRUE(m.Contains(3));
  EXPECT_EQ(m.Get(3), 42);
  EXPECT_EQ(m.GetOr(3, -1), 42);
  EXPECT_EQ(m.GetOr(4, -1), -1);
}

TEST(VisitedMapTest, ResetLogicallyClearsWithoutRezero) {
  VisitedMap<int32_t> m;
  m.Reset(16);
  for (size_t i = 0; i < 16; ++i) m.Set(i, static_cast<int32_t>(i));
  m.Reset(16);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_FALSE(m.Contains(i)) << i;
    EXPECT_EQ(m.GetOr(i, -7), -7) << i;
  }
  // First Reset sized the map (full), the second only bumped the epoch.
  EXPECT_EQ(m.full_resets(), 1u);
  EXPECT_EQ(m.fast_resets(), 1u);
}

TEST(VisitedMapTest, SizeChangeForcesFullReset) {
  VisitedMap<int32_t> m;
  m.Reset(4);
  m.Set(2, 9);
  m.Reset(6);  // Different id space: stamps must be rebuilt.
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FALSE(m.Contains(2));
  EXPECT_EQ(m.full_resets(), 2u);
  m.Reset(6);
  EXPECT_EQ(m.fast_resets(), 1u);
}

TEST(VisitedMapTest, EpochWrapDoesNotResurrectOldEntries) {
  VisitedMap<int32_t> m;
  m.Reset(4);
  m.set_epoch_for_test(0xFFFFFFFFu);  // Stamp entries at the last epoch.
  m.Set(1, 11);
  m.Set(3, 33);
  ASSERT_TRUE(m.Contains(1));
  m.Reset(4);  // ++epoch wraps to 0 -> full re-zero, epoch restarts at 1.
  EXPECT_FALSE(m.Contains(1));
  EXPECT_FALSE(m.Contains(3));
  EXPECT_EQ(m.full_resets(), 2u);
  // The map still works normally after the wrap.
  m.Set(1, 5);
  EXPECT_TRUE(m.Contains(1));
  EXPECT_EQ(m.Get(1), 5);
}

TEST(VisitedSetTest, InsertContainsReset) {
  VisitedSet s;
  s.Reset(5);
  EXPECT_FALSE(s.Contains(0));
  s.Insert(0);
  s.Insert(4);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(2));
  s.Reset(5);
  EXPECT_FALSE(s.Contains(0));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.fast_resets(), 1u);
}

TEST(VisitedSetTest, EpochWrapDoesNotResurrectOldEntries) {
  VisitedSet s;
  s.Reset(3);
  s.set_epoch_for_test(0xFFFFFFFFu);
  s.Insert(2);
  ASSERT_TRUE(s.Contains(2));
  s.Reset(3);
  EXPECT_FALSE(s.Contains(2));
  EXPECT_EQ(s.full_resets(), 2u);
}

HopBall MakeBall(std::vector<std::pair<uint32_t, int32_t>> nodes) {
  HopBall b;
  b.nodes = std::move(nodes);
  return b;
}

TEST(HopBallCacheTest, LookupMissThenHit) {
  HopBallCache cache(4);
  cache.Bind(/*graph_fingerprint=*/1, /*hop_bound=*/2);
  EXPECT_EQ(cache.Lookup(7), nullptr);
  cache.InsertSlot(7) = MakeBall({{7, 0}, {8, 1}});
  const HopBall* ball = cache.Lookup(7);
  ASSERT_NE(ball, nullptr);
  ASSERT_EQ(ball->nodes.size(), 2u);
  EXPECT_EQ(ball->nodes[0].first, 7u);
  EXPECT_EQ(ball->nodes[1].second, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(HopBallCacheTest, BindInvalidatesOnGraphOrHopBoundChange) {
  HopBallCache cache(4);
  cache.Bind(1, 2);
  cache.InsertSlot(7) = MakeBall({{7, 0}});
  ASSERT_NE(cache.Lookup(7), nullptr);

  cache.Bind(1, 3);  // Same graph, different radius: balls are different.
  EXPECT_EQ(cache.Lookup(7), nullptr);
  cache.InsertSlot(7) = MakeBall({{7, 0}});

  cache.Bind(2, 3);  // Different graph.
  EXPECT_EQ(cache.Lookup(7), nullptr);

  cache.Bind(2, 3);  // Re-binding the same context keeps entries.
  cache.InsertSlot(9) = MakeBall({{9, 0}});
  EXPECT_NE(cache.Lookup(9), nullptr);
}

TEST(HopBallCacheTest, EvictsLeastRecentlyUsed) {
  HopBallCache cache(2);
  cache.Bind(1, 2);
  cache.InsertSlot(1) = MakeBall({{1, 0}});
  cache.InsertSlot(2) = MakeBall({{2, 0}});
  ASSERT_NE(cache.Lookup(1), nullptr);  // 1 is now more recent than 2.
  cache.InsertSlot(3) = MakeBall({{3, 0}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(3), nullptr);
  EXPECT_EQ(cache.Lookup(2), nullptr);  // 2 was the LRU victim.
}

TEST(HopBallCacheTest, InsertSlotRecyclesVictimStorage) {
  HopBallCache cache(1);
  cache.Bind(1, 2);
  HopBall& first = cache.InsertSlot(1);
  for (uint32_t i = 0; i < 1000; ++i) first.nodes.emplace_back(i, 0);
  const size_t grown_capacity = first.nodes.capacity();
  ASSERT_GE(grown_capacity, 1000u);

  // Evicting start 1 must hand back the same buffer, logically empty but
  // with its capacity intact — that is what makes a warm cache zero-alloc.
  HopBall& second = cache.InsertSlot(2);
  EXPECT_EQ(&second, &first);
  EXPECT_TRUE(second.nodes.empty());
  EXPECT_EQ(second.nodes.capacity(), grown_capacity);
  EXPECT_EQ(cache.Lookup(1), nullptr);
}

TEST(HopBallCacheTest, ReinsertingSameStartReusesItsEntry) {
  HopBallCache cache(4);
  cache.Bind(1, 2);
  cache.InsertSlot(5) = MakeBall({{5, 0}, {6, 1}});
  HopBall& again = cache.InsertSlot(5);
  EXPECT_TRUE(again.nodes.empty());  // Cleared for refill, not duplicated.
  again.nodes.emplace_back(5, 0);
  EXPECT_EQ(cache.size(), 1u);
  const HopBall* ball = cache.Lookup(5);
  ASSERT_NE(ball, nullptr);
  EXPECT_EQ(ball->nodes.size(), 1u);
}

TEST(HopBallCacheTest, ZeroCapacityCachesNothingButStaysUsable) {
  HopBallCache cache(0);
  cache.Bind(1, 2);
  HopBall& slot = cache.InsertSlot(3);
  slot.nodes.emplace_back(3, 0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(3), nullptr);
}

TEST(WorkspacePoolTest, SlotIdentityIsStableAndNeverShrinks) {
  WorkspacePool pool;
  pool.EnsureSlots(2);
  Workspace* s0 = &pool.Acquire(0);
  Workspace* s1 = &pool.Acquire(1);
  EXPECT_NE(s0, s1);
  pool.EnsureSlots(4);
  EXPECT_EQ(&pool.Acquire(0), s0);  // Growth preserves existing slots.
  EXPECT_EQ(&pool.Acquire(1), s1);
  pool.EnsureSlots(1);  // Never shrinks.
  EXPECT_EQ(pool.size(), 4u);
}

TEST(WorkspacePoolTest, TakeStatsReportsDeltas) {
  WorkspacePool pool;
  pool.EnsureSlots(1);
  Workspace& ws = pool.Acquire(0);
  ws.visited.Reset(10);   // full (first sizing)
  ws.visited.Reset(10);   // fast
  ws.visited.Reset(10);   // fast
  ws.hop_dist.Reset(10);  // full

  WorkspacePool::Stats first = pool.TakeStats();
  EXPECT_EQ(first.map_fast_resets, 2u);
  EXPECT_EQ(first.map_full_resets, 2u);

  // Nothing happened since: the delta is zero.
  WorkspacePool::Stats second = pool.TakeStats();
  EXPECT_EQ(second.map_fast_resets, 0u);
  EXPECT_EQ(second.map_full_resets, 0u);

  ws.ball_cache.Bind(1, 2);
  ws.ball_cache.InsertSlot(3).nodes.emplace_back(3, 0);
  (void)ws.ball_cache.Lookup(3);  // hit
  (void)ws.ball_cache.Lookup(4);  // miss
  WorkspacePool::Stats third = pool.TakeStats();
  EXPECT_EQ(third.ball_cache_hits, 1u);
  EXPECT_EQ(third.ball_cache_misses, 1u);
}

}  // namespace
}  // namespace privim
