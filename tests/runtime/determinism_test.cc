// The runtime's central promise: every parallelized stage of the pipeline
// is bit-identical for every thread count (including serial). These tests
// run training, both samplers, Monte-Carlo spread estimation and RR-sketch
// generation at num_threads in {1, 2, 8} from the same seed and require
// exact equality — no tolerances anywhere.

#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "graph/generators.h"
#include "im/diffusion.h"
#include "im/rr_sets.h"
#include "nn/features.h"
#include "sampling/freq_sampler.h"
#include "sampling/rwr_sampler.h"

namespace privim {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

Graph TestGraph(uint64_t seed) {
  Rng rng(seed);
  return std::move(BarabasiAlbert(300, 4, rng)).ValueOrDie();
}

bool SameContainers(const SubgraphContainer& a, const SubgraphContainer& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].nodes != b[i].nodes) return false;
    if (a[i].local.Edges() != b[i].local.Edges()) return false;
  }
  return true;
}

TEST(RuntimeDeterminismTest, FreqSamplerBitIdenticalAcrossThreadCounts) {
  Graph g = TestGraph(1);
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 12;
  cfg.sampling_rate = 0.6;
  cfg.frequency_threshold = 5;

  cfg.num_threads = 1;
  Rng ref_rng(42);
  DualStageResult ref =
      std::move(FreqSampler(cfg).Extract(g, ref_rng)).ValueOrDie();
  ASSERT_GT(ref.container.size(), 0u);
  const uint64_t ref_next = ref_rng.NextUint64();

  for (size_t threads : kThreadCounts) {
    cfg.num_threads = threads;
    Rng rng(42);
    DualStageResult got =
        std::move(FreqSampler(cfg).Extract(g, rng)).ValueOrDie();
    EXPECT_TRUE(SameContainers(ref.container, got.container))
        << "threads=" << threads;
    EXPECT_EQ(ref.frequency, got.frequency) << "threads=" << threads;
    EXPECT_EQ(ref.stage1_count, got.stage1_count);
    EXPECT_EQ(ref.stage2_count, got.stage2_count);
    // The caller's generator must land in the same state too.
    EXPECT_EQ(ref_next, rng.NextUint64());
  }
}

TEST(RuntimeDeterminismTest, RwrSamplerBitIdenticalAcrossThreadCounts) {
  Graph g = TestGraph(2);
  RwrConfig cfg;
  cfg.subgraph_size = 12;
  cfg.sampling_rate = 0.6;

  cfg.num_threads = 1;
  Rng ref_rng(43);
  SubgraphContainer ref =
      std::move(RwrSampler(cfg).Extract(g, ref_rng)).ValueOrDie();
  ASSERT_GT(ref.size(), 0u);
  const uint64_t ref_next = ref_rng.NextUint64();

  for (size_t threads : kThreadCounts) {
    cfg.num_threads = threads;
    Rng rng(43);
    SubgraphContainer got =
        std::move(RwrSampler(cfg).Extract(g, rng)).ValueOrDie();
    EXPECT_TRUE(SameContainers(ref, got)) << "threads=" << threads;
    EXPECT_EQ(ref_next, rng.NextUint64());
  }
}

TEST(RuntimeDeterminismTest, TrainerBitIdenticalAcrossThreadCounts) {
  Graph g = TestGraph(3);
  FreqSamplingConfig scfg;
  scfg.subgraph_size = 10;
  scfg.sampling_rate = 1.0;
  scfg.frequency_threshold = 20;
  Rng srng(5);
  DualStageResult sampled =
      std::move(FreqSampler(scfg).Extract(g, srng)).ValueOrDie();
  ASSERT_GE(sampled.container.size(), 8u);

  GnnConfig gcfg;
  gcfg.type = GnnType::kGrat;
  gcfg.in_dim = kNodeFeatureDim;
  gcfg.hidden_dim = 8;
  gcfg.num_layers = 2;

  TrainConfig tcfg;
  tcfg.batch_size = 6;
  tcfg.iterations = 8;
  tcfg.clip_bound = 0.5;
  // Noisy training on purpose: the single post-aggregation noise draw is
  // the subtlest part of the RNG-stream contract.
  tcfg.noise_kind = NoiseKind::kGaussian;
  tcfg.noise_stddev = 0.05;

  auto train_once = [&](size_t threads, std::vector<float>& params_out,
                        std::vector<double>& losses_out) {
    Rng model_rng(7);
    GnnModel model(gcfg, model_rng);
    TrainConfig cfg = tcfg;
    cfg.num_threads = threads;
    Rng rng(11);
    TrainStats stats =
        std::move(TrainDpGnn(model, sampled.container, cfg, rng))
            .ValueOrDie();
    params_out.resize(model.params().num_scalars());
    model.params().FlattenParams(params_out);
    losses_out = stats.losses;
  };

  std::vector<float> ref_params;
  std::vector<double> ref_losses;
  train_once(1, ref_params, ref_losses);

  for (size_t threads : kThreadCounts) {
    std::vector<float> params;
    std::vector<double> losses;
    train_once(threads, params, losses);
    EXPECT_EQ(ref_params, params) << "threads=" << threads;
    EXPECT_EQ(ref_losses, losses) << "threads=" << threads;
  }
}

TEST(RuntimeDeterminismTest, McSpreadBitIdenticalAcrossThreadCounts) {
  Graph g = TestGraph(4);
  const std::vector<NodeId> seeds = {0, 5, 17, 100};

  Rng ref_rng(13);
  const double ref =
      EstimateIcSpread(g, seeds, /*trials=*/64, ref_rng, /*max_steps=*/-1,
                       /*num_threads=*/1);
  const uint64_t ref_next = ref_rng.NextUint64();

  for (size_t threads : kThreadCounts) {
    Rng rng(13);
    const double got = EstimateIcSpread(g, seeds, 64, rng, -1, threads);
    EXPECT_EQ(ref, got) << "threads=" << threads;
    EXPECT_EQ(ref_next, rng.NextUint64());
  }
}

TEST(RuntimeDeterminismTest, RrSketchBitIdenticalAcrossThreadCounts) {
  Graph g = TestGraph(5);

  Rng ref_rng(17);
  RrSketch ref =
      std::move(RrSketch::Generate(g, /*count=*/128, ref_rng,
                                   /*num_threads=*/1))
          .ValueOrDie();
  const uint64_t ref_next = ref_rng.NextUint64();

  for (size_t threads : kThreadCounts) {
    Rng rng(17);
    RrSketch got =
        std::move(RrSketch::Generate(g, 128, rng, threads)).ValueOrDie();
    EXPECT_EQ(ref.sets(), got.sets()) << "threads=" << threads;
    EXPECT_EQ(ref_next, rng.NextUint64());
  }
}

}  // namespace
}  // namespace privim
