// Unit tests for the execution runtime: pool lifecycle, ParallelFor
// coverage and chunking, slot exclusivity, TaskGroup join/error semantics,
// and the thread-count resolution rules.

#include "runtime/thread_pool.h"

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/parallel_for.h"
#include "runtime/rng_streams.h"
#include "runtime/runtime.h"
#include "runtime/task_group.h"

namespace privim {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  bool ran = false;
  pool.Submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // Inline execution: done before Submit returns.
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // ~ThreadPool must finish what was submitted.
  EXPECT_EQ(count.load(), 64);
}

TEST(TaskGroupTest, InlineWhenPoolIsNull) {
  TaskGroup group(nullptr);
  int value = 0;
  group.Run([&value] { value = 7; });
  EXPECT_EQ(value, 7);  // Ran inline, before Wait().
  group.Wait();
}

TEST(TaskGroupTest, WaitRethrowsFirstError) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Run([] { throw std::runtime_error("boom"); });
  group.Run([] {});
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskGroupTest, ReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  group.Run([&count] { count.fetch_add(1); });
  group.Wait();
  group.Run([&count] { count.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t workers : {0u, 1u, 3u}) {
    ThreadPool pool(workers);
    std::vector<std::atomic<int>> hits(103);
    for (auto& h : hits) h.store(0);
    ParallelFor(&pool, 3, 103, /*grain=*/7,
                [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), i >= 3 && i < 103 ? 1 : 0) << "i=" << i;
    }
  }
}

TEST(ParallelForTest, NullPoolRunsSerialInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 0, 20, /*grain=*/4,
              [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 20u);
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 5, 5, /*grain=*/1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(&pool, 0, 32, /*grain=*/1,
                           [&](size_t i) {
                             if (i == 13) throw std::runtime_error("13");
                           }),
               std::runtime_error);
}

TEST(ParallelForWithSlotsTest, SlotsAreExclusive) {
  ThreadPool pool(4);
  constexpr size_t kSlots = 2;
  std::atomic<int> in_use[kSlots] = {};
  std::atomic<bool> overlap{false};
  ParallelForWithSlots(&pool, 0, 200, /*grain=*/1, kSlots,
                       [&](size_t, size_t slot) {
                         ASSERT_LT(slot, kSlots);
                         if (in_use[slot].fetch_add(1) != 0) {
                           overlap.store(true);
                         }
                         in_use[slot].fetch_sub(1);
                       });
  EXPECT_FALSE(overlap.load());
}

TEST(ParallelForWithSlotsTest, ExceptionReleasesSlot) {
  // A throwing chunk must hand its slot back, or the remaining chunks
  // would deadlock in Acquire() before the error can propagate.
  ThreadPool pool(2);
  EXPECT_THROW(
      ParallelForWithSlots(&pool, 0, 64, /*grain=*/1, /*num_slots=*/1,
                           [&](size_t i, size_t) {
                             if (i % 2 == 0) {
                               throw std::runtime_error("even");
                             }
                           }),
      std::runtime_error);
}

TEST(RuntimeOptionsTest, ExplicitRequestWinsOverGlobal) {
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(5), 5u);
}

TEST(RuntimeOptionsTest, ZeroDefersToGlobalOptions) {
  const RuntimeOptions saved = GetGlobalRuntimeOptions();
  RuntimeOptions opts;
  opts.num_threads = 3;
  SetGlobalRuntimeOptions(opts);
  EXPECT_EQ(ResolveNumThreads(0), 3u);
  SetGlobalRuntimeOptions(saved);
}

TEST(RuntimeOptionsTest, SharedPoolSerialIsNull) {
  EXPECT_EQ(SharedPool(1), nullptr);
  ThreadPool* pool = SharedPool(2);
  ASSERT_NE(pool, nullptr);
  EXPECT_GE(pool->num_workers(), 2u);
  // Grow-only: asking for fewer threads keeps the larger pool.
  ThreadPool* again = SharedPool(2);
  EXPECT_EQ(again, pool);
}

TEST(RngStreamsTest, ConsumesExactlyOneParentDraw) {
  Rng a(17), b(17);
  (void)b.NextUint64();
  RngStreams streams(a);
  (void)streams.Stream(0);
  (void)streams.Stream(99);  // Deriving streams costs no further draws.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngStreamsTest, StreamsArePureAndDistinct) {
  Rng parent(19);
  RngStreams streams(parent);
  Rng s1 = streams.Stream(4);
  Rng s2 = streams.Stream(4);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(s1.NextUint64(), s2.NextUint64());
  std::set<uint64_t> firsts;
  for (uint64_t id = 0; id < 512; ++id) {
    firsts.insert(streams.Stream(id).NextUint64());
  }
  EXPECT_EQ(firsts.size(), 512u);
}

}  // namespace
}  // namespace privim
