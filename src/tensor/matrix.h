#ifndef PRIVIM_TENSOR_MATRIX_H_
#define PRIVIM_TENSOR_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace privim {

/// Dense row-major float32 matrix — the storage type underneath `Tensor`.
///
/// Deliberately minimal: PrivIM's GNNs operate on subgraphs of at most a few
/// hundred nodes, so simple loops beat BLAS-call overhead and keep the
/// library dependency-free.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Zeros(size_t rows, size_t cols) {
    return Matrix(rows, cols, 0.0f);
  }
  static Matrix Ones(size_t rows, size_t cols) {
    return Matrix(rows, cols, 1.0f);
  }
  /// Builds from a row-major initializer; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(size_t r, size_t c) {
    PRIVIM_CHECK_LT(r, rows_);
    PRIVIM_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float operator()(size_t r, size_t c) const {
    PRIVIM_CHECK_LT(r, rows_);
    PRIVIM_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// this += other (shapes must match).
  void AddInPlace(const Matrix& other);
  /// this += scale * other.
  void AddScaledInPlace(const Matrix& other, float scale);
  /// this *= scale.
  void ScaleInPlace(float scale);

  /// Sum of all entries.
  double Sum() const;
  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b (standard dense GEMM). Shapes: [m,k] x [k,n] -> [m,n].
Matrix MatMulValues(const Matrix& a, const Matrix& b);
/// out = a^T * b. Shapes: [k,m] x [k,n] -> [m,n].
Matrix MatTransMulValues(const Matrix& a, const Matrix& b);
/// out = a * b^T. Shapes: [m,k] x [n,k] -> [m,n].
Matrix MatMulTransValues(const Matrix& a, const Matrix& b);

}  // namespace privim

#endif  // PRIVIM_TENSOR_MATRIX_H_
