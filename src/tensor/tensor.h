#ifndef PRIVIM_TENSOR_TENSOR_H_
#define PRIVIM_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace privim {

namespace internal {
struct TensorNode;
}  // namespace internal

/// A node in a dynamically built reverse-mode autodiff graph.
///
/// `Tensor` is a cheap shared handle: copying it aliases the same node.
/// The value is a dense `Matrix`; gradients are materialized on demand by
/// `Backward()`. The op library lives in tensor/ops.h.
///
/// Lifetime: each training step builds a fresh graph (define-by-run, like
/// PyTorch); releasing the final handle frees the whole graph.
class Tensor {
 public:
  Tensor() = default;

  /// Wraps a value as a leaf. `requires_grad` marks trainable parameters.
  explicit Tensor(Matrix value, bool requires_grad = false);

  /// Convenience scalar constant leaf.
  static Tensor Scalar(float v);

  bool defined() const { return node_ != nullptr; }

  const Matrix& value() const;
  Matrix& mutable_value();

  /// The accumulated gradient; zero-shaped until Backward() reaches it.
  const Matrix& grad() const;

  bool requires_grad() const;

  size_t rows() const { return value().rows(); }
  size_t cols() const { return value().cols(); }

  /// Clears this node's gradient (used between per-sample passes).
  void ZeroGrad();

  /// Runs backpropagation from this scalar (1x1) tensor through the graph.
  /// Accumulates into the `grad()` of every reachable node that requires
  /// grad. Callers must zero parameter grads between calls if accumulation
  /// across samples is not wanted.
  void Backward() const;

 private:
  friend class TensorOpBuilder;
  std::shared_ptr<internal::TensorNode> node_;
};

namespace internal {

struct TensorNode {
  Matrix value;
  Matrix grad;  // Same shape as value once touched by backward.
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorNode>> parents;
  /// Propagates this node's grad into its parents' grads.
  std::function<void(TensorNode&)> backward;

  void EnsureGrad() {
    if (!grad.SameShape(value)) {
      grad = Matrix::Zeros(value.rows(), value.cols());
    }
  }
};

}  // namespace internal

/// Internal helper for defining ops: wires parents + backward closure.
/// Public only for the op library in tensor/ops.cc.
class TensorOpBuilder {
 public:
  /// Creates a result node holding `value` with the given parents. The
  /// backward closure receives the result node (whose `grad` is populated)
  /// and must scatter into `parents[i]->grad` (already allocated) for every
  /// parent that requires grad.
  static Tensor Make(Matrix value, std::vector<Tensor> parents,
                     std::function<void(internal::TensorNode&)> backward);

  static const std::shared_ptr<internal::TensorNode>& node(const Tensor& t) {
    return t.node_;
  }
};

}  // namespace privim

#endif  // PRIVIM_TENSOR_TENSOR_H_
