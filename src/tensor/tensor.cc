#include "tensor/tensor.h"

#include <unordered_set>

namespace privim {

using internal::TensorNode;

Tensor::Tensor(Matrix value, bool requires_grad) {
  node_ = std::make_shared<TensorNode>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Tensor Tensor::Scalar(float v) {
  Matrix m(1, 1);
  m(0, 0) = v;
  return Tensor(std::move(m));
}

const Matrix& Tensor::value() const {
  PRIVIM_CHECK(defined());
  return node_->value;
}

Matrix& Tensor::mutable_value() {
  PRIVIM_CHECK(defined());
  return node_->value;
}

const Matrix& Tensor::grad() const {
  PRIVIM_CHECK(defined());
  node_->EnsureGrad();
  return node_->grad;
}

bool Tensor::requires_grad() const {
  PRIVIM_CHECK(defined());
  return node_->requires_grad;
}

void Tensor::ZeroGrad() {
  PRIVIM_CHECK(defined());
  node_->EnsureGrad();
  node_->grad.Fill(0.0f);
}

void Tensor::Backward() const {
  PRIVIM_CHECK(defined());
  PRIVIM_CHECK_EQ(node_->value.rows(), 1u);
  PRIVIM_CHECK_EQ(node_->value.cols(), 1u);

  // Iterative post-order DFS to get a topological order (children after
  // parents in `order`, we then walk it in reverse).
  std::vector<TensorNode*> order;
  std::unordered_set<TensorNode*> visited;
  struct Frame {
    TensorNode* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorNode* parent = frame.node->parents[frame.next_parent++].get();
      if (!visited.contains(parent)) {
        visited.insert(parent);
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Seed: d(loss)/d(loss) = 1. Ensure every reachable node has a zeroed
  // grad buffer before accumulation (leaf/parameter grads persist across
  // Backward calls by design; intermediates are fresh objects anyway).
  for (TensorNode* n : order) n->EnsureGrad();
  node_->grad(0, 0) += 1.0f;

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorNode* n = *it;
    if (n->backward && n->requires_grad) n->backward(*n);
  }
}

Tensor TensorOpBuilder::Make(
    Matrix value, std::vector<Tensor> parents,
    std::function<void(internal::TensorNode&)> backward) {
  Tensor out(std::move(value));
  for (const Tensor& p : parents) {
    PRIVIM_CHECK(p.defined());
    out.node_->parents.push_back(p.node_);
    out.node_->requires_grad =
        out.node_->requires_grad || p.node_->requires_grad;
  }
  if (out.node_->requires_grad) {
    out.node_->backward = std::move(backward);
  }
  return out;
}

}  // namespace privim
