#include "tensor/plan.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace privim {

using plan_internal::kNoScratch;
using plan_internal::Op;
using plan_internal::OpKind;
using plan_internal::SlotKind;
using plan_internal::ValueNode;

// ---------------------------------------------------------------------------
// PlanBuilder.
// ---------------------------------------------------------------------------

PlanValId PlanBuilder::AddValue(SlotKind slot, size_t rows, size_t cols,
                                bool requires_grad) {
  ValueNode v;
  v.slot = slot;
  v.rows = static_cast<uint32_t>(rows);
  v.cols = static_cast<uint32_t>(cols);
  v.requires_grad = requires_grad;
  vals_.push_back(v);
  return static_cast<PlanValId>(vals_.size() - 1);
}

PlanValId PlanBuilder::AddOp(Op op, size_t out_rows, size_t out_cols) {
  const bool rg = (op.a >= 0 && val(op.a).requires_grad) ||
                  (op.b >= 0 && val(op.b).requires_grad);
  const PlanValId out =
      AddValue(SlotKind::kActivation, out_rows, out_cols, rg);
  op.out = out;
  vals_[out].op = static_cast<int32_t>(ops_.size());
  ops_.push_back(op);
  return out;
}

const ValueNode& PlanBuilder::val(PlanValId id) const {
  PRIVIM_CHECK_GE(id, 0);
  PRIVIM_CHECK_LT(static_cast<size_t>(id), vals_.size());
  return vals_[id];
}

PlanValId PlanBuilder::Input(size_t rows, size_t cols) {
  PRIVIM_CHECK_EQ(input_, -1) << "plans take a single input";
  input_ = AddValue(SlotKind::kInput, rows, cols, /*requires_grad=*/false);
  return input_;
}

PlanValId PlanBuilder::Param(size_t offset, size_t rows, size_t cols) {
  const PlanValId id =
      AddValue(SlotKind::kParam, rows, cols, /*requires_grad=*/true);
  vals_[id].param_offset = offset;
  return id;
}

PlanValId PlanBuilder::MatMul(PlanValId a, PlanValId b) {
  PRIVIM_CHECK_EQ(val(a).cols, val(b).rows);
  Op op{OpKind::kMatMul};
  op.a = a;
  op.b = b;
  return AddOp(op, val(a).rows, val(b).cols);
}

PlanValId PlanBuilder::Add(PlanValId a, PlanValId b) {
  PRIVIM_CHECK_EQ(val(a).rows, val(b).rows);
  PRIVIM_CHECK_EQ(val(a).cols, val(b).cols);
  Op op{OpKind::kAdd};
  op.a = a;
  op.b = b;
  return AddOp(op, val(a).rows, val(a).cols);
}

PlanValId PlanBuilder::Mul(PlanValId a, PlanValId b) {
  PRIVIM_CHECK_EQ(val(a).rows, val(b).rows);
  PRIVIM_CHECK_EQ(val(a).cols, val(b).cols);
  Op op{OpKind::kMul};
  op.a = a;
  op.b = b;
  return AddOp(op, val(a).rows, val(a).cols);
}

PlanValId PlanBuilder::AddRowBroadcast(PlanValId x, PlanValId bias) {
  PRIVIM_CHECK_EQ(val(bias).rows, 1u);
  PRIVIM_CHECK_EQ(val(bias).cols, val(x).cols);
  Op op{OpKind::kAddRowBroadcast};
  op.a = x;
  op.b = bias;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::Scale(PlanValId x, float c) {
  Op op{OpKind::kScale};
  op.a = x;
  op.c0 = c;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::AddScalar(PlanValId x, float c) {
  Op op{OpKind::kAddScalar};
  op.a = x;
  op.c0 = c;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::ScaleByScalar(PlanValId x, PlanValId s) {
  PRIVIM_CHECK_EQ(val(s).rows, 1u);
  PRIVIM_CHECK_EQ(val(s).cols, 1u);
  Op op{OpKind::kScaleByScalar};
  op.a = x;
  op.b = s;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::ConcatCols(PlanValId a, PlanValId b) {
  PRIVIM_CHECK_EQ(val(a).rows, val(b).rows);
  Op op{OpKind::kConcatCols};
  op.a = a;
  op.b = b;
  return AddOp(op, val(a).rows,
               static_cast<size_t>(val(a).cols) + val(b).cols);
}

PlanValId PlanBuilder::Relu(PlanValId x) {
  Op op{OpKind::kRelu};
  op.a = x;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::LeakyRelu(PlanValId x, float slope) {
  Op op{OpKind::kLeakyRelu};
  op.a = x;
  op.c0 = slope;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::Sigmoid(PlanValId x) {
  Op op{OpKind::kSigmoid};
  op.a = x;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::InfluenceProb(PlanValId x) {
  Op op{OpKind::kInfluenceProb};
  op.a = x;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::Sum(PlanValId x) {
  Op op{OpKind::kSum};
  op.a = x;
  return AddOp(op, 1, 1);
}

PlanValId PlanBuilder::MeanAll(PlanValId x) {
  // Mirrors ops.cc MeanAll: Scale(Sum(x), 1/size) — two tape nodes, so the
  // plan creates the same two ops to keep the backward replay aligned.
  PRIVIM_CHECK_GT(val(x).size(), 0u);
  return Scale(Sum(x), 1.0f / static_cast<float>(val(x).size()));
}

PlanValId PlanBuilder::GatherRows(PlanValId x,
                                  const std::vector<uint32_t>& index) {
  for (uint32_t i : index) PRIVIM_CHECK_LT(i, val(x).rows);
  Op op{OpKind::kGatherRows};
  op.a = x;
  op.idx_a = index.data();
  op.n_idx = index.size();
  return AddOp(op, index.size(), val(x).cols);
}

PlanValId PlanBuilder::ScatterAddRows(PlanValId x,
                                      const std::vector<uint32_t>& src,
                                      const std::vector<uint32_t>& dst,
                                      const std::vector<float>& coef,
                                      size_t num_out) {
  PRIVIM_CHECK_EQ(src.size(), dst.size());
  PRIVIM_CHECK_EQ(src.size(), coef.size());
  for (size_t e = 0; e < src.size(); ++e) {
    PRIVIM_CHECK_LT(src[e], val(x).rows);
    PRIVIM_CHECK_LT(dst[e], num_out);
  }
  Op op{OpKind::kScatterAddRows};
  op.a = x;
  op.idx_a = src.data();
  op.idx_b = dst.data();
  op.coef = coef.data();
  op.n_idx = src.size();
  return AddOp(op, num_out, val(x).cols);
}

PlanValId PlanBuilder::WeightedScatterAddRows(
    PlanValId alpha, PlanValId x, const std::vector<uint32_t>& src,
    const std::vector<uint32_t>& dst, size_t num_out) {
  PRIVIM_CHECK_EQ(val(alpha).rows, src.size());
  PRIVIM_CHECK_EQ(val(alpha).cols, 1u);
  PRIVIM_CHECK_EQ(src.size(), dst.size());
  for (size_t e = 0; e < src.size(); ++e) {
    PRIVIM_CHECK_LT(src[e], val(x).rows);
    PRIVIM_CHECK_LT(dst[e], num_out);
  }
  Op op{OpKind::kWeightedScatterAddRows};
  op.a = alpha;  // Tape parent order: {alpha, x}.
  op.b = x;
  op.idx_a = src.data();
  op.idx_b = dst.data();
  op.n_idx = src.size();
  return AddOp(op, num_out, val(x).cols);
}

PlanValId PlanBuilder::SegmentSoftmax(PlanValId scores,
                                      const std::vector<uint32_t>& group,
                                      size_t num_groups) {
  PRIVIM_CHECK_EQ(val(scores).cols, 1u);
  PRIVIM_CHECK_EQ(val(scores).rows, group.size());
  for (uint32_t g : group) PRIVIM_CHECK_LT(g, num_groups);
  Op op{OpKind::kSegmentSoftmax};
  op.a = scores;
  op.idx_a = group.data();
  op.n_idx = group.size();
  op.n_groups = num_groups;
  return AddOp(op, group.size(), 1);
}

ExecutionPlan PlanBuilder::Build(PlanValId output) {
  PRIVIM_CHECK_GE(output, 0);
  PRIVIM_CHECK_LT(static_cast<size_t>(output), vals_.size());

  ExecutionPlan plan;
  plan.vals_ = std::move(vals_);
  plan.ops_ = std::move(ops_);
  plan.output_ = output;
  plan.input_id_ = input_;

  // Arena layout. Activation values first, then (contiguously) every
  // gradient buffer so Backward can zero them with a single fill, then
  // per-op scratch.
  size_t f_off = 0;
  for (ValueNode& v : plan.vals_) {
    if (v.slot == SlotKind::kActivation) {
      v.val_off = f_off;
      f_off += v.size();
    } else if (v.slot == SlotKind::kParam) {
      plan.param_scalars_ =
          std::max(plan.param_scalars_, v.param_offset + v.size());
    }
  }
  plan.grads_off_ = f_off;
  for (ValueNode& v : plan.vals_) {
    if (v.slot == SlotKind::kActivation && v.requires_grad) {
      v.grad_off = f_off;
      f_off += v.size();
    }
  }
  plan.grads_len_ = f_off - plan.grads_off_;

  size_t d_off = 0;
  for (Op& op : plan.ops_) {
    switch (op.kind) {
      case OpKind::kSegmentSoftmax:
        // Forward: gmax (float) + gsum (double); backward reuses the
        // double region for gdot (both are num_groups wide and never live
        // at the same time).
        op.scratch_f = f_off;
        f_off += op.n_groups;
        op.scratch_d = d_off;
        d_off += op.n_groups;
        break;
      case OpKind::kMatMul:
        // dB is staged in a zeroed buffer and then added into the
        // parameter gradient, exactly like the tape's
        // MatTransMulValues-then-AddInPlace, so the accumulation order is
        // byte-identical even when the gradient already holds mass.
        if (plan.vals_[op.b].requires_grad) {
          op.scratch_db = f_off;
          f_off += plan.vals_[op.b].size();
        }
        break;
      default:
        break;
    }
  }
  plan.farena_ = f_off;
  plan.darena_ = d_off;

  // Backward schedule: replay the tape's iterative post-order DFS
  // (tensor/tensor.cc) over the identical DAG — same root, same
  // parent-visit order ({a, b}) — then reverse. Gradient contributions to
  // shared nodes therefore land in the same order as on the tape, which is
  // what makes float accumulation bit-identical.
  struct Frame {
    PlanValId node;
    size_t next_parent;
  };
  std::vector<PlanValId> order;
  std::vector<uint8_t> visited(plan.vals_.size(), 0);
  std::vector<Frame> stack;
  stack.push_back({output, 0});
  visited[output] = 1;
  auto parent_of = [&plan](PlanValId v, size_t i) -> PlanValId {
    const int32_t op_id = plan.vals_[v].op;
    if (op_id < 0) return -1;
    const Op& op = plan.ops_[op_id];
    if (i == 0) return op.a;
    if (i == 1) return op.b;
    return -1;
  };
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const PlanValId parent = parent_of(frame.node, frame.next_parent);
    if (parent >= 0 || frame.next_parent < 2) {
      ++frame.next_parent;
      if (parent >= 0 && !visited[parent]) {
        visited[parent] = 1;
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const ValueNode& v = plan.vals_[*it];
    // Tape: a node participates in backprop iff it has a closure (an op
    // whose result requires grad).
    if (v.op >= 0 && v.requires_grad) plan.backward_.push_back(v.op);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// ExecutionPlan.
// ---------------------------------------------------------------------------

size_t ExecutionPlan::output_rows() const {
  PRIVIM_CHECK(compiled());
  return vals_[output_].rows;
}

size_t ExecutionPlan::output_cols() const {
  PRIVIM_CHECK(compiled());
  return vals_[output_].cols;
}

void ExecutionPlan::EnsureArena(PlanArena& arena) const {
  if (arena.f.size() < farena_) arena.f.resize(farena_);
  if (arena.d.size() < darena_) arena.d.resize(darena_);
}

const float* ExecutionPlan::ValPtr(PlanValId id,
                                   std::span<const float> params,
                                   const Matrix& input,
                                   const PlanArena& arena) const {
  const ValueNode& v = vals_[id];
  switch (v.slot) {
    case SlotKind::kInput:
      return input.data();
    case SlotKind::kParam:
      return params.data() + v.param_offset;
    case SlotKind::kActivation:
      return arena.f.data() + v.val_off;
  }
  return nullptr;
}

float* ExecutionPlan::GradPtr(PlanValId id, std::span<float> param_grads,
                              PlanArena& arena) const {
  const ValueNode& v = vals_[id];
  if (!v.requires_grad) return nullptr;
  if (v.slot == SlotKind::kParam) return param_grads.data() + v.param_offset;
  return arena.f.data() + v.grad_off;
}

namespace {

// Elementwise forward/backward scalar functions, transcribed from the
// tape lambdas in tensor/ops.cc so both paths round identically.
inline float SigmoidFwd(float v) {
  return v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                   : std::exp(v) / (1.0f + std::exp(v));
}
inline float SigmoidBwd(float v) {
  const float s = SigmoidFwd(v);
  return s * (1.0f - s);
}

}  // namespace

void ExecutionPlan::Forward(std::span<const float> params,
                            const Matrix& input, PlanArena& arena) const {
  PRIVIM_CHECK(compiled());
  PRIVIM_CHECK_GE(params.size(), param_scalars_);
  if (input_id_ >= 0) {
    PRIVIM_CHECK_EQ(input.rows(), vals_[input_id_].rows);
    PRIVIM_CHECK_EQ(input.cols(), vals_[input_id_].cols);
  }
  EnsureArena(arena);

  for (const Op& op : ops_) {
    const ValueNode& on = vals_[op.out];
    float* out = arena.f.data() + on.val_off;
    const float* a = ValPtr(op.a, params, input, arena);
    const float* b = op.b >= 0 ? ValPtr(op.b, params, input, arena)
                               : nullptr;
    const size_t rows = on.rows, cols = on.cols, size = on.size();
    switch (op.kind) {
      case OpKind::kMatMul: {
        const size_t m = vals_[op.a].rows, k = vals_[op.a].cols;
        std::fill(out, out + size, 0.0f);
        for (size_t i = 0; i < m; ++i) {
          for (size_t kk = 0; kk < k; ++kk) {
            const float aik = a[i * k + kk];
            if (aik == 0.0f) continue;
            const float* brow = b + kk * cols;
            float* orow = out + i * cols;
            for (size_t j = 0; j < cols; ++j) orow[j] += aik * brow[j];
          }
        }
        break;
      }
      case OpKind::kAdd:
        for (size_t i = 0; i < size; ++i) out[i] = a[i] + b[i];
        break;
      case OpKind::kMul:
        for (size_t i = 0; i < size; ++i) out[i] = a[i] * b[i];
        break;
      case OpKind::kAddRowBroadcast:
        for (size_t r = 0; r < rows; ++r) {
          float* orow = out + r * cols;
          const float* xrow = a + r * cols;
          for (size_t c = 0; c < cols; ++c) orow[c] = xrow[c] + b[c];
        }
        break;
      case OpKind::kScale:
        for (size_t i = 0; i < size; ++i) out[i] = a[i] * op.c0;
        break;
      case OpKind::kAddScalar:
        for (size_t i = 0; i < size; ++i) out[i] = a[i] + op.c0;
        break;
      case OpKind::kScaleByScalar: {
        const float sv = b[0];
        for (size_t i = 0; i < size; ++i) out[i] = a[i] * sv;
        break;
      }
      case OpKind::kConcatCols: {
        const size_t a_cols = vals_[op.a].cols, b_cols = vals_[op.b].cols;
        for (size_t r = 0; r < rows; ++r) {
          float* orow = out + r * cols;
          std::copy(a + r * a_cols, a + (r + 1) * a_cols, orow);
          std::copy(b + r * b_cols, b + (r + 1) * b_cols, orow + a_cols);
        }
        break;
      }
      case OpKind::kRelu:
        for (size_t i = 0; i < size; ++i) {
          out[i] = a[i] > 0.0f ? a[i] : 0.0f;
        }
        break;
      case OpKind::kLeakyRelu:
        for (size_t i = 0; i < size; ++i) {
          out[i] = a[i] > 0.0f ? a[i] : op.c0 * a[i];
        }
        break;
      case OpKind::kSigmoid:
        for (size_t i = 0; i < size; ++i) out[i] = SigmoidFwd(a[i]);
        break;
      case OpKind::kInfluenceProb:
        for (size_t i = 0; i < size; ++i) {
          out[i] = a[i] > 0.0f ? 1.0f - std::exp(-a[i]) : 0.0f;
        }
        break;
      case OpKind::kSum: {
        double s = 0.0;
        const size_t n = vals_[op.a].size();
        for (size_t i = 0; i < n; ++i) s += a[i];
        out[0] = static_cast<float>(s);
        break;
      }
      case OpKind::kGatherRows:
        for (size_t i = 0; i < op.n_idx; ++i) {
          const float* src = a + op.idx_a[i] * cols;
          std::copy(src, src + cols, out + i * cols);
        }
        break;
      case OpKind::kScatterAddRows:
        std::fill(out, out + size, 0.0f);
        for (size_t e = 0; e < op.n_idx; ++e) {
          const float* xin = a + op.idx_a[e] * cols;
          float* orow = out + op.idx_b[e] * cols;
          const float c = op.coef[e];
          for (size_t k = 0; k < cols; ++k) orow[k] += c * xin[k];
        }
        break;
      case OpKind::kWeightedScatterAddRows:
        std::fill(out, out + size, 0.0f);
        for (size_t e = 0; e < op.n_idx; ++e) {
          const float alpha = a[e];
          const float* xin = b + op.idx_a[e] * cols;
          float* orow = out + op.idx_b[e] * cols;
          for (size_t k = 0; k < cols; ++k) orow[k] += alpha * xin[k];
        }
        break;
      case OpKind::kSegmentSoftmax: {
        float* gmax = arena.f.data() + op.scratch_f;
        double* gsum = arena.d.data() + op.scratch_d;
        std::fill(gmax, gmax + op.n_groups, -1e30f);
        std::fill(gsum, gsum + op.n_groups, 0.0);
        for (size_t e = 0; e < op.n_idx; ++e) {
          gmax[op.idx_a[e]] = std::max(gmax[op.idx_a[e]], a[e]);
        }
        for (size_t e = 0; e < op.n_idx; ++e) {
          const float v = std::exp(a[e] - gmax[op.idx_a[e]]);
          out[e] = v;
          gsum[op.idx_a[e]] += v;
        }
        for (size_t e = 0; e < op.n_idx; ++e) {
          const double denom = gsum[op.idx_a[e]];
          out[e] = denom > 0.0 ? static_cast<float>(out[e] / denom) : 0.0f;
        }
        break;
      }
    }
  }
}

float ExecutionPlan::OutputScalar(const PlanArena& arena) const {
  PRIVIM_CHECK(compiled());
  PRIVIM_CHECK_EQ(vals_[output_].size(), 1u);
  return arena.f[vals_[output_].val_off];
}

std::span<const float> ExecutionPlan::Output(const PlanArena& arena) const {
  PRIVIM_CHECK(compiled());
  const ValueNode& v = vals_[output_];
  return {arena.f.data() + v.val_off, v.size()};
}

void ExecutionPlan::Backward(std::span<const float> params,
                             const Matrix& input, PlanArena& arena,
                             std::span<float> param_grads) const {
  PRIVIM_CHECK(compiled());
  PRIVIM_CHECK_EQ(vals_[output_].size(), 1u);
  PRIVIM_CHECK_GE(param_grads.size(), param_scalars_);
  EnsureArena(arena);

  std::fill(param_grads.begin(), param_grads.end(), 0.0f);
  float* grads = arena.f.data() + grads_off_;
  std::fill(grads, grads + grads_len_, 0.0f);
  if (!vals_[output_].requires_grad) return;  // Frozen graph: no-op.
  arena.f[vals_[output_].grad_off] += 1.0f;   // Seed d(loss)/d(loss).

  for (const int32_t op_id : backward_) {
    const Op& op = ops_[op_id];
    const ValueNode& on = vals_[op.out];
    const float* g = arena.f.data() + on.grad_off;
    const float* out_val = arena.f.data() + on.val_off;
    const float* av = ValPtr(op.a, params, input, arena);
    const float* bv =
        op.b >= 0 ? ValPtr(op.b, params, input, arena) : nullptr;
    float* ag = GradPtr(op.a, param_grads, arena);
    float* bg = op.b >= 0 ? GradPtr(op.b, param_grads, arena) : nullptr;
    const size_t rows = on.rows, cols = on.cols, size = on.size();
    switch (op.kind) {
      case OpKind::kMatMul: {
        const size_t m = rows, n = cols;
        const size_t k = vals_[op.a].cols;
        if (ag != nullptr) {
          // dA = dOut * B^T: each entry is one locally accumulated dot,
          // added once — identical to MatMulTransValues + AddInPlace.
          for (size_t i = 0; i < m; ++i) {
            const float* grow = g + i * n;
            for (size_t j = 0; j < k; ++j) {
              const float* brow = bv + j * n;
              float dot = 0.0f;
              for (size_t c = 0; c < n; ++c) dot += grow[c] * brow[c];
              ag[i * k + j] += dot;
            }
          }
        }
        if (bg != nullptr) {
          // dB = A^T * dOut, staged in a zeroed scratch then added, as the
          // tape does (MatTransMulValues builds a fresh matrix).
          float* s = arena.f.data() + op.scratch_db;
          std::fill(s, s + k * n, 0.0f);
          for (size_t r = 0; r < m; ++r) {
            const float* arow = av + r * k;
            const float* grow = g + r * n;
            for (size_t i = 0; i < k; ++i) {
              const float ari = arow[i];
              if (ari == 0.0f) continue;
              float* srow = s + i * n;
              for (size_t j = 0; j < n; ++j) srow[j] += ari * grow[j];
            }
          }
          for (size_t i = 0; i < k * n; ++i) bg[i] += s[i];
        }
        break;
      }
      case OpKind::kAdd:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += g[i];
        }
        if (bg != nullptr) {
          for (size_t i = 0; i < size; ++i) bg[i] += g[i];
        }
        break;
      case OpKind::kMul:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += g[i] * bv[i];
        }
        if (bg != nullptr) {
          for (size_t i = 0; i < size; ++i) bg[i] += g[i] * av[i];
        }
        break;
      case OpKind::kAddRowBroadcast:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += g[i];
        }
        if (bg != nullptr) {
          for (size_t r = 0; r < rows; ++r) {
            const float* grow = g + r * cols;
            for (size_t c = 0; c < cols; ++c) bg[c] += grow[c];
          }
        }
        break;
      case OpKind::kScale:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += op.c0 * g[i];
        }
        break;
      case OpKind::kAddScalar:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += g[i];
        }
        break;
      case OpKind::kScaleByScalar: {
        const float sv = bv[0];
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += sv * g[i];
        }
        if (bg != nullptr) {
          double acc = 0.0;
          for (size_t i = 0; i < size; ++i) {
            acc += static_cast<double>(g[i]) * av[i];
          }
          bg[0] += static_cast<float>(acc);
        }
        break;
      }
      case OpKind::kConcatCols: {
        const size_t a_cols = vals_[op.a].cols, b_cols = vals_[op.b].cols;
        for (size_t r = 0; r < rows; ++r) {
          const float* grow = g + r * cols;
          if (ag != nullptr) {
            float* arow = ag + r * a_cols;
            for (size_t c = 0; c < a_cols; ++c) arow[c] += grow[c];
          }
          if (bg != nullptr) {
            float* brow = bg + r * b_cols;
            for (size_t c = 0; c < b_cols; ++c) brow[c] += grow[a_cols + c];
          }
        }
        break;
      }
      case OpKind::kRelu:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) {
            ag[i] += g[i] * (av[i] > 0.0f ? 1.0f : 0.0f);
          }
        }
        break;
      case OpKind::kLeakyRelu:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) {
            ag[i] += g[i] * (av[i] > 0.0f ? 1.0f : op.c0);
          }
        }
        break;
      case OpKind::kSigmoid:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += g[i] * SigmoidBwd(av[i]);
        }
        break;
      case OpKind::kInfluenceProb:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) {
            ag[i] += g[i] * (av[i] > 0.0f ? std::exp(-av[i]) : 0.0f);
          }
        }
        break;
      case OpKind::kSum:
        if (ag != nullptr) {
          const float g0 = g[0];
          const size_t n = vals_[op.a].size();
          for (size_t i = 0; i < n; ++i) ag[i] += g0;
        }
        break;
      case OpKind::kGatherRows:
        if (ag != nullptr) {
          for (size_t i = 0; i < op.n_idx; ++i) {
            const float* grow = g + i * cols;
            float* arow = ag + op.idx_a[i] * cols;
            for (size_t c = 0; c < cols; ++c) arow[c] += grow[c];
          }
        }
        break;
      case OpKind::kScatterAddRows:
        if (ag != nullptr) {
          for (size_t e = 0; e < op.n_idx; ++e) {
            const float* grow = g + op.idx_b[e] * cols;
            float* arow = ag + op.idx_a[e] * cols;
            const float c = op.coef[e];
            for (size_t k = 0; k < cols; ++k) arow[k] += c * grow[k];
          }
        }
        break;
      case OpKind::kWeightedScatterAddRows:
        for (size_t e = 0; e < op.n_idx; ++e) {
          const float* grow = g + op.idx_b[e] * cols;
          const float* xin = bv + op.idx_a[e] * cols;
          if (ag != nullptr) {
            double dot = 0.0;
            for (size_t k = 0; k < cols; ++k) {
              dot += static_cast<double>(grow[k]) * xin[k];
            }
            ag[e] += static_cast<float>(dot);
          }
          if (bg != nullptr) {
            const float alpha = av[e];
            float* brow = bg + op.idx_a[e] * cols;
            for (size_t k = 0; k < cols; ++k) brow[k] += alpha * grow[k];
          }
        }
        break;
      case OpKind::kSegmentSoftmax:
        if (ag != nullptr) {
          double* gdot = arena.d.data() + op.scratch_d;
          std::fill(gdot, gdot + op.n_groups, 0.0);
          for (size_t e = 0; e < op.n_idx; ++e) {
            gdot[op.idx_a[e]] +=
                static_cast<double>(out_val[e]) * g[e];
          }
          for (size_t e = 0; e < op.n_idx; ++e) {
            const float alpha = out_val[e];
            ag[e] += alpha * (g[e] - static_cast<float>(gdot[op.idx_a[e]]));
          }
        }
        break;
    }
  }
}

}  // namespace privim
