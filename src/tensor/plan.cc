#include "tensor/plan.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace privim {

using plan_internal::FusedStep;
using plan_internal::kMaxFuseLen;
using plan_internal::kNoScratch;
using plan_internal::Op;
using plan_internal::OpKind;
using plan_internal::SlotKind;
using plan_internal::ValueNode;

PlanOptions PlanOptions::Native() {
  PlanOptions o;
  o.fuse_elementwise = true;
  o.isa = simd::ResolveIsa();
  return o;
}

namespace {

// Ops the fusion pass may pull into one sweep: shape-preserving, pure
// per-element functions of at most one chained operand plus one
// broadcast/full operand.
bool IsElementwise(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kMul:
    case OpKind::kAddRowBroadcast:
    case OpKind::kScale:
    case OpKind::kAddScalar:
    case OpKind::kScaleByScalar:
    case OpKind::kRelu:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kInfluenceProb:
      return true;
    default:
      return false;
  }
}

// Whether `k`'s backward pass reads the forward VALUE of its a (resp. b)
// operand — the write-elision analysis must keep such values materialized.
// Conservative where the read is conditional on the sibling's
// requires_grad (kMul, kMatMul).
bool BackwardReadsA(OpKind k) {
  switch (k) {
    case OpKind::kMatMul:
    case OpKind::kMul:
    case OpKind::kScaleByScalar:
    case OpKind::kRelu:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kInfluenceProb:
    case OpKind::kWeightedScatterAddRows:
      return true;
    default:
      return false;
  }
}

bool BackwardReadsB(OpKind k) {
  switch (k) {
    case OpKind::kMatMul:
    case OpKind::kMul:
    case OpKind::kScaleByScalar:
    case OpKind::kWeightedScatterAddRows:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PlanBuilder.
// ---------------------------------------------------------------------------

PlanValId PlanBuilder::AddValue(SlotKind slot, size_t rows, size_t cols,
                                bool requires_grad) {
  ValueNode v;
  v.slot = slot;
  v.rows = static_cast<uint32_t>(rows);
  v.cols = static_cast<uint32_t>(cols);
  v.requires_grad = requires_grad;
  vals_.push_back(v);
  return static_cast<PlanValId>(vals_.size() - 1);
}

PlanValId PlanBuilder::AddOp(Op op, size_t out_rows, size_t out_cols) {
  const bool rg = (op.a >= 0 && val(op.a).requires_grad) ||
                  (op.b >= 0 && val(op.b).requires_grad);
  const PlanValId out =
      AddValue(SlotKind::kActivation, out_rows, out_cols, rg);
  op.out = out;
  vals_[out].op = static_cast<int32_t>(ops_.size());
  ops_.push_back(op);
  return out;
}

const ValueNode& PlanBuilder::val(PlanValId id) const {
  PRIVIM_CHECK_GE(id, 0);
  PRIVIM_CHECK_LT(static_cast<size_t>(id), vals_.size());
  return vals_[id];
}

PlanValId PlanBuilder::Input(size_t rows, size_t cols) {
  PRIVIM_CHECK_EQ(input_, -1) << "plans take a single input";
  input_ = AddValue(SlotKind::kInput, rows, cols, /*requires_grad=*/false);
  return input_;
}

PlanValId PlanBuilder::Param(size_t offset, size_t rows, size_t cols) {
  const PlanValId id =
      AddValue(SlotKind::kParam, rows, cols, /*requires_grad=*/true);
  vals_[id].param_offset = offset;
  return id;
}

PlanValId PlanBuilder::MatMul(PlanValId a, PlanValId b) {
  PRIVIM_CHECK_EQ(val(a).cols, val(b).rows);
  Op op{OpKind::kMatMul};
  op.a = a;
  op.b = b;
  return AddOp(op, val(a).rows, val(b).cols);
}

PlanValId PlanBuilder::Add(PlanValId a, PlanValId b) {
  PRIVIM_CHECK_EQ(val(a).rows, val(b).rows);
  PRIVIM_CHECK_EQ(val(a).cols, val(b).cols);
  Op op{OpKind::kAdd};
  op.a = a;
  op.b = b;
  return AddOp(op, val(a).rows, val(a).cols);
}

PlanValId PlanBuilder::Mul(PlanValId a, PlanValId b) {
  PRIVIM_CHECK_EQ(val(a).rows, val(b).rows);
  PRIVIM_CHECK_EQ(val(a).cols, val(b).cols);
  Op op{OpKind::kMul};
  op.a = a;
  op.b = b;
  return AddOp(op, val(a).rows, val(a).cols);
}

PlanValId PlanBuilder::AddRowBroadcast(PlanValId x, PlanValId bias) {
  PRIVIM_CHECK_EQ(val(bias).rows, 1u);
  PRIVIM_CHECK_EQ(val(bias).cols, val(x).cols);
  Op op{OpKind::kAddRowBroadcast};
  op.a = x;
  op.b = bias;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::Scale(PlanValId x, float c) {
  Op op{OpKind::kScale};
  op.a = x;
  op.c0 = c;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::AddScalar(PlanValId x, float c) {
  Op op{OpKind::kAddScalar};
  op.a = x;
  op.c0 = c;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::ScaleByScalar(PlanValId x, PlanValId s) {
  PRIVIM_CHECK_EQ(val(s).rows, 1u);
  PRIVIM_CHECK_EQ(val(s).cols, 1u);
  Op op{OpKind::kScaleByScalar};
  op.a = x;
  op.b = s;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::ConcatCols(PlanValId a, PlanValId b) {
  PRIVIM_CHECK_EQ(val(a).rows, val(b).rows);
  Op op{OpKind::kConcatCols};
  op.a = a;
  op.b = b;
  return AddOp(op, val(a).rows,
               static_cast<size_t>(val(a).cols) + val(b).cols);
}

PlanValId PlanBuilder::Relu(PlanValId x) {
  Op op{OpKind::kRelu};
  op.a = x;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::LeakyRelu(PlanValId x, float slope) {
  Op op{OpKind::kLeakyRelu};
  op.a = x;
  op.c0 = slope;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::Sigmoid(PlanValId x) {
  Op op{OpKind::kSigmoid};
  op.a = x;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::InfluenceProb(PlanValId x) {
  Op op{OpKind::kInfluenceProb};
  op.a = x;
  return AddOp(op, val(x).rows, val(x).cols);
}

PlanValId PlanBuilder::Sum(PlanValId x) {
  Op op{OpKind::kSum};
  op.a = x;
  return AddOp(op, 1, 1);
}

PlanValId PlanBuilder::MeanAll(PlanValId x) {
  // Mirrors ops.cc MeanAll: Scale(Sum(x), 1/size) — two tape nodes, so the
  // plan creates the same two ops to keep the backward replay aligned.
  PRIVIM_CHECK_GT(val(x).size(), 0u);
  return Scale(Sum(x), 1.0f / static_cast<float>(val(x).size()));
}

PlanValId PlanBuilder::GatherRows(PlanValId x,
                                  const std::vector<uint32_t>& index) {
  for (uint32_t i : index) PRIVIM_CHECK_LT(i, val(x).rows);
  Op op{OpKind::kGatherRows};
  op.a = x;
  op.idx_a = index.data();
  op.n_idx = index.size();
  return AddOp(op, index.size(), val(x).cols);
}

PlanValId PlanBuilder::ScatterAddRows(PlanValId x,
                                      const std::vector<uint32_t>& src,
                                      const std::vector<uint32_t>& dst,
                                      const std::vector<float>& coef,
                                      size_t num_out) {
  PRIVIM_CHECK_EQ(src.size(), dst.size());
  PRIVIM_CHECK_EQ(src.size(), coef.size());
  for (size_t e = 0; e < src.size(); ++e) {
    PRIVIM_CHECK_LT(src[e], val(x).rows);
    PRIVIM_CHECK_LT(dst[e], num_out);
  }
  Op op{OpKind::kScatterAddRows};
  op.a = x;
  op.idx_a = src.data();
  op.idx_b = dst.data();
  op.coef = coef.data();
  op.n_idx = src.size();
  return AddOp(op, num_out, val(x).cols);
}

PlanValId PlanBuilder::WeightedScatterAddRows(
    PlanValId alpha, PlanValId x, const std::vector<uint32_t>& src,
    const std::vector<uint32_t>& dst, size_t num_out) {
  PRIVIM_CHECK_EQ(val(alpha).rows, src.size());
  PRIVIM_CHECK_EQ(val(alpha).cols, 1u);
  PRIVIM_CHECK_EQ(src.size(), dst.size());
  for (size_t e = 0; e < src.size(); ++e) {
    PRIVIM_CHECK_LT(src[e], val(x).rows);
    PRIVIM_CHECK_LT(dst[e], num_out);
  }
  Op op{OpKind::kWeightedScatterAddRows};
  op.a = alpha;  // Tape parent order: {alpha, x}.
  op.b = x;
  op.idx_a = src.data();
  op.idx_b = dst.data();
  op.n_idx = src.size();
  return AddOp(op, num_out, val(x).cols);
}

PlanValId PlanBuilder::SegmentSoftmax(PlanValId scores,
                                      const std::vector<uint32_t>& group,
                                      size_t num_groups) {
  PRIVIM_CHECK_EQ(val(scores).cols, 1u);
  PRIVIM_CHECK_EQ(val(scores).rows, group.size());
  for (uint32_t g : group) PRIVIM_CHECK_LT(g, num_groups);
  Op op{OpKind::kSegmentSoftmax};
  op.a = scores;
  op.idx_a = group.data();
  op.n_idx = group.size();
  op.n_groups = num_groups;
  return AddOp(op, group.size(), 1);
}

ExecutionPlan PlanBuilder::Build(PlanValId output, const PlanOptions& opts) {
  PRIVIM_CHECK_GE(output, 0);
  PRIVIM_CHECK_LT(static_cast<size_t>(output), vals_.size());

  ExecutionPlan plan;
  plan.vals_ = std::move(vals_);
  plan.ops_ = std::move(ops_);
  plan.output_ = output;
  plan.input_id_ = input_;

  // Arena layout. Activation values first, then (contiguously) every
  // gradient buffer so Backward can zero them with a single fill, then
  // per-op scratch.
  size_t f_off = 0;
  for (ValueNode& v : plan.vals_) {
    if (v.slot == SlotKind::kActivation) {
      v.val_off = f_off;
      f_off += v.size();
    } else if (v.slot == SlotKind::kParam) {
      plan.param_scalars_ =
          std::max(plan.param_scalars_, v.param_offset + v.size());
    }
  }
  plan.grads_off_ = f_off;
  for (ValueNode& v : plan.vals_) {
    if (v.slot == SlotKind::kActivation && v.requires_grad) {
      v.grad_off = f_off;
      f_off += v.size();
    }
  }
  plan.grads_len_ = f_off - plan.grads_off_;

  size_t d_off = 0;
  for (Op& op : plan.ops_) {
    switch (op.kind) {
      case OpKind::kSegmentSoftmax:
        // Forward: gmax (float) + gsum (double); backward reuses the
        // double region for gdot (both are num_groups wide and never live
        // at the same time).
        op.scratch_f = f_off;
        f_off += op.n_groups;
        op.scratch_d = d_off;
        d_off += op.n_groups;
        break;
      case OpKind::kMatMul:
        // dB is staged in a zeroed buffer and then added into the
        // parameter gradient, exactly like the tape's
        // MatTransMulValues-then-AddInPlace, so the accumulation order is
        // byte-identical even when the gradient already holds mass.
        if (plan.vals_[op.b].requires_grad) {
          op.scratch_db = f_off;
          f_off += plan.vals_[op.b].size();
        }
        break;
      default:
        break;
    }
  }
  plan.farena_ = f_off;
  plan.darena_ = d_off;

  // Backward schedule: replay the tape's iterative post-order DFS
  // (tensor/tensor.cc) over the identical DAG — same root, same
  // parent-visit order ({a, b}) — then reverse. Gradient contributions to
  // shared nodes therefore land in the same order as on the tape, which is
  // what makes float accumulation bit-identical.
  struct Frame {
    PlanValId node;
    size_t next_parent;
  };
  std::vector<PlanValId> order;
  std::vector<uint8_t> visited(plan.vals_.size(), 0);
  std::vector<Frame> stack;
  stack.push_back({output, 0});
  visited[output] = 1;
  auto parent_of = [&plan](PlanValId v, size_t i) -> PlanValId {
    const int32_t op_id = plan.vals_[v].op;
    if (op_id < 0) return -1;
    const Op& op = plan.ops_[op_id];
    if (i == 0) return op.a;
    if (i == 1) return op.b;
    return -1;
  };
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const PlanValId parent = parent_of(frame.node, frame.next_parent);
    if (parent >= 0 || frame.next_parent < 2) {
      ++frame.next_parent;
      if (parent >= 0 && !visited[parent]) {
        visited[parent] = 1;
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const ValueNode& v = plan.vals_[*it];
    // Tape: a node participates in backprop iff it has a closure (an op
    // whose result requires grad).
    if (v.op >= 0 && v.requires_grad) plan.backward_.push_back(v.op);
  }

  // -------------------------------------------------------------------------
  // Pass 1: elementwise fusion. Partition the forward schedule into maximal
  // runs of schedule-adjacent elementwise ops chained through the previous
  // op's output; each run executes as one sweep per buffer
  // (ExecFusedGroup). The sweep applies the same scalar arithmetic per
  // element as the unfused kernels, so fusion alone stays bit-identical to
  // the reference plan. The backward schedule is untouched — it replays the
  // original ops.
  // -------------------------------------------------------------------------
  if (opts.fuse_elementwise) {
    const auto& vals = plan.vals_;
    const auto& ops = plan.ops_;
    auto same_shape = [&vals](PlanValId x, PlanValId y) {
      return vals[x].rows == vals[y].rows && vals[x].cols == vals[y].cols;
    };
    size_t i = 0;
    while (i < ops.size()) {
      if (!IsElementwise(ops[i].kind)) {
        plan.steps_.push_back({static_cast<int32_t>(i), 1});
        ++i;
        continue;
      }
      const size_t start = i;
      size_t end = i + 1;
      while (end < ops.size() &&
             end - start < static_cast<size_t>(kMaxFuseLen)) {
        const Op& op = ops[end];
        if (!IsElementwise(op.kind)) break;
        const PlanValId prev = ops[end - 1].out;
        // Must chain through the previous op's output and keep the group's
        // element domain (all stages same shape).
        if (op.a != prev && op.b != prev) break;
        if (!same_shape(op.out, ops[start].out)) break;
        // Aliasing guard: the non-chained operand must be produced outside
        // the group — an in-group producer's buffer may be elided or only
        // partially written at the point the sweep would read it.
        const PlanValId other = (op.a == prev) ? op.b : op.a;
        if (other >= 0 && other != prev) {
          const int32_t oop = vals[other].op;
          if (oop >= static_cast<int32_t>(start) &&
              oop < static_cast<int32_t>(end)) {
            break;
          }
        }
        ++end;
      }
      plan.steps_.push_back(
          {static_cast<int32_t>(start), static_cast<int32_t>(end - start)});
      i = end;
    }

    // Write elision: a non-final value inside a group whose buffer nothing
    // observes — no forward consumer outside the group, no backward
    // value-read, not the plan output — never gets stored. (Arena space
    // stays reserved; the grad buffer, if any, is still used by backward.)
    for (const FusedStep& step : plan.steps_) {
      if (step.count <= 1) continue;
      const size_t gfirst = static_cast<size_t>(step.first_op);
      const size_t gend = gfirst + static_cast<size_t>(step.count);
      for (size_t j = gfirst; j + 1 < gend; ++j) {
        const PlanValId v = ops[j].out;
        bool live = (v == plan.output_);
        for (size_t ci = j + 1; ci < ops.size() && !live; ++ci) {
          const Op& c = ops[ci];
          const bool uses_a = (c.a == v), uses_b = (c.b == v);
          if (!uses_a && !uses_b) continue;
          if (ci >= gend) {
            live = true;  // Forward-read outside the group.
          } else {
            if (uses_a && BackwardReadsA(c.kind)) live = true;
            if (uses_b && BackwardReadsB(c.kind)) live = true;
          }
        }
        if (!live) plan.vals_[v].elided = true;
      }
    }
  }

  // -------------------------------------------------------------------------
  // Pass 2: per-op kernel selection. Every op gets a kernel table pointer;
  // the vectorizable kinds (matmul / gather / scatter) move to the
  // requested SIMD tier when the op is wide enough for full vectors —
  // narrow ops (cols < one AVX2 vector) stay scalar, which also keeps the
  // reference bit-identity for plans built with PlanOptions::Reference().
  // -------------------------------------------------------------------------
  const simd::Kernels& scalar_kt = simd::ScalarKernels();
  const simd::Kernels& simd_kt = simd::GetKernels(opts.isa);
  plan.isa_ = simd_kt.isa;
  for (Op& op : plan.ops_) {
    const simd::Kernels* kt = &scalar_kt;
    if (simd_kt.isa != simd::Isa::kScalar) {
      switch (op.kind) {
        case OpKind::kMatMul: {
          const size_t n = plan.vals_[op.out].cols;
          const size_t kdim = plan.vals_[op.a].cols;
          if (n >= 8 || (n == 1 && kdim >= 8)) kt = &simd_kt;
          break;
        }
        case OpKind::kGatherRows:
        case OpKind::kScatterAddRows:
        case OpKind::kWeightedScatterAddRows:
          if (plan.vals_[op.out].cols >= 8) kt = &simd_kt;
          break;
        default:
          break;
      }
    }
    op.kern = kt;
  }
  return plan;
}

// ---------------------------------------------------------------------------
// ExecutionPlan.
// ---------------------------------------------------------------------------

size_t ExecutionPlan::output_rows() const {
  PRIVIM_CHECK(compiled());
  return vals_[output_].rows;
}

size_t ExecutionPlan::output_cols() const {
  PRIVIM_CHECK(compiled());
  return vals_[output_].cols;
}

void ExecutionPlan::EnsureArena(PlanArena& arena) const {
  if (arena.f.size() < farena_) arena.f.resize(farena_);
  if (arena.d.size() < darena_) arena.d.resize(darena_);
}

const float* ExecutionPlan::ValPtr(PlanValId id,
                                   std::span<const float> params,
                                   const Matrix& input,
                                   const PlanArena& arena) const {
  const ValueNode& v = vals_[id];
  switch (v.slot) {
    case SlotKind::kInput:
      return input.data();
    case SlotKind::kParam:
      return params.data() + v.param_offset;
    case SlotKind::kActivation:
      return arena.f.data() + v.val_off;
  }
  return nullptr;
}

float* ExecutionPlan::GradPtr(PlanValId id, std::span<float> param_grads,
                              PlanArena& arena) const {
  const ValueNode& v = vals_[id];
  if (!v.requires_grad) return nullptr;
  if (v.slot == SlotKind::kParam) return param_grads.data() + v.param_offset;
  return arena.f.data() + v.grad_off;
}

namespace {

// Elementwise forward/backward scalar functions, transcribed from the
// tape lambdas in tensor/ops.cc so both paths round identically.
inline float SigmoidFwd(float v) {
  return v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                   : std::exp(v) / (1.0f + std::exp(v));
}
inline float SigmoidBwd(float v) {
  const float s = SigmoidFwd(v);
  return s * (1.0f - s);
}

}  // namespace

void ExecutionPlan::ExecForwardOp(const Op& op, std::span<const float> params,
                                  const Matrix& input,
                                  PlanArena& arena) const {
  const ValueNode& on = vals_[op.out];
  float* out = arena.f.data() + on.val_off;
  const float* a = ValPtr(op.a, params, input, arena);
  const float* b = op.b >= 0 ? ValPtr(op.b, params, input, arena) : nullptr;
  const size_t rows = on.rows, cols = on.cols, size = on.size();
  switch (op.kind) {
    case OpKind::kMatMul: {
      const size_t m = vals_[op.a].rows, k = vals_[op.a].cols;
      op.kern->matmul(a, b, out, m, k, cols);
      break;
    }
    case OpKind::kAdd:
      for (size_t i = 0; i < size; ++i) out[i] = a[i] + b[i];
      break;
    case OpKind::kMul:
      for (size_t i = 0; i < size; ++i) out[i] = a[i] * b[i];
      break;
    case OpKind::kAddRowBroadcast:
      for (size_t r = 0; r < rows; ++r) {
        float* orow = out + r * cols;
        const float* xrow = a + r * cols;
        for (size_t c = 0; c < cols; ++c) orow[c] = xrow[c] + b[c];
      }
      break;
    case OpKind::kScale:
      for (size_t i = 0; i < size; ++i) out[i] = a[i] * op.c0;
      break;
    case OpKind::kAddScalar:
      for (size_t i = 0; i < size; ++i) out[i] = a[i] + op.c0;
      break;
    case OpKind::kScaleByScalar: {
      const float sv = b[0];
      for (size_t i = 0; i < size; ++i) out[i] = a[i] * sv;
      break;
    }
    case OpKind::kConcatCols: {
      const size_t a_cols = vals_[op.a].cols, b_cols = vals_[op.b].cols;
      for (size_t r = 0; r < rows; ++r) {
        float* orow = out + r * cols;
        std::copy(a + r * a_cols, a + (r + 1) * a_cols, orow);
        std::copy(b + r * b_cols, b + (r + 1) * b_cols, orow + a_cols);
      }
      break;
    }
    case OpKind::kRelu:
      for (size_t i = 0; i < size; ++i) {
        out[i] = a[i] > 0.0f ? a[i] : 0.0f;
      }
      break;
    case OpKind::kLeakyRelu:
      for (size_t i = 0; i < size; ++i) {
        out[i] = a[i] > 0.0f ? a[i] : op.c0 * a[i];
      }
      break;
    case OpKind::kSigmoid:
      for (size_t i = 0; i < size; ++i) out[i] = SigmoidFwd(a[i]);
      break;
    case OpKind::kInfluenceProb:
      for (size_t i = 0; i < size; ++i) {
        out[i] = a[i] > 0.0f ? 1.0f - std::exp(-a[i]) : 0.0f;
      }
      break;
    case OpKind::kSum: {
      double s = 0.0;
      const size_t n = vals_[op.a].size();
      for (size_t i = 0; i < n; ++i) s += a[i];
      out[0] = static_cast<float>(s);
      break;
    }
    case OpKind::kGatherRows:
      op.kern->gather_rows(a, op.idx_a, op.n_idx, cols, out);
      break;
    case OpKind::kScatterAddRows:
      op.kern->scatter_add_rows(a, op.idx_a, op.idx_b, op.coef, op.n_idx,
                                cols, out, size);
      break;
    case OpKind::kWeightedScatterAddRows:
      op.kern->weighted_scatter_add_rows(a, b, op.idx_a, op.idx_b, op.n_idx,
                                         cols, out, size);
      break;
    case OpKind::kSegmentSoftmax: {
      float* gmax = arena.f.data() + op.scratch_f;
      double* gsum = arena.d.data() + op.scratch_d;
      std::fill(gmax, gmax + op.n_groups, -1e30f);
      std::fill(gsum, gsum + op.n_groups, 0.0);
      for (size_t e = 0; e < op.n_idx; ++e) {
        gmax[op.idx_a[e]] = std::max(gmax[op.idx_a[e]], a[e]);
      }
      for (size_t e = 0; e < op.n_idx; ++e) {
        const float v = std::exp(a[e] - gmax[op.idx_a[e]]);
        out[e] = v;
        gsum[op.idx_a[e]] += v;
      }
      for (size_t e = 0; e < op.n_idx; ++e) {
        const double denom = gsum[op.idx_a[e]];
        out[e] = denom > 0.0 ? static_cast<float>(out[e] / denom) : 0.0f;
      }
      break;
    }
  }
}

namespace {

// Per-stage descriptor for one fused sweep. `other_mode` says how the
// non-chained operand (if any) is indexed: 1 = full (other[i]), 2 = row
// broadcast (other[c]), 3 = scalar (other[0]); 0 = no other operand (the
// chained value feeds both sides, or the op is unary).
struct StageExec {
  OpKind kind;
  const float* other = nullptr;
  float* out = nullptr;
  float c0 = 0.0f;
  uint8_t other_mode = 0;
  bool v_first = true;  // Chained value is operand a.
  bool write = true;
};

// The same scalar arithmetic per element as ExecForwardOp's unfused loops
// (every binary fusible op is add or mul, which are commutative bit-exactly
// — v_first only swaps operand order for clarity).
inline float ApplyStage(const StageExec& s, float v, size_t i, size_t c) {
  float o = v;
  switch (s.other_mode) {
    case 1:
      o = s.other[i];
      break;
    case 2:
      o = s.other[c];
      break;
    case 3:
      o = s.other[0];
      break;
    default:
      break;
  }
  switch (s.kind) {
    case OpKind::kAdd:
    case OpKind::kAddRowBroadcast:
      return s.v_first ? v + o : o + v;
    case OpKind::kMul:
    case OpKind::kScaleByScalar:
      return s.v_first ? v * o : o * v;
    case OpKind::kScale:
      return v * s.c0;
    case OpKind::kAddScalar:
      return v + s.c0;
    case OpKind::kRelu:
      return v > 0.0f ? v : 0.0f;
    case OpKind::kLeakyRelu:
      return v > 0.0f ? v : s.c0 * v;
    case OpKind::kSigmoid:
      return SigmoidFwd(v);
    case OpKind::kInfluenceProb:
      return v > 0.0f ? 1.0f - std::exp(-v) : 0.0f;
    default:
      return v;  // Unreachable: only elementwise kinds are fused.
  }
}

}  // namespace

void ExecutionPlan::ExecFusedGroup(const plan_internal::FusedStep& step,
                                   std::span<const float> params,
                                   const Matrix& input,
                                   PlanArena& arena) const {
  const Op* gops = &ops_[step.first_op];
  const int32_t count = step.count;
  const ValueNode& dom = vals_[gops[0].out];
  const size_t rows = dom.rows, cols = dom.cols;
  const float* in = ValPtr(gops[0].a, params, input, arena);

  StageExec st[kMaxFuseLen];
  for (int32_t s = 0; s < count; ++s) {
    const Op& op = gops[s];
    StageExec& se = st[s];
    se.kind = op.kind;
    se.c0 = op.c0;
    se.out = arena.f.data() + vals_[op.out].val_off;
    se.write = !vals_[op.out].elided;
    const PlanValId vsrc = (s == 0) ? op.a : gops[s - 1].out;
    se.v_first = (op.a == vsrc);
    const PlanValId other = se.v_first ? op.b : op.a;
    if (other < 0 || other == vsrc) {
      se.other_mode = 0;  // Unary, or the chained value feeds both sides.
    } else {
      se.other = ValPtr(other, params, input, arena);
      const ValueNode& ov = vals_[other];
      if (ov.rows == rows && ov.cols == cols) {
        se.other_mode = 1;
      } else if (ov.rows == 1 && ov.cols == cols) {
        se.other_mode = 2;  // kAddRowBroadcast bias.
      } else {
        se.other_mode = 3;  // kScaleByScalar [1,1].
      }
    }
  }

  size_t i = 0;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c, ++i) {
      float v = in[i];
      for (int32_t s = 0; s < count; ++s) {
        v = ApplyStage(st[s], v, i, c);
        if (st[s].write) st[s].out[i] = v;
      }
    }
  }
}

void ExecutionPlan::Forward(std::span<const float> params,
                            const Matrix& input, PlanArena& arena) const {
  PRIVIM_CHECK(compiled());
  PRIVIM_CHECK_GE(params.size(), param_scalars_);
  if (input_id_ >= 0) {
    PRIVIM_CHECK_EQ(input.rows(), vals_[input_id_].rows);
    PRIVIM_CHECK_EQ(input.cols(), vals_[input_id_].cols);
  }
  EnsureArena(arena);

  if (steps_.empty()) {
    for (const Op& op : ops_) ExecForwardOp(op, params, input, arena);
    return;
  }
  for (const FusedStep& step : steps_) {
    if (step.count == 1) {
      ExecForwardOp(ops_[step.first_op], params, input, arena);
    } else {
      ExecFusedGroup(step, params, input, arena);
    }
  }
}

size_t ExecutionPlan::num_elided_values() const {
  size_t n = 0;
  for (const ValueNode& v : vals_) n += v.elided ? 1 : 0;
  return n;
}

std::vector<std::pair<int32_t, int32_t>> ExecutionPlan::ForwardSteps() const {
  std::vector<std::pair<int32_t, int32_t>> out;
  if (steps_.empty()) {
    out.reserve(ops_.size());
    for (size_t i = 0; i < ops_.size(); ++i) {
      out.emplace_back(static_cast<int32_t>(i), 1);
    }
    return out;
  }
  out.reserve(steps_.size());
  for (const FusedStep& s : steps_) out.emplace_back(s.first_op, s.count);
  return out;
}

float ExecutionPlan::OutputScalar(const PlanArena& arena) const {
  PRIVIM_CHECK(compiled());
  PRIVIM_CHECK_EQ(vals_[output_].size(), 1u);
  return arena.f[vals_[output_].val_off];
}

std::span<const float> ExecutionPlan::Output(const PlanArena& arena) const {
  PRIVIM_CHECK(compiled());
  const ValueNode& v = vals_[output_];
  return {arena.f.data() + v.val_off, v.size()};
}

void ExecutionPlan::Backward(std::span<const float> params,
                             const Matrix& input, PlanArena& arena,
                             std::span<float> param_grads) const {
  PRIVIM_CHECK(compiled());
  PRIVIM_CHECK_EQ(vals_[output_].size(), 1u);
  PRIVIM_CHECK_GE(param_grads.size(), param_scalars_);
  EnsureArena(arena);

  std::fill(param_grads.begin(), param_grads.end(), 0.0f);
  float* grads = arena.f.data() + grads_off_;
  std::fill(grads, grads + grads_len_, 0.0f);
  if (!vals_[output_].requires_grad) return;  // Frozen graph: no-op.
  arena.f[vals_[output_].grad_off] += 1.0f;   // Seed d(loss)/d(loss).

  for (const int32_t op_id : backward_) {
    const Op& op = ops_[op_id];
    const ValueNode& on = vals_[op.out];
    const float* g = arena.f.data() + on.grad_off;
    const float* out_val = arena.f.data() + on.val_off;
    const float* av = ValPtr(op.a, params, input, arena);
    const float* bv =
        op.b >= 0 ? ValPtr(op.b, params, input, arena) : nullptr;
    float* ag = GradPtr(op.a, param_grads, arena);
    float* bg = op.b >= 0 ? GradPtr(op.b, param_grads, arena) : nullptr;
    const size_t rows = on.rows, cols = on.cols, size = on.size();
    switch (op.kind) {
      case OpKind::kMatMul: {
        const size_t m = rows, n = cols;
        const size_t k = vals_[op.a].cols;
        if (ag != nullptr) {
          // dA = dOut * B^T: each entry is one locally accumulated dot,
          // added once — identical to MatMulTransValues + AddInPlace.
          op.kern->matmul_da(g, bv, ag, m, k, n);
        }
        if (bg != nullptr) {
          // dB = A^T * dOut, staged in a zeroed scratch then added, as the
          // tape does (MatTransMulValues builds a fresh matrix).
          float* s = arena.f.data() + op.scratch_db;
          op.kern->matmul_db(av, g, s, m, k, n);
          for (size_t i = 0; i < k * n; ++i) bg[i] += s[i];
        }
        break;
      }
      case OpKind::kAdd:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += g[i];
        }
        if (bg != nullptr) {
          for (size_t i = 0; i < size; ++i) bg[i] += g[i];
        }
        break;
      case OpKind::kMul:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += g[i] * bv[i];
        }
        if (bg != nullptr) {
          for (size_t i = 0; i < size; ++i) bg[i] += g[i] * av[i];
        }
        break;
      case OpKind::kAddRowBroadcast:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += g[i];
        }
        if (bg != nullptr) {
          for (size_t r = 0; r < rows; ++r) {
            const float* grow = g + r * cols;
            for (size_t c = 0; c < cols; ++c) bg[c] += grow[c];
          }
        }
        break;
      case OpKind::kScale:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += op.c0 * g[i];
        }
        break;
      case OpKind::kAddScalar:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += g[i];
        }
        break;
      case OpKind::kScaleByScalar: {
        const float sv = bv[0];
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += sv * g[i];
        }
        if (bg != nullptr) {
          double acc = 0.0;
          for (size_t i = 0; i < size; ++i) {
            acc += static_cast<double>(g[i]) * av[i];
          }
          bg[0] += static_cast<float>(acc);
        }
        break;
      }
      case OpKind::kConcatCols: {
        const size_t a_cols = vals_[op.a].cols, b_cols = vals_[op.b].cols;
        for (size_t r = 0; r < rows; ++r) {
          const float* grow = g + r * cols;
          if (ag != nullptr) {
            float* arow = ag + r * a_cols;
            for (size_t c = 0; c < a_cols; ++c) arow[c] += grow[c];
          }
          if (bg != nullptr) {
            float* brow = bg + r * b_cols;
            for (size_t c = 0; c < b_cols; ++c) brow[c] += grow[a_cols + c];
          }
        }
        break;
      }
      case OpKind::kRelu:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) {
            ag[i] += g[i] * (av[i] > 0.0f ? 1.0f : 0.0f);
          }
        }
        break;
      case OpKind::kLeakyRelu:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) {
            ag[i] += g[i] * (av[i] > 0.0f ? 1.0f : op.c0);
          }
        }
        break;
      case OpKind::kSigmoid:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) ag[i] += g[i] * SigmoidBwd(av[i]);
        }
        break;
      case OpKind::kInfluenceProb:
        if (ag != nullptr) {
          for (size_t i = 0; i < size; ++i) {
            ag[i] += g[i] * (av[i] > 0.0f ? std::exp(-av[i]) : 0.0f);
          }
        }
        break;
      case OpKind::kSum:
        if (ag != nullptr) {
          const float g0 = g[0];
          const size_t n = vals_[op.a].size();
          for (size_t i = 0; i < n; ++i) ag[i] += g0;
        }
        break;
      case OpKind::kGatherRows:
        if (ag != nullptr) {
          op.kern->gather_rows_grad(g, op.idx_a, op.n_idx, cols, ag);
        }
        break;
      case OpKind::kScatterAddRows:
        if (ag != nullptr) {
          op.kern->scatter_add_rows_grad(g, op.idx_a, op.idx_b, op.coef,
                                         op.n_idx, cols, ag);
        }
        break;
      case OpKind::kWeightedScatterAddRows:
        if (ag != nullptr || bg != nullptr) {
          op.kern->weighted_scatter_add_rows_grad(av, bv, g, op.idx_a,
                                                  op.idx_b, op.n_idx, cols,
                                                  ag, bg);
        }
        break;
      case OpKind::kSegmentSoftmax:
        if (ag != nullptr) {
          double* gdot = arena.d.data() + op.scratch_d;
          std::fill(gdot, gdot + op.n_groups, 0.0);
          for (size_t e = 0; e < op.n_idx; ++e) {
            gdot[op.idx_a[e]] +=
                static_cast<double>(out_val[e]) * g[e];
          }
          for (size_t e = 0; e < op.n_idx; ++e) {
            const float alpha = out_val[e];
            ag[e] += alpha * (g[e] - static_cast<float>(gdot[op.idx_a[e]]));
          }
        }
        break;
    }
  }
}

}  // namespace privim
