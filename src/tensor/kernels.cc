// Runtime CPUID dispatch for the SIMD kernel tiers (tensor/kernels.h).

#include "tensor/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace privim {
namespace simd {
namespace {

bool EqualsIgnoreCase(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    const char ca = (*a >= 'A' && *a <= 'Z') ? static_cast<char>(*a + 32) : *a;
    const char cb = (*b >= 'A' && *b <= 'Z') ? static_cast<char>(*b + 32) : *b;
    if (ca != cb) return false;
  }
  return *a == '\0' && *b == '\0';
}

Isa DetectMaxIsa() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // A tier is usable only when the CPU reports it AND this binary was
  // built with the matching per-file -m flags (the *OrNull accessors
  // return null otherwise, e.g. on compilers without AVX-512 support).
  if (Avx512KernelsOrNull() != nullptr && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return Isa::kAvx512;
  }
  if (Avx2KernelsOrNull() != nullptr && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return Isa::kAvx2;
  }
#endif
  return Isa::kScalar;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Isa MaxSupportedIsa() {
  static const Isa max = DetectMaxIsa();
  return max;
}

Isa ResolveIsa() {
  const Isa max = MaxSupportedIsa();
  const char* force = std::getenv("PRIVIM_FORCE_ISA");
  if (force == nullptr || *force == '\0') return max;
  Isa want;
  if (EqualsIgnoreCase(force, "scalar")) {
    want = Isa::kScalar;
  } else if (EqualsIgnoreCase(force, "avx2")) {
    want = Isa::kAvx2;
  } else if (EqualsIgnoreCase(force, "avx512")) {
    want = Isa::kAvx512;
  } else {
    static bool warned = [force] {
      std::fprintf(stderr,
                   "privim: ignoring unknown PRIVIM_FORCE_ISA=%s "
                   "(expected scalar|avx2|avx512)\n",
                   force);
      return true;
    }();
    (void)warned;
    return max;
  }
  // Clamp down, never up: forcing a tier the hardware lacks would crash.
  return want < max ? want : max;
}

const Kernels& GetKernels(Isa isa) {
  if (isa > MaxSupportedIsa()) isa = MaxSupportedIsa();
  switch (isa) {
    case Isa::kAvx512:
      if (const Kernels* k = Avx512KernelsOrNull()) return *k;
      [[fallthrough]];
    case Isa::kAvx2:
      if (const Kernels* k = Avx2KernelsOrNull()) return *k;
      [[fallthrough]];
    case Isa::kScalar:
      break;
  }
  return ScalarKernels();
}

}  // namespace simd
}  // namespace privim
