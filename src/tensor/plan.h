#ifndef PRIVIM_TENSOR_PLAN_H_
#define PRIVIM_TENSOR_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/matrix.h"

namespace privim {

/// Compiled execution plans: the static counterpart of the dynamic
/// `Tensor` tape.
///
/// A `PlanBuilder` records the same op DAG a forward pass would build on
/// the tape, but as POD op descriptors over integer value ids instead of
/// `shared_ptr<TensorNode>` graphs with `std::function` closures. `Build()`
/// freezes the DAG into an `ExecutionPlan`: a flat forward schedule, a
/// backward schedule that replays the tape's reverse-postorder traversal,
/// and a byte-exact arena layout for every activation, gradient, and
/// per-op scratch buffer.
///
/// Steady-state contract: once a `PlanArena` has been warmed (one
/// `Forward`+`Backward` round), repeated execution performs **zero heap
/// allocations** — every kernel reads and writes preallocated arena
/// regions, parameter values come from a caller-provided flat span, and
/// parameter gradients accumulate into a caller-provided flat span laid
/// out in `ParamStore` flatten order.
///
/// Bit-identity contract: every kernel transcribes the arithmetic of the
/// corresponding tape op in tensor/ops.cc (same loop structure, same
/// accumulation order, same float/double mixing), and the backward
/// schedule replays the exact parent-visit order of Tensor::Backward's
/// DFS, so plan and tape produce bit-identical values and gradients
/// (pinned by tests/nn/plan_equivalence_test.cc over all five GnnTypes).
///
/// Lifetime: a plan borrows the edge-index/coefficient vectors passed to
/// the graph ops (in practice the `GraphContext` it was compiled against)
/// and must not outlive them.

/// Id of a value node inside one PlanBuilder/ExecutionPlan. Negative means
/// "none".
using PlanValId = int32_t;

namespace plan_internal {

enum class OpKind : uint8_t {
  kMatMul,
  kAdd,
  kMul,
  kAddRowBroadcast,
  kScale,
  kAddScalar,
  kScaleByScalar,
  kConcatCols,
  kRelu,
  kLeakyRelu,
  kSigmoid,
  kInfluenceProb,
  kSum,
  kGatherRows,
  kScatterAddRows,
  kWeightedScatterAddRows,
  kSegmentSoftmax,
};

enum class SlotKind : uint8_t { kInput, kParam, kActivation };

constexpr size_t kNoScratch = static_cast<size_t>(-1);

/// One value in the DAG. Activations live in the arena; params and the
/// single input are bound per execution from caller-provided storage.
struct ValueNode {
  SlotKind slot = SlotKind::kActivation;
  uint32_t rows = 0;
  uint32_t cols = 0;
  bool requires_grad = false;
  /// Fusion write-elision: the value only ever flows register-to-register
  /// inside one fused group and nothing (forward consumer outside the
  /// group, backward value-read, the plan output) observes its buffer, so
  /// the sweep skips the store. Arena space is still reserved.
  bool elided = false;
  size_t param_offset = 0;          // kParam: offset into the flat spans.
  size_t val_off = kNoScratch;      // kActivation: value offset in arena.f.
  size_t grad_off = kNoScratch;     // kActivation + requires_grad only.
  int32_t op = -1;                  // Producing op (-1 for leaves).

  size_t size() const { return static_cast<size_t>(rows) * cols; }
};

/// One scheduled op. Edge-index pointers are borrowed from the vectors the
/// builder was given (the compiled-against GraphContext owns them).
struct Op {
  OpKind kind;
  PlanValId a = -1;
  PlanValId b = -1;
  PlanValId out = -1;
  float c0 = 0.0f;                   // Scale factor / LeakyReLU slope.
  const uint32_t* idx_a = nullptr;   // gather index / edge src / group.
  const uint32_t* idx_b = nullptr;   // edge dst.
  const float* coef = nullptr;       // constant per-edge coefficients.
  size_t n_idx = 0;                  // edge count.
  size_t n_groups = 0;               // segment-softmax group count.
  size_t scratch_f = kNoScratch;     // float scratch offset in arena.f.
  size_t scratch_d = kNoScratch;     // double scratch offset in arena.d.
  size_t scratch_db = kNoScratch;    // MatMul dB staging buffer in arena.f.
  /// Kernel tier for this op, selected at plan finalize time (Build):
  /// points at the scalar table unless the op is one of the vectorizable
  /// kinds, wide enough to profit, and the plan was built with a SIMD isa.
  const simd::Kernels* kern = nullptr;
};

/// One step of the fused forward schedule: `count` consecutive ops of the
/// original schedule. count == 1 executes the op as-is; count > 1 is an
/// elementwise group executed in a single sweep over the group's shape.
struct FusedStep {
  int32_t first_op = 0;
  int32_t count = 1;
};

/// Longest elementwise run one fused sweep will cover (stage descriptors
/// live on the executor's stack). Longer runs split into multiple groups.
constexpr int32_t kMaxFuseLen = 8;

}  // namespace plan_internal

/// Compiler-pass knobs for PlanBuilder::Build. The default —
/// `Reference()` — produces the scalar, unfused plan whose values and
/// gradients are bit-identical to the dynamic tape (the contract
/// tests/nn/plan_equivalence_test.cc pins). `Native()` turns on
/// elementwise fusion and the best SIMD tier the host supports
/// (tensor/kernels.h; override with PRIVIM_FORCE_ISA). Fusion alone keeps
/// bit-identity (the sweep applies the same scalar arithmetic per
/// element); SIMD paths are tolerance-pinned instead
/// (tests/tensor/kernel_diff_test.cc, docs/performance.md).
struct PlanOptions {
  bool fuse_elementwise = false;
  simd::Isa isa = simd::Isa::kScalar;

  static PlanOptions Reference() { return PlanOptions{}; }
  static PlanOptions Native();
};

/// Grow-only execution buffers for one concurrent executor of a plan
/// (trainer: one per worker slot). An arena can be shared by plans of
/// different shapes — `ExecutionPlan::Forward` grows it to the plan's
/// high-water mark and never shrinks it, so alternating between the
/// subgraph plans of a training batch stops allocating once every plan has
/// run once.
struct PlanArena {
  std::vector<float> f;
  std::vector<double> d;
};

class ExecutionPlan;

/// Records ops into a DAG and freezes them into an ExecutionPlan. The
/// builder API mirrors the tape op library (tensor/ops.h) one to one;
/// shapes are validated with the same PRIVIM_CHECKs at build time, so a
/// compiled plan never shape-checks at execution time.
class PlanBuilder {
 public:
  PlanBuilder() = default;

  /// Declares the single external input (e.g. the node-feature matrix).
  /// Bound per execution via ExecutionPlan::Forward's `input` argument.
  PlanValId Input(size_t rows, size_t cols);

  /// Declares a trainable parameter living at `offset` in the flat
  /// parameter span (ParamStore flatten order). Gradients accumulate at
  /// the same offset of the flat gradient span.
  PlanValId Param(size_t offset, size_t rows, size_t cols);

  PlanValId MatMul(PlanValId a, PlanValId b);
  PlanValId Add(PlanValId a, PlanValId b);
  PlanValId Mul(PlanValId a, PlanValId b);
  PlanValId AddRowBroadcast(PlanValId x, PlanValId bias);
  PlanValId Scale(PlanValId x, float c);
  PlanValId AddScalar(PlanValId x, float c);
  PlanValId ScaleByScalar(PlanValId x, PlanValId s);
  PlanValId ConcatCols(PlanValId a, PlanValId b);
  PlanValId Relu(PlanValId x);
  PlanValId LeakyRelu(PlanValId x, float slope = 0.2f);
  PlanValId Sigmoid(PlanValId x);
  PlanValId InfluenceProb(PlanValId x);
  PlanValId Sum(PlanValId x);
  PlanValId MeanAll(PlanValId x);
  PlanValId GatherRows(PlanValId x, const std::vector<uint32_t>& index);
  PlanValId ScatterAddRows(PlanValId x, const std::vector<uint32_t>& src,
                           const std::vector<uint32_t>& dst,
                           const std::vector<float>& coef, size_t num_out);
  PlanValId WeightedScatterAddRows(PlanValId alpha, PlanValId x,
                                   const std::vector<uint32_t>& src,
                                   const std::vector<uint32_t>& dst,
                                   size_t num_out);
  PlanValId SegmentSoftmax(PlanValId scores,
                           const std::vector<uint32_t>& group,
                           size_t num_groups);

  /// Freezes the DAG with `output` as the root: lays out the arena,
  /// computes the backward schedule (tape-replay order from `output`),
  /// runs the optimization passes selected by `opts` (elementwise fusion,
  /// per-op SIMD kernel selection), and returns the immutable plan. The
  /// builder is left in a moved-from state.
  ExecutionPlan Build(PlanValId output,
                      const PlanOptions& opts = PlanOptions());

 private:
  friend class ExecutionPlan;

  PlanValId AddValue(plan_internal::SlotKind slot, size_t rows, size_t cols,
                     bool requires_grad);
  PlanValId AddOp(plan_internal::Op op, size_t out_rows, size_t out_cols);
  const plan_internal::ValueNode& val(PlanValId id) const;

  std::vector<plan_internal::ValueNode> vals_;
  std::vector<plan_internal::Op> ops_;
  PlanValId input_ = -1;
};

/// An immutable compiled plan: run `Forward` (and optionally `Backward`)
/// any number of times against per-call parameter/input bindings and a
/// per-executor arena. Plans are derived state — cheap to recompile, never
/// serialized (checkpoints store parameters only).
class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  bool compiled() const { return !ops_.empty() || output_ >= 0; }
  size_t num_ops() const { return ops_.size(); }
  /// Minimum length of the parameter (and gradient) spans.
  size_t num_param_scalars() const { return param_scalars_; }
  size_t output_rows() const;
  size_t output_cols() const;

  /// SIMD tier the plan's kernels were finalized against (after clamping
  /// to what the host supports). Reference plans report kScalar.
  simd::Isa isa() const { return isa_; }
  /// Whether the fusion pass ran (PlanOptions::fuse_elementwise).
  bool fused() const { return !steps_.empty(); }
  /// Forward schedule length after fusion (== num_ops() when unfused).
  size_t num_forward_steps() const {
    return steps_.empty() ? ops_.size() : steps_.size();
  }
  /// Values whose buffer writes the fusion pass elided.
  size_t num_elided_values() const;
  /// The fused schedule as (first op index, op count) pairs — singleton
  /// steps for an unfused plan. Introspection for the fusion-pass tests.
  std::vector<std::pair<int32_t, int32_t>> ForwardSteps() const;

  /// Runs the forward schedule. `params` is the flat parameter vector
  /// (ParamStore::FlattenParams order); `input` must match the declared
  /// input shape. Grows `arena` on first use; allocation-free once warm.
  void Forward(std::span<const float> params, const Matrix& input,
               PlanArena& arena) const;

  /// Value of the output node after Forward (scalar plans: the loss).
  float OutputScalar(const PlanArena& arena) const;
  /// Flat row-major view of the output node's value after Forward.
  std::span<const float> Output(const PlanArena& arena) const;

  /// Runs the backward schedule from the output node (which must be 1x1),
  /// replaying the tape's traversal order. Zeroes `param_grads` and the
  /// arena gradient region first, then accumulates: the result is
  /// bit-identical to ZeroGrads + Tensor::Backward + FlattenGrads on the
  /// tape. `params`/`input`/`arena` must be the bindings of the
  /// immediately preceding Forward call.
  void Backward(std::span<const float> params, const Matrix& input,
                PlanArena& arena, std::span<float> param_grads) const;

 private:
  friend class PlanBuilder;

  void EnsureArena(PlanArena& arena) const;
  const float* ValPtr(PlanValId id, std::span<const float> params,
                      const Matrix& input, const PlanArena& arena) const;
  float* GradPtr(PlanValId id, std::span<float> param_grads,
                 PlanArena& arena) const;
  void ExecForwardOp(const plan_internal::Op& op,
                     std::span<const float> params, const Matrix& input,
                     PlanArena& arena) const;
  void ExecFusedGroup(const plan_internal::FusedStep& step,
                      std::span<const float> params, const Matrix& input,
                      PlanArena& arena) const;

  std::vector<plan_internal::ValueNode> vals_;
  std::vector<plan_internal::Op> ops_;       // Forward order.
  std::vector<plan_internal::FusedStep> steps_;  // Empty unless fused.
  std::vector<int32_t> backward_;            // Op ids, tape-replay order.
  simd::Isa isa_ = simd::Isa::kScalar;
  PlanValId output_ = -1;
  PlanValId input_id_ = -1;
  size_t farena_ = 0;
  size_t darena_ = 0;
  size_t grads_off_ = 0;
  size_t grads_len_ = 0;
  size_t param_scalars_ = 0;
};

}  // namespace privim

#endif  // PRIVIM_TENSOR_PLAN_H_
