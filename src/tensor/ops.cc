#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace privim {

using internal::TensorNode;

namespace {

// Shorthand: parent node pointer i of the result node.
TensorNode* Parent(TensorNode& n, size_t i) { return n.parents[i].get(); }

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Matrix out = MatMulValues(a.value(), b.value());
  return TensorOpBuilder::Make(
      std::move(out), {a, b}, [](TensorNode& n) {
        TensorNode* pa = Parent(n, 0);
        TensorNode* pb = Parent(n, 1);
        if (pa->requires_grad) {
          // dA = dOut * B^T
          pa->grad.AddInPlace(MatMulTransValues(n.grad, pb->value));
        }
        if (pb->requires_grad) {
          // dB = A^T * dOut
          pb->grad.AddInPlace(MatTransMulValues(pa->value, n.grad));
        }
      });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  PRIVIM_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.AddInPlace(b.value());
  return TensorOpBuilder::Make(
      std::move(out), {a, b}, [](TensorNode& n) {
        for (int i = 0; i < 2; ++i) {
          TensorNode* p = Parent(n, i);
          if (p->requires_grad) p->grad.AddInPlace(n.grad);
        }
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  PRIVIM_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.AddScaledInPlace(b.value(), -1.0f);
  return TensorOpBuilder::Make(
      std::move(out), {a, b}, [](TensorNode& n) {
        TensorNode* pa = Parent(n, 0);
        TensorNode* pb = Parent(n, 1);
        if (pa->requires_grad) pa->grad.AddInPlace(n.grad);
        if (pb->requires_grad) pb->grad.AddScaledInPlace(n.grad, -1.0f);
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  PRIVIM_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] *= b.value().data()[i];
  }
  return TensorOpBuilder::Make(
      std::move(out), {a, b}, [](TensorNode& n) {
        TensorNode* pa = Parent(n, 0);
        TensorNode* pb = Parent(n, 1);
        if (pa->requires_grad) {
          for (size_t i = 0; i < n.grad.size(); ++i) {
            pa->grad.data()[i] += n.grad.data()[i] * pb->value.data()[i];
          }
        }
        if (pb->requires_grad) {
          for (size_t i = 0; i < n.grad.size(); ++i) {
            pb->grad.data()[i] += n.grad.data()[i] * pa->value.data()[i];
          }
        }
      });
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  PRIVIM_CHECK_EQ(bias.rows(), 1u);
  PRIVIM_CHECK_EQ(bias.cols(), x.cols());
  Matrix out = x.value();
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    const float* b = bias.value().row(0);
    for (size_t c = 0; c < out.cols(); ++c) row[c] += b[c];
  }
  return TensorOpBuilder::Make(
      std::move(out), {x, bias}, [](TensorNode& n) {
        TensorNode* px = Parent(n, 0);
        TensorNode* pb = Parent(n, 1);
        if (px->requires_grad) px->grad.AddInPlace(n.grad);
        if (pb->requires_grad) {
          float* brow = pb->grad.row(0);
          for (size_t r = 0; r < n.grad.rows(); ++r) {
            const float* grow = n.grad.row(r);
            for (size_t c = 0; c < n.grad.cols(); ++c) brow[c] += grow[c];
          }
        }
      });
}

Tensor Scale(const Tensor& x, float c) {
  Matrix out = x.value();
  out.ScaleInPlace(c);
  return TensorOpBuilder::Make(
      std::move(out), {x}, [c](TensorNode& n) {
        TensorNode* p = Parent(n, 0);
        if (p->requires_grad) p->grad.AddScaledInPlace(n.grad, c);
      });
}

Tensor AddScalar(const Tensor& x, float c) {
  Matrix out = x.value();
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] += c;
  return TensorOpBuilder::Make(
      std::move(out), {x}, [](TensorNode& n) {
        TensorNode* p = Parent(n, 0);
        if (p->requires_grad) p->grad.AddInPlace(n.grad);
      });
}

Tensor ScaleByScalar(const Tensor& x, const Tensor& s) {
  PRIVIM_CHECK_EQ(s.rows(), 1u);
  PRIVIM_CHECK_EQ(s.cols(), 1u);
  const float sv = s.value()(0, 0);
  Matrix out = x.value();
  out.ScaleInPlace(sv);
  return TensorOpBuilder::Make(
      std::move(out), {x, s}, [](TensorNode& n) {
        TensorNode* px = Parent(n, 0);
        TensorNode* ps = Parent(n, 1);
        const float sv = ps->value(0, 0);
        if (px->requires_grad) px->grad.AddScaledInPlace(n.grad, sv);
        if (ps->requires_grad) {
          double acc = 0.0;
          for (size_t i = 0; i < n.grad.size(); ++i) {
            acc += static_cast<double>(n.grad.data()[i]) *
                   px->value.data()[i];
          }
          ps->grad(0, 0) += static_cast<float>(acc);
        }
      });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  PRIVIM_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < out.rows(); ++r) {
    float* orow = out.row(r);
    const float* arow = a.value().row(r);
    const float* brow = b.value().row(r);
    std::copy(arow, arow + a.cols(), orow);
    std::copy(brow, brow + b.cols(), orow + a.cols());
  }
  const size_t a_cols = a.cols();
  return TensorOpBuilder::Make(
      std::move(out), {a, b}, [a_cols](TensorNode& n) {
        TensorNode* pa = Parent(n, 0);
        TensorNode* pb = Parent(n, 1);
        for (size_t r = 0; r < n.grad.rows(); ++r) {
          const float* grow = n.grad.row(r);
          if (pa->requires_grad) {
            float* arow = pa->grad.row(r);
            for (size_t c = 0; c < a_cols; ++c) arow[c] += grow[c];
          }
          if (pb->requires_grad) {
            float* brow = pb->grad.row(r);
            for (size_t c = 0; c < pb->grad.cols(); ++c) {
              brow[c] += grow[a_cols + c];
            }
          }
        }
      });
}

namespace {

/// Generic elementwise op: forward f(x), backward f'(x) computed from the
/// *input* value.
template <typename Fwd, typename Bwd>
Tensor Elementwise(const Tensor& x, Fwd fwd, Bwd bwd) {
  Matrix out = x.value();
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] = fwd(out.data()[i]);
  return TensorOpBuilder::Make(
      std::move(out), {x}, [bwd](TensorNode& n) {
        TensorNode* p = Parent(n, 0);
        if (!p->requires_grad) return;
        for (size_t i = 0; i < n.grad.size(); ++i) {
          p->grad.data()[i] += n.grad.data()[i] * bwd(p->value.data()[i]);
        }
      });
}

}  // namespace

Tensor Relu(const Tensor& x) {
  return Elementwise(
      x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v) { return v > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& x, float slope) {
  return Elementwise(
      x, [slope](float v) { return v > 0.0f ? v : slope * v; },
      [slope](float v) { return v > 0.0f ? 1.0f : slope; });
}

Tensor SigmoidOp(const Tensor& x) {
  return Elementwise(
      x,
      [](float v) {
        return v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                         : std::exp(v) / (1.0f + std::exp(v));
      },
      [](float v) {
        const float s = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                                  : std::exp(v) / (1.0f + std::exp(v));
        return s * (1.0f - s);
      });
}

Tensor TanhOp(const Tensor& x) {
  return Elementwise(
      x, [](float v) { return std::tanh(v); },
      [](float v) {
        const float t = std::tanh(v);
        return 1.0f - t * t;
      });
}

Tensor ExpOp(const Tensor& x) {
  return Elementwise(
      x, [](float v) { return std::exp(v); },
      [](float v) { return std::exp(v); });
}

Tensor LogOp(const Tensor& x, float eps) {
  return Elementwise(
      x, [eps](float v) { return std::log(v + eps); },
      [eps](float v) { return 1.0f / (v + eps); });
}

Tensor InfluenceProb(const Tensor& z) {
  // phi(z) = 1 - exp(-max(z,0)); derivative exp(-z) for z>0, 0 otherwise.
  return Elementwise(
      z,
      [](float v) { return v > 0.0f ? 1.0f - std::exp(-v) : 0.0f; },
      [](float v) { return v > 0.0f ? std::exp(-v) : 0.0f; });
}

Tensor Sum(const Tensor& x) {
  Matrix out(1, 1);
  out(0, 0) = static_cast<float>(x.value().Sum());
  return TensorOpBuilder::Make(
      std::move(out), {x}, [](TensorNode& n) {
        TensorNode* p = Parent(n, 0);
        if (!p->requires_grad) return;
        const float g = n.grad(0, 0);
        for (size_t i = 0; i < p->grad.size(); ++i) p->grad.data()[i] += g;
      });
}

Tensor MeanAll(const Tensor& x) {
  PRIVIM_CHECK_GT(x.value().size(), 0u);
  return Scale(Sum(x), 1.0f / static_cast<float>(x.value().size()));
}

Tensor RowSum(const Tensor& x) {
  Matrix out(x.rows(), 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    const float* row = x.value().row(r);
    float s = 0.0f;
    for (size_t c = 0; c < x.cols(); ++c) s += row[c];
    out(r, 0) = s;
  }
  return TensorOpBuilder::Make(
      std::move(out), {x}, [](TensorNode& n) {
        TensorNode* p = Parent(n, 0);
        if (!p->requires_grad) return;
        for (size_t r = 0; r < p->grad.rows(); ++r) {
          const float g = n.grad(r, 0);
          float* prow = p->grad.row(r);
          for (size_t c = 0; c < p->grad.cols(); ++c) prow[c] += g;
        }
      });
}

Tensor GatherRows(const Tensor& x, const std::vector<uint32_t>& index) {
  Matrix out(index.size(), x.cols());
  for (size_t i = 0; i < index.size(); ++i) {
    PRIVIM_CHECK_LT(index[i], x.rows());
    const float* src = x.value().row(index[i]);
    std::copy(src, src + x.cols(), out.row(i));
  }
  return TensorOpBuilder::Make(
      std::move(out), {x}, [index](TensorNode& n) {
        TensorNode* p = Parent(n, 0);
        if (!p->requires_grad) return;
        for (size_t i = 0; i < index.size(); ++i) {
          const float* grow = n.grad.row(i);
          float* prow = p->grad.row(index[i]);
          for (size_t c = 0; c < n.grad.cols(); ++c) prow[c] += grow[c];
        }
      });
}

Tensor ScatterAddRows(const Tensor& x, const std::vector<uint32_t>& src,
                      const std::vector<uint32_t>& dst,
                      const std::vector<float>& coef, size_t num_out) {
  PRIVIM_CHECK_EQ(src.size(), dst.size());
  PRIVIM_CHECK_EQ(src.size(), coef.size());
  Matrix out(num_out, x.cols());
  for (size_t e = 0; e < src.size(); ++e) {
    PRIVIM_CHECK_LT(src[e], x.rows());
    PRIVIM_CHECK_LT(dst[e], num_out);
    const float* xin = x.value().row(src[e]);
    float* orow = out.row(dst[e]);
    const float c = coef[e];
    for (size_t k = 0; k < x.cols(); ++k) orow[k] += c * xin[k];
  }
  return TensorOpBuilder::Make(
      std::move(out), {x}, [src, dst, coef](TensorNode& n) {
        TensorNode* p = Parent(n, 0);
        if (!p->requires_grad) return;
        for (size_t e = 0; e < src.size(); ++e) {
          const float* grow = n.grad.row(dst[e]);
          float* prow = p->grad.row(src[e]);
          const float c = coef[e];
          for (size_t k = 0; k < n.grad.cols(); ++k) {
            prow[k] += c * grow[k];
          }
        }
      });
}

Tensor WeightedScatterAddRows(const Tensor& alpha, const Tensor& x,
                              const std::vector<uint32_t>& src,
                              const std::vector<uint32_t>& dst,
                              size_t num_out) {
  PRIVIM_CHECK_EQ(alpha.rows(), src.size());
  PRIVIM_CHECK_EQ(alpha.cols(), 1u);
  PRIVIM_CHECK_EQ(src.size(), dst.size());
  Matrix out(num_out, x.cols());
  for (size_t e = 0; e < src.size(); ++e) {
    PRIVIM_CHECK_LT(src[e], x.rows());
    PRIVIM_CHECK_LT(dst[e], num_out);
    const float a = alpha.value()(e, 0);
    const float* xin = x.value().row(src[e]);
    float* orow = out.row(dst[e]);
    for (size_t k = 0; k < x.cols(); ++k) orow[k] += a * xin[k];
  }
  return TensorOpBuilder::Make(
      std::move(out), {alpha, x}, [src, dst](TensorNode& n) {
        TensorNode* pa = Parent(n, 0);
        TensorNode* px = Parent(n, 1);
        for (size_t e = 0; e < src.size(); ++e) {
          const float* grow = n.grad.row(dst[e]);
          const float* xin = px->value.row(src[e]);
          if (pa->requires_grad) {
            double dot = 0.0;
            for (size_t k = 0; k < n.grad.cols(); ++k) {
              dot += static_cast<double>(grow[k]) * xin[k];
            }
            pa->grad(e, 0) += static_cast<float>(dot);
          }
          if (px->requires_grad) {
            const float a = pa->value(e, 0);
            float* prow = px->grad.row(src[e]);
            for (size_t k = 0; k < n.grad.cols(); ++k) {
              prow[k] += a * grow[k];
            }
          }
        }
      });
}

Tensor SegmentSoftmax(const Tensor& scores,
                      const std::vector<uint32_t>& group,
                      size_t num_groups) {
  PRIVIM_CHECK_EQ(scores.cols(), 1u);
  PRIVIM_CHECK_EQ(scores.rows(), group.size());
  const size_t e_count = group.size();

  // Per-group max for numerical stability.
  std::vector<float> gmax(num_groups, -1e30f);
  for (size_t e = 0; e < e_count; ++e) {
    PRIVIM_CHECK_LT(group[e], num_groups);
    gmax[group[e]] = std::max(gmax[group[e]], scores.value()(e, 0));
  }
  std::vector<double> gsum(num_groups, 0.0);
  Matrix out(e_count, 1);
  for (size_t e = 0; e < e_count; ++e) {
    const float v = std::exp(scores.value()(e, 0) - gmax[group[e]]);
    out(e, 0) = v;
    gsum[group[e]] += v;
  }
  for (size_t e = 0; e < e_count; ++e) {
    const double denom = gsum[group[e]];
    out(e, 0) = denom > 0.0
                    ? static_cast<float>(out(e, 0) / denom)
                    : 0.0f;
  }

  return TensorOpBuilder::Make(
      std::move(out), {scores},
      [group, num_groups](TensorNode& n) {
        TensorNode* p = Parent(n, 0);
        if (!p->requires_grad) return;
        // d s_e = alpha_e * (g_e - sum_{e' in group} alpha_e' g_e').
        std::vector<double> gdot(num_groups, 0.0);
        for (size_t e = 0; e < group.size(); ++e) {
          gdot[group[e]] += static_cast<double>(n.value(e, 0)) *
                            n.grad(e, 0);
        }
        for (size_t e = 0; e < group.size(); ++e) {
          const float alpha = n.value(e, 0);
          p->grad(e, 0) += alpha * (n.grad(e, 0) -
                                    static_cast<float>(gdot[group[e]]));
        }
      });
}

}  // namespace privim
