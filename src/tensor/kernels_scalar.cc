// Scalar kernel tier: exact transcriptions of the reference loops that
// tensor/plan.cc historically ran inline. Loop structure, accumulation
// order, the zero-skip in the matmuls, and the float/double mixing are all
// preserved verbatim — this tier IS the bit-identity contract with the
// dynamic tape (tensor/ops.cc), pinned by tests/nn/plan_equivalence_test.cc.
// Keep this file free of -m microarchitecture flags so it rounds exactly
// like the tape code.

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "tensor/kernels.h"

namespace privim {
namespace simd {
namespace {

void MatMulScalar(const float* a, const float* b, float* out, size_t m,
                  size_t k, size_t n) {
  std::fill(out, out + m * n, 0.0f);
  for (size_t i = 0; i < m; ++i) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float aik = a[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = b + kk * n;
      float* orow = out + i * n;
      for (size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
}

void MatMulDaScalar(const float* g, const float* b, float* ag, size_t m,
                    size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const float* grow = g + i * n;
    for (size_t j = 0; j < k; ++j) {
      const float* brow = b + j * n;
      float dot = 0.0f;
      for (size_t c = 0; c < n; ++c) dot += grow[c] * brow[c];
      ag[i * k + j] += dot;
    }
  }
}

void MatMulDbScalar(const float* a, const float* g, float* s, size_t m,
                    size_t k, size_t n) {
  std::fill(s, s + k * n, 0.0f);
  for (size_t r = 0; r < m; ++r) {
    const float* arow = a + r * k;
    const float* grow = g + r * n;
    for (size_t i = 0; i < k; ++i) {
      const float ari = arow[i];
      if (ari == 0.0f) continue;
      float* srow = s + i * n;
      for (size_t j = 0; j < n; ++j) srow[j] += ari * grow[j];
    }
  }
}

void GatherRowsScalar(const float* x, const uint32_t* idx, size_t n_idx,
                      size_t cols, float* out) {
  for (size_t i = 0; i < n_idx; ++i) {
    const float* src = x + idx[i] * cols;
    std::copy(src, src + cols, out + i * cols);
  }
}

void GatherRowsGradScalar(const float* g, const uint32_t* idx, size_t n_idx,
                          size_t cols, float* ag) {
  for (size_t i = 0; i < n_idx; ++i) {
    const float* grow = g + i * cols;
    float* arow = ag + idx[i] * cols;
    for (size_t c = 0; c < cols; ++c) arow[c] += grow[c];
  }
}

void ScatterAddRowsScalar(const float* x, const uint32_t* src,
                          const uint32_t* dst, const float* coef,
                          size_t n_edges, size_t cols, float* out,
                          size_t out_size) {
  std::fill(out, out + out_size, 0.0f);
  for (size_t e = 0; e < n_edges; ++e) {
    const float* xin = x + src[e] * cols;
    float* orow = out + dst[e] * cols;
    const float c = coef[e];
    for (size_t k = 0; k < cols; ++k) orow[k] += c * xin[k];
  }
}

void ScatterAddRowsGradScalar(const float* g, const uint32_t* src,
                              const uint32_t* dst, const float* coef,
                              size_t n_edges, size_t cols, float* ag) {
  for (size_t e = 0; e < n_edges; ++e) {
    const float* grow = g + dst[e] * cols;
    float* arow = ag + src[e] * cols;
    const float c = coef[e];
    for (size_t k = 0; k < cols; ++k) arow[k] += c * grow[k];
  }
}

void WeightedScatterAddRowsScalar(const float* alpha, const float* x,
                                  const uint32_t* src, const uint32_t* dst,
                                  size_t n_edges, size_t cols, float* out,
                                  size_t out_size) {
  std::fill(out, out + out_size, 0.0f);
  for (size_t e = 0; e < n_edges; ++e) {
    const float a = alpha[e];
    const float* xin = x + src[e] * cols;
    float* orow = out + dst[e] * cols;
    for (size_t k = 0; k < cols; ++k) orow[k] += a * xin[k];
  }
}

void WeightedScatterAddRowsGradScalar(const float* alpha, const float* x,
                                      const float* g, const uint32_t* src,
                                      const uint32_t* dst, size_t n_edges,
                                      size_t cols, float* dalpha, float* dx) {
  for (size_t e = 0; e < n_edges; ++e) {
    const float* grow = g + dst[e] * cols;
    const float* xin = x + src[e] * cols;
    if (dalpha != nullptr) {
      double dot = 0.0;
      for (size_t k = 0; k < cols; ++k) {
        dot += static_cast<double>(grow[k]) * xin[k];
      }
      dalpha[e] += static_cast<float>(dot);
    }
    if (dx != nullptr) {
      const float a = alpha[e];
      float* brow = dx + src[e] * cols;
      for (size_t k = 0; k < cols; ++k) brow[k] += a * grow[k];
    }
  }
}

}  // namespace

const Kernels& ScalarKernels() {
  static const Kernels k = {
      Isa::kScalar,
      &MatMulScalar,
      &MatMulDaScalar,
      &MatMulDbScalar,
      &GatherRowsScalar,
      &GatherRowsGradScalar,
      &ScatterAddRowsScalar,
      &ScatterAddRowsGradScalar,
      &WeightedScatterAddRowsScalar,
      &WeightedScatterAddRowsGradScalar,
  };
  return k;
}

}  // namespace simd
}  // namespace privim
