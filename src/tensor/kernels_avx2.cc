// AVX2 (8-lane float) kernel tier. This translation unit is compiled with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt) and therefore must stay
// minimal: intrinsics code with internal linkage plus the one table
// accessor, no std:: inline functions that could be COMDAT-merged into
// TUs built for the baseline ISA. Entry is gated by GetKernels' CPUID
// check, never reached on hardware without AVX2+FMA.
//
// Numerics: the scatter/gather kernels use explicit mul-then-add in the
// scalar edge/element order, so every accumulation step rounds exactly
// like the scalar tier. The matmul family uses FMA and (for column
// vectors) vectorized reductions — covered by the tolerance contract in
// tests/tensor/kernel_diff_test.cc.

#include <cstddef>
#include <cstdint>

#include "tensor/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace privim {
namespace simd {
namespace {

inline float Hsum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

inline double Hsum4d(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(lo) + _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
}

void MatMulAvx2(const float* a, const float* b, float* out, size_t m,
                size_t k, size_t n) {
  if (n == 1) {
    // Column-vector product: one dot over k per output row.
    for (size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      __m256 acc = _mm256_setzero_ps();
      size_t kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                              _mm256_loadu_ps(b + kk), acc);
      }
      float dot = Hsum8(acc);
      for (; kk < k; ++kk) dot += arow[kk] * b[kk];
      out[i] = dot;
    }
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (size_t kk = 0; kk < k; ++kk) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]),
                              _mm256_loadu_ps(b + kk * n + j), acc);
      }
      _mm256_storeu_ps(orow + j, acc);
    }
    for (; j < n; ++j) {
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk * n + j];
      orow[j] = acc;
    }
  }
}

void MatMulDaAvx2(const float* g, const float* b, float* ag, size_t m,
                  size_t k, size_t n) {
  if (n == 1) {
    // ag[i,:] += g[i] * b[:,0] — an axpy over k per row.
    for (size_t i = 0; i < m; ++i) {
      const __m256 gv = _mm256_set1_ps(g[i]);
      float* arow = ag + i * k;
      size_t j = 0;
      for (; j + 8 <= k; j += 8) {
        const __m256 prod = _mm256_mul_ps(gv, _mm256_loadu_ps(b + j));
        _mm256_storeu_ps(arow + j,
                         _mm256_add_ps(_mm256_loadu_ps(arow + j), prod));
      }
      for (; j < k; ++j) arow[j] += g[i] * b[j];
    }
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    const float* grow = g + i * n;
    for (size_t j = 0; j < k; ++j) {
      const float* brow = b + j * n;
      __m256 acc = _mm256_setzero_ps();
      size_t c = 0;
      for (; c + 8 <= n; c += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(grow + c),
                              _mm256_loadu_ps(brow + c), acc);
      }
      float dot = Hsum8(acc);
      for (; c < n; ++c) dot += grow[c] * brow[c];
      ag[i * k + j] += dot;
    }
  }
}

void MatMulDbAvx2(const float* a, const float* g, float* s, size_t m,
                  size_t k, size_t n) {
  for (size_t i = 0; i < k * n; ++i) s[i] = 0.0f;
  if (n == 1) {
    // s[:,0] += g[r] * a[r,:] per sample row — axpy over k.
    for (size_t r = 0; r < m; ++r) {
      const __m256 gv = _mm256_set1_ps(g[r]);
      const float* arow = a + r * k;
      size_t i = 0;
      for (; i + 8 <= k; i += 8) {
        const __m256 prod = _mm256_mul_ps(gv, _mm256_loadu_ps(arow + i));
        _mm256_storeu_ps(s + i, _mm256_add_ps(_mm256_loadu_ps(s + i), prod));
      }
      for (; i < k; ++i) s[i] += arow[i] * g[r];
    }
    return;
  }
  for (size_t r = 0; r < m; ++r) {
    const float* arow = a + r * k;
    const float* grow = g + r * n;
    for (size_t i = 0; i < k; ++i) {
      const float ari = arow[i];
      if (ari == 0.0f) continue;
      float* srow = s + i * n;
      const __m256 av = _mm256_set1_ps(ari);
      size_t j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(
            srow + j,
            _mm256_fmadd_ps(av, _mm256_loadu_ps(grow + j),
                            _mm256_loadu_ps(srow + j)));
      }
      for (; j < n; ++j) srow[j] += ari * grow[j];
    }
  }
}

void GatherRowsAvx2(const float* x, const uint32_t* idx, size_t n_idx,
                    size_t cols, float* out) {
  for (size_t i = 0; i < n_idx; ++i) {
    const float* src = x + idx[i] * cols;
    float* dst = out + i * cols;
    size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      _mm256_storeu_ps(dst + c, _mm256_loadu_ps(src + c));
    }
    for (; c < cols; ++c) dst[c] = src[c];
  }
}

void GatherRowsGradAvx2(const float* g, const uint32_t* idx, size_t n_idx,
                        size_t cols, float* ag) {
  for (size_t i = 0; i < n_idx; ++i) {
    const float* grow = g + i * cols;
    float* arow = ag + idx[i] * cols;
    size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      _mm256_storeu_ps(arow + c, _mm256_add_ps(_mm256_loadu_ps(arow + c),
                                               _mm256_loadu_ps(grow + c)));
    }
    for (; c < cols; ++c) arow[c] += grow[c];
  }
}

// Shared axpy body for the scatter family: dst[k] += c * src[k] with
// explicit mul-then-add so each element rounds exactly like the scalar
// tier's `dst[k] += c * src[k]` (compiled without FMA contraction).
inline void AxpyRow(float c, const float* src, float* dst, size_t cols) {
  const __m256 cv = _mm256_set1_ps(c);
  size_t k = 0;
  for (; k + 8 <= cols; k += 8) {
    const __m256 prod = _mm256_mul_ps(cv, _mm256_loadu_ps(src + k));
    _mm256_storeu_ps(dst + k, _mm256_add_ps(_mm256_loadu_ps(dst + k), prod));
  }
  for (; k < cols; ++k) dst[k] += c * src[k];
}

void ScatterAddRowsAvx2(const float* x, const uint32_t* src,
                        const uint32_t* dst, const float* coef,
                        size_t n_edges, size_t cols, float* out,
                        size_t out_size) {
  for (size_t i = 0; i < out_size; ++i) out[i] = 0.0f;
  for (size_t e = 0; e < n_edges; ++e) {
    AxpyRow(coef[e], x + src[e] * cols, out + dst[e] * cols, cols);
  }
}

void ScatterAddRowsGradAvx2(const float* g, const uint32_t* src,
                            const uint32_t* dst, const float* coef,
                            size_t n_edges, size_t cols, float* ag) {
  for (size_t e = 0; e < n_edges; ++e) {
    AxpyRow(coef[e], g + dst[e] * cols, ag + src[e] * cols, cols);
  }
}

void WeightedScatterAddRowsAvx2(const float* alpha, const float* x,
                                const uint32_t* src, const uint32_t* dst,
                                size_t n_edges, size_t cols, float* out,
                                size_t out_size) {
  for (size_t i = 0; i < out_size; ++i) out[i] = 0.0f;
  for (size_t e = 0; e < n_edges; ++e) {
    AxpyRow(alpha[e], x + src[e] * cols, out + dst[e] * cols, cols);
  }
}

void WeightedScatterAddRowsGradAvx2(const float* alpha, const float* x,
                                    const float* g, const uint32_t* src,
                                    const uint32_t* dst, size_t n_edges,
                                    size_t cols, float* dalpha, float* dx) {
  for (size_t e = 0; e < n_edges; ++e) {
    const float* grow = g + dst[e] * cols;
    const float* xin = x + src[e] * cols;
    if (dalpha != nullptr) {
      __m256d acc = _mm256_setzero_pd();
      size_t k = 0;
      for (; k + 4 <= cols; k += 4) {
        const __m256d gd = _mm256_cvtps_pd(_mm_loadu_ps(grow + k));
        const __m256d xd = _mm256_cvtps_pd(_mm_loadu_ps(xin + k));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(gd, xd));
      }
      double dot = Hsum4d(acc);
      for (; k < cols; ++k) {
        dot += static_cast<double>(grow[k]) * xin[k];
      }
      dalpha[e] += static_cast<float>(dot);
    }
    if (dx != nullptr) {
      AxpyRow(alpha[e], grow, dx + src[e] * cols, cols);
    }
  }
}

}  // namespace

const Kernels* Avx2KernelsOrNull() {
  static const Kernels k = {
      Isa::kAvx2,
      &MatMulAvx2,
      &MatMulDaAvx2,
      &MatMulDbAvx2,
      &GatherRowsAvx2,
      &GatherRowsGradAvx2,
      &ScatterAddRowsAvx2,
      &ScatterAddRowsGradAvx2,
      &WeightedScatterAddRowsAvx2,
      &WeightedScatterAddRowsGradAvx2,
  };
  return &k;
}

}  // namespace simd
}  // namespace privim

#else  // !(__AVX2__ && __FMA__)

namespace privim {
namespace simd {
const Kernels* Avx2KernelsOrNull() { return nullptr; }
}  // namespace simd
}  // namespace privim

#endif
