#ifndef PRIVIM_TENSOR_KERNELS_H_
#define PRIVIM_TENSOR_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace privim {
namespace simd {

/// Vectorized inner-loop kernels for the plan executor (tensor/plan.cc),
/// with runtime CPUID dispatch.
///
/// Three tiers are always compiled: scalar (an exact transcription of the
/// reference loops in plan.cc, bit-identical to the tape), AVX2 (8-lane
/// float) and AVX-512 (16-lane float, masked remainders). The AVX tiers
/// live in their own translation units (kernels_avx2.cc / kernels_avx512.cc)
/// built with per-file -m flags so nothing else in the binary is compiled
/// for a microarchitecture the host may lack; their entry points are only
/// reachable through `GetKernels`, which clamps to what the CPU reports.
///
/// Numerics contract (pinned by tests/tensor/kernel_diff_test.cc):
///  - gather_rows:          bit-identical to scalar (pure row copies).
///  - gather_rows_grad:     bit-identical (same per-element add order).
///  - scatter_add_rows{,_grad}, weighted_scatter_add_rows and the dx half
///    of its grad: per-element mul-then-add in the same edge order as
///    scalar, so each accumulation step rounds identically — within 1 ULP
///    per contributing edge (and in practice bit-identical when the scalar
///    build does not contract to FMA).
///  - matmul / matmul_da / matmul_db and the dalpha half of
///    weighted_scatter_add_rows_grad: use FMA and/or vectorized
///    reductions, so results differ from scalar by a bounded forward
///    error; the harness checks both against a double-precision reference
///    with a sum-of-|terms| bound.
/// Every kernel is a pure function of its arguments — no globals, no
/// allocation — so plans stay deterministic and allocation-free.
enum class Isa : uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* IsaName(Isa isa);

/// Best tier that is both compiled into this binary and supported by the
/// running CPU (CPUID). Computed once.
Isa MaxSupportedIsa();

/// `MaxSupportedIsa()` clamped by the PRIVIM_FORCE_ISA environment
/// variable ("scalar" | "avx2" | "avx512", case-insensitive). Forcing a
/// tier above what the hardware supports clamps down, never up; unknown
/// values warn once and are ignored. Read per call so tests can flip it.
Isa ResolveIsa();

/// One dispatch table of inner-loop kernels. All matrices are dense
/// row-major float. Kernels that produce a whole buffer (matmul,
/// matmul_db, the scatter forwards) zero-fill it first, matching the
/// plan executor's reference semantics; grad kernels accumulate (+=).
struct Kernels {
  Isa isa;

  /// out[m,n] = a[m,k] * b[k,n] (zero-fills out).
  void (*matmul)(const float* a, const float* b, float* out, size_t m,
                 size_t k, size_t n);
  /// ag[m,k] += g[m,n] * b[k,n]^T — one locally accumulated dot per entry,
  /// added once.
  void (*matmul_da)(const float* g, const float* b, float* ag, size_t m,
                    size_t k, size_t n);
  /// s[k,n] = a[m,k]^T * g[m,n] (zero-fills s). The caller folds s into
  /// the parameter gradient, preserving the tape's staged-then-added
  /// accumulation order.
  void (*matmul_db)(const float* a, const float* g, float* s, size_t m,
                    size_t k, size_t n);

  /// out[i,:] = x[idx[i],:] for i < n_idx.
  void (*gather_rows)(const float* x, const uint32_t* idx, size_t n_idx,
                      size_t cols, float* out);
  /// ag[idx[i],:] += g[i,:] in index order.
  void (*gather_rows_grad)(const float* g, const uint32_t* idx, size_t n_idx,
                           size_t cols, float* ag);

  /// out = 0; out[dst[e],:] += coef[e] * x[src[e],:] in edge order.
  /// out_size = out_rows * cols.
  void (*scatter_add_rows)(const float* x, const uint32_t* src,
                           const uint32_t* dst, const float* coef,
                           size_t n_edges, size_t cols, float* out,
                           size_t out_size);
  /// ag[src[e],:] += coef[e] * g[dst[e],:] in edge order.
  void (*scatter_add_rows_grad)(const float* g, const uint32_t* src,
                                const uint32_t* dst, const float* coef,
                                size_t n_edges, size_t cols, float* ag);

  /// out = 0; out[dst[e],:] += alpha[e] * x[src[e],:] in edge order.
  void (*weighted_scatter_add_rows)(const float* alpha, const float* x,
                                    const uint32_t* src, const uint32_t* dst,
                                    size_t n_edges, size_t cols, float* out,
                                    size_t out_size);
  /// Per edge e, in order: if dalpha, dalpha[e] += dot(g[dst[e],:],
  /// x[src[e],:]) accumulated in double; if dx, dx[src[e],:] +=
  /// alpha[e] * g[dst[e],:]. Either output may be null.
  void (*weighted_scatter_add_rows_grad)(const float* alpha, const float* x,
                                         const float* g, const uint32_t* src,
                                         const uint32_t* dst, size_t n_edges,
                                         size_t cols, float* dalpha,
                                         float* dx);
};

/// The table for `isa`, clamped to `MaxSupportedIsa()` — requesting a tier
/// the CPU (or the build) lacks silently falls back to the next lower one,
/// so the returned table is always safe to execute. The returned
/// reference is to static storage and valid forever.
const Kernels& GetKernels(Isa isa);

/// Tier tables as compiled. Null when the translation unit was built
/// without the matching -m flags (non-x86 hosts). Use `GetKernels` —
/// these exist for the dispatcher and the differential test harness.
const Kernels& ScalarKernels();
const Kernels* Avx2KernelsOrNull();
const Kernels* Avx512KernelsOrNull();

}  // namespace simd
}  // namespace privim

#endif  // PRIVIM_TENSOR_KERNELS_H_
