// AVX-512 (16-lane float) kernel tier with masked remainder lanes. Built
// with -mavx512f/dq/bw/vl -mfma (see src/tensor/CMakeLists.txt); the same
// TU-hygiene rules as kernels_avx2.cc apply — internal linkage only, no
// std:: inline code, reachable only through GetKernels' CPUID clamp.
//
// Numerics: scatter/gather use masked mul-then-add in scalar edge order
// (per-element rounding identical to the scalar tier); the matmul family
// uses FMA and _mm512_reduce_add_ps/pd reductions, covered by the
// tolerance contract in tests/tensor/kernel_diff_test.cc.

#include <cstddef>
#include <cstdint>

#include "tensor/kernels.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace privim {
namespace simd {
namespace {

inline __mmask16 TailMask16(size_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

void MatMulAvx512(const float* a, const float* b, float* out, size_t m,
                  size_t k, size_t n) {
  if (n == 1) {
    for (size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      __m512 acc = _mm512_setzero_ps();
      size_t kk = 0;
      for (; kk + 16 <= k; kk += 16) {
        acc = _mm512_fmadd_ps(_mm512_loadu_ps(arow + kk),
                              _mm512_loadu_ps(b + kk), acc);
      }
      if (kk < k) {
        const __mmask16 mk = TailMask16(k - kk);
        acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mk, arow + kk),
                              _mm512_maskz_loadu_ps(mk, b + kk), acc);
      }
      out[i] = _mm512_reduce_add_ps(acc);
    }
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m512 acc = _mm512_setzero_ps();
      for (size_t kk = 0; kk < k; ++kk) {
        acc = _mm512_fmadd_ps(_mm512_set1_ps(arow[kk]),
                              _mm512_loadu_ps(b + kk * n + j), acc);
      }
      _mm512_storeu_ps(orow + j, acc);
    }
    if (j < n) {
      const __mmask16 mk = TailMask16(n - j);
      __m512 acc = _mm512_setzero_ps();
      for (size_t kk = 0; kk < k; ++kk) {
        acc = _mm512_fmadd_ps(_mm512_set1_ps(arow[kk]),
                              _mm512_maskz_loadu_ps(mk, b + kk * n + j), acc);
      }
      _mm512_mask_storeu_ps(orow + j, mk, acc);
    }
  }
}

void MatMulDaAvx512(const float* g, const float* b, float* ag, size_t m,
                    size_t k, size_t n) {
  if (n == 1) {
    for (size_t i = 0; i < m; ++i) {
      const __m512 gv = _mm512_set1_ps(g[i]);
      float* arow = ag + i * k;
      size_t j = 0;
      for (; j + 16 <= k; j += 16) {
        const __m512 prod = _mm512_mul_ps(gv, _mm512_loadu_ps(b + j));
        _mm512_storeu_ps(arow + j,
                         _mm512_add_ps(_mm512_loadu_ps(arow + j), prod));
      }
      if (j < k) {
        const __mmask16 mk = TailMask16(k - j);
        const __m512 prod =
            _mm512_mul_ps(gv, _mm512_maskz_loadu_ps(mk, b + j));
        _mm512_mask_storeu_ps(
            arow + j, mk,
            _mm512_add_ps(_mm512_maskz_loadu_ps(mk, arow + j), prod));
      }
    }
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    const float* grow = g + i * n;
    for (size_t j = 0; j < k; ++j) {
      const float* brow = b + j * n;
      __m512 acc = _mm512_setzero_ps();
      size_t c = 0;
      for (; c + 16 <= n; c += 16) {
        acc = _mm512_fmadd_ps(_mm512_loadu_ps(grow + c),
                              _mm512_loadu_ps(brow + c), acc);
      }
      if (c < n) {
        const __mmask16 mk = TailMask16(n - c);
        acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mk, grow + c),
                              _mm512_maskz_loadu_ps(mk, brow + c), acc);
      }
      ag[i * k + j] += _mm512_reduce_add_ps(acc);
    }
  }
}

void MatMulDbAvx512(const float* a, const float* g, float* s, size_t m,
                    size_t k, size_t n) {
  for (size_t i = 0; i < k * n; ++i) s[i] = 0.0f;
  if (n == 1) {
    for (size_t r = 0; r < m; ++r) {
      const __m512 gv = _mm512_set1_ps(g[r]);
      const float* arow = a + r * k;
      size_t i = 0;
      for (; i + 16 <= k; i += 16) {
        const __m512 prod = _mm512_mul_ps(gv, _mm512_loadu_ps(arow + i));
        _mm512_storeu_ps(s + i, _mm512_add_ps(_mm512_loadu_ps(s + i), prod));
      }
      if (i < k) {
        const __mmask16 mk = TailMask16(k - i);
        const __m512 prod =
            _mm512_mul_ps(gv, _mm512_maskz_loadu_ps(mk, arow + i));
        _mm512_mask_storeu_ps(
            s + i, mk, _mm512_add_ps(_mm512_maskz_loadu_ps(mk, s + i), prod));
      }
    }
    return;
  }
  for (size_t r = 0; r < m; ++r) {
    const float* arow = a + r * k;
    const float* grow = g + r * n;
    for (size_t i = 0; i < k; ++i) {
      const float ari = arow[i];
      if (ari == 0.0f) continue;
      float* srow = s + i * n;
      const __m512 av = _mm512_set1_ps(ari);
      size_t j = 0;
      for (; j + 16 <= n; j += 16) {
        _mm512_storeu_ps(srow + j,
                         _mm512_fmadd_ps(av, _mm512_loadu_ps(grow + j),
                                         _mm512_loadu_ps(srow + j)));
      }
      if (j < n) {
        const __mmask16 mk = TailMask16(n - j);
        _mm512_mask_storeu_ps(
            srow + j, mk,
            _mm512_fmadd_ps(av, _mm512_maskz_loadu_ps(mk, grow + j),
                            _mm512_maskz_loadu_ps(mk, srow + j)));
      }
    }
  }
}

void GatherRowsAvx512(const float* x, const uint32_t* idx, size_t n_idx,
                      size_t cols, float* out) {
  for (size_t i = 0; i < n_idx; ++i) {
    const float* src = x + idx[i] * cols;
    float* dst = out + i * cols;
    size_t c = 0;
    for (; c + 16 <= cols; c += 16) {
      _mm512_storeu_ps(dst + c, _mm512_loadu_ps(src + c));
    }
    if (c < cols) {
      const __mmask16 mk = TailMask16(cols - c);
      _mm512_mask_storeu_ps(dst + c, mk, _mm512_maskz_loadu_ps(mk, src + c));
    }
  }
}

void GatherRowsGradAvx512(const float* g, const uint32_t* idx, size_t n_idx,
                          size_t cols, float* ag) {
  for (size_t i = 0; i < n_idx; ++i) {
    const float* grow = g + i * cols;
    float* arow = ag + idx[i] * cols;
    size_t c = 0;
    for (; c + 16 <= cols; c += 16) {
      _mm512_storeu_ps(arow + c, _mm512_add_ps(_mm512_loadu_ps(arow + c),
                                               _mm512_loadu_ps(grow + c)));
    }
    if (c < cols) {
      const __mmask16 mk = TailMask16(cols - c);
      _mm512_mask_storeu_ps(
          arow + c, mk,
          _mm512_add_ps(_mm512_maskz_loadu_ps(mk, arow + c),
                        _mm512_maskz_loadu_ps(mk, grow + c)));
    }
  }
}

// dst[k] += c * src[k], explicit mul-then-add (see kernels_avx2.cc).
inline void AxpyRow(float c, const float* src, float* dst, size_t cols) {
  const __m512 cv = _mm512_set1_ps(c);
  size_t k = 0;
  for (; k + 16 <= cols; k += 16) {
    const __m512 prod = _mm512_mul_ps(cv, _mm512_loadu_ps(src + k));
    _mm512_storeu_ps(dst + k, _mm512_add_ps(_mm512_loadu_ps(dst + k), prod));
  }
  if (k < cols) {
    const __mmask16 mk = TailMask16(cols - k);
    const __m512 prod = _mm512_mul_ps(cv, _mm512_maskz_loadu_ps(mk, src + k));
    _mm512_mask_storeu_ps(
        dst + k, mk,
        _mm512_add_ps(_mm512_maskz_loadu_ps(mk, dst + k), prod));
  }
}

void ScatterAddRowsAvx512(const float* x, const uint32_t* src,
                          const uint32_t* dst, const float* coef,
                          size_t n_edges, size_t cols, float* out,
                          size_t out_size) {
  for (size_t i = 0; i < out_size; ++i) out[i] = 0.0f;
  for (size_t e = 0; e < n_edges; ++e) {
    AxpyRow(coef[e], x + src[e] * cols, out + dst[e] * cols, cols);
  }
}

void ScatterAddRowsGradAvx512(const float* g, const uint32_t* src,
                              const uint32_t* dst, const float* coef,
                              size_t n_edges, size_t cols, float* ag) {
  for (size_t e = 0; e < n_edges; ++e) {
    AxpyRow(coef[e], g + dst[e] * cols, ag + src[e] * cols, cols);
  }
}

void WeightedScatterAddRowsAvx512(const float* alpha, const float* x,
                                  const uint32_t* src, const uint32_t* dst,
                                  size_t n_edges, size_t cols, float* out,
                                  size_t out_size) {
  for (size_t i = 0; i < out_size; ++i) out[i] = 0.0f;
  for (size_t e = 0; e < n_edges; ++e) {
    AxpyRow(alpha[e], x + src[e] * cols, out + dst[e] * cols, cols);
  }
}

void WeightedScatterAddRowsGradAvx512(const float* alpha, const float* x,
                                      const float* g, const uint32_t* src,
                                      const uint32_t* dst, size_t n_edges,
                                      size_t cols, float* dalpha, float* dx) {
  for (size_t e = 0; e < n_edges; ++e) {
    const float* grow = g + dst[e] * cols;
    const float* xin = x + src[e] * cols;
    if (dalpha != nullptr) {
      __m512d acc = _mm512_setzero_pd();
      size_t k = 0;
      for (; k + 8 <= cols; k += 8) {
        const __m512d gd = _mm512_cvtps_pd(_mm256_loadu_ps(grow + k));
        const __m512d xd = _mm512_cvtps_pd(_mm256_loadu_ps(xin + k));
        acc = _mm512_add_pd(acc, _mm512_mul_pd(gd, xd));
      }
      double dot = _mm512_reduce_add_pd(acc);
      for (; k < cols; ++k) {
        dot += static_cast<double>(grow[k]) * xin[k];
      }
      dalpha[e] += static_cast<float>(dot);
    }
    if (dx != nullptr) {
      AxpyRow(alpha[e], grow, dx + src[e] * cols, cols);
    }
  }
}

}  // namespace

const Kernels* Avx512KernelsOrNull() {
  static const Kernels k = {
      Isa::kAvx512,
      &MatMulAvx512,
      &MatMulDaAvx512,
      &MatMulDbAvx512,
      &GatherRowsAvx512,
      &GatherRowsGradAvx512,
      &ScatterAddRowsAvx512,
      &ScatterAddRowsGradAvx512,
      &WeightedScatterAddRowsAvx512,
      &WeightedScatterAddRowsGradAvx512,
  };
  return &k;
}

}  // namespace simd
}  // namespace privim

#else  // !__AVX512F__

namespace privim {
namespace simd {
const Kernels* Avx512KernelsOrNull() { return nullptr; }
}  // namespace simd
}  // namespace privim

#endif
