#ifndef PRIVIM_TENSOR_OPS_H_
#define PRIVIM_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace privim {

/// Differentiable op library for the autograd `Tensor`.
///
/// All ops validate shapes with PRIVIM_CHECK (shape bugs are programmer
/// errors, not recoverable conditions). Every op returns a fresh node wired
/// into the tape; gradients flow to any parent with requires_grad.

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// Dense matrix product: [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Elementwise sum; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise difference; shapes must match.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise (Hadamard) product; shapes must match.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Adds a [1,n] bias row to every row of a [m,n] tensor.
Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias);

/// Scales every entry by the (non-differentiable) constant c.
Tensor Scale(const Tensor& x, float c);

/// Adds the (non-differentiable) constant c to every entry.
Tensor AddScalar(const Tensor& x, float c);

/// Multiplies x elementwise by the [1,1] differentiable scalar s
/// (used for GIN's learnable (1 + omega)).
Tensor ScaleByScalar(const Tensor& x, const Tensor& s);

/// Concatenates along columns: [m,a] ++ [m,b] -> [m,a+b].
Tensor ConcatCols(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Activations / elementwise nonlinearities.
// ---------------------------------------------------------------------------

Tensor Relu(const Tensor& x);
Tensor LeakyRelu(const Tensor& x, float slope = 0.2f);
Tensor SigmoidOp(const Tensor& x);
Tensor TanhOp(const Tensor& x);
Tensor ExpOp(const Tensor& x);
/// log(x + eps), elementwise.
Tensor LogOp(const Tensor& x, float eps = 1e-12f);

/// The paper's phi surrogate mapping aggregated influence mass to a
/// probability: phi(z) = 1 - exp(-max(z, 0)). Smooth, monotone, in [0, 1),
/// and an upper-bounding companion of the IC non-activation product
/// (Theorem 2; see tests/core/loss_test.cc for the bound check).
Tensor InfluenceProb(const Tensor& z);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

/// Sum of all entries -> [1,1].
Tensor Sum(const Tensor& x);

/// Mean of all entries -> [1,1].
Tensor MeanAll(const Tensor& x);

/// Row-wise sum: [m,n] -> [m,1].
Tensor RowSum(const Tensor& x);

// ---------------------------------------------------------------------------
// Graph / edge-indexed ops (message passing).
// ---------------------------------------------------------------------------

/// Gathers rows: out[i] = x[index[i]]. index values must be < x.rows().
Tensor GatherRows(const Tensor& x, const std::vector<uint32_t>& index);

/// out[dst[e]] += coef[e] * x[src[e]] for each edge e; out has
/// `num_out` rows. `coef` is a constant (non-differentiable) per-edge
/// weight vector — the workhorse for GCN/SAGE/GIN aggregation.
Tensor ScatterAddRows(const Tensor& x, const std::vector<uint32_t>& src,
                      const std::vector<uint32_t>& dst,
                      const std::vector<float>& coef, size_t num_out);

/// Like ScatterAddRows but with a differentiable [E,1] coefficient tensor
/// (attention weights): out[dst[e]] += alpha[e] * x[src[e]].
Tensor WeightedScatterAddRows(const Tensor& alpha, const Tensor& x,
                              const std::vector<uint32_t>& src,
                              const std::vector<uint32_t>& dst,
                              size_t num_out);

/// Softmax of scores [E,1] within groups: alpha[e] =
/// exp(s[e]) / sum_{e': group[e']==group[e]} exp(s[e']). Numerically
/// stabilized per group. Used for GAT (group = target) and GRAT
/// (group = source) attention normalization.
Tensor SegmentSoftmax(const Tensor& scores,
                      const std::vector<uint32_t>& group, size_t num_groups);

}  // namespace privim

#endif  // PRIVIM_TENSOR_OPS_H_
