#include "tensor/matrix.h"

#include <cmath>

namespace privim {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    PRIVIM_CHECK_EQ(rows[r].size(), m.cols());
    for (size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

void Matrix::AddInPlace(const Matrix& other) {
  PRIVIM_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaledInPlace(const Matrix& other, float scale) {
  PRIVIM_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::ScaleInPlace(float scale) {
  for (float& x : data_) x *= scale;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

Matrix MatMulValues(const Matrix& a, const Matrix& b) {
  PRIVIM_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      if (aik == 0.0f) continue;
      const float* brow = b.row(k);
      float* orow = out.row(i);
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix MatTransMulValues(const Matrix& a, const Matrix& b) {
  PRIVIM_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* orow = out.row(i);
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += aki * brow[j];
    }
  }
  return out;
}

Matrix MatMulTransValues(const Matrix& a, const Matrix& b) {
  PRIVIM_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j);
      float dot = 0.0f;
      for (size_t k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
      out(i, j) = dot;
    }
  }
  return out;
}

}  // namespace privim
