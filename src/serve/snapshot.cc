#include "serve/snapshot.h"

#include <atomic>
#include <utility>

#include "common/string_util.h"
#include "nn/features.h"
#include "nn/serialization.h"

namespace privim {

namespace {

uint64_t NextSnapshotId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromModel(
    std::unique_ptr<GnnModel> model, std::shared_ptr<const Graph> graph) {
  if (graph == nullptr) {
    return Status::InvalidArgument(
        "graph-owning ModelSnapshot::FromModel: null graph");
  }
  PRIVIM_ASSIGN_OR_RETURN(std::shared_ptr<const ModelSnapshot> snap,
                          FromModel(std::move(model), *graph));
  // The const_cast is confined to construction: the snapshot was created
  // two lines up and has no other owner yet.
  const_cast<ModelSnapshot&>(*snap).graph_ = std::move(graph);
  return snap;
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromModel(
    std::unique_ptr<GnnModel> model, const Graph& graph) {
  if (model == nullptr) {
    return Status::InvalidArgument("ModelSnapshot::FromModel: null model");
  }
  if (model->config().in_dim != kNodeFeatureDim) {
    return Status::FailedPrecondition(StrFormat(
        "model expects %zu input features but the serving layer feeds the "
        "%zu structural node features (nn/features.h); the snapshot was "
        "trained against a different feature pipeline",
        model->config().in_dim, kNodeFeatureDim));
  }
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument(
        "cannot build a snapshot against an empty graph");
  }
  if (!graph.has_in_csr()) {
    return Status::FailedPrecondition(
        "snapshot features read in-degrees; call Graph::EnsureInCsr() on "
        "graphs built without the in-CSR before installing snapshots");
  }
  // make_shared needs a public constructor; the snapshot is immutable
  // after this function, so a plain new behind a shared_ptr is fine.
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snap->id_ = NextSnapshotId();
  snap->model_ = std::move(model);
  snap->ctx_ = BuildGraphContext(graph);
  snap->features_ = BuildNodeFeatures(graph);
  snap->flat_params_.resize(snap->model_->params().num_scalars());
  snap->model_->params().FlattenParams(snap->flat_params_);
  // Rank by pre-sigmoid logits, mirroring RunMethod's inference: identical
  // ordering to the probabilities but immune to float32 sigmoid
  // saturation at the top of the ranking.
  // Serving is inference-only, so the logits plan takes the optimized
  // (fused + SIMD) compile: still a deterministic pure function of
  // (snapshot, graph, request) — every worker runs the same kernels — just
  // not bit-identical to the tape (docs/performance.md tolerance
  // contract). PRIVIM_FORCE_ISA=scalar restores the reference kernels.
  PlanBuilder pb;
  const PlanValId x =
      pb.Input(snap->ctx_.num_nodes, snap->model_->config().in_dim);
  snap->logits_plan_ = pb.Build(snap->model_->LowerLogits(pb, snap->ctx_, x),
                                PlanOptions::Native());
  return std::shared_ptr<const ModelSnapshot>(std::move(snap));
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::Load(
    const std::string& path, const Graph& graph) {
  PRIVIM_ASSIGN_OR_RETURN(std::unique_ptr<GnnModel> model, LoadModel(path));
  return FromModel(std::move(model), graph);
}

}  // namespace privim
