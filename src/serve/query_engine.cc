#include "serve/query_engine.h"

#include <algorithm>

#include "common/rng.h"
#include "im/diffusion.h"

namespace privim {

QueryEngine::QueryEngine() { workspaces_.EnsureSlots(1); }

Status QueryEngine::Execute(const Graph& graph,
                            const ModelSnapshot* snapshot,
                            const RrSketch* sketch,
                            const QueryRequest& request,
                            QueryResponse& response) {
  response.Clear();
  response.type = request.type;
  PRIVIM_RETURN_NOT_OK(ValidateRequest(request, graph.num_nodes()));
  switch (request.type) {
    case QueryType::kTopK:
      if (snapshot == nullptr) {
        return Status::FailedPrecondition(
            "topk query needs a model snapshot; load one with "
            "Server::LoadSnapshot before serving");
      }
      if (snapshot->num_nodes() != graph.num_nodes()) {
        return Status::FailedPrecondition(
            "snapshot was compiled against a different graph");
      }
      return ExecuteTopK(graph, *snapshot, sketch, request, response);
    case QueryType::kSpread:
      return ExecuteSpread(graph, sketch, request, response);
    case QueryType::kMarginalGain:
      return ExecuteMarginalGain(graph, sketch, request, response);
  }
  return Status::Internal("unhandled query type");
}

Status QueryEngine::ExecuteTopK(const Graph& graph,
                                const ModelSnapshot& snapshot,
                                const RrSketch* sketch,
                                const QueryRequest& request,
                                QueryResponse& response) {
  response.snapshot_id = snapshot.id();
  // Inference through the snapshot's compiled plan: allocation-free once
  // this engine's arena has reached the plan's high-water mark.
  snapshot.logits_plan().Forward(snapshot.flat_params(),
                                 snapshot.features(), arena_);
  const std::span<const float> logits =
      snapshot.logits_plan().Output(arena_);

  rank_.clear();
  if (request.candidates.empty()) {
    for (uint32_t u = 0; u < graph.num_nodes(); ++u) {
      rank_.emplace_back(logits[u], u);
    }
  } else {
    for (NodeId c : request.candidates) {
      rank_.emplace_back(logits[c], c);
    }
  }
  const size_t k = std::min(request.k, rank_.size());
  // Deterministic ranking: logit descending, node id ascending on ties —
  // the response is a pure function of (snapshot, candidate set).
  const auto better = [](const std::pair<float, uint32_t>& a,
                         const std::pair<float, uint32_t>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  std::partial_sort(rank_.begin(), rank_.begin() + k, rank_.end(), better);
  for (size_t i = 0; i < k; ++i) {
    response.seeds.push_back(rank_[i].second);
    response.values.push_back(static_cast<double>(rank_[i].first));
  }
  PRIVIM_ASSIGN_OR_RETURN(
      response.spread,
      EstimateSpreadFor(graph, response.seeds, sketch, request,
                        /*stream_offset=*/0));
  return Status::OK();
}

Status QueryEngine::ExecuteSpread(const Graph& graph, const RrSketch* sketch,
                                  const QueryRequest& request,
                                  QueryResponse& response) {
  PRIVIM_ASSIGN_OR_RETURN(
      response.spread,
      EstimateSpreadFor(graph, request.seeds, sketch, request,
                        /*stream_offset=*/0));
  return Status::OK();
}

Status QueryEngine::ExecuteMarginalGain(const Graph& graph,
                                        const RrSketch* sketch,
                                        const QueryRequest& request,
                                        QueryResponse& response) {
  PRIVIM_ASSIGN_OR_RETURN(
      const double base,
      EstimateSpreadFor(graph, request.seeds, sketch, request,
                        /*stream_offset=*/0));
  seed_buf_.clear();
  seed_buf_.insert(seed_buf_.end(), request.seeds.begin(),
                   request.seeds.end());
  for (size_t i = 0; i < request.candidates.size(); ++i) {
    seed_buf_.push_back(request.candidates[i]);
    // Candidate i draws trial streams [(i+1)*trials, (i+2)*trials) of
    // request.seed, disjoint from the base estimate's [0, trials) — the
    // gains are independent of candidate order and worker identity.
    PRIVIM_ASSIGN_OR_RETURN(
        const double with_candidate,
        EstimateSpreadFor(graph, seed_buf_, sketch, request,
                          (i + 1) * request.trials));
    response.values.push_back(with_candidate - base);
    seed_buf_.pop_back();
  }
  response.spread = base;
  return Status::OK();
}

Result<double> QueryEngine::EstimateSpreadFor(const Graph& graph,
                                              std::span<const NodeId> seeds,
                                              const RrSketch* sketch,
                                              const QueryRequest& request,
                                              uint64_t stream_offset) {
  Workspace& ws = workspaces_.Acquire(0);
  // The Graph-overload diffusion entry points delegate through GraphView
  // (im/diffusion.h), so these reads cannot bypass a graph overlay.
  switch (request.estimator) {
    case SpreadEstimator::kExact:
      return static_cast<double>(
          ExactUnitWeightSpread(graph, seeds, request.max_steps, ws));
    case SpreadEstimator::kMonteCarloIc: {
      double total = 0.0;
      for (size_t t = 0; t < request.trials; ++t) {
        Rng trial_rng =
            Rng::FromStreamKey(request.seed, stream_offset + t);
        total += static_cast<double>(SimulateIcCascade(
            graph, seeds, trial_rng, request.max_steps, ws));
      }
      return total / static_cast<double>(request.trials);
    }
    case SpreadEstimator::kRrSketch:
      if (sketch == nullptr) {
        return Status::FailedPrecondition(
            "request selects the sketch estimator but the server holds no "
            "resident RR sketch; set ServeConfig::rr_sketch_sets > 0");
      }
      return sketch->EstimateSpread(seeds, sketch_covered_);
  }
  return Status::Internal("unhandled spread estimator");
}

}  // namespace privim
