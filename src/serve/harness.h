#ifndef PRIVIM_SERVE_HARNESS_H_
#define PRIVIM_SERVE_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/request.h"
#include "serve/server.h"

namespace privim {

/// A named request mix: the templates one closed-loop client cycles
/// through. Clients walk the mix round-robin (client c starts at
/// template c % size so a multi-client run interleaves types) and stamp
/// each issued request with a counter-derived seed, keeping replays
/// deterministic per (mix, client count, base seed).
struct RequestMix {
  std::string name;
  std::vector<QueryRequest> templates;
};

/// Closed-loop load shape: each of `num_clients` threads keeps exactly one
/// request outstanding — the next is issued only when the previous
/// response lands. Offered load therefore adapts to service capacity,
/// which is the right harness for measuring server latency under
/// saturation without coordinated-omission artifacts.
struct LoadConfig {
  size_t num_clients = 1;
  /// Requests per client; total = num_clients * requests_per_client.
  size_t requests_per_client = 100;
  /// Base seed for the per-request seed derivation.
  uint64_t base_seed = 42;
  /// Warmup requests per client, issued and timed but excluded from the
  /// report (first-touch allocations and cache fill land here).
  size_t warmup_per_client = 4;
};

/// One load run's report. Latencies are end-to-end Query() wall times in
/// seconds, quantiles computed over the merged post-warmup sample.
struct LoadReport {
  size_t completed = 0;
  /// ResourceExhausted admissions; the client retries, so every request
  /// eventually completes — this counts backpressure events, not losses.
  size_t rejected = 0;
  /// Queries that returned a non-OK terminal status (excludes retried
  /// rejections).
  size_t failed = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_mean = 0.0;
};

/// Drives `server` (which must be Start()ed) with `config.num_clients`
/// closed-loop client threads issuing `mix` and returns the merged report.
/// Responses are checksummed as they arrive so the measured path includes
/// reading the answer.
Result<LoadReport> RunClosedLoopLoad(Server& server, const RequestMix& mix,
                                     const LoadConfig& config);

/// Standard request mixes over an `num_nodes`-node graph, used by
/// bench_serve and the privim_serve driver so published numbers and ad-hoc
/// runs measure the same shapes:
///  - "seed-selection": top-k queries (k 10/25/50) with exact 1-hop
///    spread scoring — the model-inference-heavy shape.
///  - "spread-analytics": spread + marginal-gain queries under the MC
///    estimator — the diffusion-heavy shape.
///  - "mixed": both of the above interleaved.
/// Mixes derive their node sets from `seed`, so a given (num_nodes, seed)
/// pair always produces identical request streams.
std::vector<RequestMix> StandardMixes(size_t num_nodes, uint64_t seed);

}  // namespace privim

#endif  // PRIVIM_SERVE_HARNESS_H_
