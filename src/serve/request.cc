#include "serve/request.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace privim {

namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

std::string QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kTopK:
      return "topk";
    case QueryType::kSpread:
      return "spread";
    case QueryType::kMarginalGain:
      return "marginal";
  }
  return "unknown";
}

Result<QueryType> ParseQueryType(const std::string& name) {
  const std::string n = Lower(Trim(name));
  if (n == "topk" || n == "top-k") return QueryType::kTopK;
  if (n == "spread") return QueryType::kSpread;
  if (n == "marginal" || n == "marginal-gain" || n == "coverage") {
    return QueryType::kMarginalGain;
  }
  return Status::InvalidArgument(
      StrFormat("unknown query type '%s' (want topk, spread, or marginal)",
                name.c_str()));
}

std::string SpreadEstimatorName(SpreadEstimator estimator) {
  switch (estimator) {
    case SpreadEstimator::kExact:
      return "exact";
    case SpreadEstimator::kMonteCarloIc:
      return "mc";
    case SpreadEstimator::kRrSketch:
      return "sketch";
  }
  return "unknown";
}

Result<SpreadEstimator> ParseSpreadEstimator(const std::string& name) {
  const std::string n = Lower(Trim(name));
  if (n == "exact") return SpreadEstimator::kExact;
  if (n == "mc" || n == "montecarlo" || n == "monte-carlo") {
    return SpreadEstimator::kMonteCarloIc;
  }
  if (n == "sketch" || n == "rr" || n == "rr-sketch") {
    return SpreadEstimator::kRrSketch;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown spread estimator '%s' (want exact, mc, or sketch)",
      name.c_str()));
}

Status ValidateRequest(const QueryRequest& request, size_t num_nodes) {
  for (NodeId s : request.seeds) {
    if (s >= num_nodes) {
      return Status::InvalidArgument(StrFormat(
          "request.seeds contains node %u, graph has %zu nodes",
          static_cast<unsigned>(s), num_nodes));
    }
  }
  for (NodeId c : request.candidates) {
    if (c >= num_nodes) {
      return Status::InvalidArgument(StrFormat(
          "request.candidates contains node %u, graph has %zu nodes",
          static_cast<unsigned>(c), num_nodes));
    }
  }
  if (request.type == QueryType::kTopK && request.k == 0) {
    return Status::InvalidArgument("request.k must be >= 1 for topk");
  }
  // Every query type reports a spread under the request's estimator
  // (topk scores its selected set), so the estimator fields are always
  // validated.
  if (request.estimator == SpreadEstimator::kMonteCarloIc &&
      request.trials == 0) {
    return Status::InvalidArgument(
        "request.trials must be >= 1 for the mc estimator");
  }
  if (request.estimator == SpreadEstimator::kExact &&
      request.max_steps < 0) {
    return Status::InvalidArgument(
        "request.max_steps must be >= 0 for the exact estimator");
  }
  return Status::OK();
}

}  // namespace privim
