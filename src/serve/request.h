#ifndef PRIVIM_SERVE_REQUEST_H_
#define PRIVIM_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace privim {

/// Query vocabulary of the online serving layer (src/serve/, see
/// docs/serving.md).
///
/// All three query types are *post-processing* of the DP-trained model and
/// the public evaluation graph: answering them consumes no additional
/// privacy budget, however many queries are served (the decoupled-design
/// argument — once the mechanism's output is fixed, inference is free).
enum class QueryType {
  /// Top-k seed selection: rank candidates by the model's seed logits and
  /// return the k best (ties broken by ascending node id, so the answer is
  /// a pure function of the snapshot).
  kTopK,
  /// Influence-spread estimate for a caller-supplied seed set.
  kSpread,
  /// Coverage / marginal-gain: for each candidate c, the spread gain of
  /// adding c to the base seed set, spread(S ∪ {c}) - spread(S).
  kMarginalGain,
};

std::string QueryTypeName(QueryType type);
Result<QueryType> ParseQueryType(const std::string& name);

/// Spread estimator backing kSpread / kMarginalGain queries.
enum class SpreadEstimator {
  /// Exact unit-weight j-step closure (the paper's evaluation setting).
  kExact,
  /// Monte-Carlo IC cascades; `trials` per estimate, streams derived from
  /// the request seed, so the estimate is deterministic per (request.seed).
  kMonteCarloIc,
  /// Resident RR sketch shared by all workers (Server::BuildSketch);
  /// deterministic per (sketch, seed set).
  kRrSketch,
};

std::string SpreadEstimatorName(SpreadEstimator estimator);
Result<SpreadEstimator> ParseSpreadEstimator(const std::string& name);

/// One influence query. Plain data: the caller owns the request for the
/// duration of the query (the queue stores pointers, not copies).
struct QueryRequest {
  QueryType type = QueryType::kTopK;

  /// kTopK: seed budget.
  size_t k = 50;
  /// kTopK: candidate restriction (empty = all nodes of the resident
  /// graph). kMarginalGain: the candidates to score.
  std::vector<NodeId> candidates;
  /// kSpread / kMarginalGain: the base seed set.
  std::vector<NodeId> seeds;

  SpreadEstimator estimator = SpreadEstimator::kExact;
  /// Monte-Carlo trials (kMonteCarloIc only).
  size_t trials = 64;
  /// Diffusion truncation: rounds for exact/MC estimates (< 0 = run to
  /// quiescence for MC; exact requires >= 0). The paper evaluates j = 1.
  int max_steps = 1;
  /// RNG base key for kMonteCarloIc — same seed, same estimate, on any
  /// worker thread.
  uint64_t seed = 0;
};

/// Answer to one query. Reused across queries by the closed-loop harness:
/// Execute() clears and refills the vectors, so a warm response at steady
/// capacity costs no allocation.
struct QueryResponse {
  QueryType type = QueryType::kTopK;
  /// Identity of the ModelSnapshot that answered (0 = no snapshot was
  /// involved, i.e. pure spread queries). Every response is attributable
  /// to exactly one snapshot — the hot-swap torture test's invariant.
  uint64_t snapshot_id = 0;
  /// kTopK: the selected seeds, best first.
  std::vector<NodeId> seeds;
  /// kTopK: logits aligned with `seeds`. kMarginalGain: per-candidate
  /// gains aligned with request.candidates.
  std::vector<double> values;
  /// kSpread: the estimate. kTopK/kMarginalGain: spread of the returned /
  /// base seed set under the request's estimator.
  double spread = 0.0;

  void Clear() {
    snapshot_id = 0;
    seeds.clear();
    values.clear();
    spread = 0.0;
  }
};

/// Validates a request against a resident graph with `num_nodes` nodes:
/// node ids in range, k >= 1, trials >= 1 for MC, max_steps >= 0 for the
/// exact estimator. Returns InvalidArgument with a field-path message.
Status ValidateRequest(const QueryRequest& request, size_t num_nodes);

}  // namespace privim

#endif  // PRIVIM_SERVE_REQUEST_H_
