#include "serve/harness.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace privim {

namespace {

/// Quantile over a sorted sample via the nearest-rank method.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace

Result<LoadReport> RunClosedLoopLoad(Server& server, const RequestMix& mix,
                                     const LoadConfig& config) {
  if (mix.templates.empty()) {
    return Status::InvalidArgument(
        StrFormat("request mix '%s' has no templates", mix.name.c_str()));
  }
  if (config.num_clients == 0) {
    return Status::InvalidArgument("LoadConfig::num_clients must be >= 1");
  }

  std::atomic<size_t> rejected{0};
  std::atomic<size_t> failed{0};
  std::atomic<size_t> completed{0};
  std::vector<std::vector<double>> latencies(config.num_clients);

  WallTimer run_timer;
  std::vector<std::thread> clients;
  clients.reserve(config.num_clients);
  for (size_t c = 0; c < config.num_clients; ++c) {
    clients.emplace_back([&, c] {
      // Private copies of the templates: the client mutates only the seed
      // field between issues, so the per-request cost is the query, not
      // request construction.
      std::vector<QueryRequest> reqs = mix.templates;
      QueryResponse response;
      std::vector<double>& lat = latencies[c];
      lat.reserve(config.requests_per_client);
      const size_t total =
          config.warmup_per_client + config.requests_per_client;
      // Consumed but never read; keeps response reads in the timed path.
      double sink = 0.0;
      for (size_t i = 0; i < total; ++i) {
        QueryRequest& req = reqs[(c + i) % reqs.size()];
        req.seed = config.base_seed ^
                   ((c * total + i + 1) * 0x9e3779b97f4a7c15ULL);
        WallTimer timer;
        Status status;
        while (true) {
          status = server.Query(req, response);
          if (status.code() != StatusCode::kResourceExhausted) break;
          // Backpressure: the queue is full. Closed-loop clients retry —
          // the rejection count reports how often admission pushed back.
          rejected.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
        const double seconds = timer.ElapsedSeconds();
        if (status.ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
          sink += response.spread;
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        if (i >= config.warmup_per_client) lat.push_back(seconds);
      }
      if (sink == -1.0) std::abort();  // Defeats dead-read elimination.
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall = run_timer.ElapsedSeconds();

  std::vector<double> merged;
  merged.reserve(config.num_clients * config.requests_per_client);
  for (const std::vector<double>& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  std::sort(merged.begin(), merged.end());

  LoadReport report;
  report.completed = completed.load();
  report.rejected = rejected.load();
  report.failed = failed.load();
  report.wall_seconds = wall;
  report.qps = wall > 0.0 ? static_cast<double>(report.completed) / wall : 0.0;
  report.latency_p50 = SortedQuantile(merged, 0.50);
  report.latency_p95 = SortedQuantile(merged, 0.95);
  report.latency_p99 = SortedQuantile(merged, 0.99);
  if (!merged.empty()) {
    double sum = 0.0;
    for (double v : merged) sum += v;
    report.latency_mean = sum / static_cast<double>(merged.size());
  }
  return report;
}

std::vector<RequestMix> StandardMixes(size_t num_nodes, uint64_t seed) {
  Rng rng(seed);
  const auto pick_nodes = [&](size_t k) {
    std::vector<NodeId> nodes;
    nodes.reserve(k);
    for (size_t i = 0; i < k && i < num_nodes; ++i) {
      nodes.push_back(static_cast<NodeId>(rng.UniformInt(num_nodes)));
    }
    return nodes;
  };

  RequestMix seed_selection;
  seed_selection.name = "seed-selection";
  for (size_t k : {10, 25, 50}) {
    QueryRequest req;
    req.type = QueryType::kTopK;
    req.k = std::min(k, num_nodes);
    req.estimator = SpreadEstimator::kExact;
    req.max_steps = 1;
    seed_selection.templates.push_back(std::move(req));
  }

  RequestMix analytics;
  analytics.name = "spread-analytics";
  {
    QueryRequest req;
    req.type = QueryType::kSpread;
    req.seeds = pick_nodes(10);
    req.estimator = SpreadEstimator::kMonteCarloIc;
    req.trials = 32;
    req.max_steps = 1;
    analytics.templates.push_back(std::move(req));
  }
  {
    QueryRequest req;
    req.type = QueryType::kMarginalGain;
    req.seeds = pick_nodes(5);
    req.candidates = pick_nodes(8);
    req.estimator = SpreadEstimator::kMonteCarloIc;
    req.trials = 16;
    req.max_steps = 1;
    analytics.templates.push_back(std::move(req));
  }

  RequestMix mixed;
  mixed.name = "mixed";
  mixed.templates = seed_selection.templates;
  mixed.templates.insert(mixed.templates.end(),
                         analytics.templates.begin(),
                         analytics.templates.end());

  return {std::move(seed_selection), std::move(analytics),
          std::move(mixed)};
}

}  // namespace privim
