#ifndef PRIVIM_SERVE_SERVER_H_
#define PRIVIM_SERVE_SERVER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "im/rr_sets.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "serve/query_engine.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/snapshot.h"

namespace privim {

/// Tuning knobs of one Server instance (docs/serving.md).
struct ServeConfig {
  /// Worker threads executing queries. 0 defers to the global runtime
  /// default (PRIVIM_THREADS, else 1) exactly like RuntimeOptions.
  size_t num_threads = 0;
  /// Admission bound of the request queue; pushes beyond it are rejected
  /// with ResourceExhausted (never queued unboundedly).
  size_t queue_capacity = 1024;
  /// Maximum queries one worker claims per queue round-trip. Batching
  /// amortizes the queue lock and the snapshot acquisition: one batch,
  /// one atomic snapshot reference, so all its queries answer from the
  /// same model version.
  size_t max_batch = 8;
  /// Resident RR-sketch size for the kRrSketch estimator; 0 disables the
  /// sketch (requests selecting it then fail with FailedPrecondition).
  size_t rr_sketch_sets = 0;
  /// Seed for the resident sketch's generation.
  uint64_t rr_sketch_seed = 0x5e7;
  /// Optional run telemetry; instruments are registered once at
  /// construction and recorded lock-free while serving (per-query-type
  /// latency histograms, queue-depth gauge, scratch-reuse counters).
  MetricsRegistry* metrics = nullptr;
};

/// Long-running influence-query server over one resident graph.
///
/// Lifecycle:
///   Server server(graph, config);          // no threads yet
///   server.LoadSnapshot(path);             // or SwapSnapshot(...)
///   server.Start();                        // spawn workers, serve
///   ... Query() from any number of client threads ...
///   server.Stop();                         // drain, then join
///
/// Hot swap: the full serving state — resident graph, ModelSnapshot, and
/// resident RR sketch — lives behind one shared_ptr that LoadSnapshot /
/// SwapSnapshot / SwapGraphAndSnapshot replace atomically (readers copy
/// the pointer under a short critical section — RCU by reference
/// counting). Workers take ONE state reference per batch, so every query
/// in a batch answers from a consistent (graph, model, sketch) triple;
/// queries already executing keep their reference, so they complete on
/// the version they started with, and the retired state (including a
/// swapped-out graph) is destroyed when its last in-flight query
/// finishes. Every response records the serving snapshot's id, making the
/// swap observable and testable (no torn reads: each answer is the pure
/// function of exactly one state).
///
/// Dynamic graphs (docs/streaming.md): SwapGraphAndSnapshot publishes a
/// graph-owning snapshot, replacing graph and model TOGETHER — the
/// resident sketch is regenerated against the new graph before anything
/// becomes visible, so no batch can ever pair the new model with the old
/// topology or vice versa.
///
/// Queries may be submitted before Start(): they are admitted into the
/// bounded queue (backpressure applies) and execute once workers exist.
/// Stop() closes admissions, drains every already-admitted query, then
/// joins the workers — no query that was ever accepted goes unanswered.
class Server {
 public:
  /// Borrows `graph`, which must outlive the server.
  Server(const Graph& graph, const ServeConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads a model checkpoint (nn/serialization.h), compiles it into a
  /// snapshot against the resident graph, and publishes it. Error
  /// statuses name the offending file and hint at artifact/version
  /// mismatches. The returned id identifies the published snapshot.
  Result<uint64_t> LoadSnapshot(const std::string& path);

  /// Publishes an already-built snapshot (must target the current
  /// resident graph, which it keeps). In-flight queries finish on the
  /// previous snapshot.
  Status SwapSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Publishes a graph-owning snapshot (ModelSnapshot::FromModel with a
  /// shared graph), replacing the resident graph AND the model in one
  /// atomic swap; the resident RR sketch (when configured) is regenerated
  /// against the new graph before publication. Fails with InvalidArgument
  /// when the snapshot does not own a graph. In-flight queries finish on
  /// the previous (graph, model, sketch) triple, which stays alive until
  /// they drain.
  Status SwapGraphAndSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// The currently published snapshot (nullptr before the first load).
  std::shared_ptr<const ModelSnapshot> CurrentSnapshot() const;

  /// The graph queries are answered against right now: the construction
  /// graph until the first SwapGraphAndSnapshot, the latest swapped-in
  /// graph afterwards. The pointer stays valid as long as the caller
  /// holds it (the state machinery keeps retired graphs alive for
  /// borrowers the same way it does for in-flight queries).
  std::shared_ptr<const Graph> CurrentGraph() const;

  /// The current resident sketch (nullptr when rr_sketch_sets == 0).
  std::shared_ptr<const RrSketch> CurrentSketch() const;

  /// Spawns the worker pool and begins executing queued queries.
  /// Idempotent; fails after Stop() (servers are not restartable).
  Status Start();

  /// Closes admissions, drains every admitted query, joins the workers,
  /// and flushes scratch statistics into the metrics registry. Safe to
  /// call twice; the destructor calls it.
  void Stop();

  /// Blocking query: admits the request (ResourceExhausted when the
  /// queue is full, FailedPrecondition after Stop) and waits for the
  /// response. Callable from any thread.
  Status Query(const QueryRequest& request, QueryResponse& response);

  /// Non-blocking admission: the caller owns request/response/completion
  /// until completion->Signal fires (completion->Wait() collects the
  /// final status). The building block of Query() and of external event
  /// loops.
  Status SubmitAsync(const QueryRequest* request, QueryResponse* response,
                     QueryCompletion* completion);

  size_t num_threads() const { return num_threads_; }
  size_t queue_depth() const { return queue_.size(); }

 private:
  struct ServeMetrics;

  /// One consistent serving version: the graph, the model compiled
  /// against it, and the sketch generated from it. Immutable once
  /// published; swapped as a unit.
  struct ServingState {
    std::shared_ptr<const Graph> graph;
    std::shared_ptr<const ModelSnapshot> snapshot;
    std::shared_ptr<const RrSketch> sketch;
  };

  std::shared_ptr<const ServingState> CurrentState() const;
  void Publish(std::shared_ptr<const ServingState> next);
  /// Builds the resident sketch for `graph` per config_ (null when
  /// disabled or the graph is empty).
  Result<std::shared_ptr<const RrSketch>> BuildSketch(
      const Graph& graph) const;

  void WorkerLoop(size_t slot);
  void FlushWorkspaceStats();

  const Graph& graph_;
  ServeConfig config_;
  size_t num_threads_;
  RequestQueue queue_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;

  mutable std::mutex state_mu_;
  std::shared_ptr<const ServingState> state_;

  std::unique_ptr<ThreadPool> pool_;
  bool started_ = false;
  bool stopped_ = false;

  std::unique_ptr<ServeMetrics> m_;
};

}  // namespace privim

#endif  // PRIVIM_SERVE_SERVER_H_
