#include "serve/server.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "runtime/runtime.h"

namespace privim {

/// Instrument pointers, registered once at construction so the serving
/// hot path records through stable pointers without touching the
/// registry mutex (the obs-layer contract). All null when telemetry is
/// off.
struct Server::ServeMetrics {
  Counter* accepted = nullptr;
  Counter* rejected = nullptr;
  Counter* completed = nullptr;
  Counter* failed = nullptr;
  Counter* batches = nullptr;
  Counter* snapshot_swaps = nullptr;
  Counter* graph_swaps = nullptr;
  Gauge* queue_depth = nullptr;
  Histogram* batch_size = nullptr;
  /// End-to-end (queue wait + service) latency per query type, seconds.
  Histogram* latency_topk = nullptr;
  Histogram* latency_spread = nullptr;
  Histogram* latency_marginal = nullptr;

  explicit ServeMetrics(MetricsRegistry& reg, size_t max_batch) {
    accepted = reg.GetCounter("serve.requests.accepted");
    rejected = reg.GetCounter("serve.requests.rejected");
    completed = reg.GetCounter("serve.requests.completed");
    failed = reg.GetCounter("serve.requests.failed");
    batches = reg.GetCounter("serve.batches");
    snapshot_swaps = reg.GetCounter("serve.snapshot_swaps");
    graph_swaps = reg.GetCounter("serve.graph_swaps");
    queue_depth = reg.GetGauge("serve.queue_depth");
    batch_size =
        reg.GetHistogram("serve.batch_size",
                         LinearBuckets(1.0, std::max<size_t>(max_batch, 1)));
    // 1 us .. ~8 s, doubling: covers a cache-warm exact query through a
    // deep Monte-Carlo scan on a 100k-node graph.
    const std::vector<double> lat = ExponentialBuckets(1e-6, 2.0, 24);
    latency_topk = reg.GetHistogram("serve.latency.topk", lat);
    latency_spread = reg.GetHistogram("serve.latency.spread", lat);
    latency_marginal = reg.GetHistogram("serve.latency.marginal", lat);
  }

  Histogram* LatencyFor(QueryType type) {
    switch (type) {
      case QueryType::kTopK:
        return latency_topk;
      case QueryType::kSpread:
        return latency_spread;
      case QueryType::kMarginalGain:
        return latency_marginal;
    }
    return nullptr;
  }
};

Server::Server(const Graph& graph, const ServeConfig& config)
    : graph_(graph),
      config_(config),
      num_threads_(ResolveNumThreads(config.num_threads)),
      queue_(std::max<size_t>(config.queue_capacity, 1)) {
  engines_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    engines_.push_back(std::make_unique<QueryEngine>());
  }
  auto initial = std::make_shared<ServingState>();
  // Aliasing non-owning pointer: the construction graph is borrowed (the
  // caller keeps it alive per the constructor contract); graphs swapped
  // in later arrive owned by their snapshot.
  initial->graph = std::shared_ptr<const Graph>(
      std::shared_ptr<const void>(), &graph_);
  Result<std::shared_ptr<const RrSketch>> sketch = BuildSketch(graph_);
  PRIVIM_CHECK(sketch.ok()) << "resident RR sketch generation failed: "
                            << sketch.status().ToString();
  initial->sketch = std::move(sketch).ValueOrDie();
  state_ = std::move(initial);
  if (config_.metrics != nullptr) {
    m_ = std::make_unique<ServeMetrics>(*config_.metrics, config_.max_batch);
  }
}

Server::~Server() { Stop(); }

Result<std::shared_ptr<const RrSketch>> Server::BuildSketch(
    const Graph& graph) const {
  if (config_.rr_sketch_sets == 0 || graph.num_nodes() == 0) {
    return std::shared_ptr<const RrSketch>();
  }
  Rng sketch_rng(config_.rr_sketch_seed);
  PRIVIM_ASSIGN_OR_RETURN(
      RrSketch sketch,
      RrSketch::Generate(graph, config_.rr_sketch_sets, sketch_rng,
                         num_threads_));
  return std::make_shared<const RrSketch>(std::move(sketch));
}

Result<uint64_t> Server::LoadSnapshot(const std::string& path) {
  PRIVIM_ASSIGN_OR_RETURN(std::shared_ptr<const ModelSnapshot> snap,
                          ModelSnapshot::Load(path, *CurrentState()->graph));
  const uint64_t id = snap->id();
  PRIVIM_RETURN_NOT_OK(SwapSnapshot(std::move(snap)));
  return id;
}

Status Server::SwapSnapshot(std::shared_ptr<const ModelSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  const std::shared_ptr<const ServingState> current = CurrentState();
  if (snapshot->num_nodes() != current->graph->num_nodes()) {
    return Status::FailedPrecondition(StrFormat(
        "snapshot was compiled against a %zu-node graph, the resident "
        "graph has %zu nodes",
        snapshot->num_nodes(), current->graph->num_nodes()));
  }
  auto next = std::make_shared<ServingState>(*current);
  next->snapshot = std::move(snapshot);
  Publish(std::move(next));
  if (m_ != nullptr) m_->snapshot_swaps->Add(1);
  return Status::OK();
}

Status Server::SwapGraphAndSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  std::shared_ptr<const Graph> graph = snapshot->owned_graph();
  if (graph == nullptr) {
    return Status::InvalidArgument(
        "SwapGraphAndSnapshot needs a graph-owning snapshot; build it with "
        "the shared_ptr<const Graph> FromModel overload");
  }
  // Regenerate the resident sketch against the NEW graph before anything
  // is published — a batch can never pair the new model with the old
  // topology (or an old sketch).
  PRIVIM_ASSIGN_OR_RETURN(std::shared_ptr<const RrSketch> sketch,
                          BuildSketch(*graph));
  auto next = std::make_shared<ServingState>();
  next->graph = std::move(graph);
  next->snapshot = std::move(snapshot);
  next->sketch = std::move(sketch);
  Publish(std::move(next));
  if (m_ != nullptr) {
    m_->snapshot_swaps->Add(1);
    m_->graph_swaps->Add(1);
  }
  return Status::OK();
}

std::shared_ptr<const Server::ServingState> Server::CurrentState() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

void Server::Publish(std::shared_ptr<const ServingState> next) {
  std::lock_guard<std::mutex> lock(state_mu_);
  state_ = std::move(next);
}

std::shared_ptr<const ModelSnapshot> Server::CurrentSnapshot() const {
  return CurrentState()->snapshot;
}

std::shared_ptr<const Graph> Server::CurrentGraph() const {
  return CurrentState()->graph;
}

std::shared_ptr<const RrSketch> Server::CurrentSketch() const {
  return CurrentState()->sketch;
}

Status Server::Start() {
  if (stopped_) {
    return Status::FailedPrecondition(
        "server already stopped; build a new Server to serve again");
  }
  if (started_) return Status::OK();
  started_ = true;
  pool_ = std::make_unique<ThreadPool>(num_threads_);
  // One long-lived pump task per worker. Pumps block on the request
  // queue's condition variable (an external producer), never on another
  // pool task, so the pool's FIFO contract is respected.
  for (size_t slot = 0; slot < num_threads_; ++slot) {
    pool_->Submit([this, slot] { WorkerLoop(slot); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Order matters: closing the queue wakes the pumps, which drain every
  // admitted ticket and then exit; only then can the pool join. Closing
  // after joining would deadlock, discarding tickets would break the
  // every-admitted-query-is-answered contract.
  queue_.Close();
  if (started_) {
    pool_.reset();  // Joins the workers.
    started_ = false;
  } else {
    // Never started: answer whatever was admitted on this thread so no
    // submitter blocks forever.
    WorkerLoop(0);
  }
  FlushWorkspaceStats();
}

Status Server::Query(const QueryRequest& request, QueryResponse& response) {
  QueryCompletion completion;
  PRIVIM_RETURN_NOT_OK(SubmitAsync(&request, &response, &completion));
  return completion.Wait();
}

Status Server::SubmitAsync(const QueryRequest* request,
                           QueryResponse* response,
                           QueryCompletion* completion) {
  PRIVIM_CHECK(request != nullptr && response != nullptr &&
               completion != nullptr);
  QueryTicket ticket;
  ticket.request = request;
  ticket.response = response;
  ticket.completion = completion;
  ticket.enqueue_time = std::chrono::steady_clock::now();
  const Status admitted = queue_.Push(ticket);
  if (m_ != nullptr) {
    if (admitted.ok()) {
      m_->accepted->Add(1);
      m_->queue_depth->Set(static_cast<double>(queue_.size()));
    } else if (admitted.code() == StatusCode::kResourceExhausted) {
      m_->rejected->Add(1);
    }
  }
  return admitted;
}

void Server::WorkerLoop(size_t slot) {
  QueryEngine& engine = *engines_[slot];
  std::vector<QueryTicket> batch;
  batch.reserve(std::max<size_t>(config_.max_batch, 1));
  const size_t max_batch = std::max<size_t>(config_.max_batch, 1);
  while (true) {
    batch.clear();
    const size_t n = queue_.PopBatch(batch, max_batch);
    if (n == 0) break;  // Closed and drained.
    // One state reference per batch: every query in the batch answers
    // from the same (graph, model, sketch) triple, and a concurrent swap
    // only affects later batches.
    const std::shared_ptr<const ServingState> state = CurrentState();
    if (m_ != nullptr) {
      m_->batches->Add(1);
      m_->batch_size->Observe(static_cast<double>(n));
      m_->queue_depth->Set(static_cast<double>(queue_.size()));
    }
    for (const QueryTicket& ticket : batch) {
      Status status = engine.Execute(*state->graph, state->snapshot.get(),
                                     state->sketch.get(), *ticket.request,
                                     *ticket.response);
      if (m_ != nullptr) {
        (status.ok() ? m_->completed : m_->failed)->Add(1);
        Histogram* lat = m_->LatencyFor(ticket.request->type);
        if (lat != nullptr) {
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - ticket.enqueue_time;
          lat->Observe(elapsed.count());
        }
      }
      ticket.completion->Signal(std::move(status));
    }
  }
}

void Server::FlushWorkspaceStats() {
  if (config_.metrics == nullptr) return;
  WorkspacePool::Stats total;
  for (const std::unique_ptr<QueryEngine>& engine : engines_) {
    const WorkspacePool::Stats s = engine->TakeWorkspaceStats();
    total.map_fast_resets += s.map_fast_resets;
    total.map_full_resets += s.map_full_resets;
    total.map_writes += s.map_writes;
    total.ball_cache_hits += s.ball_cache_hits;
    total.ball_cache_misses += s.ball_cache_misses;
  }
  MetricsRegistry& reg = *config_.metrics;
  reg.GetCounter("serve.ws.map_fast_resets")->Add(total.map_fast_resets);
  reg.GetCounter("serve.ws.map_full_resets")->Add(total.map_full_resets);
  reg.GetCounter("serve.ws.touched_nodes")->Add(total.map_writes);
  reg.GetCounter("serve.ws.ball_cache_hits")->Add(total.ball_cache_hits);
  reg.GetCounter("serve.ws.ball_cache_misses")
      ->Add(total.ball_cache_misses);
}

}  // namespace privim
