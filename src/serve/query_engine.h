#ifndef PRIVIM_SERVE_QUERY_ENGINE_H_
#define PRIVIM_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "im/rr_sets.h"
#include "runtime/scratch.h"
#include "serve/request.h"
#include "serve/snapshot.h"
#include "tensor/plan.h"

namespace privim {

/// One worker's query-execution core: the resident graph plus every piece
/// of reusable state a query needs — the plan arena for inference, the
/// epoch-stamped diffusion workspace, the sketch-coverage set, and the
/// ranking/seed staging buffers. State persists across queries, which is
/// the serving layer's performance contract: once every query type has run
/// once (a warm engine), Execute performs ZERO heap allocations, gated in
/// CI by bench_micro's ServeSteadyStateAllocs case exactly like the
/// compiled-plan trainer path.
///
/// Thread-safety: none — one engine per worker slot, exclusive use
/// (Server guarantees this; the slot protocol of ParallelForWithSlots is
/// the same idea). The graph, snapshot, and sketch arguments are immutable
/// shared state and safe to read from any number of engines concurrently.
///
/// The graph is an Execute() argument, not a constructor binding, because
/// the dynamic pipeline hot-swaps the resident graph together with the
/// model (Server::SwapGraphAndSnapshot): the Server hands each batch one
/// consistent (graph, snapshot, sketch) triple. All graph reads inside go
/// through the im/diffusion.h GraphView seam, so an engine pointed at an
/// overlaid view would see the delta (docs/streaming.md).
///
/// Determinism: every answer is a pure function of (snapshot, resident
/// graph/sketch, request) — Monte-Carlo trials draw counter-derived
/// streams from request.seed, and top-k ties break on node id — so
/// responses are reproducible regardless of which worker served them or
/// what was cached. The hot-swap torture test leans on exactly this.
class QueryEngine {
 public:
  QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Validates and executes one query against `graph`, filling `response`
  /// (cleared first).
  ///
  /// `snapshot` may be null unless the query needs the model (kTopK);
  /// `sketch` may be null unless the request selects the kRrSketch
  /// estimator. Both must have been built against `graph`. On error the
  /// response is left cleared and the status explains which precondition
  /// failed.
  Status Execute(const Graph& graph, const ModelSnapshot* snapshot,
                 const RrSketch* sketch, const QueryRequest& request,
                 QueryResponse& response);

  /// Scratch-reuse statistics of the engine's diffusion workspace
  /// (delta since last call); the Server flushes these into the metrics
  /// registry as serve.ws.* counters.
  WorkspacePool::Stats TakeWorkspaceStats() {
    return workspaces_.TakeStats();
  }

 private:
  Status ExecuteTopK(const Graph& graph, const ModelSnapshot& snapshot,
                     const RrSketch* sketch, const QueryRequest& request,
                     QueryResponse& response);
  Status ExecuteSpread(const Graph& graph, const RrSketch* sketch,
                       const QueryRequest& request, QueryResponse& response);
  Status ExecuteMarginalGain(const Graph& graph, const RrSketch* sketch,
                             const QueryRequest& request,
                             QueryResponse& response);

  /// Spread of `seeds` under the request's estimator. `stream_offset`
  /// partitions request.seed's stream space between the estimates of one
  /// query (base set vs. each marginal candidate).
  Result<double> EstimateSpreadFor(const Graph& graph,
                                   std::span<const NodeId> seeds,
                                   const RrSketch* sketch,
                                   const QueryRequest& request,
                                   uint64_t stream_offset);

  /// Diffusion scratch behind a one-slot pool so the stats plumbing
  /// matches the samplers' (WorkspacePool::TakeStats).
  WorkspacePool workspaces_;
  /// Coverage set for the RR-sketch estimator — separate from the
  /// workspace's node-indexed sets because it is indexed by RR-set id
  /// (different size => separate stamp domain keeps resets O(1)).
  VisitedSet sketch_covered_;
  PlanArena arena_;
  /// Ranking scratch: (logit, node), partially sorted for top-k.
  std::vector<std::pair<float, uint32_t>> rank_;
  /// Seed-set staging for marginal-gain estimates (base set + candidate).
  std::vector<NodeId> seed_buf_;
};

}  // namespace privim

#endif  // PRIVIM_SERVE_QUERY_ENGINE_H_
