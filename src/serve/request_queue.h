#ifndef PRIVIM_SERVE_REQUEST_QUEUE_H_
#define PRIVIM_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "serve/request.h"

namespace privim {

/// Completion latch for one in-flight query: the submitting thread waits,
/// the worker signals once the response is filled. Lives on the
/// submitter's stack — the queue moves pointers around, never the payload,
/// so the steady-state submit path performs no heap allocation.
class QueryCompletion {
 public:
  /// Publishes the query's final status and wakes the waiter. Call at
  /// most once.
  void Signal(Status status);

  /// Blocks until Signal and returns the published status.
  Status Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Status status_;
};

/// One enqueued query: borrowed request/response/completion (owned by the
/// submitter, valid until Signal) plus the enqueue timestamp for
/// queue+service latency accounting.
struct QueryTicket {
  const QueryRequest* request = nullptr;
  QueryResponse* response = nullptr;
  QueryCompletion* completion = nullptr;
  std::chrono::steady_clock::time_point enqueue_time;
};

/// Bounded MPMC FIFO of query tickets — the Server's admission point.
///
/// Backpressure contract: Push NEVER blocks. A full queue rejects with
/// Status::ResourceExhausted immediately, so overload surfaces to clients
/// as a retryable error instead of unbounded queueing (and unbounded
/// latency). A closed queue rejects with FailedPrecondition — the signal
/// that the server is shutting down for good.
///
/// Shutdown contract: Close() stops admissions but does NOT discard queued
/// tickets; PopBatch keeps draining until the queue is empty and only then
/// returns 0. Server::Stop relies on this to answer every admitted query
/// before returning.
class RequestQueue {
 public:
  /// `capacity` >= 1; the ring storage is allocated once here.
  explicit RequestQueue(size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues without blocking. ResourceExhausted when full,
  /// FailedPrecondition when closed.
  Status Push(const QueryTicket& ticket);

  /// Appends up to `max_batch` tickets to `out` (not cleared), blocking
  /// while the queue is empty and open. Returns the number of tickets
  /// delivered; 0 means closed AND drained — the consumer's exit signal.
  size_t PopBatch(std::vector<QueryTicket>& out, size_t max_batch);

  /// Stops admissions and wakes all blocked consumers. Idempotent.
  void Close();

  size_t capacity() const { return ring_.size(); }
  size_t size() const;
  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<QueryTicket> ring_;
  size_t head_ = 0;   // Index of the oldest ticket.
  size_t count_ = 0;  // Number of queued tickets.
  bool closed_ = false;
};

}  // namespace privim

#endif  // PRIVIM_SERVE_REQUEST_QUEUE_H_
