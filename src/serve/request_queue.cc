#include "serve/request_queue.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace privim {

void QueryCompletion::Signal(Status status) {
  // Notify while HOLDING the lock: the completion lives on the waiter's
  // stack and is destroyed the instant Wait returns. Notifying after the
  // unlock would touch cv_ on a potentially-destroyed object; keeping mu_
  // across the notify pins the waiter inside Wait until Signal is done
  // with the members.
  std::lock_guard<std::mutex> lock(mu_);
  PRIVIM_CHECK(!done_) << "QueryCompletion signaled twice";
  done_ = true;
  status_ = std::move(status);
  cv_.notify_all();
}

Status QueryCompletion::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return status_;
}

RequestQueue::RequestQueue(size_t capacity) {
  PRIVIM_CHECK_GE(capacity, 1u);
  ring_.resize(capacity);
}

Status RequestQueue::Push(const QueryTicket& ticket) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return Status::FailedPrecondition(
          "request queue is closed (server stopping)");
    }
    if (count_ == ring_.size()) {
      return Status::ResourceExhausted(StrFormat(
          "request queue full (%zu queries queued); retry after in-flight "
          "work drains or raise ServeConfig::queue_capacity",
          count_));
    }
    ring_[(head_ + count_) % ring_.size()] = ticket;
    ++count_;
  }
  cv_.notify_one();
  return Status::OK();
}

size_t RequestQueue::PopBatch(std::vector<QueryTicket>& out,
                              size_t max_batch) {
  PRIVIM_CHECK_GE(max_batch, 1u);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return count_ > 0 || closed_; });
  size_t taken = 0;
  while (taken < max_batch && count_ > 0) {
    out.push_back(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    ++taken;
  }
  // A full producer may be waiting for room only in the sense of retrying;
  // but other *consumers* may still be blocked while more tickets remain.
  if (count_ > 0) {
    lock.unlock();
    cv_.notify_one();
  }
  return taken;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace privim
