#ifndef PRIVIM_SERVE_SNAPSHOT_H_
#define PRIVIM_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "nn/gnn.h"
#include "nn/graph_context.h"
#include "tensor/matrix.h"
#include "tensor/plan.h"

namespace privim {

/// One immutable, servable version of the model: the loaded GnnModel plus
/// everything inference over the resident graph derives from it — the
/// message-passing GraphContext, the structural feature matrix, the flat
/// parameter snapshot, and the compiled seed-logits plan (tensor/plan.h).
///
/// Snapshots are the unit of hot swap. The Server publishes the current
/// snapshot behind a shared_ptr (RCU style): workers take a reference per
/// batch, queries in flight keep the old version alive after a swap, and
/// the last reference releases it. Everything here is written once at
/// build time and only read afterwards, so concurrent query execution
/// needs no further synchronization; the one mutable thing a plan needs —
/// the arena — lives per worker in the QueryEngine, never here.
///
/// A snapshot is compiled against ONE resident graph (the plan embeds the
/// graph's edge structure); `num_nodes()` is validated by the Server at
/// swap time.
///
/// Dynamic graphs: a snapshot may additionally OWN the graph it was
/// compiled against (the graph-owning FromModel overload). That is the
/// unit the streaming pipeline publishes — graph and model swap together,
/// atomically, through Server::SwapGraphAndSnapshot, and the retired
/// graph stays alive exactly as long as in-flight queries still hold the
/// retired snapshot (docs/streaming.md).
class ModelSnapshot {
 public:
  /// Builds a servable snapshot from a loaded model. Fails with
  /// FailedPrecondition when the model's input width does not match the
  /// structural feature dim of `graph` (kNodeFeatureDim). The snapshot
  /// borrows `graph` (owned_graph() stays null); the caller keeps it
  /// alive — the Server's original static-graph contract.
  static Result<std::shared_ptr<const ModelSnapshot>> FromModel(
      std::unique_ptr<GnnModel> model, const Graph& graph);

  /// Graph-owning variant: the snapshot keeps `graph` alive and exposes
  /// it via owned_graph(). Required by Server::SwapGraphAndSnapshot.
  static Result<std::shared_ptr<const ModelSnapshot>> FromModel(
      std::unique_ptr<GnnModel> model, std::shared_ptr<const Graph> graph);

  /// One-call restore-and-compile: LoadModel(path) + FromModel. Error
  /// statuses name `path` and hint at version/artifact mismatches
  /// (nn/serialization.h).
  static Result<std::shared_ptr<const ModelSnapshot>> Load(
      const std::string& path, const Graph& graph);

  /// Process-unique identity, assigned at construction (monotonic from 1).
  /// Responses carry this id, which is what makes every answer
  /// attributable to exactly one snapshot.
  uint64_t id() const { return id_; }

  /// Node count of the graph this snapshot was compiled against.
  size_t num_nodes() const { return features_.rows(); }

  const GnnModel& model() const { return *model_; }

  /// Compiled plan producing the [num_nodes, 1] pre-sigmoid seed logits.
  /// Read-only and shared by every worker; execute with flat_params() /
  /// features() and a per-worker arena.
  const GnnPlan& logits_plan() const { return logits_plan_; }

  std::span<const float> flat_params() const { return flat_params_; }
  const Matrix& features() const { return features_; }

  /// The graph this snapshot keeps alive, or null when it was built
  /// against a borrowed graph (the static-serving path).
  const std::shared_ptr<const Graph>& owned_graph() const { return graph_; }

 private:
  ModelSnapshot() = default;

  uint64_t id_ = 0;
  std::shared_ptr<const Graph> graph_;
  std::unique_ptr<GnnModel> model_;
  GraphContext ctx_;  // The plan borrows ctx_'s edge vectors.
  Matrix features_;
  std::vector<float> flat_params_;
  GnnPlan logits_plan_;
};

}  // namespace privim

#endif  // PRIVIM_SERVE_SNAPSHOT_H_
