#ifndef PRIVIM_IM_RR_SETS_H_
#define PRIVIM_IM_RR_SETS_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "runtime/scratch.h"

namespace privim {

/// Reverse-reachable (RR) sketches for the IC model — the "sampling-based"
/// family of traditional IM solvers the paper cites (Tang et al., SIGMOD'15).
/// One RR set is the set of nodes that reach a uniformly random target in a
/// random live-edge realization; a seed set's expected spread equals
/// |V| * Pr[an RR set is hit], so greedy max-coverage over enough RR sets is
/// a (1 - 1/e - eps)-approximate IM solver that scales to large graphs.
///
/// PrivIM uses CELF as its exact ground truth in the paper's deterministic
/// w=1/j=1 setting; the RR machinery provides the general-weight ground
/// truth (and a scalability baseline) for everything else.

/// A collection of RR sets over a fixed graph.
class RrSketch {
 public:
  /// Samples `count` RR sets of `g` (must have at least one node) under
  /// full-length IC cascades. Consumes exactly one draw of `rng` (a
  /// substream base key); RR set s draws its target and its reverse BFS
  /// from its own child stream and sets are committed in index order, so
  /// the sketch is bit-identical for every `num_threads` (0 = global
  /// runtime default).
  static Result<RrSketch> Generate(const Graph& g, size_t count, Rng& rng,
                                   size_t num_threads = 0);

  /// As above over a GraphView (base graph + optional GraphDelta overlay).
  /// The view's in-edge merge presents sources in the same ascending order
  /// the compacted graph would, so the sketch is bit-identical to
  /// generating on `GraphDelta::Compact()`'s output with the same rng.
  static Result<RrSketch> Generate(const GraphView& g, size_t count,
                                   Rng& rng, size_t num_threads = 0);

  /// Rebuilds a sketch from a saved `stream_base()` WITHOUT consuming a
  /// parent draw — the checkpoint/resume path, and the reference
  /// "from-scratch rebuild at the same RNG stream" the incremental Repair
  /// below is tested bit-identical against.
  static Result<RrSketch> Regenerate(const GraphView& g, size_t count,
                                     uint64_t stream_base,
                                     size_t num_threads = 0);

  /// Incrementally repairs the sketch after the viewed graph changed.
  /// `changed_in_rows` lists the nodes whose *in*-rows differ from the
  /// graph this sketch was generated (or last repaired) on.
  ///
  /// Invalidation rule (docs/streaming.md): RR set s consumes RNG draws
  /// only for the in-edges of its visited nodes, in visit order, from its
  /// private child stream `FromStreamKey(stream_base, s)`. A set is
  /// therefore stale iff it contains a node whose in-row changed — new
  /// arcs into an unvisited node cannot affect it, and untouched sets
  /// replay their draws identically. Stale sets are regenerated from
  /// their original child streams, so the repaired sketch is bit-identical
  /// to Regenerate(g, num_sets, stream_base) from scratch. A node-count
  /// change rebuilds everything (every set's target draw shifts).
  ///
  /// Returns the number of sets regenerated (== num_sets() on a full
  /// rebuild) — the O(ball) locality metric BM_StreamUpdate gates on.
  Result<size_t> Repair(const GraphView& g,
                        std::span<const NodeId> changed_in_rows,
                        size_t num_threads = 0);

  /// The substream base key this sketch's sets were drawn from
  /// (checkpointed by the stream pipeline; feed back into Regenerate).
  uint64_t stream_base() const { return stream_base_; }

  size_t num_sets() const { return sets_.size(); }
  size_t num_nodes() const { return num_nodes_; }
  const std::vector<std::vector<NodeId>>& sets() const { return sets_; }

  /// Unbiased spread estimate: |V| * (covered RR sets / total RR sets).
  double EstimateSpread(const std::vector<NodeId>& seeds) const;

  /// As above, against an epoch-stamped coverage set (reset here to
  /// num_sets()): identical value, O(1) re-initialization once warm. The
  /// serving layer keeps one `covered` set per worker so a resident sketch
  /// answers spread queries without per-query allocation.
  double EstimateSpread(std::span<const NodeId> seeds,
                        VisitedSet& covered) const;

  /// Greedy max-coverage over the sketch: returns k seeds with the usual
  /// (1 - 1/e)-approximation w.r.t. the sketch coverage. Fails if
  /// k > num_nodes().
  Result<std::vector<NodeId>> SelectSeeds(size_t k) const;

 private:
  /// Shared backend of Generate/Regenerate: samples sets [0, count) from
  /// the child streams of `stream_base`.
  static Result<RrSketch> GenerateImpl(const GraphView& g, size_t count,
                                       uint64_t stream_base,
                                       size_t num_threads);
  /// Regenerates the listed sets from their child streams and rebuilds
  /// the inverted index.
  void RebuildSets(const GraphView& g, std::span<const uint32_t> set_ids,
                   size_t num_threads);
  void RebuildInvertedIndex();

  size_t num_nodes_ = 0;
  uint64_t stream_base_ = 0;
  std::vector<std::vector<NodeId>> sets_;
  /// For each node, the indices of RR sets containing it (inverted index).
  std::vector<std::vector<uint32_t>> node_to_sets_;
};

}  // namespace privim

#endif  // PRIVIM_IM_RR_SETS_H_
