#ifndef PRIVIM_IM_RR_SETS_H_
#define PRIVIM_IM_RR_SETS_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "runtime/scratch.h"

namespace privim {

/// Reverse-reachable (RR) sketches for the IC model — the "sampling-based"
/// family of traditional IM solvers the paper cites (Tang et al., SIGMOD'15).
/// One RR set is the set of nodes that reach a uniformly random target in a
/// random live-edge realization; a seed set's expected spread equals
/// |V| * Pr[an RR set is hit], so greedy max-coverage over enough RR sets is
/// a (1 - 1/e - eps)-approximate IM solver that scales to large graphs.
///
/// PrivIM uses CELF as its exact ground truth in the paper's deterministic
/// w=1/j=1 setting; the RR machinery provides the general-weight ground
/// truth (and a scalability baseline) for everything else.

/// A collection of RR sets over a fixed graph.
class RrSketch {
 public:
  /// Samples `count` RR sets of `g` (must have at least one node) under
  /// full-length IC cascades. Consumes exactly one draw of `rng` (a
  /// substream base key); RR set s draws its target and its reverse BFS
  /// from its own child stream and sets are committed in index order, so
  /// the sketch is bit-identical for every `num_threads` (0 = global
  /// runtime default).
  static Result<RrSketch> Generate(const Graph& g, size_t count, Rng& rng,
                                   size_t num_threads = 0);

  size_t num_sets() const { return sets_.size(); }
  size_t num_nodes() const { return num_nodes_; }
  const std::vector<std::vector<NodeId>>& sets() const { return sets_; }

  /// Unbiased spread estimate: |V| * (covered RR sets / total RR sets).
  double EstimateSpread(const std::vector<NodeId>& seeds) const;

  /// As above, against an epoch-stamped coverage set (reset here to
  /// num_sets()): identical value, O(1) re-initialization once warm. The
  /// serving layer keeps one `covered` set per worker so a resident sketch
  /// answers spread queries without per-query allocation.
  double EstimateSpread(std::span<const NodeId> seeds,
                        VisitedSet& covered) const;

  /// Greedy max-coverage over the sketch: returns k seeds with the usual
  /// (1 - 1/e)-approximation w.r.t. the sketch coverage. Fails if
  /// k > num_nodes().
  Result<std::vector<NodeId>> SelectSeeds(size_t k) const;

 private:
  size_t num_nodes_ = 0;
  std::vector<std::vector<NodeId>> sets_;
  /// For each node, the indices of RR sets containing it (inverted index).
  std::vector<std::vector<uint32_t>> node_to_sets_;
};

}  // namespace privim

#endif  // PRIVIM_IM_RR_SETS_H_
