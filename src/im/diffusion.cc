#include "im/diffusion.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_streams.h"
#include "runtime/runtime.h"

namespace privim {

namespace {

// Marks seeds active and enqueues them; returns initial active count.
size_t SeedState(const Graph& g, std::span<const NodeId> seeds,
                 std::vector<uint8_t>& active, std::deque<NodeId>& frontier) {
  active.assign(g.num_nodes(), 0);
  size_t count = 0;
  for (NodeId s : seeds) {
    PRIVIM_CHECK_LT(s, g.num_nodes());
    if (!active[s]) {
      active[s] = 1;
      frontier.push_back(s);
      ++count;
    }
  }
  return count;
}

}  // namespace

size_t SimulateIcCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps) {
  std::vector<uint8_t> active;
  std::deque<NodeId> frontier;
  size_t count = SeedState(g, seeds, active, frontier);

  int step = 0;
  while (!frontier.empty() && (max_steps < 0 || step < max_steps)) {
    ++step;
    const size_t layer = frontier.size();
    for (size_t i = 0; i < layer; ++i) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      auto nbrs = g.OutNeighbors(u);
      auto ws = g.OutWeights(u);
      for (size_t k = 0; k < nbrs.size(); ++k) {
        const NodeId v = nbrs[k];
        if (!active[v] && rng.Bernoulli(ws[k])) {
          active[v] = 1;
          frontier.push_back(v);
          ++count;
        }
      }
    }
  }
  return count;
}

double EstimateIcSpread(const Graph& g, std::span<const NodeId> seeds,
                        size_t trials, Rng& rng, int max_steps,
                        size_t num_threads) {
  PRIVIM_CHECK_GT(trials, 0u);
  // Trials are independent: each one runs on its own child stream and the
  // per-trial cascade sizes are summed in trial order, so the result does
  // not depend on the thread count (see docs/runtime.md).
  RngStreams streams(rng);
  std::vector<size_t> counts(trials, 0);
  ThreadPool* pool = SharedPool(ResolveNumThreads(num_threads));
  ParallelFor(pool, 0, trials, /*grain=*/8, [&](size_t t) {
    Rng trial_rng = streams.Stream(t);
    counts[t] = SimulateIcCascade(g, seeds, trial_rng, max_steps);
  });
  double total = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    total += static_cast<double>(counts[t]);
  }
  return total / static_cast<double>(trials);
}

size_t ExactUnitWeightSpread(const Graph& g, std::span<const NodeId> seeds,
                             int steps) {
  PRIVIM_CHECK_GE(steps, 0);
  std::vector<uint8_t> active(g.num_nodes(), 0);
  std::vector<NodeId> frontier;
  size_t count = 0;
  for (NodeId s : seeds) {
    PRIVIM_CHECK_LT(s, g.num_nodes());
    if (!active[s]) {
      active[s] = 1;
      frontier.push_back(s);
      ++count;
    }
  }
  for (int h = 0; h < steps && !frontier.empty(); ++h) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId v : g.OutNeighbors(u)) {
        if (!active[v]) {
          active[v] = 1;
          next.push_back(v);
          ++count;
        }
      }
    }
    frontier = std::move(next);
  }
  return count;
}

size_t SimulateLtCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps) {
  std::vector<double> threshold(g.num_nodes());
  for (double& t : threshold) t = rng.Uniform();
  std::vector<uint8_t> active;
  std::deque<NodeId> frontier;
  size_t count = SeedState(g, seeds, active, frontier);

  std::vector<double> incoming(g.num_nodes(), 0.0);
  int step = 0;
  while (!frontier.empty() && (max_steps < 0 || step < max_steps)) {
    ++step;
    const size_t layer = frontier.size();
    std::vector<NodeId> touched;
    for (size_t i = 0; i < layer; ++i) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      auto nbrs = g.OutNeighbors(u);
      auto ws = g.OutWeights(u);
      for (size_t k = 0; k < nbrs.size(); ++k) {
        const NodeId v = nbrs[k];
        if (active[v]) continue;
        incoming[v] += ws[k];
        touched.push_back(v);
      }
    }
    for (NodeId v : touched) {
      if (!active[v] && incoming[v] >= threshold[v]) {
        active[v] = 1;
        frontier.push_back(v);
        ++count;
      }
    }
  }
  return count;
}

size_t SimulateSisCascade(const Graph& g, std::span<const NodeId> seeds,
                          double recovery_prob, int max_steps, Rng& rng) {
  PRIVIM_CHECK_GE(max_steps, 0);
  std::vector<uint8_t> infected(g.num_nodes(), 0);
  std::vector<uint8_t> ever(g.num_nodes(), 0);
  size_t ever_count = 0;
  for (NodeId s : seeds) {
    PRIVIM_CHECK_LT(s, g.num_nodes());
    if (!infected[s]) {
      infected[s] = 1;
      ever[s] = 1;
      ++ever_count;
    }
  }
  for (int step = 0; step < max_steps; ++step) {
    std::vector<uint8_t> next = infected;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (!infected[u]) continue;
      auto nbrs = g.OutNeighbors(u);
      auto ws = g.OutWeights(u);
      for (size_t k = 0; k < nbrs.size(); ++k) {
        const NodeId v = nbrs[k];
        if (!next[v] && rng.Bernoulli(ws[k])) {
          next[v] = 1;
          if (!ever[v]) {
            ever[v] = 1;
            ++ever_count;
          }
        }
      }
      if (rng.Bernoulli(recovery_prob)) next[u] = 0;
    }
    infected = std::move(next);
  }
  return ever_count;
}

}  // namespace privim
