#include "im/diffusion.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_streams.h"
#include "runtime/runtime.h"

namespace privim {

namespace {

// Marks seeds active and enqueues them; returns initial active count.
// `active` is the workspace's stamped membership set, logically empty
// after its Reset here. The frontier is a grow-only vector consumed
// through a cursor — same FIFO order as a queue, no per-pop bookkeeping.
size_t SeedState(size_t num_nodes, std::span<const NodeId> seeds,
                 VisitedSet& active, std::vector<uint32_t>& frontier) {
  active.Reset(num_nodes);
  frontier.clear();
  size_t count = 0;
  for (NodeId s : seeds) {
    PRIVIM_CHECK_LT(s, num_nodes);
    if (!active.Contains(s)) {
      active.Insert(s);
      frontier.push_back(s);
      ++count;
    }
  }
  return count;
}

}  // namespace

// All cores run on GraphView — the single read seam over a possibly-
// mutated graph (diffusion.h). The Graph overloads wrap the argument in a
// passthrough view, whose row iteration is the plain CSR loop: same
// neighbor order, same RNG draws, same results as the pre-view code.

size_t SimulateIcCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps) {
  return SimulateIcCascade(GraphView(g), seeds, rng, max_steps);
}

size_t SimulateIcCascade(const GraphView& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps) {
  Workspace ws;
  return SimulateIcCascade(g, seeds, rng, max_steps, ws);
}

size_t SimulateIcCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps, Workspace& ws) {
  return SimulateIcCascade(GraphView(g), seeds, rng, max_steps, ws);
}

size_t SimulateIcCascade(const GraphView& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps, Workspace& ws) {
  VisitedSet& active = ws.visited;
  std::vector<uint32_t>& frontier = ws.frontier;
  size_t count = SeedState(g.num_nodes(), seeds, active, frontier);

  size_t cursor = 0;
  int step = 0;
  while (cursor < frontier.size() && (max_steps < 0 || step < max_steps)) {
    ++step;
    const size_t layer_end = frontier.size();
    for (; cursor < layer_end; ++cursor) {
      g.ForEachOutEdge(frontier[cursor],
                       [&active, &frontier, &rng, &count](NodeId v, float w) {
                         if (!active.Contains(v) && rng.Bernoulli(w)) {
                           active.Insert(v);
                           frontier.push_back(v);
                           ++count;
                         }
                       });
    }
  }
  return count;
}

double EstimateIcSpread(const Graph& g, std::span<const NodeId> seeds,
                        size_t trials, Rng& rng, int max_steps,
                        size_t num_threads, WorkspacePool* workspaces) {
  return EstimateIcSpread(GraphView(g), seeds, trials, rng, max_steps,
                          num_threads, workspaces);
}

double EstimateIcSpread(const GraphView& g, std::span<const NodeId> seeds,
                        size_t trials, Rng& rng, int max_steps,
                        size_t num_threads, WorkspacePool* workspaces) {
  PRIVIM_CHECK_GT(trials, 0u);
  // Trials are independent: each one runs on its own child stream and the
  // per-trial cascade sizes are summed in trial order, so the result does
  // not depend on the thread count (see docs/runtime.md).
  RngStreams streams(rng);
  std::vector<size_t> counts(trials, 0);
  ThreadPool* pool = SharedPool(ResolveNumThreads(num_threads));
  const size_t num_slots =
      pool == nullptr ? 1 : ResolveNumThreads(num_threads);
  WorkspacePool local_pool;
  WorkspacePool& ws_pool = workspaces != nullptr ? *workspaces : local_pool;
  ws_pool.EnsureSlots(num_slots);
  ParallelForWithSlots(pool, 0, trials, /*grain=*/8, num_slots,
                       [&](size_t t, size_t slot) {
                         Rng trial_rng = streams.Stream(t);
                         counts[t] =
                             SimulateIcCascade(g, seeds, trial_rng, max_steps,
                                               ws_pool.Acquire(slot));
                       });
  double total = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    total += static_cast<double>(counts[t]);
  }
  return total / static_cast<double>(trials);
}

size_t ExactUnitWeightSpread(const Graph& g, std::span<const NodeId> seeds,
                             int steps) {
  return ExactUnitWeightSpread(GraphView(g), seeds, steps);
}

size_t ExactUnitWeightSpread(const GraphView& g,
                             std::span<const NodeId> seeds, int steps) {
  PRIVIM_CHECK_GE(steps, 0);
  std::vector<uint8_t> active(g.num_nodes(), 0);
  std::vector<NodeId> frontier;
  size_t count = 0;
  for (NodeId s : seeds) {
    PRIVIM_CHECK_LT(s, g.num_nodes());
    if (!active[s]) {
      active[s] = 1;
      frontier.push_back(s);
      ++count;
    }
  }
  for (int h = 0; h < steps && !frontier.empty(); ++h) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      g.ForEachOutEdge(u, [&active, &next, &count](NodeId v, float) {
        if (!active[v]) {
          active[v] = 1;
          next.push_back(v);
          ++count;
        }
      });
    }
    frontier = std::move(next);
  }
  return count;
}

size_t ExactUnitWeightSpread(const Graph& g, std::span<const NodeId> seeds,
                             int steps, Workspace& ws) {
  return ExactUnitWeightSpread(GraphView(g), seeds, steps, ws);
}

size_t ExactUnitWeightSpread(const GraphView& g,
                             std::span<const NodeId> seeds, int steps,
                             Workspace& ws) {
  PRIVIM_CHECK_GE(steps, 0);
  VisitedSet& active = ws.visited;
  std::vector<uint32_t>& frontier = ws.frontier;
  size_t count = SeedState(g.num_nodes(), seeds, active, frontier);
  // Same layered BFS as the allocating form, expressed with the cursor
  // idiom of SimulateIcCascade: frontier[cursor, layer_end) is hop h.
  size_t cursor = 0;
  for (int h = 0; h < steps && cursor < frontier.size(); ++h) {
    const size_t layer_end = frontier.size();
    for (; cursor < layer_end; ++cursor) {
      g.ForEachOutEdge(frontier[cursor],
                       [&active, &frontier, &count](NodeId v, float) {
                         if (!active.Contains(v)) {
                           active.Insert(v);
                           frontier.push_back(v);
                           ++count;
                         }
                       });
    }
  }
  return count;
}

size_t SimulateLtCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps) {
  return SimulateLtCascade(GraphView(g), seeds, rng, max_steps);
}

size_t SimulateLtCascade(const GraphView& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps) {
  Workspace ws;
  return SimulateLtCascade(g, seeds, rng, max_steps, ws);
}

size_t SimulateLtCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps, Workspace& ws) {
  return SimulateLtCascade(GraphView(g), seeds, rng, max_steps, ws);
}

size_t SimulateLtCascade(const GraphView& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps, Workspace& ws) {
  // Thresholds are drawn for every node, in node order, regardless of how
  // far the cascade reaches — the draw sequence is part of the simulator's
  // pinned RNG contract (golden determinism tests). The buffer is pooled;
  // every entry is overwritten, so no zero-fill is needed.
  std::vector<double>& threshold = ws.thresholds;
  threshold.resize(g.num_nodes());
  for (double& t : threshold) t = rng.Uniform();
  VisitedSet& active = ws.visited;
  std::vector<uint32_t>& frontier = ws.frontier;
  size_t count = SeedState(g.num_nodes(), seeds, active, frontier);

  // Sparse incoming-weight accumulator: absent entries read as 0.
  VisitedMap<double>& incoming = ws.incoming;
  incoming.Reset(g.num_nodes());
  std::vector<uint32_t>& touched = ws.candidates;
  size_t cursor = 0;
  int step = 0;
  while (cursor < frontier.size() && (max_steps < 0 || step < max_steps)) {
    ++step;
    const size_t layer_end = frontier.size();
    touched.clear();
    for (; cursor < layer_end; ++cursor) {
      g.ForEachOutEdge(frontier[cursor],
                       [&active, &incoming, &touched](NodeId v, float w) {
                         if (active.Contains(v)) return;
                         incoming.Set(v, incoming.GetOr(v, 0.0) + w);
                         touched.push_back(v);
                       });
    }
    for (NodeId v : touched) {
      if (!active.Contains(v) && incoming.Get(v) >= threshold[v]) {
        active.Insert(v);
        frontier.push_back(v);
        ++count;
      }
    }
  }
  return count;
}

size_t SimulateSisCascade(const Graph& g, std::span<const NodeId> seeds,
                          double recovery_prob, int max_steps, Rng& rng) {
  return SimulateSisCascade(GraphView(g), seeds, recovery_prob, max_steps,
                            rng);
}

size_t SimulateSisCascade(const GraphView& g, std::span<const NodeId> seeds,
                          double recovery_prob, int max_steps, Rng& rng) {
  PRIVIM_CHECK_GE(max_steps, 0);
  std::vector<uint8_t> infected(g.num_nodes(), 0);
  std::vector<uint8_t> ever(g.num_nodes(), 0);
  size_t ever_count = 0;
  for (NodeId s : seeds) {
    PRIVIM_CHECK_LT(s, g.num_nodes());
    if (!infected[s]) {
      infected[s] = 1;
      ever[s] = 1;
      ++ever_count;
    }
  }
  for (int step = 0; step < max_steps; ++step) {
    std::vector<uint8_t> next = infected;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (!infected[u]) continue;
      g.ForEachOutEdge(u, [&next, &ever, &ever_count, &rng](NodeId v,
                                                            float w) {
        if (!next[v] && rng.Bernoulli(w)) {
          next[v] = 1;
          if (!ever[v]) {
            ever[v] = 1;
            ++ever_count;
          }
        }
      });
      if (rng.Bernoulli(recovery_prob)) next[u] = 0;
    }
    infected = std::move(next);
  }
  return ever_count;
}

}  // namespace privim
