#ifndef PRIVIM_IM_SEED_SELECTION_H_
#define PRIVIM_IM_SEED_SELECTION_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace privim {

/// Seed-set selection algorithms: CELF greedy (the paper's ground truth)
/// and cheap heuristics used as sanity baselines in tests/benches.

/// A spread oracle: maps a candidate seed set to its (estimated) influence
/// spread. CELF requires it to be monotone submodular for its guarantee;
/// the exact unit-weight j-step spread used in the paper's evaluation is.
using SpreadOracle =
    std::function<double(const std::vector<NodeId>& seeds)>;

/// Output of a seed-selection run.
struct SeedSelection {
  std::vector<NodeId> seeds;
  /// Oracle value of the final seed set.
  double spread = 0.0;
  /// Total number of oracle evaluations (CELF's efficiency metric).
  size_t oracle_calls = 0;
};

/// CELF (Leskovec et al., KDD'07): lazy-greedy maximization of a monotone
/// submodular spread function, (1 - 1/e)-approximate. `candidates` is the
/// ground set (e.g. the test split); `k` the seed budget.
Result<SeedSelection> CelfSelect(const std::vector<NodeId>& candidates,
                                 size_t k, const SpreadOracle& oracle);

/// Plain greedy without lazy evaluation — O(k |candidates|) oracle calls.
/// Exists to validate CELF's equivalence in tests.
Result<SeedSelection> GreedySelect(const std::vector<NodeId>& candidates,
                                   size_t k, const SpreadOracle& oracle);

/// Top-k candidates by out-degree (proxy heuristic).
Result<SeedSelection> DegreeSelect(const Graph& g,
                                   const std::vector<NodeId>& candidates,
                                   size_t k, const SpreadOracle& oracle);

/// k uniformly random candidates (floor baseline).
Result<SeedSelection> RandomSelect(const std::vector<NodeId>& candidates,
                                   size_t k, const SpreadOracle& oracle,
                                   Rng& rng);

/// Top-k candidates by an externally supplied per-node score (the GNN's
/// seed probabilities). `scores` is indexed by original node id.
Result<SeedSelection> TopKByScore(const std::vector<NodeId>& candidates,
                                  size_t k,
                                  const std::vector<double>& scores,
                                  const SpreadOracle& oracle);

/// Convenience oracle for the paper's evaluation setting: exact spread with
/// unit weights truncated to `steps` rounds on `g`.
SpreadOracle MakeExactUnitOracle(const Graph& g, int steps = 1);

/// Monte-Carlo IC oracle with `trials` cascades per evaluation. The trials
/// of each evaluation run in parallel (`num_threads`; 0 = global runtime
/// default) with deterministic per-trial substreams, so oracle values are
/// bit-identical for every thread count. An optional metrics sink records
/// "im.mc_trials" (cascades simulated) and times "im.mc_eval" per call.
/// InvalidArgument (naming the parameter) when `trials` is 0.
Result<SpreadOracle> MakeMonteCarloOracle(const Graph& g, size_t trials,
                                          Rng& rng, int max_steps = -1,
                                          size_t num_threads = 0,
                                          MetricsRegistry* metrics = nullptr);

/// Wraps `oracle` so every evaluation bumps "im.oracle_calls" and is timed
/// under "im.oracle_eval" in `metrics`. Returns `oracle` unchanged when
/// `metrics` is null. Pure observation: values pass through untouched, so
/// selection results are unchanged by instrumentation.
SpreadOracle InstrumentedOracle(SpreadOracle oracle,
                                MetricsRegistry* metrics);

/// Monte-Carlo Linear Threshold oracle (paper's future-work diffusion
/// model): mean activated count over `trials` LT cascades.
/// InvalidArgument (naming the parameter) when `trials` is 0.
Result<SpreadOracle> MakeLtOracle(const Graph& g, size_t trials, Rng& rng,
                                  int max_steps = -1);

/// Monte-Carlo SIS oracle: mean count of nodes ever infected within
/// `max_steps` rounds at the given recovery probability. InvalidArgument
/// (naming the parameter) on trials = 0, recovery_prob outside (0, 1], or
/// max_steps < 1.
Result<SpreadOracle> MakeSisOracle(const Graph& g, size_t trials,
                                   double recovery_prob, int max_steps,
                                   Rng& rng);

}  // namespace privim

#endif  // PRIVIM_IM_SEED_SELECTION_H_
