#ifndef PRIVIM_IM_DIFFUSION_H_
#define PRIVIM_IM_DIFFUSION_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace privim {

/// Influence-diffusion evaluation under the Independent Cascade (IC) model
/// (Definition 6) and the paper's future-work extensions (LT, SIS).

/// One Monte-Carlo IC cascade from `seeds`; returns the number of activated
/// nodes (including seeds). `max_steps < 0` means run to quiescence;
/// otherwise the cascade is truncated after `max_steps` rounds (the paper's
/// evaluation uses j = 1).
size_t SimulateIcCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps = -1);

/// Monte-Carlo estimate of the IC influence spread I(S, G): the mean
/// cascade size over `trials` simulations. Consumes exactly one draw of
/// `rng` (a substream base key); trial t runs on its own counter-derived
/// child stream and the trial sum is reduced in index order, so the
/// estimate is bit-identical for every `num_threads` (0 = global runtime
/// default).
double EstimateIcSpread(const Graph& g, std::span<const NodeId> seeds,
                        size_t trials, Rng& rng, int max_steps = -1,
                        size_t num_threads = 0);

/// Exact influence spread for the deterministic special case where every
/// edge weight is 1 and the cascade runs `steps` rounds: the size of the
/// `steps`-hop out-closure of the seed set. This is the paper's evaluation
/// setting (w_uv = 1, j = 1 => |S ∪ N_out(S)|), free of MC variance.
size_t ExactUnitWeightSpread(const Graph& g, std::span<const NodeId> seeds,
                             int steps = 1);

/// One cascade under the Linear Threshold model: node thresholds are drawn
/// uniformly from [0,1]; a node activates when the weight sum of its active
/// in-neighbors reaches its threshold. Returns activated count.
size_t SimulateLtCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps = -1);

/// SIS epidemic: infected nodes infect out-neighbors with the edge weight
/// each round and recover (back to susceptible) with `recovery_prob`.
/// Returns the total number of distinct nodes ever infected within
/// `max_steps` rounds.
size_t SimulateSisCascade(const Graph& g, std::span<const NodeId> seeds,
                          double recovery_prob, int max_steps, Rng& rng);

}  // namespace privim

#endif  // PRIVIM_IM_DIFFUSION_H_
