#ifndef PRIVIM_IM_DIFFUSION_H_
#define PRIVIM_IM_DIFFUSION_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "runtime/scratch.h"

namespace privim {

/// Influence-diffusion evaluation under the Independent Cascade (IC) model
/// (Definition 6) and the paper's future-work extensions (LT, SIS).
///
/// The IC/LT simulators come in two forms: a self-contained one that
/// allocates its per-cascade state, and a Workspace overload that runs the
/// identical cascade (same RNG draws, same result) against epoch-stamped
/// scratch, turning the O(num_nodes) per-cascade initialization into O(1).
/// EstimateIcSpread uses the workspace form internally — one workspace per
/// parallel slot — and accepts an optional caller-owned pool so repeated
/// estimates (the Monte-Carlo oracle inside CELF) reuse memory across
/// calls. See docs/performance.md.
///
/// Every simulator also takes a `GraphView`, the single read seam over a
/// possibly-mutated graph (graph/graph_view.h): the `Graph` overloads are
/// thin wrappers over the view cores, so no diffusion path can read base
/// adjacency in a way that bypasses a `GraphDelta` overlay. A view with no
/// overlay consumes RNG draws in exactly the historical order — the golden
/// determinism tests still pin the same outputs.

/// One Monte-Carlo IC cascade from `seeds`; returns the number of activated
/// nodes (including seeds). `max_steps < 0` means run to quiescence;
/// otherwise the cascade is truncated after `max_steps` rounds (the paper's
/// evaluation uses j = 1).
size_t SimulateIcCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps = -1);
size_t SimulateIcCascade(const GraphView& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps = -1);

/// As above, against reusable scratch: bit-identical to the allocating
/// form for the same `rng` state.
size_t SimulateIcCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps, Workspace& ws);
size_t SimulateIcCascade(const GraphView& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps, Workspace& ws);

/// Monte-Carlo estimate of the IC influence spread I(S, G): the mean
/// cascade size over `trials` simulations. Consumes exactly one draw of
/// `rng` (a substream base key); trial t runs on its own counter-derived
/// child stream and the trial sum is reduced in index order, so the
/// estimate is bit-identical for every `num_threads` (0 = global runtime
/// default). `workspaces`, when given, must outlive the call and follow
/// the runtime's single-orchestrator contract; nullptr uses a call-local
/// pool.
double EstimateIcSpread(const Graph& g, std::span<const NodeId> seeds,
                        size_t trials, Rng& rng, int max_steps = -1,
                        size_t num_threads = 0,
                        WorkspacePool* workspaces = nullptr);
double EstimateIcSpread(const GraphView& g, std::span<const NodeId> seeds,
                        size_t trials, Rng& rng, int max_steps = -1,
                        size_t num_threads = 0,
                        WorkspacePool* workspaces = nullptr);

/// Exact influence spread for the deterministic special case where every
/// edge weight is 1 and the cascade runs `steps` rounds: the size of the
/// `steps`-hop out-closure of the seed set. This is the paper's evaluation
/// setting (w_uv = 1, j = 1 => |S ∪ N_out(S)|), free of MC variance.
size_t ExactUnitWeightSpread(const Graph& g, std::span<const NodeId> seeds,
                             int steps = 1);
size_t ExactUnitWeightSpread(const GraphView& g,
                             std::span<const NodeId> seeds, int steps = 1);

/// As above, against reusable scratch (ws.visited + ws.frontier):
/// identical count, but the per-call O(num_nodes) bitmap initialization
/// becomes O(1) once the workspace is warm — the form the serving layer
/// (src/serve/) runs on its allocation-free steady-state query path.
size_t ExactUnitWeightSpread(const Graph& g, std::span<const NodeId> seeds,
                             int steps, Workspace& ws);
size_t ExactUnitWeightSpread(const GraphView& g,
                             std::span<const NodeId> seeds, int steps,
                             Workspace& ws);

/// One cascade under the Linear Threshold model: node thresholds are drawn
/// uniformly from [0,1]; a node activates when the weight sum of its active
/// in-neighbors reaches its threshold. Returns activated count.
size_t SimulateLtCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps = -1);
size_t SimulateLtCascade(const GraphView& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps = -1);

/// As above, against reusable scratch: bit-identical to the allocating
/// form for the same `rng` state.
size_t SimulateLtCascade(const Graph& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps, Workspace& ws);
size_t SimulateLtCascade(const GraphView& g, std::span<const NodeId> seeds,
                         Rng& rng, int max_steps, Workspace& ws);

/// SIS epidemic: infected nodes infect out-neighbors with the edge weight
/// each round and recover (back to susceptible) with `recovery_prob`.
/// Returns the total number of distinct nodes ever infected within
/// `max_steps` rounds.
size_t SimulateSisCascade(const Graph& g, std::span<const NodeId> seeds,
                          double recovery_prob, int max_steps, Rng& rng);
size_t SimulateSisCascade(const GraphView& g, std::span<const NodeId> seeds,
                          double recovery_prob, int max_steps, Rng& rng);

}  // namespace privim

#endif  // PRIVIM_IM_DIFFUSION_H_
