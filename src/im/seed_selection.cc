#include "im/seed_selection.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "common/string_util.h"
#include "im/diffusion.h"

namespace privim {

namespace {

Status ValidateArgs(const std::vector<NodeId>& candidates, size_t k) {
  if (k == 0) return Status::InvalidArgument("seed budget k must be > 0");
  if (candidates.size() < k) {
    return Status::InvalidArgument(
        StrFormat("need at least k=%zu candidates, have %zu", k,
                  candidates.size()));
  }
  return Status::OK();
}

}  // namespace

Result<SeedSelection> CelfSelect(const std::vector<NodeId>& candidates,
                                 size_t k, const SpreadOracle& oracle) {
  PRIVIM_RETURN_NOT_OK(ValidateArgs(candidates, k));
  SeedSelection out;

  struct Entry {
    NodeId node;
    double gain;
    size_t round;  // Round the gain was last computed in.
  };
  // Ties break toward the smaller node id so CELF matches plain greedy's
  // first-maximum choice exactly (tested against GreedySelect).
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);

  // Initial marginal gains relative to the empty set.
  std::vector<NodeId> probe(1);
  for (NodeId v : candidates) {
    probe[0] = v;
    const double gain = oracle(probe);
    ++out.oracle_calls;
    heap.push(Entry{v, gain, 0});
  }

  double current_spread = 0.0;
  std::vector<NodeId> with_candidate;
  // Freshness invariant: a cached gain is valid iff it was computed against
  // the current seed set, i.e. entry.round == out.seeds.size(). The initial
  // gains above are computed against the empty set, so round counting must
  // start at 0 — starting at 1 would treat every fresh initial entry as
  // stale and burn at least one redundant oracle call per selection round.
  for (size_t round = 0; round < k; ++round) {
    for (;;) {
      Entry top = heap.top();
      heap.pop();
      if (top.round == round) {
        // Lazy evaluation: gain already fresh w.r.t. the current seed set.
        out.seeds.push_back(top.node);
        current_spread += top.gain;
        break;
      }
      with_candidate = out.seeds;
      with_candidate.push_back(top.node);
      const double spread = oracle(with_candidate);
      ++out.oracle_calls;
      top.gain = spread - current_spread;
      top.round = round;
      heap.push(top);
    }
  }
  out.spread = oracle(out.seeds);
  ++out.oracle_calls;
  return out;
}

Result<SeedSelection> GreedySelect(const std::vector<NodeId>& candidates,
                                   size_t k, const SpreadOracle& oracle) {
  PRIVIM_RETURN_NOT_OK(ValidateArgs(candidates, k));
  SeedSelection out;
  std::vector<uint8_t> used(candidates.size(), 0);
  double current_spread = 0.0;
  std::vector<NodeId> with_candidate;
  for (size_t round = 0; round < k; ++round) {
    double best_spread = -1.0;
    size_t best_idx = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      with_candidate = out.seeds;
      with_candidate.push_back(candidates[i]);
      const double spread = oracle(with_candidate);
      ++out.oracle_calls;
      // Ties break toward the smaller node id, so the selection is
      // invariant under candidate-order permutations and matches
      // CelfSelect's heap tie-break exactly (tested both ways).
      const bool better =
          best_idx == candidates.size() || spread > best_spread ||
          (spread == best_spread && candidates[i] < candidates[best_idx]);
      if (better) {
        best_spread = spread;
        best_idx = i;
      }
    }
    PRIVIM_CHECK_LT(best_idx, candidates.size());
    used[best_idx] = 1;
    out.seeds.push_back(candidates[best_idx]);
    current_spread = best_spread;
  }
  out.spread = current_spread;
  return out;
}

Result<SeedSelection> DegreeSelect(const Graph& g,
                                   const std::vector<NodeId>& candidates,
                                   size_t k, const SpreadOracle& oracle) {
  PRIVIM_RETURN_NOT_OK(ValidateArgs(candidates, k));
  std::vector<NodeId> sorted = candidates;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](NodeId a, NodeId b) {
                     return g.OutDegree(a) > g.OutDegree(b);
                   });
  SeedSelection out;
  out.seeds.assign(sorted.begin(), sorted.begin() + k);
  out.spread = oracle(out.seeds);
  out.oracle_calls = 1;
  return out;
}

Result<SeedSelection> RandomSelect(const std::vector<NodeId>& candidates,
                                   size_t k, const SpreadOracle& oracle,
                                   Rng& rng) {
  PRIVIM_RETURN_NOT_OK(ValidateArgs(candidates, k));
  std::vector<uint32_t> idx = rng.SampleWithoutReplacement(
      static_cast<uint32_t>(candidates.size()), static_cast<uint32_t>(k));
  SeedSelection out;
  out.seeds.reserve(k);
  for (uint32_t i : idx) out.seeds.push_back(candidates[i]);
  out.spread = oracle(out.seeds);
  out.oracle_calls = 1;
  return out;
}

Result<SeedSelection> TopKByScore(const std::vector<NodeId>& candidates,
                                  size_t k,
                                  const std::vector<double>& scores,
                                  const SpreadOracle& oracle) {
  PRIVIM_RETURN_NOT_OK(ValidateArgs(candidates, k));
  for (NodeId v : candidates) {
    if (v >= scores.size()) {
      return Status::OutOfRange(
          StrFormat("candidate %u has no score (scores size %zu)", v,
                    scores.size()));
    }
  }
  std::vector<NodeId> sorted = candidates;
  std::stable_sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
    return scores[a] > scores[b];
  });
  SeedSelection out;
  out.seeds.assign(sorted.begin(), sorted.begin() + k);
  out.spread = oracle(out.seeds);
  out.oracle_calls = 1;
  return out;
}

SpreadOracle MakeExactUnitOracle(const Graph& g, int steps) {
  return [&g, steps](const std::vector<NodeId>& seeds) {
    return static_cast<double>(ExactUnitWeightSpread(g, seeds, steps));
  };
}

Result<SpreadOracle> MakeMonteCarloOracle(const Graph& g, size_t trials,
                                          Rng& rng, int max_steps,
                                          size_t num_threads,
                                          MetricsRegistry* metrics) {
  if (trials == 0) {
    return Status::InvalidArgument("trials must be >= 1, got 0");
  }
  // The oracle owns a forked generator so repeated calls advance it, and a
  // workspace pool so the thousands of evaluations a CELF run makes reuse
  // the per-trial scratch instead of re-allocating it every call.
  auto shared_rng = std::make_shared<Rng>(rng.Fork());
  auto shared_ws = std::make_shared<WorkspacePool>();
  Counter* trial_counter =
      metrics != nullptr ? metrics->GetCounter("im.mc_trials") : nullptr;
  TimerStat* eval_timer =
      metrics != nullptr ? metrics->GetTimer("im.mc_eval") : nullptr;
  return SpreadOracle(
      [&g, trials, shared_rng, shared_ws, max_steps, num_threads,
       trial_counter, eval_timer](const std::vector<NodeId>& seeds) {
        ScopedTimer timer(eval_timer);
        if (trial_counter != nullptr) trial_counter->Add(trials);
        return EstimateIcSpread(g, seeds, trials, *shared_rng, max_steps,
                                num_threads, shared_ws.get());
      });
}

SpreadOracle InstrumentedOracle(SpreadOracle oracle,
                                MetricsRegistry* metrics) {
  if (metrics == nullptr) return oracle;
  Counter* calls = metrics->GetCounter("im.oracle_calls");
  TimerStat* eval_timer = metrics->GetTimer("im.oracle_eval");
  return [oracle = std::move(oracle), calls,
          eval_timer](const std::vector<NodeId>& seeds) {
    ScopedTimer timer(eval_timer);
    calls->Add(1);
    return oracle(seeds);
  };
}

Result<SpreadOracle> MakeLtOracle(const Graph& g, size_t trials, Rng& rng,
                                  int max_steps) {
  if (trials == 0) {
    return Status::InvalidArgument("trials must be >= 1, got 0");
  }
  auto shared_rng = std::make_shared<Rng>(rng.Fork());
  auto shared_ws = std::make_shared<Workspace>();
  return SpreadOracle([&g, trials, shared_rng, shared_ws, max_steps](
                          const std::vector<NodeId>& seeds) {
    double total = 0.0;
    for (size_t t = 0; t < trials; ++t) {
      total += static_cast<double>(
          SimulateLtCascade(g, seeds, *shared_rng, max_steps, *shared_ws));
    }
    return total / static_cast<double>(trials);
  });
}

Result<SpreadOracle> MakeSisOracle(const Graph& g, size_t trials,
                                   double recovery_prob, int max_steps,
                                   Rng& rng) {
  if (trials == 0) {
    return Status::InvalidArgument("trials must be >= 1, got 0");
  }
  if (!(recovery_prob > 0.0 && recovery_prob <= 1.0)) {
    return Status::InvalidArgument(StrFormat(
        "recovery_prob must be in (0, 1], got %g", recovery_prob));
  }
  if (max_steps < 1) {
    return Status::InvalidArgument(
        StrFormat("max_steps must be >= 1, got %d", max_steps));
  }
  auto shared_rng = std::make_shared<Rng>(rng.Fork());
  return SpreadOracle([&g, trials, shared_rng, recovery_prob, max_steps](
                          const std::vector<NodeId>& seeds) {
    double total = 0.0;
    for (size_t t = 0; t < trials; ++t) {
      total += static_cast<double>(SimulateSisCascade(
          g, seeds, recovery_prob, max_steps, *shared_rng));
    }
    return total / static_cast<double>(trials);
  });
}

}  // namespace privim
