#ifndef PRIVIM_IM_METRICS_H_
#define PRIVIM_IM_METRICS_H_

#include "common/logging.h"

namespace privim {

/// Coverage ratio (Section V-A): |V_method| / |V_CELF| * 100, in percent.
/// Returns 0 when the CELF reference spread is 0.
inline double CoverageRatioPercent(double method_spread,
                                   double celf_spread) {
  PRIVIM_CHECK_GE(method_spread, 0.0);
  PRIVIM_CHECK_GE(celf_spread, 0.0);
  if (celf_spread == 0.0) return 0.0;
  return 100.0 * method_spread / celf_spread;
}

}  // namespace privim

#endif  // PRIVIM_IM_METRICS_H_
