#include "im/rr_sets.h"

#include <algorithm>

#include "common/string_util.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_streams.h"
#include "runtime/runtime.h"
#include "runtime/scratch.h"

namespace privim {
namespace {

/// One reverse-BFS RR sample into ws.nodes. The view's in-edge merge
/// presents sources in the same ascending order as the compacted CSR row,
/// so the per-in-edge Bernoulli draw sequence — and therefore the set —
/// is bit-identical whether the view wraps a plain graph, an overlay, or
/// the overlay's compaction.
void BuildOneRrSet(const GraphView& g, size_t num_nodes, Rng& set_rng,
                   Workspace& ws) {
  const NodeId target = static_cast<NodeId>(set_rng.UniformInt(num_nodes));
  // Reverse BFS along *in*-edges; each edge is live independently with its
  // IC probability (deferred live-edge sampling). ws.nodes doubles as the
  // FIFO frontier, consumed through a cursor.
  ws.nodes.clear();
  ws.nodes.push_back(target);
  ws.visited.Reset(num_nodes);
  ws.visited.Insert(target);
  for (size_t cursor = 0; cursor < ws.nodes.size(); ++cursor) {
    const NodeId v = ws.nodes[cursor];
    g.ForEachInEdge(v, [&ws, &set_rng](NodeId u, float w) {
      if (!ws.visited.Contains(u) && set_rng.Bernoulli(w)) {
        ws.visited.Insert(u);
        ws.nodes.push_back(u);
      }
    });
  }
}

Status ValidateGenerateArgs(const GraphView& g, size_t count) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  if (count == 0) {
    return Status::InvalidArgument("RR set count must be positive");
  }
  if (!g.base().has_in_csr()) {
    return Status::FailedPrecondition(
        "RR-set generation walks in-edges; call Graph::EnsureInCsr() on "
        "graphs built without the in-CSR");
  }
  return Status::OK();
}

}  // namespace

Result<RrSketch> RrSketch::Generate(const Graph& g, size_t count, Rng& rng,
                                    size_t num_threads) {
  return Generate(GraphView(g), count, rng, num_threads);
}

Result<RrSketch> RrSketch::Generate(const GraphView& g, size_t count,
                                    Rng& rng, size_t num_threads) {
  // Validate before constructing the streams: the parent draw is consumed
  // only on (potential) success, as the pre-GraphView implementation did.
  PRIVIM_RETURN_NOT_OK(ValidateGenerateArgs(g, count));
  RngStreams streams(rng);
  return GenerateImpl(g, count, streams.base_key(), num_threads);
}

Result<RrSketch> RrSketch::Regenerate(const GraphView& g, size_t count,
                                      uint64_t stream_base,
                                      size_t num_threads) {
  return GenerateImpl(g, count, stream_base, num_threads);
}

Result<RrSketch> RrSketch::GenerateImpl(const GraphView& g, size_t count,
                                        uint64_t stream_base,
                                        size_t num_threads) {
  PRIVIM_RETURN_NOT_OK(ValidateGenerateArgs(g, count));
  RrSketch sketch;
  sketch.num_nodes_ = g.num_nodes();
  sketch.stream_base_ = stream_base;
  sketch.sets_.resize(count);

  // RR sets are independent given their child streams; the inverted index
  // is built serially in set order below, so the sketch is a pure function
  // of (graph, stream_base) regardless of the thread count.
  std::vector<uint32_t> all_sets(count);
  for (size_t s = 0; s < count; ++s) all_sets[s] = static_cast<uint32_t>(s);
  sketch.RebuildSets(g, all_sets, num_threads);
  sketch.RebuildInvertedIndex();
  return sketch;
}

void RrSketch::RebuildSets(const GraphView& g,
                           std::span<const uint32_t> set_ids,
                           size_t num_threads) {
  const RngStreams streams = RngStreams::FromBaseKey(stream_base_);
  const size_t threads = ResolveNumThreads(num_threads);
  ThreadPool* pool = SharedPool(threads);
  const size_t num_slots = pool == nullptr ? 1 : threads;
  // Epoch-stamped visited set per slot: the logical clear between RR sets
  // is O(1) instead of the O(n) re-zero that used to dominate small sets.
  WorkspacePool workspaces;
  workspaces.EnsureSlots(num_slots);
  const size_t num_nodes = g.num_nodes();

  ParallelForWithSlots(
      pool, 0, set_ids.size(), /*grain=*/8, num_slots,
      [&](size_t i, size_t slot) {
        const uint32_t s = set_ids[i];
        Rng set_rng = streams.Stream(s);
        Workspace& ws = workspaces.Acquire(slot);
        BuildOneRrSet(g, num_nodes, set_rng, ws);
        sets_[s].assign(ws.nodes.begin(), ws.nodes.end());
      });
}

void RrSketch::RebuildInvertedIndex() {
  node_to_sets_.assign(num_nodes_, {});
  for (size_t s = 0; s < sets_.size(); ++s) {
    for (NodeId u : sets_[s]) {
      node_to_sets_[u].push_back(static_cast<uint32_t>(s));
    }
  }
}

Result<size_t> RrSketch::Repair(const GraphView& g,
                                std::span<const NodeId> changed_in_rows,
                                size_t num_threads) {
  if (sets_.empty()) {
    return Status::FailedPrecondition("cannot repair an empty sketch");
  }
  if (g.num_nodes() != num_nodes_) {
    // Every set's target draw is UniformInt(num_nodes): a node-count
    // change shifts all of them, so the only stream-faithful repair is a
    // full rebuild from the original base key.
    Result<RrSketch> rebuilt =
        Regenerate(g, sets_.size(), stream_base_, num_threads);
    PRIVIM_RETURN_NOT_OK(rebuilt.status());
    *this = std::move(rebuilt).ValueOrDie();
    return sets_.size();
  }
  if (changed_in_rows.empty()) return size_t{0};

  std::vector<uint8_t> changed(num_nodes_, 0);
  for (NodeId v : changed_in_rows) {
    if (v >= num_nodes_) {
      return Status::OutOfRange(StrFormat(
          "changed in-row %u out of range for %zu nodes", v, num_nodes_));
    }
    changed[v] = 1;
  }
  // A set replays its draws identically unless it visited a node whose
  // in-row changed (rr_sets.h has the argument), so those are exactly the
  // sets to regenerate.
  std::vector<uint32_t> dirty;
  for (size_t s = 0; s < sets_.size(); ++s) {
    for (NodeId u : sets_[s]) {
      if (changed[u]) {
        dirty.push_back(static_cast<uint32_t>(s));
        break;
      }
    }
  }
  if (dirty.empty()) return size_t{0};
  RebuildSets(g, dirty, num_threads);
  RebuildInvertedIndex();
  return dirty.size();
}

double RrSketch::EstimateSpread(const std::vector<NodeId>& seeds) const {
  PRIVIM_CHECK_GT(sets_.size(), 0u);
  std::vector<uint8_t> covered(sets_.size(), 0);
  size_t hit = 0;
  for (NodeId s : seeds) {
    PRIVIM_CHECK_LT(s, num_nodes_);
    for (uint32_t set_id : node_to_sets_[s]) {
      if (!covered[set_id]) {
        covered[set_id] = 1;
        ++hit;
      }
    }
  }
  return static_cast<double>(num_nodes_) * static_cast<double>(hit) /
         static_cast<double>(sets_.size());
}

double RrSketch::EstimateSpread(std::span<const NodeId> seeds,
                                VisitedSet& covered) const {
  PRIVIM_CHECK_GT(sets_.size(), 0u);
  covered.Reset(sets_.size());
  size_t hit = 0;
  for (NodeId s : seeds) {
    PRIVIM_CHECK_LT(s, num_nodes_);
    for (uint32_t set_id : node_to_sets_[s]) {
      if (!covered.Contains(set_id)) {
        covered.Insert(set_id);
        ++hit;
      }
    }
  }
  return static_cast<double>(num_nodes_) * static_cast<double>(hit) /
         static_cast<double>(sets_.size());
}

Result<std::vector<NodeId>> RrSketch::SelectSeeds(size_t k) const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > num_nodes_) {
    return Status::InvalidArgument(
        StrFormat("k=%zu exceeds node count %zu", k, num_nodes_));
  }
  // Greedy max coverage with exact gain maintenance: gains[u] = number of
  // still-uncovered RR sets containing u.
  std::vector<size_t> gains(num_nodes_, 0);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    gains[u] = node_to_sets_[u].size();
  }
  std::vector<uint8_t> covered(sets_.size(), 0);
  std::vector<uint8_t> chosen(num_nodes_, 0);
  std::vector<NodeId> seeds;
  seeds.reserve(k);
  for (size_t round = 0; round < k; ++round) {
    NodeId best = 0;
    size_t best_gain = 0;
    bool found = false;
    for (NodeId u = 0; u < num_nodes_; ++u) {
      if (chosen[u]) continue;
      if (!found || gains[u] > best_gain) {
        best = u;
        best_gain = gains[u];
        found = true;
      }
    }
    PRIVIM_CHECK(found);
    chosen[best] = 1;
    seeds.push_back(best);
    // Cover best's sets and decrement every member's gain.
    for (uint32_t set_id : node_to_sets_[best]) {
      if (covered[set_id]) continue;
      covered[set_id] = 1;
      for (NodeId member : sets_[set_id]) {
        if (gains[member] > 0) --gains[member];
      }
    }
  }
  return seeds;
}

}  // namespace privim
