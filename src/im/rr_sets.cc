#include "im/rr_sets.h"

#include <algorithm>

#include "common/string_util.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_streams.h"
#include "runtime/runtime.h"
#include "runtime/scratch.h"

namespace privim {

Result<RrSketch> RrSketch::Generate(const Graph& g, size_t count, Rng& rng,
                                    size_t num_threads) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  if (count == 0) {
    return Status::InvalidArgument("RR set count must be positive");
  }
  if (!g.has_in_csr()) {
    return Status::FailedPrecondition(
        "RR-set generation walks in-edges; call Graph::EnsureInCsr() on "
        "graphs built without the in-CSR");
  }
  RrSketch sketch;
  sketch.num_nodes_ = g.num_nodes();
  sketch.sets_.resize(count);
  sketch.node_to_sets_.resize(g.num_nodes());

  // RR sets are independent given their child streams; the inverted index
  // is built serially in set order below, so the sketch is a pure function
  // of (graph, seed) regardless of the thread count.
  RngStreams streams(rng);
  const size_t threads = ResolveNumThreads(num_threads);
  ThreadPool* pool = SharedPool(threads);
  const size_t num_slots = pool == nullptr ? 1 : threads;
  // Epoch-stamped visited set per slot: the logical clear between RR sets
  // is O(1) instead of the O(n) re-zero that used to dominate small sets.
  WorkspacePool workspaces;
  workspaces.EnsureSlots(num_slots);

  ParallelForWithSlots(
      pool, 0, count, /*grain=*/8, num_slots,
      [&](size_t s, size_t slot) {
        Rng set_rng = streams.Stream(s);
        Workspace& ws = workspaces.Acquire(slot);
        const NodeId target =
            static_cast<NodeId>(set_rng.UniformInt(g.num_nodes()));
        // Reverse BFS along *in*-edges; each edge is live independently
        // with its IC probability (deferred live-edge sampling). ws.nodes
        // doubles as the FIFO frontier, consumed through a cursor.
        ws.nodes.clear();
        ws.nodes.push_back(target);
        ws.visited.Reset(g.num_nodes());
        ws.visited.Insert(target);
        for (size_t cursor = 0; cursor < ws.nodes.size(); ++cursor) {
          const NodeId v = ws.nodes[cursor];
          auto sources = g.InNeighbors(v);
          auto weights = g.InWeights(v);
          for (size_t i = 0; i < sources.size(); ++i) {
            const NodeId u = sources[i];
            if (!ws.visited.Contains(u) && set_rng.Bernoulli(weights[i])) {
              ws.visited.Insert(u);
              ws.nodes.push_back(u);
            }
          }
        }
        sketch.sets_[s].assign(ws.nodes.begin(), ws.nodes.end());
      });

  for (size_t s = 0; s < count; ++s) {
    for (NodeId u : sketch.sets_[s]) {
      sketch.node_to_sets_[u].push_back(static_cast<uint32_t>(s));
    }
  }
  return sketch;
}

double RrSketch::EstimateSpread(const std::vector<NodeId>& seeds) const {
  PRIVIM_CHECK_GT(sets_.size(), 0u);
  std::vector<uint8_t> covered(sets_.size(), 0);
  size_t hit = 0;
  for (NodeId s : seeds) {
    PRIVIM_CHECK_LT(s, num_nodes_);
    for (uint32_t set_id : node_to_sets_[s]) {
      if (!covered[set_id]) {
        covered[set_id] = 1;
        ++hit;
      }
    }
  }
  return static_cast<double>(num_nodes_) * static_cast<double>(hit) /
         static_cast<double>(sets_.size());
}

double RrSketch::EstimateSpread(std::span<const NodeId> seeds,
                                VisitedSet& covered) const {
  PRIVIM_CHECK_GT(sets_.size(), 0u);
  covered.Reset(sets_.size());
  size_t hit = 0;
  for (NodeId s : seeds) {
    PRIVIM_CHECK_LT(s, num_nodes_);
    for (uint32_t set_id : node_to_sets_[s]) {
      if (!covered.Contains(set_id)) {
        covered.Insert(set_id);
        ++hit;
      }
    }
  }
  return static_cast<double>(num_nodes_) * static_cast<double>(hit) /
         static_cast<double>(sets_.size());
}

Result<std::vector<NodeId>> RrSketch::SelectSeeds(size_t k) const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > num_nodes_) {
    return Status::InvalidArgument(
        StrFormat("k=%zu exceeds node count %zu", k, num_nodes_));
  }
  // Greedy max coverage with exact gain maintenance: gains[u] = number of
  // still-uncovered RR sets containing u.
  std::vector<size_t> gains(num_nodes_, 0);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    gains[u] = node_to_sets_[u].size();
  }
  std::vector<uint8_t> covered(sets_.size(), 0);
  std::vector<uint8_t> chosen(num_nodes_, 0);
  std::vector<NodeId> seeds;
  seeds.reserve(k);
  for (size_t round = 0; round < k; ++round) {
    NodeId best = 0;
    size_t best_gain = 0;
    bool found = false;
    for (NodeId u = 0; u < num_nodes_; ++u) {
      if (chosen[u]) continue;
      if (!found || gains[u] > best_gain) {
        best = u;
        best_gain = gains[u];
        found = true;
      }
    }
    PRIVIM_CHECK(found);
    chosen[best] = 1;
    seeds.push_back(best);
    // Cover best's sets and decrement every member's gain.
    for (uint32_t set_id : node_to_sets_[best]) {
      if (covered[set_id]) continue;
      covered[set_id] = 1;
      for (NodeId member : sets_[set_id]) {
        if (gains[member] > 0) --gains[member];
      }
    }
  }
  return seeds;
}

}  // namespace privim
