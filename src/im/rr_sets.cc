#include "im/rr_sets.h"

#include <algorithm>
#include <deque>

#include "common/string_util.h"

namespace privim {

Result<RrSketch> RrSketch::Generate(const Graph& g, size_t count,
                                    Rng& rng) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  if (count == 0) {
    return Status::InvalidArgument("RR set count must be positive");
  }
  RrSketch sketch;
  sketch.num_nodes_ = g.num_nodes();
  sketch.sets_.reserve(count);
  sketch.node_to_sets_.resize(g.num_nodes());

  std::vector<uint8_t> visited(g.num_nodes(), 0);
  std::deque<NodeId> queue;
  for (size_t s = 0; s < count; ++s) {
    const NodeId target =
        static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    // Reverse BFS along *in*-edges; each edge is live independently with
    // its IC probability (deferred live-edge sampling).
    std::vector<NodeId> rr{target};
    std::fill(visited.begin(), visited.end(), 0);
    visited[target] = 1;
    queue.clear();
    queue.push_back(target);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      auto sources = g.InNeighbors(v);
      auto weights = g.InWeights(v);
      for (size_t i = 0; i < sources.size(); ++i) {
        const NodeId u = sources[i];
        if (!visited[u] && rng.Bernoulli(weights[i])) {
          visited[u] = 1;
          rr.push_back(u);
          queue.push_back(u);
        }
      }
    }
    const uint32_t set_id = static_cast<uint32_t>(sketch.sets_.size());
    for (NodeId u : rr) sketch.node_to_sets_[u].push_back(set_id);
    sketch.sets_.push_back(std::move(rr));
  }
  return sketch;
}

double RrSketch::EstimateSpread(const std::vector<NodeId>& seeds) const {
  PRIVIM_CHECK_GT(sets_.size(), 0u);
  std::vector<uint8_t> covered(sets_.size(), 0);
  size_t hit = 0;
  for (NodeId s : seeds) {
    PRIVIM_CHECK_LT(s, num_nodes_);
    for (uint32_t set_id : node_to_sets_[s]) {
      if (!covered[set_id]) {
        covered[set_id] = 1;
        ++hit;
      }
    }
  }
  return static_cast<double>(num_nodes_) * static_cast<double>(hit) /
         static_cast<double>(sets_.size());
}

Result<std::vector<NodeId>> RrSketch::SelectSeeds(size_t k) const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > num_nodes_) {
    return Status::InvalidArgument(
        StrFormat("k=%zu exceeds node count %zu", k, num_nodes_));
  }
  // Greedy max coverage with exact gain maintenance: gains[u] = number of
  // still-uncovered RR sets containing u.
  std::vector<size_t> gains(num_nodes_, 0);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    gains[u] = node_to_sets_[u].size();
  }
  std::vector<uint8_t> covered(sets_.size(), 0);
  std::vector<uint8_t> chosen(num_nodes_, 0);
  std::vector<NodeId> seeds;
  seeds.reserve(k);
  for (size_t round = 0; round < k; ++round) {
    NodeId best = 0;
    size_t best_gain = 0;
    bool found = false;
    for (NodeId u = 0; u < num_nodes_; ++u) {
      if (chosen[u]) continue;
      if (!found || gains[u] > best_gain) {
        best = u;
        best_gain = gains[u];
        found = true;
      }
    }
    PRIVIM_CHECK(found);
    chosen[best] = 1;
    seeds.push_back(best);
    // Cover best's sets and decrement every member's gain.
    for (uint32_t set_id : node_to_sets_[best]) {
      if (covered[set_id]) continue;
      covered[set_id] = 1;
      for (NodeId member : sets_[set_id]) {
        if (gains[member] > 0) --gains[member];
      }
    }
  }
  return seeds;
}

}  // namespace privim
