#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace privim {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(delim, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

}  // namespace privim
