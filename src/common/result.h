#ifndef PRIVIM_COMMON_RESULT_H_
#define PRIVIM_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace privim {

/// A value-or-error outcome, the value-returning counterpart of `Status`.
///
/// Usage:
///   Result<Graph> r = LoadEdgeList(path);
///   if (!r.ok()) return r.status();
///   Graph g = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    PRIVIM_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    PRIVIM_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    PRIVIM_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T ValueOrDie() && {
    PRIVIM_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace privim

/// Assigns the value of a Result expression or propagates its error.
#define PRIVIM_CONCAT_INNER_(a, b) a##b
#define PRIVIM_CONCAT_(a, b) PRIVIM_CONCAT_INNER_(a, b)
#define PRIVIM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie()
#define PRIVIM_ASSIGN_OR_RETURN(lhs, expr) \
  PRIVIM_ASSIGN_OR_RETURN_IMPL_(           \
      PRIVIM_CONCAT_(_privim_result_, __LINE__), lhs, expr)

#endif  // PRIVIM_COMMON_RESULT_H_
