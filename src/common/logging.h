#ifndef PRIVIM_COMMON_LOGGING_H_
#define PRIVIM_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace privim {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level for PRIVIM_LOG; messages below it are dropped.
/// Defaults to kInfo, overridable via the PRIVIM_LOG_LEVEL env var (0-3).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates a log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage, but aborts the process on destruction. Used by CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows a streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace privim

#define PRIVIM_LOG(level)                                                   \
  if (::privim::LogLevel::k##level < ::privim::GetLogLevel()) {             \
  } else                                                                    \
    ::privim::internal::LogMessage(::privim::LogLevel::k##level, __FILE__,  \
                                   __LINE__)                                \
        .stream()

/// Aborts with a message if `condition` is false. Active in all build modes:
/// internal invariants in a DP library must never be silently violated.
#define PRIVIM_CHECK(condition)                                          \
  if (condition) {                                                       \
  } else                                                                 \
    ::privim::internal::FatalLogMessage(__FILE__, __LINE__, #condition)  \
        .stream()

#define PRIVIM_CHECK_EQ(a, b) PRIVIM_CHECK((a) == (b))
#define PRIVIM_CHECK_NE(a, b) PRIVIM_CHECK((a) != (b))
#define PRIVIM_CHECK_LT(a, b) PRIVIM_CHECK((a) < (b))
#define PRIVIM_CHECK_LE(a, b) PRIVIM_CHECK((a) <= (b))
#define PRIVIM_CHECK_GT(a, b) PRIVIM_CHECK((a) > (b))
#define PRIVIM_CHECK_GE(a, b) PRIVIM_CHECK((a) >= (b))

#endif  // PRIVIM_COMMON_LOGGING_H_
