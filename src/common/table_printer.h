#ifndef PRIVIM_COMMON_TABLE_PRINTER_H_
#define PRIVIM_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace privim {

/// Renders aligned, Markdown-compatible console tables. Used by the benchmark
/// harness to print rows in the same layout as the paper's tables/figures.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; it may have fewer cells than the header (padded).
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each double with `digits` decimals after a leading
  /// label cell.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits = 2);

  /// Writes the table, aligned, with a separator under the header.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace privim

#endif  // PRIVIM_COMMON_TABLE_PRINTER_H_
