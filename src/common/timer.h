#ifndef PRIVIM_COMMON_TIMER_H_
#define PRIVIM_COMMON_TIMER_H_

#include <chrono>

namespace privim {

/// Simple wall-clock stopwatch used by the efficiency benchmarks (Table III).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace privim

#endif  // PRIVIM_COMMON_TIMER_H_
