#ifndef PRIVIM_COMMON_STATUS_H_
#define PRIVIM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace privim {

/// Error categories used across the PrivIM public API.
///
/// Following the Arrow/RocksDB idiom, recoverable errors are reported through
/// `Status` / `Result<T>` return values rather than exceptions.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
  /// The operation was deliberately interrupted before completion (e.g. an
  /// armed fail point, src/ckpt/failpoint.h). Unlike the other codes this
  /// does not indicate a defect: partial state already committed to disk is
  /// valid and a resumed run continues from it.
  kAborted = 9,
  /// A bounded resource is at capacity and the operation was refused rather
  /// than queued unboundedly (e.g. a full serving RequestQueue,
  /// src/serve/request_queue.h). Transient by design: retrying after
  /// completed work has freed capacity is the expected reaction.
  kResourceExhausted = 10,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error outcome of an operation.
///
/// `Status` is cheap to copy in the success case (no allocation) and carries a
/// code plus a message otherwise. Functions that produce a value use
/// `Result<T>` (see result.h).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace privim

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define PRIVIM_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::privim::Status _privim_status = (expr);       \
    if (!_privim_status.ok()) return _privim_status; \
  } while (false)

#endif  // PRIVIM_COMMON_STATUS_H_
