#ifndef PRIVIM_COMMON_MATH_UTIL_H_
#define PRIVIM_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <span>
#include <vector>

namespace privim {

/// log(n choose k), computed with lgamma for numerical stability.
/// Requires 0 <= k <= n.
double LogBinomial(int64_t n, int64_t k);

/// log(sum_i exp(x_i)), stable. Returns -inf for an empty span.
double LogSumExp(std::span<const double> xs);

/// Probability density of the Gamma distribution at x (> 0) with shape
/// `beta` and scale `psi` (Eq. 11 of the paper). Returns 0 for x <= 0.
double GammaPdf(double x, double beta, double psi);

/// Numerically stable logistic sigmoid.
double Sigmoid(double x);

/// L2 norm of a vector.
double L2Norm(std::span<const float> xs);
double L2Norm(std::span<const double> xs);

/// Scales `xs` in place so its L2 norm is at most `bound` (DP-SGD clipping:
/// x <- x / max(1, ||x||/bound)). Returns the pre-clip norm.
double ClipL2(std::span<float> xs, double bound);

/// Mean of a vector; 0 for empty input.
double Mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 when fewer than 2 values.
double StdDev(std::span<const double> xs);

/// Simple ordinary least squares fit y = k*x + b. Requires xs.size() ==
/// ys.size() >= 2 and non-constant xs.
struct LinearFit {
  double k = 0.0;
  double b = 0.0;
};
LinearFit LeastSquares(std::span<const double> xs, std::span<const double> ys);

}  // namespace privim

#endif  // PRIVIM_COMMON_MATH_UTIL_H_
