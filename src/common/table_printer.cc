#include "common/table_printer.h"

#include <algorithm>

#include "common/string_util.h"

namespace privim {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, digits));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace privim
