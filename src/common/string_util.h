#ifndef PRIVIM_COMMON_STRING_UTIL_H_
#define PRIVIM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace privim {

/// Splits `text` on `delim`, dropping empty pieces.
std::vector<std::string> Split(std::string_view text, char delim);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits = 2);

}  // namespace privim

#endif  // PRIVIM_COMMON_STRING_UTIL_H_
