#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace privim {
namespace {

// glibc's lgamma writes the sign of Gamma(x) to the global `signgam`
// variable — a data race once per-shard accountants run concurrently on
// the overlap scheduler's stage threads. lgamma_r takes the sign slot as
// a parameter instead (glibc's lgamma is a wrapper around it, so the
// value bits are identical).
double LGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double LogBinomial(int64_t n, int64_t k) {
  PRIVIM_CHECK_GE(k, 0);
  PRIVIM_CHECK_LE(k, n);
  if (k == 0 || k == n) return 0.0;
  return LGamma(static_cast<double>(n) + 1.0) -
         LGamma(static_cast<double>(k) + 1.0) -
         LGamma(static_cast<double>(n - k) + 1.0);
}

double LogSumExp(std::span<const double> xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  for (double x : xs) max_x = std::max(max_x, x);
  if (!std::isfinite(max_x)) return max_x;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - max_x);
  return max_x + std::log(sum);
}

double GammaPdf(double x, double beta, double psi) {
  PRIVIM_CHECK_GT(beta, 0.0);
  PRIVIM_CHECK_GT(psi, 0.0);
  if (x <= 0.0) return 0.0;
  // Evaluate in log space to dodge overflow for large shape parameters.
  const double log_pdf = (beta - 1.0) * std::log(x) - x / psi -
                         beta * std::log(psi) - LGamma(beta);
  return std::exp(log_pdf);
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double L2Norm(std::span<const float> xs) {
  double sum = 0.0;
  for (float x : xs) sum += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(sum);
}

double L2Norm(std::span<const double> xs) {
  double sum = 0.0;
  for (double x : xs) sum += x * x;
  return std::sqrt(sum);
}

double ClipL2(std::span<float> xs, double bound) {
  PRIVIM_CHECK_GT(bound, 0.0);
  const double norm = L2Norm(std::span<const float>(xs.data(), xs.size()));
  if (norm > bound) {
    const float scale = static_cast<float>(bound / norm);
    for (float& x : xs) x *= scale;
  }
  return norm;
}

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

LinearFit LeastSquares(std::span<const double> xs,
                       std::span<const double> ys) {
  PRIVIM_CHECK_EQ(xs.size(), ys.size());
  PRIVIM_CHECK_GE(xs.size(), 2u);
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  PRIVIM_CHECK_GT(std::abs(denom), 1e-12) << "constant x in LeastSquares";
  LinearFit fit;
  fit.k = (n * sxy - sx * sy) / denom;
  fit.b = (sy - fit.k * sx) / n;
  return fit;
}

}  // namespace privim
