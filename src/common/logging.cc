#include "common/logging.h"

#include <atomic>

namespace privim {

namespace {

std::atomic<int> g_log_level{-1};

int InitialLogLevel() {
  const char* env = std::getenv("PRIVIM_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) return v;
  }
  return static_cast<int>(LogLevel::kInfo);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  int v = g_log_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitialLogLevel();
    g_log_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  (void)level_;
  stream_ << "\n";
  std::cerr << stream_.str();
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace privim
