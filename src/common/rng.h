#ifndef PRIVIM_COMMON_RNG_H_
#define PRIVIM_COMMON_RNG_H_

#include <cstdint>
#include <span>
#include <vector>

namespace privim {

/// The complete serializable state of an `Rng`: the four xoshiro256** words
/// plus the cached Box-Muller spare. Restoring a saved state resumes the
/// exact draw sequence — including a pending Gaussian half-pair — which is
/// what makes checkpointed runs bit-identical after resume (src/ckpt/).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  double gauss_spare = 0.0;
  bool has_gauss_spare = false;

  bool operator==(const RngState&) const = default;
};

/// SplitMix64 — used for seeding and as a simple stateless mixer.
///
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014). Deterministic across platforms.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

/// Deterministic pseudo-random generator (xoshiro256**) with the sampling
/// helpers needed throughout PrivIM.
///
/// Every randomized component in the library (graph generators, samplers,
/// DP noise, training) receives an `Rng` explicitly, so whole experiments are
/// reproducible from one master seed.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 uniform random bits.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t UniformInt(uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via the Box-Muller transform (deterministic, no
  /// dependence on libstdc++'s unspecified distribution algorithms).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with rate `lambda` (mean 1/lambda).
  double Exponential(double lambda = 1.0);

  /// Laplace with location 0 and the given scale b.
  double Laplace(double scale);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive weights are treated as 0. Returns weights.size() if the
  /// total weight is not strictly positive (caller must handle).
  size_t Discrete(std::span<const double> weights);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap(items[i], items[j]);
    }
  }

  /// Samples `k` distinct values from [0, n) without replacement
  /// (Floyd's algorithm). Requires k <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Derives an independent child generator; handy for giving each component
  /// of an experiment its own stream.
  Rng Fork();

  /// Counter-derived child stream: an independent generator keyed by
  /// `stream_id`. Consumes exactly one draw of this generator's state, so
  /// Split(0), Split(1), ... produce mutually independent streams AND
  /// leave the parent at a position that depends only on how many times
  /// Split was called — the backbone of the runtime's determinism
  /// contract (see runtime/rng_streams.h for the zero-consumption batch
  /// variant used inside parallel loops).
  Rng Split(uint64_t stream_id);

  /// Pure-function child derivation: the generator for stream `stream_id`
  /// under `base_key`. Same inputs, same stream — on any thread.
  static Rng FromStreamKey(uint64_t base_key, uint64_t stream_id);

  /// Snapshot of the full generator state (checkpointing).
  RngState SaveState() const;

  /// Overwrites the generator with a previously saved state; the next draw
  /// continues the captured sequence exactly.
  void RestoreState(const RngState& state);

  /// A generator positioned at `state` (RestoreState as a factory).
  static Rng FromState(const RngState& state);

 private:
  uint64_t s_[4];
  // Cached second output of Box-Muller.
  double gauss_spare_ = 0.0;
  bool has_gauss_spare_ = false;
};

}  // namespace privim

#endif  // PRIVIM_COMMON_RNG_H_
