#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

#include "common/logging.h"

namespace privim {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
  // All-zero state would be degenerate for xoshiro; SplitMix64 makes this
  // astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  PRIVIM_CHECK_GT(n, 0u);
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Gaussian() {
  if (has_gauss_spare_) {
    has_gauss_spare_ = false;
    return gauss_spare_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  gauss_spare_ = radius * std::sin(angle);
  has_gauss_spare_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  PRIVIM_CHECK_GT(lambda, 0.0);
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::Laplace(double scale) {
  PRIVIM_CHECK_GT(scale, 0.0);
  const double u = Uniform() - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

size_t Rng::Discrete(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return weights.size();
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size();
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  PRIVIM_CHECK_LE(k, n);
  std::unordered_set<uint32_t> chosen;
  std::vector<uint32_t> out;
  out.reserve(k);
  // Floyd's algorithm: k iterations regardless of n.
  for (uint32_t j = n - k; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(UniformInt(j + 1));
    if (chosen.contains(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

Rng Rng::Split(uint64_t stream_id) {
  return FromStreamKey(NextUint64(), stream_id);
}

RngState Rng::SaveState() const {
  RngState state;
  for (size_t i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.gauss_spare = gauss_spare_;
  state.has_gauss_spare = has_gauss_spare_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  // All-zero xoshiro state is degenerate (the sequence is constant zero);
  // it can only come from a hand-built or corrupted RngState, never from
  // SaveState of a live generator.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  gauss_spare_ = state.gauss_spare;
  has_gauss_spare_ = state.has_gauss_spare;
}

Rng Rng::FromState(const RngState& state) {
  Rng rng(0);
  rng.RestoreState(state);
  return rng;
}

Rng Rng::FromStreamKey(uint64_t base_key, uint64_t stream_id) {
  // Weyl-step the key by the stream id (golden-ratio increment, as in
  // SplitMix64 itself) and run one full mixing round. The first SplitMix64
  // output is a bijection of its seed, so distinct (key, id) pairs can
  // never collapse to the same child seed for a fixed key.
  SplitMix64 mixer(base_key ^
                   ((stream_id + 1) * 0x9e3779b97f4a7c15ULL));
  return Rng(mixer.Next());
}

}  // namespace privim
