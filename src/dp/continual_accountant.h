#ifndef PRIVIM_DP_CONTINUAL_ACCOUNTANT_H_
#define PRIVIM_DP_CONTINUAL_ACCOUNTANT_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "dp/privacy_params.h"
#include "dp/rdp_accountant.h"

namespace privim {

/// Privacy composition across retraining rounds under continual
/// observation (docs/streaming.md).
///
/// A streaming deployment retrains the DP-GNN every time the graph drifts
/// far enough, and every retrained model is *released* (served). The
/// privacy cost of the whole released sequence therefore composes: each
/// round r runs DpSgdSpec_r iterations of the subsampled Gaussian
/// mechanism, each (alpha, gamma_r(alpha))-RDP per iteration (Theorem 3),
/// and RDP composes additively at fixed alpha across rounds exactly as it
/// does across iterations within a round (Definition 5). The cumulative
/// guarantee after round r is then the Theorem 1 conversion of the summed
/// gamma, minimized over the alpha grid:
///
///   eps_cum(r) = min_alpha RdpToEpsilon(alpha,
///                    sum_{j<=r} gamma_j(alpha) * T_j, delta).
///
/// Because every gamma_j is nonnegative, the per-alpha sums are
/// nondecreasing in r, and a min over nondecreasing curves is
/// nondecreasing: the cumulative epsilon NEVER decreases across rounds.
/// Summing at the RDP level (rather than summing the per-round epsilons)
/// is also strictly tighter than naive sequential composition — the same
/// reason the per-iteration ledger converts once at the end.
///
/// The accountant never resets: ResetBase/compaction/model swaps on the
/// serving side do not touch it, and the checkpoint round-trips its full
/// per-alpha state so a resumed stream continues the same curve
/// bit-identically.
class ContinualAccountant {
 public:
  /// One retraining round's ledger row.
  struct Round {
    DpSgdSpec spec;
    double sigma = 0.0;
    /// Epsilon this round would cost in isolation (min over alpha of its
    /// own converted gamma) — the "marginal" column of the ledger.
    double round_epsilon = 0.0;
    /// Epsilon of the whole released sequence up to and including this
    /// round. Nondecreasing across rounds by construction.
    double cumulative_epsilon = 0.0;

    bool operator==(const Round&) const = default;
  };

  /// Serializable snapshot (src/ckpt/stream_state.*): the per-alpha gamma
  /// sums are the irreducible state — cumulative epsilons alone could not
  /// extend the composition.
  struct State {
    double delta = 1e-5;
    std::vector<double> gamma_totals;
    std::vector<Round> rounds;
  };

  /// `delta` is the target delta of every conversion; fixed for the
  /// accountant's lifetime (mixing deltas across rounds would make the
  /// ledger rows incomparable).
  explicit ContinualAccountant(double delta);

  /// Restores from a checkpointed snapshot. Fails if the snapshot's
  /// per-alpha vector does not match the current alpha grid.
  static Result<ContinualAccountant> FromState(const State& state);
  State ToState() const;

  /// Accounts one retraining round: accumulates `spec.iterations` steps of
  /// the (spec, sigma) mechanism into the per-alpha totals and appends a
  /// ledger row. Fails when the spec is invalid (RdpAccountant::Create) or
  /// when no alpha yields a finite cumulative gamma.
  Result<Round> AddRound(const DpSgdSpec& spec, double sigma);

  /// Cumulative epsilon after the last accounted round (0 before any).
  double CumulativeEpsilon() const;

  size_t num_rounds() const { return rounds_.size(); }
  const std::vector<Round>& rounds() const { return rounds_; }
  double delta() const { return delta_; }

 private:
  double delta_;
  /// gamma_totals_[i] = sum over rounds of gamma(alpha_i) * iterations,
  /// aligned with RdpAccountant::AlphaGrid().
  std::vector<double> gamma_totals_;
  std::vector<Round> rounds_;
};

}  // namespace privim

#endif  // PRIVIM_DP_CONTINUAL_ACCOUNTANT_H_
