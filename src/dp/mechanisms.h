#ifndef PRIVIM_DP_MECHANISMS_H_
#define PRIVIM_DP_MECHANISMS_H_

#include <span>

#include "common/rng.h"

namespace privim {

/// Adds i.i.d. Gaussian noise N(0, stddev^2) to every coordinate of `data`
/// (the Gaussian mechanism; Algorithm 2, Line 8 uses
/// stddev = sigma * Delta_g).
void AddGaussianNoise(std::span<float> data, double stddev, Rng& rng);

/// Adds Symmetric Multivariate Laplace (SML) noise as used by the HP
/// baseline (Xiang et al., S&P 2024): a single sample of sqrt(W) * N(0, I)
/// with W ~ Exp(1), scaled by `scale`. Heavier tails than Gaussian.
void AddSymmetricMultivariateLaplaceNoise(std::span<float> data, double scale,
                                          Rng& rng);

/// Adds independent Laplace(scale) noise per coordinate (classical Laplace
/// mechanism, used in Example 2's infeasibility demonstration).
void AddLaplaceNoise(std::span<float> data, double scale, Rng& rng);

}  // namespace privim

#endif  // PRIVIM_DP_MECHANISMS_H_
