#ifndef PRIVIM_DP_PRIVACY_PARAMS_H_
#define PRIVIM_DP_PRIVACY_PARAMS_H_

#include <cstddef>

namespace privim {

/// Target privacy guarantee for a training run.
struct PrivacyBudget {
  /// Target epsilon of the final (epsilon, delta)-DP guarantee. An
  /// infinite/huge value (see kNonPrivateEpsilon) disables noise.
  double epsilon = 1.0;
  /// Target delta; the paper uses delta < 1/|V_train|.
  double delta = 1e-5;
};

/// Epsilon value used to denote the non-private configuration.
inline constexpr double kNonPrivateEpsilon = 1e9;

/// Everything the accountant needs to know about one DP-SGD run
/// (Algorithm 2 + Theorem 3).
struct DpSgdSpec {
  /// Upper bound on any node's occurrences across the subgraph container
  /// (Lemma 1's N_g, or the dual-stage scheme's N_g* = M).
  size_t max_occurrences = 1;
  /// Number of subgraphs in the container (|G_sub| = m).
  size_t container_size = 1;
  /// Batch size B (subgraphs per iteration).
  size_t batch_size = 1;
  /// Number of iterations T.
  size_t iterations = 1;
  /// Per-sample L2 clip bound C.
  double clip_bound = 1.0;

  /// Field-wise equality (checkpoint round-trip assertions, src/ckpt/).
  bool operator==(const DpSgdSpec&) const = default;
};

}  // namespace privim

#endif  // PRIVIM_DP_PRIVACY_PARAMS_H_
