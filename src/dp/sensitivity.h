#ifndef PRIVIM_DP_SENSITIVITY_H_
#define PRIVIM_DP_SENSITIVITY_H_

#include <cstddef>

namespace privim {

/// Lemma 1: upper bound on any node's occurrences across subgraphs
/// extracted by Algorithm 1 with maximum in-degree `theta` and an r-layer
/// GNN: N_g = sum_{i=0..r} theta^i. Saturates (returns SIZE_MAX) on
/// overflow for pathological inputs.
size_t OccurrenceBoundNaive(size_t theta, size_t r);

/// Lemma 2: node-level L2 sensitivity of the summed clipped per-subgraph
/// gradients: Delta_g = C * N_g.
double NodeSensitivity(double clip_bound, size_t occurrence_bound);

}  // namespace privim

#endif  // PRIVIM_DP_SENSITIVITY_H_
