#include "dp/continual_accountant.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace privim {
namespace {

/// Min over the alpha grid of the Theorem 1 conversion of per-alpha gamma
/// totals; +inf when no entry is finite.
double ConvertOrInfinity(const std::vector<double>& gamma_totals,
                         double delta) {
  const std::vector<double>& grid = RdpAccountant::AlphaGrid();
  double best = std::numeric_limits<double>::infinity();
  for (size_t a = 0; a < grid.size(); ++a) {
    if (!std::isfinite(gamma_totals[a])) continue;
    best = std::min(best, RdpToEpsilon(grid[a], gamma_totals[a], delta));
  }
  return best;
}

}  // namespace

ContinualAccountant::ContinualAccountant(double delta) : delta_(delta) {
  PRIVIM_CHECK_GT(delta, 0.0);
  gamma_totals_.assign(RdpAccountant::AlphaGrid().size(), 0.0);
}

Result<ContinualAccountant> ContinualAccountant::FromState(
    const State& state) {
  if (state.gamma_totals.size() != RdpAccountant::AlphaGrid().size()) {
    return Status::InvalidArgument(StrFormat(
        "continual-accountant snapshot has %zu per-alpha totals, the "
        "alpha grid has %zu entries — the snapshot was written by an "
        "incompatible accountant",
        state.gamma_totals.size(), RdpAccountant::AlphaGrid().size()));
  }
  if (state.delta <= 0.0) {
    return Status::InvalidArgument(
        StrFormat("continual-accountant snapshot delta %g <= 0",
                  state.delta));
  }
  ContinualAccountant acct(state.delta);
  acct.gamma_totals_ = state.gamma_totals;
  acct.rounds_ = state.rounds;
  return acct;
}

ContinualAccountant::State ContinualAccountant::ToState() const {
  return State{delta_, gamma_totals_, rounds_};
}

Result<ContinualAccountant::Round> ContinualAccountant::AddRound(
    const DpSgdSpec& spec, double sigma) {
  if (!(sigma > 0.0)) {
    return Status::InvalidArgument(
        StrFormat("noise multiplier %g must be positive", sigma));
  }
  Result<RdpAccountant> acct = RdpAccountant::Create(spec);
  PRIVIM_RETURN_NOT_OK(acct.status());

  // This round's per-alpha cost over its T iterations, and its standalone
  // conversion (the ledger's marginal column).
  const std::vector<double>& grid = RdpAccountant::AlphaGrid();
  const double t = static_cast<double>(spec.iterations);
  std::vector<double> round_gammas(grid.size());
  for (size_t a = 0; a < grid.size(); ++a) {
    round_gammas[a] =
        acct.ValueOrDie().GammaPerIteration(grid[a], sigma) * t;
  }
  const double round_eps = ConvertOrInfinity(round_gammas, delta_);

  // Accumulate, then convert the accumulated totals — RDP composes
  // additively at fixed alpha, and converting the sums (instead of
  // summing converted epsilons) keeps the cumulative curve tight AND
  // monotone: every addend is >= 0, so each per-alpha total only grows.
  std::vector<double> new_totals(grid.size());
  for (size_t a = 0; a < grid.size(); ++a) {
    new_totals[a] = gamma_totals_[a] + round_gammas[a];
  }
  const double cumulative = ConvertOrInfinity(new_totals, delta_);
  if (!std::isfinite(cumulative)) {
    return Status::FailedPrecondition(StrFormat(
        "no finite cumulative epsilon after round %zu at sigma=%g, "
        "delta=%g: every alpha in the grid yields a non-finite RDP gamma",
        rounds_.size(), sigma, delta_));
  }
  gamma_totals_ = std::move(new_totals);
  Round round{spec, sigma, round_eps, cumulative};
  rounds_.push_back(round);
  return round;
}

double ContinualAccountant::CumulativeEpsilon() const {
  return rounds_.empty() ? 0.0 : rounds_.back().cumulative_epsilon;
}

}  // namespace privim
