#include "dp/sensitivity.h"

#include <cstdint>
#include <limits>

#include "common/logging.h"

namespace privim {

size_t OccurrenceBoundNaive(size_t theta, size_t r) {
  PRIVIM_CHECK_GE(theta, 1u);
  // N_g = 1 + theta + theta^2 + ... + theta^r, with overflow saturation.
  size_t total = 0;
  size_t term = 1;
  for (size_t i = 0; i <= r; ++i) {
    if (total > std::numeric_limits<size_t>::max() - term) {
      return std::numeric_limits<size_t>::max();
    }
    total += term;
    if (i < r) {
      if (theta != 0 &&
          term > std::numeric_limits<size_t>::max() / theta) {
        return std::numeric_limits<size_t>::max();
      }
      term *= theta;
    }
  }
  return total;
}

double NodeSensitivity(double clip_bound, size_t occurrence_bound) {
  PRIVIM_CHECK_GT(clip_bound, 0.0);
  PRIVIM_CHECK_GE(occurrence_bound, 1u);
  return clip_bound * static_cast<double>(occurrence_bound);
}

}  // namespace privim
