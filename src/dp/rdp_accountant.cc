#include "dp/rdp_accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "common/string_util.h"

namespace privim {

double RdpToEpsilon(double alpha, double gamma, double delta) {
  PRIVIM_CHECK_GT(alpha, 1.0);
  PRIVIM_CHECK_GT(delta, 0.0);
  return gamma + std::log((alpha - 1.0) / alpha) -
         (std::log(delta) + std::log(alpha)) / (alpha - 1.0);
}

const std::vector<double>& RdpAccountant::AlphaGrid() {
  static const std::vector<double>& grid = *new std::vector<double>([] {
    std::vector<double> g;
    for (double a = 1.25; a < 2.0; a += 0.25) g.push_back(a);
    for (int a = 2; a <= 64; ++a) g.push_back(static_cast<double>(a));
    for (double a = 72; a <= 512; a *= 1.25) g.push_back(a);
    return g;
  }());
  return grid;
}

Result<RdpAccountant> RdpAccountant::Create(const DpSgdSpec& spec) {
  if (spec.max_occurrences == 0 || spec.container_size == 0 ||
      spec.batch_size == 0 || spec.iterations == 0) {
    return Status::InvalidArgument("DpSgdSpec counts must be positive");
  }
  if (spec.max_occurrences > spec.container_size) {
    return Status::InvalidArgument(StrFormat(
        "occurrence bound N_g=%zu exceeds container size m=%zu",
        spec.max_occurrences, spec.container_size));
  }
  if (spec.batch_size > spec.container_size) {
    return Status::InvalidArgument(
        StrFormat("batch size B=%zu exceeds container size m=%zu",
                  spec.batch_size, spec.container_size));
  }
  if (spec.clip_bound <= 0.0) {
    return Status::InvalidArgument("clip bound must be positive");
  }
  return RdpAccountant(spec);
}

RdpAccountant::RdpAccountant(const DpSgdSpec& spec) : spec_(spec) {
  // rho ~ Binomial(B, N_g/m); support truncated to i <= min(N_g, B) per
  // Theorem 3 (a node can affect at most N_g subgraphs in the batch).
  const double p = static_cast<double>(spec_.max_occurrences) /
                   static_cast<double>(spec_.container_size);
  const int64_t b = static_cast<int64_t>(spec_.batch_size);
  const int64_t i_max = std::min<int64_t>(
      static_cast<int64_t>(spec_.max_occurrences), b);
  log_rho_.resize(static_cast<size_t>(i_max) + 1);
  const double log_p = std::log(p);
  const double log_1mp = p < 1.0 ? std::log1p(-p)
                                 : -std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i <= i_max; ++i) {
    double lp = LogBinomial(b, i);
    if (i > 0) lp += static_cast<double>(i) * log_p;
    if (b - i > 0) lp += static_cast<double>(b - i) * log_1mp;
    log_rho_[static_cast<size_t>(i)] = lp;
  }
  // When B > N_g the binomial has mass beyond i = N_g, but a node affects
  // at most N_g subgraphs in total; lump the residual tail into the
  // worst-case bucket i = N_g so the mixture stays a probability
  // distribution and the bound stays conservative (Theorem 3 as written
  // silently drops this mass, which would make gamma negative for large
  // sigma).
  if (b > i_max) {
    const double log_tail_complement = LogSumExp(log_rho_);
    if (log_tail_complement < 0.0) {
      const double tail = -std::expm1(log_tail_complement);
      if (tail > 0.0) {
        log_rho_.back() = LogSumExp(std::vector<double>{
            log_rho_.back(), std::log(tail)});
      }
    }
  }
}

double RdpAccountant::GammaPerIteration(double alpha, double sigma) const {
  PRIVIM_CHECK_GT(alpha, 1.0);
  PRIVIM_CHECK_GT(sigma, 0.0);
  const double ng = static_cast<double>(spec_.max_occurrences);
  std::vector<double> terms(log_rho_.size());
  for (size_t i = 0; i < log_rho_.size(); ++i) {
    const double di = static_cast<double>(i);
    // Shift of the summed gradient when the changed node affects i batch
    // subgraphs is i*C; with noise stddev sigma*C*N_g this contributes
    // alpha * (i/N_g)^2 / (2 sigma^2) in Renyi divergence (Lemma 5), hence
    // exp(alpha(alpha-1) i^2 / (2 N_g^2 sigma^2)) inside the mixture bound
    // (Lemma 6).
    terms[i] = log_rho_[i] +
               alpha * (alpha - 1.0) * di * di /
                   (2.0 * ng * ng * sigma * sigma);
  }
  return LogSumExp(terms) / (alpha - 1.0);
}

double RdpAccountant::EpsilonOrInfinity(double sigma, double delta) const {
  double best = std::numeric_limits<double>::infinity();
  const double t = static_cast<double>(spec_.iterations);
  for (double alpha : AlphaGrid()) {
    const double gamma = GammaPerIteration(alpha, sigma);
    if (!std::isfinite(gamma)) continue;
    const double eps = RdpToEpsilon(alpha, gamma * t, delta);
    best = std::min(best, eps);
  }
  return best;
}

Result<double> RdpAccountant::Epsilon(double sigma, double delta) const {
  const double eps = EpsilonOrInfinity(sigma, delta);
  if (!std::isfinite(eps)) {
    return Status::FailedPrecondition(StrFormat(
        "no finite epsilon at sigma=%g, delta=%g: every alpha in the grid "
        "yields a non-finite RDP gamma (degenerate noise multiplier or "
        "sampling spec)",
        sigma, delta));
  }
  return eps;
}

Result<std::vector<double>> RdpAccountant::EpsilonLedger(
    double sigma, double delta) const {
  // Gammas depend only on (alpha, sigma); composition scales them by the
  // iteration count. Computing the grid once and re-converting per t keeps
  // the ledger O(T * |grid|) with T trivially small.
  const std::vector<double>& grid = AlphaGrid();
  std::vector<double> gammas(grid.size());
  bool any_finite = false;
  for (size_t a = 0; a < grid.size(); ++a) {
    gammas[a] = GammaPerIteration(grid[a], sigma);
    any_finite = any_finite || std::isfinite(gammas[a]);
  }
  if (!any_finite) {
    return Status::FailedPrecondition(StrFormat(
        "no finite epsilon ledger at sigma=%g, delta=%g: every alpha in "
        "the grid yields a non-finite RDP gamma",
        sigma, delta));
  }
  std::vector<double> ledger(spec_.iterations);
  for (size_t t = 1; t <= spec_.iterations; ++t) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < grid.size(); ++a) {
      if (!std::isfinite(gammas[a])) continue;
      best = std::min(best, RdpToEpsilon(grid[a],
                                         gammas[a] * static_cast<double>(t),
                                         delta));
    }
    ledger[t - 1] = best;
  }
  return ledger;
}

Result<double> RdpAccountant::CalibrateSigma(
    const PrivacyBudget& budget) const {
  if (budget.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (budget.delta <= 0.0 || budget.delta >= 1.0) {
    return Status::InvalidArgument("delta must lie in (0,1)");
  }
  // Epsilon(sigma) is decreasing in sigma. Bracket then bisect. The search
  // deliberately uses the infinity-returning variant: a non-finite epsilon
  // at small sigma just means "keep expanding the bracket", and only a
  // bracket that never closes is an error — which is reported loudly
  // instead of letting a silent +inf masquerade as a calibration.
  double lo = 1e-3;
  double hi = 1.0;
  int expansions = 0;
  while (EpsilonOrInfinity(hi, budget.delta) > budget.epsilon) {
    hi *= 2.0;
    if (++expansions > 60) {
      return Status::Internal(StrFormat(
          "sigma calibration failed to bracket epsilon=%g, delta=%g: even "
          "sigma=%g spends more than the target (unreachable budget for "
          "this spec)",
          budget.epsilon, budget.delta, hi));
    }
  }
  if (EpsilonOrInfinity(lo, budget.delta) <= budget.epsilon) {
    return lo;  // Even minimal noise meets the target.
  }
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (EpsilonOrInfinity(mid, budget.delta) > budget.epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace privim
