#include "dp/mechanisms.h"

#include <cmath>

#include "common/logging.h"

namespace privim {

void AddGaussianNoise(std::span<float> data, double stddev, Rng& rng) {
  PRIVIM_CHECK_GE(stddev, 0.0);
  if (stddev == 0.0) return;
  for (float& x : data) {
    x += static_cast<float>(rng.Gaussian(0.0, stddev));
  }
}

void AddSymmetricMultivariateLaplaceNoise(std::span<float> data, double scale,
                                          Rng& rng) {
  PRIVIM_CHECK_GE(scale, 0.0);
  if (scale == 0.0) return;
  // SML is a Gaussian scale mixture: X = sqrt(W) * Z, W ~ Exp(1),
  // Z ~ N(0, I). One W per vector draw keeps coordinates exchangeable.
  const double w = rng.Exponential(1.0);
  const double s = scale * std::sqrt(w);
  for (float& x : data) {
    x += static_cast<float>(rng.Gaussian(0.0, s));
  }
}

void AddLaplaceNoise(std::span<float> data, double scale, Rng& rng) {
  PRIVIM_CHECK_GE(scale, 0.0);
  if (scale == 0.0) return;
  for (float& x : data) {
    x += static_cast<float>(rng.Laplace(scale));
  }
}

}  // namespace privim
