#ifndef PRIVIM_DP_RDP_ACCOUNTANT_H_
#define PRIVIM_DP_RDP_ACCOUNTANT_H_

#include <vector>

#include "common/result.h"
#include "dp/privacy_params.h"

namespace privim {

/// RDP accountant for PrivIM's binomially-subsampled Gaussian mechanism.
///
/// Implements the paper's Theorem 3: with a subgraph container of size m,
/// batch size B, per-node occurrence bound N_g, and noise multiplier sigma,
/// each iteration of Algorithm 2 satisfies (alpha, gamma)-RDP with
///
///   gamma = 1/(alpha-1) * log( sum_{i=0..N_g} rho_i *
///                              exp(alpha(alpha-1) i^2 / (2 N_g^2 sigma^2)) )
///   rho_i = Binomial(B, N_g/m) pmf at i,
///
/// composed linearly over T iterations (Definition 5), then converted to
/// (epsilon, delta)-DP via Theorem 1.
class RdpAccountant {
 public:
  /// `spec` fixes everything except sigma. Fails if N_g > m or B > m (the
  /// binomial mixture is undefined) or any count is zero.
  static Result<RdpAccountant> Create(const DpSgdSpec& spec);

  /// Per-iteration RDP gamma at order `alpha` (> 1) for noise multiplier
  /// `sigma` (> 0): Theorem 3's formula, evaluated in log space.
  double GammaPerIteration(double alpha, double sigma) const;

  /// Epsilon of the (epsilon, delta)-DP guarantee after `iterations()`
  /// steps at noise multiplier `sigma`, minimized over the alpha grid
  /// (Theorem 1 conversion). Fails with FailedPrecondition when no alpha
  /// in the grid yields a finite gamma (degenerate spec/sigma) — callers
  /// must not mistake an unbounded guarantee for a number.
  Result<double> Epsilon(double sigma, double delta) const;

  /// Per-iteration privacy ledger: entry t is the epsilon spent after
  /// t + 1 iterations (linear RDP composition means gamma scales by the
  /// iteration count before the Theorem 1 conversion — NOT epsilon itself,
  /// which is why the ledger is not a straight line). Entry
  /// `iterations() - 1` equals Epsilon(sigma, delta). Same failure mode as
  /// Epsilon.
  Result<std::vector<double>> EpsilonLedger(double sigma,
                                            double delta) const;

  /// Smallest noise multiplier sigma such that the whole run is
  /// (epsilon, delta)-DP. Fails if the target is unreachable within the
  /// search bracket (e.g. epsilon so huge even sigma -> 0 suffices is fine;
  /// epsilon <= 0 is rejected).
  Result<double> CalibrateSigma(const PrivacyBudget& budget) const;

  const DpSgdSpec& spec() const { return spec_; }

  /// The alpha grid used for conversion; exposed for tests.
  static const std::vector<double>& AlphaGrid();

 private:
  explicit RdpAccountant(const DpSgdSpec& spec);

  /// Epsilon as a plain double with +inf signalling "no finite guarantee";
  /// the bracketing search in CalibrateSigma wants the infinity to compare
  /// against, the public API wants the loud Status.
  double EpsilonOrInfinity(double sigma, double delta) const;

  DpSgdSpec spec_;
  // Precomputed log rho_i, i = 0..min(N_g, B).
  std::vector<double> log_rho_;
};

/// Theorem 1: converts (alpha, gamma)-RDP to epsilon at the given delta:
/// epsilon = gamma + log((alpha-1)/alpha) - (log delta + log alpha)/(alpha-1).
double RdpToEpsilon(double alpha, double gamma, double delta);

}  // namespace privim

#endif  // PRIVIM_DP_RDP_ACCOUNTANT_H_
