#include "runtime/scratch.h"

#include <algorithm>

namespace privim {

void HopBallCache::Bind(uint64_t graph_fingerprint, int32_t hop_bound) {
  if (bound_ && fingerprint_ == graph_fingerprint &&
      hop_bound_ == hop_bound) {
    return;
  }
  entries_.clear();
  fingerprint_ = graph_fingerprint;
  hop_bound_ = hop_bound;
  bound_ = true;
}

const HopBall* HopBallCache::Lookup(uint32_t start) {
  for (Entry& e : entries_) {
    if (e.start == start) {
      e.last_used = ++tick_;
      ++hits_;
      return &e.ball;
    }
  }
  ++misses_;
  return nullptr;
}

HopBall& HopBallCache::InsertSlot(uint32_t start) {
  if (capacity_ == 0) {
    discard_.nodes.clear();
    return discard_;
  }
  for (Entry& e : entries_) {
    if (e.start == start) {
      e.ball.nodes.clear();
      e.last_used = ++tick_;
      return e.ball;
    }
  }
  if (entries_.size() < capacity_) {
    entries_.push_back(Entry{start, ++tick_, HopBall{}});
    return entries_.back().ball;
  }
  auto victim = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
  victim->start = start;
  victim->ball.nodes.clear();
  victim->last_used = ++tick_;
  return victim->ball;
}

void WorkspacePool::EnsureSlots(size_t n) {
  while (slots_.size() < n) {
    slots_.push_back(std::make_unique<Workspace>());
  }
}

WorkspacePool::Stats WorkspacePool::Cumulative() const {
  Stats s;
  for (const auto& ws : slots_) {
    s.map_fast_resets += ws->visited.fast_resets() +
                         ws->hop_dist.fast_resets() +
                         ws->incoming.fast_resets();
    s.map_full_resets += ws->visited.full_resets() +
                         ws->hop_dist.full_resets() +
                         ws->incoming.full_resets();
    s.map_writes += ws->visited.writes() + ws->hop_dist.writes() +
                    ws->incoming.writes();
    s.ball_cache_hits += ws->ball_cache.hits();
    s.ball_cache_misses += ws->ball_cache.misses();
  }
  return s;
}

WorkspacePool::Stats WorkspacePool::TakeStats() {
  const Stats total = Cumulative();
  Stats delta;
  delta.map_fast_resets = total.map_fast_resets - flushed_.map_fast_resets;
  delta.map_full_resets = total.map_full_resets - flushed_.map_full_resets;
  delta.map_writes = total.map_writes - flushed_.map_writes;
  delta.ball_cache_hits = total.ball_cache_hits - flushed_.ball_cache_hits;
  delta.ball_cache_misses =
      total.ball_cache_misses - flushed_.ball_cache_misses;
  flushed_ = total;
  return delta;
}

}  // namespace privim
