#ifndef PRIVIM_RUNTIME_PARALLEL_FOR_H_
#define PRIVIM_RUNTIME_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "runtime/thread_pool.h"

namespace privim {

/// Runs fn(i) for every i in [begin, end), statically chunked: indices are
/// split into ceil((end-begin)/grain) contiguous chunks of `grain` indices
/// each, and each chunk is one pool task executed front to back.
///
/// The chunk boundaries depend only on (begin, end, grain) — never on the
/// worker count or scheduling — and fn must write only per-index state, so
/// the overall result is identical for any pool size, including the inline
/// serial execution used when `pool` is null or has no workers.
///
/// Blocks until every index has been processed. Exceptions from fn
/// propagate (first one wins).
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn);

/// As ParallelFor, but additionally hands each chunk an exclusive "slot" id
/// in [0, num_slots): no two chunks ever run concurrently with the same
/// slot.
/// Slots let fn reuse expensive scratch state (model replicas, large
/// buffers) without locking. `num_slots` must be >= 1; chunks wait for a
/// free slot when all are taken.
///
/// Determinism contract: fn's observable output must not depend on which
/// slot it received — slots are scratch, not identity.
void ParallelForWithSlots(
    ThreadPool* pool, size_t begin, size_t end, size_t grain,
    size_t num_slots, const std::function<void(size_t index, size_t slot)>& fn);

}  // namespace privim

#endif  // PRIVIM_RUNTIME_PARALLEL_FOR_H_
