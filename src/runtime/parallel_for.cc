#include "runtime/parallel_for.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "runtime/runtime.h"
#include "runtime/task_group.h"

namespace privim {

namespace {

/// Reports the enclosing ParallelFor's wall time to the runtime stats.
class LoopTimer {
 public:
  LoopTimer() : start_(std::chrono::steady_clock::now()) {}
  ~LoopTimer() {
    internal::RecordParallelFor(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  PRIVIM_CHECK_GT(grain, 0u);
  LoopTimer timer;
  if (pool == nullptr || pool->num_workers() == 0) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  TaskGroup group(pool);
  for (size_t chunk_begin = begin; chunk_begin < end; chunk_begin += grain) {
    const size_t chunk_end =
        chunk_begin + grain < end ? chunk_begin + grain : end;
    group.Run([&fn, chunk_begin, chunk_end] {
      for (size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
    });
  }
  group.Wait();
}

namespace {

/// Free-list of scratch slots; chunks block until one is available.
class SlotPool {
 public:
  explicit SlotPool(size_t num_slots) {
    for (size_t s = num_slots; s > 0; --s) free_.push_back(s - 1);
  }

  size_t Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !free_.empty(); });
    const size_t slot = free_.back();
    free_.pop_back();
    return slot;
  }

  void Release(size_t slot) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      free_.push_back(slot);
    }
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<size_t> free_;
};

}  // namespace

void ParallelForWithSlots(
    ThreadPool* pool, size_t begin, size_t end, size_t grain,
    size_t num_slots,
    const std::function<void(size_t index, size_t slot)>& fn) {
  if (begin >= end) return;
  PRIVIM_CHECK_GT(grain, 0u);
  PRIVIM_CHECK_GT(num_slots, 0u);
  LoopTimer timer;
  if (pool == nullptr || pool->num_workers() == 0) {
    for (size_t i = begin; i < end; ++i) fn(i, 0);
    return;
  }
  SlotPool slots(num_slots);
  TaskGroup group(pool);
  for (size_t chunk_begin = begin; chunk_begin < end; chunk_begin += grain) {
    const size_t chunk_end =
        chunk_begin + grain < end ? chunk_begin + grain : end;
    group.Run([&fn, &slots, chunk_begin, chunk_end] {
      const size_t slot = slots.Acquire();
      try {
        for (size_t i = chunk_begin; i < chunk_end; ++i) fn(i, slot);
      } catch (...) {
        slots.Release(slot);  // Keep other chunks from starving.
        throw;
      }
      slots.Release(slot);
    });
  }
  group.Wait();
}

}  // namespace privim
