#ifndef PRIVIM_RUNTIME_SCRATCH_H_
#define PRIVIM_RUNTIME_SCRATCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace privim {

/// Zero-allocation scratch workspaces for the per-walk / per-trial hot
/// loops (see docs/performance.md).
///
/// The samplers and Monte-Carlo simulators repeatedly need "a map over all
/// graph nodes that starts empty" — hop distances, active bitmaps, incoming
/// weight sums. Allocating (or even just re-zeroing) an O(num_nodes) vector
/// per walk/trial dominates once the touched set is much smaller than the
/// graph, which is exactly the PrivIM regime (subgraph size n ≪ |V|). The
/// classes here make the logical clear O(1) via an epoch stamp and pool the
/// variable-length buffers so their capacity survives across iterations.
///
/// Determinism: everything in this file is deterministic scratch — the
/// values read back are identical to what freshly allocated structures
/// would hold, so wiring a workspace into a loop can never change its
/// output. The only scheduling-dependent observables are the reuse/hit
/// statistics (see WorkspacePool::TakeStats), which are diagnostics in the
/// same class as the samplers' stale_replays counter.

/// Epoch-stamped map over the dense id space [0, n): entry i is logically
/// present iff its stamp matches the current epoch, so Reset() is O(1) —
/// it bumps the epoch instead of re-zeroing n entries. A full re-zero only
/// happens when the id space changes size or the 32-bit epoch wraps (once
/// every 2^32 - 1 resets).
template <typename T>
class VisitedMap {
 public:
  /// Logically clears the map and sizes it for ids in [0, n).
  void Reset(size_t n) {
    if (stamp_.size() != n || ++epoch_ == 0) {
      stamp_.assign(n, 0);
      value_.resize(n);
      epoch_ = 1;
      ++full_resets_;
    } else {
      ++fast_resets_;
    }
  }

  size_t size() const { return stamp_.size(); }

  bool Contains(size_t i) const { return stamp_[i] == epoch_; }

  void Set(size_t i, T v) {
    stamp_[i] = epoch_;
    value_[i] = v;
    ++writes_;
  }

  /// Value of a present entry; undefined unless Contains(i).
  const T& Get(size_t i) const { return value_[i]; }

  T GetOr(size_t i, T fallback) const {
    return Contains(i) ? value_[i] : fallback;
  }

  /// O(1) resets since construction (the reuse win) / full re-zeroes.
  uint64_t fast_resets() const { return fast_resets_; }
  uint64_t full_resets() const { return full_resets_; }
  /// Entries stamped since construction — the touched-node work metric the
  /// O(ball) scale tests pin: for a hop-bounded walk it must track the ball
  /// size, never |V| (full_resets stays 0 and writes stay O(ball)).
  uint64_t writes() const { return writes_; }

  /// Test-only: jumps the epoch so the 2^32 wrap path is reachable without
  /// four billion resets. Never call outside tests.
  void set_epoch_for_test(uint32_t e) { epoch_ = e; }

 private:
  std::vector<uint32_t> stamp_;
  std::vector<T> value_;
  uint32_t epoch_ = 0;
  uint64_t fast_resets_ = 0;
  uint64_t full_resets_ = 0;
  uint64_t writes_ = 0;
};

/// Value-less VisitedMap: an epoch-stamped membership set over [0, n).
class VisitedSet {
 public:
  void Reset(size_t n) {
    if (stamp_.size() != n || ++epoch_ == 0) {
      stamp_.assign(n, 0);
      epoch_ = 1;
      ++full_resets_;
    } else {
      ++fast_resets_;
    }
  }

  size_t size() const { return stamp_.size(); }
  bool Contains(size_t i) const { return stamp_[i] == epoch_; }
  void Insert(size_t i) {
    stamp_[i] = epoch_;
    ++writes_;
  }

  uint64_t fast_resets() const { return fast_resets_; }
  uint64_t full_resets() const { return full_resets_; }
  /// Entries stamped since construction; see VisitedMap::writes().
  uint64_t writes() const { return writes_; }

  /// Test-only: see VisitedMap::set_epoch_for_test.
  void set_epoch_for_test(uint32_t e) { epoch_ = e; }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  uint64_t fast_resets_ = 0;
  uint64_t full_resets_ = 0;
  uint64_t writes_ = 0;
};

/// An r-hop out-ball: the nodes within `hop_bound` hops of a start node,
/// with their hop distances. A pure function of (graph, start, hop_bound).
struct HopBall {
  std::vector<std::pair<uint32_t, int32_t>> nodes;
};

/// Tiny LRU cache of r-hop balls keyed by start node. Balls are pure
/// functions of (graph, start, hop_bound), so serving a cached ball is
/// observationally identical to recomputing it — the cache can change
/// timings, never results. Bind() scopes the cache to one
/// (graph fingerprint, hop_bound) pair and clears it on any change.
class HopBallCache {
 public:
  static constexpr size_t kDefaultCapacity = 32;

  explicit HopBallCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Declares the (graph, hop_bound) context for subsequent lookups;
  /// invalidates every entry when it differs from the bound context.
  void Bind(uint64_t graph_fingerprint, int32_t hop_bound);

  /// Returns the cached ball for `start` (bumping its recency) or nullptr.
  /// The pointer is valid until the next InsertSlot/Bind.
  const HopBall* Lookup(uint32_t start);

  /// Claims the cache entry for `start` (evicting the least-recently-used
  /// entry when full) and returns its ball, logically empty but with its
  /// previous capacity intact, for the caller to fill in place. Recycling
  /// the victim's storage is what keeps a warm cache allocation-free: the
  /// ball buffers reach steady-state capacity and stay there.
  HopBall& InsertSlot(uint32_t start);

  /// Rebinds the cache to a new graph fingerprint WITHOUT dropping
  /// entries: the incremental-update handoff. After a graph mutation the
  /// caller must first drop every affected ball via Invalidate() — a ball
  /// is affected exactly when it contains a node whose out-row changed
  /// (expansion only ever scans rows of nodes inside the ball, so changes
  /// at untouched rows cannot alter it; docs/streaming.md) — then
  /// Retarget() to the mutated graph's fingerprint so surviving balls are
  /// served under the new binding. The hop bound is unchanged. Calling
  /// Bind() with the new fingerprint instead would drop every entry,
  /// which is always safe but defeats incremental maintenance.
  void Retarget(uint64_t graph_fingerprint) {
    fingerprint_ = graph_fingerprint;
  }

  /// Drops every cached ball that contains a node for which
  /// `changed(node_id)` returns true (see Retarget for why that is the
  /// exact affected set). Returns the number of balls dropped.
  template <typename Pred>
  size_t Invalidate(Pred&& changed) {
    const size_t before = entries_.size();
    entries_.erase(
        std::remove_if(entries_.begin(), entries_.end(),
                       [&changed](const Entry& e) {
                         for (const auto& [node, hop] : e.ball.nodes) {
                           (void)hop;
                           if (changed(node)) return true;
                         }
                         return false;
                       }),
        entries_.end());
    return before - entries_.size();
  }

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    uint32_t start = 0;
    uint64_t last_used = 0;
    HopBall ball;
  };

  size_t capacity_;
  std::vector<Entry> entries_;
  uint64_t tick_ = 0;
  uint64_t fingerprint_ = 0;
  int32_t hop_bound_ = -1;
  bool bound_ = false;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  /// InsertSlot target when capacity_ == 0 (cache disabled): filled and
  /// immediately forgotten, but still reuses its own storage.
  HopBall discard_;
};

/// One worker's scratch state: the stamped maps plus pooled variable-length
/// buffers the sampling / diffusion hot loops need. All fields are plain
/// scratch — callers Reset()/clear() what they use and must not rely on
/// contents surviving between acquisitions.
struct Workspace {
  /// Membership bitmap (IC/LT `active`, sampler `in_sub`, RR `visited`).
  VisitedSet visited;
  /// Second membership bitmap for loops that need two at once (the RWR
  /// walk tracks the r-hop ball and the collected subgraph together).
  VisitedMap<int32_t> hop_dist;
  /// Sparse accumulator (LT incoming weight sums).
  VisitedMap<double> incoming;

  std::vector<uint32_t> frontier;
  std::vector<uint32_t> next_frontier;
  std::vector<uint32_t> nodes;
  std::vector<uint32_t> candidates;
  std::vector<double> weights;
  std::vector<double> thresholds;

  HopBallCache ball_cache;
};

/// Slot-indexed workspace pool for ParallelForWithSlots: slot s always maps
/// to the same Workspace, and the slot protocol guarantees no two chunks
/// hold the same slot concurrently, so workers reuse memory across rounds
/// without locks. The pool outlives individual parallel loops (samplers
/// keep one per instance), which is what makes buffer capacity and the
/// r-hop-ball cache survive across Extract calls.
///
/// Thread-safety: EnsureSlots must be called from the orchestrating thread
/// before workers call Acquire; Acquire itself is wait-free. Like
/// SharedPool, orchestration is expected to happen from one thread at a
/// time — two concurrent parallel loops over the same pool would share
/// scratch and race.
class WorkspacePool {
 public:
  /// Grows the pool to at least `n` slots. Never shrinks (slot identity
  /// and cached state are preserved).
  void EnsureSlots(size_t n);

  size_t size() const { return slots_.size(); }

  /// The workspace of `slot`; requires slot < size() and exclusive use of
  /// the slot for the duration (ParallelForWithSlots provides both).
  Workspace& Acquire(size_t slot) { return *slots_[slot]; }

  /// Cumulative reuse statistics, reported as deltas since the previous
  /// TakeStats call so callers can flush into monotonic counters after
  /// each run. Scheduling-dependent diagnostics: which slot serves which
  /// index varies with the thread count, so these are NOT part of the
  /// determinism contract (single-threaded runs are reproducible).
  struct Stats {
    /// O(1) epoch-bump resets across all stamped maps (the reuse win).
    uint64_t map_fast_resets = 0;
    /// Full O(n) (re)initializations across all stamped maps.
    uint64_t map_full_resets = 0;
    /// Entries stamped across all stamped maps — the touched-node count
    /// the O(ball) complexity tests assert scales with the hop ball.
    uint64_t map_writes = 0;
    uint64_t ball_cache_hits = 0;
    uint64_t ball_cache_misses = 0;
  };
  Stats TakeStats();

 private:
  Stats Cumulative() const;

  std::vector<std::unique_ptr<Workspace>> slots_;
  Stats flushed_;
};

}  // namespace privim

#endif  // PRIVIM_RUNTIME_SCRATCH_H_
