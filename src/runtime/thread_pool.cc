#include "runtime/thread_pool.h"

#include <utility>

#include "runtime/runtime.h"

namespace privim {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    internal::RecordQueueDepth(queue_.size());
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain remaining tasks even after stop: destructor semantics are
      // "finish what was submitted, then exit".
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    internal::RecordTaskExecuted();
  }
}

}  // namespace privim
