#ifndef PRIVIM_RUNTIME_TASK_GROUP_H_
#define PRIVIM_RUNTIME_TASK_GROUP_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>

#include "runtime/thread_pool.h"

namespace privim {

/// Heterogeneous fan-out: run a handful of unrelated closures concurrently
/// and join them. ParallelFor is the right tool for index loops; TaskGroup
/// is for "do these three different things at once".
///
/// With a null pool (or a pool without workers) every task runs inline at
/// Run(), which keeps the serial path allocation- and lock-free in spirit
/// and — more importantly — on the exact same code path as the parallel
/// one.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Joins outstanding tasks; any stored exception is swallowed here (call
  /// Wait() explicitly to observe it).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn`. Thread-safe; may be called from inside another task of
  /// the same group.
  void Run(std::function<void()> fn);

  /// Blocks until every scheduled task has finished, then rethrows the
  /// first exception any task raised (if any). The group is reusable after
  /// Wait() returns.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace privim

#endif  // PRIVIM_RUNTIME_TASK_GROUP_H_
