#ifndef PRIVIM_RUNTIME_THREAD_POOL_H_
#define PRIVIM_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace privim {

/// Fixed-size worker pool with a shared FIFO task queue.
///
/// The pool is a pure execution vehicle: it never looks at task results and
/// makes no ordering promises beyond FIFO dequeue, so determinism is the
/// caller's job. ParallelFor and TaskGroup achieve it by assigning work and
/// RNG substreams by *index*, never by worker identity.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads. 0 is allowed and means "no
  /// workers": Submit() then runs the task inline on the calling thread.
  explicit ThreadPool(size_t num_workers);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues `task` for execution on some worker. Tasks may freely submit
  /// further tasks; they must not block waiting for a task that has not
  /// been submitted yet.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace privim

#endif  // PRIVIM_RUNTIME_THREAD_POOL_H_
