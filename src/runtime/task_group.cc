#include "runtime/task_group.h"

#include <utility>

namespace privim {

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->num_workers() == 0) {
    // Inline execution. Record the error like the pooled path would so
    // Wait() behaves identically.
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      // Notify while still holding the lock: the waiter (often
      // ~TaskGroup on a caller's stack frame) re-checks the predicate
      // under mu_, so it cannot observe pending_ == 0 and destroy the
      // group until this unlock — notifying after unlocking would race
      // with that destruction.
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace privim
