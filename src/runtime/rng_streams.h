#ifndef PRIVIM_RUNTIME_RNG_STREAMS_H_
#define PRIVIM_RUNTIME_RNG_STREAMS_H_

#include <cstdint>

#include "common/rng.h"

namespace privim {

/// Deterministic per-task RNG substreams for parallel loops.
///
/// Construction consumes exactly ONE draw from the parent generator —
/// independent of how many child streams are derived afterwards — so the
/// parent's stream position, and with it every later draw in the caller,
/// is the same for any thread count. Stream(i) is a pure function of
/// (base, i) and may be called concurrently from any worker.
///
/// Canonical use:
///   RngStreams streams(rng);                  // one parent draw
///   ParallelFor(pool, 0, n, grain, [&](size_t i) {
///     Rng child = streams.Stream(i);          // bit-identical per index
///     ...
///   });
class RngStreams {
 public:
  explicit RngStreams(Rng& parent) : base_(parent.NextUint64()) {}

  /// Child generator for stream `stream_id`; same (parent state, id) pair
  /// always yields the same child.
  Rng Stream(uint64_t stream_id) const {
    return Rng::FromStreamKey(base_, stream_id);
  }

  uint64_t base_key() const { return base_; }

  /// Rebuilds a stream family from a saved `base_key()` WITHOUT consuming a
  /// parent draw — the restore counterpart used when resuming a checkpoint
  /// mid-fan-out: the original construction already consumed the parent
  /// draw, so replaying it would desynchronize the caller's stream.
  static RngStreams FromBaseKey(uint64_t base_key) {
    return RngStreams(base_key, RestoreTag{});
  }

 private:
  struct RestoreTag {};
  RngStreams(uint64_t base_key, RestoreTag) : base_(base_key) {}

  uint64_t base_;
};

}  // namespace privim

#endif  // PRIVIM_RUNTIME_RNG_STREAMS_H_
