#include "runtime/runtime.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace privim {

namespace {

std::mutex g_mu;
RuntimeOptions g_options;
bool g_options_initialized = false;
std::unique_ptr<ThreadPool> g_pool;

/// Hardware-aware interpretation of a raw thread request.
size_t Normalize(long value) {
  if (value < 0) return 1;
  if (value == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }
  return static_cast<size_t>(value);
}

/// Default from the environment, read once: PRIVIM_THREADS=N (N=0 means
/// "all hardware threads"), unset means serial.
const RuntimeOptions& DefaultOptionsLocked() {
  if (!g_options_initialized) {
    g_options_initialized = true;
    g_options.num_threads = 1;
    if (const char* env = std::getenv("PRIVIM_THREADS")) {
      g_options.num_threads = Normalize(std::atol(env));
    }
  }
  return g_options;
}

}  // namespace

void SetGlobalRuntimeOptions(const RuntimeOptions& options) {
  std::lock_guard<std::mutex> lock(g_mu);
  DefaultOptionsLocked();  // Force env initialization first.
  g_options.num_threads =
      options.num_threads == 0
          ? Normalize(0)
          : options.num_threads;
}

RuntimeOptions GetGlobalRuntimeOptions() {
  std::lock_guard<std::mutex> lock(g_mu);
  return DefaultOptionsLocked();
}

size_t ResolveNumThreads(size_t requested) {
  if (requested > 0) return requested;
  return GetGlobalRuntimeOptions().num_threads;
}

ThreadPool* SharedPool(size_t num_threads) {
  if (num_threads <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_pool == nullptr || g_pool->num_workers() < num_threads) {
    g_pool.reset();  // Join the old workers before spawning more.
    g_pool = std::make_unique<ThreadPool>(num_threads);
  }
  return g_pool.get();
}

namespace {

std::atomic<uint64_t> g_parallel_for_calls{0};
std::atomic<uint64_t> g_parallel_for_nanos{0};
std::atomic<uint64_t> g_tasks_executed{0};
std::atomic<uint64_t> g_max_queue_depth{0};

}  // namespace

namespace internal {

void RecordParallelFor(uint64_t nanos) {
  g_parallel_for_calls.fetch_add(1, std::memory_order_relaxed);
  g_parallel_for_nanos.fetch_add(nanos, std::memory_order_relaxed);
}

void RecordTaskExecuted() {
  g_tasks_executed.fetch_add(1, std::memory_order_relaxed);
}

void RecordQueueDepth(size_t depth) {
  uint64_t cur = g_max_queue_depth.load(std::memory_order_relaxed);
  while (cur < depth && !g_max_queue_depth.compare_exchange_weak(
                            cur, depth, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

RuntimeStats GetRuntimeStats() {
  RuntimeStats stats;
  stats.parallel_for_calls =
      g_parallel_for_calls.load(std::memory_order_relaxed);
  stats.parallel_for_nanos =
      g_parallel_for_nanos.load(std::memory_order_relaxed);
  stats.tasks_executed = g_tasks_executed.load(std::memory_order_relaxed);
  stats.max_queue_depth =
      g_max_queue_depth.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace privim
