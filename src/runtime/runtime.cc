#include "runtime/runtime.h"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace privim {

namespace {

std::mutex g_mu;
RuntimeOptions g_options;
bool g_options_initialized = false;
std::unique_ptr<ThreadPool> g_pool;

/// Hardware-aware interpretation of a raw thread request.
size_t Normalize(long value) {
  if (value < 0) return 1;
  if (value == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }
  return static_cast<size_t>(value);
}

/// Default from the environment, read once: PRIVIM_THREADS=N (N=0 means
/// "all hardware threads"), unset means serial.
const RuntimeOptions& DefaultOptionsLocked() {
  if (!g_options_initialized) {
    g_options_initialized = true;
    g_options.num_threads = 1;
    if (const char* env = std::getenv("PRIVIM_THREADS")) {
      g_options.num_threads = Normalize(std::atol(env));
    }
  }
  return g_options;
}

}  // namespace

void SetGlobalRuntimeOptions(const RuntimeOptions& options) {
  std::lock_guard<std::mutex> lock(g_mu);
  DefaultOptionsLocked();  // Force env initialization first.
  g_options.num_threads =
      options.num_threads == 0
          ? Normalize(0)
          : options.num_threads;
}

RuntimeOptions GetGlobalRuntimeOptions() {
  std::lock_guard<std::mutex> lock(g_mu);
  return DefaultOptionsLocked();
}

size_t ResolveNumThreads(size_t requested) {
  if (requested > 0) return requested;
  return GetGlobalRuntimeOptions().num_threads;
}

ThreadPool* SharedPool(size_t num_threads) {
  if (num_threads <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_pool == nullptr || g_pool->num_workers() < num_threads) {
    g_pool.reset();  // Join the old workers before spawning more.
    g_pool = std::make_unique<ThreadPool>(num_threads);
  }
  return g_pool.get();
}

}  // namespace privim
