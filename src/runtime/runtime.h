#ifndef PRIVIM_RUNTIME_RUNTIME_H_
#define PRIVIM_RUNTIME_RUNTIME_H_

#include <cstddef>
#include <cstdint>

#include "runtime/thread_pool.h"

namespace privim {

/// Process-wide execution options, plumbed through PrivImConfig and every
/// parallelizable component config. See docs/runtime.md for the design and
/// the determinism contract.
struct RuntimeOptions {
  /// Requested worker parallelism for the hot loops (per-sample gradients,
  /// subgraph extraction, Monte-Carlo spread estimation).
  ///   0 = defer to the process default (PRIVIM_THREADS env var, else 1);
  ///   1 = serial;
  ///   n = up to n concurrent tasks.
  /// Results are bit-identical for every value — the thread count is a
  /// throughput knob, never a semantics knob.
  size_t num_threads = 0;
};

/// Overrides the process default used when a component's num_threads is 0.
void SetGlobalRuntimeOptions(const RuntimeOptions& options);
RuntimeOptions GetGlobalRuntimeOptions();

/// Resolves a per-call request against the process default: 0 maps to the
/// global option (itself seeded from PRIVIM_THREADS, default 1, with 0
/// meaning std::thread::hardware_concurrency()). Never returns 0.
size_t ResolveNumThreads(size_t requested);

/// Returns the shared process-wide pool with at least `num_threads`
/// workers, growing it lazily, or nullptr when num_threads <= 1 so callers
/// take their inline serial path. The pool is rebuilt only while idle;
/// orchestration is expected to happen from one thread at a time.
ThreadPool* SharedPool(size_t num_threads);

/// Cumulative process-wide execution statistics (monotonic counters).
/// Scope a run by snapshotting before and after and differencing —
/// RunMethod does exactly that when telemetry is enabled. These are
/// throughput diagnostics, NOT part of the cross-thread determinism
/// contract: the serial inline path executes zero pool tasks, so
/// tasks_executed and queue depth legitimately vary with the thread count.
struct RuntimeStats {
  /// ParallelFor / ParallelForWithSlots invocations, serial path included.
  uint64_t parallel_for_calls = 0;
  /// Total monotonic wall nanoseconds spent inside those invocations.
  uint64_t parallel_for_nanos = 0;
  /// Tasks executed by pool workers (0 on the serial path).
  uint64_t tasks_executed = 0;
  /// High-water mark of the shared pool's task queue depth.
  uint64_t max_queue_depth = 0;
};
RuntimeStats GetRuntimeStats();

namespace internal {
/// Recording hooks used by the pool and ParallelFor; relaxed atomics only.
void RecordParallelFor(uint64_t nanos);
void RecordTaskExecuted();
void RecordQueueDepth(size_t depth);
}  // namespace internal

}  // namespace privim

#endif  // PRIVIM_RUNTIME_RUNTIME_H_
