#include "obs/telemetry.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/string_util.h"
#include "common/table_printer.h"

namespace privim {

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

namespace {

/// Minimal append-only JSON writer: the schema is fixed and flat enough
/// that a full serializer would be overkill.
class JsonBuilder {
 public:
  void OpenObject() { Punct('{'); }
  void CloseObject() {
    out_.push_back('}');
    needs_comma_ = true;
  }
  void OpenArray() { Punct('['); }
  void CloseArray() {
    out_.push_back(']');
    needs_comma_ = true;
  }
  void Key(std::string_view name) {
    Comma();
    out_ += JsonQuote(name);
    out_.push_back(':');
    needs_comma_ = false;
  }
  void Value(double v) {
    Comma();
    out_ += JsonNumber(v);
    needs_comma_ = true;
  }
  void Value(uint64_t v) {
    Comma();
    out_ += std::to_string(v);
    needs_comma_ = true;
  }
  std::string Take() { return std::move(out_); }

 private:
  void Punct(char open) {
    Comma();
    out_.push_back(open);
    needs_comma_ = false;
  }
  void Comma() {
    if (needs_comma_) out_.push_back(',');
  }

  std::string out_;
  bool needs_comma_ = false;
};

}  // namespace

std::string RunTelemetry::ToJson() const {
  const MetricsSnapshot snap = metrics.Snapshot();
  JsonBuilder json;
  json.OpenObject();

  json.Key("train");
  json.OpenArray();
  for (const TrainIterationRecord& rec : train) {
    json.OpenObject();
    json.Key("iteration");
    json.Value(rec.iteration);
    json.Key("loss");
    json.Value(rec.loss);
    json.Key("clip_fraction");
    json.Value(rec.clip_fraction);
    json.Key("mean_grad_norm");
    json.Value(rec.mean_grad_norm);
    json.Key("noise_l2");
    json.Value(rec.noise_l2);
    json.Key("epsilon");
    json.Value(rec.epsilon);
    json.CloseObject();
  }
  json.CloseArray();

  json.Key("counters");
  json.OpenObject();
  for (const auto& [name, value] : snap.counters) {
    json.Key(name);
    json.Value(value);
  }
  json.CloseObject();

  json.Key("gauges");
  json.OpenObject();
  for (const auto& [name, value] : snap.gauges) {
    json.Key(name);
    json.Value(value);
  }
  json.CloseObject();

  json.Key("histograms");
  json.OpenObject();
  for (const auto& [name, hist] : snap.histograms) {
    json.Key(name);
    json.OpenObject();
    json.Key("bounds");
    json.OpenArray();
    for (double b : hist.bounds) json.Value(b);
    json.CloseArray();
    json.Key("counts");
    json.OpenArray();
    for (uint64_t c : hist.counts) json.Value(c);
    json.CloseArray();
    json.Key("total");
    json.Value(hist.total);
    json.Key("sum");
    json.Value(hist.sum);
    json.CloseObject();
  }
  json.CloseObject();

  json.Key("timers");
  json.OpenObject();
  for (const auto& [name, timer] : snap.timers) {
    json.Key(name);
    json.OpenObject();
    json.Key("calls");
    json.Value(timer.calls);
    json.Key("seconds");
    json.Value(timer.seconds);
    json.CloseObject();
  }
  json.CloseObject();

  json.CloseObject();
  return json.Take();
}

Status RunTelemetry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open telemetry output file " + path);
  }
  out << ToJson() << "\n";
  if (!out.good()) {
    return Status::IoError("failed writing telemetry to " + path);
  }
  return Status::OK();
}

void RunTelemetry::PrintSummary(std::ostream& os) const {
  const MetricsSnapshot snap = metrics.Snapshot();
  TablePrinter table({"metric", "value"});
  for (const auto& [name, value] : snap.counters) {
    table.AddRow({name, std::to_string(value)});
  }
  for (const auto& [name, value] : snap.gauges) {
    table.AddRow({name, FormatDouble(value, 4)});
  }
  for (const auto& [name, hist] : snap.histograms) {
    const double mean =
        hist.total > 0 ? hist.sum / static_cast<double>(hist.total) : 0.0;
    table.AddRow({name, StrFormat("n=%llu mean=%s",
                                  static_cast<unsigned long long>(hist.total),
                                  FormatDouble(mean, 4).c_str())});
  }
  for (const auto& [name, timer] : snap.timers) {
    table.AddRow({name, StrFormat("%llu calls, %ss",
                                  static_cast<unsigned long long>(timer.calls),
                                  FormatDouble(timer.seconds, 4).c_str())});
  }
  if (!train.empty()) {
    const TrainIterationRecord& last = train.back();
    double clip_sum = 0.0;
    for (const TrainIterationRecord& rec : train) {
      clip_sum += rec.clip_fraction;
    }
    table.AddRow({"train.iterations", std::to_string(train.size())});
    table.AddRow({"train.final_loss", FormatDouble(last.loss, 4)});
    table.AddRow(
        {"train.mean_clip_fraction",
         FormatDouble(clip_sum / static_cast<double>(train.size()), 4)});
    if (std::isfinite(last.epsilon)) {
      table.AddRow({"train.epsilon_spent", FormatDouble(last.epsilon, 4)});
    }
  }
  table.Print(os);
}

}  // namespace privim
