#ifndef PRIVIM_OBS_TELEMETRY_H_
#define PRIVIM_OBS_TELEMETRY_H_

#include <limits>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace privim {

/// One DP-SGD iteration's released diagnostics. Every field is derived
/// from quantities the training loop already releases to the (trusted)
/// trainer — loss, per-sample pre-clip norms, the realized noise vector —
/// so recording them is DP post-processing and costs no additional budget
/// (docs/observability.md discusses this in detail).
struct TrainIterationRecord {
  size_t iteration = 0;
  /// Mean batch loss.
  double loss = 0.0;
  /// Fraction of per-sample gradients whose pre-clip L2 norm exceeded the
  /// clip bound C (1.0 = everything clipped; the DP-SGD tuning signal).
  double clip_fraction = 0.0;
  /// Mean pre-clip per-sample gradient L2 norm.
  double mean_grad_norm = 0.0;
  /// L2 norm of the injected noise vector (0 for noiseless iterations).
  /// Together with mean_grad_norm this gives the noise-to-signal ratio.
  double noise_l2 = 0.0;
  /// Cumulative privacy spend epsilon(t) after this iteration, from the
  /// RDP accountant's ledger. NaN when the run is non-private.
  double epsilon = std::numeric_limits<double>::quiet_NaN();
};

/// Structured record of one pipeline run: a metrics registry filled by the
/// instrumented components plus the per-iteration training ledger.
///
/// Ownership model: the caller creates one RunTelemetry per run and hands
/// `&metrics` / `this` down through the component configs. Components
/// register instruments once per call and record lock-free; the training
/// loop appends iteration records from its (single) orchestration thread.
struct RunTelemetry {
  MetricsRegistry metrics;
  std::vector<TrainIterationRecord> train;

  /// Serializes everything as a self-contained JSON object:
  /// {"train": [...], "counters": {...}, "gauges": {...},
  ///  "histograms": {...}, "timers": {...}}.
  std::string ToJson() const;

  /// Writes ToJson() to `path` (overwriting), with a trailing newline.
  Status WriteJsonFile(const std::string& path) const;

  /// Prints a compact human-readable summary (counters, timers, and the
  /// train ledger's endpoints) through TablePrinter.
  void PrintSummary(std::ostream& os) const;
};

/// Escapes a string for embedding in a JSON document (quotes included).
std::string JsonQuote(std::string_view s);

/// Formats a double as a JSON number token: finite values round-trip
/// (max_digits10); NaN and infinities — which JSON cannot represent —
/// become null.
std::string JsonNumber(double v);

}  // namespace privim

#endif  // PRIVIM_OBS_TELEMETRY_H_
