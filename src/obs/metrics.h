#ifndef PRIVIM_OBS_METRICS_H_
#define PRIVIM_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace privim {

/// Lightweight run-telemetry metrics (see docs/observability.md).
///
/// Design constraints, in order:
///  * no locks on the hot path — recording is a relaxed atomic add;
///  * deterministic values — instruments count *events*, and the runtime's
///    determinism contract makes the event set identical for every thread
///    count, so totals agree even though increment order does not;
///  * merge-at-report — one registry per run; concurrent runs (or nested
///    stages) each fill their own registry and merge into the report.
///
/// Registration (GetCounter & co.) takes a mutex and is expected to happen
/// once per run outside hot loops; the returned pointers are stable for the
/// registry's lifetime.

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. a configuration echo or a final level).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus
/// one overflow bucket. Bounds are fixed at creation, so two histograms
/// with equal bounds merge by adding counts — an associative, commutative
/// operation (audited in tests).
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::span<const double> upper_bounds);

  void Observe(double x);

  /// Adds `other`'s counts into this histogram. Bucket bounds must match.
  void Merge(const Histogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  /// counts() has bounds().size() + 1 entries (last = overflow).
  std::vector<uint64_t> counts() const;
  uint64_t total_count() const;
  /// Sum of observed values (for mean reconstruction at report time).
  double sum() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  // Double adds via CAS: std::atomic<double>::fetch_add needs hardware
  // support we do not want to assume.
  std::atomic<double> sum_{0.0};
};

/// Accumulated monotonic-clock time plus call count; fed by ScopedTimer.
/// Timings are diagnostics, not part of the determinism contract.
class TimerStat {
 public:
  void Record(std::chrono::nanoseconds elapsed) {
    calls_.Add(1);
    nanos_.Add(static_cast<uint64_t>(elapsed.count()));
  }
  /// Bulk merge used by MetricsRegistry::MergeFrom.
  void Add(uint64_t calls, uint64_t nanos) {
    calls_.Add(calls);
    nanos_.Add(nanos);
  }
  uint64_t calls() const { return calls_.value(); }
  double total_seconds() const {
    return static_cast<double>(nanos_.value()) * 1e-9;
  }
  uint64_t total_nanos() const { return nanos_.value(); }

 private:
  Counter calls_;
  Counter nanos_;
};

/// RAII timer: records the scope's monotonic wall time into a TimerStat on
/// destruction. A null target makes it a no-op so call sites need no
/// branching when telemetry is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat* target)
      : target_(target),
        start_(target ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point()) {}
  ~ScopedTimer() {
    if (target_ != nullptr) {
      target_->Record(std::chrono::steady_clock::now() - start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat* target_;
  std::chrono::steady_clock::time_point start_;
};

/// Immutable copy of a registry's state, for export and assertions.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1, last = overflow.
    uint64_t total = 0;
    double sum = 0.0;
  };
  std::map<std::string, HistogramData> histograms;
  struct TimerData {
    uint64_t calls = 0;
    uint64_t nanos = 0;
    double seconds = 0.0;
  };
  std::map<std::string, TimerData> timers;
};

/// Named instrument directory. Get* registers on first use and returns a
/// stable pointer; recording through that pointer never takes the mutex.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// Re-registering an existing histogram ignores `upper_bounds` and
  /// returns the original (bounds are fixed for mergeability).
  Histogram* GetHistogram(std::string_view name,
                          std::span<const double> upper_bounds);
  TimerStat* GetTimer(std::string_view name);

  /// Adds every instrument of `other` into this registry (counters and
  /// histograms sum; gauges take `other`'s value; timers sum).
  void MergeFrom(const MetricsRegistry& other);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;  // Guards the maps, never the instruments.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<TimerStat>> timers_;
};

/// Equally spaced bucket bounds {step, 2*step, ..., count*step} —
/// convenience for frequency-vs-cap and norm histograms.
std::vector<double> LinearBuckets(double step, size_t count);

/// Exponential bounds {start, start*factor, ...} (count entries).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

}  // namespace privim

#endif  // PRIVIM_OBS_METRICS_H_
