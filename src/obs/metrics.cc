#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace privim {

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  PRIVIM_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  PRIVIM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be increasing";
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double x) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Merge(const Histogram& other) {
  PRIVIM_CHECK(bounds_ == other.bounds_)
      << "cannot merge histograms with different bucket bounds";
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  const double add = other.sum();
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + add,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t Histogram::total_count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

namespace {

template <typename T, typename... Args>
T* GetOrCreate(std::map<std::string, std::unique_ptr<T>>& map,
               std::string_view name, Args&&... args) {
  auto it = map.find(std::string(name));
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<T>(std::forward<Args>(args)...))
             .first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(counters_, name);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(
    std::string_view name, std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return it->second.get();
}

TimerStat* MetricsRegistry::GetTimer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(timers_, name);
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  MetricsSnapshot snap = other.Snapshot();
  for (const auto& [name, value] : snap.counters) {
    GetCounter(name)->Add(value);
  }
  for (const auto& [name, value] : snap.gauges) {
    GetGauge(name)->Set(value);
  }
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, hist] : other.histograms_) {
      GetHistogram(name, hist->bounds())->Merge(*hist);
    }
  }
  for (const auto& [name, timer] : snap.timers) {
    GetTimer(name)->Add(timer.calls, timer.nanos);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.counts = h->counts();
    data.total = h->total_count();
    data.sum = h->sum();
    snap.histograms[name] = std::move(data);
  }
  for (const auto& [name, t] : timers_) {
    MetricsSnapshot::TimerData data;
    data.calls = t->calls();
    data.nanos = t->total_nanos();
    data.seconds = t->total_seconds();
    snap.timers[name] = data;
  }
  return snap;
}

std::vector<double> LinearBuckets(double step, size_t count) {
  PRIVIM_CHECK_GT(step, 0.0);
  PRIVIM_CHECK_GT(count, 0u);
  std::vector<double> bounds(count);
  for (size_t i = 0; i < count; ++i) {
    bounds[i] = step * static_cast<double>(i + 1);
  }
  return bounds;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  PRIVIM_CHECK_GT(start, 0.0);
  PRIVIM_CHECK_GT(factor, 1.0);
  PRIVIM_CHECK_GT(count, 0u);
  std::vector<double> bounds(count);
  double b = start;
  for (size_t i = 0; i < count; ++i) {
    bounds[i] = b;
    b *= factor;
  }
  return bounds;
}

}  // namespace privim
