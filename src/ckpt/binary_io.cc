#include "ckpt/binary_io.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/string_util.h"

namespace privim {

namespace {

constexpr char kMagic[8] = {'P', 'R', 'I', 'V', 'C', 'K', 'P', 'T'};

void AppendLe(std::vector<uint8_t>& out, uint64_t v, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

uint64_t DecodeLe(std::span<const uint8_t> bytes) {
  uint64_t v = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    v |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return v;
}

}  // namespace

uint64_t Fnv1a(std::span<const uint8_t> bytes, uint64_t seed) {
  uint64_t h = seed;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void BinaryWriter::WriteU8(uint8_t v) { payload_.push_back(v); }

void BinaryWriter::WriteU32(uint32_t v) { AppendLe(payload_, v, 4); }

void BinaryWriter::WriteU64(uint64_t v) { AppendLe(payload_, v, 8); }

void BinaryWriter::WriteI64(int64_t v) {
  AppendLe(payload_, static_cast<uint64_t>(v), 8);
}

void BinaryWriter::WriteFloat(float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU32(bits);
}

void BinaryWriter::WriteDouble(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  payload_.insert(payload_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteFloatVec(std::span<const float> v) {
  WriteU64(v.size());
  for (float x : v) WriteFloat(x);
}

void BinaryWriter::WriteDoubleVec(std::span<const double> v) {
  WriteU64(v.size());
  for (double x : v) WriteDouble(x);
}

void BinaryWriter::WriteU64Vec(std::span<const uint64_t> v) {
  WriteU64(v.size());
  for (uint64_t x : v) WriteU64(x);
}

void BinaryWriter::WriteSizeVec(std::span<const size_t> v) {
  WriteU64(v.size());
  for (size_t x : v) WriteU64(static_cast<uint64_t>(x));
}

void BinaryWriter::WriteU32Vec(std::span<const uint32_t> v) {
  WriteU64(v.size());
  for (uint32_t x : v) WriteU32(x);
}

Status BinaryWriter::Commit(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::IoError(StrFormat("cannot create directory '%s': %s",
                                       target.parent_path().c_str(),
                                       ec.message().c_str()));
    }
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError(StrFormat("cannot open '%s'", tmp.c_str()));
    }
    std::vector<uint8_t> header;
    header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
    AppendLe(header, version_, 4);
    AppendLe(header, kind_, 4);
    AppendLe(header, payload_.size(), 8);
    out.write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(payload_.data()),
              static_cast<std::streamsize>(payload_.size()));
    std::vector<uint8_t> footer;
    AppendLe(footer, Fnv1a(payload_), 8);
    out.write(reinterpret_cast<const char*>(footer.data()),
              static_cast<std::streamsize>(footer.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError(StrFormat("write failed for '%s'", tmp.c_str()));
    }
  }
  // The rename is the commit point: readers either see the previous
  // complete checkpoint or this one, never a prefix.
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("cannot rename '%s' over '%s': %s",
                                     tmp.c_str(), path.c_str(),
                                     ec.message().c_str()));
  }
  return Status::OK();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path,
                                        uint32_t expect_version,
                                        uint32_t expect_kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::vector<uint8_t> file((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  constexpr size_t kHeader = 8 + 4 + 4 + 8;
  if (file.size() < kHeader + 8) {
    return Status::IoError(
        StrFormat("'%s' is too short to be a checkpoint", path.c_str()));
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError(
        StrFormat("'%s' is not a privim checkpoint (bad magic)",
                  path.c_str()));
  }
  const uint32_t version =
      static_cast<uint32_t>(DecodeLe({file.data() + 8, 4}));
  const uint32_t kind =
      static_cast<uint32_t>(DecodeLe({file.data() + 12, 4}));
  if (version != expect_version) {
    return Status::FailedPrecondition(StrFormat(
        "'%s' has checkpoint version %u, this build reads version %u",
        path.c_str(), version, expect_version));
  }
  if (kind != expect_kind) {
    return Status::FailedPrecondition(StrFormat(
        "'%s' holds checkpoint kind %u, expected kind %u", path.c_str(),
        kind, expect_kind));
  }
  const uint64_t length = DecodeLe({file.data() + 16, 8});
  if (file.size() != kHeader + length + 8) {
    return Status::IoError(StrFormat(
        "'%s' is truncated: header promises %llu payload bytes, file has "
        "%zu",
        path.c_str(), static_cast<unsigned long long>(length), file.size()));
  }
  const std::span<const uint8_t> payload{file.data() + kHeader,
                                         static_cast<size_t>(length)};
  const uint64_t want_hash = DecodeLe({file.data() + kHeader + length, 8});
  if (Fnv1a(payload) != want_hash) {
    return Status::IoError(StrFormat(
        "'%s' is corrupted: payload checksum mismatch", path.c_str()));
  }
  BinaryReader reader;
  reader.payload_.assign(payload.begin(), payload.end());
  return reader;
}

Result<std::span<const uint8_t>> BinaryReader::Take(size_t n) {
  if (payload_.size() - pos_ < n) {
    return Status::IoError(StrFormat(
        "checkpoint payload underrun: need %zu bytes, %zu left", n,
        payload_.size() - pos_));
  }
  std::span<const uint8_t> out{payload_.data() + pos_, n};
  pos_ += n;
  return out;
}

Result<uint8_t> BinaryReader::ReadU8() {
  PRIVIM_ASSIGN_OR_RETURN(std::span<const uint8_t> b, Take(1));
  return b[0];
}

Result<uint32_t> BinaryReader::ReadU32() {
  PRIVIM_ASSIGN_OR_RETURN(std::span<const uint8_t> b, Take(4));
  return static_cast<uint32_t>(DecodeLe(b));
}

Result<uint64_t> BinaryReader::ReadU64() {
  PRIVIM_ASSIGN_OR_RETURN(std::span<const uint8_t> b, Take(8));
  return DecodeLe(b);
}

Result<int64_t> BinaryReader::ReadI64() {
  PRIVIM_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<float> BinaryReader::ReadFloat() {
  PRIVIM_ASSIGN_OR_RETURN(uint32_t bits, ReadU32());
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  PRIVIM_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  PRIVIM_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(std::span<const uint8_t> b,
                          Take(static_cast<size_t>(n)));
  return std::string(b.begin(), b.end());
}

Result<std::vector<float>> BinaryReader::ReadFloatVec() {
  PRIVIM_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  std::vector<float> out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    PRIVIM_ASSIGN_OR_RETURN(float v, ReadFloat());
    out.push_back(v);
  }
  return out;
}

Result<std::vector<double>> BinaryReader::ReadDoubleVec() {
  PRIVIM_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    PRIVIM_ASSIGN_OR_RETURN(double v, ReadDouble());
    out.push_back(v);
  }
  return out;
}

Result<std::vector<uint64_t>> BinaryReader::ReadU64Vec() {
  PRIVIM_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    PRIVIM_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    out.push_back(v);
  }
  return out;
}

Result<std::vector<size_t>> BinaryReader::ReadSizeVec() {
  PRIVIM_ASSIGN_OR_RETURN(std::vector<uint64_t> raw, ReadU64Vec());
  return std::vector<size_t>(raw.begin(), raw.end());
}

Result<std::vector<uint32_t>> BinaryReader::ReadU32Vec() {
  PRIVIM_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  std::vector<uint32_t> out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    PRIVIM_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
    out.push_back(v);
  }
  return out;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace privim
