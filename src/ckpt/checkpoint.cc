#include "ckpt/checkpoint.h"

#include <cstring>

#include "ckpt/binary_io.h"
#include "common/string_util.h"

namespace privim {

namespace {

// Format versions, bumped whenever a struct gains/loses/retypes a field.
// The reader rejects any other version outright (no migration shims — a
// checkpoint is transient state, not an archival format).
constexpr uint32_t kTrainerVersion = 1;
constexpr uint32_t kPipelineVersion = 1;
constexpr uint32_t kTrainerKind = 1;
constexpr uint32_t kPipelineKind = 2;

void WriteRngState(BinaryWriter& w, const RngState& state) {
  for (uint64_t word : state.s) w.WriteU64(word);
  w.WriteDouble(state.gauss_spare);
  w.WriteU8(state.has_gauss_spare ? 1 : 0);
}

Result<RngState> ReadRngState(BinaryReader& r) {
  RngState state;
  for (auto& word : state.s) {
    PRIVIM_ASSIGN_OR_RETURN(word, r.ReadU64());
  }
  PRIVIM_ASSIGN_OR_RETURN(state.gauss_spare, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(uint8_t flag, r.ReadU8());
  state.has_gauss_spare = flag != 0;
  return state;
}

void WriteOptimizerState(BinaryWriter& w, const OptimizerState& state) {
  w.WriteString(state.kind);
  w.WriteI64(state.step);
  w.WriteFloatVec(state.m);
  w.WriteFloatVec(state.v);
}

Result<OptimizerState> ReadOptimizerState(BinaryReader& r) {
  OptimizerState state;
  PRIVIM_ASSIGN_OR_RETURN(state.kind, r.ReadString());
  PRIVIM_ASSIGN_OR_RETURN(state.step, r.ReadI64());
  PRIVIM_ASSIGN_OR_RETURN(state.m, r.ReadFloatVec());
  PRIVIM_ASSIGN_OR_RETURN(state.v, r.ReadFloatVec());
  return state;
}

void WriteGraph(BinaryWriter& w, const Graph& g) {
  w.WriteU64(g.num_nodes());
  w.WriteU64(g.num_edges());
  // Stream straight from the CSR — snapshotting a million-node graph must
  // not materialize an O(E) edge list next to it.
  g.ForEachEdge([&w](NodeId u, NodeId v, float weight) {
    w.WriteU32(u);
    w.WriteU32(v);
    w.WriteFloat(weight);
  });
}

Result<Graph> ReadGraph(BinaryReader& r) {
  PRIVIM_ASSIGN_OR_RETURN(uint64_t num_nodes, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(uint64_t num_edges, r.ReadU64());
  GraphBuilder builder(static_cast<size_t>(num_nodes));
  for (uint64_t i = 0; i < num_edges; ++i) {
    PRIVIM_ASSIGN_OR_RETURN(uint32_t src, r.ReadU32());
    PRIVIM_ASSIGN_OR_RETURN(uint32_t dst, r.ReadU32());
    PRIVIM_ASSIGN_OR_RETURN(float weight, r.ReadFloat());
    PRIVIM_RETURN_NOT_OK(builder.AddEdge(src, dst, weight));
  }
  // Edges were dumped in CSR order (sorted, deduplicated), so Build() is a
  // content-identity round trip.
  return builder.Build();
}

void WriteContainer(BinaryWriter& w, const SubgraphContainer& container) {
  w.WriteU64(container.size());
  for (const Subgraph& sub : container.subgraphs()) {
    w.WriteU32Vec(sub.nodes);
    WriteGraph(w, sub.local);
  }
}

Result<SubgraphContainer> ReadContainer(BinaryReader& r) {
  PRIVIM_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  SubgraphContainer container;
  for (uint64_t i = 0; i < count; ++i) {
    Subgraph sub;
    PRIVIM_ASSIGN_OR_RETURN(sub.nodes, r.ReadU32Vec());
    PRIVIM_ASSIGN_OR_RETURN(sub.local, ReadGraph(r));
    container.Add(std::move(sub));
  }
  return container;
}

void WriteAccountantState(BinaryWriter& w, const AccountantState& state) {
  w.WriteU64(state.spec.max_occurrences);
  w.WriteU64(state.spec.container_size);
  w.WriteU64(state.spec.batch_size);
  w.WriteU64(state.spec.iterations);
  w.WriteDouble(state.spec.clip_bound);
  w.WriteDouble(state.sigma);
  w.WriteDouble(state.delta);
  w.WriteDouble(state.epsilon_spent);
  w.WriteDoubleVec(state.ledger);
}

Result<AccountantState> ReadAccountantState(BinaryReader& r) {
  AccountantState state;
  PRIVIM_ASSIGN_OR_RETURN(uint64_t max_occ, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(uint64_t container, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(uint64_t batch, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(uint64_t iterations, r.ReadU64());
  state.spec.max_occurrences = static_cast<size_t>(max_occ);
  state.spec.container_size = static_cast<size_t>(container);
  state.spec.batch_size = static_cast<size_t>(batch);
  state.spec.iterations = static_cast<size_t>(iterations);
  PRIVIM_ASSIGN_OR_RETURN(state.spec.clip_bound, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(state.sigma, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(state.delta, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(state.epsilon_spent, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(state.ledger, r.ReadDoubleVec());
  return state;
}

void RecordWrite(MetricsRegistry* metrics, size_t bytes) {
  if (metrics == nullptr) return;
  metrics->GetCounter("ckpt.writes")->Add(1);
  metrics->GetCounter("ckpt.write_bytes")->Add(bytes);
}

void RecordLoad(MetricsRegistry* metrics, size_t bytes) {
  if (metrics == nullptr) return;
  metrics->GetCounter("ckpt.restores")->Add(1);
  metrics->GetCounter("ckpt.restore_bytes")->Add(bytes);
}

}  // namespace

std::string PipelineCheckpointPath(const std::string& dir) {
  return dir + "/pipeline.ckpt";
}

std::string TrainerCheckpointPath(const std::string& dir) {
  return dir + "/train.ckpt";
}

Status SaveTrainerState(const TrainerState& state, const std::string& path,
                        MetricsRegistry* metrics) {
  ScopedTimer timer(metrics ? metrics->GetTimer("ckpt.write") : nullptr);
  BinaryWriter w(kTrainerVersion, kTrainerKind);
  w.WriteU64(state.iteration);
  w.WriteFloatVec(state.params);
  WriteOptimizerState(w, state.optimizer);
  WriteRngState(w, state.rng);
  w.WriteDoubleVec(state.tail_sum);
  w.WriteU64(state.tail_count);
  w.WriteDoubleVec(state.losses);
  w.WriteDoubleVec(state.grad_norms);
  w.WriteDouble(state.norm_accum);
  w.WriteU64(state.norm_count);
  PRIVIM_RETURN_NOT_OK(w.Commit(path));
  RecordWrite(metrics, w.payload_size());
  return Status::OK();
}

Result<TrainerState> LoadTrainerState(const std::string& path,
                                      MetricsRegistry* metrics) {
  ScopedTimer timer(metrics ? metrics->GetTimer("ckpt.restore") : nullptr);
  PRIVIM_ASSIGN_OR_RETURN(
      BinaryReader r, BinaryReader::Open(path, kTrainerVersion, kTrainerKind));
  TrainerState state;
  PRIVIM_ASSIGN_OR_RETURN(state.iteration, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.params, r.ReadFloatVec());
  PRIVIM_ASSIGN_OR_RETURN(state.optimizer, ReadOptimizerState(r));
  PRIVIM_ASSIGN_OR_RETURN(state.rng, ReadRngState(r));
  PRIVIM_ASSIGN_OR_RETURN(state.tail_sum, r.ReadDoubleVec());
  PRIVIM_ASSIGN_OR_RETURN(state.tail_count, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.losses, r.ReadDoubleVec());
  PRIVIM_ASSIGN_OR_RETURN(state.grad_norms, r.ReadDoubleVec());
  PRIVIM_ASSIGN_OR_RETURN(state.norm_accum, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(state.norm_count, r.ReadU64());
  if (!r.AtEnd()) {
    return Status::IoError(StrFormat(
        "'%s' has %zu trailing bytes after the trainer state", path.c_str(),
        r.remaining()));
  }
  RecordLoad(metrics, r.payload_size());
  return state;
}

Status SavePipelineState(const PipelineState& state, const std::string& path,
                         MetricsRegistry* metrics) {
  ScopedTimer timer(metrics ? metrics->GetTimer("ckpt.write") : nullptr);
  BinaryWriter w(kPipelineVersion, kPipelineKind);
  w.WriteU32(static_cast<uint32_t>(state.stage));
  w.WriteU64(state.fingerprint);
  WriteRngState(w, state.rng);
  WriteContainer(w, state.container);
  w.WriteU64(state.occurrence_bound);
  w.WriteU64(state.container_size);
  w.WriteU64(state.stage1_count);
  w.WriteU64(state.stage2_count);
  w.WriteU64(state.audited_max_occurrence);
  w.WriteDouble(state.preprocessing_seconds);
  WriteAccountantState(w, state.accountant);
  w.WriteDouble(state.clip_bound);
  w.WriteFloat(state.learning_rate);
  w.WriteDouble(state.noise_stddev);
  w.WriteU32(state.noise_kind);
  w.WriteU64(state.batch_size);
  w.WriteFloatVec(state.model_params);
  w.WriteDouble(state.per_epoch_seconds);
  w.WriteDouble(state.final_loss);
  PRIVIM_RETURN_NOT_OK(w.Commit(path));
  RecordWrite(metrics, w.payload_size());
  return Status::OK();
}

Result<PipelineState> LoadPipelineState(const std::string& path,
                                        MetricsRegistry* metrics) {
  ScopedTimer timer(metrics ? metrics->GetTimer("ckpt.restore") : nullptr);
  PRIVIM_ASSIGN_OR_RETURN(
      BinaryReader r,
      BinaryReader::Open(path, kPipelineVersion, kPipelineKind));
  PipelineState state;
  PRIVIM_ASSIGN_OR_RETURN(uint32_t stage, r.ReadU32());
  if (stage > static_cast<uint32_t>(PipelineStage::kTrained)) {
    return Status::IoError(
        StrFormat("'%s' holds unknown pipeline stage %u", path.c_str(),
                  stage));
  }
  state.stage = static_cast<PipelineStage>(stage);
  PRIVIM_ASSIGN_OR_RETURN(state.fingerprint, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.rng, ReadRngState(r));
  PRIVIM_ASSIGN_OR_RETURN(state.container, ReadContainer(r));
  PRIVIM_ASSIGN_OR_RETURN(state.occurrence_bound, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.container_size, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.stage1_count, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.stage2_count, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.audited_max_occurrence, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.preprocessing_seconds, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(state.accountant, ReadAccountantState(r));
  PRIVIM_ASSIGN_OR_RETURN(state.clip_bound, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(state.learning_rate, r.ReadFloat());
  PRIVIM_ASSIGN_OR_RETURN(state.noise_stddev, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(state.noise_kind, r.ReadU32());
  PRIVIM_ASSIGN_OR_RETURN(state.batch_size, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.model_params, r.ReadFloatVec());
  PRIVIM_ASSIGN_OR_RETURN(state.per_epoch_seconds, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(state.final_loss, r.ReadDouble());
  if (!r.AtEnd()) {
    return Status::IoError(StrFormat(
        "'%s' has %zu trailing bytes after the pipeline state", path.c_str(),
        r.remaining()));
  }
  RecordLoad(metrics, r.payload_size());
  return state;
}

uint64_t GraphContentFingerprint(const Graph& g, uint64_t seed) {
  uint64_t h = seed;
  auto mix_u64 = [&h](uint64_t v) {
    uint8_t bytes[8];
    std::memcpy(bytes, &v, sizeof(bytes));
    h = Fnv1a({bytes, sizeof(bytes)}, h);
  };
  mix_u64(g.num_nodes());
  mix_u64(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto neighbors = g.OutNeighbors(u);
    const auto weights = g.OutWeights(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      uint32_t wbits = 0;
      std::memcpy(&wbits, &weights[i], sizeof(wbits));
      mix_u64((static_cast<uint64_t>(u) << 32) | neighbors[i]);
      mix_u64(wbits);
    }
  }
  return h;
}

}  // namespace privim
