#include "ckpt/failpoint.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"
#include "common/string_util.h"

namespace privim {

namespace {

struct FailpointRegistry {
  std::mutex mu;
  bool env_checked = false;
  bool armed = false;
  FailpointSpec spec;
  int hits_remaining = 0;
};

FailpointRegistry& Registry() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

/// Fast-path gate: true while any fail point might be armed. Starts true
/// only in the "environment not yet inspected" state so that processes
/// without PRIVIM_FAILPOINT settle to a single relaxed load per hit.
std::atomic<bool> g_maybe_armed{true};

void LoadFromEnvLocked(FailpointRegistry& reg) {
  reg.env_checked = true;
  const char* env = std::getenv("PRIVIM_FAILPOINT");
  if (env == nullptr || env[0] == '\0') return;
  Result<FailpointSpec> parsed = ParseFailpointSpec(env);
  // A malformed spec must not silently run without fault injection — the
  // test would "pass" while proving nothing — so fail loudly.
  PRIVIM_CHECK(parsed.ok()) << "bad PRIVIM_FAILPOINT: "
                            << parsed.status().ToString();
  reg.armed = true;
  reg.spec = *parsed;
  reg.hits_remaining = reg.spec.skip;
}

}  // namespace

Result<FailpointSpec> ParseFailpointSpec(std::string_view spec) {
  FailpointSpec out;
  size_t start = 0;
  size_t field = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(':', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view token = spec.substr(start, end - start);
    if (field == 0) {
      if (token.empty()) {
        return Status::InvalidArgument("failpoint spec has an empty name");
      }
      out.name = std::string(token);
    } else if (token == "exit") {
      out.action = FailpointAction::kExit;
    } else if (token == "status") {
      out.action = FailpointAction::kStatus;
    } else if (token.rfind("skip=", 0) == 0) {
      const std::string digits(token.substr(5));
      char* parse_end = nullptr;
      const long v = std::strtol(digits.c_str(), &parse_end, 10);
      if (digits.empty() || *parse_end != '\0' || v < 0) {
        return Status::InvalidArgument(
            StrFormat("bad failpoint skip count '%s'", digits.c_str()));
      }
      out.skip = static_cast<int>(v);
    } else {
      return Status::InvalidArgument(StrFormat(
          "unknown failpoint token '%s' (want exit|status|skip=N)",
          std::string(token).c_str()));
    }
    ++field;
    start = end + 1;
    if (end == spec.size()) break;
  }
  return out;
}

Status Failpoint(std::string_view name) {
  if (!g_maybe_armed.load(std::memory_order_relaxed)) return Status::OK();
  FailpointRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (!reg.env_checked) LoadFromEnvLocked(reg);
  if (!reg.armed) {
    g_maybe_armed.store(false, std::memory_order_relaxed);
    return Status::OK();
  }
  if (reg.spec.name != name) return Status::OK();
  if (reg.hits_remaining > 0) {
    --reg.hits_remaining;
    return Status::OK();
  }
  if (reg.spec.action == FailpointAction::kExit) {
    // _exit, not exit: no atexit handlers, no stream flushing, no static
    // destructors — the injected fault must look like a hard kill, so the
    // only state a resumed run can lean on is what was already committed.
    _exit(kFailpointExitCode);
  }
  reg.armed = false;
  g_maybe_armed.store(false, std::memory_order_relaxed);
  return Status::Aborted(
      StrFormat("failpoint '%s' hit", std::string(name).c_str()));
}

void ArmFailpoint(std::string_view name, FailpointAction action, int skip) {
  FailpointRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.env_checked = true;  // Programmatic arming overrides the environment.
  reg.armed = true;
  reg.spec.name = std::string(name);
  reg.spec.action = action;
  reg.spec.skip = skip;
  reg.hits_remaining = skip;
  g_maybe_armed.store(true, std::memory_order_relaxed);
}

void ClearFailpoints() {
  FailpointRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.env_checked = true;
  reg.armed = false;
  g_maybe_armed.store(false, std::memory_order_relaxed);
}

}  // namespace privim
