#ifndef PRIVIM_CKPT_CHECKPOINT_H_
#define PRIVIM_CKPT_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "dp/privacy_params.h"
#include "graph/graph.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "sampling/container.h"

namespace privim {

/// Checkpoint/resume subsystem (the durable-state layer of the pipeline).
///
/// A PrivIM run is Extract -> Calibrate -> Train -> Select -> Evaluate;
/// training alone is hundreds of DP-SGD iterations, and a crash anywhere
/// used to throw the whole run away — including the privacy budget already
/// spent. This layer persists two kinds of versioned binary snapshots
/// (binary_io.h format) into a caller-chosen directory:
///
///  * `pipeline.ckpt` — one per stage boundary, holding everything the
///    remaining stages need: partial run outputs, the subgraph container,
///    the calibrated DP parameters and epsilon ledger, the trained model,
///    and the caller RNG state at the commit point.
///  * `train.ckpt`    — periodic mid-training snapshots: parameters,
///    optimizer moments, tail-averaging accumulator, running stats, and
///    the trainer RNG state at an iteration boundary.
///
/// Every scalar round-trips bit-exactly (raw IEEE bits), every RNG is
/// captured including its Box-Muller spare, and float accumulations are
/// restored rather than recomputed — so a resumed run's seed set, spread,
/// and epsilon_spent are bit-identical to the uninterrupted run at any
/// thread count (proven by tests/ckpt/resume_test.cc under fail-point
/// kills, see failpoint.h).
///
/// Privacy note: checkpoints contain the noisy DP-SGD iterates and the
/// accountant's ledger — all outputs of the private mechanism — plus the
/// extracted subgraph container. The container is *training data*, not a
/// private release: checkpoint directories must be treated with the same
/// confidentiality as the input graph itself (docs/api.md).

/// Where and how often to checkpoint. Embedded in PrivImConfig.
struct CheckpointOptions {
  /// Directory for the snapshot files; empty disables checkpointing.
  std::string dir;
  /// Resume from the snapshots in `dir` when present (a missing file means
  /// a fresh run; a fingerprint mismatch is an error, not a silent
  /// restart).
  bool resume = false;
  /// Training iterations between `train.ckpt` writes (>= 1).
  size_t train_every = 10;

  bool enabled() const { return !dir.empty(); }
};

/// Snapshot file names within CheckpointOptions::dir.
std::string PipelineCheckpointPath(const std::string& dir);
std::string TrainerCheckpointPath(const std::string& dir);

/// Complete mid-training state at an iteration boundary: everything
/// TrainDpGnn needs to continue as if it had never stopped.
struct TrainerState {
  /// Next iteration to execute (the first `iteration` iterations are
  /// complete and folded into the fields below).
  uint64_t iteration = 0;
  std::vector<float> params;
  OptimizerState optimizer;
  RngState rng;
  /// Polyak tail-averaging accumulator (double precision, restored bit-
  /// exactly so the final average cannot drift).
  std::vector<double> tail_sum;
  uint64_t tail_count = 0;
  /// Per-iteration running stats for TrainStats continuity.
  std::vector<double> losses;
  std::vector<double> grad_norms;
  double norm_accum = 0.0;
  uint64_t norm_count = 0;

  bool operator==(const TrainerState&) const = default;
};

Status SaveTrainerState(const TrainerState& state, const std::string& path,
                        MetricsRegistry* metrics = nullptr);
Result<TrainerState> LoadTrainerState(const std::string& path,
                                      MetricsRegistry* metrics = nullptr);

/// The privacy-accounting outcome of the calibration stage: the spec the
/// accountant was built from, the calibrated noise multiplier, and the
/// per-iteration epsilon ledger. Persisting the ledger is what lets a
/// resumed run report cumulative epsilon for iterations it never re-ran.
struct AccountantState {
  DpSgdSpec spec;
  double sigma = 0.0;
  double delta = 0.0;
  double epsilon_spent = 0.0;
  std::vector<double> ledger;

  bool operator==(const AccountantState&) const = default;
};

/// Pipeline progress marker. Ordering is meaningful: a checkpoint at stage
/// S contains everything stages <= S produced.
enum class PipelineStage : uint32_t {
  kNone = 0,
  kExtracted = 1,   // Module 1 done: container + occurrence audit.
  kCalibrated = 2,  // Module 2 done: clip bound, sigma, ledger.
  kTrained = 3,     // Module 3 done: final model parameters.
};

/// One stage-boundary snapshot of RunMethod. Fields are populated
/// cumulatively as `stage` advances; the container is dropped once the
/// model is trained (nothing downstream reads it).
struct PipelineState {
  PipelineStage stage = PipelineStage::kNone;
  /// Binds the snapshot to (config, train graph, eval graph); resuming
  /// against anything else is rejected.
  uint64_t fingerprint = 0;
  /// Caller RNG at this stage's commit point.
  RngState rng;

  // ---- kExtracted ----
  SubgraphContainer container;
  uint64_t occurrence_bound = 0;
  uint64_t container_size = 0;
  uint64_t stage1_count = 0;
  uint64_t stage2_count = 0;
  uint64_t audited_max_occurrence = 0;
  double preprocessing_seconds = 0.0;

  // ---- kCalibrated ----
  AccountantState accountant;
  double clip_bound = 0.0;
  float learning_rate = 0.0f;
  double noise_stddev = 0.0;
  uint32_t noise_kind = 0;
  uint64_t batch_size = 0;

  // ---- kTrained ----
  std::vector<float> model_params;
  double per_epoch_seconds = 0.0;
  double final_loss = 0.0;
};

Status SavePipelineState(const PipelineState& state, const std::string& path,
                         MetricsRegistry* metrics = nullptr);
Result<PipelineState> LoadPipelineState(const std::string& path,
                                        MetricsRegistry* metrics = nullptr);

/// Content fingerprint of a graph (nodes, arcs, weights). Unlike
/// Graph::IdentityFingerprint this hashes the *content*, so the same
/// dataset re-synthesized in a new process matches — exactly what resume
/// needs.
uint64_t GraphContentFingerprint(const Graph& g, uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace privim

#endif  // PRIVIM_CKPT_CHECKPOINT_H_
