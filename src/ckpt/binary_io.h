#ifndef PRIVIM_CKPT_BINARY_IO_H_
#define PRIVIM_CKPT_BINARY_IO_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace privim {

/// Versioned, checksummed binary snapshot files (the checkpoint substrate).
///
/// File layout:
///   magic   8 bytes  "PRIVCKPT"
///   version u32      format version of the enclosed `kind`
///   kind    u32      payload discriminator (caller-defined)
///   length  u64      payload byte count
///   payload length bytes
///   hash    u64      FNV-1a over the payload
///
/// All integers are little-endian; floats and doubles are stored as their
/// raw IEEE-754 bits, so every scalar round-trips bit-exactly — the
/// property the resume determinism contract rests on. The reader rejects
/// wrong magic, wrong version, wrong kind, truncation, and payload
/// corruption (hash mismatch) with a descriptive Status instead of
/// producing garbage state.

/// FNV-1a over a byte span (the payload checksum; also reused for the
/// config/graph fingerprints in checkpoint.h).
uint64_t Fnv1a(std::span<const uint8_t> bytes, uint64_t seed = 0xcbf29ce484222325ULL);

/// Accumulates a payload in memory and commits it atomically: the file is
/// written to `<path>.tmp` and renamed over `path` only after a successful
/// flush, so a crash mid-write can never leave a half-written checkpoint
/// where a valid one used to be.
class BinaryWriter {
 public:
  BinaryWriter(uint32_t version, uint32_t kind)
      : version_(version), kind_(kind) {}

  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteFloat(float v);
  void WriteDouble(double v);
  /// u64 length prefix + raw bytes.
  void WriteString(const std::string& s);
  void WriteFloatVec(std::span<const float> v);
  void WriteDoubleVec(std::span<const double> v);
  void WriteU64Vec(std::span<const uint64_t> v);
  /// size_t vectors are stored as u64 (portable across word sizes).
  void WriteSizeVec(std::span<const size_t> v);
  void WriteU32Vec(std::span<const uint32_t> v);

  size_t payload_size() const { return payload_.size(); }

  /// Writes header + payload + checksum to `path` via tmp-file + rename.
  Status Commit(const std::string& path) const;

 private:
  uint32_t version_;
  uint32_t kind_;
  std::vector<uint8_t> payload_;
};

/// Loads a snapshot file fully into memory, validates the envelope, and
/// hands out bounds-checked reads. Every reader returns Result so a short
/// or corrupted file surfaces as an error at the exact field.
class BinaryReader {
 public:
  /// Opens `path` and validates magic, version, kind, length, and payload
  /// hash. A version other than `expect_version` fails with
  /// FailedPrecondition naming both versions (the version-mismatch path).
  static Result<BinaryReader> Open(const std::string& path,
                                   uint32_t expect_version,
                                   uint32_t expect_kind);

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<float> ReadFloat();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<std::vector<float>> ReadFloatVec();
  Result<std::vector<double>> ReadDoubleVec();
  Result<std::vector<uint64_t>> ReadU64Vec();
  Result<std::vector<size_t>> ReadSizeVec();
  Result<std::vector<uint32_t>> ReadU32Vec();

  /// True once every payload byte has been consumed; load functions check
  /// this to catch trailing garbage.
  bool AtEnd() const { return pos_ == payload_.size(); }
  size_t remaining() const { return payload_.size() - pos_; }
  size_t payload_size() const { return payload_.size(); }

 private:
  BinaryReader() = default;

  Result<std::span<const uint8_t>> Take(size_t n);

  std::vector<uint8_t> payload_;
  size_t pos_ = 0;
};

/// True if a regular file exists at `path` (helper for "resume if a
/// checkpoint is present" flows).
bool FileExists(const std::string& path);

}  // namespace privim

#endif  // PRIVIM_CKPT_BINARY_IO_H_
