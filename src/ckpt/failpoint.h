#ifndef PRIVIM_CKPT_FAILPOINT_H_
#define PRIVIM_CKPT_FAILPOINT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace privim {

/// Fault-injection hooks for the checkpoint/resume tests (off by default).
///
/// A *fail point* is a named commit point in the pipeline — always placed
/// immediately AFTER a checkpoint write has committed — where an armed
/// harness interrupts execution. Tests use them to prove that a run killed
/// at any commit point and resumed from the surviving files reproduces the
/// uninterrupted run bit for bit, instead of assuming it.
///
/// Two interruption styles:
///  * kStatus — Failpoint() returns Status::Aborted, which unwinds the
///    pipeline like any other error. In-process tests use this and then
///    call the pipeline again with resume enabled.
///  * kExit — the process dies on the spot via _exit(kFailpointExitCode),
///    with no destructors and no buffered-stream flushing: the closest
///    portable approximation of a kill -9 / power loss. Subprocess tests
///    and CLI experiments use this.
///
/// Arming is either programmatic (ArmFailpoint, tests) or via the
/// PRIVIM_FAILPOINT environment variable (CLI runs):
///
///   PRIVIM_FAILPOINT=<name>[:exit|:status][:skip=<n>]
///
/// e.g. PRIVIM_FAILPOINT=privim.ckpt.train:exit:skip=2 kills the process
/// at the third hit of the mid-training commit point. The environment is
/// read once, at the first Failpoint() call.
///
/// Cost when nothing is armed: one relaxed atomic load.

/// Exit code used by the kExit action (distinct from ordinary failures so
/// harnesses can assert the death was the injected one).
inline constexpr int kFailpointExitCode = 42;

enum class FailpointAction {
  kStatus,
  kExit,
};

/// Checks the named fail point. Returns OK when unarmed or when the armed
/// name does not match; consumes one skip otherwise; then aborts per the
/// armed action.
Status Failpoint(std::string_view name);

/// Arms `name` programmatically. `skip` hits pass through before the
/// action triggers (hit skip+1 aborts). Replaces any previous arming and
/// suppresses environment parsing for the process lifetime.
void ArmFailpoint(std::string_view name, FailpointAction action,
                  int skip = 0);

/// Disarms everything (and keeps the environment suppressed — tests that
/// cleared a fail point must not have it resurrected by a stale variable).
void ClearFailpoints();

/// Parses a PRIVIM_FAILPOINT-style spec. Exposed for unit tests; returns
/// InvalidArgument on a malformed action or skip token.
struct FailpointSpec {
  std::string name;
  FailpointAction action = FailpointAction::kExit;
  int skip = 0;
};
Result<FailpointSpec> ParseFailpointSpec(std::string_view spec);

}  // namespace privim

#endif  // PRIVIM_CKPT_FAILPOINT_H_
