#include "ckpt/stream_state.h"

#include "ckpt/binary_io.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace privim {

namespace {

constexpr uint32_t kStreamVersion = 1;
// Kinds 1 (trainer) and 2 (pipeline) live in checkpoint.cc.
constexpr uint32_t kStreamKind = 3;

void WriteSpec(BinaryWriter& w, const DpSgdSpec& spec) {
  w.WriteU64(spec.max_occurrences);
  w.WriteU64(spec.container_size);
  w.WriteU64(spec.batch_size);
  w.WriteU64(spec.iterations);
  w.WriteDouble(spec.clip_bound);
}

Result<DpSgdSpec> ReadSpec(BinaryReader& r) {
  DpSgdSpec spec;
  PRIVIM_ASSIGN_OR_RETURN(uint64_t max_occ, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(uint64_t container, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(uint64_t batch, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(uint64_t iterations, r.ReadU64());
  spec.max_occurrences = static_cast<size_t>(max_occ);
  spec.container_size = static_cast<size_t>(container);
  spec.batch_size = static_cast<size_t>(batch);
  spec.iterations = static_cast<size_t>(iterations);
  PRIVIM_ASSIGN_OR_RETURN(spec.clip_bound, r.ReadDouble());
  return spec;
}

void WriteContinualState(BinaryWriter& w,
                         const ContinualAccountant::State& state) {
  w.WriteDouble(state.delta);
  w.WriteDoubleVec(state.gamma_totals);
  w.WriteU64(state.rounds.size());
  for (const ContinualAccountant::Round& round : state.rounds) {
    WriteSpec(w, round.spec);
    w.WriteDouble(round.sigma);
    w.WriteDouble(round.round_epsilon);
    w.WriteDouble(round.cumulative_epsilon);
  }
}

Result<ContinualAccountant::State> ReadContinualState(BinaryReader& r) {
  ContinualAccountant::State state;
  PRIVIM_ASSIGN_OR_RETURN(state.delta, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(state.gamma_totals, r.ReadDoubleVec());
  PRIVIM_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  state.rounds.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    ContinualAccountant::Round round;
    PRIVIM_ASSIGN_OR_RETURN(round.spec, ReadSpec(r));
    PRIVIM_ASSIGN_OR_RETURN(round.sigma, r.ReadDouble());
    PRIVIM_ASSIGN_OR_RETURN(round.round_epsilon, r.ReadDouble());
    PRIVIM_ASSIGN_OR_RETURN(round.cumulative_epsilon, r.ReadDouble());
    state.rounds.push_back(round);
  }
  return state;
}

void WriteEvent(BinaryWriter& w, const UpdateEvent& ev) {
  w.WriteU32(static_cast<uint32_t>(ev.kind));
  w.WriteU32(ev.u);
  w.WriteU32(ev.v);
  w.WriteFloat(ev.weight);
  w.WriteI64(ev.timestamp);
}

Result<UpdateEvent> ReadEvent(BinaryReader& r) {
  UpdateEvent ev;
  PRIVIM_ASSIGN_OR_RETURN(uint32_t kind, r.ReadU32());
  if (kind > static_cast<uint32_t>(UpdateKind::kRemoveNode)) {
    return Status::IoError(StrFormat("unknown update-event kind %u", kind));
  }
  ev.kind = static_cast<UpdateKind>(kind);
  PRIVIM_ASSIGN_OR_RETURN(ev.u, r.ReadU32());
  PRIVIM_ASSIGN_OR_RETURN(ev.v, r.ReadU32());
  PRIVIM_ASSIGN_OR_RETURN(ev.weight, r.ReadFloat());
  PRIVIM_ASSIGN_OR_RETURN(ev.timestamp, r.ReadI64());
  return ev;
}

void WriteStepRecord(BinaryWriter& w, const StreamStepRecord& rec) {
  w.WriteU64(rec.batch);
  w.WriteU64(rec.events_applied);
  w.WriteU64(rec.events_skipped);
  w.WriteU64(rec.changed_out_rows);
  w.WriteU64(rec.changed_in_rows);
  w.WriteU64(rec.repaired_sets);
  w.WriteU64(rec.invalidated_balls);
  w.WriteU8(rec.retrained);
  w.WriteU64(rec.visible_nodes);
  w.WriteU64(rec.visible_arcs);
  w.WriteDouble(rec.cumulative_epsilon);
  w.WriteDouble(rec.utility);
  w.WriteDouble(rec.seconds);
}

Result<StreamStepRecord> ReadStepRecord(BinaryReader& r) {
  StreamStepRecord rec;
  PRIVIM_ASSIGN_OR_RETURN(rec.batch, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(rec.events_applied, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(rec.events_skipped, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(rec.changed_out_rows, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(rec.changed_in_rows, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(rec.repaired_sets, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(rec.invalidated_balls, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(rec.retrained, r.ReadU8());
  PRIVIM_ASSIGN_OR_RETURN(rec.visible_nodes, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(rec.visible_arcs, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(rec.cumulative_epsilon, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(rec.utility, r.ReadDouble());
  PRIVIM_ASSIGN_OR_RETURN(rec.seconds, r.ReadDouble());
  return rec;
}

void RecordWrite(MetricsRegistry* metrics, size_t bytes) {
  if (metrics == nullptr) return;
  metrics->GetCounter("ckpt.writes")->Add(1);
  metrics->GetCounter("ckpt.write_bytes")->Add(bytes);
}

void RecordLoad(MetricsRegistry* metrics, size_t bytes) {
  if (metrics == nullptr) return;
  metrics->GetCounter("ckpt.restores")->Add(1);
  metrics->GetCounter("ckpt.restore_bytes")->Add(bytes);
}

}  // namespace

std::string StreamCheckpointPath(const std::string& dir) {
  return dir + "/stream.ckpt";
}

Status SaveStreamState(const StreamState& state, const std::string& path,
                       MetricsRegistry* metrics) {
  ScopedTimer timer(metrics ? metrics->GetTimer("ckpt.write") : nullptr);
  BinaryWriter w(kStreamVersion, kStreamKind);
  w.WriteU64(state.fingerprint);
  w.WriteU64(state.batches_applied);
  w.WriteU64(state.event_log.size());
  for (const UpdateEvent& ev : state.event_log) WriteEvent(w, ev);
  WriteContinualState(w, state.accountant);
  w.WriteU64(state.arcs_at_train);
  w.WriteU64(state.changed_since_train);
  w.WriteU64(state.batches_since_train);
  w.WriteU32Vec(state.seeds);
  w.WriteDoubleVec(state.seed_scores);
  w.WriteU8(state.has_model);
  w.WriteFloatVec(state.model_params);
  w.WriteU64(state.sketch_stream_base);
  w.WriteU64(state.sketch_sets);
  w.WriteU64(state.history.size());
  for (const StreamStepRecord& rec : state.history) WriteStepRecord(w, rec);
  PRIVIM_RETURN_NOT_OK(w.Commit(path));
  RecordWrite(metrics, w.payload_size());
  return Status::OK();
}

Result<StreamState> LoadStreamState(const std::string& path,
                                    MetricsRegistry* metrics) {
  ScopedTimer timer(metrics ? metrics->GetTimer("ckpt.restore") : nullptr);
  PRIVIM_ASSIGN_OR_RETURN(
      BinaryReader r, BinaryReader::Open(path, kStreamVersion, kStreamKind));
  StreamState state;
  PRIVIM_ASSIGN_OR_RETURN(state.fingerprint, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.batches_applied, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(uint64_t log_size, r.ReadU64());
  state.event_log.reserve(static_cast<size_t>(log_size));
  for (uint64_t i = 0; i < log_size; ++i) {
    PRIVIM_ASSIGN_OR_RETURN(UpdateEvent ev, ReadEvent(r));
    state.event_log.push_back(ev);
  }
  PRIVIM_ASSIGN_OR_RETURN(state.accountant, ReadContinualState(r));
  PRIVIM_ASSIGN_OR_RETURN(state.arcs_at_train, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.changed_since_train, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.batches_since_train, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.seeds, r.ReadU32Vec());
  PRIVIM_ASSIGN_OR_RETURN(state.seed_scores, r.ReadDoubleVec());
  PRIVIM_ASSIGN_OR_RETURN(state.has_model, r.ReadU8());
  PRIVIM_ASSIGN_OR_RETURN(state.model_params, r.ReadFloatVec());
  PRIVIM_ASSIGN_OR_RETURN(state.sketch_stream_base, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(state.sketch_sets, r.ReadU64());
  PRIVIM_ASSIGN_OR_RETURN(uint64_t hist_size, r.ReadU64());
  state.history.reserve(static_cast<size_t>(hist_size));
  for (uint64_t i = 0; i < hist_size; ++i) {
    PRIVIM_ASSIGN_OR_RETURN(StreamStepRecord rec, ReadStepRecord(r));
    state.history.push_back(rec);
  }
  if (!r.AtEnd()) {
    return Status::IoError(StrFormat(
        "'%s' has %zu trailing bytes after the stream state", path.c_str(),
        r.remaining()));
  }
  RecordLoad(metrics, r.payload_size());
  return state;
}

}  // namespace privim
