#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace privim {

namespace {

struct RawEdge {
  uint64_t src;
  uint64_t dst;
  float weight;
};

Result<std::vector<RawEdge>> ParseLines(std::istream& in) {
  std::vector<RawEdge> edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    std::istringstream ls{std::string(trimmed)};
    uint64_t src = 0, dst = 0;
    float weight = 1.0f;
    // istream happily wraps negative text into uint64; reject explicitly.
    std::string src_tok, dst_tok;
    std::istringstream probe{std::string(trimmed)};
    probe >> src_tok >> dst_tok;
    const bool negative = (!src_tok.empty() && src_tok[0] == '-') ||
                          (!dst_tok.empty() && dst_tok[0] == '-');
    if (negative || !(ls >> src >> dst)) {
      return Status::IoError(
          StrFormat("malformed edge at line %zu: '%s'", line_no,
                    std::string(trimmed).c_str()));
    }
    ls >> weight;  // Optional third column.
    edges.push_back(RawEdge{src, dst, weight});
  }
  return edges;
}

Result<Graph> BuildFromRaw(const std::vector<RawEdge>& raw, bool undirected,
                           const GraphBuildOptions& options) {
  std::unordered_map<uint64_t, NodeId> dense;
  auto densify = [&](uint64_t id) {
    auto [it, inserted] =
        dense.emplace(id, static_cast<NodeId>(dense.size()));
    (void)inserted;
    return it->second;
  };
  // First pass assigns dense ids in first-appearance order.
  for (const RawEdge& e : raw) {
    densify(e.src);
    densify(e.dst);
  }
  // The parsed lines are already in memory and trivially replayable, so
  // stream them through the two-pass build instead of copying them into a
  // second (builder-owned) edge buffer.
  GraphBuilder builder(dense.size());
  PRIVIM_RETURN_NOT_OK(
      builder.AddEdgeStream([&raw, &dense, undirected](EdgeSink& sink) {
        for (const RawEdge& e : raw) {
          const NodeId u = dense.at(e.src);
          const NodeId v = dense.at(e.dst);
          if (u == v) continue;  // Drop self-loops silently, as SNAP loaders do.
          if (undirected) {
            PRIVIM_RETURN_NOT_OK(sink.AddUndirected(u, v, e.weight));
          } else {
            PRIVIM_RETURN_NOT_OK(sink.Add(u, v, e.weight));
          }
        }
        return Status::OK();
      }));
  return builder.Build(options);
}

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path, bool undirected,
                           const GraphBuildOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  PRIVIM_ASSIGN_OR_RETURN(std::vector<RawEdge> raw, ParseLines(in));
  return BuildFromRaw(raw, undirected, options);
}

Result<Graph> ParseEdgeList(const std::string& text, bool undirected,
                            const GraphBuildOptions& options) {
  std::istringstream in(text);
  PRIVIM_ASSIGN_OR_RETURN(std::vector<RawEdge> raw, ParseLines(in));
  return BuildFromRaw(raw, undirected, options);
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  out << "# privim edge list: " << g.num_nodes() << " nodes, "
      << g.num_edges() << " arcs\n";
  g.ForEachEdge([&out](NodeId u, NodeId v, float w) {
    out << u << " " << v << " " << w << "\n";
  });
  if (!out) {
    return Status::IoError(StrFormat("write failed for '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace privim
