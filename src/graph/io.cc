#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace privim {

namespace {

struct RawEdge {
  uint64_t src;
  uint64_t dst;
  float weight;
};

Result<std::vector<RawEdge>> ParseLines(std::istream& in) {
  std::vector<RawEdge> edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    std::istringstream ls{std::string(trimmed)};
    uint64_t src = 0, dst = 0;
    float weight = 1.0f;
    // istream happily wraps negative text into uint64; reject explicitly.
    std::string src_tok, dst_tok;
    std::istringstream probe{std::string(trimmed)};
    probe >> src_tok >> dst_tok;
    const bool negative = (!src_tok.empty() && src_tok[0] == '-') ||
                          (!dst_tok.empty() && dst_tok[0] == '-');
    if (negative || !(ls >> src >> dst)) {
      return Status::IoError(
          StrFormat("malformed edge at line %zu: '%s'", line_no,
                    std::string(trimmed).c_str()));
    }
    ls >> weight;  // Optional third column.
    edges.push_back(RawEdge{src, dst, weight});
  }
  return edges;
}

Result<Graph> BuildFromRaw(const std::vector<RawEdge>& raw, bool undirected) {
  std::unordered_map<uint64_t, NodeId> dense;
  auto densify = [&](uint64_t id) {
    auto [it, inserted] =
        dense.emplace(id, static_cast<NodeId>(dense.size()));
    (void)inserted;
    return it->second;
  };
  // First pass assigns dense ids in first-appearance order.
  for (const RawEdge& e : raw) {
    densify(e.src);
    densify(e.dst);
  }
  GraphBuilder builder(dense.size());
  for (const RawEdge& e : raw) {
    const NodeId u = dense[e.src];
    const NodeId v = dense[e.dst];
    if (u == v) continue;  // Drop self-loops silently, as SNAP loaders do.
    if (undirected) {
      PRIVIM_RETURN_NOT_OK(builder.AddUndirectedEdge(u, v, e.weight));
    } else {
      PRIVIM_RETURN_NOT_OK(builder.AddEdge(u, v, e.weight));
    }
  }
  return builder.Build();
}

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path, bool undirected) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  PRIVIM_ASSIGN_OR_RETURN(std::vector<RawEdge> raw, ParseLines(in));
  return BuildFromRaw(raw, undirected);
}

Result<Graph> ParseEdgeList(const std::string& text, bool undirected) {
  std::istringstream in(text);
  PRIVIM_ASSIGN_OR_RETURN(std::vector<RawEdge> raw, ParseLines(in));
  return BuildFromRaw(raw, undirected);
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  out << "# privim edge list: " << g.num_nodes() << " nodes, "
      << g.num_edges() << " arcs\n";
  for (const Edge& e : g.Edges()) {
    out << e.src << " " << e.dst << " " << e.weight << "\n";
  }
  if (!out) {
    return Status::IoError(StrFormat("write failed for '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace privim
