#include "graph/update_stream.h"

#include <algorithm>

#include "common/string_util.h"

namespace privim {
namespace {

void SortUnique(std::vector<NodeId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

bool IsSkippableApply(const Status& s) {
  return s.code() == StatusCode::kAlreadyExists ||
         s.code() == StatusCode::kNotFound;
}

}  // namespace

Result<ApplyEffects> ApplyUpdateBatch(GraphDelta& delta,
                                      const UpdateBatch& batch) {
  ApplyEffects fx;
  for (const UpdateEvent& ev : batch.events) {
    switch (ev.kind) {
      case UpdateKind::kAddEdge:
      case UpdateKind::kRemoveEdge: {
        const Status st = ev.kind == UpdateKind::kAddEdge
                              ? delta.AddEdge(ev.u, ev.v, ev.weight)
                              : delta.RemoveEdge(ev.u, ev.v);
        if (st.ok()) {
          fx.changed_out_rows.push_back(ev.u);
          fx.changed_in_rows.push_back(ev.v);
          ++fx.changed_arcs;
          ++fx.applied_events;
        } else if (IsSkippableApply(st)) {
          ++fx.skipped_events;
        } else {
          return st;
        }
        break;
      }
      case UpdateKind::kAddNode: {
        Result<NodeId> id = delta.AddNode();
        PRIVIM_RETURN_NOT_OK(id.status());
        fx.node_count_changed = true;
        ++fx.applied_events;
        break;
      }
      case UpdateKind::kRemoveNode: {
        if (ev.u >= delta.num_nodes()) {
          return Status::OutOfRange(
              StrFormat("remove-node %u out of range for %zu nodes", ev.u,
                        delta.num_nodes()));
        }
        // Collect the doomed arcs BEFORE removal: they name exactly the
        // rows the isolation will change.
        const GraphView view(delta.base(), &delta);
        std::vector<NodeId> outs;
        std::vector<NodeId> ins;
        view.ForEachOutEdge(ev.u, [&outs](NodeId v, float) {
          outs.push_back(v);
        });
        view.ForEachInEdge(ev.u, [&ins](NodeId s, float) {
          ins.push_back(s);
        });
        if (outs.empty() && ins.empty()) {
          ++fx.skipped_events;  // already isolated
          break;
        }
        PRIVIM_RETURN_NOT_OK(delta.RemoveNode(ev.u));
        fx.changed_out_rows.push_back(ev.u);
        fx.changed_in_rows.push_back(ev.u);
        for (NodeId v : outs) fx.changed_in_rows.push_back(v);
        for (NodeId s : ins) fx.changed_out_rows.push_back(s);
        fx.changed_arcs += outs.size() + ins.size();
        ++fx.applied_events;
        break;
      }
    }
  }
  SortUnique(fx.changed_out_rows);
  SortUnique(fx.changed_in_rows);
  return fx;
}

UpdateBatch MakeSyntheticBatch(const GraphView& view, uint64_t batch_index,
                               uint64_t stream_seed,
                               const StreamGenConfig& config) {
  UpdateBatch batch;
  batch.index = batch_index;
  batch.events.reserve(config.events_per_batch);
  Rng rng = Rng::FromStreamKey(stream_seed, batch_index);
  const size_t n = view.num_nodes();
  for (size_t i = 0; i < config.events_per_batch; ++i) {
    const int64_t ts = static_cast<int64_t>(
        batch_index * config.events_per_batch + i);
    const double roll = rng.Uniform();
    if (roll < config.add_node_fraction) {
      batch.events.push_back(
          UpdateEvent{UpdateKind::kAddNode, 0, 0, 1.0f, ts});
      continue;
    }
    if (roll < config.add_node_fraction + config.remove_node_fraction) {
      const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
      batch.events.push_back(
          UpdateEvent{UpdateKind::kRemoveNode, u, 0, 1.0f, ts});
      continue;
    }
    if (n < 2) continue;  // edge events need two distinct endpoints
    const bool add = rng.Uniform() < config.add_fraction;
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    if (!add) {
      // Remove a uniformly random visible out-arc of u; a source with no
      // out-arcs degrades the event to an add (keeps batch sizes fixed).
      const size_t deg = view.OutDegree(u);
      if (deg > 0) {
        const size_t pick = rng.UniformInt(deg);
        NodeId target = u;
        size_t k = 0;
        view.ForEachOutEdge(u, [&k, pick, &target](NodeId v, float) {
          if (k++ == pick) target = v;
        });
        batch.events.push_back(
            UpdateEvent{UpdateKind::kRemoveEdge, u, target, 1.0f, ts});
        continue;
      }
    }
    // Random non-self endpoint; the apply layer skips duplicates.
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (v == u) v = static_cast<NodeId>((v + 1) % n);
    const float w = static_cast<float>(rng.Uniform());
    batch.events.push_back(UpdateEvent{UpdateKind::kAddEdge, u, v, w, ts});
  }
  return batch;
}

}  // namespace privim
