#include "graph/datasets.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"
#include "common/string_util.h"
#include "graph/generators.h"

namespace privim {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  // Trivially-destructible static via function-local reference (style-guide
  // pattern for non-trivial static data).
  static const std::vector<DatasetSpec>& specs = *new std::vector<DatasetSpec>{
      // id, name, |V| (paper), |E| (paper), directed, avg deg, sim |V|, parts
      {DatasetId::kEmail, "Email", 1000, 25600, true, 25.44, 1000, 1},
      {DatasetId::kBitcoin, "Bitcoin", 5900, 35600, true, 6.05, 2950, 1},
      {DatasetId::kLastFm, "LastFM", 7600, 27800, false, 7.29, 3800, 1},
      {DatasetId::kHepPh, "HepPh", 12000, 118500, false, 19.74, 4000, 1},
      {DatasetId::kFacebook, "Facebook", 22500, 171000, false, 15.22, 4500, 1},
      {DatasetId::kGowalla, "Gowalla", 196000, 950300, false, 9.67, 6000, 1},
      {DatasetId::kFriendster, "Friendster", 65600000, 1800000000, false,
       55.06, 4000, 4},
  };
  return specs;
}

std::vector<DatasetSpec> MainDatasetSpecs() {
  std::vector<DatasetSpec> out;
  for (const DatasetSpec& s : AllDatasetSpecs()) {
    if (s.id != DatasetId::kFriendster) out.push_back(s);
  }
  return out;
}

const DatasetSpec& GetDatasetSpec(DatasetId id) {
  for (const DatasetSpec& s : AllDatasetSpecs()) {
    if (s.id == id) return s;
  }
  PRIVIM_CHECK(false) << "unknown dataset id";
  return AllDatasetSpecs().front();  // Unreachable.
}

Result<DatasetId> ParseDatasetId(const std::string& name) {
  const std::string lower = ToLower(name);
  for (const DatasetSpec& s : AllDatasetSpecs()) {
    if (ToLower(s.name) == lower) return s.id;
  }
  return Status::NotFound(StrFormat("unknown dataset '%s'", name.c_str()));
}

Result<Graph> MakeDataset(DatasetId id, Rng& rng, double scale) {
  if (scale < 0.05) {
    return Status::InvalidArgument("scale must be at least 0.05");
  }
  const DatasetSpec& spec = GetDatasetSpec(id);
  const size_t n = std::max<size_t>(
      64, static_cast<size_t>(static_cast<double>(spec.sim_nodes) * scale));
  switch (id) {
    case DatasetId::kEmail: {
      // Dense directed communication core: institution email traffic has
      // heavy reciprocation and community structure. Average total degree
      // ~25 -> directed PA with several arcs per node plus a community
      // overlay for clustering.
      PRIVIM_ASSIGN_OR_RETURN(Graph pa, DirectedScaleFree(n, 8, 5, rng));
      GraphBuilder b(n);
      PRIVIM_RETURN_NOT_OK(b.AddEdgeStream([&pa](EdgeSink& sink) {
        return pa.ForEachEdge([&sink](NodeId u, NodeId v, float w) {
          return sink.Add(u, v, w);
        });
      }));
      // Community overlay: nodes within blocks of 50 exchange extra mail.
      // Duplicates against the PA core are deduped by Build().
      PRIVIM_RETURN_NOT_OK(b.AddEdgeStream(
          ReplayableStream(rng, [n](Rng& r, EdgeSink& sink) -> Status {
            const size_t block = 50;
            for (NodeId u = 0; u < n; ++u) {
              const size_t base = (u / block) * block;
              for (int t = 0; t < 6; ++t) {
                const NodeId v = static_cast<NodeId>(
                    base + r.UniformInt(std::min(block, n - base)));
                if (v != u) {
                  PRIVIM_RETURN_NOT_OK(sink.Add(u, v));
                }
              }
            }
            return Status::OK();
          })));
      return b.Build();
    }
    case DatasetId::kBitcoin:
      // Sparse directed trust network, power-law; 3+3 arcs per node
      // approximates the paper's average degree of 6.05 and keeps the
      // train split dense enough for 3-hop random walks.
      return DirectedScaleFree(n, 3, 3, rng);
    case DatasetId::kLastFm:
      // Sparse undirected social graph, power-law, avg degree ~7.
      return BarabasiAlbert(n, 4, rng);
    case DatasetId::kHepPh: {
      // Collaboration network: dense cliquish communities (co-authorship).
      const size_t communities = std::max<size_t>(2, n / 40);
      PRIVIM_ASSIGN_OR_RETURN(
          Graph pp, PlantedPartition(n, communities,
                                     std::min(1.0, 16.0 / 40.0),
                                     1.5 / static_cast<double>(n), rng));
      return pp;
    }
    case DatasetId::kFacebook: {
      // Page-page graph: power-law hubs + local clustering. Blend BA with a
      // small-world overlay.
      PRIVIM_ASSIGN_OR_RETURN(Graph ba, BarabasiAlbert(n, 6, rng));
      PRIVIM_ASSIGN_OR_RETURN(Graph ws, WattsStrogatz(n, 2, 0.1, rng));
      GraphBuilder b(n);
      // Merge the two topologies by streaming each CSR; overlapping arcs
      // are deduped by Build().
      for (const Graph* src : {&ba, &ws}) {
        PRIVIM_RETURN_NOT_OK(b.AddEdgeStream([src](EdgeSink& sink) {
          return src->ForEachEdge([&sink](NodeId u, NodeId v, float w) {
            return sink.Add(u, v, w);
          });
        }));
      }
      return b.Build();
    }
    case DatasetId::kGowalla:
      // Location-based check-in friendships: power-law, avg degree ~10.
      return BarabasiAlbert(n, 5, rng);
    case DatasetId::kFriendster:
      // One *partition* of the Friendster stand-in: dense power-law block
      // (avg degree ~55 in the paper; we use BA m=16 -> avg deg ~32 per
      // partition to keep CPU benches feasible; scale factor documented).
      return BarabasiAlbert(n, 16, rng);
  }
  return Status::InvalidArgument("unknown dataset id");
}

Result<NodeSplit> SplitNodes(size_t num_nodes, Rng& rng,
                             double train_fraction) {
  // Validate before sizing anything from the count: a 2^32+1-node request
  // must fail loudly here, not wrap to a 1-node permutation below.
  PRIVIM_RETURN_NOT_OK(ValidateNodeCount(num_nodes));
  if (!(train_fraction > 0.0) || !(train_fraction < 1.0)) {
    return Status::InvalidArgument(
        StrFormat("train_fraction %f outside (0,1)", train_fraction));
  }
  std::vector<NodeId> perm(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) perm[i] = static_cast<NodeId>(i);
  rng.Shuffle(perm);
  const size_t n_train =
      static_cast<size_t>(static_cast<double>(num_nodes) * train_fraction);
  NodeSplit split;
  split.train.assign(perm.begin(), perm.begin() + n_train);
  split.test.assign(perm.begin() + n_train, perm.end());
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace privim
