#include "graph/graph_delta.h"

#include <algorithm>

#include "common/string_util.h"
#include "graph/graph_view.h"

namespace privim {
namespace {

// lower_bound over the (id, weight) pairs of Row::added by id.
auto AddedLowerBound(std::vector<std::pair<NodeId, float>>& added,
                     NodeId id) {
  return std::lower_bound(
      added.begin(), added.end(), id,
      [](const std::pair<NodeId, float>& e, NodeId v) { return e.first < v; });
}

bool AddedContains(const std::vector<std::pair<NodeId, float>>& added,
                   NodeId id) {
  auto it = std::lower_bound(
      added.begin(), added.end(), id,
      [](const std::pair<NodeId, float>& e, NodeId v) { return e.first < v; });
  return it != added.end() && it->first == id;
}

bool SortedContains(const std::vector<NodeId>& ids, NodeId id) {
  return std::binary_search(ids.begin(), ids.end(), id);
}

}  // namespace

GraphDelta::GraphDelta(const Graph& base) : base_(&base) {
  PRIVIM_CHECK(base.has_in_csr())
      << "GraphDelta requires the base in-CSR (RemoveNode and in-edge "
         "merges scan in-rows); call Graph::EnsureInCsr() first";
}

Status GraphDelta::ValidateEndpoints(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) {
    return Status::OutOfRange(StrFormat(
        "edge (%u,%u) out of range for %zu nodes", u, v, num_nodes()));
  }
  if (u == v) {
    return Status::InvalidArgument(StrFormat("self-loop at node %u", u));
  }
  return Status::OK();
}

bool GraphDelta::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  if (const Row* row = OutRow(u)) {
    if (AddedContains(row->added, v)) return true;
    if (SortedContains(row->removed, v)) return false;
  }
  return u < base_->num_nodes() && base_->HasEdge(u, v);
}

Status GraphDelta::AddEdge(NodeId u, NodeId v, float weight) {
  PRIVIM_RETURN_NOT_OK(ValidateEndpoints(u, v));
  if (!(weight >= 0.0f && weight <= 1.0f)) {  // negated to reject NaN
    return Status::InvalidArgument(StrFormat(
        "influence probability %f outside [0,1]",
        static_cast<double>(weight)));
  }
  if (HasEdge(u, v)) {
    return Status::AlreadyExists(
        StrFormat("arc %u -> %u already present", u, v));
  }
  // Not visible, so the added vectors cannot contain it (invariant) — a
  // plain sorted insert maintains both the order and the disjointness. If
  // the arc is a removed base arc, it stays in `removed` (the base copy
  // remains masked; the overlay copy carries the new weight).
  {
    Row& row = out_[u];
    row.added.insert(AddedLowerBound(row.added, v), {v, weight});
  }
  {
    Row& row = in_[v];
    row.added.insert(AddedLowerBound(row.added, u), {u, weight});
  }
  ++added_arcs_;
  ++version_;
  return Status::OK();
}

Status GraphDelta::RemoveEdge(NodeId u, NodeId v) {
  PRIVIM_RETURN_NOT_OK(ValidateEndpoints(u, v));
  if (!HasEdge(u, v)) {
    return Status::NotFound(StrFormat("arc %u -> %u not present", u, v));
  }
  // Visible either through the overlay (erase the added pair) or through
  // the base (mask it via `removed`).
  auto out_it = out_.find(u);
  const bool in_overlay =
      out_it != out_.end() && AddedContains(out_it->second.added, v);
  if (in_overlay) {
    Row& out_row = out_it->second;
    out_row.added.erase(AddedLowerBound(out_row.added, v));
    Row& in_row = in_[v];
    in_row.added.erase(AddedLowerBound(in_row.added, u));
    --added_arcs_;
    PruneIfEmpty(out_, u);
    PruneIfEmpty(in_, v);
  } else {
    Row& orow = out_[u];
    orow.removed.insert(
        std::lower_bound(orow.removed.begin(), orow.removed.end(), v), v);
    Row& irow = in_[v];
    irow.removed.insert(
        std::lower_bound(irow.removed.begin(), irow.removed.end(), u), u);
    ++removed_arcs_;
  }
  ++version_;
  return Status::OK();
}

Result<NodeId> GraphDelta::AddNode() {
  PRIVIM_RETURN_NOT_OK(ValidateNodeCount(num_nodes() + 1));
  const NodeId id = static_cast<NodeId>(num_nodes());
  ++added_nodes_;
  ++version_;
  return id;
}

Status GraphDelta::RemoveNode(NodeId u) {
  if (u >= num_nodes()) {
    return Status::OutOfRange(
        StrFormat("node %u out of range for %zu nodes", u, num_nodes()));
  }
  // Collect first, then remove: mutating the overlay mid-merge would
  // invalidate the row pointers the merge walks. Self-loops cannot exist,
  // so the two lists never name the same arc twice.
  const GraphView view(*base_, this);
  std::vector<NodeId> out_nbrs;
  std::vector<NodeId> in_nbrs;
  view.ForEachOutEdge(u, [&out_nbrs](NodeId v, float) {
    out_nbrs.push_back(v);
  });
  view.ForEachInEdge(u, [&in_nbrs](NodeId s, float) {
    in_nbrs.push_back(s);
  });
  for (NodeId v : out_nbrs) PRIVIM_RETURN_NOT_OK(RemoveEdge(u, v));
  for (NodeId s : in_nbrs) PRIVIM_RETURN_NOT_OK(RemoveEdge(s, u));
  ++version_;
  return Status::OK();
}

std::vector<NodeId> GraphDelta::SortedTouchedOut() const {
  std::vector<NodeId> ids;
  ids.reserve(out_.size());
  for (const auto& [u, row] : out_) ids.push_back(u);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void GraphDelta::PruneIfEmpty(RowMap& rows, NodeId id) {
  auto it = rows.find(id);
  if (it != rows.end() && it->second.added.empty() &&
      it->second.removed.empty()) {
    rows.erase(it);
  }
}

Result<Graph> GraphDelta::Compact(const GraphBuildOptions& options) const {
  GraphBuilder builder(num_nodes());
  const GraphView view(*base_, this);
  PRIVIM_RETURN_NOT_OK(builder.AddEdgeStream([&view](EdgeSink& sink) {
    const size_t n = view.num_nodes();
    for (size_t u = 0; u < n; ++u) {
      PRIVIM_RETURN_NOT_OK(view.ForEachOutEdge(
          static_cast<NodeId>(u), [&sink, u](NodeId v, float w) {
            return sink.Add(static_cast<NodeId>(u), v, w);
          }));
    }
    return Status::OK();
  }));
  GraphBuildOptions opts = options;
  // The stream pipeline's samplers scan in-rows right after compaction;
  // building eagerly here is strictly cheaper than a lazy EnsureInCsr.
  opts.build_in_csr = true;
  return builder.Build(opts);
}

Status GraphDelta::ResetBase(const Graph& new_base) {
  if (!new_base.has_in_csr()) {
    return Status::FailedPrecondition(
        "GraphDelta::ResetBase requires the new base's in-CSR");
  }
  if (new_base.num_nodes() < num_nodes()) {
    return Status::InvalidArgument(StrFormat(
        "new base has %zu nodes, delta covers %zu",
        new_base.num_nodes(), num_nodes()));
  }
  base_ = &new_base;
  out_.clear();
  in_.clear();
  added_nodes_ = 0;
  added_arcs_ = 0;
  removed_arcs_ = 0;
  ++version_;
  return Status::OK();
}

}  // namespace privim
