#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/logging.h"

namespace privim {

std::vector<NodeId> RHopNeighborhood(const Graph& g, NodeId start, int r) {
  PRIVIM_CHECK_LT(start, g.num_nodes());
  PRIVIM_CHECK_GE(r, 0);
  std::vector<int> dist(g.num_nodes(), -1);
  std::deque<NodeId> queue;
  std::vector<NodeId> order;
  dist[start] = 0;
  queue.push_back(start);
  order.push_back(start);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (dist[u] == r) continue;
    for (NodeId v : g.OutNeighbors(u)) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
        order.push_back(v);
      }
    }
  }
  return order;
}

std::vector<int> BfsDistances(const Graph& g, NodeId start) {
  PRIVIM_CHECK_LT(start, g.num_nodes());
  std::vector<int> dist(g.num_nodes(), -1);
  std::deque<NodeId> queue;
  dist[start] = 0;
  queue.push_back(start);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.OutNeighbors(u)) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

ComponentLabels WeaklyConnectedComponents(const Graph& g) {
  ComponentLabels out;
  out.label.assign(g.num_nodes(), UINT32_MAX);
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (out.label[s] != UINT32_MAX) continue;
    const uint32_t c = out.num_components++;
    out.label[s] = c;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.OutNeighbors(u)) {
        if (out.label[v] == UINT32_MAX) {
          out.label[v] = c;
          queue.push_back(v);
        }
      }
      for (NodeId v : g.InNeighbors(u)) {
        if (out.label[v] == UINT32_MAX) {
          out.label[v] = c;
          queue.push_back(v);
        }
      }
    }
  }
  return out;
}

Result<Graph> ThetaBoundedProjection(const Graph& g, size_t theta, Rng& rng) {
  if (theta == 0) {
    return Status::InvalidArgument("theta must be positive");
  }
  if (!g.has_in_csr()) {
    return Status::FailedPrecondition(
        "theta-bounded projection scans in-edges; call Graph::EnsureInCsr() "
        "on graphs built without the in-CSR");
  }
  GraphBuilder builder(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto sources = g.InNeighbors(v);
    auto weights = g.InWeights(v);
    if (sources.size() <= theta) {
      for (size_t i = 0; i < sources.size(); ++i) {
        PRIVIM_RETURN_NOT_OK(builder.AddEdge(sources[i], v, weights[i]));
      }
      continue;
    }
    // Keep a uniformly random subset of exactly theta in-edges.
    std::vector<uint32_t> keep = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(sources.size()), static_cast<uint32_t>(theta));
    for (uint32_t idx : keep) {
      PRIVIM_RETURN_NOT_OK(builder.AddEdge(sources[idx], v, weights[idx]));
    }
  }
  return builder.Build();
}

double TransitivityEstimate(const Graph& g, Rng& rng, size_t max_samples) {
  // Count wedges u->v->w and how many are closed by u->w.
  size_t wedges = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const size_t in_deg = g.InDegree(v);
    const size_t out_deg = g.OutDegree(v);
    wedges += in_deg * out_deg;
  }
  if (wedges == 0) return 0.0;

  if (wedges <= max_samples) {
    size_t closed = 0;
    size_t proper = 0;  // Wedges with distinct endpoints u != w.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (NodeId u : g.InNeighbors(v)) {
        for (NodeId w : g.OutNeighbors(v)) {
          if (u == w) continue;
          ++proper;
          if (g.HasEdge(u, w)) ++closed;
        }
      }
    }
    if (proper == 0) return 0.0;
    return static_cast<double>(closed) / static_cast<double>(proper);
  }

  // Sample wedges: pick a center v proportional to in_deg*out_deg via
  // rejection on a uniform node then uniform (u, w) pair.
  std::vector<double> weight(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    weight[v] = static_cast<double>(g.InDegree(v)) *
                static_cast<double>(g.OutDegree(v));
  }
  size_t closed = 0;
  size_t taken = 0;
  for (size_t s = 0; s < max_samples; ++s) {
    const size_t v = rng.Discrete(weight);
    if (v >= g.num_nodes()) break;
    auto ins = g.InNeighbors(static_cast<NodeId>(v));
    auto outs = g.OutNeighbors(static_cast<NodeId>(v));
    const NodeId u = ins[rng.UniformInt(ins.size())];
    const NodeId w = outs[rng.UniformInt(outs.size())];
    if (u == w) continue;
    ++taken;
    if (g.HasEdge(u, w)) ++closed;
  }
  if (taken == 0) return 0.0;
  return static_cast<double>(closed) / static_cast<double>(taken);
}

}  // namespace privim
