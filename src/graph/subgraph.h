#ifndef PRIVIM_GRAPH_SUBGRAPH_H_
#define PRIVIM_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace privim {

/// A node-induced subgraph extracted for training.
///
/// `nodes[i]` is the original id of local node i; `local` is the induced
/// graph over local ids [0, nodes.size()). This is the per-sample unit of
/// Algorithm 2: one Subgraph <=> one per-sample gradient.
struct Subgraph {
  std::vector<NodeId> nodes;
  Graph local;

  size_t size() const { return nodes.size(); }
};

/// Induces the subgraph of `g` on `nodes` (original ids, must be distinct).
/// Edges of `g` with both endpoints in `nodes` are kept with their weights.
Result<Subgraph> InduceSubgraph(const Graph& g,
                                std::vector<NodeId> nodes);

}  // namespace privim

#endif  // PRIVIM_GRAPH_SUBGRAPH_H_
