#ifndef PRIVIM_GRAPH_ALGORITHMS_H_
#define PRIVIM_GRAPH_ALGORITHMS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace privim {

/// Nodes within `r` hops of `start` following *out*-edges, including `start`
/// itself (hop 0). Order: BFS discovery order.
std::vector<NodeId> RHopNeighborhood(const Graph& g, NodeId start, int r);

/// Distance (in hops, following out-edges) from `start` to every node;
/// -1 for unreachable nodes.
std::vector<int> BfsDistances(const Graph& g, NodeId start);

/// Weakly connected components; returns a component id per node and the
/// number of components.
struct ComponentLabels {
  std::vector<uint32_t> label;
  uint32_t num_components = 0;
};
ComponentLabels WeaklyConnectedComponents(const Graph& g);

/// Projects `g` onto a θ-bounded graph G^θ by randomly removing in-edges of
/// nodes whose in-degree exceeds `theta` (Section III-B). Out-edges lose the
/// mirrored arcs as well when the graph is stored as directed arcs.
Result<Graph> ThetaBoundedProjection(const Graph& g, size_t theta, Rng& rng);

/// Global clustering-style statistic: fraction of length-2 out-paths u->v->w
/// that are closed by an arc u->w, estimated exactly for small graphs and by
/// sampling `max_samples` wedges otherwise.
double TransitivityEstimate(const Graph& g, Rng& rng,
                            size_t max_samples = 20000);

}  // namespace privim

#endif  // PRIVIM_GRAPH_ALGORITHMS_H_
