#include "graph/subgraph.h"

#include <unordered_map>

#include "common/string_util.h"

namespace privim {

Result<Subgraph> InduceSubgraph(const Graph& g, std::vector<NodeId> nodes) {
  std::unordered_map<NodeId, NodeId> to_local;
  to_local.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeId u = nodes[i];
    if (u >= g.num_nodes()) {
      return Status::OutOfRange(StrFormat("node %u out of range", u));
    }
    auto [it, inserted] = to_local.emplace(u, static_cast<NodeId>(i));
    if (!inserted) {
      return Status::InvalidArgument(
          StrFormat("duplicate node %u in subgraph node list", u));
    }
  }

  GraphBuilder builder(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeId u = nodes[i];
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutWeights(u);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      auto it = to_local.find(nbrs[k]);
      if (it != to_local.end()) {
        PRIVIM_RETURN_NOT_OK(
            builder.AddEdge(static_cast<NodeId>(i), it->second, ws[k]));
      }
    }
  }
  PRIVIM_ASSIGN_OR_RETURN(Graph local, builder.Build());
  Subgraph sub;
  sub.nodes = std::move(nodes);
  sub.local = std::move(local);
  return sub;
}

}  // namespace privim
