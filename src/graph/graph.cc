#include "graph/graph.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace privim {

namespace {

constexpr size_t AlignUp(size_t n, size_t a) { return (n + a - 1) / a * a; }

}  // namespace

Status ValidateNodeCount(uint64_t num_nodes) {
  if (num_nodes > kMaxNodeCount) {
    return Status::InvalidArgument(
        StrFormat("node count %llu exceeds the 32-bit NodeId limit (%llu); "
                  "partition the graph or widen NodeId",
                  static_cast<unsigned long long>(num_nodes),
                  static_cast<unsigned long long>(kMaxNodeCount)));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// OffsetArray

void OffsetArray::Adopt(std::vector<uint64_t> offsets, uint64_t narrow_limit) {
  narrow_.clear();
  narrow_.shrink_to_fit();
  wide_.clear();
  wide_.shrink_to_fit();
  if (offsets.empty()) return;
  if (offsets.back() <= narrow_limit) {
    narrow_.resize(offsets.size());
    for (size_t i = 0; i < offsets.size(); ++i) {
      narrow_[i] = static_cast<uint32_t>(offsets[i]);
    }
  } else {
    wide_ = std::move(offsets);
    wide_.shrink_to_fit();
  }
}

// ---------------------------------------------------------------------------
// ArcStorage

void ArcStorage::AllocateExact(EdgeId count) {
  if (count == 0) {
    data_.reset();
    ids_ = nullptr;
    weights_ = nullptr;
    count_ = capacity_ = 0;
    alloc_bytes_ = 0;
    return;
  }
  const size_t ids_bytes =
      AlignUp(static_cast<size_t>(count) * sizeof(NodeId), 64);
  const size_t total = ids_bytes + static_cast<size_t>(count) * sizeof(float);
  // Plain new[] (not make_unique) so the buffer is default-initialized —
  // zero-filling a multi-GB allocation the build is about to overwrite
  // would double the page-touch cost.
  data_.reset(new std::byte[total]);
  ids_ = reinterpret_cast<NodeId*>(data_.get());
  weights_ = reinterpret_cast<float*>(data_.get() + ids_bytes);
  count_ = capacity_ = count;
  alloc_bytes_ = total;
}

void ArcStorage::Allocate(EdgeId count) { AllocateExact(count); }

void ArcStorage::ShrinkCount(EdgeId count) {
  PRIVIM_CHECK(count <= capacity_) << "ShrinkCount beyond capacity";
  if (capacity_ - count > capacity_ / 8) {
    ArcStorage tmp;
    tmp.AllocateExact(count);
    if (count > 0) {
      std::memcpy(tmp.ids_, ids_, static_cast<size_t>(count) * sizeof(NodeId));
      std::memcpy(tmp.weights_, weights_,
                  static_cast<size_t>(count) * sizeof(float));
    }
    *this = std::move(tmp);
  } else {
    count_ = count;
  }
}

ArcStorage& ArcStorage::operator=(const ArcStorage& other) {
  if (this == &other) return *this;
  AllocateExact(other.count_);
  if (other.count_ > 0) {
    std::memcpy(ids_, other.ids_,
                static_cast<size_t>(other.count_) * sizeof(NodeId));
    std::memcpy(weights_, other.weights_,
                static_cast<size_t>(other.count_) * sizeof(float));
  }
  return *this;
}

// ---------------------------------------------------------------------------
// Graph

double Graph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  // Each arc contributes one out-degree and one in-degree; dividing the
  // arc count by the node count yields the directed average out-degree,
  // which equals the undirected average degree when both arcs are present.
  return static_cast<double>(num_edges()) / static_cast<double>(num_nodes_);
}

uint64_t Graph::IdentityFingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(num_nodes_));
  mix(num_edges());
  mix(reinterpret_cast<uintptr_t>(out_offsets_.data()));
  mix(reinterpret_cast<uintptr_t>(out_.ids()));
  mix(reinterpret_cast<uintptr_t>(in_.ids()));
  return h;
}

size_t Graph::MemoryFootprintBytes() const {
  return out_offsets_.MemoryBytes() + out_.MemoryBytes() +
         in_offsets_.MemoryBytes() + in_.MemoryBytes();
}

size_t Graph::MaxInDegree() const {
  size_t max_deg = 0;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    max_deg = std::max(max_deg, InDegree(v));
  }
  return max_deg;
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  ForEachEdge([&edges](NodeId u, NodeId v, float w) {
    edges.push_back(Edge{u, v, w});
  });
  return edges;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void Graph::BuildInCsrFromOut(uint64_t narrow_limit) {
  // Counting sort over the out-CSR: pass 1 counts in-degrees, pass 2
  // scatters (u -> v) into v's in-row. Scanning u in ascending order makes
  // every in-row ascend by source id, matching what a full (src, dst)
  // sorted build would produce — bit-identical to the eager construction.
  std::vector<uint64_t> offsets(num_nodes_ + 1, 0);
  const EdgeId arcs = out_.size();
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : OutNeighbors(u)) ++offsets[static_cast<size_t>(v) + 1];
  }
  for (size_t i = 1; i <= num_nodes_; ++i) offsets[i] += offsets[i - 1];
  PRIVIM_CHECK(offsets[num_nodes_] == arcs);
  in_.Allocate(arcs);
  std::vector<uint64_t> cursors(offsets.begin(), offsets.end() - 1);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    auto nbrs = OutNeighbors(u);
    auto ws = OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const uint64_t pos = cursors[nbrs[i]]++;
      in_.ids()[pos] = u;
      in_.weights()[pos] = ws[i];
    }
  }
  in_offsets_.Adopt(std::move(offsets), narrow_limit);
  ++in_csr_builds_;
}

Status Graph::EnsureInCsr() {
  // Idempotence contract (graph.h): with the in-CSR already materialized
  // this must return without touching any storage — re-running the
  // counting sort would move the arrays (invalidating spans handed out to
  // callers) and pay O(V+E) for nothing. The build counter lets tests pin
  // this down directly.
  if (has_in_csr_) return Status::OK();
  BuildInCsrFromOut(/*narrow_limit=*/0xFFFFFFFFull);
  has_in_csr_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// EdgeSink

Status EdgeSink::Add(NodeId u, NodeId v, float weight) {
  if (mode_ == Mode::kCount) {
    PRIVIM_RETURN_NOT_OK(builder_->ValidateEdge(u, v, weight));
    return builder_->CountArc(u);
  }
  return builder_->PlaceArc(u, v, weight);
}

Status EdgeSink::AddUndirected(NodeId u, NodeId v, float weight) {
  PRIVIM_RETURN_NOT_OK(Add(u, v, weight));
  return Add(v, u, weight);
}

// ---------------------------------------------------------------------------
// GraphBuilder

GraphBuilder::GraphBuilder(size_t num_nodes) : num_nodes_(num_nodes) {}
GraphBuilder::~GraphBuilder() = default;

Status GraphBuilder::ValidateEdge(NodeId u, NodeId v, float weight) const {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::OutOfRange(
        StrFormat("edge (%u,%u) out of range for %zu nodes", u, v,
                  num_nodes_));
  }
  if (u == v) {
    return Status::InvalidArgument(StrFormat("self-loop at node %u", u));
  }
  if (weight < 0.0f || weight > 1.0f) {
    return Status::InvalidArgument(
        StrFormat("influence probability %f outside [0,1]",
                  static_cast<double>(weight)));
  }
  return Status::OK();
}

Status GraphBuilder::AddEdge(NodeId u, NodeId v, float weight) {
  PRIVIM_RETURN_NOT_OK(ValidateEdge(u, v, weight));
  edges_.push_back(Edge{u, v, weight});
  return Status::OK();
}

Status GraphBuilder::AddUndirectedEdge(NodeId u, NodeId v, float weight) {
  PRIVIM_RETURN_NOT_OK(AddEdge(u, v, weight));
  return AddEdge(v, u, weight);
}

Status GraphBuilder::AddEdgeStream(EdgeStream stream) {
  if (!stream) return Status::InvalidArgument("null edge stream");
  streams_.push_back(std::move(stream));
  return Status::OK();
}

Status GraphBuilder::CountArc(NodeId u) {
  ++offsets_[static_cast<size_t>(u) + 1];
  return Status::OK();
}

Status GraphBuilder::PlaceArc(NodeId u, NodeId v, float weight) {
  // Pass 2 re-validates only what protects the scatter itself: a stream
  // whose replay diverges from its counting pass would otherwise write out
  // of bounds. Semantic validation (self-loops, weight range) happened in
  // pass 1 on the identical sequence.
  if (u >= num_nodes_ || v >= num_nodes_ ||
      cursors_[u] >= offsets_[static_cast<size_t>(u) + 1]) {
    return Status::Internal(
        "edge stream changed between counting and placement passes; "
        "EdgeStream producers must be replayable (restore RNG state "
        "before each invocation)");
  }
  const uint64_t pos = cursors_[u]++;
  target_->out_.ids()[pos] = v;
  target_->out_.weights()[pos] = weight;
  return Status::OK();
}

Result<Graph> GraphBuilder::Build(const GraphBuildOptions& options) {
  PRIVIM_RETURN_NOT_OK(ValidateNodeCount(num_nodes_));

  Graph g;
  g.num_nodes_ = num_nodes_;
  target_ = &g;

  // Pass 1 — count per-node out-degrees. Buffered edges were validated at
  // AddEdge time; streamed edges are validated here, before any arc memory
  // is sized from their counts.
  offsets_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges_) ++offsets_[static_cast<size_t>(e.src) + 1];
  {
    EdgeSink counter(this, EdgeSink::Mode::kCount);
    for (EdgeStream& stream : streams_) {
      PRIVIM_RETURN_NOT_OK(stream(counter));
    }
  }
  for (size_t i = 1; i <= num_nodes_; ++i) offsets_[i] += offsets_[i - 1];
  const EdgeId total = num_nodes_ == 0 ? 0 : offsets_[num_nodes_];

  // Pass 2 — scatter every arc directly into its final row. Rows receive
  // arcs in emission order; sorting happens per row below. Peak transient
  // memory here is the two u64 bookkeeping arrays (16 bytes/node), not an
  // edge list (16+ bytes/arc) — the difference between ~1.1x and ~3x of
  // the final CSR footprint at 10^8 arcs.
  g.out_.Allocate(total);
  cursors_.assign(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges_) {
    PRIVIM_RETURN_NOT_OK(PlaceArc(e.src, e.dst, e.weight));
  }
  {
    EdgeSink placer(this, EdgeSink::Mode::kPlace);
    for (EdgeStream& stream : streams_) {
      PRIVIM_RETURN_NOT_OK(stream(placer));
    }
  }
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (cursors_[u] != offsets_[static_cast<size_t>(u) + 1]) {
      return Status::Internal(
          "edge stream changed between counting and placement passes; "
          "EdgeStream producers must be replayable (restore RNG state "
          "before each invocation)");
    }
  }
  // The buffered edge list and registered streams are consumed; release
  // them before the in-CSR build so they don't count against peak memory.
  edges_.clear();
  edges_.shrink_to_fit();
  streams_.clear();
  streams_.shrink_to_fit();
  cursors_.clear();
  cursors_.shrink_to_fit();

  // Sort each row by destination and drop duplicate arcs in place,
  // compacting the arc arrays and rewriting the offsets as we go.
  // Ties (duplicate (u,v) with differing weights) keep the first-emitted
  // arc, deterministically. Rows that already ascend strictly — every
  // row the Erdos-Renyi generator emits — skip the sort entirely.
  struct RowEntry {
    NodeId dst;
    uint32_t seq;
    float weight;
  };
  std::vector<RowEntry> scratch;
  uint64_t write = 0;
  uint64_t row_begin = 0;  // Old offset of the current row.
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const uint64_t row_end = offsets_[static_cast<size_t>(u) + 1];
    const uint64_t len = row_end - row_begin;
    NodeId* ids = g.out_.ids();
    float* ws = g.out_.weights();
    bool ascending = true;
    for (uint64_t k = row_begin + 1; k < row_end; ++k) {
      if (ids[k - 1] >= ids[k]) {
        ascending = false;
        break;
      }
    }
    offsets_[u] = write;
    if (ascending) {
      if (write != row_begin && len > 0) {
        std::memmove(ids + write, ids + row_begin,
                     static_cast<size_t>(len) * sizeof(NodeId));
        std::memmove(ws + write, ws + row_begin,
                     static_cast<size_t>(len) * sizeof(float));
      }
      write += len;
    } else {
      scratch.clear();
      scratch.reserve(static_cast<size_t>(len));
      for (uint64_t k = row_begin; k < row_end; ++k) {
        scratch.push_back(RowEntry{ids[k],
                                   static_cast<uint32_t>(k - row_begin),
                                   ws[k]});
      }
      std::sort(scratch.begin(), scratch.end(),
                [](const RowEntry& a, const RowEntry& b) {
                  return a.dst != b.dst ? a.dst < b.dst : a.seq < b.seq;
                });
      NodeId last = 0;
      bool first = true;
      for (const RowEntry& e : scratch) {
        if (!first && e.dst == last) continue;
        ids[write] = e.dst;
        ws[write] = e.weight;
        ++write;
        last = e.dst;
        first = false;
      }
    }
    row_begin = row_end;
  }
  if (num_nodes_ > 0) offsets_[num_nodes_] = write;
  g.out_.ShrinkCount(write);
  g.out_offsets_.Adopt(std::move(offsets_), options.narrow_offset_limit);
  offsets_ = {};

  if (options.build_in_csr) {
    g.BuildInCsrFromOut(options.narrow_offset_limit);
    g.has_in_csr_ = true;
  } else {
    g.has_in_csr_ = false;
  }
  target_ = nullptr;
  return g;
}

}  // namespace privim
