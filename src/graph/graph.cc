#include "graph/graph.h"

#include <algorithm>

#include "common/string_util.h"

namespace privim {

double Graph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  // Each arc contributes one out-degree and one in-degree; dividing the
  // arc count by the node count yields the directed average out-degree,
  // which equals the undirected average degree when both arcs are present.
  return static_cast<double>(num_edges()) / static_cast<double>(num_nodes_);
}

uint64_t Graph::IdentityFingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(num_nodes_));
  mix(static_cast<uint64_t>(out_dst_.size()));
  mix(reinterpret_cast<uintptr_t>(out_offsets_.data()));
  mix(reinterpret_cast<uintptr_t>(out_dst_.data()));
  mix(reinterpret_cast<uintptr_t>(in_src_.data()));
  return h;
}

size_t Graph::MaxInDegree() const {
  size_t max_deg = 0;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    max_deg = std::max(max_deg, InDegree(v));
  }
  return max_deg;
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    auto nbrs = OutNeighbors(u);
    auto ws = OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      edges.push_back(Edge{u, nbrs[i], ws[i]});
    }
  }
  return edges;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

GraphBuilder::GraphBuilder(size_t num_nodes) : num_nodes_(num_nodes) {}

Status GraphBuilder::AddEdge(NodeId u, NodeId v, float weight) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::OutOfRange(
        StrFormat("edge (%u,%u) out of range for %zu nodes", u, v,
                  num_nodes_));
  }
  if (u == v) {
    return Status::InvalidArgument(StrFormat("self-loop at node %u", u));
  }
  if (weight < 0.0f || weight > 1.0f) {
    return Status::InvalidArgument(
        StrFormat("influence probability %f outside [0,1]",
                  static_cast<double>(weight)));
  }
  edges_.push_back(Edge{u, v, weight});
  return Status::OK();
}

Status GraphBuilder::AddUndirectedEdge(NodeId u, NodeId v, float weight) {
  PRIVIM_RETURN_NOT_OK(AddEdge(u, v, weight));
  return AddEdge(v, u, weight);
}

Result<Graph> GraphBuilder::Build() {
  // Sort by (src, dst) and drop duplicate arcs.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               edges_.end());

  Graph g;
  g.num_nodes_ = num_nodes_;
  g.out_offsets_.assign(num_nodes_ + 1, 0);
  g.in_offsets_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges_) {
    ++g.out_offsets_[e.src + 1];
    ++g.in_offsets_[e.dst + 1];
  }
  for (size_t i = 1; i <= num_nodes_; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.out_dst_.resize(edges_.size());
  g.out_weight_.resize(edges_.size());
  g.in_src_.resize(edges_.size());
  g.in_weight_.resize(edges_.size());

  // Out-CSR: edges_ is already sorted by src, dst.
  std::vector<size_t> cursor(num_nodes_, 0);
  for (const Edge& e : edges_) {
    const size_t pos = g.out_offsets_[e.src] + cursor[e.src]++;
    g.out_dst_[pos] = e.dst;
    g.out_weight_[pos] = e.weight;
  }
  // In-CSR.
  std::fill(cursor.begin(), cursor.end(), 0);
  for (const Edge& e : edges_) {
    const size_t pos = g.in_offsets_[e.dst] + cursor[e.dst]++;
    g.in_src_[pos] = e.src;
    g.in_weight_[pos] = e.weight;
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

}  // namespace privim
