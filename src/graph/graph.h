#ifndef PRIVIM_GRAPH_GRAPH_H_
#define PRIVIM_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"

namespace privim {

/// Node identifier. Graphs are indexed densely in [0, num_nodes).
using NodeId = uint32_t;

/// Edge (arc) index: indexes into the CSR arc arrays. 64-bit so graphs with
/// more than 2^32 arcs stay representable; the *stored* offset arrays narrow
/// to 32 bits whenever the arc count fits (see OffsetArray), which is every
/// graph below ~4.3e9 arcs — Friendster-class included, per partition.
using EdgeId = uint64_t;

/// Largest node count addressable with 32-bit NodeIds: ids live in
/// [0, num_nodes), so num_nodes may be as large as 2^32 exactly.
inline constexpr uint64_t kMaxNodeCount = uint64_t{1} << 32;

/// InvalidArgument when `num_nodes` exceeds what NodeId can address.
/// Call before sizing any per-node structure from an untrusted count —
/// the silent-wrap alternative produces graphs whose high nodes are
/// unreachable (the truncation seam this guards, see docs/scale.md).
Status ValidateNodeCount(uint64_t num_nodes);

/// A weighted directed edge. `weight` is the IC influence probability
/// w_uv in [0, 1] of the edge (src -> dst).
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  float weight = 1.0f;

  bool operator==(const Edge&) const = default;
};

/// CSR offset table with width-adaptive storage: logically an array of
/// EdgeId (64-bit) offsets, physically 32-bit entries whenever the total
/// arc count fits — which halves the dominant per-node metadata cost
/// (8 bytes -> 4 bytes per node per direction) on every graph this repo
/// can actually hold in RAM. The width is chosen once at build time; reads
/// pay one well-predicted branch.
class OffsetArray {
 public:
  EdgeId operator[](size_t i) const {
    return narrow_.empty() ? wide_[i] : static_cast<EdgeId>(narrow_[i]);
  }
  /// Number of entries (num_nodes + 1 for a built table, 0 when unset).
  size_t size() const {
    return narrow_.empty() ? wide_.size() : narrow_.size();
  }
  bool is_narrow() const { return !narrow_.empty(); }
  size_t MemoryBytes() const {
    return narrow_.capacity() * sizeof(uint32_t) +
           wide_.capacity() * sizeof(uint64_t);
  }

  /// Installs a finished 64-bit offset table, narrowing the storage to
  /// 32-bit when the last entry (the total arc count) is <= `narrow_limit`.
  /// `narrow_limit` is a build-time test hook; production callers pass
  /// UINT32_MAX.
  void Adopt(std::vector<uint64_t> offsets, uint64_t narrow_limit);

  void Clear() {
    narrow_.clear();
    narrow_.shrink_to_fit();
    wide_.clear();
    wide_.shrink_to_fit();
  }

  /// Address of the backing storage (identity fingerprinting only).
  const void* data() const {
    return narrow_.empty() ? static_cast<const void*>(wide_.data())
                           : static_cast<const void*>(narrow_.data());
  }

 private:
  std::vector<uint32_t> narrow_;
  std::vector<uint64_t> wide_;
};

/// One adjacency direction's arc payload: neighbor ids and weights in a
/// single contiguous allocation (ids block, then weights block, each
/// 64-byte aligned). One allocation instead of two keeps the blocks
/// adjacent in memory for scans that read both, and halves allocator
/// round-trips on billion-element arrays.
class ArcStorage {
 public:
  ArcStorage() = default;
  ArcStorage(const ArcStorage& other) { *this = other; }
  ArcStorage& operator=(const ArcStorage& other);
  ArcStorage(ArcStorage&&) noexcept = default;
  ArcStorage& operator=(ArcStorage&&) noexcept = default;

  /// Allocates capacity for `count` arcs. Contents are uninitialized.
  void Allocate(EdgeId count);

  /// Logically shrinks to `count` arcs (deduplication compacts rows in
  /// place, so the tail is garbage). Reallocates to the exact size when
  /// the slack exceeds 1/8 of the buffer — duplicate-heavy inputs should
  /// not pin dead capacity for the graph's lifetime.
  void ShrinkCount(EdgeId count);

  NodeId* ids() { return ids_; }
  const NodeId* ids() const { return ids_; }
  float* weights() { return weights_; }
  const float* weights() const { return weights_; }

  EdgeId size() const { return count_; }
  size_t MemoryBytes() const { return alloc_bytes_; }

 private:
  void AllocateExact(EdgeId count);

  std::unique_ptr<std::byte[]> data_;
  NodeId* ids_ = nullptr;
  float* weights_ = nullptr;
  EdgeId count_ = 0;
  EdgeId capacity_ = 0;
  size_t alloc_bytes_ = 0;
};

/// Immutable directed weighted graph in CSR form. The out-adjacency is
/// always present; the in-adjacency is optional at build time (several hot
/// paths — RWR walks, IC cascades, unit-weight spread — only ever scan
/// out-edges) and can be constructed lazily with EnsureInCsr().
///
/// Undirected input graphs are represented as two directed arcs per edge
/// (the paper treats undirected graphs as directed ones, Section II-A).
/// Build instances through `GraphBuilder`.
///
/// Memory model (docs/scale.md): per arc, 4 bytes neighbor id + 4 bytes
/// weight per stored direction; per node, one offset entry per direction
/// (4 bytes below 2^32 arcs, 8 above). A 10^7-node / 10^8-arc graph is
/// ~800 MB out-only, ~1.6 GB with both directions.
class Graph {
 public:
  Graph() = default;

  size_t num_nodes() const { return num_nodes_; }
  /// Number of directed arcs.
  EdgeId num_edges() const { return out_.size(); }

  /// Out-neighbors of u (targets of arcs u -> v).
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    const EdgeId begin = out_offsets_[u];
    return {out_.ids() + begin,
            static_cast<size_t>(out_offsets_[u + 1] - begin)};
  }
  /// Weights aligned with OutNeighbors(u).
  std::span<const float> OutWeights(NodeId u) const {
    const EdgeId begin = out_offsets_[u];
    return {out_.weights() + begin,
            static_cast<size_t>(out_offsets_[u + 1] - begin)};
  }
  /// In-neighbors of v (sources of arcs u -> v). Requires has_in_csr().
  std::span<const NodeId> InNeighbors(NodeId v) const {
    PRIVIM_CHECK(has_in_csr_) << "graph built without in-CSR; call "
                                 "EnsureInCsr() before in-edge scans";
    const EdgeId begin = in_offsets_[v];
    return {in_.ids() + begin,
            static_cast<size_t>(in_offsets_[v + 1] - begin)};
  }
  /// Weights aligned with InNeighbors(v). Requires has_in_csr().
  std::span<const float> InWeights(NodeId v) const {
    PRIVIM_CHECK(has_in_csr_) << "graph built without in-CSR; call "
                                 "EnsureInCsr() before in-edge scans";
    const EdgeId begin = in_offsets_[v];
    return {in_.weights() + begin,
            static_cast<size_t>(in_offsets_[v + 1] - begin)};
  }

  size_t OutDegree(NodeId u) const {
    return static_cast<size_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  size_t InDegree(NodeId v) const {
    PRIVIM_CHECK(has_in_csr_) << "graph built without in-CSR; call "
                                 "EnsureInCsr() before in-degree reads";
    return static_cast<size_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// True when the in-adjacency arrays are materialized. Graphs built with
  /// GraphBuildOptions::build_in_csr = false skip them (saving half the
  /// arc storage) until EnsureInCsr() is called.
  bool has_in_csr() const { return has_in_csr_; }

  /// Builds the in-CSR from the out-CSR if absent (counting sort, O(V+E),
  /// no edge-list materialization). NOT thread-safe: call before sharing
  /// the graph across threads. The result is bit-identical to building
  /// with in-CSR up front.
  ///
  /// Idempotent by contract: a second call on a graph that already has its
  /// in-CSR is a no-op — it must NOT re-run the counting sort (callers like
  /// Pipeline::Build and GraphDelta's constructor call this defensively on
  /// graphs that may already carry the in-adjacency). The `in_csr_builds()`
  /// counter exists so tests can assert the no-op, not just observe
  /// unchanged contents.
  Status EnsureInCsr();

  /// Number of times the in-CSR counting sort has actually run on this
  /// graph (0 for out-only graphs, 1 after the first EnsureInCsr() or an
  /// eager build_in_csr build). Diagnostic for the EnsureInCsr idempotence
  /// contract; copied with the graph.
  size_t in_csr_builds() const { return in_csr_builds_; }

  /// Average total (in+out) degree over nodes; for a graph built from an
  /// undirected edge list this matches the usual undirected average degree.
  double AverageDegree() const;

  /// Maximum in-degree over all nodes (0 for the empty graph).
  /// Requires has_in_csr().
  size_t MaxInDegree() const;

  /// Visits all arcs in CSR order as (src, dst, weight) without
  /// materializing an edge list. `fn` may return void, or Status to stop
  /// early on error. This is the scale-safe form of Edges(): O(1) extra
  /// memory on graphs whose Edge vector would not fit.
  template <typename Fn>
  Status ForEachEdge(Fn&& fn) const {
    for (NodeId u = 0; u < num_nodes_; ++u) {
      const EdgeId begin = out_offsets_[u];
      const EdgeId end = out_offsets_[u + 1];
      for (EdgeId k = begin; k < end; ++k) {
        if constexpr (std::is_void_v<std::invoke_result_t<Fn&, NodeId,
                                                          NodeId, float>>) {
          fn(u, out_.ids()[k], out_.weights()[k]);
        } else {
          PRIVIM_RETURN_NOT_OK(fn(u, out_.ids()[k], out_.weights()[k]));
        }
      }
    }
    return Status::OK();
  }

  /// Enumerates all arcs in CSR order. Materializes O(E) memory — prefer
  /// ForEachEdge on large graphs.
  std::vector<Edge> Edges() const;

  /// True if the arc u -> v exists. O(log out-degree of u): binary search
  /// over u's CSR row, which GraphBuilder::Build() leaves sorted and
  /// duplicate-free.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Cheap identity fingerprint for caches keyed on "the same Graph object
  /// as last time" (the samplers' r-hop-ball caches): mixes the node/edge
  /// counts with the addresses of the CSR storage, so two simultaneously
  /// live graphs can never collide and copies count as distinct. Not a
  /// content hash — a graph destroyed and replaced by an identical twin at
  /// the same addresses would match, which is harmless for caches of pure
  /// functions of the content. (EnsureInCsr changes the fingerprint, which
  /// conservatively invalidates such caches.)
  uint64_t IdentityFingerprint() const;

  /// Bytes held by the CSR arrays (offsets + arcs, both directions).
  /// The quantity BENCH_scale.json's peak-RSS ratios are measured against.
  size_t MemoryFootprintBytes() const;

 private:
  friend class GraphBuilder;

  /// Counting-sort construction of the in-CSR from the out-CSR.
  void BuildInCsrFromOut(uint64_t narrow_limit);

  size_t num_nodes_ = 0;
  OffsetArray out_offsets_;
  ArcStorage out_;
  OffsetArray in_offsets_;
  ArcStorage in_;
  // A default (empty) graph trivially has its (empty) in-CSR.
  bool has_in_csr_ = true;
  size_t in_csr_builds_ = 0;
};

/// Options for GraphBuilder::Build.
struct GraphBuildOptions {
  /// Skip materializing the in-adjacency (half the arc storage). Paths
  /// that only scan out-edges — RWR walks, IC cascades, spread evaluation
  /// — never notice; call Graph::EnsureInCsr() before in-edge scans.
  bool build_in_csr = true;
  /// Arc-count threshold above which offset arrays store 64-bit entries.
  /// A test hook (forcing the wide path on small graphs); production
  /// callers keep the default.
  uint64_t narrow_offset_limit = 0xFFFFFFFFull;
};

class GraphBuilder;

/// Edge receiver handed to streaming edge producers (EdgeStream). The same
/// validation as GraphBuilder::AddEdge, but edges flow straight into the
/// CSR construction — no Edge vector is ever materialized.
class EdgeSink {
 public:
  /// Adds the directed arc u -> v. Fails on out-of-range ids, self-loops,
  /// or weights outside [0, 1].
  Status Add(NodeId u, NodeId v, float weight = 1.0f);

  /// Adds both arcs u <-> v.
  Status AddUndirected(NodeId u, NodeId v, float weight = 1.0f);

 private:
  friend class GraphBuilder;
  enum class Mode { kCount, kPlace };
  EdgeSink(GraphBuilder* builder, Mode mode)
      : builder_(builder), mode_(mode) {}

  GraphBuilder* builder_;
  Mode mode_;
};

/// A replayable edge producer: Build() invokes it exactly twice (a counting
/// pass, then a placement pass) and the two invocations MUST emit the same
/// edge sequence. Producers that draw randomness must therefore restart
/// from a saved RNG state on each invocation (see ReplayableStream in
/// generators.h for the snapshot-and-replay idiom). Build() cross-checks
/// per-node emission counts between the passes and fails with Internal on
/// mismatch instead of writing out of bounds — the memory-safety net; a
/// replay that diverges only in destinations while keeping every per-node
/// count is semantically wrong but undetectable without buffering, which
/// is exactly what streaming exists to avoid.
using EdgeStream = std::function<Status(EdgeSink&)>;

/// Accumulates edges and finalizes them into an immutable `Graph`.
///
/// Two input modes, freely combinable:
///  - AddEdge/AddUndirectedEdge buffer individual edges (convenient for
///    small graphs and tests);
///  - AddEdgeStream registers a replayable producer whose edges are
///    streamed through a two-pass counting-sort build that never holds a
///    materialized edge vector — the million-node path, with peak memory
///    within ~1.1x of the final CSR footprint (docs/scale.md).
class GraphBuilder {
 public:
  /// `num_nodes` fixes the node-id space [0, num_nodes). Counts beyond
  /// kMaxNodeCount are rejected by Build() (NodeId cannot address them).
  explicit GraphBuilder(size_t num_nodes);
  ~GraphBuilder();

  /// Adds the directed arc u -> v with weight w. Fails on out-of-range ids,
  /// self-loops, or weights outside [0, 1].
  Status AddEdge(NodeId u, NodeId v, float weight = 1.0f);

  /// Adds both arcs u <-> v.
  Status AddUndirectedEdge(NodeId u, NodeId v, float weight = 1.0f);

  /// Registers a replayable edge producer (see EdgeStream). Streams run
  /// after buffered edges, in registration order.
  Status AddEdgeStream(EdgeStream stream);

  size_t num_pending_edges() const { return edges_.size(); }

  /// Builds CSR adjacency via a two-pass counting sort: pass 1 counts
  /// per-node degrees (buffered edges + every registered stream), pass 2
  /// scatters arcs directly into their final rows, then each row is sorted
  /// and deduplicated in place (duplicate arcs keep the first-sorting
  /// weight). The builder is left empty.
  Result<Graph> Build() { return Build(GraphBuildOptions{}); }
  Result<Graph> Build(const GraphBuildOptions& options);

 private:
  friend class EdgeSink;

  Status ValidateEdge(NodeId u, NodeId v, float weight) const;
  /// EdgeSink backend: pass-1 degree count / pass-2 placement of one arc.
  Status CountArc(NodeId u);
  Status PlaceArc(NodeId u, NodeId v, float weight);

  size_t num_nodes_;
  std::vector<Edge> edges_;
  std::vector<EdgeStream> streams_;

  // Build-phase state (live only inside Build()).
  std::vector<uint64_t> offsets_;
  std::vector<uint64_t> cursors_;
  Graph* target_ = nullptr;
};

}  // namespace privim

#endif  // PRIVIM_GRAPH_GRAPH_H_
