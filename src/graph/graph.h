#ifndef PRIVIM_GRAPH_GRAPH_H_
#define PRIVIM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace privim {

/// Node identifier. Graphs are indexed densely in [0, num_nodes).
using NodeId = uint32_t;

/// A weighted directed edge. `weight` is the IC influence probability
/// w_uv in [0, 1] of the edge (src -> dst).
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  float weight = 1.0f;

  bool operator==(const Edge&) const = default;
};

/// Immutable directed weighted graph in CSR form, with both out- and
/// in-adjacency for O(deg) neighbor scans in either direction.
///
/// Undirected input graphs are represented as two directed arcs per edge
/// (the paper treats undirected graphs as directed ones, Section II-A).
/// Build instances through `GraphBuilder`.
class Graph {
 public:
  Graph() = default;

  size_t num_nodes() const { return num_nodes_; }
  /// Number of directed arcs.
  size_t num_edges() const { return out_dst_.size(); }

  /// Out-neighbors of u (targets of arcs u -> v).
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {out_dst_.data() + out_offsets_[u],
            out_offsets_[u + 1] - out_offsets_[u]};
  }
  /// Weights aligned with OutNeighbors(u).
  std::span<const float> OutWeights(NodeId u) const {
    return {out_weight_.data() + out_offsets_[u],
            out_offsets_[u + 1] - out_offsets_[u]};
  }
  /// In-neighbors of v (sources of arcs u -> v).
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_src_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }
  /// Weights aligned with InNeighbors(v).
  std::span<const float> InWeights(NodeId v) const {
    return {in_weight_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  size_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Average total (in+out) degree over nodes; for a graph built from an
  /// undirected edge list this matches the usual undirected average degree.
  double AverageDegree() const;

  /// Maximum in-degree over all nodes (0 for the empty graph).
  size_t MaxInDegree() const;

  /// Enumerates all arcs in CSR order.
  std::vector<Edge> Edges() const;

  /// True if the arc u -> v exists. O(log out-degree of u): binary search
  /// over u's CSR row, which GraphBuilder::Build() leaves sorted and
  /// duplicate-free.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Cheap identity fingerprint for caches keyed on "the same Graph object
  /// as last time" (the samplers' r-hop-ball caches): mixes the node/edge
  /// counts with the addresses of the CSR storage, so two simultaneously
  /// live graphs can never collide and copies count as distinct. Not a
  /// content hash — a graph destroyed and replaced by an identical twin at
  /// the same addresses would match, which is harmless for caches of pure
  /// functions of the content.
  uint64_t IdentityFingerprint() const;

 private:
  friend class GraphBuilder;

  size_t num_nodes_ = 0;
  std::vector<size_t> out_offsets_{0};
  std::vector<NodeId> out_dst_;
  std::vector<float> out_weight_;
  std::vector<size_t> in_offsets_{0};
  std::vector<NodeId> in_src_;
  std::vector<float> in_weight_;
};

/// Accumulates edges and finalizes them into an immutable `Graph`.
class GraphBuilder {
 public:
  /// `num_nodes` fixes the node-id space [0, num_nodes).
  explicit GraphBuilder(size_t num_nodes);

  /// Adds the directed arc u -> v with weight w. Fails on out-of-range ids,
  /// self-loops, or weights outside [0, 1].
  Status AddEdge(NodeId u, NodeId v, float weight = 1.0f);

  /// Adds both arcs u <-> v.
  Status AddUndirectedEdge(NodeId u, NodeId v, float weight = 1.0f);

  size_t num_pending_edges() const { return edges_.size(); }

  /// Sorts, deduplicates (keeping the first weight of duplicate arcs), and
  /// builds CSR in both directions. The builder is left empty.
  Result<Graph> Build();

 private:
  size_t num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace privim

#endif  // PRIVIM_GRAPH_GRAPH_H_
