#ifndef PRIVIM_GRAPH_DATASETS_H_
#define PRIVIM_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace privim {

/// Identifiers for the paper's evaluation datasets (Table I).
enum class DatasetId {
  kEmail,
  kBitcoin,
  kLastFm,
  kHepPh,
  kFacebook,
  kGowalla,
  kFriendster,
};

/// Per-dataset description. `paper_nodes`/`paper_edges` reproduce Table I;
/// `sim_nodes` is the size this repo synthesizes (scaled so benches run on a
/// laptop-class CPU — see DESIGN.md substitution table).
struct DatasetSpec {
  DatasetId id;
  std::string name;
  size_t paper_nodes;
  size_t paper_edges;
  bool directed;
  double paper_avg_degree;
  size_t sim_nodes;
  /// Friendster is partitioned into this many independently processed blocks
  /// (1 for every other dataset), mirroring the paper's memory workaround.
  size_t partitions = 1;
};

/// All seven datasets in Table I order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// The six "main" datasets (without Friendster).
std::vector<DatasetSpec> MainDatasetSpecs();

/// Looks up a spec by enum.
const DatasetSpec& GetDatasetSpec(DatasetId id);

/// Parses a dataset name ("Email", "gowalla", ...) case-insensitively.
Result<DatasetId> ParseDatasetId(const std::string& name);

/// Synthesizes the stand-in graph for `id`, deterministically from `rng`.
/// `scale` multiplies the simulated node count (>= 0.05). The returned graph
/// carries all-ones edge weights (the paper's evaluation sets w_uv = 1);
/// callers wanting IC weights can re-weight with WeightedCascade().
Result<Graph> MakeDataset(DatasetId id, Rng& rng, double scale = 1.0);

/// A 50/50 node split (paper's protocol). `train` and `test` partition
/// [0, num_nodes) and are each sorted.
struct NodeSplit {
  std::vector<NodeId> train;
  std::vector<NodeId> test;
};
/// InvalidArgument when `num_nodes` exceeds the NodeId limit (the count
/// would otherwise truncate silently when narrowed to NodeId) or when
/// `train_fraction` lies outside (0, 1).
Result<NodeSplit> SplitNodes(size_t num_nodes, Rng& rng,
                             double train_fraction = 0.5);

}  // namespace privim

#endif  // PRIVIM_GRAPH_DATASETS_H_
